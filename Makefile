# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: build test race bench-load

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./internal/core/... ./internal/server/... ./internal/store/...

# bench-load seeds the storage performance trajectory: CSV vs .rst snapshot
# load and string-keyed vs dictionary-coded Recommend, recorded to
# BENCH_load.json. BENCHTIME overrides the per-benchmark iteration budget.
bench-load:
	sh scripts/bench_load.sh
