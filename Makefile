# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: build test race bench-load

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./internal/core/... ./internal/server/... ./internal/store/... ./internal/cube/...

# bench-load seeds the storage performance trajectory: CSV vs .rst snapshot
# load, string-keyed vs dictionary-coded Recommend, and cube vs coded-scan
# GroupBy (plus incremental cube maintenance), recorded to BENCH_load.json.
# BENCHTIME overrides the per-benchmark iteration budget.
bench-load:
	sh scripts/bench_load.sh
