# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: build test race lint fuzz-smoke bench-load bench-serve

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./internal/core/... ./internal/shard/... ./internal/server/... ./internal/store/... ./internal/cube/... ./internal/wal/... ./internal/obs/... ./reptile/...

# lint checks formatting, vets every package, and runs the full reptile-lint
# static-analysis suite (import boundaries, determinism, error-code contract,
# close-check — see internal/lint). `reptile-lint -list` names the analyzers;
# suppress a false positive with `//lint:ignore <analyzer> <reason>`.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	go vet ./...
	go run ./cmd/reptile-lint

# fuzz-smoke runs each native fuzz target briefly (FUZZTIME overrides the
# per-target budget): the binary parsers (.rst snapshots, WAL frames,
# complaint specs, CSV) must error, never panic, on arbitrary bytes.
FUZZTIME ?= 10s
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzOpenSnapshot$$' -fuzztime $(FUZZTIME) ./internal/store
	go test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/wal
	go test -run '^$$' -fuzz '^FuzzParseComplaint$$' -fuzztime $(FUZZTIME) ./internal/core
	go test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/data

# bench-load seeds the storage performance trajectory: CSV vs .rst snapshot
# load, string-keyed vs dictionary-coded Recommend, and cube vs coded-scan
# GroupBy (plus incremental cube maintenance), recorded to BENCH_load.json.
# BENCHTIME overrides the per-benchmark iteration budget.
bench-load:
	sh scripts/bench_load.sh

# bench-serve drives a live reptiled with reptile-bench (closed loop over the
# native client against a generated fist dataset) and records client-side
# p50/p95/p99 latency, achieved QPS, and the server's /v1/stats snapshot to
# BENCH_serve.json. BENCH_DURATION / BENCH_WARMUP / BENCH_CONC tune the run.
bench-serve:
	sh scripts/bench_serve.sh
