package repro

// One benchmark per paper table/figure (see DESIGN.md §4). Each bench drives
// the corresponding runner in internal/experiments at a scale suitable for
// iteration; cmd/experiments -scale full reproduces the paper-scale sweeps
// and prints the result tables.

import (
	"testing"

	"repro/internal/experiments"
)

func BenchmarkFig7MatrixOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(4, 1)
	}
}

func BenchmarkFig8MultiQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8([]int{200, 400}, 1)
	}
}

func BenchmarkFig9DrillDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(4000, 1)
	}
}

func BenchmarkFig10EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(0.02, 3, 1)
	}
}

func BenchmarkFig11Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(3, []float64{0.8}, 1)
	}
}

func BenchmarkFig12Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig12(3, []float64{0.8}, 1)
	}
}

func BenchmarkFig13Covid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13(1)
	}
}

func BenchmarkFig15ClusterOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig15(3, 1)
	}
}

func BenchmarkFig16AIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig16(5, 1)
	}
}

func BenchmarkFig18Vote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig18(1)
	}
}

func BenchmarkFISTStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FISTStudy(5, 1)
	}
}
