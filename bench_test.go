package repro

// One benchmark per paper table/figure. Each bench drives
// the corresponding runner in internal/experiments at a scale suitable for
// iteration; cmd/experiments -scale full reproduces the paper-scale sweeps
// and prints the result tables.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/shard"
	"repro/internal/store"
)

func BenchmarkFig7MatrixOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(4, 1)
	}
}

func BenchmarkFig8MultiQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8([]int{200, 400}, 1)
	}
}

func BenchmarkFig9DrillDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(4000, 1)
	}
}

func BenchmarkFig10EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(0.02, 3, 1)
	}
}

func BenchmarkFig11Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(3, []float64{0.8}, 1)
	}
}

func BenchmarkFig12Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig12(3, []float64{0.8}, 1)
	}
}

func BenchmarkFig13Covid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13(1)
	}
}

func BenchmarkFig15ClusterOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig15(3, 1)
	}
}

func BenchmarkFig16AIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig16(5, 1)
	}
}

func BenchmarkFig18Vote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig18(1)
	}
}

func BenchmarkFISTStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FISTStudy(5, 1)
	}
}

// recommendBenchData builds the multi-hierarchy dataset for the Recommend
// parallelism benchmarks: three two-level hierarchies (geo, time, product)
// whose full cross product carries one row per leaf combination, with
// additive per-value effects. Built once and shared read-only.
var recommendBenchData struct {
	once sync.Once
	ds   *data.Dataset
}

func recommendBenchDataset() *data.Dataset {
	d := &recommendBenchData
	d.once.Do(func() {
		rng := rand.New(rand.NewSource(7))
		h := []data.Hierarchy{
			{Name: "geo", Attrs: []string{"region", "district"}},
			{Name: "time", Attrs: []string{"year", "month"}},
			{Name: "prod", Attrs: []string{"category", "item"}},
		}
		ds := data.New("bench", []string{"region", "district", "year", "month", "category", "item"}, []string{"sales"}, h)
		effect := func(n int, scale float64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = rng.NormFloat64() * scale
			}
			return out
		}
		const regions, districts, years, months, categories, items = 5, 6, 4, 12, 5, 6
		re, de := effect(regions, 3), effect(regions*districts, 1)
		ye, me := effect(years, 2), effect(years*months, 1)
		ce, ie := effect(categories, 2), effect(categories*items, 1)
		for r := 0; r < regions; r++ {
			for dd := 0; dd < districts; dd++ {
				for y := 0; y < years; y++ {
					for m := 0; m < months; m++ {
						for c := 0; c < categories; c++ {
							for it := 0; it < items; it++ {
								base := 100 + re[r] + de[r*districts+dd] + ye[y] + me[y*months+m] + ce[c] + ie[c*items+it]
								ds.AppendRowVals([]string{
									fmt.Sprintf("r%d", r), fmt.Sprintf("r%d_d%d", r, dd),
									fmt.Sprintf("y%d", y), fmt.Sprintf("y%d_m%02d", y, m),
									fmt.Sprintf("c%d", c), fmt.Sprintf("c%d_i%d", c, it),
								}, []float64{base + rng.NormFloat64()})
							}
						}
					}
				}
			}
		}
		d.ds = ds
	})
	return d.ds
}

// recommendBenchCoded is the same benchmark dataset after a snapshot round
// trip, so every dimension carries its dictionary encoding and GroupBy / the
// factorizer take the coded fast paths.
var recommendBenchCoded struct {
	once sync.Once
	ds   *data.Dataset
}

func recommendBenchCodedDataset(b *testing.B) *data.Dataset {
	d := &recommendBenchCoded
	d.once.Do(func() {
		ds, err := store.FromDataset(recommendBenchDataset()).Dataset()
		if err == nil {
			d.ds = ds
		} else {
			b.Fatal(err)
		}
	})
	return d.ds
}

// benchmarkRecommend measures one full Recommend over the three drillable
// hierarchies (a SUM complaint, so each fits two models: six independent
// work units). A fresh session per iteration keeps the session cache out of
// the measurement.
func benchmarkRecommend(b *testing.B, workers int) {
	benchmarkRecommendOn(b, recommendBenchDataset(), workers)
}

func benchmarkRecommendOn(b *testing.B, ds *data.Dataset, workers int) {
	eng, err := core.NewEngine(ds, core.Options{EMIterations: 10, Trainer: core.TrainerNaive, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	c := core.Complaint{
		Agg:       agg.Sum,
		Measure:   "sales",
		Tuple:     data.Predicate{"region": "r1", "year": "y1", "category": "c1"},
		Direction: core.TooLow,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := eng.NewSession([]string{"region", "year", "category"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Recommend(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecommendSequential(b *testing.B) { benchmarkRecommend(b, 1) }

func BenchmarkRecommendParallel(b *testing.B) { benchmarkRecommend(b, runtime.NumCPU()) }

// BenchmarkRecommendCoded is BenchmarkRecommendSequential over the
// dictionary-coded dataset a .rst load (or server registration) produces:
// the aggregation and factorizer-source scans consume precomputed codes
// instead of re-hashing strings.
func BenchmarkRecommendCoded(b *testing.B) {
	benchmarkRecommendOn(b, recommendBenchCodedDataset(b), 1)
}

// BenchmarkRecommendSharded measures the full sharded serving configuration
// at 1, 2, 4 and 8 shards: the dataset partitioned on its first hierarchy
// root, per-shard rollup cubes materialized, and the scatter-gather engine
// fanning each aggregation across the shards on the default worker pool —
// i.e. what `reptiled -shards N` actually runs, in contrast to the
// single-worker cube-less scans of RecommendCoded above.
func BenchmarkRecommendSharded(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			set, err := shard.Partition(store.FromDataset(recommendBenchDataset()), n, "")
			if err != nil {
				b.Fatal(err)
			}
			if err := set.BuildCubes(); err != nil {
				b.Fatal(err)
			}
			eng, err := set.Engine(core.Options{EMIterations: 10, Trainer: core.TrainerNaive})
			if err != nil {
				b.Fatal(err)
			}
			c := core.Complaint{
				Agg:       agg.Sum,
				Measure:   "sales",
				Tuple:     data.Predicate{"region": "r1", "year": "y1", "category": "c1"},
				Direction: core.TooLow,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess, err := eng.NewSession([]string{"region", "year", "category"})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Recommend(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
