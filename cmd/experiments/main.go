// Command experiments regenerates every table and figure of the paper's
// evaluation (see README.md for the experiment index). Each experiment
// prints an aligned text table; -scale controls dataset sizes and trial
// counts so the full suite can run in minutes (-scale full reproduces the
// paper-scale parameters).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		which   = flag.String("exp", "all", "comma-separated experiments: fig7,fig8,fig9,fig10,fig11,fig12,fig13,fig15,fig16,fig18,fist,ablations or all")
		scale   = flag.String("scale", "small", "small or full")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "engine worker-pool size (0 = NumCPU, except timing experiments like fig10 which pin 0 to sequential; 1 = sequential)")
	)
	flag.Parse()
	experiments.Workers = *workers

	full := *scale == "full"
	selected := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		selected[strings.TrimSpace(w)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	run := func(name string, fn func()) {
		if !want(name) {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		fn()
	}

	run("fig7", func() {
		maxD := 5
		if full {
			maxD = 7
		}
		_, t := experiments.Fig7(maxD, *seed)
		fmt.Println(t)
	})
	run("fig8", func() {
		cards := []int{200, 400, 800}
		if full {
			cards = []int{200, 400, 800, 1600, 3200}
		}
		_, t := experiments.Fig8(cards, *seed)
		fmt.Println(t)
	})
	run("fig9", func() {
		leaves := 10000
		if full {
			leaves = 100000
		}
		_, t := experiments.Fig9(leaves, *seed)
		fmt.Println(t)
	})
	run("fig10", func() {
		rowScale, iters := 0.1, 5
		if full {
			rowScale, iters = 1.0, 20
		}
		_, t := experiments.Fig10(rowScale, iters, *seed)
		fmt.Println(t)
	})
	run("fig11", func() {
		trials := 50
		if full {
			trials = 1000
		}
		_, t := experiments.Fig11(trials, nil, *seed)
		fmt.Println(t)
	})
	run("fig12", func() {
		trials := 50
		if full {
			trials = 1000
		}
		_, t := experiments.Fig12(trials, nil, *seed)
		fmt.Println(t)
	})
	run("fig13", func() {
		_, t, t1, t2 := experiments.Fig13(*seed)
		fmt.Println(t1)
		fmt.Println(t2)
		fmt.Println(t)
	})
	run("fig15", func() {
		maxD := 4
		if full {
			maxD = 6
		}
		_, t := experiments.Fig15(maxD, *seed)
		fmt.Println(t)
	})
	run("fig16", func() {
		iters := 10
		if full {
			iters = 20
		}
		_, t := experiments.Fig16(iters, *seed)
		fmt.Println(t)
	})
	run("fig18", func() {
		_, _, t := experiments.Fig18(*seed)
		fmt.Println(t)
	})
	run("fist", func() {
		iters := 10
		if full {
			iters = 20
		}
		_, t := experiments.FISTStudy(iters, *seed)
		fmt.Println(t)
	})
	run("ablations", func() {
		trials := 40
		if full {
			trials = 200
		}
		_, t := experiments.AblationZ(*seed)
		fmt.Println(t)
		_, t = experiments.AblationLeakGuard(trials, *seed)
		fmt.Println(t)
		_, t = experiments.AblationParallelGroups(*seed)
		fmt.Println(t)
	})

	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments:", flag.Args())
		os.Exit(2)
	}
}
