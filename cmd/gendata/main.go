// Command gendata writes the simulated evaluation datasets to CSV — or, when
// the output path ends in .rst, directly to a dictionary-encoded binary
// snapshot — so they can be inspected or fed back through cmd/reptile and
// cmd/reptiled.
//
//	gendata -dataset covid-us -out covid_us.csv
//	gendata -dataset fist -out fist.rst -aux-out rainfall.csv
//	gendata -dataset absentee -out absentee.rst -cube
//
// With -cube, .rst outputs additionally carry the materialized hierarchy
// rollup cube (internal/cube), so loaders answer hierarchy-prefix group-bys
// from precomputed cells.
//
// Datasets: covid-us, covid-global, fist, vote, absentee, compas.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/store"
)

func main() {
	var (
		which  = flag.String("dataset", "", "covid-us | covid-global | fist | vote | absentee | compas (required)")
		out    = flag.String("out", "", "output path, .csv or .rst (required)")
		auxOut = flag.String("aux-out", "", "auxiliary table path, .csv or .rst (fist: rainfall; vote: 2016 results)")
		seed   = flag.Int64("seed", 1, "random seed")
		rows   = flag.Int("rows", 0, "row count override (absentee/compas; 0 = paper scale)")
		cube   = flag.Bool("cube", false, "materialize the hierarchy rollup cube into .rst outputs")
	)
	flag.Parse()
	if *which == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var ds, aux *data.Dataset
	switch *which {
	case "covid-us":
		ds = datasets.GenerateCovidUS(*seed)
	case "covid-global":
		ds = datasets.GenerateCovidGlobal(*seed)
	case "fist":
		f := datasets.GenerateFIST(*seed)
		ds, aux = f.DS, f.Rainfall
	case "vote":
		v := datasets.GenerateVote(*seed)
		ds, aux = v.DS, v.Aux2016
	case "absentee":
		ds = datasets.GenerateAbsentee(*seed, *rows)
	case "compas":
		ds = datasets.GenerateCompas(*seed, *rows)
	default:
		log.Fatalf("unknown dataset %q", *which)
	}

	if err := writeDataset(ds, *out, *cube); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d rows to %s\n", ds.NumRows(), *out)
	if aux != nil && *auxOut != "" {
		if err := writeDataset(aux, *auxOut, *cube); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d auxiliary rows to %s\n", aux.NumRows(), *auxOut)
	}
}

// writeDataset emits a .rst binary snapshot when the path asks for one
// (materializing the rollup cube into it when requested), and CSV otherwise.
// Auxiliary tables carry no hierarchies, so -cube leaves them unchanged.
func writeDataset(ds *data.Dataset, path string, cube bool) error {
	if strings.HasSuffix(path, ".rst") {
		snap := store.FromDataset(ds)
		if cube {
			if err := snap.BuildCube(); err != nil {
				return err
			}
		}
		return snap.WriteFile(path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ds.WriteCSV(f)
}
