// Command reptile-lint runs the repository's static-analysis suite
// (internal/lint): the boundary, determinism, error-code, and close-check
// invariants the engine's byte-identical-output guarantee depends on.
//
// Usage:
//
//	reptile-lint [-C dir] [-only a,b] [-json] [-list]
//
// With no flags it analyzes the enclosing repository (walking up from the
// working directory to the nearest go.mod) with every analyzer and prints
// findings as file:line:col: [analyzer] message. Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir      = flag.String("C", "", "repository root to analyze (default: nearest go.mod above the working directory)")
		only     = flag.String("only", "", "comma-separated analyzer subset (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array")
		listOnly = flag.Bool("list", false, "list the available analyzers and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	analyzers, err := lint.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reptile-lint:", err)
		return 2
	}

	root := *dir
	if root == "" {
		root, err = findRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "reptile-lint:", err)
			return 2
		}
	}

	repo, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reptile-lint:", err)
		return 2
	}

	findings := lint.Run(repo, analyzers)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "reptile-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "reptile-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
