package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/reptile"
)

// runInteractive drives an iterative drill-down session: the user submits
// complaints, inspects the ranked recommendations, and drills down — the
// paper's "overview, zoom, details-on-demand" loop.
//
// Commands:
//
//	complain agg=<count|sum|mean|std> measure=<col> dir=<high|low> [attr=val ...]
//	drill <hierarchy>
//	groupby
//	help
//	quit
func runInteractive(eng *reptile.Engine, groupBy []string, in io.Reader, out io.Writer) error {
	sess, err := eng.NewSession(groupBy)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "reptile interactive session — type 'help' for commands")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Fprintln(out, "  complain agg=<f> measure=<col> dir=<high|low> [attr=val ...]")
			fmt.Fprintln(out, "  drill <hierarchy>     accept a recommendation")
			fmt.Fprintln(out, "  groupby               show the current group-by attributes")
			fmt.Fprintln(out, "  quit")
		case "groupby":
			fmt.Fprintf(out, "  group-by: %s\n", strings.Join(sess.GroupBy(), ", "))
		case "drill":
			h := strings.TrimSpace(rest)
			if err := sess.Drill(h); err != nil {
				fmt.Fprintf(out, "  error: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "  drilled %s; group-by is now %s\n", h, strings.Join(sess.GroupBy(), ", "))
		case "complain":
			c, err := reptile.ParseComplaint(rest)
			if err != nil {
				fmt.Fprintf(out, "  error: %v\n", err)
				continue
			}
			rec, err := sess.Recommend(c)
			if err != nil {
				fmt.Fprintf(out, "  error: %v\n", err)
				continue
			}
			printRecommendation(out, rec)
		default:
			fmt.Fprintf(out, "  unknown command %q (try 'help')\n", cmd)
		}
	}
}

func printRecommendation(out io.Writer, rec *reptile.Recommendation) {
	for _, hr := range rec.All {
		marker := " "
		if hr.Hierarchy == rec.Best.Hierarchy {
			marker = "*"
		}
		fmt.Fprintf(out, "%s drill %s -> %s (current %.4g, best repaired %.4g):\n",
			marker, hr.Hierarchy, hr.Attr, hr.Current, hr.Ranked[0].Repaired)
		for i, gs := range hr.Ranked {
			fmt.Fprintf(out, "    %d. %v  repaired=%.4g gain=%.4g\n",
				i+1, strings.Join(gs.Group.Vals, "/"), gs.Repaired, gs.Gain)
		}
	}
}
