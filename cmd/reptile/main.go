// Command reptile answers complaint-based drill-down queries over a CSV or
// .rst dataset from the command line. It is a thin shell around the public
// reptile SDK — everything it does is available programmatically via
// reptile.Open.
//
// A -data path ending in .rst loads a dictionary-encoded binary snapshot
// (written by "reptile convert" or cmd/gendata) instead of CSV; the snapshot
// carries its own measures and hierarchies, so -measures and -hierarchies
// are then optional. Convert a CSV once with:
//
//	reptile convert -data survey.csv \
//	        -hierarchies "geo:region,district,village;time:year" \
//	        -measures severity -out survey.rst [-cube] [-shards N] [-shard-key dim]
//
// With -cube the snapshot additionally materializes the hierarchy rollup
// cube (internal/cube): group-bys over hierarchy prefixes are then answered
// from precomputed cells when the snapshot is loaded, here or by reptiled.
// With -shards N (N ≥ 2) the output is a partitioned snapshot: rows are
// hashed on a hierarchy-root dimension (-shard-key, default: the first
// hierarchy's root) into N per-shard column sections sharing one dictionary
// set, and loading it — here or in reptiled — serves it through the sharded
// scatter-gather engine.
//
// Usage:
//
//	reptile -data survey.csv \
//	        -hierarchies "geo:region,district,village;time:year" \
//	        -measures severity \
//	        -groupby district,year \
//	        -complain 'agg=mean measure=severity dir=low district="New York" year=1986' \
//	        [-aux "rain:rainfall.csv:village:rainfall"] [-topk 5]
//
// Complaint attribute values containing spaces are double-quoted, as in
// district="New York" above.
//
// The tool loads the dataset, validates the hierarchy metadata, evaluates
// every candidate drill-down and prints the ranked groups per hierarchy.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/reptile"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		if err := runConvert(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	var (
		dataPath    = flag.String("data", "", "dataset path, CSV or .rst snapshot (required)")
		hierSpec    = flag.String("hierarchies", "", `hierarchies, e.g. "geo:region,district,village;time:year" (required for CSV)`)
		measureList = flag.String("measures", "", "comma-separated measure columns (required for CSV)")
		groupBy     = flag.String("groupby", "", "comma-separated current group-by attributes")
		complain    = flag.String("complain", "", `complaint, e.g. 'agg=mean measure=severity dir=low district="New York" year=1986' (required unless -interactive)`)
		interactive = flag.Bool("interactive", false, "start an iterative drill-down session on stdin")
		auxSpec     = flag.String("aux", "", `auxiliary datasets, e.g. "rain:rainfall.csv:village:rainfall;..."`)
		topK        = flag.Int("topk", 5, "groups to report per hierarchy")
		emIters     = flag.Int("em-iterations", 20, "EM iterations per model")
		workers     = flag.Int("workers", 0, "evaluation worker-pool size (0 = NumCPU, 1 = sequential)")
	)
	flag.Parse()
	isSnapshot := strings.HasSuffix(*dataPath, ".rst")
	if *dataPath == "" || (*complain == "" && !*interactive) ||
		(!isSnapshot && (*hierSpec == "" || *measureList == "")) {
		flag.Usage()
		os.Exit(2)
	}

	opts := []reptile.Option{
		reptile.WithEMIterations(*emIters),
		reptile.WithTopK(*topK),
		reptile.WithWorkers(*workers),
	}
	if !isSnapshot {
		opts = append(opts,
			reptile.WithMeasures(splitNonEmpty(*measureList, ",")...),
			reptile.WithHierarchies(*hierSpec))
	}
	if *auxSpec != "" {
		auxes, err := parseAux(*auxSpec)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, reptile.WithAux(auxes...))
	}
	eng, err := reptile.Open(*dataPath, opts...)
	if err != nil {
		log.Fatalf("loading %s: %v", *dataPath, err)
	}
	if *interactive {
		if err := runInteractive(eng, splitNonEmpty(*groupBy, ","), os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	sess, err := eng.NewSession(splitNonEmpty(*groupBy, ","))
	if err != nil {
		log.Fatal(err)
	}
	c, err := reptile.ParseComplaint(*complain)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sess.Recommend(c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("complaint: %s(%s) of %v is %v (current %.4g)\n\n",
		c.Agg, c.Measure, c.Tuple, c.Direction, rec.Best.Current)
	for _, hr := range rec.All {
		marker := " "
		if hr.Hierarchy == rec.Best.Hierarchy {
			marker = "*"
		}
		fmt.Printf("%s drill %s → %s (best score %.4g):\n", marker, hr.Hierarchy, hr.Attr, hr.BestScore)
		for i, gs := range hr.Ranked {
			fmt.Printf("    %d. %v  repaired=%.4g gain=%.4g\n",
				i+1, strings.Join(gs.Group.Vals, "/"), gs.Repaired, gs.Gain)
		}
	}
}

// runConvert implements "reptile convert": load a CSV dataset (validating
// its hierarchy metadata) and persist it as a .rst binary snapshot, which
// later runs load without reparsing or re-deriving dictionaries.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("reptile convert", flag.ExitOnError)
	var (
		in          = fs.String("data", "", "input CSV path (required)")
		out         = fs.String("out", "", "output .rst path (required)")
		hierSpec    = fs.String("hierarchies", "", `hierarchies, e.g. "geo:region,district,village;time:year" (required)`)
		measureList = fs.String("measures", "", "comma-separated measure columns (required)")
		name        = fs.String("name", "", "dataset name stored in the snapshot (default: the input path)")
		withCube    = fs.Bool("cube", false, "materialize the hierarchy rollup cube into the snapshot")
		shards      = fs.Int("shards", 0, "write a partitioned snapshot with N shards (0 or 1 = plain snapshot)")
		shardKey    = fs.String("shard-key", "", "partition dimension, a hierarchy root (default: the first hierarchy's root)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *hierSpec == "" || *measureList == "" {
		fs.Usage()
		os.Exit(2)
	}
	opts := []reptile.Option{
		reptile.WithMeasures(splitNonEmpty(*measureList, ",")...),
		reptile.WithHierarchies(*hierSpec),
	}
	if *name != "" {
		opts = append(opts, reptile.WithName(*name))
	}
	// Partitioned snapshots do not store cubes (loaders rebuild per-shard
	// cubes at registration), so skip the wasted build.
	if *withCube && *shards < 2 {
		opts = append(opts, reptile.WithCube())
	}
	if *shards >= 2 {
		opts = append(opts, reptile.WithShards(*shards))
		if *shardKey != "" {
			opts = append(opts, reptile.WithShardKey(*shardKey))
		}
	}
	eng, err := reptile.Open(*in, opts...)
	if err != nil {
		return fmt.Errorf("loading %s: %w", *in, err)
	}
	info, err := eng.Save(*out)
	if err != nil {
		return err
	}
	cubeNote := ""
	if *withCube {
		if *shards >= 2 {
			cubeNote = ", cube: not stored in partitioned snapshots (rebuilt at load)"
		} else if info.CubeLevels > 0 {
			cubeNote = fmt.Sprintf(", cube: %d groupings / %d cells", info.CubeLevels, info.CubeCells)
		} else {
			cubeNote = ", cube: skipped (dataset not cubable)"
		}
	}
	shardNote := ""
	if info.Shards > 0 {
		shardNote = fmt.Sprintf(", %d shards", info.Shards)
	}
	fmt.Printf("wrote %d rows (%d dimensions, %d measures%s%s) to %s\n",
		info.Rows, info.Dims, info.Measures, shardNote, cubeNote, *out)
	return nil
}

func parseAux(spec string) ([]reptile.Aux, error) {
	var out []reptile.Aux
	for _, part := range splitNonEmpty(spec, ";") {
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("bad aux %q: want name:path:joinattr:measure", part)
		}
		table, err := reptile.ReadCSVFile(fields[1], fields[0], []string{fields[3]}, nil)
		if err != nil {
			return nil, fmt.Errorf("loading aux %s: %w", fields[0], err)
		}
		out = append(out, reptile.Aux{Name: fields[0], Table: table, JoinAttr: fields[2], Measure: fields[3]})
	}
	return out, nil
}

func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, p := range strings.Split(s, sep) {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
