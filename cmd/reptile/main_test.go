package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/reptile"
)

func TestParseComplaint(t *testing.T) {
	c, err := reptile.ParseComplaint("agg=mean measure=severity dir=low district=Ofla year=1986")
	if err != nil {
		t.Fatal(err)
	}
	if c.Agg != reptile.Mean || c.Measure != "severity" || c.Direction != reptile.TooLow {
		t.Errorf("parsed = %+v", c)
	}
	if c.Tuple["district"] != "Ofla" || c.Tuple["year"] != "1986" {
		t.Errorf("tuple = %v", c.Tuple)
	}
	if _, err := reptile.ParseComplaint("agg=mean"); err == nil {
		t.Error("expected error for missing measure")
	}
	if _, err := reptile.ParseComplaint("agg=bogus measure=m dir=low"); err == nil {
		t.Error("expected error for bad aggregate")
	}
	if _, err := reptile.ParseComplaint("agg=mean measure=m dir=sideways"); err == nil {
		t.Error("expected error for bad direction")
	}
	if _, err := reptile.ParseComplaint("notakv"); err == nil {
		t.Error("expected error for malformed field")
	}
}

func TestParseAux(t *testing.T) {
	if _, err := parseAux("toofew:fields"); err == nil {
		t.Error("expected error for bad aux spec")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a, ,b ,", ",")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitNonEmpty = %v", got)
	}
	if splitNonEmpty("", ",") != nil {
		t.Error("empty input should yield nil")
	}
}

const testCSV = "district,village,year,severity\n" +
	"Ofla,Adishim,1986,8\nOfla,Adishim,1987,7\nOfla,Zata,1986,2\nOfla,Zata,1987,7\n" +
	"Raya,Kukufto,1986,8\nRaya,Kukufto,1987,6\nRaya,Mehoni,1986,7\nRaya,Mehoni,1987,6\n"

const testHierarchies = "geo:district,village;time:year"

// writeTestCSV materializes the demo dataset and returns its path.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "drought.csv")
	if err := os.WriteFile(path, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func buildTestEngine(t *testing.T) *reptile.Engine {
	t.Helper()
	eng, err := reptile.Open(writeTestCSV(t),
		reptile.WithMeasures("severity"),
		reptile.WithHierarchies(testHierarchies),
		reptile.WithEMIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestInteractiveSession(t *testing.T) {
	eng := buildTestEngine(t)
	in := strings.NewReader(strings.Join([]string{
		"groupby",
		"help",
		"bogus",
		"complain agg=mean measure=severity dir=low district=Ofla year=1986",
		"drill geo",
		"drill nope",
		"complain agg=notreal",
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := runInteractive(eng, []string{"district", "year"}, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"group-by: district, year", "unknown command", "drill geo -> village", "drilled geo", "error:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestConvertAndSnapshotLoad(t *testing.T) {
	csvPath := writeTestCSV(t)
	rstPath := filepath.Join(filepath.Dir(csvPath), "drought.rst")
	err := runConvert([]string{
		"-data", csvPath, "-out", rstPath,
		"-hierarchies", testHierarchies,
		"-measures", "severity", "-name", "drought",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both loads drive the engine to byte-identical recommendations.
	var recs [][]byte
	for _, path := range []string{csvPath, rstPath} {
		opts := []reptile.Option{reptile.WithEMIterations(4), reptile.WithWorkers(1)}
		if strings.HasSuffix(path, ".csv") {
			opts = append(opts, reptile.WithMeasures("severity"), reptile.WithHierarchies(testHierarchies))
		}
		eng, err := reptile.Open(path, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(path, ".rst") && eng.Dataset().Name != "drought" {
			t.Errorf("snapshot dataset name = %q, want the -name value", eng.Dataset().Name)
		}
		sess, err := eng.NewSession([]string{"district", "year"})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sess.Complain("agg=mean measure=severity dir=low district=Ofla year=1986")
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, b)
	}
	if !bytes.Equal(recs[0], recs[1]) {
		t.Errorf("CSV and snapshot recommendations differ:\ncsv: %s\nrst: %s", recs[0], recs[1])
	}
}
