package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
)

func TestParseHierarchies(t *testing.T) {
	hs, err := parseHierarchies("geo:district,village;time:year")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0].Name != "geo" || len(hs[0].Attrs) != 2 || hs[1].Attrs[0] != "year" {
		t.Errorf("parsed = %+v", hs)
	}
	if _, err := parseHierarchies("noattrs"); err == nil {
		t.Error("expected error for missing colon")
	}
	if _, err := parseHierarchies(""); err == nil {
		t.Error("expected error for empty spec")
	}
}

func TestParseComplaint(t *testing.T) {
	c, err := parseComplaint("agg=mean measure=severity dir=low district=Ofla year=1986")
	if err != nil {
		t.Fatal(err)
	}
	if c.Agg != agg.Mean || c.Measure != "severity" || c.Direction != core.TooLow {
		t.Errorf("parsed = %+v", c)
	}
	if c.Tuple["district"] != "Ofla" || c.Tuple["year"] != "1986" {
		t.Errorf("tuple = %v", c.Tuple)
	}
	if _, err := parseComplaint("agg=mean"); err == nil {
		t.Error("expected error for missing measure")
	}
	if _, err := parseComplaint("agg=bogus measure=m dir=low"); err == nil {
		t.Error("expected error for bad aggregate")
	}
	if _, err := parseComplaint("agg=mean measure=m dir=sideways"); err == nil {
		t.Error("expected error for bad direction")
	}
	if _, err := parseComplaint("notakv"); err == nil {
		t.Error("expected error for malformed field")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty(" a, ,b ,", ",")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitNonEmpty = %v", got)
	}
	if splitNonEmpty("", ",") != nil {
		t.Error("empty input should yield nil")
	}
}

func TestInteractiveSession(t *testing.T) {
	// Build a dataset inline (mirrors the quickstart shape).
	eng := buildTestEngine(t)
	in := strings.NewReader(strings.Join([]string{
		"groupby",
		"help",
		"bogus",
		"complain agg=mean measure=severity dir=low district=Ofla year=1986",
		"drill geo",
		"drill nope",
		"complain agg=notreal",
		"quit",
	}, "\n"))
	var out strings.Builder
	if err := runInteractive(eng, []string{"district", "year"}, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"group-by: district, year", "unknown command", "drill geo -> village", "drilled geo", "error:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func buildTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	csv := "district,village,year,severity\n" +
		"Ofla,Adishim,1986,8\nOfla,Adishim,1987,7\nOfla,Zata,1986,2\nOfla,Zata,1987,7\n" +
		"Raya,Kukufto,1986,8\nRaya,Kukufto,1987,6\nRaya,Mehoni,1986,7\nRaya,Mehoni,1987,6\n"
	hs, err := parseHierarchies("geo:district,village;time:year")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := readCSVString(csv, hs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds, core.Options{EMIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestConvertAndSnapshotLoad(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "drought.csv")
	rstPath := filepath.Join(dir, "drought.rst")
	csv := "district,village,year,severity\n" +
		"Ofla,Adishim,1986,8\nOfla,Adishim,1987,7\nOfla,Zata,1986,2\nOfla,Zata,1987,7\n" +
		"Raya,Kukufto,1986,8\nRaya,Kukufto,1987,6\nRaya,Mehoni,1986,7\nRaya,Mehoni,1987,6\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runConvert([]string{
		"-data", csvPath, "-out", rstPath,
		"-hierarchies", "geo:district,village;time:year",
		"-measures", "severity", "-name", "drought",
	})
	if err != nil {
		t.Fatal(err)
	}

	fromCSV, err := loadDataset(csvPath, []string{"severity"}, "geo:district,village;time:year")
	if err != nil {
		t.Fatal(err)
	}
	fromRST, err := loadDataset(rstPath, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if fromRST.NumRows() != fromCSV.NumRows() {
		t.Fatalf("snapshot rows = %d, CSV rows = %d", fromRST.NumRows(), fromCSV.NumRows())
	}
	// Both loads drive the engine to byte-identical recommendations.
	var recs [][]byte
	for _, ds := range []*data.Dataset{fromCSV, fromRST} {
		eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := eng.NewSession([]string{"district", "year"})
		if err != nil {
			t.Fatal(err)
		}
		c, err := parseComplaint("agg=mean measure=severity dir=low district=Ofla year=1986")
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sess.Recommend(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, b)
	}
	if !bytes.Equal(recs[0], recs[1]) {
		t.Errorf("CSV and snapshot recommendations differ:\ncsv: %s\nrst: %s", recs[0], recs[1])
	}
}
