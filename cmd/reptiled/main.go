// Command reptiled serves Reptile's explanation engine over HTTP. Datasets
// register once and their engines are shared across all sessions and
// requests, so queries stop paying the per-invocation dataset-load and
// engine-construction cost of the CLI.
//
// Usage:
//
//	reptiled [-addr 127.0.0.1:8372] [-session-ttl 15m] [-cache-size 256]
//	         [-max-inflight 0] [-queue-wait 100ms] [-no-cube]
//	         [-shards 0] [-shard-key dim] [-mmap]
//	         [-wal] [-wal-dir .] [-flush-rows 256] [-flush-bytes 1048576]
//	         [-flush-interval 200ms] [-checkpoint-bytes 8388608]
//	         [-retention 0] [-retention-dim dim]
//	         [-pprof-addr addr] [-log-requests] [-version]
//
// The API is unauthenticated and POST /v1/datasets can name server-local CSV
// paths, so the default bind is loopback; put a reverse proxy with
// authentication in front before exposing it beyond the host.
//
// Endpoints (all JSON; request/response types and the structured error
// envelope are defined in reptile/api, and reptile/client is the native Go
// client for the full surface):
//
//	POST   /v1/datasets                  register a CSV or .rst dataset
//	GET    /v1/datasets                  list registered datasets
//	POST   /v1/datasets/{name}/append    append rows, hot-swapping the engine
//	POST   /v1/sessions                  start a drill-down session
//	DELETE /v1/sessions/{id}             release a session explicitly
//	POST   /v1/sessions/{id}/recommend   evaluate a complaint
//	POST   /v1/sessions/{id}/drill       accept a recommendation
//	GET    /v1/stats                     per-dataset versions + cube status
//	GET    /healthz                      liveness + cache statistics
//
// Every registered dataset version materializes a hierarchy rollup cube
// (internal/cube) shared by all its sessions — group-bys over hierarchy
// prefixes are answered from precomputed cells, and appends maintain the
// cube incrementally. -no-cube disables materialization (snapshots loaded
// from .rst files that already carry a cube keep it).
//
// -shards N (N ≥ 2) partitions every registered dataset on a hierarchy-root
// dimension (-shard-key, default: the first hierarchy's root) and serves it
// through the sharded scatter-gather engine; individual registrations can
// override both via the request's shards/shard_key fields. GET /v1/stats
// reports each dataset's shard count and per-shard row counts.
//
// -mmap serves registered .rst snapshots out of memory-mapped files instead
// of decoding their columns onto the heap: residency stays
// O(dictionaries + cube) rather than O(rows), so snapshots larger than RAM
// serve with flat RSS, and recommendations are byte-identical to an eager
// load. Version-1 snapshot files fall back to an eager load; CSV
// registrations are unaffected; appends to a mapped dataset are rejected
// (re-register without -mmap to ingest). GET /v1/stats reports each
// dataset's open mode and resident column bytes.
//
// Registering a path ending in .rst loads a dictionary-encoded binary
// snapshot (see internal/store and "reptile convert") instead of reparsing
// CSV; the snapshot carries its own measures and hierarchies, and a
// partitioned snapshot ("reptile convert -shards") its shard topology too. Appends build
// the successor snapshot and engine in the background and swap them in
// atomically: the dataset's cached recommendations are invalidated, sessions
// pick up the new version on their next request, and recommendations already
// in flight finish on the old version.
//
// -wal turns appends into durable micro-batched ingestion: every append
// commits its rows to <wal-dir>/<dataset>.wal (fsynced before the request is
// acknowledged, with the log position returned as wal_seq) and a per-dataset
// flusher coalesces pending rows — up to -flush-rows rows or -flush-bytes
// bytes, at most -flush-interval after arrival — into a single snapshot
// rebuild and hot swap. Once a log outgrows -checkpoint-bytes, the serving
// state checkpoints to <dataset>.ckpt.<seq>.rst and the log truncates.
// Re-registering a dataset after a restart recovers the checkpoint and
// replays the log, so every acknowledged row survives a crash.
//
// -retention WINDOW -retention-dim DIM bound every dataset's history: rows
// whose event time on DIM falls more than WINDOW behind the dataset's newest
// event are dropped at the next flush (windows use Go duration notation, so
// two years is 17520h). Individual registrations can override both via the
// request's retention/retention_dim fields. GET /v1/stats reports each
// dataset's WAL depth, flush statistics and retention horizon.
//
// Observability: GET /v1/metrics serves every endpoint's request, error,
// in-flight and latency-histogram counters plus the recommend pipeline's
// per-stage timing totals in the Prometheus text format, and GET /v1/stats
// carries the same data as JSON alongside server identity (version, Go
// version, start time, uptime). -log-requests logs one structured line per
// request (request id, endpoint, status, latency) to stderr. -pprof-addr
// serves net/http/pprof on a second listener, kept off the API address so
// profiling never rides an exposed port. -version prints the build version
// and exits.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and then flushing every dataset's pending micro-batch (with a
// final log fsync) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

// version is the build identifier reported by -version and /v1/stats;
// override at build time with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8372", "listen address")
		sessionTTL  = flag.Duration("session-ttl", 15*time.Minute, "idle session lifetime (renewed by every request)")
		cacheSize   = flag.Int("cache-size", 256, "recommendation LRU capacity in entries (negative disables)")
		maxInflight = flag.Int("max-inflight", 0, "concurrent recommendations per dataset (0 = the engine's worker count)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "how long an over-limit recommendation waits before 429")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
		noCube      = flag.Bool("no-cube", false, "skip materializing rollup cubes for registered datasets")
		shards      = flag.Int("shards", 0, "partition registered datasets into N shards (0 or 1 = unsharded)")
		shardKey    = flag.String("shard-key", "", "partition dimension, a hierarchy root (default: the first hierarchy's root)")
		mmapIO      = flag.Bool("mmap", false, "serve registered .rst snapshots memory-mapped instead of heap-decoded")
		useWAL      = flag.Bool("wal", false, "write-ahead-log appends and micro-batch them into the serving state")
		walDir      = flag.String("wal-dir", ".", "directory for write-ahead logs and checkpoints")
		flushRows   = flag.Int("flush-rows", 256, "micro-batch flush threshold in rows")
		flushBytes  = flag.Int("flush-bytes", 1<<20, "micro-batch flush threshold in bytes")
		flushEvery  = flag.Duration("flush-interval", 200*time.Millisecond, "maximum time a logged row waits before flushing")
		ckptBytes   = flag.Int64("checkpoint-bytes", 8<<20, "checkpoint and truncate a WAL once it outgrows this size (negative disables)")
		retention   = flag.Duration("retention", 0, "drop rows this far behind the newest event time (0 keeps everything; e.g. 17520h = 2 years)")
		retDim      = flag.String("retention-dim", "", "time dimension retention is measured on (required with -retention)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this extra address (empty disables)")
		logRequests = flag.Bool("log-requests", false, "log one structured line per request to stderr")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Printf("reptiled %s\n", version)
		return
	}

	var reqLog *slog.Logger
	if *logRequests {
		reqLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	srv := server.New(server.Config{
		SessionTTL:      *sessionTTL,
		CacheSize:       *cacheSize,
		MaxInflight:     *maxInflight,
		QueueWait:       *queueWait,
		DisableCube:     *noCube,
		Shards:          *shards,
		ShardKey:        *shardKey,
		MappedIO:        *mmapIO,
		WAL:             *useWAL,
		WALDir:          *walDir,
		FlushRows:       *flushRows,
		FlushBytes:      *flushBytes,
		FlushInterval:   *flushEvery,
		CheckpointBytes: *ckptBytes,
		Retention:       *retention,
		RetentionDim:    *retDim,
		Version:         version,
		RequestLog:      reqLog,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: the default ServeMux
		// would expose profiling on the API port, and the API mux never
		// exposes profiling. Failures here are fatal — asking for a profiler
		// and silently not getting one wastes an incident.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Addr: *pprofAddr, Handler: pm}
		go func() {
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("pprof listener: %v", err)
			}
		}()
		defer ps.Close()
		log.Printf("reptiled pprof on %s", *pprofAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("reptiled %s listening on %s", version, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("reptiled shutting down (draining up to %s)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			log.Printf("ingestion shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
}
