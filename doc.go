// Package repro is a from-scratch Go reproduction of "Reptile:
// Aggregation-level Explanations for Hierarchical Data" (Huang & Wu, SIGMOD
// 2022). The public entry points live under internal/core (the explanation
// engine), with the factorised-representation machinery in internal/factor
// and internal/fmatrix, the multi-level model trainer in internal/mlm, and
// one runner per paper table/figure in internal/experiments. See README.md
// for build, CLI usage and the package map.
package repro
