// Package repro is a from-scratch Go reproduction of "Reptile:
// Aggregation-level Explanations for Hierarchical Data" (Huang & Wu, SIGMOD
// 2022).
//
// The public entry points are the three packages under reptile/:
//
//   - reptile — the SDK: open a CSV or .rst dataset (or build one in
//     memory), start drill-down sessions, submit complaints, and receive
//     ranked drill-down recommendations, all without importing internal/.
//   - reptile/api — the versioned v1 wire protocol of the HTTP service:
//     request/response structs and the structured error envelope, shared by
//     the server and every client.
//   - reptile/client — the native Go client for the full v1 surface, with
//     context support and typed errors.
//
// reptile/sampledata ships the generators for the demo datasets the
// examples/ programs run on.
//
// The engine itself lives under internal/: internal/core (the explanation
// engine), internal/factor and internal/fmatrix (the factorised
// representation), internal/mlm (the multi-level model trainer),
// internal/store (columnar .rst snapshots), internal/cube (the materialized
// rollup lattice), internal/server (the HTTP serving layer behind
// cmd/reptiled), and one runner per paper table/figure in
// internal/experiments. See README.md for build, CLI usage, the library
// quickstart and the package map.
package repro
