// Absentee: the §5.1.4 end-to-end workflow on the simulated North Carolina
// absentee data — four single-attribute hierarchies, an overall COUNT
// complaint, and a full drill-down sequence on the factorised engine,
// printing the recommendation at every step.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
)

func main() {
	ds := datasets.GenerateAbsentee(5, 30_000)
	eng, err := core.NewEngine(ds, core.Options{
		EMIterations: 10,
		Trainer:      core.TrainerFactorised,
		TopK:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession(nil)
	if err != nil {
		log.Fatal(err)
	}

	tuple := data.Predicate{}
	start := time.Now()
	for _, hier := range datasets.AbsenteeDrillOrder {
		rec, err := sess.Recommend(core.Complaint{
			Agg:       agg.Count,
			Measure:   "one",
			Tuple:     tuple,
			Direction: core.TooHigh,
		})
		if err != nil {
			log.Fatal(err)
		}
		var hr *core.HierarchyResult
		for i := range rec.All {
			if rec.All[i].Hierarchy == hier {
				hr = &rec.All[i]
			}
		}
		if hr == nil {
			log.Fatalf("hierarchy %s not evaluated", hier)
		}
		top := hr.Ranked[0]
		val := top.Group.Vals[len(top.Group.Vals)-1]
		fmt.Printf("drill %-7s → top group %-12s count %.0f (expected %.1f, gain %.1f)\n",
			hier, val, top.Group.Stats.Count, top.Predicted[agg.Count], top.Gain)
		if err := sess.Drill(hier); err != nil {
			log.Fatal(err)
		}
		tuple[hr.Attr] = val
	}
	fmt.Printf("\n%d invocations over %d rows in %v (factorised trainer)\n",
		len(datasets.AbsenteeDrillOrder), ds.NumRows(), time.Since(start).Round(time.Millisecond))
}
