// Absentee: the §5.1.4 end-to-end workflow on the simulated North Carolina
// absentee data — four single-attribute hierarchies, an overall COUNT
// complaint, and a full drill-down sequence on the factorised engine,
// printing the recommendation at every step. Built entirely on the public
// SDK.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/reptile"
	"repro/reptile/sampledata"
)

func main() {
	ds := sampledata.Absentee(5, 30_000)
	eng, err := reptile.New(ds,
		reptile.WithEMIterations(10),
		reptile.WithTrainer(reptile.TrainerFactorised),
		reptile.WithTopK(3))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession(nil)
	if err != nil {
		log.Fatal(err)
	}

	tuple := reptile.Predicate{}
	start := time.Now()
	for _, hier := range sampledata.AbsenteeDrillOrder {
		rec, err := sess.Recommend(reptile.Complaint{
			Agg:       reptile.Count,
			Measure:   "one",
			Tuple:     tuple,
			Direction: reptile.TooHigh,
		})
		if err != nil {
			log.Fatal(err)
		}
		var hr *reptile.HierarchyResult
		for i := range rec.All {
			if rec.All[i].Hierarchy == hier {
				hr = &rec.All[i]
			}
		}
		if hr == nil {
			log.Fatalf("hierarchy %s not evaluated", hier)
		}
		top := hr.Ranked[0]
		val := top.Group.Vals[len(top.Group.Vals)-1]
		fmt.Printf("drill %-7s → top group %-12s count %.0f (expected %.1f, gain %.1f)\n",
			hier, val, top.Group.Stats.Count, top.Predicted[reptile.Count], top.Gain)
		if err := sess.Drill(hier); err != nil {
			log.Fatal(err)
		}
		tuple[hr.Attr] = val
	}
	fmt.Printf("\n%d invocations over %d rows in %v (factorised trainer)\n",
		len(sampledata.AbsenteeDrillOrder), ds.NumRows(), time.Since(start).Round(time.Millisecond))
}
