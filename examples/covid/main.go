// Covid: the §5.3 case-study workflow — a data-quality analyst notices the
// national total on one day is off, and Reptile localizes the state whose
// reporting broke, using 1-day and 7-day lag features for trend and
// seasonality.
package main

import (
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/feature"
)

func main() {
	base := datasets.GenerateCovidUS(3)
	// Inject the Table 1 issue 3572: Texas confirmed cases missing on d070.
	var issue datasets.Issue
	for _, i := range datasets.USIssues() {
		if i.ID == "3572" {
			issue = i
		}
	}
	ds := issue.Apply(base)
	fmt.Printf("injected issue %s: %s\n\n", issue.ID, issue.Title)

	eng, err := core.NewEngine(ds, core.Options{
		EMIterations:  10,
		TopK:          5,
		RandomEffects: core.ZIntercept,
		GroupFeatures: []feature.GroupFeature{
			feature.LagFeature("day", 1),
			feature.LagFeature("day", 7),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"day"})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sess.Recommend(core.Complaint{
		Agg:       agg.Sum,
		Measure:   issue.Measure,
		Tuple:     data.Predicate{"day": issue.DayName()},
		Direction: core.TooLow,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complaint: national %s on %s is too low (total %.0f)\n\n",
		issue.Measure, issue.DayName(), rec.Best.Current)
	fmt.Println("top suspect states:")
	for i, gs := range rec.Best.Ranked {
		state, _ := gs.Group.Value([]string{"day", "state"}, "state")
		fmt.Printf("  %d. %-15s observed %.0f, expected %.0f (gain %.0f)\n",
			i+1, state, gs.Group.Stats.Sum, gs.Predicted[agg.Mean]*gs.Group.Stats.Count, gs.Gain)
	}
}
