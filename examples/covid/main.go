// Covid: the §5.3 case-study workflow — a data-quality analyst notices the
// national total on one day is off, and Reptile localizes the state whose
// reporting broke, using 1-day and 7-day lag features for trend and
// seasonality. Built entirely on the public SDK: the demo data comes from
// reptile/sampledata.
package main

import (
	"fmt"
	"log"

	"repro/reptile"
	"repro/reptile/sampledata"
)

func main() {
	base := sampledata.CovidUS(3)
	// Inject the Table 1 issue 3572: Texas confirmed cases missing on d070.
	var issue sampledata.Issue
	for _, i := range sampledata.USIssues() {
		if i.ID == "3572" {
			issue = i
		}
	}
	ds := issue.Apply(base)
	fmt.Printf("injected issue %s: %s\n\n", issue.ID, issue.Title)

	eng, err := reptile.New(ds,
		reptile.WithEMIterations(10),
		reptile.WithTopK(5),
		reptile.WithRandomEffects(reptile.ZIntercept),
		reptile.WithGroupFeatures(
			reptile.LagFeature("day", 1),
			reptile.LagFeature("day", 7),
		))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"day"})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sess.Recommend(reptile.Complaint{
		Agg:       reptile.Sum,
		Measure:   issue.Measure,
		Tuple:     reptile.Predicate{"day": issue.DayName()},
		Direction: reptile.TooLow,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complaint: national %s on %s is too low (total %.0f)\n\n",
		issue.Measure, issue.DayName(), rec.Best.Current)
	fmt.Println("top suspect states:")
	for i, gs := range rec.Best.Ranked {
		state, _ := gs.Group.Value([]string{"day", "state"}, "state")
		fmt.Printf("  %d. %-15s observed %.0f, expected %.0f (gain %.0f)\n",
			i+1, state, gs.Group.Stats.Sum, gs.Predicted[reptile.Mean]*gs.Group.Stats.Count, gs.Gain)
	}
}
