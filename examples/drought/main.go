// Drought: the §5.4 FIST workflow on the simulated Ethiopian survey data —
// iterative drill-down with a satellite-rainfall auxiliary dataset joined on
// (village, year). The example replays one of the user-study complaints end
// to end: region-level STD complaint → district → village. Built entirely on
// the public SDK.
package main

import (
	"fmt"
	"log"

	"repro/reptile"
	"repro/reptile/sampledata"
)

func main() {
	f := sampledata.FISTSurvey(11)
	eng, err := reptile.New(f.DS,
		reptile.WithEMIterations(15),
		reptile.WithTopK(5),
		reptile.WithGroupFeatures(
			reptile.AuxGroupFeature("rainfall", f.Rainfall, []string{"village", "year"}, "rainfall")))
	if err != nil {
		log.Fatal(err)
	}

	// Pick a scripted region-level scenario from the generated study.
	var scenario sampledata.FISTComplaint
	for _, sc := range f.Study {
		if len(sc.Steps) == 2 && sc.ExpectResolve {
			scenario = sc
			break
		}
	}
	fmt.Printf("scenario: %s\n\n", scenario.Desc)

	for si, step := range scenario.Steps {
		sess, err := eng.NewSession(step.GroupBy)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := sess.Recommend(step.Complaint)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: complain %s(%s) %v at %v\n", si+1,
			step.Complaint.Agg, step.Complaint.Measure, step.Complaint.Direction, step.Complaint.Tuple)
		fmt.Printf("  drill %s → %s; top groups:\n", rec.Best.Hierarchy, rec.Best.Attr)
		for i, gs := range rec.Best.Ranked {
			fmt.Printf("    %d. %v (gain %.3f)\n", i+1, gs.Group.Vals[len(gs.Group.Vals)-1], gs.Gain)
		}
	}
	fmt.Println("\nThe final village is the injected error; its rainfall does not explain the reports.")
}
