// Quickstart: the paper's Example 1 in miniature, written against the
// public reptile SDK only. A drought-severity survey over a geography
// hierarchy (district → village) and a year hierarchy; the analyst complains
// that the standard deviation of severity in (Ofla, 1986) is too high, and
// Reptile recommends the drill-down that best explains it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/reptile"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	h := []reptile.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := reptile.NewDataset("drought", []string{"district", "village", "year"}, []string{"severity"}, h)

	// Villages report severity ≈ 8 during the 1986 drought — except Zata,
	// whose reports were mistakenly recorded far too low.
	villages := map[string][]string{
		"Ofla": {"Adishim", "Darube", "Dinka", "Fala", "Zata"},
		"Raya": {"Kukufto", "Mehoni", "Wajirat", "Chercher", "Bala"},
	}
	for _, year := range []string{"1984", "1985", "1986", "1987", "1988"} {
		for district, vs := range villages {
			for _, v := range vs {
				base := 6.0
				if year == "1986" {
					base = 8 // the drought year
				}
				for i := 0; i < 6; i++ {
					sev := base + rng.NormFloat64()
					if v == "Zata" && year == "1986" {
						sev -= 5 // the data error
					}
					ds.AppendRowVals([]string{district, v, year}, []float64{sev})
				}
			}
		}
	}

	eng, err := reptile.New(ds, reptile.WithEMIterations(15))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		log.Fatal(err)
	}

	// The complaint: Ofla's 1986 severity standard deviation is too high.
	rec, err := sess.Recommend(reptile.Complaint{
		Agg:       reptile.Std,
		Measure:   "severity",
		Tuple:     reptile.Predicate{"district": "Ofla", "year": "1986"},
		Direction: reptile.TooHigh,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("complaint: STD(severity) of (Ofla, 1986) = %.2f is too high\n\n", rec.Best.Current)
	fmt.Printf("recommended drill-down: hierarchy %q, attribute %q\n\n", rec.Best.Hierarchy, rec.Best.Attr)
	fmt.Println("ranked groups (repairing the top group best resolves the complaint):")
	for i, gs := range rec.Best.Ranked {
		fmt.Printf("  %d. %-10v repaired STD %.2f (gain %.2f), expected mean %.1f vs observed %.1f\n",
			i+1, gs.Group.Vals[len(gs.Group.Vals)-1], gs.Repaired, gs.Gain,
			gs.Predicted[reptile.Mean], gs.Group.Stats.Mean())
	}
	fmt.Println("\nZata's low mean is the unexplained anomaly — exactly the paper's Figure 1 walkthrough.")
}
