// Vote: the Appendix N election case study — why is Georgia's 2020 Trump
// share lower than expected? Comparing the default model with one that joins
// the 2016 county shares shows how auxiliary data changes the explanation:
// model 1 flags outlier counties, model 2 flags counties that *moved*.
// Built entirely on the public SDK.
package main

import (
	"fmt"
	"log"

	"repro/reptile"
	"repro/reptile/sampledata"
)

func run(v *sampledata.Vote, withAux bool) *reptile.Recommendation {
	opts := []reptile.Option{reptile.WithEMIterations(15), reptile.WithTopK(5)}
	if withAux {
		opts = append(opts, reptile.WithAux(
			reptile.Aux{Name: "pct2016", Table: v.Aux2016, JoinAttr: "county", Measure: "pct2016"}))
	}
	eng, err := reptile.New(v.DS, opts...)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"state"})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sess.Recommend(reptile.Complaint{
		Agg:       reptile.Mean,
		Measure:   "pct2020",
		Tuple:     reptile.Predicate{"state": "Georgia"},
		Direction: reptile.TooLow,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rec
}

func main() {
	v := sampledata.VoteData(9)
	fmt.Println("complaint: Georgia's mean 2020 Trump share across counties is too low")

	for _, cfg := range []struct {
		name    string
		withAux bool
	}{
		{"model 1 (default features)", false},
		{"model 2 (+2016 county shares)", true},
	} {
		rec := run(v, cfg.withAux)
		fmt.Printf("\n%s — top counties by margin gain:\n", cfg.name)
		for i, gs := range rec.Best.Ranked {
			county, _ := gs.Group.Value([]string{"state", "county"}, "county")
			fmt.Printf("  %d. %-14s observed %.1f%%, expected %.1f%% (gain %.3f)\n",
				i+1, county, gs.Group.Stats.Mean(), gs.Predicted[reptile.Mean], gs.Gain)
		}
	}
	fmt.Println("\nModel 2's ranking tracks the 2016→2020 change rather than raw low shares (Appendix N).")
}
