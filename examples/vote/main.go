// Vote: the Appendix N election case study — why is Georgia's 2020 Trump
// share lower than expected? Comparing the default model with one that joins
// the 2016 county shares shows how auxiliary data changes the explanation:
// model 1 flags outlier counties, model 2 flags counties that *moved*.
package main

import (
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/feature"
)

func run(v *datasets.Vote, withAux bool) *core.Recommendation {
	opts := core.Options{EMIterations: 15, TopK: 5}
	if withAux {
		opts.Aux = []feature.Aux{{Name: "pct2016", Table: v.Aux2016, JoinAttr: "county", Measure: "pct2016"}}
	}
	eng, err := core.NewEngine(v.DS, opts)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"state"})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := sess.Recommend(core.Complaint{
		Agg:       agg.Mean,
		Measure:   "pct2020",
		Tuple:     data.Predicate{"state": "Georgia"},
		Direction: core.TooLow,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rec
}

func main() {
	v := datasets.GenerateVote(9)
	fmt.Println("complaint: Georgia's mean 2020 Trump share across counties is too low")

	for _, cfg := range []struct {
		name    string
		withAux bool
	}{
		{"model 1 (default features)", false},
		{"model 2 (+2016 county shares)", true},
	} {
		rec := run(v, cfg.withAux)
		fmt.Printf("\n%s — top counties by margin gain:\n", cfg.name)
		for i, gs := range rec.Best.Ranked {
			county, _ := gs.Group.Value([]string{"state", "county"}, "county")
			fmt.Printf("  %d. %-14s observed %.1f%%, expected %.1f%% (gain %.3f)\n",
				i+1, county, gs.Group.Stats.Mean(), gs.Predicted[agg.Mean], gs.Gain)
		}
	}
	fmt.Println("\nModel 2's ranking tracks the 2016→2020 change rather than raw low shares (Appendix N).")
}
