// Package agg implements the distributive aggregation functions Reptile
// complains about — COUNT, SUM, MEAN, STD — together with the merge function
// G of Appendix A that reassembles a parent aggregate from its partition, and
// a group-by engine over datasets.
//
// Internally a group's statistics are carried as the distributive triple
// (count, sum, sum of squares), from which every supported aggregate and the
// merge function are derived exactly.
package agg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
)

// Func identifies a distributive aggregation function.
type Func string

// Supported aggregation functions.
const (
	Count Func = "count"
	Sum   Func = "sum"
	Mean  Func = "mean"
	Std   Func = "std"
)

// ParseFunc converts a string into a Func, validating it.
func ParseFunc(s string) (Func, error) {
	switch Func(s) {
	case Count, Sum, Mean, Std:
		return Func(s), nil
	}
	return "", fmt.Errorf("agg: unknown aggregation function %q", s)
}

// Stats is the distributive statistic triple for one group of records.
// Merging partitions is component-wise addition, which makes every derived
// aggregate (COUNT, SUM, MEAN, STD) distributive in the sense of §3.1.
type Stats struct {
	Count float64
	Sum   float64
	SumSq float64
}

// FromValues summarizes a slice of measure values.
func FromValues(vals []float64) Stats {
	var s Stats
	for _, v := range vals {
		s.Count++
		s.Sum += v
		s.SumSq += v * v
	}
	return s
}

// Add returns the merge of two partitions' statistics.
func (s Stats) Add(o Stats) Stats {
	return Stats{Count: s.Count + o.Count, Sum: s.Sum + o.Sum, SumSq: s.SumSq + o.SumSq}
}

// Merge implements G: it reassembles the parent statistics from a partition.
func Merge(parts ...Stats) Stats {
	var out Stats
	for _, p := range parts {
		out = out.Add(p)
	}
	return out
}

// Mean returns the group mean (0 for an empty group).
func (s Stats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Variance returns the sample variance (n-1 denominator, 0 when count < 2).
func (s Stats) Variance() float64 {
	if s.Count < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.SumSq - s.Count*m*m) / (s.Count - 1)
	if v < 0 { // guard against floating point cancellation
		return 0
	}
	return v
}

// Std returns the sample standard deviation.
func (s Stats) Std() float64 { return math.Sqrt(s.Variance()) }

// Get evaluates one aggregation function on the group.
func (s Stats) Get(f Func) float64 {
	switch f {
	case Count:
		return s.Count
	case Sum:
		return s.Sum
	case Mean:
		return s.Mean()
	case Std:
		return s.Std()
	}
	panic(fmt.Sprintf("agg: unknown function %q", f))
}

// WithAggregate returns a copy of s in which aggregate f has been replaced by
// value v, keeping the other distributive components consistent. This is the
// repair primitive: repairing MEAN keeps COUNT and the dispersion around the
// mean; repairing COUNT keeps MEAN and STD; repairing SUM scales the mean at
// fixed count; repairing STD keeps COUNT and MEAN.
func (s Stats) WithAggregate(f Func, v float64) Stats {
	switch f {
	case Count:
		return FromMoments(v, s.Mean(), s.Std())
	case Mean:
		return FromMoments(s.Count, v, s.Std())
	case Std:
		return FromMoments(s.Count, s.Mean(), v)
	case Sum:
		if s.Count == 0 {
			// An empty group has no records whose mean could be scaled:
			// carry the repaired sum directly, keeping Count and SumSq at
			// zero, instead of fabricating a phantom single record (which
			// would leak a spurious +1 into every parent COUNT merge).
			return Stats{Sum: v}
		}
		return FromMoments(s.Count, v/s.Count, s.Std())
	}
	panic(fmt.Sprintf("agg: unknown function %q", f))
}

// FromMoments builds the distributive triple from (count, mean, std). It is
// the inverse of the Appendix A decomposition.
func FromMoments(count, mean, std float64) Stats {
	if count < 0 {
		count = 0
	}
	s := Stats{Count: count, Sum: count * mean}
	variance := std * std
	if count >= 2 {
		s.SumSq = (count-1)*variance + count*mean*mean
	} else {
		s.SumSq = count * mean * mean
	}
	return s
}

// MergeMoments implements the Appendix A formulas for G over (count, mean,
// std) triples directly. It exists to cross-check Merge; both agree exactly
// on the derived aggregates.
func MergeMoments(parts ...Stats) (count, mean, std float64) {
	var n float64
	for _, p := range parts {
		n += p.Count
	}
	count = n
	if n == 0 {
		return 0, 0, 0
	}
	var ws float64
	for _, p := range parts {
		ws += p.Count * p.Mean()
	}
	mean = ws / n
	if n < 2 {
		return count, mean, 0
	}
	var acc float64
	for _, p := range parts {
		if p.Count >= 1 {
			acc += (p.Count - 1) * p.Variance()
			d := mean - p.Mean()
			acc += p.Count * d * d
		}
	}
	v := acc / (n - 1)
	if v < 0 {
		v = 0
	}
	return count, mean, math.Sqrt(v)
}

// Group is one output tuple of a group-by: its key values (in attribute
// order) and statistics.
type Group struct {
	Key   string   // encoded key (data.EncodeKey of Vals)
	Vals  []string // one value per group-by attribute
	Stats Stats
}

// Value returns the group's value for attribute a given the result's
// attribute list.
func (g Group) Value(attrs []string, a string) (string, bool) {
	for i, x := range attrs {
		if x == a {
			return g.Vals[i], true
		}
	}
	return "", false
}

// Result is the output of a group-by aggregation: the ordered group list and
// an index from encoded key to position.
type Result struct {
	Attrs   []string
	Measure string
	Groups  []Group
	Index   map[string]int
}

// NewResult assembles a Result from unordered groups: it sorts them by their
// key values lexicographically, attribute by attribute, and indexes the
// sorted positions. Every GroupBy path — the string scan, the coded scan,
// and materialized providers (internal/cube) — assembles its output here, so
// group ordering can never drift between them.
func NewResult(attrs []string, measure string, groups []Group) *Result {
	sort.Slice(groups, func(a, b int) bool {
		ga, gb := groups[a].Vals, groups[b].Vals
		for i := range ga {
			if ga[i] != gb[i] {
				return ga[i] < gb[i]
			}
		}
		return false
	})
	index := make(map[string]int, len(groups))
	for i, g := range groups {
		index[g.Key] = i
	}
	return &Result{Attrs: attrs, Measure: measure, Groups: groups, Index: index}
}

// Get returns the group with the given key values.
func (r *Result) Get(vals []string) (Group, bool) {
	i, ok := r.Index[data.EncodeKey(vals)]
	if !ok {
		return Group{}, false
	}
	return r.Groups[i], true
}

// Total merges every group back into one statistic (G over the partition).
func (r *Result) Total() Stats {
	var out Stats
	for _, g := range r.Groups {
		out = out.Add(g.Stats)
	}
	return out
}

// Materialized is the interface of a precomputed-aggregate provider attached
// to a dataset via data.Dataset.SetRollup (internal/cube's Cube implements
// it). GroupBy reports ok=false when it cannot answer the grouping — the
// caller then falls back to a row scan. A provider must return results
// equal to the scan it replaces, freshly allocated per call: bit-identical
// when built directly from the rows (internal/cube's build path), and at
// worst reassociating the floating-point sums of incrementally merged
// partitions (its append path) — counts are always exact.
type Materialized interface {
	GroupBy(attrs []string, measure string) (*Result, bool)
}

// MaterializedOf returns the dataset's attached materialized-aggregate
// provider, if any.
func MaterializedOf(d *data.Dataset) (Materialized, bool) {
	m, ok := d.Rollup().(Materialized)
	return m, ok
}

// GroupBy aggregates measure over the given attributes. Groups are sorted by
// their key values lexicographically, attribute by attribute. When the
// dataset carries a materialized aggregate attachment that covers the
// grouping (a hierarchy-prefix cube), the answer comes from precomputed
// cells in O(groups); otherwise, when every attribute carries a dictionary
// encoding (datasets loaded through internal/store), grouping runs over
// integer codes instead of encoded string keys — from heap slices when the
// columns are materialized, or in one streaming pass over column cursors when
// the dataset is memory-mapped. All paths produce identical results.
func GroupBy(d *data.Dataset, attrs []string, measure string) *Result {
	if m, ok := MaterializedOf(d); ok {
		if r, ok := m.GroupBy(attrs, measure); ok {
			return r
		}
	}
	if r := groupByCoded(d, attrs, measure); r != nil {
		return r
	}
	if r := groupByStreamed(d, attrs, measure); r != nil {
		return r
	}
	cols := make([][]string, len(attrs))
	for i, a := range attrs {
		cols[i] = d.Dim(a)
	}
	ms := d.Measure(measure)
	index := make(map[string]int)
	var groups []Group
	vals := make([]string, len(attrs))
	for row := 0; row < d.NumRows(); row++ {
		for i := range attrs {
			vals[i] = cols[i][row]
		}
		key := data.EncodeKey(vals)
		gi, ok := index[key]
		if !ok {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, Group{Key: key, Vals: append([]string(nil), vals...)})
		}
		g := &groups[gi]
		v := ms[row]
		g.Stats.Count++
		g.Stats.Sum += v
		g.Stats.SumSq += v * v
	}
	return NewResult(attrs, measure, groups)
}

// groupByStreamed is the cursor variant of groupByCoded: one streaming pass
// over the dataset's column cursors, for cursor-backed (memory-mapped)
// datasets whose columns exist only as lazily-decoded readers. The bucketing
// is the identical mixed-radix composite over the identical dictionaries and
// the output converges in NewResult, so results are byte-identical to the
// slice paths. Returns nil (fall back to the string scan) when any attribute
// lacks a dictionary or the radix product overflows.
func groupByStreamed(d *data.Dataset, attrs []string, measure string) *Result {
	if len(attrs) == 0 {
		return nil
	}
	dicts := make([][]string, len(attrs))
	curs := make([]data.DimCursor, len(attrs))
	radix := uint64(1)
	for i, a := range attrs {
		dict, ok := d.DimDict(a)
		if !ok || len(dict) == 0 {
			return nil
		}
		if radix > math.MaxUint64/uint64(len(dict)) {
			return nil
		}
		radix *= uint64(len(dict))
		dicts[i] = dict
		curs[i] = d.DimCursor(a)
	}
	ms := d.MeasureCursor(measure)
	cindex := make(map[uint64]int)
	var groups []Group
	var composite []uint64
	for row := 0; row < d.NumRows(); row++ {
		k := uint64(0)
		for i := range attrs {
			k = k*uint64(len(dicts[i])) + uint64(curs[i].Code(row))
		}
		gi, ok := cindex[k]
		if !ok {
			gi = len(groups)
			cindex[k] = gi
			groups = append(groups, Group{})
			composite = append(composite, k)
		}
		g := &groups[gi]
		v := ms.At(row)
		g.Stats.Count++
		g.Stats.Sum += v
		g.Stats.SumSq += v * v
	}
	for gi := range groups {
		k := composite[gi]
		vals := make([]string, len(attrs))
		for i := len(attrs) - 1; i >= 0; i-- {
			size := uint64(len(dicts[i]))
			vals[i] = dicts[i][k%size]
			k /= size
		}
		groups[gi].Vals = vals
		groups[gi].Key = data.EncodeKey(vals)
	}
	return NewResult(attrs, measure, groups)
}

// groupByCoded is the dictionary-code fast path of GroupBy: rows are bucketed
// by a mixed-radix composite of their per-attribute codes, and the group's
// string values are decoded once per group rather than once per row. Returns
// nil (fall back to the string path) when any attribute lacks codes, the
// radix product overflows uint64, or there is nothing to gain (no group-by
// attributes).
func groupByCoded(d *data.Dataset, attrs []string, measure string) *Result {
	if len(attrs) == 0 {
		return nil
	}
	dicts := make([][]string, len(attrs))
	codes := make([][]uint32, len(attrs))
	radix := uint64(1)
	for i, a := range attrs {
		dict, cs, ok := d.DimCodes(a)
		if !ok || len(dict) == 0 {
			return nil
		}
		if radix > math.MaxUint64/uint64(len(dict)) {
			return nil
		}
		radix *= uint64(len(dict))
		dicts[i], codes[i] = dict, cs
	}
	ms := d.Measure(measure)
	cindex := make(map[uint64]int)
	var groups []Group
	var composite []uint64
	for row := 0; row < d.NumRows(); row++ {
		k := uint64(0)
		for i := range attrs {
			k = k*uint64(len(dicts[i])) + uint64(codes[i][row])
		}
		gi, ok := cindex[k]
		if !ok {
			gi = len(groups)
			cindex[k] = gi
			groups = append(groups, Group{})
			composite = append(composite, k)
		}
		g := &groups[gi]
		v := ms[row]
		g.Stats.Count++
		g.Stats.Sum += v
		g.Stats.SumSq += v * v
	}
	for gi := range groups {
		k := composite[gi]
		vals := make([]string, len(attrs))
		for i := len(attrs) - 1; i >= 0; i-- {
			size := uint64(len(dicts[i]))
			vals[i] = dicts[i][k%size]
			k /= size
		}
		groups[gi].Vals = vals
		groups[gi].Key = data.EncodeKey(vals)
	}
	return NewResult(attrs, measure, groups)
}
