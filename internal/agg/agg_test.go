package agg

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/mat"
)

func TestFromValuesBasics(t *testing.T) {
	s := FromValues([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Sum != 10 || s.SumSq != 30 {
		t.Fatalf("FromValues = %+v", s)
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	wantVar := mat.Variance([]float64{1, 2, 3, 4})
	if math.Abs(s.Variance()-wantVar) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), wantVar)
	}
	if math.Abs(s.Std()-math.Sqrt(wantVar)) > 1e-12 {
		t.Errorf("Std = %v", s.Std())
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Std() != 0 || s.Variance() != 0 {
		t.Error("empty stats should be all zero")
	}
	one := FromValues([]float64{7})
	if one.Mean() != 7 || one.Std() != 0 {
		t.Errorf("singleton = mean %v std %v", one.Mean(), one.Std())
	}
}

func TestGetAllFuncs(t *testing.T) {
	s := FromValues([]float64{2, 4, 6})
	if s.Get(Count) != 3 || s.Get(Sum) != 12 || s.Get(Mean) != 4 {
		t.Error("Get basic funcs wrong")
	}
	if math.Abs(s.Get(Std)-2) > 1e-12 {
		t.Errorf("Get(Std) = %v", s.Get(Std))
	}
}

func TestParseFunc(t *testing.T) {
	for _, name := range []string{"count", "sum", "mean", "std"} {
		if _, err := ParseFunc(name); err != nil {
			t.Errorf("ParseFunc(%q): %v", name, err)
		}
	}
	if _, err := ParseFunc("max"); err == nil {
		t.Error("expected error for unsupported func")
	}
}

// The central distributivity invariant: f(R) == G(f(R1), ..., f(RJ)) for any
// partition of R.
func TestMergeDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64()*10 + 50
		}
		whole := FromValues(vals)
		// Random partition into up to 5 parts.
		parts := make([][]float64, 1+r.Intn(5))
		for _, v := range vals {
			p := r.Intn(len(parts))
			parts[p] = append(parts[p], v)
		}
		var stats []Stats
		for _, p := range parts {
			stats = append(stats, FromValues(p))
		}
		merged := Merge(stats...)
		return math.Abs(merged.Count-whole.Count) < 1e-9 &&
			math.Abs(merged.Sum-whole.Sum) < 1e-6 &&
			math.Abs(merged.Std()-whole.Std()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// MergeMoments (the literal Appendix A formulas) must agree with the
// sum-of-squares merge.
func TestMergeMomentsAgreesWithMerge(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var stats []Stats
		for p := 0; p < 1+r.Intn(4); p++ {
			n := 1 + r.Intn(20)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = r.NormFloat64() * 5
			}
			stats = append(stats, FromValues(vals))
		}
		m := Merge(stats...)
		c, mean, std := MergeMoments(stats...)
		return math.Abs(c-m.Count) < 1e-9 &&
			math.Abs(mean-m.Mean()) < 1e-9 &&
			math.Abs(std-m.Std()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromMomentsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 3
		}
		s := FromValues(vals)
		back := FromMoments(s.Count, s.Mean(), s.Std())
		return math.Abs(back.Count-s.Count) < 1e-9 &&
			math.Abs(back.Mean()-s.Mean()) < 1e-9 &&
			math.Abs(back.Std()-s.Std()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWithAggregateRepairSemantics(t *testing.T) {
	s := FromValues([]float64{8, 10, 12}) // count 3, mean 10, std 2
	r := s.WithAggregate(Mean, 20)
	if r.Count != 3 || math.Abs(r.Mean()-20) > 1e-9 || math.Abs(r.Std()-2) > 1e-9 {
		t.Errorf("Mean repair = %+v (mean %v std %v)", r, r.Mean(), r.Std())
	}
	r = s.WithAggregate(Count, 6)
	if r.Count != 6 || math.Abs(r.Mean()-10) > 1e-9 || math.Abs(r.Std()-2) > 1e-9 {
		t.Errorf("Count repair = mean %v std %v", r.Mean(), r.Std())
	}
	r = s.WithAggregate(Sum, 60)
	if r.Count != 3 || math.Abs(r.Mean()-20) > 1e-9 {
		t.Errorf("Sum repair = %+v", r)
	}
	r = s.WithAggregate(Std, 5)
	if math.Abs(r.Std()-5) > 1e-9 || math.Abs(r.Mean()-10) > 1e-9 {
		t.Errorf("Std repair = std %v mean %v", r.Std(), r.Mean())
	}
}

func TestWithAggregateSumOnEmptyGroup(t *testing.T) {
	var s Stats
	r := s.WithAggregate(Sum, 10)
	if r.Sum != 10 {
		t.Errorf("Sum repair on empty group = %+v", r)
	}
	// Regression: the repair must stay empty-consistent — no phantom record.
	// A fabricated Count=1 leaked a spurious +1 into every parent COUNT merge.
	if r.Count != 0 || r.SumSq != 0 {
		t.Errorf("Sum repair on empty group fabricated records: %+v", r)
	}
	if got := Merge(r, FromValues([]float64{5})).Count; got != 1 {
		t.Errorf("merged count after empty-group Sum repair = %v, want 1", got)
	}
}

func buildDemo() *data.Dataset {
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	d := data.New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	rows := []struct {
		dist, vil, yr string
		sev           float64
	}{
		{"Ofla", "Adishim", "1986", 8},
		{"Ofla", "Adishim", "1986", 9},
		{"Ofla", "Darube", "1986", 2},
		{"Ofla", "Zata", "1986", 1},
		{"Ofla", "Adishim", "1987", 7},
		{"Raya", "Kukufto", "1986", 6},
	}
	for _, r := range rows {
		d.AppendRowVals([]string{r.dist, r.vil, r.yr}, []float64{r.sev})
	}
	return d
}

func TestGroupBy(t *testing.T) {
	d := buildDemo()
	res := GroupBy(d, []string{"district", "year"}, "severity")
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Groups))
	}
	g, ok := res.Get([]string{"Ofla", "1986"})
	if !ok {
		t.Fatal("missing Ofla 1986")
	}
	if g.Stats.Count != 4 || g.Stats.Sum != 20 {
		t.Errorf("Ofla 1986 = %+v", g.Stats)
	}
	// Sorted order: Ofla/1986, Ofla/1987, Raya/1986.
	if res.Groups[0].Vals[0] != "Ofla" || res.Groups[0].Vals[1] != "1986" {
		t.Errorf("sort order wrong: %v", res.Groups[0].Vals)
	}
	if res.Groups[2].Vals[0] != "Raya" {
		t.Errorf("sort order wrong: %v", res.Groups[2].Vals)
	}
}

func TestGroupByTotalEqualsWhole(t *testing.T) {
	d := buildDemo()
	res := GroupBy(d, []string{"village"}, "severity")
	total := res.Total()
	whole := FromValues(d.Measure("severity"))
	if total != whole {
		t.Errorf("Total = %+v, want %+v", total, whole)
	}
}

func TestGroupValueLookup(t *testing.T) {
	d := buildDemo()
	res := GroupBy(d, []string{"district", "year"}, "severity")
	g := res.Groups[0]
	if v, ok := g.Value(res.Attrs, "year"); !ok || v != "1986" {
		t.Errorf("Value = %q, %v", v, ok)
	}
	if _, ok := g.Value(res.Attrs, "bogus"); ok {
		t.Error("Value found bogus attribute")
	}
}

func TestGroupByMissingGroup(t *testing.T) {
	d := buildDemo()
	res := GroupBy(d, []string{"district"}, "severity")
	if _, ok := res.Get([]string{"Nowhere"}); ok {
		t.Error("Get returned a missing group")
	}
}

// encodeDims installs a first-appearance dictionary encoding on every
// dimension of a cloned dataset, mirroring what internal/store produces.
func encodeDims(t *testing.T, d *data.Dataset) *data.Dataset {
	t.Helper()
	coded := data.New(d.Name, d.DimNames(), d.MeasureNames(), d.Hierarchies)
	for _, name := range d.DimNames() {
		col := d.Dim(name)
		idx := make(map[string]uint32)
		var dict []string
		codes := make([]uint32, len(col))
		for i, v := range col {
			c, ok := idx[v]
			if !ok {
				c = uint32(len(dict))
				idx[v] = c
				dict = append(dict, v)
			}
			codes[i] = c
		}
		if err := coded.SetEncodedDim(name, dict, codes); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range d.MeasureNames() {
		if err := coded.SetMeasure(name, append([]float64(nil), d.Measure(name)...)); err != nil {
			t.Fatal(err)
		}
	}
	return coded
}

func TestGroupByCodedMatchesStringPath(t *testing.T) {
	d := buildDemo()
	coded := encodeDims(t, d)
	for _, attrs := range [][]string{
		{"district"},
		{"village"},
		{"district", "year"},
		{"district", "village", "year"},
	} {
		want := GroupBy(d, attrs, "severity")
		got := GroupBy(coded, attrs, "severity")
		if !reflect.DeepEqual(got, want) {
			t.Errorf("GroupBy(%v) coded != string:\n got %+v\nwant %+v", attrs, got, want)
		}
	}
	// A randomized dataset exercises collisions and larger dictionaries.
	rng := rand.New(rand.NewSource(3))
	h := []data.Hierarchy{{Name: "a", Attrs: []string{"a"}}, {Name: "b", Attrs: []string{"b"}}, {Name: "c", Attrs: []string{"c"}}}
	big := data.New("rand", []string{"a", "b", "c"}, []string{"m"}, h)
	for i := 0; i < 2000; i++ {
		big.AppendRowVals([]string{
			fmt.Sprintf("a%02d", rng.Intn(17)),
			fmt.Sprintf("b%02d", rng.Intn(11)),
			fmt.Sprintf("c%02d", rng.Intn(23)),
		}, []float64{rng.NormFloat64()})
	}
	codedBig := encodeDims(t, big)
	for _, attrs := range [][]string{{"a"}, {"a", "b"}, {"a", "b", "c"}, {"c", "a"}} {
		want := GroupBy(big, attrs, "m")
		got := GroupBy(codedBig, attrs, "m")
		if !reflect.DeepEqual(got, want) {
			t.Errorf("GroupBy(%v) coded != string path", attrs)
		}
	}
}
