// Package baselines implements the comparison methods of §5.2.1: Sensitivity
// (Scorpion-style deletion interventions), Support (density), Outlier (model
// residual without the complaint), and Raw (record-level winsorization
// repair). Each ranks the same candidate drill-down groups as Reptile and
// returns the indices of the groups it recommends, best first.
package baselines

import (
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
)

// ranked sorts indices by score ascending (lower is better).
func ranked(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	return idx
}

// Sensitivity ranks groups by the complaint value after deleting all of the
// group's rows — the interventional-deletion metric of Scorpion [57].
func Sensitivity(children []agg.Group, c core.Complaint) []int {
	var total agg.Stats
	for _, g := range children {
		total = total.Add(g.Stats)
	}
	scores := make([]float64, len(children))
	for i, g := range children {
		after := agg.Stats{
			Count: total.Count - g.Stats.Count,
			Sum:   total.Sum - g.Stats.Sum,
			SumSq: total.SumSq - g.Stats.SumSq,
		}
		scores[i] = c.Eval(after.Get(c.Agg))
	}
	return ranked(scores)
}

// Support ranks groups by row count descending — the density criterion used
// as pruning in explanation systems [1, 24].
func Support(children []agg.Group) []int {
	scores := make([]float64, len(children))
	for i, g := range children {
		scores[i] = -g.Stats.Count
	}
	return ranked(scores)
}

// Outlier ranks groups by |observed − predicted| descending, ignoring the
// complaint. pred holds the model's expected value of the complained
// aggregate per group (aligned with children).
func Outlier(children []agg.Group, pred []float64, f agg.Func) []int {
	scores := make([]float64, len(children))
	for i, g := range children {
		scores[i] = -math.Abs(g.Stats.Get(f) - pred[i])
	}
	return ranked(scores)
}

// Raw is the record-level bottom-up approach based on winsorization [29]:
// within each group it clips every measure value to [mean−std, mean+std],
// then ranks groups by the complaint value after replacing the group's
// statistics with the clipped ones.
func Raw(ds *data.Dataset, groups *agg.Result, children []int, measure string, c core.Complaint) []int {
	// Collect each child group's raw values.
	vals := make(map[int][]float64, len(children))
	childOf := make(map[string]int, len(children))
	for _, gi := range children {
		childOf[groups.Groups[gi].Key] = gi
	}
	ms := ds.Measure(measure)
	for row := 0; row < ds.NumRows(); row++ {
		key := ds.RowKey(row, groups.Attrs)
		if gi, ok := childOf[key]; ok {
			vals[gi] = append(vals[gi], ms[row])
		}
	}
	var total agg.Stats
	for _, gi := range children {
		total = total.Add(groups.Groups[gi].Stats)
	}
	scores := make([]float64, len(children))
	for i, gi := range children {
		g := groups.Groups[gi]
		clipped := winsorize(vals[gi])
		repaired := agg.FromValues(clipped)
		after := total.Add(agg.Stats{
			Count: repaired.Count - g.Stats.Count,
			Sum:   repaired.Sum - g.Stats.Sum,
			SumSq: repaired.SumSq - g.Stats.SumSq,
		})
		scores[i] = c.Eval(after.Get(c.Agg))
	}
	return ranked(scores)
}

// winsorize clips values to [mean−std, mean+std].
func winsorize(v []float64) []float64 {
	s := agg.FromValues(v)
	lo, hi := s.Mean()-s.Std(), s.Mean()+s.Std()
	out := make([]float64, len(v))
	for i, x := range v {
		switch {
		case x < lo:
			out[i] = lo
		case x > hi:
			out[i] = hi
		default:
			out[i] = x
		}
	}
	return out
}
