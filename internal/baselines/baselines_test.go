package baselines

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
)

func groupsFixture() []agg.Group {
	mk := func(name string, vals []float64) agg.Group {
		return agg.Group{Key: name, Vals: []string{name}, Stats: agg.FromValues(vals)}
	}
	return []agg.Group{
		mk("a", []float64{10, 10, 10, 10}),     // normal
		mk("b", []float64{10, 10}),             // low count
		mk("c", []float64{30, 30, 30, 30, 30}), // high values, biggest count
	}
}

func TestSensitivityPrefersDeletionThatHelps(t *testing.T) {
	children := groupsFixture()
	// "sum too high": deleting c removes the most sum.
	c := core.Complaint{Agg: agg.Sum, Direction: core.TooHigh}
	order := Sensitivity(children, c)
	if order[0] != 2 {
		t.Errorf("Sensitivity top = %d, want 2 (group c)", order[0])
	}
	// "count too low": no deletion helps; the least-harmful deletion is the
	// smallest group.
	c = core.Complaint{Agg: agg.Count, Direction: core.TooLow}
	order = Sensitivity(children, c)
	if order[0] != 1 {
		t.Errorf("Sensitivity top = %d, want 1 (smallest group)", order[0])
	}
}

func TestSupportPicksLargestGroup(t *testing.T) {
	order := Support(groupsFixture())
	if order[0] != 2 {
		t.Errorf("Support top = %d, want 2", order[0])
	}
}

func TestOutlierPicksLargestResidual(t *testing.T) {
	children := groupsFixture()
	pred := []float64{10, 10, 10} // model expects mean 10 everywhere
	order := Outlier(children, pred, agg.Mean)
	if order[0] != 2 {
		t.Errorf("Outlier top = %d, want 2 (mean 30 vs 10)", order[0])
	}
}

func TestRawWinsorization(t *testing.T) {
	h := []data.Hierarchy{{Name: "g", Attrs: []string{"grp"}}}
	ds := data.New("x", []string{"grp"}, []string{"m"}, h)
	// Group "a": one wild outlier pulls the mean up; winsorization brings it
	// back. Group "b": symmetric, winsorization changes little.
	for _, v := range []float64{10, 10, 10, 100} {
		ds.AppendRowVals([]string{"a"}, []float64{v})
	}
	for _, v := range []float64{10, 12, 8, 10} {
		ds.AppendRowVals([]string{"b"}, []float64{v})
	}
	groups := agg.GroupBy(ds, []string{"grp"}, "m")
	children := []int{0, 1}
	c := core.Complaint{Agg: agg.Mean, Direction: core.TooHigh}
	order := Raw(ds, groups, children, "m", c)
	if groups.Groups[children[order[0]]].Key != "a" {
		t.Errorf("Raw top = %v, want group a", groups.Groups[children[order[0]]].Key)
	}
}

func TestWinsorizeClipsToOneStd(t *testing.T) {
	out := winsorize([]float64{0, 10, 10, 10, 20})
	s := agg.FromValues([]float64{0, 10, 10, 10, 20})
	lo, hi := s.Mean()-s.Std(), s.Mean()+s.Std()
	for _, v := range out {
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Errorf("winsorized value %v outside [%v, %v]", v, lo, hi)
		}
	}
}
