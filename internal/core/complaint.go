// Package core implements Reptile's primary contribution: the
// complaint-based drill-down problem (§3.1). Given a view over hierarchical
// data and a complaint about one of its tuples, the engine evaluates every
// candidate drill-down hierarchy, trains a multi-level model on the parallel
// groups to estimate each drill-down group's expected statistics, and ranks
// the groups by how much repairing their statistics to the expectation
// resolves the complaint.
package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/data"
)

// Direction expresses how the complained value deviates from expectation.
type Direction int

const (
	// TooHigh means the aggregate should be lower.
	TooHigh Direction = iota
	// TooLow means the aggregate should be higher.
	TooLow
	// ShouldBe means the aggregate should equal Complaint.Target.
	ShouldBe
)

func (d Direction) String() string {
	switch d {
	case TooHigh:
		return "too high"
	case TooLow:
		return "too low"
	case ShouldBe:
		return "should be"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Complaint is the user's statement about one tuple of the current view:
// the aggregate fcomp aims to repair, the tuple's identifying dimension
// values, and the deviation direction (§3.1). It defines the function
// fcomp: tuple → ℝ that Reptile minimizes.
type Complaint struct {
	// Agg is the complained aggregation function.
	Agg agg.Func
	// Measure is the measure attribute the aggregate is computed over.
	Measure string
	// Tuple identifies the complained tuple: a value for every current
	// group-by attribute.
	Tuple data.Predicate
	// Direction states how the value deviates.
	Direction Direction
	// Target is the expected value when Direction == ShouldBe.
	Target float64
	// Custom, when non-nil, overrides the built-in directions with a
	// user-provided fcomp (§3.1 allows any function of the aggregate that
	// the user aims to minimize).
	Custom func(v float64) float64
}

// Key returns a stable cache key identifying the complaint: two complaints
// with equal keys produce identical recommendations against the same engine
// and drill state. Complaints carrying a Custom fcomp have no stable
// identity, so ok is false and they must not be cached.
func (c Complaint) Key() (key string, ok bool) {
	if c.Custom != nil {
		return "", false
	}
	attrs := make([]string, 0, len(c.Tuple))
	for a := range c.Tuple {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	// Attribute names and values are quoted so separator bytes inside them
	// (NUL, '=') cannot make two distinct complaints collide on one key.
	var b strings.Builder
	fmt.Fprintf(&b, "agg=%s\x00measure=%q\x00dir=%d", c.Agg, c.Measure, int(c.Direction))
	if c.Direction == ShouldBe {
		fmt.Fprintf(&b, "\x00target=%s", strconv.FormatFloat(c.Target, 'g', -1, 64))
	}
	for _, a := range attrs {
		fmt.Fprintf(&b, "\x00%q=%q", a, c.Tuple[a])
	}
	return b.String(), true
}

// Eval implements fcomp: the value the user wants minimized. For TooHigh it
// is the aggregate itself; for TooLow its negation; for ShouldBe the
// absolute distance to the target; a Custom function overrides all three.
func (c Complaint) Eval(v float64) float64 {
	if c.Custom != nil {
		return c.Custom(v)
	}
	switch c.Direction {
	case TooHigh:
		return v
	case TooLow:
		return -v
	case ShouldBe:
		return math.Abs(v - c.Target)
	}
	panic(fmt.Sprintf("core: unknown direction %d", int(c.Direction)))
}

// baseStats returns the distributive statistics that must be modeled to
// repair the complained aggregate: SUM decomposes into MEAN and COUNT
// (footnote 3), STD requires the group's MEAN and STD (a shifted group mean
// changes the parent's dispersion through the merge formula).
func (c Complaint) baseStats() []agg.Func {
	switch c.Agg {
	case agg.Count:
		return []agg.Func{agg.Count}
	case agg.Mean:
		return []agg.Func{agg.Mean}
	case agg.Sum:
		return []agg.Func{agg.Mean, agg.Count}
	case agg.Std:
		return []agg.Func{agg.Mean, agg.Std}
	}
	panic(fmt.Sprintf("core: unknown aggregate %q", c.Agg))
}

// repairStats applies the model predictions to one group's statistics
// (frepair): the complained aggregate's distributive components are replaced
// by their expected values, keeping the remaining components.
func (c Complaint) repairStats(s agg.Stats, pred map[agg.Func]float64) agg.Stats {
	switch c.Agg {
	case agg.Count:
		v := math.Max(0, math.Round(pred[agg.Count]))
		return s.WithAggregate(agg.Count, v)
	case agg.Mean:
		return s.WithAggregate(agg.Mean, pred[agg.Mean])
	case agg.Sum:
		cnt := math.Max(0, math.Round(pred[agg.Count]))
		return agg.FromMoments(cnt, pred[agg.Mean], s.Std())
	case agg.Std:
		std := math.Max(0, pred[agg.Std])
		return agg.FromMoments(s.Count, pred[agg.Mean], std)
	}
	panic(fmt.Sprintf("core: unknown aggregate %q", c.Agg))
}
