package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/data"
)

// concurrencyComplaints builds one complaint per (district, year, aggregate)
// combination so concurrent sessions exercise distinct model fits.
func concurrencyComplaints() []Complaint {
	var out []Complaint
	aggs := []agg.Func{agg.Mean, agg.Count, agg.Sum, agg.Std}
	for d := 0; d < 3; d++ {
		for y, yr := range []string{"1990", "1992", "1995"} {
			out = append(out, Complaint{
				Agg:       aggs[(d+y)%len(aggs)],
				Measure:   "severity",
				Tuple:     data.Predicate{"district": fmt.Sprintf("d%d", d), "year": yr},
				Direction: TooLow,
			})
		}
	}
	return out
}

// TestConcurrentRecommendMatchesSequential runs concurrent Recommend calls
// from many sessions against one shared Engine and asserts every result is
// identical to the sequential (Workers = 1) path. Run with -race.
func TestConcurrentRecommendMatchesSequential(t *testing.T) {
	for _, trainer := range []TrainerKind{TrainerNaive, TrainerAuto} {
		sc := buildScenario(11)
		sc.corruptMean("d2_v1", "1992", -4)
		opts := Options{EMIterations: 8, Trainer: trainer}

		seqEng, err := NewEngine(sc.ds, Options{EMIterations: opts.EMIterations, Trainer: trainer, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// At least 4 workers so the pool path runs even on small machines.
		workers := runtime.NumCPU()
		if workers < 4 {
			workers = 4
		}
		parEng, err := NewEngine(sc.ds, Options{EMIterations: opts.EMIterations, Trainer: trainer, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}

		complaints := concurrencyComplaints()
		want := make([]*Recommendation, len(complaints))
		for i, c := range complaints {
			s, err := seqEng.NewSession([]string{"district", "year"})
			if err != nil {
				t.Fatal(err)
			}
			if want[i], err = s.Recommend(c); err != nil {
				t.Fatal(err)
			}
		}

		got := make([]*Recommendation, len(complaints))
		errs := make([]error, len(complaints))
		var wg sync.WaitGroup
		for i, c := range complaints {
			wg.Add(1)
			go func(i int, c Complaint) {
				defer wg.Done()
				s, err := parEng.NewSession([]string{"district", "year"})
				if err != nil {
					errs[i] = err
					return
				}
				got[i], errs[i] = s.Recommend(c)
			}(i, c)
		}
		wg.Wait()
		for i := range complaints {
			if errs[i] != nil {
				t.Fatalf("trainer %v complaint %d: %v", trainer, i, errs[i])
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("trainer %v complaint %d: parallel result differs from sequential", trainer, i)
			}
		}
	}
}

// TestConcurrentRecommendOneSession issues concurrent complaints against a
// single session, exercising the session-level GroupBy/factorizer caches
// under contention.
func TestConcurrentRecommendOneSession(t *testing.T) {
	sc := buildScenario(12)
	eng, err := NewEngine(sc.ds, Options{EMIterations: 6, Trainer: TrainerNaive, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	complaints := concurrencyComplaints()
	want := make([]*Recommendation, len(complaints))
	for i, c := range complaints {
		if want[i], err = s.Recommend(c); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*Recommendation, len(complaints))
	errs := make([]error, len(complaints))
	var wg sync.WaitGroup
	for i, c := range complaints {
		wg.Add(1)
		go func(i int, c Complaint) {
			defer wg.Done()
			got[i], errs[i] = s.Recommend(c)
		}(i, c)
	}
	wg.Wait()
	for i := range complaints {
		if errs[i] != nil {
			t.Fatalf("complaint %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("complaint %d: cached concurrent result differs from first run", i)
		}
	}
}

// TestRecommendRacingDrill drills the session while Recommend calls are in
// flight: each call must observe a coherent drill state (old or new), never
// a torn mix — no panics, no errors (both drill states leave geo drillable
// with the complaint tuple still valid).
func TestRecommendRacingDrill(t *testing.T) {
	sc := buildScenario(14)
	eng, err := NewEngine(sc.ds, Options{EMIterations: 3, Trainer: TrainerNaive, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession([]string{"district"})
	if err != nil {
		t.Fatal(err)
	}
	c := Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple:     data.Predicate{"district": "d0"},
		Direction: TooLow,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := s.Recommend(c); err != nil {
					t.Errorf("racing Recommend: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Drill("time"); err != nil {
			t.Errorf("racing Drill: %v", err)
		}
	}()
	wg.Wait()
}

// TestSessionCacheReuse asserts the session cache computes each drill
// state's aggregation once and that a Drill changes the cache key (no stale
// reuse at the new granularity).
func TestSessionCacheReuse(t *testing.T) {
	sc := buildScenario(13)
	eng, err := NewEngine(sc.ds, Options{EMIterations: 4, Trainer: TrainerNaive})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession([]string{"district"})
	if err != nil {
		t.Fatal(err)
	}
	c := Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple:     data.Predicate{"district": "d1"},
		Direction: TooLow,
	}
	first, err := s.Recommend(c)
	if err != nil {
		t.Fatal(err)
	}
	entries := len(s.groups)
	second, err := s.Recommend(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.groups) != entries {
		t.Errorf("repeat complaint grew the cache from %d to %d entries", entries, len(s.groups))
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("repeat complaint returned a different recommendation")
	}
	if err := s.Drill("geo"); err != nil {
		t.Fatal(err)
	}
	if len(s.groups) != 0 || len(s.fzs) != 0 {
		t.Errorf("Drill should drop unreachable cache entries, kept %d/%d", len(s.groups), len(s.fzs))
	}
	rec, err := s.Recommend(Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple:     data.Predicate{"district": "d1", "village": "d1_v0"},
		Direction: TooLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.groups) == 0 {
		t.Error("drilled complaint should aggregate at the new granularity")
	}
	if rec.Best.Hierarchy != "time" {
		t.Errorf("only time is drillable after geo is exhausted, got %q", rec.Best.Hierarchy)
	}
}
