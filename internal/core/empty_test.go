package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/store"
)

// moveGroup relabels every row of (village, year) into another year — the
// FIST "year confusion" error, which makes the (village, year) group vanish
// entirely from the drill-down.
func (sc *scenario) moveGroup(village, fromYear, toYear string) {
	vcol := sc.ds.Dim("village")
	ycol := sc.ds.Dim("year")
	for i := range ycol {
		if vcol[i] == village && ycol[i] == fromYear {
			ycol[i] = toYear
		}
	}
}

// A group that vanished entirely must still be rankable: the engine
// enumerates empty drill-down groups from the hierarchy and scores them with
// model predictions (the paper's empty parallel groups).
func TestRecommendFindsVanishedGroup(t *testing.T) {
	sc := buildScenario(21)
	sc.moveGroup("d2_v1", "1993", "1994")
	eng, err := NewEngine(sc.ds, Options{EMIterations: 10, Trainer: TrainerNaive})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recommend(Complaint{
		Agg:       agg.Count,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d2", "year": "1993"},
		Direction: TooLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := rec.Best.Ranked[0]
	found := false
	for _, v := range top.Group.Vals {
		if v == "d2_v1" {
			found = true
		}
	}
	if !found {
		t.Errorf("top group = %v, want the vanished village d2_v1", top.Group.Vals)
	}
	if top.Group.Stats.Count != 0 {
		t.Errorf("vanished group count = %v, want 0", top.Group.Stats.Count)
	}
	// Its predicted count should be near the regular group size (10).
	if p := top.Predicted[agg.Count]; p < 5 || p > 15 {
		t.Errorf("predicted count = %v, want ≈10", p)
	}
}

// TestVanishedGroupWithCube reruns the vanished-group scenario with a
// materialized cube attached: the engine then discovers the empty drill-down
// candidates from the cube's prefix grouping instead of a row scan
// (cubeChildValues), and the whole recommendation must stay byte-identical
// to the scan engine's.
func TestVanishedGroupWithCube(t *testing.T) {
	sc := buildScenario(21)
	sc.moveGroup("d2_v1", "1993", "1994")
	complaint := Complaint{
		Agg:       agg.Count,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d2", "year": "1993"},
		Direction: TooLow,
	}
	var recs [][]byte
	for _, withCube := range []bool{false, true} {
		snap := store.FromDataset(sc.ds)
		if withCube {
			if err := snap.BuildCube(); err != nil {
				t.Fatal(err)
			}
			if snap.Cube() == nil {
				t.Fatal("scenario dataset did not materialize a cube")
			}
		}
		ds, err := snap.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(ds, Options{EMIterations: 10, Trainer: TrainerNaive, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := eng.NewSession([]string{"district", "year"})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.Recommend(complaint)
		if err != nil {
			t.Fatal(err)
		}
		if top := rec.Best.Ranked[0]; top.Group.Stats.Count != 0 {
			t.Errorf("withCube=%v: top group %v has count %v, want the vanished (empty) group",
				withCube, top.Group.Vals, top.Group.Stats.Count)
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, b)
	}
	if !bytes.Equal(recs[0], recs[1]) {
		t.Errorf("cube-backed empty-group discovery changed the recommendation:\nscan: %.300s\ncube: %.300s", recs[0], recs[1])
	}
}

// The full-materialization trainer (the Figure 10 Matlab regime) must agree
// with the factorised trainer on rankings.
func TestNaiveFullMatchesFactorised(t *testing.T) {
	sc := buildScenario(22)
	sc.corruptMean("d1_v1", "1991", -4)
	complaint := Complaint{
		Agg:       agg.Mean,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d1", "year": "1991"},
		Direction: TooLow,
	}
	var tops [2]string
	for i, kind := range []TrainerKind{TrainerFactorised, TrainerNaiveFull} {
		eng, err := NewEngine(sc.ds.Clone(), Options{EMIterations: 8, Trainer: kind})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := eng.NewSession([]string{"district", "year"})
		rec, err := s.Recommend(complaint)
		if err != nil {
			t.Fatal(err)
		}
		tops[i] = rec.Best.Ranked[0].Group.Key
	}
	if tops[0] != tops[1] {
		t.Errorf("factorised top %q != naive-full top %q", tops[0], tops[1])
	}
}

// A user-provided frepair (§3.1) overrides the default model-based repair.
func TestCustomRepairFunction(t *testing.T) {
	sc := buildScenario(24)
	sc.corruptMean("d0_v0", "1990", -4)
	// An identity repair: nothing changes, so every gain is ~0 and the
	// complaint cannot be resolved.
	eng, err := NewEngine(sc.ds, Options{
		EMIterations: 5, Trainer: TrainerNaive,
		Repair: func(s agg.Stats, _ map[agg.Func]float64) agg.Stats { return s },
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := eng.NewSession([]string{"district", "year"})
	rec, err := s.Recommend(Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple:     data.Predicate{"district": "d0", "year": "1990"},
		Direction: TooLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, gs := range rec.Best.Ranked {
		if gs.Gain > 1e-9 || gs.Gain < -1e-9 {
			t.Fatalf("identity repair produced gain %v", gs.Gain)
		}
	}
	// A bounded repair (the Appendix M relaxation): means may move at most
	// 1.0 toward the prediction. The corrupted village still ranks first,
	// with a capped gain.
	eng2, err := NewEngine(sc.ds, Options{
		EMIterations: 10, Trainer: TrainerNaive,
		Repair: func(s agg.Stats, pred map[agg.Func]float64) agg.Stats {
			want := pred[agg.Mean]
			cur := s.Mean()
			delta := want - cur
			if delta > 1 {
				delta = 1
			} else if delta < -1 {
				delta = -1
			}
			return s.WithAggregate(agg.Mean, cur+delta)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := eng2.NewSession([]string{"district", "year"})
	rec2, err := s2.Recommend(Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple:     data.Predicate{"district": "d0", "year": "1990"},
		Direction: TooLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := rec2.Best.Ranked[0]
	found := false
	for _, v := range top.Group.Vals {
		if v == "d0_v0" {
			found = true
		}
	}
	if !found {
		t.Errorf("bounded repair top group = %v, want d0_v0", top.Group.Vals)
	}
	// The capped repair can move the district mean by at most 1/numVillages.
	if top.Gain > 0.3 {
		t.Errorf("bounded repair gain = %v, want ≤ ~0.25", top.Gain)
	}
}

func TestZBackendSelection(t *testing.T) {
	sc := buildScenario(23)
	for _, re := range []RandomEffects{ZAuto, ZFull, ZIntercept} {
		eng, err := NewEngine(sc.ds.Clone(), Options{
			EMIterations: 4, Trainer: TrainerNaive, RandomEffects: re,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := eng.NewSession([]string{"district", "year"})
		if _, err := s.Recommend(Complaint{
			Agg: agg.Mean, Measure: "severity",
			Tuple:     data.Predicate{"district": "d0", "year": "1990"},
			Direction: TooLow,
		}); err != nil {
			t.Errorf("RandomEffects %v: %v", re, err)
		}
	}
}
