package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/factor"
	"repro/internal/feature"
	"repro/internal/fmatrix"
	"repro/internal/mlm"
)

// TrainerKind selects how the multi-level model is trained.
type TrainerKind int

const (
	// TrainerAuto picks Factorised when the observed groups nearly fill the
	// cross product of hierarchy paths (and the cross product is
	// enumerable), and Naive otherwise.
	TrainerAuto TrainerKind = iota
	// TrainerNaive materializes the design matrix over observed groups.
	TrainerNaive
	// TrainerFactorised trains over the factorised representation; missing
	// cross-product cells carry y = 0 (the worst-case regime of §5.1.4).
	TrainerFactorised
	// TrainerNaiveFull materializes the complete cross-product feature
	// matrix (including empty groups) and trains densely over it — the
	// paper's Matlab regime, used as the Figure 10 comparator.
	TrainerNaiveFull
)

// RandomEffects selects the random-effects design Z (§3.3.4).
type RandomEffects int

const (
	// ZAuto uses intercept-only random effects when clusters are too small
	// to identify per-cluster coefficients for every feature (which would
	// let the random effects absorb the very anomalies Reptile looks for),
	// and the full Z = X design otherwise.
	ZAuto RandomEffects = iota
	// ZFull uses Z = X (minus features excluded via ExcludeFromZ).
	ZFull
	// ZIntercept uses intercept-only random effects.
	ZIntercept
)

// Options configures an Engine.
type Options struct {
	// EMIterations is the number of EM iterations per model (paper: 20).
	EMIterations int
	// Trainer selects the training backend.
	Trainer TrainerKind
	// TopK bounds the groups reported per hierarchy (0 = all).
	TopK int
	// Aux lists auxiliary datasets available for featurization.
	Aux []feature.Aux
	// Custom lists custom featurizations.
	Custom []feature.Custom
	// GroupFeatures lists multi-attribute (per-group) features such as
	// temporal lags. Their presence forces the naive trainer (Appendix H).
	GroupFeatures []feature.GroupFeature
	// ExcludeFromZ names features excluded from the random-effects design.
	ExcludeFromZ []string
	// RandomEffects selects the Z design (default ZAuto).
	RandomEffects RandomEffects
	// Repair, when non-nil, replaces the default model-based frepair
	// (§3.1): it receives a drill-down group's statistics and the model's
	// expected values for the complaint's base statistics, and returns the
	// repaired statistics.
	Repair func(s agg.Stats, pred map[agg.Func]float64) agg.Stats
	// KeepLeaky disables the one-to-one main-effect guard (tests only).
	KeepLeaky bool
	// FactorisedFillThreshold is the minimum observed-group fill ratio for
	// TrainerAuto to pick the factorised backend (default 0.7).
	FactorisedFillThreshold float64
	// Workers bounds the fan-out at each level of a Recommend call:
	// candidate hierarchies run on a pool of at most Workers goroutines,
	// and within each hierarchy the per-statistic model fits do too.
	// 0 (the default) selects runtime.NumCPU(); 1 forces the sequential
	// path. Parallel evaluation is deterministic: it produces the same
	// recommendation as Workers == 1.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.EMIterations <= 0 {
		o.EMIterations = 20
	}
	if o.FactorisedFillThreshold <= 0 {
		o.FactorisedFillThreshold = 0.7
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Engine answers complaint-based drill-down queries over one dataset. An
// Engine is safe for concurrent use: many sessions may Recommend against it
// at once.
type Engine struct {
	ds   *data.Dataset
	opts Options

	// shards, when non-empty, is the partitioned data plane: every
	// aggregation scatters to the workers and gathers merged partial
	// statistics (see shard.go). ds is then the schema dataset (the first
	// shard's, by convention) and is consulted for hierarchies and measure
	// names only. shardKey names the hierarchy-root dimension rows were
	// partitioned on.
	shards   []ShardWorker
	shardKey string

	// sources caches the per-hierarchy factorizer sources: the dataset is
	// immutable by convention, so the distinct hierarchy paths never change
	// across invocations (the §4.4 caching regime). Entries build once even
	// when sessions race on the same hierarchy.
	mu      sync.Mutex
	sources map[string]*sourceEntry
}

// sourceEntry builds one hierarchy's factorizer source exactly once.
type sourceEntry struct {
	once sync.Once
	src  *factor.Source
	err  error
}

// NewEngine validates the dataset's hierarchy metadata and builds an engine.
func NewEngine(ds *data.Dataset, opts Options) (*Engine, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Hierarchies) == 0 {
		return nil, fmt.Errorf("core: dataset %q has no hierarchies", ds.Name)
	}
	return &Engine{ds: ds, opts: opts.withDefaults(), sources: map[string]*sourceEntry{}}, nil
}

// sourceFor returns the (cached) factorizer source of a hierarchy. On a
// sharded engine the per-shard distinct path sets are unioned first;
// factor.NewSource sorts and deduplicates, so the source is identical to the
// single-shard extraction (and its FD check still sees cross-shard
// violations).
func (e *Engine) sourceFor(h data.Hierarchy) (*factor.Source, error) {
	e.mu.Lock()
	ent, ok := e.sources[h.Name]
	if !ok {
		ent = &sourceEntry{}
		e.sources[h.Name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		if len(e.shards) == 0 {
			ent.src, ent.err = factor.SourceFromDataset(e.ds, h)
			return
		}
		var all [][]string
		for i, w := range e.shards {
			paths, err := w.HierarchyPaths(h)
			if err != nil {
				ent.err = fmt.Errorf("core: shard %d hierarchy paths: %w", i, err)
				return
			}
			all = append(all, paths...)
		}
		ent.src, ent.err = factor.NewSource(h.Name, h.Attrs, all)
	})
	return ent.src, ent.err
}

// Dataset returns the engine's dataset. On a sharded engine this is the
// schema dataset (the first shard's), whose rows are that shard's partition
// only — callers use it for schema, not data.
func (e *Engine) Dataset() *data.Dataset { return e.ds }

// Workers returns the resolved evaluation worker-pool size (Options.Workers
// after defaulting), so serving layers can size admission limits to the pool
// they actually admit onto.
func (e *Engine) Workers() int { return e.opts.Workers }

// Session tracks the user's drill-down state: the current group-by
// attributes (per-hierarchy prefixes). Recommend is safe to call
// concurrently with itself; Drill is safe to call concurrently too, but a
// Recommend racing a Drill may observe either drill state. Repeated
// complaints against the same drill state reuse the session's aggregation
// and factorizer caches instead of recomputing them.
type Session struct {
	eng   *Engine
	depth map[string]int // hierarchy name → number of attributes in Agb
	dmu   sync.RWMutex   // guards depth

	// mu guards the cache maps and their generation; each entry then builds
	// its value exactly once, outside the lock, so concurrent hierarchy
	// evaluations never duplicate a GroupBy scan or a factorizer chain
	// build. gen increments on every Drill: evaluations holding an older
	// snapshot compute uncached instead of inserting unreachable entries
	// into the fresh maps.
	mu     sync.Mutex
	gen    int
	groups map[string]*groupsEntry
	fzs    map[string]*fzEntry
}

// evalState is one Recommend call's consistent view of the session: the
// drill-depth snapshot, the cache generation it was taken under, and the
// call's span recorder (nil when untraced). Threading the recorder here keeps
// it off the context on the hot path.
type evalState struct {
	depth map[string]int
	gen   int
	rec   SpanRecorder
}

// groupsEntry computes one drill state's agg.GroupBy result exactly once.
type groupsEntry struct {
	once sync.Once
	res  *agg.Result
	err  error
}

// fzEntry builds one drill state's factorizer exactly once.
type fzEntry struct {
	once sync.Once
	fz   *factor.Factorizer
	err  error
}

// NewSession starts a session with the given initial group-by attributes.
// Each hierarchy's attributes must form a prefix.
func (e *Engine) NewSession(groupBy []string) (*Session, error) {
	s := &Session{
		eng:    e,
		depth:  make(map[string]int),
		groups: make(map[string]*groupsEntry),
		fzs:    make(map[string]*fzEntry),
	}
	for _, h := range e.ds.Hierarchies {
		s.depth[h.Name] = 0
	}
	for _, a := range groupBy {
		h, ok := e.ds.HierarchyOf(a)
		if !ok {
			return nil, fmt.Errorf("core: group-by attribute %q not in any hierarchy", a)
		}
		lvl := h.Level(a)
		if lvl+1 > s.depth[h.Name] {
			s.depth[h.Name] = lvl + 1
		}
	}
	// Verify prefixes: depth k means attributes 0..k-1 are all present.
	for _, h := range e.ds.Hierarchies {
		d := s.depth[h.Name]
		present := make(map[string]bool)
		for _, a := range groupBy {
			present[a] = true
		}
		for l := 0; l < d; l++ {
			if !present[h.Attrs[l]] {
				return nil, fmt.Errorf("core: group-by attributes of hierarchy %q are not a prefix (missing %q)", h.Name, h.Attrs[l])
			}
		}
	}
	return s, nil
}

// snapshot copies the drill depths and cache generation under their locks.
// Recommend takes one snapshot per call and threads it through the
// evaluation, so a Drill racing a Recommend flips the whole call to the old
// or new state — never a torn mix of the two.
func (s *Session) snapshot() evalState {
	// gen is read before depth: Drill writes depth first and bumps gen
	// second, so any interleaving yields an old gen with newer depths — the
	// caches then treat the snapshot as stale and compute without
	// inserting, never the reverse (old depths cached into fresh maps).
	s.mu.Lock()
	gen := s.gen
	s.mu.Unlock()
	s.dmu.RLock()
	snap := make(map[string]int, len(s.depth))
	for name, d := range s.depth {
		snap[name] = d
	}
	s.dmu.RUnlock()
	return evalState{depth: snap, gen: gen}
}

// StateKey returns a stable encoding of the session's drill state: every
// hierarchy's current depth, in dataset hierarchy order. Two sessions over
// the same engine with equal state keys return identical recommendations for
// equal complaints, so (StateKey, Complaint.Key) is a sound recommendation
// cache key. The key changes on every Drill.
func (s *Session) StateKey() string {
	st := s.snapshot()
	var b strings.Builder
	for i, h := range s.eng.ds.Hierarchies {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s:%d", h.Name, st.depth[h.Name])
	}
	return b.String()
}

// GroupBy returns the current group-by attributes in canonical order
// (hierarchy by hierarchy, least to most specific).
func (s *Session) GroupBy() []string {
	st := s.snapshot()
	var out []string
	for _, h := range s.eng.ds.Hierarchies {
		for l := 0; l < st.depth[h.Name]; l++ {
			out = append(out, h.Attrs[l])
		}
	}
	return out
}

// Drill accepts a recommendation: it extends the named hierarchy's group-by
// prefix by one attribute.
func (s *Session) Drill(hierarchy string) error {
	for _, h := range s.eng.ds.Hierarchies {
		if h.Name != hierarchy {
			continue
		}
		s.dmu.Lock()
		if s.depth[h.Name] >= len(h.Attrs) {
			s.dmu.Unlock()
			return fmt.Errorf("core: hierarchy %q is fully drilled", hierarchy)
		}
		s.depth[h.Name]++
		s.dmu.Unlock()
		// Drilling is monotonic, so cache entries keyed by the previous
		// drill state can never be requested again — drop them to bound the
		// session's memory. The generation bump keeps in-flight Recommends
		// holding the old snapshot from re-inserting unreachable entries.
		s.mu.Lock()
		s.gen++
		s.groups = make(map[string]*groupsEntry)
		s.fzs = make(map[string]*fzEntry)
		s.mu.Unlock()
		return nil
	}
	return fmt.Errorf("core: unknown hierarchy %q", hierarchy)
}

// GroupScore is one ranked drill-down group: its statistics, the model's
// expected values, and the complaint score after repairing it.
type GroupScore struct {
	Group     agg.Group
	Predicted map[agg.Func]float64
	// Repaired is the complained tuple's aggregate after repairing this
	// group; Score is fcomp(Repaired). Gain is fcomp(current) − Score.
	Repaired float64
	Score    float64
	Gain     float64
}

// HierarchyResult is the evaluation of one candidate drill-down hierarchy.
type HierarchyResult struct {
	Hierarchy string
	Attr      string // the attribute the drill-down adds
	Current   float64
	Ranked    []GroupScore
	BestScore float64
}

// Recommendation is the output of one Reptile invocation: every candidate
// hierarchy's evaluation and the best one.
type Recommendation struct {
	Best *HierarchyResult
	All  []HierarchyResult
}

// Recommend solves the complaint-based drill-down problem (Problem 1): for
// every hierarchy with a remaining attribute it drills down, estimates each
// group's expected statistics with a multi-level model trained on the
// parallel groups, and ranks the groups by the repaired complaint value.
func (s *Session) Recommend(c Complaint) (*Recommendation, error) {
	return s.recommend(nil, c)
}

// RecommendContext is Recommend with per-stage tracing: when the context
// carries a SpanRecorder (WithSpanRecorder), the engine records spans for the
// group-by/cube phase, the shard scatter-gather, and the model fits of every
// candidate hierarchy. With no recorder the call is identical to Recommend.
func (s *Session) RecommendContext(ctx context.Context, c Complaint) (*Recommendation, error) {
	return s.recommend(spanRecorderFrom(ctx), c)
}

func (s *Session) recommend(rec SpanRecorder, c Complaint) (*Recommendation, error) {
	if c.Measure == "" {
		return nil, fmt.Errorf("core: complaint needs a measure attribute")
	}
	// Every aggregate — COUNT included — is computed over a concrete measure
	// column, so an unknown measure is an error here rather than a panic
	// inside the aggregation pipeline.
	if !s.eng.ds.HasMeasure(c.Measure) {
		return nil, fmt.Errorf("core: unknown measure %q", c.Measure)
	}
	st := s.snapshot()
	st.rec = rec
	var cands []data.Hierarchy
	for _, h := range s.eng.ds.Hierarchies {
		if st.depth[h.Name] < len(h.Attrs) {
			cands = append(cands, h)
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: every hierarchy is fully drilled")
	}
	// Fan the candidate hierarchies out over the worker pool. Each slot is
	// independent (its own GroupBy granularity and models), so results land
	// at their candidate index and the ranking below stays byte-identical
	// to the sequential path.
	evaluated := make([]*HierarchyResult, len(cands))
	errs := make([]error, len(cands))
	s.eng.forEach(len(cands), func(i int) {
		evaluated[i], errs[i] = s.evaluateHierarchy(cands[i], c, st)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: evaluating hierarchy %q: %w", cands[i].Name, err)
		}
	}
	results := make([]HierarchyResult, len(cands))
	for i, hr := range evaluated {
		results[i] = *hr
	}
	best := &results[0]
	for i := range results {
		if results[i].BestScore < best.BestScore {
			best = &results[i]
		}
	}
	return &Recommendation{Best: best, All: results}, nil
}

// forEach runs fn(0..n-1) on the engine's worker budget: inline when the
// budget is one worker (or there is one unit of work), otherwise over a
// bounded pool of min(Workers, n) goroutines. It backs both the Recommend
// fan-out (candidate hierarchies, per-statistic fits) and the shard
// scatter-gather. A panic inside a pool worker is re-raised on the calling
// goroutine, so callers' recover semantics match the sequential path.
func (e *Engine) forEach(n int, fn func(i int)) {
	workers := e.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	panics := make([]any, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// cachedGroupBy returns the (session-cached) aggregation of the dataset at
// the given granularity: the engine's groupBy — a plain scan, or a shard
// scatter-gather — computed once per (attrs, measure) drill state and shared
// read-only by concurrent evaluations and repeated complaints. A stale
// snapshot (a Drill landed since it was taken) computes uncached rather than
// inserting an unreachable entry into the fresh maps.
func (s *Session) cachedGroupBy(attrs []string, measure string, st evalState) (*agg.Result, error) {
	key := data.EncodeKey(attrs) + "\x00" + measure
	s.mu.Lock()
	if s.gen != st.gen {
		s.mu.Unlock()
		return s.eng.groupBy(st.rec, attrs, measure)
	}
	ent, ok := s.groups[key]
	if !ok {
		ent = &groupsEntry{}
		s.groups[key] = ent
	}
	s.mu.Unlock()
	ent.once.Do(func() {
		ent.res, ent.err = s.eng.groupBy(st.rec, attrs, measure)
	})
	return ent.res, ent.err
}

// cachedFactorizer returns the (session-cached) factorised representation of
// the view drilled one level into hierarchy h. The key covers every
// hierarchy's depth in the Recommend call's snapshot, so drilled sessions
// never see a stale chain; factorizers are only read after construction, so
// sharing one across the per-statistic fits is safe. A stale snapshot
// builds uncached, like cachedGroupBy.
func (s *Session) cachedFactorizer(h data.Hierarchy, st evalState) (*factor.Factorizer, error) {
	var key strings.Builder
	key.WriteString(h.Name)
	for _, other := range s.eng.ds.Hierarchies {
		fmt.Fprintf(&key, "|%s=%d", other.Name, st.depth[other.Name])
	}
	s.mu.Lock()
	if s.gen != st.gen {
		s.mu.Unlock()
		return s.buildFactorizer(h, st)
	}
	ent, ok := s.fzs[key.String()]
	if !ok {
		ent = &fzEntry{}
		s.fzs[key.String()] = ent
	}
	s.mu.Unlock()
	ent.once.Do(func() {
		ent.fz, ent.err = s.buildFactorizer(h, st)
	})
	return ent.fz, ent.err
}

// drillAttrs returns the canonical attribute order after drilling hierarchy
// h: other hierarchies first (in dataset order), the drilled hierarchy's
// attributes last (§3.4's ordering restriction).
func (s *Session) drillAttrs(h data.Hierarchy, st evalState) []string {
	var out []string
	for _, other := range s.eng.ds.Hierarchies {
		if other.Name == h.Name {
			continue
		}
		for l := 0; l < st.depth[other.Name]; l++ {
			out = append(out, other.Attrs[l])
		}
	}
	for l := 0; l <= st.depth[h.Name]; l++ {
		out = append(out, h.Attrs[l])
	}
	return out
}

func (s *Session) evaluateHierarchy(h data.Hierarchy, c Complaint, st evalState) (*HierarchyResult, error) {
	eng := s.eng
	attr := h.Attrs[st.depth[h.Name]]
	attrs := s.drillAttrs(h, st)

	// Parallel groups: the whole dataset at the drilled granularity.
	endGroupBy := startSpan(st.rec, "groupby")
	groups, err := s.cachedGroupBy(attrs, c.Measure, st)
	endGroupBy()
	if err != nil {
		return nil, err
	}

	// One model per required base statistic.
	endFit := startSpan(st.rec, "fit")
	models, err := s.fitModels(h, groups, c, st)
	endFit()
	if err != nil {
		return nil, err
	}

	// The complained tuple's children: groups matching the tuple predicate.
	var children []int
	for gi, g := range groups.Groups {
		match := true
		for a, want := range c.Tuple {
			v, ok := g.Value(groups.Attrs, a)
			if !ok {
				return nil, fmt.Errorf("complaint attribute %q not in drill-down", a)
			}
			if v != want {
				match = false
				break
			}
		}
		if match {
			children = append(children, gi)
		}
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("complaint tuple %v has no provenance", c.Tuple)
	}

	// Empty drill-down groups: values of the drilled attribute that exist in
	// the hierarchy under the tuple's ancestors but have no rows in the
	// tuple's provenance (e.g. a village with no reports in the complained
	// year). Repairing their statistics to the expectation resolves
	// missing-group errors that observed groups cannot explain.
	emptyVals, err := s.emptyChildValues(h, attr, attrs, groups, children, c)
	if err != nil {
		return nil, err
	}

	// Current complaint value from the children partition (G merge).
	var total agg.Stats
	for _, gi := range children {
		total = total.Add(groups.Groups[gi].Stats)
	}
	current := total.Get(c.Agg)

	repair := c.repairStats
	if eng.opts.Repair != nil {
		repair = eng.opts.Repair
	}
	score := func(g agg.Group, pred map[agg.Func]float64) GroupScore {
		repairedChild := repair(g.Stats, pred)
		// t'c = G(V'/{t} ∪ {frepair(t)})
		newTotal := total.Add(agg.Stats{
			Count: repairedChild.Count - g.Stats.Count,
			Sum:   repairedChild.Sum - g.Stats.Sum,
			SumSq: repairedChild.SumSq - g.Stats.SumSq,
		})
		repaired := newTotal.Get(c.Agg)
		sc := c.Eval(repaired)
		return GroupScore{
			Group:     g,
			Predicted: pred,
			Repaired:  repaired,
			Score:     sc,
			Gain:      c.Eval(current) - sc,
		}
	}

	hr := &HierarchyResult{Hierarchy: h.Name, Attr: attr, Current: current}
	for _, gi := range children {
		g := groups.Groups[gi]
		pred := make(map[agg.Func]float64, len(models))
		for f, sm := range models {
			pred[f] = sm.preds[gi]
		}
		hr.Ranked = append(hr.Ranked, score(g, pred))
	}
	// Score the empty groups using model predictions for their feature rows,
	// with the random effects of the cluster containing their observed
	// siblings.
	sibling := children[0]
	for _, v := range emptyVals {
		vals := make(map[string]string, len(attrs))
		gvals := make([]string, len(attrs))
		for ai, a := range attrs {
			if a == attr {
				vals[a] = v
			} else {
				vals[a] = c.Tuple[a]
			}
			gvals[ai] = vals[a]
		}
		pred := make(map[agg.Func]float64, len(models))
		for f, sm := range models {
			pred[f] = sm.predict(sm.fs.Row(vals), sm.rowOf(sibling))
		}
		g := agg.Group{Key: data.EncodeKey(gvals), Vals: gvals}
		hr.Ranked = append(hr.Ranked, score(g, pred))
	}
	sort.SliceStable(hr.Ranked, func(a, b int) bool { return hr.Ranked[a].Score < hr.Ranked[b].Score })
	if eng.opts.TopK > 0 && len(hr.Ranked) > eng.opts.TopK {
		hr.Ranked = hr.Ranked[:eng.opts.TopK]
	}
	hr.BestScore = hr.Ranked[0].Score
	return hr, nil
}

// emptyChildValues returns the drilled attribute's values that appear under
// the tuple's same-hierarchy ancestors somewhere in the dataset but have no
// group in the tuple's provenance. The candidate set comes from childValues —
// per shard and unioned on a sharded engine, directly otherwise — then the
// observed values are filtered out. Every path yields the same sorted set.
func (s *Session) emptyChildValues(h data.Hierarchy, attr string, attrs []string, groups *agg.Result, children []int, c Complaint) ([]string, error) {
	anc := data.Predicate{}
	for _, a := range h.Attrs {
		if v, ok := c.Tuple[a]; ok {
			anc[a] = v
		}
	}
	observed := make(map[string]bool, len(children))
	for _, gi := range children {
		v, _ := groups.Groups[gi].Value(attrs, attr)
		observed[v] = true
	}
	var all []string
	if len(s.eng.shards) > 0 {
		var err error
		all, err = s.eng.shardedChildValues(h, attr, c.Measure, anc)
		if err != nil {
			return nil, err
		}
	} else {
		all = childValues(s.eng.ds, h, attr, c.Measure, anc)
	}
	out := all[:0:0]
	for _, v := range all {
		if !observed[v] {
			out = append(out, v)
		}
	}
	return out, nil
}

// childValues collects the sorted distinct values of the drilled attribute
// among rows matching the ancestor predicate. When the dataset carries a
// materialized cube, the candidates come from the drilled hierarchy's prefix
// grouping in O(groups); otherwise a row scan collects them. Both paths yield
// the same sorted value set.
func childValues(ds *data.Dataset, h data.Hierarchy, attr, measure string, anc data.Predicate) []string {
	if out, ok := cubeChildValues(ds, h, attr, measure, anc); ok {
		return out
	}
	col := ds.DimCursor(attr)
	seen := make(map[string]bool)
	var out []string
	for row := 0; row < ds.NumRows(); row++ {
		v := col.Value(row)
		if seen[v] {
			continue
		}
		if ds.Matches(row, anc) {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// cubeChildValues collects the drilled attribute's values under the ancestor
// predicate from an attached materialized cube: the hierarchy's prefix
// grouping down to attr enumerates every (ancestors, attr) path with at
// least one row, so filtering its groups by the predicate yields exactly the
// value set the row scan finds. The ancestor predicate only constrains
// attributes of h above attr (the complaint tuple holds the session's
// current drill prefix), so every condition is present in the grouping.
func cubeChildValues(ds *data.Dataset, h data.Hierarchy, attr, measure string, anc data.Predicate) ([]string, bool) {
	m, ok := agg.MaterializedOf(ds)
	if !ok {
		return nil, false
	}
	lvl := h.Level(attr)
	prefix := h.Attrs[:lvl+1]
	r, ok := m.GroupBy(prefix, measure)
	if !ok {
		return nil, false
	}
	seen := make(map[string]bool)
	var out []string
	for _, g := range r.Groups {
		match := true
		for a, want := range anc {
			if v, ok := g.Value(r.Attrs, a); !ok || v != want {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		v := g.Vals[lvl]
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sort.Strings(out)
	return out, true
}

// statModel is one fitted base-statistic model: fitted values per observed
// group, plus a predictor for synthetic (empty-group) feature rows.
type statModel struct {
	fs    *feature.Set
	preds []float64
	// predict scores feature row x using the random effects of the cluster
	// containing model row sibRow.
	predict func(x []float64, sibRow int) float64
	// rowOf maps a group index to its model row.
	rowOf func(gi int) int
}

// fitModels trains one multi-level model per required base statistic. The
// per-statistic fits are independent, so they run on the worker pool too.
func (s *Session) fitModels(h data.Hierarchy, groups *agg.Result, c Complaint, st evalState) (map[agg.Func]*statModel, error) {
	stats := c.baseStats()
	fitted := make([]*statModel, len(stats))
	errs := make([]error, len(stats))
	s.eng.forEach(len(stats), func(i int) {
		fitted[i], errs[i] = s.fitModel(h, groups, stats[i], st)
	})
	models := make(map[agg.Func]*statModel, len(stats))
	for i, stat := range stats {
		if errs[i] != nil {
			return nil, errs[i]
		}
		models[stat] = fitted[i]
	}
	return models, nil
}

// fitModel trains the multi-level model of one base statistic.
func (s *Session) fitModel(h data.Hierarchy, groups *agg.Result, stat agg.Func, st evalState) (*statModel, error) {
	spec := feature.Spec{
		Target:       stat,
		Aux:          s.eng.opts.Aux,
		Custom:       s.eng.opts.Custom,
		ExcludeFromZ: s.eng.opts.ExcludeFromZ,
		KeepLeaky:    s.eng.opts.KeepLeaky,
	}
	fs, err := feature.BuildWithGroupFeatures(groups, spec, s.eng.opts.GroupFeatures)
	if err != nil {
		return nil, err
	}
	y := make([]float64, len(groups.Groups))
	for gi, g := range groups.Groups {
		y[gi] = g.Stats.Get(stat)
	}
	sm, err := s.trainAndPredict(h, groups, fs, y, st)
	if err != nil {
		return nil, err
	}
	sm.fs = fs
	return sm, nil
}

// trainAndPredict fits the multi-level model with the configured backend and
// returns the fitted statistic model.
func (s *Session) trainAndPredict(h data.Hierarchy, groups *agg.Result, fs *feature.Set, y []float64, st evalState) (*statModel, error) {
	eng := s.eng
	kind := eng.opts.Trainer
	if len(fs.Extra) > 0 {
		// Multi-attribute features have no factorised form (Appendix H).
		kind = TrainerNaive
	}
	var fz *factor.Factorizer
	if kind == TrainerAuto || kind == TrainerFactorised || kind == TrainerNaiveFull {
		var err error
		fz, err = s.cachedFactorizer(h, st)
		if err != nil {
			return nil, err
		}
		if kind == TrainerAuto {
			if _, err := fz.RowCount(); err != nil {
				kind = TrainerNaive
			} else if float64(len(groups.Groups))/fz.N() < eng.opts.FactorisedFillThreshold {
				kind = TrainerNaive
			} else {
				kind = TrainerFactorised
			}
		}
	}

	opts := mlm.Options{Iterations: eng.opts.EMIterations}
	switch kind {
	case TrainerFactorised:
		return trainCross(fz, groups, fs, y, opts, eng.opts.RandomEffects, false)
	case TrainerNaiveFull:
		return trainCross(fz, groups, fs, y, opts, eng.opts.RandomEffects, true)
	}
	return trainNaive(groups, fs, y, opts, eng.opts.RandomEffects)
}

// zMaskFor resolves the random-effects column mask: the feature-level mask
// restricted by the RandomEffects policy. numCols is the design width,
// typicalCluster the average cluster size.
func zMaskFor(re RandomEffects, featMask []bool, typicalCluster float64) []bool {
	mask := append([]bool(nil), featMask...)
	interceptOnly := re == ZIntercept ||
		(re == ZAuto && typicalCluster < 3*float64(len(mask)))
	if interceptOnly {
		for i := range mask {
			mask[i] = i == 0 // the intercept is always the first column
		}
	}
	return mask
}

func allTrue(mask []bool) bool {
	for _, m := range mask {
		if !m {
			return false
		}
	}
	return true
}

// buildFactorizer constructs the factorised representation of the drilled
// view: every hierarchy at its current depth, the drilled hierarchy one
// level deeper and ordered last.
func (s *Session) buildFactorizer(h data.Hierarchy, st evalState) (*factor.Factorizer, error) {
	eng := s.eng
	var sources []*factor.Source
	var depths []int
	for _, other := range eng.ds.Hierarchies {
		if other.Name == h.Name {
			continue
		}
		d := st.depth[other.Name]
		if d == 0 {
			continue // hierarchy not part of the view
		}
		src, err := eng.sourceFor(other)
		if err != nil {
			return nil, err
		}
		sources = append(sources, src)
		depths = append(depths, d)
	}
	src, err := eng.sourceFor(h)
	if err != nil {
		return nil, err
	}
	sources = append(sources, src)
	depths = append(depths, st.depth[h.Name]+1)
	return factor.New(sources, depths)
}

// predictor builds the synthetic-row predictor: x·β + z·b_cluster with z the
// Z-masked subset of x.
func predictor(model *mlm.MultiLevel, zmask []bool) func(x []float64, sibRow int) float64 {
	return func(x []float64, sibRow int) float64 {
		cl := model.ClusterOf(sibRow)
		p := 0.0
		for j, v := range x {
			p += v * model.Beta[j]
		}
		zj := 0
		for j, keep := range zmask {
			if keep {
				p += x[j] * model.B[cl][zj]
				zj++
			}
		}
		return p
	}
}

func trainNaive(groups *agg.Result, fs *feature.Set, y []float64, opts mlm.Options, re RandomEffects) (*statModel, error) {
	x := fs.DenseX(groups)
	starts := feature.ClusterStarts(groups)
	backend, err := mlm.NewDense(x, starts)
	if err != nil {
		return nil, err
	}
	zmask := zMaskFor(re, fs.ZMask(), float64(len(groups.Groups))/float64(len(starts)))
	bz, err := zBackend(backend, zmask)
	if err != nil {
		return nil, err
	}
	model, err := mlm.FitEMZ(backend, bz, y, opts)
	if err != nil {
		return nil, err
	}
	return &statModel{
		preds:   model.Fitted(backend, bz),
		predict: predictor(model, zmask),
		rowOf:   func(gi int) int { return gi },
	}, nil
}

// zBackend derives the random-effects backend for a Z column mask: the full
// backend when Z = X, the closed-form intercept design when only the
// (constant-1) intercept column is kept, and a column subset otherwise.
func zBackend(backend mlm.Backend, zmask []bool) (mlm.Backend, error) {
	if allTrue(zmask) {
		return backend, nil
	}
	kept, only0 := 0, true
	for j, m := range zmask {
		if m {
			kept++
			if j != 0 {
				only0 = false
			}
		}
	}
	if kept == 1 && only0 {
		return mlm.NewInterceptZ(backend), nil
	}
	switch b := backend.(type) {
	case *mlm.Dense:
		return b.SubsetCols(zmask)
	case *mlm.Factorised:
		return b.SubsetCols(zmask)
	}
	return nil, fmt.Errorf("core: cannot subset backend %T", backend)
}

// trainCross trains over the complete cross product of hierarchy paths
// (empty cells carry y = 0, the §5.1.4 worst case). With materialize=false
// it uses the factorised backend; with materialize=true it expands the full
// feature matrix and trains densely — the Matlab comparator regime.
func trainCross(fz *factor.Factorizer, groups *agg.Result, fs *feature.Set, y []float64, opts mlm.Options, re RandomEffects, materialize bool) (*statModel, error) {
	cols, err := fs.FactorColumns(fz)
	if err != nil {
		return nil, err
	}
	fm, err := fmatrix.New(fz, cols)
	if err != nil {
		return nil, err
	}
	var backend mlm.Backend
	fb, err := mlm.NewFactorised(fm)
	if err != nil {
		return nil, err
	}
	backend = fb
	if materialize {
		x, err := fm.Materialize()
		if err != nil {
			return nil, err
		}
		starts := make([]int, fb.NumClusters())
		for i := range starts {
			starts[i], _ = fb.Cluster(i).Rows()
		}
		db, err := mlm.NewDense(x, starts)
		if err != nil {
			return nil, err
		}
		backend = db
	}
	zmask := zMaskFor(re, fs.ZMask(), float64(backend.NumRows())/float64(backend.NumClusters()))
	bz, err := zBackend(backend, zmask)
	if err != nil {
		return nil, err
	}
	// Dense y over the cross product: observed groups at their row index,
	// empty cells at 0 (the worst-case regime the paper trains in).
	rowOf, err := groupRowIndex(fz, groups)
	if err != nil {
		return nil, err
	}
	yd := make([]float64, backend.NumRows())
	for gi := range groups.Groups {
		yd[rowOf[gi]] = y[gi]
	}
	model, err := mlm.FitEMZ(backend, bz, yd, opts)
	if err != nil {
		return nil, err
	}
	fitted := model.Fitted(backend, bz)
	out := make([]float64, len(groups.Groups))
	for gi := range groups.Groups {
		out[gi] = fitted[rowOf[gi]]
	}
	return &statModel{
		preds:   out,
		predict: predictor(model, zmask),
		rowOf:   func(gi int) int { return rowOf[gi] },
	}, nil
}

// PredictGroupStats trains the engine's multi-level model over the given
// group-by attributes and returns each group's expected value of stat,
// together with the group-by result. It exposes the model-based expectation
// on its own, without complaint-driven ranking — the basis of the Outlier
// baseline (§5.2.3).
func (e *Engine) PredictGroupStats(attrs []string, measure string, stat agg.Func) ([]float64, *agg.Result, error) {
	groups, err := e.groupBy(nil, attrs, measure)
	if err != nil {
		return nil, nil, err
	}
	spec := feature.Spec{
		Target:       stat,
		Aux:          e.opts.Aux,
		Custom:       e.opts.Custom,
		ExcludeFromZ: e.opts.ExcludeFromZ,
		KeepLeaky:    e.opts.KeepLeaky,
	}
	fs, err := feature.BuildWithGroupFeatures(groups, spec, e.opts.GroupFeatures)
	if err != nil {
		return nil, nil, err
	}
	y := make([]float64, len(groups.Groups))
	for gi, g := range groups.Groups {
		y[gi] = g.Stats.Get(stat)
	}
	sm, err := trainNaive(groups, fs, y, mlm.Options{Iterations: e.opts.EMIterations}, e.opts.RandomEffects)
	if err != nil {
		return nil, nil, err
	}
	return sm.preds, groups, nil
}

// groupRowIndex maps every observed group to its row in the factorised
// matrix's iteration order.
func groupRowIndex(fz *factor.Factorizer, groups *agg.Result) ([]int, error) {
	// Per hierarchy-order position, the deepest attribute's index within
	// groups.Attrs.
	nh := fz.NumHierarchies()
	deepAttr := make([]int, nh)
	for pos := 0; pos < nh; pos++ {
		ch := fz.Chain(pos)
		name := ch.Levels[ch.Depth()-1].Attr
		idx := -1
		for ai, a := range groups.Attrs {
			if a == name {
				idx = ai
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("core: factorizer attribute %q missing from group-by %v", name, groups.Attrs)
		}
		deepAttr[pos] = idx
	}
	rowOf := make([]int, len(groups.Groups))
	leaf := make([]int, nh)
	for gi, g := range groups.Groups {
		for pos := 0; pos < nh; pos++ {
			li := fz.LeafIndex(pos, g.Vals[deepAttr[pos]])
			if li < 0 {
				return nil, fmt.Errorf("core: value %q not in factorizer hierarchy %q", g.Vals[deepAttr[pos]], fz.HierarchyName(pos))
			}
			leaf[pos] = li
		}
		rowOf[gi] = fz.RowIndexOf(leaf)
	}
	return rowOf, nil
}
