package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/data"
)

// scenario builds a two-hierarchy drought dataset with additive district and
// year effects, and lets the caller corrupt it before the engine runs.
type scenario struct {
	ds       *data.Dataset
	villages []string
	years    []string
}

func buildScenario(seed int64) *scenario {
	rng := rand.New(rand.NewSource(seed))
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	sc := &scenario{ds: ds}
	distEffect := map[string]float64{}
	for d := 0; d < 5; d++ {
		distEffect[fmt.Sprintf("d%d", d)] = rng.NormFloat64() * 2
	}
	yearEffect := map[string]float64{}
	for y := 0; y < 6; y++ {
		yearEffect[fmt.Sprintf("199%d", y)] = rng.NormFloat64() * 2
		sc.years = append(sc.years, fmt.Sprintf("199%d", y))
	}
	for d := 0; d < 5; d++ {
		dist := fmt.Sprintf("d%d", d)
		for v := 0; v < 4; v++ {
			vil := fmt.Sprintf("%s_v%d", dist, v)
			sc.villages = append(sc.villages, vil)
			for _, yr := range sc.years {
				base := 10 + distEffect[dist] + yearEffect[yr]
				for r := 0; r < 10; r++ {
					ds.AppendRowVals([]string{dist, vil, yr}, []float64{base + rng.NormFloat64()})
				}
			}
		}
	}
	return sc
}

// corruptMean shifts every severity of (village, year) by delta.
func (sc *scenario) corruptMean(village, year string, delta float64) {
	vcol := sc.ds.Dim("village")
	ycol := sc.ds.Dim("year")
	ms := sc.ds.Measure("severity")
	for i := range ms {
		if vcol[i] == village && ycol[i] == year {
			ms[i] += delta
		}
	}
}

// dropHalf removes half of the rows of (village, year).
func (sc *scenario) dropHalf(village, year string) {
	vcol := sc.ds.Dim("village")
	ycol := sc.ds.Dim("year")
	var keep []int
	dropped := 0
	for i := 0; i < sc.ds.NumRows(); i++ {
		if vcol[i] == village && ycol[i] == year && dropped < 5 {
			dropped++
			continue
		}
		keep = append(keep, i)
	}
	sc.ds = sc.ds.Select(keep)
}

func TestDirectionAndEval(t *testing.T) {
	c := Complaint{Direction: TooHigh}
	if c.Eval(5) != 5 {
		t.Error("TooHigh eval wrong")
	}
	c.Direction = TooLow
	if c.Eval(5) != -5 {
		t.Error("TooLow eval wrong")
	}
	c.Direction = ShouldBe
	c.Target = 7
	if c.Eval(5) != 2 {
		t.Error("ShouldBe eval wrong")
	}
	for _, d := range []Direction{TooHigh, TooLow, ShouldBe} {
		if d.String() == "" {
			t.Error("empty Direction string")
		}
	}
	if Direction(9).String() == "" {
		t.Error("unknown Direction should render")
	}
}

func TestSessionValidation(t *testing.T) {
	sc := buildScenario(1)
	eng, err := NewEngine(sc.ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewSession([]string{"bogus"}); err == nil {
		t.Error("expected unknown-attribute error")
	}
	// village without district is not a prefix.
	if _, err := eng.NewSession([]string{"village"}); err == nil {
		t.Error("expected non-prefix error")
	}
	s, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	gb := s.GroupBy()
	if len(gb) != 2 || gb[0] != "district" || gb[1] != "year" {
		t.Errorf("GroupBy = %v", gb)
	}
}

func TestNewEngineRejectsBadData(t *testing.T) {
	ds := data.New("x", []string{"a"}, []string{"m"}, nil)
	ds.AppendRowVals([]string{"v"}, []float64{1})
	if _, err := NewEngine(ds, Options{}); err == nil {
		t.Error("expected error for dataset without hierarchies")
	}
	bad := data.New("x", []string{"a"}, []string{"m"},
		[]data.Hierarchy{{Name: "h", Attrs: []string{"missing"}}})
	if _, err := NewEngine(bad, Options{}); err == nil {
		t.Error("expected validation error")
	}
}

func TestRecommendFindsMeanError(t *testing.T) {
	sc := buildScenario(2)
	sc.corruptMean("d2_v1", "1993", -4)
	eng, err := NewEngine(sc.ds, Options{EMIterations: 10, Trainer: TrainerNaive})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recommend(Complaint{
		Agg:       agg.Mean,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d2", "year": "1993"},
		Direction: TooLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Hierarchy != "geo" || rec.Best.Attr != "village" {
		t.Fatalf("best drill = %s/%s, want geo/village", rec.Best.Hierarchy, rec.Best.Attr)
	}
	top := rec.Best.Ranked[0]
	if v, _ := top.Group.Value([]string{"year", "district", "village"}, "village"); v != "d2_v1" {
		// Attrs order: time first (year), then district, village.
		t.Errorf("top group = %v, want d2_v1", top.Group.Vals)
	}
	if top.Gain <= 0 {
		t.Errorf("top gain = %v, want > 0", top.Gain)
	}
}

func TestRecommendFindsCountError(t *testing.T) {
	sc := buildScenario(3)
	sc.dropHalf("d1_v2", "1994")
	eng, err := NewEngine(sc.ds, Options{EMIterations: 10, Trainer: TrainerNaive})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recommend(Complaint{
		Agg:       agg.Count,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d1", "year": "1994"},
		Direction: TooLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Hierarchy != "geo" {
		t.Fatalf("best hierarchy = %s, want geo", rec.Best.Hierarchy)
	}
	top := rec.Best.Ranked[0]
	found := false
	for _, v := range top.Group.Vals {
		if v == "d1_v2" {
			found = true
		}
	}
	if !found {
		t.Errorf("top group = %v, want d1_v2", top.Group.Vals)
	}
	// The count prediction should be near 10 (the regular group size).
	if p := top.Predicted[agg.Count]; math.Abs(p-10) > 3 {
		t.Errorf("predicted count = %v, want ≈10", p)
	}
}

func TestRecommendStdComplaint(t *testing.T) {
	sc := buildScenario(4)
	// A single village with a strongly shifted mean inflates the district's
	// std of the year.
	sc.corruptMean("d3_v0", "1991", -6)
	eng, err := NewEngine(sc.ds, Options{EMIterations: 10, Trainer: TrainerNaive})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := eng.NewSession([]string{"district", "year"})
	rec, err := s.Recommend(Complaint{
		Agg:       agg.Std,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d3", "year": "1991"},
		Direction: TooHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := rec.Best.Ranked[0]
	found := false
	for _, v := range top.Group.Vals {
		if v == "d3_v0" {
			found = true
		}
	}
	if !found {
		t.Errorf("top group = %v, want d3_v0", top.Group.Vals)
	}
}

func TestNaiveAndFactorisedAgreeOnCompleteCross(t *testing.T) {
	sc := buildScenario(5)
	sc.corruptMean("d0_v3", "1992", -4)
	complaint := Complaint{
		Agg:       agg.Mean,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d0", "year": "1992"},
		Direction: TooLow,
	}
	var tops [2]string
	for i, kind := range []TrainerKind{TrainerNaive, TrainerFactorised} {
		eng, err := NewEngine(sc.ds.Clone(), Options{EMIterations: 8, Trainer: kind})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := eng.NewSession([]string{"district", "year"})
		rec, err := s.Recommend(complaint)
		if err != nil {
			t.Fatal(err)
		}
		tops[i] = rec.Best.Ranked[0].Group.Key
		if rec.Best.Hierarchy != "geo" {
			t.Fatalf("trainer %d best hierarchy = %s", i, rec.Best.Hierarchy)
		}
	}
	if tops[0] != tops[1] {
		t.Errorf("naive top %q != factorised top %q", tops[0], tops[1])
	}
}

func TestTrainerAutoSelectsFactorisedOnCompleteCross(t *testing.T) {
	sc := buildScenario(6)
	eng, err := NewEngine(sc.ds, Options{EMIterations: 5, Trainer: TrainerAuto})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := eng.NewSession([]string{"district", "year"})
	if _, err := s.Recommend(Complaint{
		Agg:       agg.Mean,
		Measure:   "severity",
		Tuple:     data.Predicate{"district": "d0", "year": "1990"},
		Direction: TooLow,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDrillAdvancesSession(t *testing.T) {
	sc := buildScenario(7)
	eng, _ := NewEngine(sc.ds, Options{})
	s, _ := eng.NewSession([]string{"district"})
	if err := s.Drill("geo"); err != nil {
		t.Fatal(err)
	}
	gb := s.GroupBy()
	if len(gb) != 2 || gb[1] != "village" {
		t.Errorf("GroupBy after drill = %v", gb)
	}
	if err := s.Drill("geo"); err == nil {
		t.Error("expected fully-drilled error")
	}
	if err := s.Drill("bogus"); err == nil {
		t.Error("expected unknown-hierarchy error")
	}
}

func TestRecommendErrors(t *testing.T) {
	sc := buildScenario(8)
	eng, _ := NewEngine(sc.ds, Options{EMIterations: 2})
	s, _ := eng.NewSession([]string{"district", "year"})
	if _, err := s.Recommend(Complaint{Agg: agg.Mean, Tuple: data.Predicate{"district": "d0"}}); err == nil {
		t.Error("expected missing-measure error")
	}
	if _, err := s.Recommend(Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple: data.Predicate{"district": "nowhere"},
	}); err == nil {
		t.Error("expected empty-provenance error")
	}
	// Regression: COUNT complaints over an unknown measure used to slip past
	// validation and panic inside the aggregation pipeline.
	if _, err := s.Recommend(Complaint{
		Agg: agg.Count, Measure: "bogus",
		Tuple: data.Predicate{"district": "d0"},
	}); err == nil {
		t.Error("expected unknown-measure error for count complaint")
	}
	// Fully drilled session has no candidates.
	s2, _ := eng.NewSession([]string{"district", "village", "year"})
	if _, err := s2.Recommend(Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple: data.Predicate{"district": "d0"},
	}); err == nil {
		t.Error("expected no-candidates error")
	}
}

func TestTopKLimitsRanking(t *testing.T) {
	sc := buildScenario(9)
	eng, _ := NewEngine(sc.ds, Options{EMIterations: 3, TopK: 2, Trainer: TrainerNaive})
	s, _ := eng.NewSession([]string{"district", "year"})
	rec, err := s.Recommend(Complaint{
		Agg: agg.Mean, Measure: "severity",
		Tuple:     data.Predicate{"district": "d0", "year": "1990"},
		Direction: TooLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, hr := range rec.All {
		if len(hr.Ranked) > 2 {
			t.Errorf("hierarchy %s returned %d groups, want ≤ 2", hr.Hierarchy, len(hr.Ranked))
		}
	}
}

func TestComplaintBaseStatsAndRepair(t *testing.T) {
	s := agg.FromValues([]float64{8, 10, 12})
	c := Complaint{Agg: agg.Sum}
	got := c.repairStats(s, map[agg.Func]float64{agg.Mean: 20, agg.Count: 5})
	if got.Count != 5 || math.Abs(got.Mean()-20) > 1e-9 {
		t.Errorf("sum repair = %+v", got)
	}
	c = Complaint{Agg: agg.Count}
	got = c.repairStats(s, map[agg.Func]float64{agg.Count: -3})
	if got.Count != 0 {
		t.Errorf("negative count should clamp to 0, got %v", got.Count)
	}
	c = Complaint{Agg: agg.Std}
	got = c.repairStats(s, map[agg.Func]float64{agg.Mean: 10, agg.Std: -1})
	if got.Std() != 0 {
		t.Errorf("negative std should clamp to 0, got %v", got.Std())
	}
	if len((Complaint{Agg: agg.Sum}).baseStats()) != 2 {
		t.Error("sum needs mean and count models")
	}
}
