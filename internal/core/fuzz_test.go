package core

import "testing"

// FuzzParseComplaint feeds arbitrary specs to the complaint parser. The
// contract: any string either parses into a Complaint or returns an error —
// never a panic — and a successful parse must render back through Key()
// without panicking (Key is what the recommendation cache hashes, so it runs
// on every accepted complaint).
func FuzzParseComplaint(f *testing.F) {
	f.Add("agg=mean measure=severity dir=low district=Ofla year=1986")
	f.Add(`agg=sum measure=votes dir=high district="New York" year=2020`)
	f.Add(`agg=sum measure=votes "district=New York"`)
	f.Add("dir=should target=3.5 measure=m")
	f.Add(`a="unterminated`)
	f.Add("==")
	f.Add("")
	f.Add("target=NaN dir=should measure=m agg=count")

	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseComplaint(spec)
		if err != nil {
			return
		}
		_, _ = c.Key()
	})
}
