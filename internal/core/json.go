package core

import (
	"encoding/json"

	"repro/internal/agg"
)

// The JSON encoding of a Recommendation is the wire format of the serving
// layer (internal/server). It is deterministic: field order is fixed by the
// encoder structs below, map keys are emitted sorted by encoding/json, and
// the underlying evaluation is itself deterministic — so equal
// recommendations marshal to byte-identical JSON regardless of worker count
// or transport.

type jsonGroupScore struct {
	// Group is the drill-down group's key values in group-by attribute order.
	Group     []string             `json:"group"`
	Predicted map[agg.Func]float64 `json:"predicted"`
	Repaired  float64              `json:"repaired"`
	Score     float64              `json:"score"`
	Gain      float64              `json:"gain"`
}

type jsonHierarchyResult struct {
	Hierarchy string           `json:"hierarchy"`
	Attr      string           `json:"attr"`
	Current   float64          `json:"current"`
	BestScore float64          `json:"best_score"`
	Ranked    []jsonGroupScore `json:"ranked"`
}

type jsonRecommendation struct {
	// Best names the winning hierarchy (an entry of Hierarchies); encoding
	// the name rather than repeating the result keeps the document acyclic.
	Best        string                `json:"best"`
	Hierarchies []jsonHierarchyResult `json:"hierarchies"`
}

// MarshalJSON encodes the recommendation deterministically.
func (r *Recommendation) MarshalJSON() ([]byte, error) {
	out := jsonRecommendation{Hierarchies: make([]jsonHierarchyResult, len(r.All))}
	if r.Best != nil {
		out.Best = r.Best.Hierarchy
	}
	for i, hr := range r.All {
		jh := jsonHierarchyResult{
			Hierarchy: hr.Hierarchy,
			Attr:      hr.Attr,
			Current:   hr.Current,
			BestScore: hr.BestScore,
			Ranked:    make([]jsonGroupScore, len(hr.Ranked)),
		}
		for j, gs := range hr.Ranked {
			jh.Ranked[j] = jsonGroupScore{
				Group:     gs.Group.Vals,
				Predicted: gs.Predicted,
				Repaired:  gs.Repaired,
				Score:     gs.Score,
				Gain:      gs.Gain,
			}
		}
		out.Hierarchies[i] = jh
	}
	return json.Marshal(out)
}
