package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/data"
)

func TestStateKeyTracksDrills(t *testing.T) {
	sc := buildScenario(11)
	eng, err := NewEngine(sc.ds, Options{EMIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.StateKey(), "geo:1|time:1"; got != want {
		t.Errorf("StateKey = %q, want %q", got, want)
	}
	if err := s.Drill("geo"); err != nil {
		t.Fatal(err)
	}
	if got, want := s.StateKey(), "geo:2|time:1"; got != want {
		t.Errorf("StateKey after drill = %q, want %q", got, want)
	}
	// Equal drill states in a second session yield the same key.
	s2, err := eng.NewSession([]string{"district", "village", "year"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.StateKey() != s.StateKey() {
		t.Errorf("equal drill states key differently: %q vs %q", s2.StateKey(), s.StateKey())
	}
}

func TestRecommendationJSONDeterministic(t *testing.T) {
	sc := buildScenario(12)
	sc.corruptMean("d1_v2", "1993", -8)
	c := Complaint{
		Agg:       "mean",
		Measure:   "severity",
		Direction: TooLow,
		Tuple:     data.Predicate{"district": "d1", "year": "1993"},
	}

	marshal := func(workers int) []byte {
		eng, err := NewEngine(sc.ds, Options{EMIterations: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s, err := eng.NewSession([]string{"district", "year"})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.Recommend(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	seq := marshal(1)
	par := marshal(4)
	if !bytes.Equal(seq, par) {
		t.Errorf("JSON encoding differs across worker counts:\nseq: %s\npar: %s", seq, par)
	}

	var doc struct {
		Best        string `json:"best"`
		Hierarchies []struct {
			Hierarchy string `json:"hierarchy"`
			Attr      string `json:"attr"`
			Ranked    []struct {
				Group []string `json:"group"`
			} `json:"ranked"`
		} `json:"hierarchies"`
	}
	if err := json.Unmarshal(seq, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Best == "" || len(doc.Hierarchies) == 0 {
		t.Fatalf("encoded document missing fields: %s", seq)
	}
	for _, h := range doc.Hierarchies {
		if h.Hierarchy == "" || h.Attr == "" || len(h.Ranked) == 0 {
			t.Errorf("hierarchy entry incomplete: %+v", h)
		}
	}
}
