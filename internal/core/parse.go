package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/agg"
	"repro/internal/data"
)

// ParseComplaint parses the compact complaint notation shared by the CLI and
// the server: space-separated key=value fields, e.g.
//
//	agg=mean measure=severity dir=low district=Ofla year=1986
//
// Values containing spaces are double-quoted (district="New York"); quotes
// may wrap the value or the whole field and are stripped. Recognized keys are
// agg, measure, dir (high, low, or should), and target (required when
// dir=should); every other key becomes a tuple condition. The recognized
// keys are reserved: a dimension attribute literally named "agg", "measure",
// "dir" or "target" cannot be expressed as a tuple condition in this
// notation (construct the Complaint directly instead).
func ParseComplaint(spec string) (Complaint, error) {
	c := Complaint{Tuple: data.Predicate{}}
	fields, err := splitQuotedFields(spec)
	if err != nil {
		return c, err
	}
	sawTarget := false
	for _, kv := range fields {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("core: bad complaint field %q", kv)
		}
		switch k {
		case "agg":
			f, err := agg.ParseFunc(v)
			if err != nil {
				return c, err
			}
			c.Agg = f
		case "measure":
			c.Measure = v
		case "dir":
			switch v {
			case "high":
				c.Direction = TooHigh
			case "low":
				c.Direction = TooLow
			case "should":
				c.Direction = ShouldBe
			default:
				return c, fmt.Errorf("core: bad direction %q: want high, low or should", v)
			}
		case "target":
			t, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return c, fmt.Errorf("core: bad target %q: %w", v, err)
			}
			// ParseFloat accepts "NaN" and "±Inf"; a non-finite target makes
			// every ShouldBe score NaN and the ranking meaningless.
			if math.IsNaN(t) || math.IsInf(t, 0) {
				return c, fmt.Errorf("core: non-finite target %q", v)
			}
			c.Target = t
			sawTarget = true
		default:
			c.Tuple[k] = v
		}
	}
	if c.Agg == "" || c.Measure == "" {
		return c, fmt.Errorf("core: complaint needs agg= and measure=")
	}
	if c.Direction == ShouldBe && !sawTarget {
		return c, fmt.Errorf("core: dir=should needs target=")
	}
	// target= must not silently swallow what a user meant as a tuple
	// condition on a dimension named "target": outside dir=should it is a
	// hard error, never a dropped filter.
	if sawTarget && c.Direction != ShouldBe {
		return c, fmt.Errorf("core: target= is only valid with dir=should")
	}
	return c, nil
}

// splitQuotedFields splits on whitespace, treating double-quoted regions as
// atomic; the quotes themselves are stripped.
func splitQuotedFields(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inField, inQuote := false, false
	flush := func() {
		if inField {
			out = append(out, cur.String())
			cur.Reset()
			inField = false
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
			inField = true // an empty quoted value ("") is still a field
		case unicode.IsSpace(r) && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
			inField = true
		}
	}
	if inQuote {
		return nil, fmt.Errorf("core: unterminated quote in %q", s)
	}
	flush()
	return out, nil
}
