package core

import (
	"testing"

	"repro/internal/agg"
)

func TestParseComplaint(t *testing.T) {
	c, err := ParseComplaint("agg=mean measure=severity dir=low district=Ofla year=1986")
	if err != nil {
		t.Fatal(err)
	}
	if c.Agg != agg.Mean || c.Measure != "severity" || c.Direction != TooLow {
		t.Errorf("parsed = %+v", c)
	}
	if c.Tuple["district"] != "Ofla" || c.Tuple["year"] != "1986" {
		t.Errorf("tuple = %v", c.Tuple)
	}
	for _, bad := range []string{
		"agg=mean",                                  // missing measure
		"agg=bogus measure=m dir=low",               // bad aggregate
		"agg=mean measure=m dir=side",               // bad direction
		"notakv",                                    // malformed field
		"agg=mean measure=m dir=should",             // should without target
		"agg=mean measure=m dir=should target=x",    // unparsable target
		"agg=mean measure=m dir=should target=NaN",  // non-finite target
		"agg=mean measure=m dir=should target=-Inf", // non-finite target
		"agg=mean measure=m dir=high target=5",      // target outside dir=should
		`agg=mean measure=m district="Ofla`,         // unterminated quote
	} {
		if _, err := ParseComplaint(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

func TestParseComplaintQuotedValues(t *testing.T) {
	c, err := ParseComplaint(`agg=sum measure=votes dir=high district="New York" year=2020`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tuple["district"] != "New York" {
		t.Errorf("district = %q, want %q", c.Tuple["district"], "New York")
	}
	// Quoting the whole field works too.
	c, err = ParseComplaint(`agg=sum measure=votes "district=New York"`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tuple["district"] != "New York" {
		t.Errorf("whole-field quote: district = %q", c.Tuple["district"])
	}
	// Empty quoted value is a present-but-empty condition.
	c, err = ParseComplaint(`agg=sum measure=votes district=""`)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Tuple["district"]; !ok || v != "" {
		t.Errorf("empty quote: tuple = %v", c.Tuple)
	}
}

func TestParseComplaintShouldBe(t *testing.T) {
	c, err := ParseComplaint("agg=count measure=votes dir=should target=120 state=NY")
	if err != nil {
		t.Fatal(err)
	}
	if c.Direction != ShouldBe || c.Target != 120 {
		t.Errorf("parsed = %+v", c)
	}
	if c.Eval(100) != 20 {
		t.Errorf("Eval(100) = %v, want 20", c.Eval(100))
	}
}

func TestComplaintKeyStable(t *testing.T) {
	a, err := ParseComplaint("agg=mean measure=severity dir=low district=Ofla year=1986")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseComplaint("agg=mean measure=severity dir=low year=1986 district=Ofla")
	if err != nil {
		t.Fatal(err)
	}
	ka, ok := a.Key()
	if !ok {
		t.Fatal("Key not ok for plain complaint")
	}
	kb, _ := b.Key()
	if ka != kb {
		t.Errorf("tuple order changed key: %q vs %q", ka, kb)
	}
	c := a
	c.Direction = TooHigh
	if kc, _ := c.Key(); kc == ka {
		t.Error("direction change did not change key")
	}
	c = a
	c.Custom = func(v float64) float64 { return v }
	if _, ok := c.Key(); ok {
		t.Error("custom fcomp must not be cacheable")
	}
	// Separator bytes inside values must not collide keys: a single value
	// "1\x00b=2" is not the same complaint as the pair a=1, b=2.
	crafted := a
	crafted.Tuple = map[string]string{"a": "1\x00b=2"}
	pair := a
	pair.Tuple = map[string]string{"a": "1", "b": "2"}
	kc, _ := crafted.Key()
	kp, _ := pair.Key()
	if kc == kp {
		t.Error("embedded separator bytes collided two distinct complaints")
	}
	// ShouldBe embeds the target.
	s1, _ := ParseComplaint("agg=mean measure=m dir=should target=1")
	s2, _ := ParseComplaint("agg=mean measure=m dir=should target=2")
	k1, _ := s1.Key()
	k2, _ := s2.Key()
	if k1 == k2 {
		t.Error("target change did not change key")
	}
}
