package core

import (
	"fmt"
	"sort"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/factor"
)

// ShardWorker is the data plane of one partition of a sharded engine. The
// engine scatters every aggregation to the workers and gathers their partial
// results; schema questions (hierarchies, measure names) are answered by the
// engine's schema dataset, never by a worker. The interface is deliberately
// small and value-oriented so a later implementation can proxy a remote shard
// server over the wire protocol; every method may therefore fail.
//
// Determinism contract: each method must return exactly what the engine's
// single-node path would compute over the shard's rows alone — PartialGroupBy
// the shard-local agg.GroupBy result, HierarchyPaths the shard's distinct
// full-depth paths (any order), ChildValues the sorted distinct values of the
// drilled attribute among shard rows matching the ancestor predicate. The
// engine merges partials in shard-index order, so the gathered results are
// reproducible run to run.
type ShardWorker interface {
	// PartialGroupBy aggregates the shard's rows at the given granularity.
	PartialGroupBy(attrs []string, measure string) (*agg.Result, error)
	// HierarchyPaths enumerates the shard's distinct full-depth paths of h.
	HierarchyPaths(h data.Hierarchy) ([][]string, error)
	// ChildValues returns the sorted distinct values of attr among the
	// shard's rows matching the ancestor predicate anc. The measure names the
	// complaint's measure so cube-backed shards can pick a covering grouping.
	ChildValues(h data.Hierarchy, attr, measure string, anc data.Predicate) ([]string, error)
}

// localShard is the in-process ShardWorker: a shard's code-backed dataset
// queried directly.
type localShard struct {
	ds *data.Dataset
}

// LocalShard wraps one shard's dataset as an in-process ShardWorker. The
// dataset must be treated as immutable, like every engine-owned dataset.
func LocalShard(ds *data.Dataset) ShardWorker { return localShard{ds: ds} }

func (l localShard) PartialGroupBy(attrs []string, measure string) (*agg.Result, error) {
	return agg.GroupBy(l.ds, attrs, measure), nil
}

func (l localShard) HierarchyPaths(h data.Hierarchy) ([][]string, error) {
	return factor.DistinctPaths(l.ds, h), nil
}

func (l localShard) ChildValues(h data.Hierarchy, attr, measure string, anc data.Predicate) ([]string, error) {
	return childValues(l.ds, h, attr, measure, anc), nil
}

// NewShardedEngine builds an engine whose data plane is partitioned across
// workers. The schema dataset supplies hierarchies and measure names (by
// convention the first shard's dataset — appends keep every shard's schema
// identical); shardKey names the hierarchy-root dimension the rows were
// partitioned on.
//
// Aggregations scatter to the workers and merge their partial (count, sum,
// sum-of-squares) statistics via agg.Stats.Add. The merged result is
// byte-identical to the single-shard engine whenever every group is
// shard-pure — its rows all live on one shard, which holds for any grouping
// that includes the shard-key attribute (rows of a group then share the key
// value, and the hash routes them together) — or the measure takes integer
// values (float64 addition is exact below 2^53). Groupings outside both
// conditions still merge exactly in the distributive sense, but may
// reassociate floating-point additions; see internal/shard's package
// documentation for how the default key choice keeps the examples exact.
func NewShardedEngine(schema *data.Dataset, workers []ShardWorker, shardKey string, opts Options) (*Engine, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("core: sharded engine needs at least one shard worker")
	}
	eng, err := NewEngine(schema, opts)
	if err != nil {
		return nil, err
	}
	if shardKey == "" {
		return nil, fmt.Errorf("core: sharded engine needs the shard-key dimension")
	}
	root := false
	for _, h := range schema.Hierarchies {
		if h.Attrs[0] == shardKey {
			root = true
			break
		}
	}
	if !root {
		return nil, fmt.Errorf("core: shard key %q is not the root attribute of any hierarchy", shardKey)
	}
	eng.shards = append([]ShardWorker(nil), workers...)
	eng.shardKey = shardKey
	return eng, nil
}

// NumShards returns the engine's shard count: 0 for a single-node engine.
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardKey returns the dimension the engine's rows are partitioned on, or ""
// for a single-node engine.
func (e *Engine) ShardKey() string { return e.shardKey }

// groupBy is the engine's aggregation entry point: the plain dataset scan (or
// cube lookup) on a single-node engine, scatter-gather over the shard workers
// otherwise. Partials are merged in shard-index order keyed by group key, then
// reassembled through agg.NewResult — the same sort every GroupBy path funnels
// through — so the merged ordering can never drift from the single-shard one.
// rec, when non-nil, records the scatter-gather phase as a "scatter" span.
func (e *Engine) groupBy(rec SpanRecorder, attrs []string, measure string) (*agg.Result, error) {
	if len(e.shards) == 0 {
		return agg.GroupBy(e.ds, attrs, measure), nil
	}
	endScatter := startSpan(rec, "scatter")
	partials := make([]*agg.Result, len(e.shards))
	errs := make([]error, len(e.shards))
	e.forEach(len(e.shards), func(i int) {
		partials[i], errs[i] = e.shards[i].PartialGroupBy(attrs, measure)
	})
	endScatter()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: shard %d group-by: %w", i, err)
		}
	}
	return mergePartials(attrs, measure, partials), nil
}

// mergePartials combines per-shard group-by results: groups sharing a key
// merge their statistics with Stats.Add (the Appendix A merge function G),
// in shard-index order.
func mergePartials(attrs []string, measure string, partials []*agg.Result) *agg.Result {
	index := make(map[string]int)
	var groups []agg.Group
	for _, p := range partials {
		for _, g := range p.Groups {
			if gi, ok := index[g.Key]; ok {
				groups[gi].Stats = groups[gi].Stats.Add(g.Stats)
			} else {
				index[g.Key] = len(groups)
				groups = append(groups, g)
			}
		}
	}
	return agg.NewResult(attrs, measure, groups)
}

// shardedChildValues gathers each shard's candidate drill-down values and
// unions them. Every worker returns a sorted set, and the union is re-sorted,
// so the output is independent of shard count and gather order.
func (e *Engine) shardedChildValues(h data.Hierarchy, attr, measure string, anc data.Predicate) ([]string, error) {
	per := make([][]string, len(e.shards))
	errs := make([]error, len(e.shards))
	e.forEach(len(e.shards), func(i int) {
		per[i], errs[i] = e.shards[i].ChildValues(h, attr, measure, anc)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: shard %d child values: %w", i, err)
		}
	}
	seen := make(map[string]bool)
	var out []string
	for _, vals := range per {
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
