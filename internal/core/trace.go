package core

import "context"

// SpanRecorder receives the engine's pipeline spans during a Recommend call:
// StartSpan opens a named span and returns the closure that ends it. The
// serving layer implements it (internal/obs.Trace satisfies the interface
// structurally) and carries it in the request context; core itself depends on
// nothing. Implementations must tolerate concurrent StartSpan calls — the
// engine records from its worker pool.
type SpanRecorder interface {
	StartSpan(name string) (end func())
}

type recorderKey struct{}

// WithSpanRecorder returns a context carrying the recorder. The engine
// resolves it once per RecommendContext call, so per-span cost is a method
// call, not a context lookup.
func WithSpanRecorder(ctx context.Context, r SpanRecorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, r)
}

func spanRecorderFrom(ctx context.Context) SpanRecorder {
	r, _ := ctx.Value(recorderKey{}).(SpanRecorder)
	return r
}

// startSpan opens a span on a possibly-nil recorder; the no-op path is a
// single comparison so untraced calls pay nothing.
func startSpan(rec SpanRecorder, name string) func() {
	if rec == nil {
		return noopEnd
	}
	return rec.StartSpan(name)
}

func noopEnd() {}
