package cube_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/store"
)

// benchData builds the same shape as the root Recommend benchmarks — three
// two-level hierarchies whose full cross product carries one row per leaf
// combination (43200 rows) — plus its snapshot forms: a coded dataset
// without a cube (the scan baseline), one with the cube attached, and an
// append batch for the maintenance benchmark. Built once, shared read-only.
var benchData struct {
	once    sync.Once
	err     error
	coded   *data.Dataset // dictionary codes, no cube: agg's coded scan path
	cubed   *data.Dataset // same rows with the materialized cube attached
	base    *store.Snapshot
	batch   []store.Row
	measure string
	attrs   []string // the Recommend hot path's first drill grouping
}

func benchFixtures(b *testing.B) {
	d := &benchData
	d.once.Do(func() {
		rng := rand.New(rand.NewSource(7))
		h := []data.Hierarchy{
			{Name: "geo", Attrs: []string{"region", "district"}},
			{Name: "time", Attrs: []string{"year", "month"}},
			{Name: "prod", Attrs: []string{"category", "item"}},
		}
		ds := data.New("bench", []string{"region", "district", "year", "month", "category", "item"}, []string{"sales"}, h)
		const regions, districts, years, months, categories, items = 5, 6, 4, 12, 5, 6
		for r := 0; r < regions; r++ {
			for dd := 0; dd < districts; dd++ {
				for y := 0; y < years; y++ {
					for m := 0; m < months; m++ {
						for c := 0; c < categories; c++ {
							for it := 0; it < items; it++ {
								ds.AppendRowVals([]string{
									fmt.Sprintf("r%d", r), fmt.Sprintf("r%d_d%d", r, dd),
									fmt.Sprintf("y%d", y), fmt.Sprintf("y%d_m%02d", y, m),
									fmt.Sprintf("c%d", c), fmt.Sprintf("c%d_i%d", c, it),
								}, []float64{100 + rng.NormFloat64()})
							}
						}
					}
				}
			}
		}
		if d.coded, d.err = store.FromDataset(ds).Dataset(); d.err != nil {
			return
		}
		snap := store.FromDataset(ds)
		if d.err = snap.BuildCube(); d.err != nil {
			return
		}
		if snap.Cube() == nil {
			d.err = fmt.Errorf("bench dataset did not materialize a cube")
			return
		}
		d.base = snap
		if d.cubed, d.err = snap.Dataset(); d.err != nil {
			return
		}
		// A 1k-row append batch over existing leaf combinations plus one new
		// district, so the merge both re-keys and extends.
		for i := 0; i < 1000; i++ {
			dist := fmt.Sprintf("r1_d%d", i%districts)
			if i%100 == 0 {
				dist = "r1_dnew"
			}
			d.batch = append(d.batch, store.Row{
				Dims: []string{"r1", dist, "y1", fmt.Sprintf("y1_m%02d", i%months),
					"c1", fmt.Sprintf("c1_i%d", i%items)},
				Measures: []float64{100 + rng.NormFloat64()},
			})
		}
		d.measure = "sales"
		d.attrs = []string{"region", "year", "category"}
	})
	if d.err != nil {
		b.Fatal(d.err)
	}
}

// BenchmarkGroupByCoded is the scan baseline: agg.GroupBy over the
// dictionary-coded dataset (PR 3's fast path) at the Recommend hot path's
// first drill grouping — every call rescans all 43200 rows.
func BenchmarkGroupByCoded(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := agg.GroupBy(benchData.coded, benchData.attrs, benchData.measure)
		if len(r.Groups) != 100 {
			b.Fatalf("groups = %d", len(r.Groups))
		}
	}
}

// BenchmarkGroupByCube is the same call against the cube-attached dataset:
// agg.GroupBy answers from the materialized level in O(groups), decoding and
// sorting 100 cells instead of scanning 43200 rows.
func BenchmarkGroupByCube(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := agg.GroupBy(benchData.cubed, benchData.attrs, benchData.measure)
		if len(r.Groups) != 100 {
			b.Fatalf("groups = %d", len(r.Groups))
		}
	}
}

// BenchmarkCubeBuild measures materializing the full 27-level lattice from
// rows — the one-time cost a registration or convert -cube pays.
func BenchmarkCubeBuild(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Build(benchData.coded); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCubeAppendMerge measures incremental maintenance: appending a
// 1000-row batch to the 43200-row snapshot, which builds a delta cube over
// just the batch and merges it into the successor version — against
// BenchmarkCubeBuild, the saving of not rebuilding from all rows.
func BenchmarkCubeAppendMerge(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := store.NewBuilder(benchData.base).Append(benchData.batch)
		if err != nil {
			b.Fatal(err)
		}
		if next.Cube() == nil {
			b.Fatal("append dropped the cube")
		}
	}
}
