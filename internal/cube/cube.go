package cube

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/agg"
	"repro/internal/data"
)

// ErrNotCubable reports a dataset the cube subsystem declines to materialize:
// no hierarchies, a dimension without dictionary codes, a composite key space
// that overflows uint64, or a lattice with more levels than maxLevels.
// Callers treat it as "serve from row scans instead", not as a failure.
var ErrNotCubable = errors.New("dataset not cubable")

// maxLevels bounds the lattice size (the product of depth+1 over
// hierarchies) so pathological schemas cannot explode the build.
const maxLevels = 4096

// attrInfo is one flattened hierarchy attribute in canonical order
// (hierarchy by hierarchy, least to most specific).
type attrInfo struct {
	name  string
	hier  int // index into hiers
	level int // depth within the hierarchy
	dict  []string
	radix uint64 // dictionary size (1 for an empty dictionary)
}

// level is one lattice grouping: the cells of the group-by over every
// hierarchy's prefix of the level's depth. Cells are keyed by the
// mixed-radix composite of their attribute codes in canonical attribute
// order and stored sorted by key.
type level struct {
	depths []int // depth per hierarchy
	attrs  []int // flattened attribute indices, canonical order
	keys   []uint64
	counts []float64
	sums   [][]float64 // per measure, aligned with keys
	sumsqs [][]float64
}

// Cube is the materialized rollup lattice of one immutable dataset version.
// It is safe for concurrent use; query methods allocate fresh results.
type Cube struct {
	name     string
	rows     int
	measures []string
	hiers    []data.Hierarchy
	attrs    []attrInfo
	attrIdx  map[string]int // attribute name → flattened index
	// firstAttr[h] is the flattened index of hierarchy h's first attribute.
	firstAttr []int
	// prefixRadix[h][d] is the product of the first d attribute radices of
	// hierarchy h: the size of the composite key space of its depth-d prefix.
	prefixRadix [][]uint64
	levels      []*level // in lattice order (latticeIndex over depth vectors)
}

// skeleton builds an empty cube over the dataset's schema: flattened
// attributes, radices, and one empty level per lattice point.
func skeleton(ds *data.Dataset) (*Cube, error) {
	if len(ds.Hierarchies) == 0 {
		return nil, fmt.Errorf("cube: %w: dataset %q has no hierarchies", ErrNotCubable, ds.Name)
	}
	c := &Cube{
		name:     ds.Name,
		rows:     ds.NumRows(),
		measures: ds.MeasureNames(),
		hiers:    append([]data.Hierarchy(nil), ds.Hierarchies...),
		attrIdx:  make(map[string]int),
	}
	product := uint64(1)
	nlevels := 1
	for hi, h := range c.hiers {
		if len(h.Attrs) == 0 || nlevels > maxLevels/(len(h.Attrs)+1) {
			return nil, fmt.Errorf("cube: %w: lattice exceeds %d groupings", ErrNotCubable, maxLevels)
		}
		nlevels *= len(h.Attrs) + 1
		c.firstAttr = append(c.firstAttr, len(c.attrs))
		pr := []uint64{1}
		for lvl, a := range h.Attrs {
			if _, dup := c.attrIdx[a]; dup {
				return nil, fmt.Errorf("cube: %w: attribute %q appears in two hierarchies", ErrNotCubable, a)
			}
			dict, ok := ds.DimDict(a)
			if !ok && ds.NumRows() > 0 {
				return nil, fmt.Errorf("cube: %w: attribute %q has no dictionary encoding", ErrNotCubable, a)
			}
			radix := uint64(len(dict))
			if radix == 0 {
				radix = 1 // empty dataset: no rows, no cells, any radix works
			}
			if product > math.MaxUint64/radix || pr[lvl] > math.MaxUint64/radix {
				return nil, fmt.Errorf("cube: %w: composite key space overflows uint64", ErrNotCubable)
			}
			product *= radix
			pr = append(pr, pr[lvl]*radix)
			c.attrIdx[a] = len(c.attrs)
			c.attrs = append(c.attrs, attrInfo{name: a, hier: hi, level: lvl, dict: dict, radix: radix})
		}
		c.prefixRadix = append(c.prefixRadix, pr)
	}
	c.levels = make([]*level, nlevels)
	for li := range c.levels {
		lv := &level{depths: c.depthsOf(li)}
		for hi := range c.hiers {
			for d := 0; d < lv.depths[hi]; d++ {
				lv.attrs = append(lv.attrs, c.firstAttr[hi]+d)
			}
		}
		lv.sums = make([][]float64, len(c.measures))
		lv.sumsqs = make([][]float64, len(c.measures))
		c.levels[li] = lv
	}
	return c, nil
}

// latticeIndex maps a depth vector to its position in levels.
func (c *Cube) latticeIndex(depths []int) int {
	idx := 0
	for hi, h := range c.hiers {
		idx = idx*(len(h.Attrs)+1) + depths[hi]
	}
	return idx
}

// depthsOf inverts latticeIndex.
func (c *Cube) depthsOf(li int) []int {
	out := make([]int, len(c.hiers))
	for hi := len(c.hiers) - 1; hi >= 0; hi-- {
		n := len(c.hiers[hi].Attrs) + 1
		out[hi] = li % n
		li /= n
	}
	return out
}

// Build materializes the full lattice over a code-backed dataset (one loaded
// through internal/store). Every level accumulates in row order, so its
// cells carry exactly the statistics a row scan of that grouping produces.
func Build(ds *data.Dataset) (*Cube, error) {
	return BuildRows(ds, 0, ds.NumRows())
}

// BuildRows materializes the lattice over the row range [lo, hi) — the delta
// cube of an appended batch when lo is the predecessor's row count.
func BuildRows(ds *data.Dataset, lo, hi int) (*Cube, error) {
	if lo < 0 || hi < lo || hi > ds.NumRows() {
		return nil, fmt.Errorf("cube: row range [%d,%d) out of bounds (%d rows)", lo, hi, ds.NumRows())
	}
	c, err := skeleton(ds)
	if err != nil {
		return nil, err
	}
	c.rows = hi - lo
	// Columns are read through cursors: heap slices on an eagerly-loaded
	// dataset, lazily-decoded readers on a memory-mapped one. The accumulation
	// order is identical either way, so the cells are bit-identical across
	// open modes.
	codes := make([]data.DimCursor, len(c.attrs))
	for ai, a := range c.attrs {
		codes[ai] = ds.DimCursor(a.name)
	}
	cols := make([]data.MeasureCursor, len(c.measures))
	for mi, m := range c.measures {
		cols[mi] = ds.MeasureCursor(m)
	}
	cellIdx := make([]map[uint64]int, len(c.levels))
	for li := range cellIdx {
		cellIdx[li] = make(map[uint64]int)
	}
	// prefKey[h][d] is the current row's composite key over hierarchy h's
	// first d+1 attributes, rebuilt incrementally per row.
	prefKey := make([][]uint64, len(c.hiers))
	for hi, h := range c.hiers {
		prefKey[hi] = make([]uint64, len(h.Attrs))
	}
	for row := lo; row < hi; row++ {
		for hi, h := range c.hiers {
			k := uint64(0)
			for d := 0; d < len(h.Attrs); d++ {
				ai := c.firstAttr[hi] + d
				k = k*c.attrs[ai].radix + uint64(codes[ai].Code(row))
				prefKey[hi][d] = k
			}
		}
		for li, lv := range c.levels {
			k := uint64(0)
			for hi := range c.hiers {
				d := lv.depths[hi]
				if d == 0 {
					continue
				}
				k = k*c.prefixRadix[hi][d] + prefKey[hi][d-1]
			}
			ci, ok := cellIdx[li][k]
			if !ok {
				ci = len(lv.keys)
				cellIdx[li][k] = ci
				lv.keys = append(lv.keys, k)
				lv.counts = append(lv.counts, 0)
				for mi := range lv.sums {
					lv.sums[mi] = append(lv.sums[mi], 0)
					lv.sumsqs[mi] = append(lv.sumsqs[mi], 0)
				}
			}
			lv.counts[ci]++
			for mi, col := range cols {
				v := col.At(row)
				lv.sums[mi][ci] += v
				lv.sumsqs[mi][ci] += v * v
			}
		}
	}
	for _, lv := range c.levels {
		lv.sortByKey()
	}
	return c, nil
}

// sortByKey orders the level's cells by composite key (the storage and
// merge-join order; query paths re-sort by decoded values).
func (lv *level) sortByKey() {
	perm := make([]int, len(lv.keys))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return lv.keys[perm[a]] < lv.keys[perm[b]] })
	reorderU64(lv.keys, perm)
	reorderF64(lv.counts, perm)
	for mi := range lv.sums {
		reorderF64(lv.sums[mi], perm)
		reorderF64(lv.sumsqs[mi], perm)
	}
}

func reorderU64(s []uint64, perm []int) {
	tmp := make([]uint64, len(s))
	for i, p := range perm {
		tmp[i] = s[p]
	}
	copy(s, tmp)
}

func reorderF64(s []float64, perm []int) {
	tmp := make([]float64, len(s))
	for i, p := range perm {
		tmp[i] = s[p]
	}
	copy(s, tmp)
}

// decodeKey splits a level's composite key into per-attribute codes, in the
// level's canonical attribute order.
func (c *Cube) decodeKey(lv *level, k uint64, out []uint64) {
	for i := len(lv.attrs) - 1; i >= 0; i-- {
		r := c.attrs[lv.attrs[i]].radix
		out[i] = k % r
		k /= r
	}
}

// measureIndex returns the position of measure in the cube, or -1.
func (c *Cube) measureIndex(measure string) int {
	for mi, m := range c.measures {
		if m == measure {
			return mi
		}
	}
	return -1
}

// resolve maps the requested attributes to flattened indices and
// per-hierarchy depth counts. ok is false on an unknown or duplicate
// attribute.
func (c *Cube) resolve(attrs []string) (flat []int, depths, maxLvl []int, ok bool) {
	flat = make([]int, len(attrs))
	depths = make([]int, len(c.hiers))
	maxLvl = make([]int, len(c.hiers))
	for hi := range maxLvl {
		maxLvl[hi] = -1
	}
	seen := make(map[int]bool, len(attrs))
	for qi, a := range attrs {
		ai, found := c.attrIdx[a]
		if !found || seen[ai] {
			return nil, nil, nil, false
		}
		seen[ai] = true
		flat[qi] = ai
		info := c.attrs[ai]
		depths[info.hier]++
		if info.level > maxLvl[info.hier] {
			maxLvl[info.hier] = info.level
		}
	}
	return flat, depths, maxLvl, true
}

// GroupBy answers a group-by over hierarchy-prefix attributes from the
// materialized level, in O(groups) and without touching rows. The attributes
// may arrive in any order (the engine orders the drilled hierarchy last) as
// long as, within each hierarchy, the ones present form a prefix. The result
// is bit-identical to agg.GroupBy's row scan and freshly allocated per call.
// ok=false means the grouping or measure is outside the cube; callers fall
// back to a scan. GroupBy implements agg.Materialized.
func (c *Cube) GroupBy(attrs []string, measure string) (*agg.Result, bool) {
	mi := c.measureIndex(measure)
	if mi < 0 || len(attrs) == 0 {
		return nil, false
	}
	flat, depths, maxLvl, ok := c.resolve(attrs)
	if !ok {
		return nil, false
	}
	for hi := range depths {
		if depths[hi] != maxLvl[hi]+1 {
			return nil, false // a gap: not a hierarchy prefix
		}
	}
	lv := c.levels[c.latticeIndex(depths)]
	// Position of each query attribute within the level's canonical order.
	pos := make([]int, len(attrs))
	for qi, ai := range flat {
		for i, la := range lv.attrs {
			if la == ai {
				pos[qi] = i
				break
			}
		}
	}
	var groups []agg.Group
	codes := make([]uint64, len(lv.attrs))
	for ci, k := range lv.keys {
		c.decodeKey(lv, k, codes)
		vals := make([]string, len(attrs))
		for qi := range attrs {
			vals[qi] = c.attrs[flat[qi]].dict[codes[pos[qi]]]
		}
		groups = append(groups, agg.Group{
			Key:   data.EncodeKey(vals),
			Vals:  vals,
			Stats: agg.Stats{Count: lv.counts[ci], Sum: lv.sums[mi][ci], SumSq: lv.sumsqs[mi][ci]},
		})
	}
	return agg.NewResult(attrs, measure, groups), true
}

// Rollup answers an arbitrary grouping over hierarchy attributes — prefix or
// not, e.g. by a mid-hierarchy attribute alone or with whole hierarchies
// dropped — by merging the cells of the coarsest materialized level that
// covers it (Stats.Add) instead of recomputing from rows. Because merging
// reassociates floating-point additions, sums may differ from a row scan in
// the last bit (counts are exact); the transparent agg.GroupBy path
// therefore never uses Rollup, only explicit callers do.
func (c *Cube) Rollup(attrs []string, measure string) (*agg.Result, bool) {
	mi := c.measureIndex(measure)
	if mi < 0 || len(attrs) == 0 {
		return nil, false
	}
	flat, _, maxLvl, ok := c.resolve(attrs)
	if !ok {
		return nil, false
	}
	// The covering level: each hierarchy at the deepest requested attribute.
	depths := make([]int, len(c.hiers))
	for hi := range depths {
		depths[hi] = maxLvl[hi] + 1
	}
	lv := c.levels[c.latticeIndex(depths)]
	pos := make([]int, len(attrs))
	for qi, ai := range flat {
		for i, la := range lv.attrs {
			if la == ai {
				pos[qi] = i
				break
			}
		}
	}
	codes := make([]uint64, len(lv.attrs))
	cellOf := make(map[uint64]int)
	var groups []agg.Group
	for ci, k := range lv.keys {
		c.decodeKey(lv, k, codes)
		pk := uint64(0)
		for qi := range attrs {
			pk = pk*c.attrs[flat[qi]].radix + codes[pos[qi]]
		}
		cell := agg.Stats{Count: lv.counts[ci], Sum: lv.sums[mi][ci], SumSq: lv.sumsqs[mi][ci]}
		if gi, ok := cellOf[pk]; ok {
			groups[gi].Stats = groups[gi].Stats.Add(cell)
			continue
		}
		vals := make([]string, len(attrs))
		for qi := range attrs {
			vals[qi] = c.attrs[flat[qi]].dict[codes[pos[qi]]]
		}
		cellOf[pk] = len(groups)
		groups = append(groups, agg.Group{Key: data.EncodeKey(vals), Vals: vals, Stats: cell})
	}
	return agg.NewResult(attrs, measure, groups), true
}

// HierarchyPaths enumerates the distinct full-depth paths of hierarchy h
// from the level that drills only h, without touching rows. It implements
// factor.PathProvider; ok=false when the hierarchy is not the cube's.
func (c *Cube) HierarchyPaths(h data.Hierarchy) ([][]string, bool) {
	hi := -1
	for i, ch := range c.hiers {
		if ch.Name == h.Name && slices.Equal(ch.Attrs, h.Attrs) {
			hi = i
			break
		}
	}
	if hi < 0 {
		return nil, false
	}
	depths := make([]int, len(c.hiers))
	depths[hi] = len(h.Attrs)
	lv := c.levels[c.latticeIndex(depths)]
	codes := make([]uint64, len(lv.attrs))
	paths := make([][]string, 0, len(lv.keys))
	for _, k := range lv.keys {
		c.decodeKey(lv, k, codes)
		p := make([]string, len(lv.attrs))
		for i, ai := range lv.attrs {
			p[i] = c.attrs[ai].dict[codes[i]]
		}
		paths = append(paths, p)
	}
	return paths, true
}

// Merge folds a delta cube (built over an appended batch with BuildRows)
// into c, producing the successor version's cube: cells present in both are
// merged with Stats.Add, and c's keys are re-encoded into the delta's radix
// space when appended values grew the dictionaries (dictionaries grow
// append-only, so codes — and therefore key order — are preserved). Neither
// input is modified.
//
// Exactness: counts merge exactly, and a cell untouched by the delta is
// copied verbatim. A cell present in both sides gains the delta's subtotal
// in one addition, where a row scan of the combined rows would have added
// the batch's values one at a time — so merged sums can differ from that
// scan in the last floating-point bit unless the batch's values are exactly
// representable (integers) or the cell received a single batch row. Every
// derived aggregate remains a correct aggregation of the combined rows.
func (c *Cube) Merge(delta *Cube) (*Cube, error) {
	if len(delta.hiers) != len(c.hiers) || len(delta.attrs) != len(c.attrs) ||
		len(delta.measures) != len(c.measures) || len(delta.levels) != len(c.levels) {
		return nil, fmt.Errorf("cube: merge: schema mismatch")
	}
	for i, h := range c.hiers {
		if delta.hiers[i].Name != h.Name || !slices.Equal(delta.hiers[i].Attrs, h.Attrs) {
			return nil, fmt.Errorf("cube: merge: hierarchy %q differs", h.Name)
		}
	}
	for i, m := range c.measures {
		if delta.measures[i] != m {
			return nil, fmt.Errorf("cube: merge: measure %q differs", m)
		}
	}
	for i := range c.attrs {
		if delta.attrs[i].radix < c.attrs[i].radix {
			return nil, fmt.Errorf("cube: merge: dictionary of %q shrank", c.attrs[i].name)
		}
	}
	out := &Cube{
		name:        c.name,
		rows:        c.rows + delta.rows,
		measures:    c.measures,
		hiers:       c.hiers,
		attrs:       delta.attrs,
		attrIdx:     delta.attrIdx,
		firstAttr:   delta.firstAttr,
		prefixRadix: delta.prefixRadix,
		levels:      make([]*level, len(c.levels)),
	}
	for li, base := range c.levels {
		dlv := delta.levels[li]
		// Re-encode the base keys into the delta's (possibly larger) radix
		// space; mixed-radix encoding preserves code-tuple order, so the
		// re-encoded keys stay sorted and a linear merge-join suffices.
		rekeys := make([]uint64, len(base.keys))
		codes := make([]uint64, len(base.attrs))
		for i, k := range base.keys {
			c.decodeKey(base, k, codes)
			nk := uint64(0)
			for ai, code := range codes {
				nk = nk*delta.attrs[base.attrs[ai]].radix + code
			}
			rekeys[i] = nk
		}
		mlv := &level{depths: base.depths, attrs: base.attrs}
		mlv.sums = make([][]float64, len(c.measures))
		mlv.sumsqs = make([][]float64, len(c.measures))
		bi, di := 0, 0
		for bi < len(rekeys) || di < len(dlv.keys) {
			switch {
			case di == len(dlv.keys) || (bi < len(rekeys) && rekeys[bi] < dlv.keys[di]):
				mlv.appendCell(rekeys[bi], base.cell(bi))
				bi++
			case bi == len(rekeys) || dlv.keys[di] < rekeys[bi]:
				mlv.appendCell(dlv.keys[di], dlv.cell(di))
				di++
			default: // equal keys: merge the partitions' statistics
				bc, dc := base.cell(bi), dlv.cell(di)
				merged := make([]agg.Stats, len(bc))
				for mi := range bc {
					merged[mi] = bc[mi].Add(dc[mi])
				}
				mlv.appendCell(rekeys[bi], merged)
				bi++
				di++
			}
		}
		out.levels[li] = mlv
	}
	return out, nil
}

// cell returns the per-measure statistics of cell ci.
func (lv *level) cell(ci int) []agg.Stats {
	out := make([]agg.Stats, len(lv.sums))
	for mi := range lv.sums {
		out[mi] = agg.Stats{Count: lv.counts[ci], Sum: lv.sums[mi][ci], SumSq: lv.sumsqs[mi][ci]}
	}
	if len(out) == 0 {
		out = []agg.Stats{{Count: lv.counts[ci]}}
	}
	return out
}

// appendCell appends one cell given its per-measure statistics.
func (lv *level) appendCell(k uint64, stats []agg.Stats) {
	lv.keys = append(lv.keys, k)
	lv.counts = append(lv.counts, stats[0].Count)
	for mi := range lv.sums {
		lv.sums[mi] = append(lv.sums[mi], stats[mi].Sum)
		lv.sumsqs[mi] = append(lv.sumsqs[mi], stats[mi].SumSq)
	}
}

// NumRows returns the number of rows the cube summarizes.
func (c *Cube) NumRows() int { return c.rows }

// NumLevels returns the number of materialized lattice groupings.
func (c *Cube) NumLevels() int { return len(c.levels) }

// NumCells returns the total number of cells across all levels.
func (c *Cube) NumCells() int {
	n := 0
	for _, lv := range c.levels {
		n += len(lv.keys)
	}
	return n
}

// MeasureNames returns the cube's measure columns in order.
func (c *Cube) MeasureNames() []string { return append([]string(nil), c.measures...) }

// validate checks the structural invariants a decoded cube must satisfy:
// strictly ascending in-range keys, positive integral counts, and every
// level partitioning exactly the cube's rows.
func (c *Cube) validate() error {
	for li, lv := range c.levels {
		max := uint64(1)
		for hi, d := range lv.depths {
			max *= c.prefixRadix[hi][d]
		}
		var total float64
		prev := uint64(0)
		for ci, k := range lv.keys {
			if ci > 0 && k <= prev {
				return fmt.Errorf("cube: level %d: keys not strictly ascending", li)
			}
			prev = k
			if k >= max {
				return fmt.Errorf("cube: level %d: key %d out of range (key space %d)", li, k, max)
			}
			cnt := lv.counts[ci]
			if cnt < 1 || cnt != math.Trunc(cnt) {
				return fmt.Errorf("cube: level %d cell %d: bad count %v", li, ci, cnt)
			}
			total += cnt
		}
		if total != float64(c.rows) {
			return fmt.Errorf("cube: level %d covers %v rows, cube has %d", li, total, c.rows)
		}
	}
	return nil
}
