package cube_test

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/store"
)

// testDataset builds a two-hierarchy dataset with float measures (so
// bit-identity assertions are meaningful) and enough duplicate keys to make
// every lattice level aggregate more than one row per cell.
func testDataset(t testing.TB) *data.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"region", "district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("cube-test", []string{"region", "district", "village", "year"}, []string{"severity", "rain"}, h)
	type place struct{ r, d, v string }
	var places []place
	for r := 0; r < 3; r++ {
		for d := 0; d < 3; d++ {
			for v := 0; v < 2; v++ {
				places = append(places, place{
					r: string(rune('A' + r)),
					d: string(rune('A'+r)) + string(rune('a'+d)),
					v: string(rune('A'+r)) + string(rune('a'+d)) + string(rune('0'+v)),
				})
			}
		}
	}
	years := []string{"2019", "2020", "2021"}
	for i := 0; i < 600; i++ {
		p := places[rng.Intn(len(places))]
		y := years[rng.Intn(len(years))]
		ds.AppendRowVals([]string{p.r, p.d, p.v, y}, []float64{rng.NormFloat64() * 3, rng.Float64() * 100})
	}
	return ds
}

// codedDataset round-trips a dataset through a snapshot so every dimension
// carries dictionary codes but no cube is attached.
func codedDataset(t testing.TB, ds *data.Dataset) *data.Dataset {
	t.Helper()
	out, err := store.FromDataset(ds).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// prefixGroupings enumerates every hierarchy-prefix attribute list of the
// dataset in engine order (other hierarchies first, one hierarchy last), plus
// a few permuted variants.
func prefixGroupings(ds *data.Dataset) [][]string {
	var out [][]string
	var hiers []data.Hierarchy
	hiers = append(hiers, ds.Hierarchies...)
	// All depth combinations with at least one attribute.
	var walk func(hi int, cur []string)
	walk = func(hi int, cur []string) {
		if hi == len(hiers) {
			if len(cur) > 0 {
				out = append(out, append([]string(nil), cur...))
			}
			return
		}
		walk(hi+1, cur)
		for d := 1; d <= len(hiers[hi].Attrs); d++ {
			walk(hi+1, append(cur, hiers[hi].Attrs[:d]...))
		}
	}
	walk(0, nil)
	// Engine-style permutation: time first, geo prefix last.
	out = append(out, []string{"year", "region"}, []string{"year", "region", "district"})
	return out
}

func TestGroupByMatchesScanExactly(t *testing.T) {
	base := testDataset(t)
	coded := codedDataset(t, base)
	c, err := cube.Build(coded)
	if err != nil {
		t.Fatal(err)
	}
	for _, attrs := range prefixGroupings(coded) {
		for _, measure := range coded.MeasureNames() {
			want := agg.GroupBy(coded, attrs, measure) // no cube attached: scan
			got, ok := c.GroupBy(attrs, measure)
			if !ok {
				t.Fatalf("GroupBy(%v, %s): cube declined", attrs, measure)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("GroupBy(%v, %s) differs from scan:\ncube: %+v\nscan: %+v",
					attrs, measure, got.Groups[:min(3, len(got.Groups))], want.Groups[:min(3, len(want.Groups))])
			}
		}
	}
}

func TestGroupByThroughAggAttachment(t *testing.T) {
	base := testDataset(t)
	plain := codedDataset(t, base)
	cubed := codedDataset(t, base)
	c, err := cube.Build(cubed)
	if err != nil {
		t.Fatal(err)
	}
	cubed.SetRollup(c)
	if _, ok := agg.MaterializedOf(cubed); !ok {
		t.Fatal("cube not discoverable through agg.MaterializedOf")
	}
	attrs := []string{"year", "region", "district"}
	want := agg.GroupBy(plain, attrs, "severity")
	got := agg.GroupBy(cubed, attrs, "severity")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("agg.GroupBy over attached cube differs from scan")
	}
	// Non-prefix groupings fall back to the scan transparently.
	np := agg.GroupBy(cubed, []string{"district"}, "severity")
	if !reflect.DeepEqual(np, agg.GroupBy(plain, []string{"district"}, "severity")) {
		t.Fatal("fallback scan over attached cube differs from plain scan")
	}
}

func TestGroupByDeclines(t *testing.T) {
	c, err := cube.Build(codedDataset(t, testDataset(t)))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		attrs   []string
		measure string
	}{
		{"non-prefix (gap)", []string{"district"}, "severity"},
		{"non-prefix (deep only)", []string{"village", "year"}, "severity"},
		{"unknown attribute", []string{"region", "nope"}, "severity"},
		{"duplicate attribute", []string{"region", "region"}, "severity"},
		{"unknown measure", []string{"region"}, "nope"},
		{"empty grouping", nil, "severity"},
	}
	for _, tc := range cases {
		if _, ok := c.GroupBy(tc.attrs, tc.measure); ok {
			t.Errorf("%s: cube answered, want decline", tc.name)
		}
	}
}

func TestRollupMergesCells(t *testing.T) {
	base := testDataset(t)
	coded := codedDataset(t, base)
	c, err := cube.Build(coded)
	if err != nil {
		t.Fatal(err)
	}
	// Groupings the prefix GroupBy declines: answered by merging the cells
	// of the covering level with Stats.Add.
	for _, attrs := range [][]string{{"district"}, {"village"}, {"district", "year"}, {"year"}} {
		got, ok := c.Rollup(attrs, "severity")
		if !ok {
			t.Fatalf("Rollup(%v) declined", attrs)
		}
		want := agg.GroupBy(coded, attrs, "severity")
		if len(got.Groups) != len(want.Groups) {
			t.Fatalf("Rollup(%v): %d groups, scan has %d", attrs, len(got.Groups), len(want.Groups))
		}
		for i, g := range got.Groups {
			w := want.Groups[i]
			if g.Key != w.Key || g.Stats.Count != w.Stats.Count {
				t.Fatalf("Rollup(%v) group %d: %+v, want %+v", attrs, i, g, w)
			}
			if rel := math.Abs(g.Stats.Sum-w.Stats.Sum) / math.Max(1, math.Abs(w.Stats.Sum)); rel > 1e-9 {
				t.Fatalf("Rollup(%v) group %d sum %v, want %v", attrs, i, g.Stats.Sum, w.Stats.Sum)
			}
		}
	}
	// Prefix groupings roll up without any merging and stay exact.
	got, _ := c.Rollup([]string{"region", "year"}, "rain")
	if !reflect.DeepEqual(got, agg.GroupBy(coded, []string{"region", "year"}, "rain")) {
		t.Fatal("prefix Rollup differs from scan")
	}
}

func TestHierarchyPaths(t *testing.T) {
	base := testDataset(t)
	coded := codedDataset(t, base)
	c, err := cube.Build(coded)
	if err != nil {
		t.Fatal(err)
	}
	paths, ok := c.HierarchyPaths(coded.Hierarchies[0])
	if !ok {
		t.Fatal("HierarchyPaths declined the dataset's own hierarchy")
	}
	seen := make(map[string]bool)
	for _, p := range paths {
		seen[strings.Join(p, "/")] = true
	}
	want := make(map[string]bool)
	for row := 0; row < coded.NumRows(); row++ {
		want[coded.Dim("region")[row]+"/"+coded.Dim("district")[row]+"/"+coded.Dim("village")[row]] = true
	}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("paths = %v, want %v", seen, want)
	}
	if _, ok := c.HierarchyPaths(data.Hierarchy{Name: "geo", Attrs: []string{"region"}}); ok {
		t.Error("HierarchyPaths accepted a truncated hierarchy")
	}
}

func TestMergeMatchesRebuild(t *testing.T) {
	// Integer measures make merged floating-point sums exact, so the merged
	// cube must equal a from-scratch build bit for bit.
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	mk := func() *data.Dataset {
		return data.New("m", []string{"district", "village", "year"}, []string{"sev"}, h)
	}
	baseRows := [][]string{
		{"Ofla", "Adi", "1986"}, {"Ofla", "Adi", "1986"}, {"Ofla", "Zata", "1987"}, {"Raya", "Kuku", "1986"},
	}
	batch := []store.Row{
		{Dims: []string{"Ofla", "Adi", "1986"}, Measures: []float64{5}},    // existing cell
		{Dims: []string{"Raya", "Mehoni", "1988"}, Measures: []float64{7}}, // new village and year
		{Dims: []string{"Raya", "Mehoni", "1988"}, Measures: []float64{9}},
	}
	ds := mk()
	for i, r := range baseRows {
		ds.AppendRowVals(r, []float64{float64(i + 1)})
	}
	snap := store.FromDataset(ds)
	if err := snap.BuildCube(); err != nil {
		t.Fatal(err)
	}
	b := store.NewBuilder(snap)
	next, err := b.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	merged := next.Cube()
	if merged == nil {
		t.Fatal("append dropped the cube")
	}
	nds, err := next.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := cube.Build(nds)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != 7 || merged.NumCells() != rebuilt.NumCells() {
		t.Fatalf("merged rows=%d cells=%d, rebuilt cells=%d", merged.NumRows(), merged.NumCells(), rebuilt.NumCells())
	}
	for _, attrs := range [][]string{{"district"}, {"district", "village"}, {"year"}, {"year", "district", "village"}} {
		got, ok1 := merged.GroupBy(attrs, "sev")
		want, ok2 := rebuilt.GroupBy(attrs, "sev")
		if !ok1 || !ok2 {
			t.Fatalf("GroupBy(%v) declined (merged %v rebuilt %v)", attrs, ok1, ok2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("GroupBy(%v): merged differs from rebuilt", attrs)
		}
	}
	// The predecessor's cube is untouched.
	if snap.Cube().NumRows() != 4 {
		t.Error("merge mutated the base cube")
	}
}

func TestMergeRejectsSchemaMismatch(t *testing.T) {
	a, err := cube.Build(codedDataset(t, testDataset(t)))
	if err != nil {
		t.Fatal(err)
	}
	other := data.New("o", []string{"x"}, []string{"m"}, []data.Hierarchy{{Name: "h", Attrs: []string{"x"}}})
	other.AppendRowVals([]string{"v"}, []float64{1})
	b, err := cube.Build(codedDataset(t, other))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched schemas succeeded")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	coded := codedDataset(t, testDataset(t))
	c, err := cube.Build(coded)
	if err != nil {
		t.Fatal(err)
	}
	payload := c.AppendBinary(nil)
	back, err := cube.Decode(payload, coded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Fatal("decoded cube differs from original")
	}
	// Truncations of the payload fail cleanly at every length.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := cube.Decode(payload[:cut], coded); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestBuildDeclines(t *testing.T) {
	// A lattice wider than maxLevels: 13 single-attribute hierarchies give
	// 2^13 > 4096 groupings.
	var dims []string
	var hiers []data.Hierarchy
	for i := 0; i < 13; i++ {
		name := "h" + string(rune('a'+i))
		dims = append(dims, name)
		hiers = append(hiers, data.Hierarchy{Name: name, Attrs: []string{name}})
	}
	ds := data.New("wide", dims, []string{"m"}, hiers)
	row := make([]string, len(dims))
	for i := range row {
		row[i] = "v"
	}
	ds.AppendRowVals(row, []float64{1})
	if _, err := cube.Build(codedDataset(t, ds)); err == nil {
		t.Fatal("wide lattice built")
	} else if !strings.Contains(err.Error(), "not cubable") {
		t.Fatalf("err = %v, want ErrNotCubable", err)
	}
	// A dataset without dictionary codes.
	plain := testDataset(t)
	if _, err := cube.Build(plain); err == nil {
		t.Fatal("uncoded dataset built")
	}
}

func TestConcurrentQueries(t *testing.T) {
	coded := codedDataset(t, testDataset(t))
	c, err := cube.Build(coded)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.GroupBy([]string{"region", "year"}, "severity")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, ok := c.GroupBy([]string{"region", "year"}, "severity")
				if !ok || !reflect.DeepEqual(got, want) {
					t.Error("concurrent GroupBy diverged")
					return
				}
				if _, ok := c.HierarchyPaths(data.Hierarchy{Name: "time", Attrs: []string{"year"}}); !ok {
					t.Error("concurrent HierarchyPaths declined")
					return
				}
			}
		}()
	}
	wg.Wait()
}
