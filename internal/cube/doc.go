// Package cube materializes the hierarchy-rollup lattice of a dataset: one
// precomputed aggregate table per combination of per-hierarchy drill depths,
// so that every group-by the Recommend loop issues over hierarchy prefixes is
// answered from precomputed cells in O(groups) instead of rescanning rows.
//
// # The lattice
//
// A dataset with hierarchies H_1..H_k of depths D_1..D_k has one lattice
// level per depth vector (d_1..d_k), d_i ∈ 0..D_i — the classic data-cube
// lattice restricted to hierarchy prefixes, which is exactly the space of
// groupings core.Session can reach by drilling. Each level stores its groups
// as cells keyed by a mixed-radix composite of the attributes' dictionary
// codes (the same key construction as agg.GroupBy's coded fast path), with
// the distributive triple (count, sum, sum of squares) per measure. The
// whole lattice is built in a single pass over the rows; within each cell
// the accumulation visits rows in row order, which makes every level's
// statistics bit-identical to the row scan it replaces — the property the
// byte-identity guarantees of the serving stack rest on.
//
// # Query paths
//
// Cube.GroupBy answers any grouping whose attributes form per-hierarchy
// prefixes (in any attribute order) straight from a materialized level; it
// implements agg.Materialized, so datasets carrying a cube attachment
// (data.Dataset.SetRollup) accelerate agg.GroupBy transparently and
// bit-identically. Cube.Rollup additionally answers arbitrary groupings over
// hierarchy attributes — prefix or not — by merging the cells of the
// coarsest covering level with Stats.Add instead of recomputing from rows;
// merged sums may differ from a scan in the last floating-point bit because
// merging reassociates the additions, so the transparent agg path never uses
// it. HierarchyPaths enumerates a hierarchy's distinct full-depth paths for
// the factorizer (factor.PathProvider) from the level that drills only that
// hierarchy.
//
// # Maintenance and persistence
//
// Cubes are immutable and safe for concurrent use. Live ingestion maintains
// them without rebuilding: BuildRows computes a delta cube over just the
// appended batch, and Merge folds it into the predecessor version cell by
// cell (Stats.Add), re-keying the predecessor's cells when appended values
// grew the dictionaries. Merged cells absorb the batch's subtotal in one
// addition, so — unlike built cubes — a merged cube's sums can differ from a
// full rescan in the last floating-point bit when the batch carried
// non-integral values (counts stay exact; see Merge). internal/store
// persists cubes as an optional, versioned, checksummed trailing section of
// the .rst format; files without the section load exactly as before.
package cube
