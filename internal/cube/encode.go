package cube

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/data"
)

// Decode rebuilds a cube from its wire payload against the code-backed
// dataset of the snapshot the payload was stored with.
func Decode(payload []byte, ds *data.Dataset) (*Cube, error) {
	c, err := skeleton(ds)
	if err != nil {
		return nil, err
	}
	if err := c.decodeInto(payload); err != nil {
		return nil, err
	}
	return c, nil
}

// The cube wire payload (internal/store wraps it in a tagged, versioned,
// checksummed .rst section). Levels appear in lattice order, so depth
// vectors are implicit; radices and dictionaries come from the enclosing
// snapshot, so a cube payload is only meaningful next to the columns it
// summarizes.
//
//	rows      uvarint  must match the snapshot row count
//	#measures uvarint  must match the snapshot measure count
//	#levels   uvarint  must match the schema's lattice size
//	per level:
//	  #cells  uvarint
//	  keys    uvarint × #cells  first absolute, then strictly positive deltas
//	  counts  uvarint × #cells  cell row counts (always integral)
//	  per measure: #cells × 8 bytes sum, then #cells × 8 bytes sum of squares
//	               (little-endian float64 bits)

// maxSaneCount bounds decoded element counts so a corrupt payload cannot
// trigger a huge allocation before length checks run.
const maxSaneCount = 1 << 31

// AppendBinary serializes the cube payload onto dst and returns it.
func (c *Cube) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.rows))
	dst = binary.AppendUvarint(dst, uint64(len(c.measures)))
	dst = binary.AppendUvarint(dst, uint64(len(c.levels)))
	for _, lv := range c.levels {
		dst = binary.AppendUvarint(dst, uint64(len(lv.keys)))
		prev := uint64(0)
		for ci, k := range lv.keys {
			if ci == 0 {
				dst = binary.AppendUvarint(dst, k)
			} else {
				dst = binary.AppendUvarint(dst, k-prev)
			}
			prev = k
		}
		for _, cnt := range lv.counts {
			dst = binary.AppendUvarint(dst, uint64(cnt))
		}
		for mi := range c.measures {
			for _, v := range lv.sums[mi] {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
			for _, v := range lv.sumsqs[mi] {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
		}
	}
	return dst
}

// decodeInto fills a skeleton cube from a wire payload. It validates
// structure (key order and range, count integrity, row coverage) and fails
// cleanly on truncated or corrupt payloads.
func (c *Cube) decodeInto(payload []byte) error {
	d := &decoder{b: payload}
	if rows := d.uvarint(); d.err == nil && rows != uint64(c.rows) {
		return fmt.Errorf("cube: payload covers %d rows, snapshot has %d", rows, c.rows)
	}
	if nm := d.count(); d.err == nil && nm != len(c.measures) {
		return fmt.Errorf("cube: payload has %d measures, snapshot has %d", nm, len(c.measures))
	}
	if nl := d.count(); d.err == nil && nl != len(c.levels) {
		return fmt.Errorf("cube: payload has %d levels, schema lattice has %d", nl, len(c.levels))
	}
	for _, lv := range c.levels {
		if d.err != nil {
			break
		}
		ncells := d.count()
		lv.keys = make([]uint64, 0, min(ncells, 1<<16))
		prev := uint64(0)
		for ci := 0; ci < ncells && d.err == nil; ci++ {
			v := d.uvarint()
			if ci > 0 {
				if v == 0 {
					return fmt.Errorf("cube: keys not strictly ascending")
				}
				if v > math.MaxUint64-prev {
					return fmt.Errorf("cube: key delta overflows uint64")
				}
				v += prev
			}
			prev = v
			lv.keys = append(lv.keys, v)
		}
		lv.counts = make([]float64, 0, len(lv.keys))
		for ci := 0; ci < ncells && d.err == nil; ci++ {
			lv.counts = append(lv.counts, float64(d.uvarint()))
		}
		for mi := range c.measures {
			lv.sums[mi] = d.floats(ncells)
			lv.sumsqs[mi] = d.floats(ncells)
		}
	}
	if d.err != nil {
		return fmt.Errorf("cube: decoding payload: %w", d.err)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("cube: %d trailing bytes after payload", len(d.b)-d.off)
	}
	return c.validate()
}

// decoder reads the primitive payload types, latching the first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) count() int {
	v := d.uvarint()
	if v > maxSaneCount {
		d.fail("implausible element count %d", v)
		return 0
	}
	return int(v)
}

func (d *decoder) floats(n int) []float64 {
	if d.err != nil {
		return nil
	}
	if d.off+8*n > len(d.b) {
		d.fail("truncated: need %d bytes at offset %d, have %d", 8*n, d.off, len(d.b)-d.off)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off+8*i:]))
	}
	d.off += 8 * n
	return out
}
