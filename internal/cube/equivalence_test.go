package cube_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/store"
)

// quickstartDataset rebuilds the examples/quickstart survey (same generator,
// same seed as the example program and the store round-trip tests).
func quickstartDataset() *data.Dataset {
	rng := rand.New(rand.NewSource(7))
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	villages := map[string][]string{
		"Ofla": {"Adishim", "Darube", "Dinka", "Fala", "Zata"},
		"Raya": {"Kukufto", "Mehoni", "Wajirat", "Chercher", "Bala"},
	}
	for _, year := range []string{"1984", "1985", "1986", "1987", "1988"} {
		for _, district := range []string{"Ofla", "Raya"} {
			for _, v := range villages[district] {
				base := 6.0
				if year == "1986" {
					base = 8
				}
				for i := 0; i < 6; i++ {
					sev := base + rng.NormFloat64()
					if v == "Zata" && year == "1986" {
						sev -= 5
					}
					ds.AppendRowVals([]string{district, v, year}, []float64{sev})
				}
			}
		}
	}
	return ds
}

// TestCubeRecommendationFidelity asserts, for each dataset the examples/
// programs run on, that an engine over the snapshot with a materialized cube
// attached and one over the same snapshot without a cube produce
// byte-identical Recommendation JSON — the cube accelerates every
// hierarchy-prefix group-by and the factorizer-source scan on the Recommend
// hot path without perturbing a single bit of output. Same harness as the
// store round-trip fidelity sweep.
func TestCubeRecommendationFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("cube fidelity sweep is not short")
	}
	cases := []struct {
		name      string
		ds        *data.Dataset
		groupBy   []string
		complaint core.Complaint
	}{
		{
			name:      "quickstart",
			ds:        quickstartDataset(),
			groupBy:   []string{"district", "year"},
			complaint: core.Complaint{Agg: agg.Std, Measure: "severity", Tuple: data.Predicate{"district": "Ofla", "year": "1986"}, Direction: core.TooHigh},
		},
		{
			name:      "drought",
			ds:        datasets.GenerateFIST(11).DS,
			groupBy:   []string{"region", "year"},
			complaint: core.Complaint{Agg: agg.Mean, Measure: "severity", Tuple: data.Predicate{"region": "Tigray", "year": "y2010"}, Direction: core.TooLow},
		},
		{
			name:      "covid",
			ds:        datasets.GenerateCovidUS(3),
			groupBy:   []string{"day"},
			complaint: core.Complaint{Agg: agg.Sum, Measure: "confirmed", Tuple: data.Predicate{"day": "d070"}, Direction: core.TooLow},
		},
		{
			name:      "vote",
			ds:        datasets.GenerateVote(9).DS,
			groupBy:   []string{"state"},
			complaint: core.Complaint{Agg: agg.Mean, Measure: "pct2020", Tuple: data.Predicate{"state": "Georgia"}, Direction: core.TooLow},
		},
		{
			name:      "absentee",
			ds:        datasets.GenerateAbsentee(5, 3000),
			groupBy:   nil,
			complaint: core.Complaint{Agg: agg.Count, Measure: "one", Tuple: data.Predicate{}, Direction: core.TooHigh},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var recs [][]byte
			for _, withCube := range []bool{false, true} {
				snap := store.FromDataset(tc.ds)
				if withCube {
					if err := snap.BuildCube(); err != nil {
						t.Fatal(err)
					}
					if snap.Cube() == nil {
						t.Fatal("cube not materialized: the comparison would be vacuous")
					}
				}
				ds, err := snap.Dataset()
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := agg.MaterializedOf(ds); ok != withCube {
					t.Fatalf("rollup attachment = %v, want %v", ok, withCube)
				}
				eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				sess, err := eng.NewSession(tc.groupBy)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := sess.Recommend(tc.complaint)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(rec)
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, b)
			}
			if !bytes.Equal(recs[0], recs[1]) {
				t.Errorf("cube-enabled and cube-disabled recommendations differ:\nscan: %.400s\ncube: %.400s", recs[0], recs[1])
			}
		})
	}
}

// TestCubeDrilledRecommendationFidelity drills the quickstart session along
// the engine's own best recommendation and re-complains at the deeper state,
// exercising the cube across several lattice levels (and the empty-group
// discovery path) with byte-identity asserted at every step.
func TestCubeDrilledRecommendationFidelity(t *testing.T) {
	base := quickstartDataset()
	complaint := core.Complaint{Agg: agg.Std, Measure: "severity", Tuple: data.Predicate{"district": "Ofla", "year": "1986"}, Direction: core.TooHigh}

	run := func(withCube bool) [][]byte {
		snap := store.FromDataset(base)
		if withCube {
			if err := snap.BuildCube(); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := snap.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Start with geo undrilled so the session can accept the first
		// recommendation (year's hierarchy is already at full depth).
		sess, err := eng.NewSession([]string{"year"})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for step := 0; step < 2; step++ {
			rec, err := sess.Recommend(complaint)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
			if step == 0 {
				if err := sess.Drill(rec.Best.Hierarchy); err != nil {
					t.Fatal(err)
				}
			}
		}
		return out
	}

	scan, cubed := run(false), run(true)
	for i := range scan {
		if !bytes.Equal(scan[i], cubed[i]) {
			t.Errorf("step %d: cube-enabled recommendation differs from scan:\nscan: %.400s\ncube: %.400s", i, scan[i], cubed[i])
		}
	}
}
