package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// ReadCSV loads a dataset from CSV. Columns named in measureNames are parsed
// as float64 measures; all other columns become dimensions. The header row is
// required. hierarchies may be nil and attached later.
//
// Rows stream through a per-column dictionary encoder: each dimension keeps
// one interned copy of every distinct value plus a uint32 code per row, so
// resident memory is bounded by the size of the encoded output (what a .rst
// snapshot of the dataset would hold), not by the raw input text. The loaded
// dataset carries its dictionary encoding (see DimCodes), giving CSV loads
// the same coded group-by/factorization fast paths as snapshot loads.
// Dictionaries are in first-appearance order, which store.FromDataset
// reuses, so CSV → snapshot conversion is deterministic.
func ReadCSV(r io.Reader, name string, measureNames []string, hierarchies []Hierarchy) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	header = append([]string(nil), header...)

	// Reject duplicate header names: columns land in name-keyed maps, so a
	// later duplicate would silently clobber the earlier column's values.
	seen := make(map[string]bool, len(header))
	for _, c := range header {
		if seen[c] {
			return nil, fmt.Errorf("data: duplicate column %q in CSV header", c)
		}
		seen[c] = true
	}

	isMeasure := make(map[string]bool, len(measureNames))
	for _, m := range measureNames {
		isMeasure[m] = true
	}
	var dimNames, msNames []string
	for _, c := range header {
		if isMeasure[c] {
			msNames = append(msNames, c)
		} else {
			dimNames = append(dimNames, c)
		}
	}
	for _, m := range measureNames {
		found := false
		for _, c := range header {
			if c == m {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("data: measure column %q not in CSV header", m)
		}
	}

	// Per-dimension streaming dictionary encoders and per-measure value
	// slices. Dimension values are interned: one string allocation per
	// distinct value, one uint32 per row — the csv.Reader's reused record
	// buffer never escapes into the dataset.
	type dimEnc struct {
		dict  []string
		index map[string]uint32
		codes []uint32
	}
	dimCols := make([]*dimEnc, len(dimNames))
	for i := range dimCols {
		dimCols[i] = &dimEnc{index: make(map[string]uint32)}
	}
	msCols := make([][]float64, len(msNames))

	// Column order in the record: map header position → encoder slot.
	dimSlot := make([]int, len(header))
	msSlot := make([]int, len(header))
	di, mi := 0, 0
	for col, c := range header {
		if isMeasure[c] {
			dimSlot[col], msSlot[col] = -1, mi
			mi++
		} else {
			dimSlot[col], msSlot[col] = di, -1
			di++
		}
	}

	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV line %d: %w", line+1, err)
		}
		line++
		for col, c := range header {
			if slot := msSlot[col]; slot >= 0 {
				v, err := strconv.ParseFloat(rec[col], 64)
				if err != nil {
					return nil, fmt.Errorf("data: line %d column %q: %w", line, c, err)
				}
				// ParseFloat accepts "NaN" and "±Inf", which would silently
				// poison every downstream Sum/SumSq and model fit.
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("data: line %d column %q: non-finite measure value %q", line, c, rec[col])
				}
				msCols[slot] = append(msCols[slot], v)
				continue
			}
			e := dimCols[dimSlot[col]]
			code, ok := e.index[rec[col]]
			if !ok {
				// rec aliases the reader's reused buffer; clone the value
				// before it is retained in the dictionary.
				v := string(append([]byte(nil), rec[col]...))
				code = uint32(len(e.dict))
				e.dict = append(e.dict, v)
				e.index[v] = code
			}
			e.codes = append(e.codes, code)
		}
	}

	d := New(name, dimNames, msNames, hierarchies)
	for i, c := range dimNames {
		if err := d.SetEncodedDim(c, dimCols[i].dict, dimCols[i].codes); err != nil {
			return nil, err
		}
	}
	for i, c := range msNames {
		if err := d.SetMeasure(c, msCols[i]); err != nil {
			return nil, err
		}
	}
	// Validate hierarchy metadata at load time so hierarchies referencing
	// columns absent from the CSV fail here, with the file context, instead
	// of surfacing later (or never, for callers that skip engine
	// construction). Auxiliary tables load with no hierarchies and skip this.
	if len(hierarchies) > 0 {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("data: CSV dataset %q: %w", name, err)
		}
	}
	return d, nil
}

// ReadCSVFile loads a dataset from a CSV file on disk.
func ReadCSVFile(path, name string, measureNames []string, hierarchies []Hierarchy) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, measureNames, hierarchies)
}

// WriteCSV serializes the dataset: dimensions first, then measures, in
// declaration order.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(d.DimNames(), d.MeasureNames()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rc := d.Rows(d.dimNames, d.measureNames)
	rec := make([]string, len(header))
	for rc.Next() {
		i := 0
		for di := range d.dimNames {
			rec[i] = rc.Value(di)
			i++
		}
		for mi := range d.measureNames {
			rec[i] = strconv.FormatFloat(rc.Measure(mi), 'g', -1, 64)
			i++
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
