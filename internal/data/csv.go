package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// ReadCSV loads a dataset from CSV. Columns named in measureNames are parsed
// as float64 measures; all other columns become dimensions. The header row is
// required. hierarchies may be nil and attached later.
func ReadCSV(r io.Reader, name string, measureNames []string, hierarchies []Hierarchy) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	header = append([]string(nil), header...)

	// Reject duplicate header names: columns land in name-keyed maps, so a
	// later duplicate would silently clobber the earlier column's values.
	seen := make(map[string]bool, len(header))
	for _, c := range header {
		if seen[c] {
			return nil, fmt.Errorf("data: duplicate column %q in CSV header", c)
		}
		seen[c] = true
	}

	isMeasure := make(map[string]bool, len(measureNames))
	for _, m := range measureNames {
		isMeasure[m] = true
	}
	var dimNames, msNames []string
	for _, c := range header {
		if isMeasure[c] {
			msNames = append(msNames, c)
		} else {
			dimNames = append(dimNames, c)
		}
	}
	for _, m := range measureNames {
		found := false
		for _, c := range header {
			if c == m {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("data: measure column %q not in CSV header", m)
		}
	}

	d := New(name, dimNames, msNames, hierarchies)
	dimVals := make([]string, len(dimNames))
	msVals := make([]float64, len(msNames))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV line %d: %w", line+1, err)
		}
		line++
		di, mi := 0, 0
		for col, c := range header {
			if isMeasure[c] {
				v, err := strconv.ParseFloat(rec[col], 64)
				if err != nil {
					return nil, fmt.Errorf("data: line %d column %q: %w", line, c, err)
				}
				// ParseFloat accepts "NaN" and "±Inf", which would silently
				// poison every downstream Sum/SumSq and model fit.
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("data: line %d column %q: non-finite measure value %q", line, c, rec[col])
				}
				msVals[mi] = v
				mi++
			} else {
				dimVals[di] = rec[col]
				di++
			}
		}
		d.AppendRowVals(dimVals, msVals)
	}
	// Validate hierarchy metadata at load time so hierarchies referencing
	// columns absent from the CSV fail here, with the file context, instead
	// of surfacing later (or never, for callers that skip engine
	// construction). Auxiliary tables load with no hierarchies and skip this.
	if len(hierarchies) > 0 {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("data: CSV dataset %q: %w", name, err)
		}
	}
	return d, nil
}

// ReadCSVFile loads a dataset from a CSV file on disk.
func ReadCSVFile(path, name string, measureNames []string, hierarchies []Hierarchy) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, measureNames, hierarchies)
}

// WriteCSV serializes the dataset: dimensions first, then measures, in
// declaration order.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(d.DimNames(), d.MeasureNames()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for row := 0; row < d.n; row++ {
		i := 0
		for _, c := range d.dimNames {
			rec[i] = d.dims[c][row]
			i++
		}
		for _, c := range d.measureNames {
			rec[i] = strconv.FormatFloat(d.measures[c][row], 'g', -1, 64)
			i++
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
