package data

import "fmt"

// DimCursor is the column-provider seam for dimension columns: a read-only,
// random-access view that callers iterate instead of indexing a raw
// []string. The in-memory slice columns are one provider; internal/store's
// mmap-backed lazily-decoded columns are another. Implementations must be
// safe for concurrent readers.
type DimCursor interface {
	// Len returns the number of rows.
	Len() int
	// Value returns the string value at row.
	Value(row int) string
	// Dict returns the dictionary of distinct values when the column is
	// dictionary-coded, or nil. The slice is shared; callers must not
	// modify it.
	Dict() []string
	// Code returns the dictionary code at row. Valid only when Dict
	// returns a non-nil dictionary.
	Code(row int) uint32
}

// MeasureCursor is the column-provider seam for measure columns.
// Implementations must be safe for concurrent readers.
type MeasureCursor interface {
	// Len returns the number of rows.
	Len() int
	// At returns the value at row.
	At(row int) float64
}

// stringDimCursor adapts a materialized string column (possibly nil, for an
// empty dataset) to the DimCursor seam.
type stringDimCursor []string

func (c stringDimCursor) Len() int             { return len(c) }
func (c stringDimCursor) Value(row int) string { return c[row] }
func (c stringDimCursor) Dict() []string       { return nil }
func (c stringDimCursor) Code(row int) uint32 {
	panic("data: Code on an uncoded dimension column")
}

// codedDimCursor adapts an in-memory dictionary encoding to the DimCursor
// seam.
type codedDimCursor struct {
	dict  []string
	codes []uint32
}

func (c *codedDimCursor) Len() int             { return len(c.codes) }
func (c *codedDimCursor) Value(row int) string { return c.dict[c.codes[row]] }
func (c *codedDimCursor) Dict() []string       { return c.dict }
func (c *codedDimCursor) Code(row int) uint32  { return c.codes[row] }

// sliceMeasureCursor adapts a materialized float64 column to the
// MeasureCursor seam.
type sliceMeasureCursor []float64

func (c sliceMeasureCursor) Len() int           { return len(c) }
func (c sliceMeasureCursor) At(row int) float64 { return c[row] }

// DimCursor returns a cursor over the dimension column by name. Slice-backed
// columns (materialized strings, or a dictionary encoding installed by
// SetEncodedDim) are wrapped directly; columns installed by SetDimCursor are
// returned as-is.
func (d *Dataset) DimCursor(name string) DimCursor {
	if dc, ok := d.codes[name]; ok {
		return &codedDimCursor{dict: dc.dict, codes: dc.codes}
	}
	col, ok := d.dims[name]
	if !ok {
		panic(fmt.Sprintf("data: unknown dimension %q in dataset %q", name, d.Name))
	}
	if col == nil {
		if c, ok := d.virt[name]; ok {
			return c
		}
	}
	return stringDimCursor(col)
}

// MeasureCursor returns a cursor over the measure column by name.
func (d *Dataset) MeasureCursor(name string) MeasureCursor {
	col, ok := d.measures[name]
	if !ok {
		panic(fmt.Sprintf("data: unknown measure %q in dataset %q", name, d.Name))
	}
	if col == nil {
		if c, ok := d.vms[name]; ok {
			return c
		}
	}
	return sliceMeasureCursor(col)
}

// SetDimCursor installs a virtual dimension column backed by the given
// cursor (e.g. a lazily-decoded mmap-backed column from internal/store).
// The first column setter fixes the row count; later ones must match it.
// Datasets with virtual columns reject AppendRow/AppendRowVals.
func (d *Dataset) SetDimCursor(name string, c DimCursor) error {
	if _, ok := d.dims[name]; !ok {
		return fmt.Errorf("data: unknown dimension %q in dataset %q", name, d.Name)
	}
	if err := d.setColumnLen(name, c.Len()); err != nil {
		return err
	}
	if d.virt == nil {
		d.virt = make(map[string]DimCursor, len(d.dimNames))
	}
	d.virt[name] = c
	return nil
}

// SetMeasureCursor installs a virtual measure column backed by the given
// cursor. See SetDimCursor.
func (d *Dataset) SetMeasureCursor(name string, c MeasureCursor) error {
	if _, ok := d.measures[name]; !ok {
		return fmt.Errorf("data: unknown measure %q in dataset %q", name, d.Name)
	}
	if err := d.setColumnLen(name, c.Len()); err != nil {
		return err
	}
	if d.vms == nil {
		d.vms = make(map[string]MeasureCursor, len(d.measureNames))
	}
	d.vms[name] = c
	return nil
}

// DimDict returns the dictionary of a dimension column when one is available
// — either from an installed slice encoding (SetEncodedDim) or from a coded
// virtual cursor (SetDimCursor) — without materializing per-row codes. The
// slice is shared; callers must not modify it.
func (d *Dataset) DimDict(name string) ([]string, bool) {
	if dc, ok := d.codes[name]; ok {
		return dc.dict, true
	}
	if c, ok := d.virt[name]; ok {
		if dict := c.Dict(); dict != nil {
			return dict, true
		}
	}
	return nil, false
}

// Virtual reports whether any column of the dataset is cursor-backed (i.e.
// installed by SetDimCursor/SetMeasureCursor rather than materialized in
// heap slices). Virtual datasets are strictly read-only: row appends panic.
func (d *Dataset) Virtual() bool { return len(d.virt) > 0 || len(d.vms) > 0 }

// dimValue returns one dimension value without materializing the column.
func (d *Dataset) dimValue(name string, row int) string {
	if dc, ok := d.codes[name]; ok {
		return dc.dict[dc.codes[row]]
	}
	col, ok := d.dims[name]
	if !ok {
		panic(fmt.Sprintf("data: unknown dimension %q in dataset %q", name, d.Name))
	}
	if col == nil {
		if c, ok := d.virt[name]; ok {
			return c.Value(row)
		}
	}
	return col[row]
}

// RowCursor streams rows over a fixed set of dimension and measure columns:
// a single forward pass with no intermediate row materialization. Obtain one
// with Dataset.Rows, then:
//
//	rc := ds.Rows([]string{"State", "County"}, []string{"Rate"})
//	for rc.Next() {
//		_ = rc.Value(0)   // State at the current row
//		_ = rc.Measure(0) // Rate at the current row
//	}
type RowCursor struct {
	dims []DimCursor
	ms   []MeasureCursor
	row  int
	n    int
}

// Rows returns a streaming cursor over the named dimension and measure
// columns, in the given order. Either list may be nil.
func (d *Dataset) Rows(dims, measures []string) *RowCursor {
	rc := &RowCursor{
		dims: make([]DimCursor, len(dims)),
		ms:   make([]MeasureCursor, len(measures)),
		row:  -1,
		n:    d.n,
	}
	for i, name := range dims {
		rc.dims[i] = d.DimCursor(name)
	}
	for i, name := range measures {
		rc.ms[i] = d.MeasureCursor(name)
	}
	return rc
}

// Next advances to the next row, returning false when exhausted.
func (rc *RowCursor) Next() bool {
	rc.row++
	return rc.row < rc.n
}

// Row returns the current row index.
func (rc *RowCursor) Row() int { return rc.row }

// Value returns the i-th dimension column's value at the current row.
func (rc *RowCursor) Value(i int) string { return rc.dims[i].Value(rc.row) }

// Code returns the i-th dimension column's dictionary code at the current
// row. Valid only when that column's cursor has a dictionary.
func (rc *RowCursor) Code(i int) uint32 { return rc.dims[i].Code(rc.row) }

// Dict returns the i-th dimension column's dictionary, or nil.
func (rc *RowCursor) Dict(i int) []string { return rc.dims[i].Dict() }

// Measure returns the j-th measure column's value at the current row.
func (rc *RowCursor) Measure(j int) float64 { return rc.ms[j].At(rc.row) }
