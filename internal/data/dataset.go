// Package data provides the relational substrate Reptile runs on: columnar
// in-memory datasets with categorical dimension attributes and numeric
// measures, hierarchy (dimension) metadata with functional-dependency
// validation, filtering with provenance, and CSV I/O.
package data

import (
	"fmt"
	"sort"
	"strings"
)

// Hierarchy is one dimension of the dataset: an ordered list of attributes
// from least specific to most specific (e.g. [Region, District, Village]).
// Every more specific attribute functionally determines all less specific
// ones (Village → District → Region).
type Hierarchy struct {
	Name  string
	Attrs []string
}

// Contains reports whether the hierarchy includes attribute a.
func (h Hierarchy) Contains(a string) bool {
	for _, x := range h.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Level returns the 0-based depth of attribute a, or -1 if absent.
func (h Hierarchy) Level(a string) int {
	for i, x := range h.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// Dataset is an immutable-by-convention columnar table. Dimension columns
// hold categorical string values; measure columns hold float64 values. All
// columns have identical length.
//
// A dimension column may additionally carry a dictionary encoding (the
// distinct values plus one uint32 code per row), installed by bulk loaders
// such as internal/store via SetEncodedDim. Consumers that can work over
// codes (agg.GroupBy, factor.SourceFromDataset, the FD validator) discover
// it through DimCodes and skip per-row string hashing; everything else keeps
// reading the materialized string column.
type Dataset struct {
	Name        string
	Hierarchies []Hierarchy

	dimNames     []string
	measureNames []string
	dims         map[string][]string
	measures     map[string][]float64
	codes        map[string]*dimCode
	// virt and vms hold cursor-backed virtual columns (SetDimCursor /
	// SetMeasureCursor) — e.g. mmap-backed lazily-decoded snapshot columns.
	// A column is either slice-backed or virtual, never both.
	virt map[string]DimCursor
	vms  map[string]MeasureCursor
	n    int
	// nFixed marks that a bulk column setter has pinned the row count, so a
	// zero-length first column still constrains every later one.
	nFixed bool
	// rollup is an opaque acceleration attachment (e.g. internal/cube's
	// materialized aggregate lattice) installed by bulk loaders. Consumers
	// discover capabilities by type-asserting it against their own interfaces
	// (agg.Materialized, factor.PathProvider); the data package never looks
	// inside. Row-mutating operations drop it.
	rollup any
}

// dimCode is one dimension's dictionary encoding: codes index into dict.
type dimCode struct {
	dict  []string
	codes []uint32
}

// New creates an empty dataset with the given dimension and measure columns.
func New(name string, dimNames, measureNames []string, hierarchies []Hierarchy) *Dataset {
	d := &Dataset{
		Name:         name,
		Hierarchies:  hierarchies,
		dimNames:     append([]string(nil), dimNames...),
		measureNames: append([]string(nil), measureNames...),
		dims:         make(map[string][]string, len(dimNames)),
		measures:     make(map[string][]float64, len(measureNames)),
	}
	for _, c := range dimNames {
		d.dims[c] = nil
	}
	for _, c := range measureNames {
		d.measures[c] = nil
	}
	return d
}

// NumRows returns the number of rows.
func (d *Dataset) NumRows() int { return d.n }

// DimNames returns the dimension column names in declaration order.
func (d *Dataset) DimNames() []string { return append([]string(nil), d.dimNames...) }

// MeasureNames returns the measure column names in declaration order.
func (d *Dataset) MeasureNames() []string { return append([]string(nil), d.measureNames...) }

// HasDim reports whether the dataset has dimension column name.
func (d *Dataset) HasDim(name string) bool { _, ok := d.dims[name]; return ok }

// HasMeasure reports whether the dataset has measure column name.
func (d *Dataset) HasMeasure(name string) bool { _, ok := d.measures[name]; return ok }

// Dim returns the dimension column by name. The returned slice is shared;
// callers must not modify it.
//
// For a cursor-backed virtual column this is a compatibility path: it
// decodes a fresh slice on every call (no memoization — caching would
// require locking every column lookup against concurrent readers). Hot
// paths should use DimCursor instead.
func (d *Dataset) Dim(name string) []string {
	col, ok := d.dims[name]
	if !ok {
		panic(fmt.Sprintf("data: unknown dimension %q in dataset %q", name, d.Name))
	}
	if col == nil {
		if c, ok := d.virt[name]; ok {
			out := make([]string, c.Len())
			if dict := c.Dict(); dict != nil {
				for i := range out {
					out[i] = dict[c.Code(i)]
				}
			} else {
				for i := range out {
					out[i] = c.Value(i)
				}
			}
			return out
		}
	}
	return col
}

// Measure returns the measure column by name. The returned slice is shared;
// callers must not modify it. For cursor-backed virtual columns it decodes a
// fresh slice on every call; hot paths should use MeasureCursor instead.
func (d *Dataset) Measure(name string) []float64 {
	col, ok := d.measures[name]
	if !ok {
		panic(fmt.Sprintf("data: unknown measure %q in dataset %q", name, d.Name))
	}
	if col == nil {
		if c, ok := d.vms[name]; ok {
			out := make([]float64, c.Len())
			for i := range out {
				out[i] = c.At(i)
			}
			return out
		}
	}
	return col
}

// DimCodes returns the dictionary encoding of a dimension column, if one was
// installed: the distinct-value dictionary and one code per row. Both slices
// are shared; callers must not modify them.
func (d *Dataset) DimCodes(name string) (dict []string, codes []uint32, ok bool) {
	dc, ok := d.codes[name]
	if !ok {
		return nil, nil, false
	}
	return dc.dict, dc.codes, true
}

// SetRollup attaches an opaque precomputed-aggregate provider to the dataset.
// The attachment must have been derived from exactly these rows: consumers
// trust it to answer aggregation queries without rescanning. Subset
// operations (Select, Filter, Where) and row appends do not carry it over.
func (d *Dataset) SetRollup(r any) { d.rollup = r }

// Rollup returns the dataset's precomputed-aggregate attachment, or nil.
func (d *Dataset) Rollup() any { return d.rollup }

// SetEncodedDim bulk-loads a dimension column from its dictionary encoding,
// materializing the string column and keeping the codes for consumers that
// can exploit them. The first column setter fixes the row count; later ones
// must match it. Mixing SetEncodedDim/SetMeasure with AppendRow on the same
// dataset is not supported: appending drops every installed encoding.
func (d *Dataset) SetEncodedDim(name string, dict []string, codes []uint32) error {
	if _, ok := d.dims[name]; !ok {
		return fmt.Errorf("data: unknown dimension %q in dataset %q", name, d.Name)
	}
	if err := d.setColumnLen(name, len(codes)); err != nil {
		return err
	}
	col := make([]string, len(codes))
	for i, c := range codes {
		if int(c) >= len(dict) {
			return fmt.Errorf("data: dimension %q row %d: code %d out of range (dictionary size %d)", name, i, c, len(dict))
		}
		col[i] = dict[c]
	}
	d.dims[name] = col
	if d.codes == nil {
		d.codes = make(map[string]*dimCode, len(d.dimNames))
	}
	d.codes[name] = &dimCode{dict: dict, codes: codes}
	return nil
}

// SetMeasure bulk-loads a measure column. The slice is adopted, not copied.
func (d *Dataset) SetMeasure(name string, vals []float64) error {
	if _, ok := d.measures[name]; !ok {
		return fmt.Errorf("data: unknown measure %q in dataset %q", name, d.Name)
	}
	if err := d.setColumnLen(name, len(vals)); err != nil {
		return err
	}
	d.measures[name] = vals
	return nil
}

// setColumnLen fixes the dataset's row count on the first bulk-loaded column
// and rejects later columns of a different length — including after an
// empty first column, which pins the count at zero.
func (d *Dataset) setColumnLen(name string, n int) error {
	if !d.nFixed && d.n == 0 {
		d.n = n
		d.nFixed = true
		return nil
	}
	if n != d.n {
		return fmt.Errorf("data: column %q has %d rows, dataset %q has %d", name, n, d.Name, d.n)
	}
	return nil
}

// AppendRow adds one row. dims and measures are keyed by column name; every
// declared column must be present.
func (d *Dataset) AppendRow(dims map[string]string, measures map[string]float64) {
	if d.Virtual() {
		panic(fmt.Sprintf("data: AppendRow on cursor-backed (mapped) dataset %q; re-open it eagerly to mutate", d.Name))
	}
	d.codes = nil  // appended values may not be in the dictionaries
	d.rollup = nil // precomputed aggregates no longer cover every row
	for _, c := range d.dimNames {
		v, ok := dims[c]
		if !ok {
			panic(fmt.Sprintf("data: AppendRow missing dimension %q", c))
		}
		d.dims[c] = append(d.dims[c], v)
	}
	for _, c := range d.measureNames {
		v, ok := measures[c]
		if !ok {
			panic(fmt.Sprintf("data: AppendRow missing measure %q", c))
		}
		d.measures[c] = append(d.measures[c], v)
	}
	d.n++
}

// AppendRowVals adds one row with dimension and measure values given in
// declaration order. It is the fast path for generators.
func (d *Dataset) AppendRowVals(dimVals []string, measureVals []float64) {
	if len(dimVals) != len(d.dimNames) || len(measureVals) != len(d.measureNames) {
		panic(fmt.Sprintf("data: AppendRowVals arity mismatch: %d/%d dims, %d/%d measures",
			len(dimVals), len(d.dimNames), len(measureVals), len(d.measureNames)))
	}
	if d.Virtual() {
		panic(fmt.Sprintf("data: AppendRowVals on cursor-backed (mapped) dataset %q; re-open it eagerly to mutate", d.Name))
	}
	d.codes = nil  // appended values may not be in the dictionaries
	d.rollup = nil // precomputed aggregates no longer cover every row
	for i, c := range d.dimNames {
		d.dims[c] = append(d.dims[c], dimVals[i])
	}
	for i, c := range d.measureNames {
		d.measures[c] = append(d.measures[c], measureVals[i])
	}
	d.n++
}

// Clone returns a deep copy of the dataset. Cursor-backed virtual columns
// are shared, not copied: cursors are immutable read-only views, so the
// clone observes identical values without re-materializing them.
func (d *Dataset) Clone() *Dataset {
	c := New(d.Name, d.dimNames, d.measureNames, d.Hierarchies)
	for name, col := range d.dims {
		c.dims[name] = append([]string(nil), col...)
	}
	for name, col := range d.measures {
		c.measures[name] = append([]float64(nil), col...)
	}
	if d.codes != nil {
		c.codes = make(map[string]*dimCode, len(d.codes))
		for name, dc := range d.codes {
			c.codes[name] = &dimCode{dict: dc.dict, codes: append([]uint32(nil), dc.codes...)}
		}
	}
	if d.virt != nil {
		c.virt = make(map[string]DimCursor, len(d.virt))
		for name, cur := range d.virt {
			c.virt[name] = cur
		}
	}
	if d.vms != nil {
		c.vms = make(map[string]MeasureCursor, len(d.vms))
		for name, cur := range d.vms {
			c.vms[name] = cur
		}
	}
	c.n = d.n
	c.nFixed = d.nFixed
	return c
}

// Select returns a new dataset containing the rows at the given indices, in
// order. Indices may repeat (used by error injectors to duplicate rows).
// The result is always slice-backed, even when d is cursor-backed: subsets
// (provenance, shard slices) are expected to be small relative to the
// source, so materializing them keeps downstream code simple.
func (d *Dataset) Select(idx []int) *Dataset {
	out := New(d.Name, d.dimNames, d.measureNames, d.Hierarchies)
	for _, name := range d.dimNames {
		cur := d.DimCursor(name)
		col := make([]string, len(idx))
		// Row selection preserves dictionaries: the subset's codes index the
		// same dict (possibly with unused entries), so provenance subsets of
		// coded datasets — slice- or cursor-backed — stay coded.
		if dict := cur.Dict(); dict != nil {
			sel := make([]uint32, len(idx))
			for i, r := range idx {
				sel[i] = cur.Code(r)
				col[i] = dict[sel[i]]
			}
			if out.codes == nil {
				out.codes = make(map[string]*dimCode, len(d.dimNames))
			}
			out.codes[name] = &dimCode{dict: dict, codes: sel}
		} else {
			for i, r := range idx {
				col[i] = cur.Value(r)
			}
		}
		out.dims[name] = col
	}
	for _, name := range d.measureNames {
		cur := d.MeasureCursor(name)
		col := make([]float64, len(idx))
		for i, r := range idx {
			col[i] = cur.At(r)
		}
		out.measures[name] = col
	}
	out.n = len(idx)
	return out
}

// Filter returns the rows satisfying pred as a new dataset. pred receives
// the row index.
func (d *Dataset) Filter(pred func(row int) bool) *Dataset {
	var idx []int
	for i := 0; i < d.n; i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	return d.Select(idx)
}

// Predicate is a conjunction of attribute = value conditions.
type Predicate map[string]string

// Matches reports whether row satisfies every condition of p.
func (d *Dataset) Matches(row int, p Predicate) bool {
	for attr, want := range p {
		if d.dimValue(attr, row) != want {
			return false
		}
	}
	return true
}

// Where returns the provenance of predicate p: the sub-dataset of rows whose
// dimension values match every condition.
func (d *Dataset) Where(p Predicate) *Dataset {
	if len(p) == 0 {
		return d.Clone()
	}
	// Resolve each condition to a cursor once, and to a dictionary code where
	// the column is coded, so the per-row test is an integer compare and the
	// scan streams over cursor-backed columns without materializing them.
	type cond struct {
		cur   DimCursor
		want  string
		code  uint32
		coded bool
	}
	conds := make([]cond, 0, len(p))
	for attr, want := range p {
		c := cond{cur: d.DimCursor(attr), want: want}
		if dict := c.cur.Dict(); dict != nil {
			found := false
			for i, v := range dict {
				if v == want {
					c.code, c.coded, found = uint32(i), true, true
					break
				}
			}
			if !found {
				// Value absent from the dictionary: no row can match.
				return d.Select(nil)
			}
		}
		conds = append(conds, c)
	}
	var idx []int
	for row := 0; row < d.n; row++ {
		ok := true
		for i := range conds {
			c := &conds[i]
			if c.coded {
				if c.cur.Code(row) != c.code {
					ok = false
					break
				}
			} else if c.cur.Value(row) != c.want {
				ok = false
				break
			}
		}
		if ok {
			idx = append(idx, row)
		}
	}
	return d.Select(idx)
}

// Distinct returns the sorted distinct values of a dimension column.
func (d *Dataset) Distinct(attr string) []string {
	cur := d.DimCursor(attr)
	var out []string
	if dict := cur.Dict(); dict != nil {
		seen := make([]bool, len(dict))
		for i, n := 0, cur.Len(); i < n; i++ {
			seen[cur.Code(i)] = true
		}
		out = make([]string, 0, len(dict))
		for c, present := range seen {
			if present {
				out = append(out, dict[c])
			}
		}
	} else {
		seen := make(map[string]struct{})
		for i, n := 0, cur.Len(); i < n; i++ {
			seen[cur.Value(i)] = struct{}{}
		}
		out = make([]string, 0, len(seen))
		for v := range seen {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// HierarchyOf returns the hierarchy containing attribute a, or false.
func (d *Dataset) HierarchyOf(a string) (Hierarchy, bool) {
	for _, h := range d.Hierarchies {
		if h.Contains(a) {
			return h, true
		}
	}
	return Hierarchy{}, false
}

// Validate checks structural invariants: every hierarchy attribute exists as
// a dimension, hierarchies do not share attributes, and within each hierarchy
// every more specific attribute functionally determines its parent (the FD
// A_n → A_m for m < n required by the problem definition).
func (d *Dataset) Validate() error {
	seen := make(map[string]string)
	for _, h := range d.Hierarchies {
		if len(h.Attrs) == 0 {
			return fmt.Errorf("data: hierarchy %q has no attributes", h.Name)
		}
		for _, a := range h.Attrs {
			if !d.HasDim(a) {
				return fmt.Errorf("data: hierarchy %q references unknown attribute %q", h.Name, a)
			}
			if prev, dup := seen[a]; dup {
				return fmt.Errorf("data: attribute %q appears in hierarchies %q and %q", a, prev, h.Name)
			}
			seen[a] = h.Name
		}
		for lvl := 1; lvl < len(h.Attrs); lvl++ {
			child, parent := h.Attrs[lvl], h.Attrs[lvl-1]
			if err := d.checkFD(child, parent); err != nil {
				return fmt.Errorf("data: hierarchy %q: %w", h.Name, err)
			}
		}
	}
	return nil
}

// checkFD verifies the functional dependency child → parent. When both
// columns carry a dictionary (slice-coded or cursor-backed) the check runs
// over small integer arrays instead of a string map, which makes validating
// snapshot loads cheap — one streaming pass, heap bounded by dictionary
// size.
func (d *Dataset) checkFD(child, parent string) error {
	ccur, pcur := d.DimCursor(child), d.DimCursor(parent)
	if cdict, pdict := ccur.Dict(), pcur.Dict(); cdict != nil && pdict != nil {
		const unset = -1
		m := make([]int64, len(cdict))
		for i := range m {
			m[i] = unset
		}
		for i, n := 0, ccur.Len(); i < n; i++ {
			cc := ccur.Code(i)
			pc := int64(pcur.Code(i))
			if prev := m[cc]; prev == unset {
				m[cc] = pc
			} else if prev != pc {
				return fmt.Errorf("FD violation: %s=%q maps to %s=%q and %q",
					child, cdict[cc], parent, pdict[prev], pdict[pc])
			}
		}
		return nil
	}
	m := make(map[string]string)
	for i, n := 0, ccur.Len(); i < n; i++ {
		cv, pv := ccur.Value(i), pcur.Value(i)
		if prev, ok := m[cv]; ok {
			if prev != pv {
				return fmt.Errorf("FD violation: %s=%q maps to %s=%q and %q", child, cv, parent, prev, pv)
			}
		} else {
			m[cv] = pv
		}
	}
	return nil
}

// Key encodes an ordered list of dimension values as a single group key.
// The separator is unlikely to occur in attribute values; EncodeKey and
// DecodeKey round-trip as long as values avoid "\x1f".
const keySep = "\x1f"

// EncodeKey joins dimension values into a group key.
func EncodeKey(vals []string) string { return strings.Join(vals, keySep) }

// DecodeKey splits a group key back into its dimension values.
func DecodeKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, keySep)
}

// RowKey returns the group key of row over the given attributes.
func (d *Dataset) RowKey(row int, attrs []string) string {
	vals := make([]string, len(attrs))
	for i, a := range attrs {
		vals[i] = d.dimValue(a, row)
	}
	return EncodeKey(vals)
}
