package data

import (
	"bytes"
	"strings"
	"testing"
)

// demo builds the running-example dataset from the paper: a geography
// hierarchy (district → village) and a time hierarchy (year), with a
// severity measure.
func demo() *Dataset {
	h := []Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	d := New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	rows := []struct {
		dist, vil, yr string
		sev           float64
	}{
		{"Ofla", "Adishim", "1986", 8},
		{"Ofla", "Adishim", "1986", 9},
		{"Ofla", "Darube", "1986", 2},
		{"Ofla", "Zata", "1986", 1},
		{"Ofla", "Adishim", "1987", 7},
		{"Raya", "Kukufto", "1986", 6},
	}
	for _, r := range rows {
		d.AppendRowVals([]string{r.dist, r.vil, r.yr}, []float64{r.sev})
	}
	return d
}

func TestAppendAndAccess(t *testing.T) {
	d := demo()
	if d.NumRows() != 6 {
		t.Fatalf("NumRows = %d, want 6", d.NumRows())
	}
	if got := d.Dim("village")[2]; got != "Darube" {
		t.Errorf("village[2] = %q", got)
	}
	if got := d.Measure("severity")[3]; got != 1 {
		t.Errorf("severity[3] = %v", got)
	}
	if !d.HasDim("district") || d.HasDim("bogus") {
		t.Error("HasDim wrong")
	}
	if !d.HasMeasure("severity") || d.HasMeasure("bogus") {
		t.Error("HasMeasure wrong")
	}
}

func TestAppendRowMap(t *testing.T) {
	d := New("x", []string{"a"}, []string{"m"}, nil)
	d.AppendRow(map[string]string{"a": "v"}, map[string]float64{"m": 1.5})
	if d.NumRows() != 1 || d.Dim("a")[0] != "v" || d.Measure("m")[0] != 1.5 {
		t.Error("AppendRow failed")
	}
}

func TestAppendRowMissingColumnPanics(t *testing.T) {
	d := New("x", []string{"a"}, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.AppendRow(map[string]string{}, nil)
}

func TestWhereAndPredicate(t *testing.T) {
	d := demo()
	sub := d.Where(Predicate{"district": "Ofla", "year": "1986"})
	if sub.NumRows() != 4 {
		t.Fatalf("Where rows = %d, want 4", sub.NumRows())
	}
	all := d.Where(nil)
	if all.NumRows() != d.NumRows() {
		t.Errorf("empty predicate should return all rows")
	}
	none := d.Where(Predicate{"district": "Nowhere"})
	if none.NumRows() != 0 {
		t.Errorf("non-matching predicate rows = %d", none.NumRows())
	}
}

func TestSelectWithDuplicates(t *testing.T) {
	d := demo()
	s := d.Select([]int{0, 0, 5})
	if s.NumRows() != 3 {
		t.Fatalf("Select rows = %d", s.NumRows())
	}
	if s.Dim("village")[0] != s.Dim("village")[1] {
		t.Error("duplicated row differs")
	}
	if s.Dim("district")[2] != "Raya" {
		t.Error("wrong row selected")
	}
}

func TestDistinctSorted(t *testing.T) {
	d := demo()
	got := d.Distinct("village")
	want := []string{"Adishim", "Darube", "Kukufto", "Zata"}
	if len(got) != len(want) {
		t.Fatalf("Distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Distinct = %v, want %v", got, want)
		}
	}
}

func TestValidateOK(t *testing.T) {
	if err := demo().Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateFDViolation(t *testing.T) {
	d := demo()
	// The same village under two districts violates village → district.
	d.AppendRowVals([]string{"Raya", "Adishim", "1986"}, []float64{5})
	if err := d.Validate(); err == nil {
		t.Error("expected FD violation error")
	} else if !strings.Contains(err.Error(), "FD violation") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestValidateUnknownAttr(t *testing.T) {
	d := New("x", []string{"a"}, nil, []Hierarchy{{Name: "h", Attrs: []string{"missing"}}})
	if err := d.Validate(); err == nil {
		t.Error("expected unknown-attribute error")
	}
}

func TestValidateSharedAttr(t *testing.T) {
	d := New("x", []string{"a"}, nil, []Hierarchy{
		{Name: "h1", Attrs: []string{"a"}},
		{Name: "h2", Attrs: []string{"a"}},
	})
	if err := d.Validate(); err == nil {
		t.Error("expected shared-attribute error")
	}
}

func TestValidateEmptyHierarchy(t *testing.T) {
	d := New("x", []string{"a"}, nil, []Hierarchy{{Name: "h"}})
	if err := d.Validate(); err == nil {
		t.Error("expected empty-hierarchy error")
	}
}

func TestHierarchyHelpers(t *testing.T) {
	h := Hierarchy{Name: "geo", Attrs: []string{"district", "village"}}
	if !h.Contains("village") || h.Contains("year") {
		t.Error("Contains wrong")
	}
	if h.Level("district") != 0 || h.Level("village") != 1 || h.Level("x") != -1 {
		t.Error("Level wrong")
	}
	d := demo()
	if got, ok := d.HierarchyOf("village"); !ok || got.Name != "geo" {
		t.Error("HierarchyOf wrong")
	}
	if _, ok := d.HierarchyOf("bogus"); ok {
		t.Error("HierarchyOf found bogus attr")
	}
}

func TestKeys(t *testing.T) {
	key := EncodeKey([]string{"a", "b"})
	vals := DecodeKey(key)
	if len(vals) != 2 || vals[0] != "a" || vals[1] != "b" {
		t.Errorf("key round trip = %v", vals)
	}
	if DecodeKey("") != nil {
		t.Error("DecodeKey empty should be nil")
	}
	d := demo()
	if got := d.RowKey(0, []string{"district", "year"}); got != EncodeKey([]string{"Ofla", "1986"}) {
		t.Errorf("RowKey = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := demo()
	c := d.Clone()
	c.AppendRowVals([]string{"X", "Y", "1999"}, []float64{1})
	if d.NumRows() == c.NumRows() {
		t.Error("Clone shares row storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := demo()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "drought", []string{"severity"}, d.Hierarchies)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != d.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), d.NumRows())
	}
	for i := 0; i < d.NumRows(); i++ {
		if back.Dim("village")[i] != d.Dim("village")[i] {
			t.Fatalf("row %d village mismatch", i)
		}
		if back.Measure("severity")[i] != d.Measure("severity")[i] {
			t.Fatalf("row %d severity mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,m\nx,notanumber\n"), "t", []string{"m"}, nil); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\nx,y\n"), "t", []string{"m"}, nil); err == nil {
		t.Error("expected missing-measure error")
	}
	if _, err := ReadCSV(strings.NewReader(""), "t", nil, nil); err == nil {
		t.Error("expected header error")
	}
}

func TestReadCSVRejectsNonFiniteMeasures(t *testing.T) {
	// strconv.ParseFloat accepts these spellings; ReadCSV must not, or they
	// silently poison every downstream Sum/SumSq and model fit.
	for _, bad := range []string{"NaN", "nan", "Inf", "+Inf", "-Inf", "Infinity"} {
		csv := "a,m\nx,1\ny," + bad + "\n"
		_, err := ReadCSV(strings.NewReader(csv), "t", []string{"m"}, nil)
		if err == nil {
			t.Errorf("measure %q: expected non-finite error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("measure %q: error %q does not name line 3", bad, err)
		}
	}
	// Finite values keep loading.
	if _, err := ReadCSV(strings.NewReader("a,m\nx,1e300\n"), "t", []string{"m"}, nil); err != nil {
		t.Errorf("finite measure rejected: %v", err)
	}
}

func TestReadCSVRejectsDuplicateHeader(t *testing.T) {
	// A duplicate column name would silently clobber the earlier column in
	// the name-keyed dims map.
	_, err := ReadCSV(strings.NewReader("a,b,a,m\nx,y,z,1\n"), "t", []string{"m"}, nil)
	if err == nil {
		t.Fatal("expected duplicate-header error")
	}
	if !strings.Contains(err.Error(), `duplicate column "a"`) {
		t.Errorf("error %q does not name the duplicate column", err)
	}
	// Duplicate measures are rejected too.
	if _, err := ReadCSV(strings.NewReader("a,m,m\nx,1,2\n"), "t", []string{"m"}, nil); err == nil {
		t.Error("expected duplicate-measure-header error")
	}
}

func TestReadCSVValidatesHierarchies(t *testing.T) {
	csv := "district,village,year,severity\nOfla,Adishim,1986,8\n"
	// A hierarchy naming a column absent from the CSV fails at load time.
	bad := []Hierarchy{{Name: "geo", Attrs: []string{"district", "hamlet"}}}
	if _, err := ReadCSV(strings.NewReader(csv), "t", []string{"severity"}, bad); err == nil {
		t.Error("expected unknown-attribute error at load time")
	} else if !strings.Contains(err.Error(), "hamlet") {
		t.Errorf("error %q does not name the missing attribute", err)
	}
	// FD violations in the data fail at load time too.
	fdCSV := "district,village,year,severity\nOfla,Zata,1986,8\nRaya,Zata,1986,2\n"
	good := []Hierarchy{{Name: "geo", Attrs: []string{"district", "village"}}, {Name: "time", Attrs: []string{"year"}}}
	if _, err := ReadCSV(strings.NewReader(fdCSV), "t", []string{"severity"}, good); err == nil {
		t.Error("expected FD violation at load time")
	}
	// No hierarchies (auxiliary tables) still load without validation.
	if _, err := ReadCSV(strings.NewReader(csv), "t", []string{"severity"}, nil); err != nil {
		t.Errorf("aux-style load failed: %v", err)
	}
}

func TestSetEncodedDim(t *testing.T) {
	h := []Hierarchy{{Name: "geo", Attrs: []string{"district"}}}
	d := New("t", []string{"district"}, []string{"m"}, h)
	if err := d.SetEncodedDim("district", []string{"Ofla", "Raya"}, []uint32{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetMeasure("m", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	if got := d.Dim("district"); got[0] != "Ofla" || got[1] != "Raya" || got[2] != "Ofla" {
		t.Errorf("materialized column = %v", got)
	}
	dict, codes, ok := d.DimCodes("district")
	if !ok || len(dict) != 2 || len(codes) != 3 {
		t.Errorf("DimCodes = %v %v %v", dict, codes, ok)
	}
	// Errors: unknown column, out-of-range code, length mismatch.
	if err := d.SetEncodedDim("bogus", nil, nil); err == nil {
		t.Error("expected unknown-dimension error")
	}
	if err := d.SetMeasure("bogus", nil); err == nil {
		t.Error("expected unknown-measure error")
	}
	d2 := New("t", []string{"district"}, nil, nil)
	if err := d2.SetEncodedDim("district", []string{"a"}, []uint32{0, 7}); err == nil {
		t.Error("expected out-of-range code error")
	}
	d3 := New("t", []string{"district"}, []string{"m"}, nil)
	if err := d3.SetEncodedDim("district", []string{"a"}, []uint32{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := d3.SetMeasure("m", []float64{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
	// An empty first column pins the row count at zero.
	d4 := New("t", []string{"district"}, []string{"m"}, nil)
	if err := d4.SetEncodedDim("district", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := d4.SetMeasure("m", []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error after empty first column")
	}
	// Appending rows drops the encoding (values may not be in the dict).
	d.AppendRowVals([]string{"Tigray"}, []float64{4})
	if _, _, ok := d.DimCodes("district"); ok {
		t.Error("append kept a stale dictionary encoding")
	}
}

func TestCodesSurviveSelectAndClone(t *testing.T) {
	d := New("t", []string{"district"}, []string{"m"}, nil)
	if err := d.SetEncodedDim("district", []string{"a", "b"}, []uint32{0, 1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetMeasure("m", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	sub := d.Select([]int{1, 2})
	dict, codes, ok := sub.DimCodes("district")
	if !ok || len(codes) != 2 || dict[codes[0]] != "b" || dict[codes[1]] != "b" {
		t.Errorf("Select codes = %v %v %v", dict, codes, ok)
	}
	cl := d.Clone()
	if _, codes, ok := cl.DimCodes("district"); !ok || len(codes) != 4 {
		t.Errorf("Clone lost codes: %v %v", codes, ok)
	}
}

func TestCodedFDCheck(t *testing.T) {
	// Same FD violation as TestValidateFDViolation, but over coded columns.
	h := []Hierarchy{{Name: "geo", Attrs: []string{"district", "village"}}}
	d := New("t", []string{"district", "village"}, nil, h)
	if err := d.SetEncodedDim("district", []string{"Ofla", "Raya"}, []uint32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetEncodedDim("village", []string{"Zata"}, []uint32{0, 0}); err != nil {
		t.Fatal(err)
	}
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "FD violation") {
		t.Fatalf("err = %v, want FD violation", err)
	}
	if !strings.Contains(err.Error(), `"Zata"`) {
		t.Errorf("error %q does not name the violating value", err)
	}
}

func TestParseHierarchySpec(t *testing.T) {
	hs, err := ParseHierarchySpec("geo:region,district,village; time:year")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0].Name != "geo" || len(hs[0].Attrs) != 3 || hs[1].Attrs[0] != "year" {
		t.Errorf("parsed = %+v", hs)
	}
	for _, bad := range []string{"", "noattrs", "geo:", ":a,b"} {
		if _, err := ParseHierarchySpec(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

func TestFilter(t *testing.T) {
	d := demo()
	sub := d.Filter(func(row int) bool { return d.Measure("severity")[row] >= 7 })
	if sub.NumRows() != 3 {
		t.Errorf("Filter rows = %d, want 3", sub.NumRows())
	}
}
