package data

import (
	"strings"
	"testing"
)

// FuzzReadCSV streams arbitrary text through the CSV loader, with and
// without a hierarchy attached. The contract: any input either loads or
// returns an error — the streaming dictionary encoder must never panic,
// whatever the header or field shapes are.
func FuzzReadCSV(f *testing.F) {
	f.Add("district,village,year,severity\nOfla,Adishim,1986,8\nRaya,Kukufto,1986,6\n")
	f.Add("severity\n1\n2\n")
	f.Add("district,severity\nOfla\n")           // short record
	f.Add("district,severity\nOfla,NaN\n")       // non-numeric measure
	f.Add("district,district,severity\na,b,1\n") // duplicate header
	f.Add("\n")
	f.Add("")
	f.Add("district,severity\n\"unterminated")

	hs := []Hierarchy{{Name: "geo", Attrs: []string{"district", "village"}}}
	f.Fuzz(func(t *testing.T, text string) {
		if _, err := ReadCSV(strings.NewReader(text), "fuzz", []string{"severity"}, nil); err != nil {
			_ = err
		}
		if _, err := ReadCSV(strings.NewReader(text), "fuzz", []string{"severity"}, hs); err != nil {
			_ = err
		}
	})
}
