package data

import (
	"fmt"
	"strings"
)

// ParseHierarchySpec parses the compact hierarchy notation shared by the CLI
// and the server's dataset registry: semicolon-separated hierarchies, each
// "name:attr1,attr2,..." from least to most specific, e.g.
// "geo:region,district,village;time:year".
func ParseHierarchySpec(spec string) ([]Hierarchy, error) {
	var out []Hierarchy
	for _, part := range splitNonEmpty(spec, ";") {
		name, attrs, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("data: bad hierarchy %q: want name:attr1,attr2", part)
		}
		h := Hierarchy{Name: strings.TrimSpace(name), Attrs: splitNonEmpty(attrs, ",")}
		if h.Name == "" || len(h.Attrs) == 0 {
			return nil, fmt.Errorf("data: bad hierarchy %q: empty name or attribute list", part)
		}
		out = append(out, h)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("data: no hierarchies in %q", spec)
	}
	return out, nil
}

// splitNonEmpty splits s on sep, trims whitespace, and drops empty pieces.
func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, p := range strings.Split(s, sep) {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
