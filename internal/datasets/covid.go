// Package datasets provides seeded synthetic stand-ins for the paper's
// evaluation datasets (synthetic because the originals are not
// redistributable; generation is seeded so every figure is reproducible):
// the JHU COVID-19 US and global datasets with the 30 resolved data issues
// of Tables 1–2, the FIST Ethiopian drought surveys with the §5.4 user-study
// complaints, the 2016/2020 county vote data of Appendices K and N, and the
// Absentee / COMPAS runtime datasets of §5.1.4.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
)

// CovidDays is the number of days in the generated COVID datasets.
const CovidDays = 120

// dayName renders day index i as a sortable dimension value.
func dayName(i int) string { return fmt.Sprintf("d%03d", i) }

// usStateScale fixes each location's reporting scale deterministically
// (roughly population-proportional). The near-zero territories matter for
// baseline fidelity: on the real data, deletion-based ranking under a
// "too low" complaint gravitates to locations that barely report at all.
var usStateScale = map[string]float64{
	"California": 22, "Texas": 18, "Florida": 14, "NewYork": 13,
	"Pennsylvania": 9, "Illinois": 9, "Ohio": 8.5, "Georgia": 7.5,
	"NorthCarolina": 7, "Michigan": 7, "NewJersey": 6.5, "Virginia": 6,
	"Washington": 5.5, "Arizona": 5.2, "Massachusetts": 5, "Tennessee": 4.8,
	"Indiana": 4.7, "Missouri": 4.3, "Maryland": 4.2, "Wisconsin": 4.1,
	"Colorado": 4, "Minnesota": 3.9, "SouthCarolina": 3.6, "Alabama": 3.5,
	"Louisiana": 3.2, "Kentucky": 3.1, "Oregon": 2.9, "Oklahoma": 2.8,
	"Connecticut": 2.5, "Utah": 2.3, "Iowa": 2.2, "Nevada": 2.2,
	"Arkansas": 2.1, "Mississippi": 2.1, "Kansas": 2, "NewMexico": 1.5,
	"Nebraska": 1.4, "Idaho": 1.3, "WestVirginia": 1.2, "Hawaii": 1,
	"NewHampshire": 1, "Maine": 0.95, "Montana": 0.8, "RhodeIsland": 0.75,
	"Delaware": 0.7, "SouthDakota": 0.65, "NorthDakota": 0.55,
	"Alaska": 0.5, "DistrictOfColumbia": 0.5, "Vermont": 0.45, "Wyoming": 0.4,
	// Territories that barely report.
	"Guam": 0.02, "VirginIslands": 0.015, "NorthernMarianas": 0.01, "AmericanSamoa": 0.005,
}

// usStates lists the locations in deterministic order.
var usStates = sortedKeys(usStateScale)

// covidCountryScale fixes each country's reporting scale per region.
var covidCountryScale = map[string]map[string]float64{
	"Africa": {
		"Egypt": 1.2, "Ethiopia": 0.8, "Kenya": 0.7, "Morocco": 2.4,
		"Nigeria": 1, "SouthAfrica": 6, "Tanzania": 0.02, "Tunisia": 1.1,
	},
	"Americas": {
		"Argentina": 6, "Brazil": 22, "Canada": 3.5, "Chile": 3,
		"Colombia": 6.5, "Mexico": 5, "Peru": 4, "US": 60, "Belize": 0.03,
	},
	"EastAsia": {
		"China": 0.6, "Japan": 2.5, "Mongolia": 0.05, "SouthKorea": 0.9, "Taiwan": 0.02,
	},
	"Europe": {
		"France": 12, "Germany": 11, "Italy": 10, "Netherlands": 4,
		"Poland": 6, "Russia": 14, "Spain": 9, "Sweden": 3, "Turkey": 13,
		"UK": 13, "Ukraine": 5, "SanMarino": 0.01,
	},
	"MiddleEast": {
		"Afghanistan": 0.3, "Iran": 5, "Iraq": 2.5, "Israel": 2.8,
		"Jordan": 2.6, "Kazakhstan": 2.0, "SaudiArabia": 1.5, "UAE": 1.4, "Yemen": 0.01,
	},
	"SouthAsia": {
		"Bangladesh": 2, "India": 40, "Indonesia": 3.5, "Malaysia": 1.3,
		"Pakistan": 2.2, "Philippines": 2.3, "Thailand": 0.4, "Vietnam": 0.02,
	},
}

var covidRegionOrder = []string{"Africa", "Americas", "EastAsia", "Europe", "MiddleEast", "SouthAsia"}

// covidRegions maps each region to its countries (sorted).
var covidRegions = func() map[string][]string {
	out := make(map[string][]string, len(covidCountryScale))
	for r, cs := range covidCountryScale {
		out[r] = sortedKeys(cs)
	}
	return out
}()

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// covidWave is the national epidemic curve: two overlapping waves plus a
// weekly reporting cycle.
func covidWave(day int) float64 {
	t := float64(day)
	w := 600*math.Exp(-(t-35)*(t-35)/(2*18*18)) + 1000*math.Exp(-(t-90)*(t-90)/(2*22*22)) + 120
	weekly := 1 + 0.05*math.Sin(2*math.Pi*t/7)
	return w * weekly
}

// GenerateCovidUS builds the simulated US dataset: one row per (state, day)
// with daily confirmed and death counts.
func GenerateCovidUS(seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	h := []data.Hierarchy{
		{Name: "location", Attrs: []string{"state"}},
		{Name: "time", Attrs: []string{"day"}},
	}
	ds := data.New("covid-us", []string{"state", "day"}, []string{"confirmed", "deaths"}, h)
	for _, s := range usStates {
		for d := 0; d < CovidDays; d++ {
			base := usStateScale[s] * covidWave(d)
			conf := base * (1 + 0.02*rng.NormFloat64())
			deaths := base * 0.018 * (1 + 0.02*rng.NormFloat64())
			ds.AppendRowVals([]string{s, dayName(d)}, []float64{math.Max(0, conf), math.Max(0, deaths)})
		}
	}
	return ds
}

// GenerateCovidGlobal builds the simulated global dataset: one row per
// (region, country, day) with daily confirmed, deaths and recovered counts.
func GenerateCovidGlobal(seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	h := []data.Hierarchy{
		{Name: "location", Attrs: []string{"region", "country"}},
		{Name: "time", Attrs: []string{"day"}},
	}
	ds := data.New("covid-global", []string{"region", "country", "day"},
		[]string{"confirmed", "deaths", "recovered"}, h)
	for _, region := range covidRegionOrder {
		for _, country := range covidRegions[region] {
			sc := covidCountryScale[region][country]
			phase := rng.Float64() * 20
			for d := 0; d < CovidDays; d++ {
				base := sc * covidWave(d+int(phase)-10)
				conf := base * (1 + 0.02*rng.NormFloat64())
				deaths := base * 0.02 * (1 + 0.02*rng.NormFloat64())
				rec := base * 0.9 * (1 + 0.02*rng.NormFloat64())
				ds.AppendRowVals([]string{region, country, dayName(d)},
					[]float64{math.Max(0, conf), math.Max(0, deaths), math.Max(0, rec)})
			}
		}
	}
	return ds
}

// IssueClass is the error taxonomy of the COVID case study (Appendix L).
type IssueClass int

const (
	// MissingReports zeroes (most of) the location's value on the issue day.
	MissingReports IssueClass = iota
	// Backlog moves the prior three days' values onto the issue day.
	Backlog
	// OverReported inflates the issue day's value.
	OverReported
	// DefinitionAltered applies a level shift from the issue day onward.
	DefinitionAltered
	// PrevalentSource scales every day of the location — a prevalent error
	// Reptile cannot localize to the complaint day (expected failure).
	PrevalentSource
	// Typo perturbs the value by a sub-noise amount (expected failure).
	Typo
	// DayShift moves a small fraction of the day's reports to the next day
	// (expected failure at state granularity).
	DayShift
	// WronglyReported replaces the value with a clearly wrong one.
	WronglyReported
	// SubtleError perturbs the value by an amount below the natural
	// variation (expected failure).
	SubtleError
	// Nullified resets cumulative counts, producing a large negative daily
	// value (the one error class deletion-based baselines also catch).
	Nullified
)

// Issue is one reproduced GitHub data issue.
type Issue struct {
	ID       string
	Title    string
	Dataset  string // "us" or "global"
	Region   string // global issues only
	Location string // state (US) or country (global)
	Day      int
	Measure  string
	Class    IssueClass
	// Direction of the complaint at the parent level.
	Direction core.Direction
	// ExpectDetect records the paper's per-issue Reptile outcome
	// (Tables 1–2); prevalent and sub-noise issues are expected failures.
	ExpectDetect bool
}

// DayName returns the issue day's dimension value.
func (i Issue) DayName() string { return dayName(i.Day) }

// USIssues reproduces Table 1 (16 issues, 12 detected by Reptile).
func USIssues() []Issue {
	return []Issue{
		{ID: "3572", Title: "Texas confirmed missing reports", Dataset: "us", Location: "Texas", Day: 70, Measure: "confirmed", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3521", Title: "Arizona death methodology altered", Dataset: "us", Location: "Arizona", Day: 64, Measure: "deaths", Class: DefinitionAltered, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3482", Title: "Washington missing reports", Dataset: "us", Location: "Washington", Day: 58, Measure: "confirmed", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3476", Title: "Utah missing source", Dataset: "us", Location: "Utah", Day: 55, Measure: "confirmed", Class: PrevalentSource, Direction: core.TooLow, ExpectDetect: false},
		{ID: "3468", Title: "New York death missing reports", Dataset: "us", Location: "NewYork", Day: 52, Measure: "deaths", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3466", Title: "Montana missing reports", Dataset: "us", Location: "Montana", Day: 51, Measure: "confirmed", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3456", Title: "North Dakota confirmed backlog", Dataset: "us", Location: "NorthDakota", Day: 48, Measure: "confirmed", Class: Backlog, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3451", Title: "Iowa death missing reports", Dataset: "us", Location: "Iowa", Day: 46, Measure: "deaths", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3449", Title: "Arizona test over reported", Dataset: "us", Location: "Arizona", Day: 45, Measure: "confirmed", Class: OverReported, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3448", Title: "Washington death wrongly reported", Dataset: "us", Location: "Washington", Day: 44, Measure: "deaths", Class: WronglyReported, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3441", Title: "Albany confirmed day shift", Dataset: "us", Location: "NewYork", Day: 42, Measure: "confirmed", Class: DayShift, Direction: core.TooLow, ExpectDetect: false},
		{ID: "3438", Title: "Ohio confirmed backlog", Dataset: "us", Location: "Ohio", Day: 40, Measure: "confirmed", Class: Backlog, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3424", Title: "Massachusetts confirmed backlog", Dataset: "us", Location: "Massachusetts", Day: 38, Measure: "confirmed", Class: SubtleError, Direction: core.TooHigh, ExpectDetect: false},
		{ID: "3416", Title: "Nevada death over reported", Dataset: "us", Location: "Nevada", Day: 36, Measure: "deaths", Class: OverReported, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3414", Title: "Eureka death over reported", Dataset: "us", Location: "Nevada", Day: 34, Measure: "deaths", Class: OverReported, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3402", Title: "Washington confirmed typo", Dataset: "us", Location: "Washington", Day: 32, Measure: "confirmed", Class: Typo, Direction: core.TooHigh, ExpectDetect: false},
	}
}

// GlobalIssues reproduces Table 2 (14 issues, 9 detected by Reptile).
func GlobalIssues() []Issue {
	return []Issue{
		{ID: "3623", Title: "Germany recovered over reported", Dataset: "global", Region: "Europe", Location: "Germany", Day: 80, Measure: "recovered", Class: OverReported, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3618", Title: "Quebec death missing source", Dataset: "global", Region: "Americas", Location: "Canada", Day: 78, Measure: "deaths", Class: PrevalentSource, Direction: core.TooLow, ExpectDetect: false},
		{ID: "3578", Title: "US recovery nullified", Dataset: "global", Region: "Americas", Location: "US", Day: 74, Measure: "recovered", Class: Nullified, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3567", Title: "India confirmed missing reports", Dataset: "global", Region: "SouthAsia", Location: "India", Day: 72, Measure: "confirmed", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3546", Title: "Thailand confirmed missing source", Dataset: "global", Region: "SouthAsia", Location: "Thailand", Day: 68, Measure: "confirmed", Class: PrevalentSource, Direction: core.TooLow, ExpectDetect: false},
		{ID: "3538a", Title: "Mexico confirmed definition altered", Dataset: "global", Region: "Americas", Location: "Mexico", Day: 66, Measure: "confirmed", Class: DefinitionAltered, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3538b", Title: "Mexico confirmed missing reports", Dataset: "global", Region: "Americas", Location: "Mexico", Day: 64, Measure: "confirmed", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3518", Title: "Sweden death missing source", Dataset: "global", Region: "Europe", Location: "Sweden", Day: 62, Measure: "deaths", Class: PrevalentSource, Direction: core.TooLow, ExpectDetect: false},
		{ID: "3498", Title: "Alberta missing source", Dataset: "global", Region: "Americas", Location: "Canada", Day: 60, Measure: "confirmed", Class: PrevalentSource, Direction: core.TooLow, ExpectDetect: false},
		{ID: "3494", Title: "UK death missing reports", Dataset: "global", Region: "Europe", Location: "UK", Day: 58, Measure: "deaths", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3471", Title: "Turkey confirmed definition altered", Dataset: "global", Region: "Europe", Location: "Turkey", Day: 54, Measure: "confirmed", Class: Backlog, Direction: core.TooHigh, ExpectDetect: true},
		{ID: "3423", Title: "Afghanistan confirmed wrongly reported", Dataset: "global", Region: "MiddleEast", Location: "Afghanistan", Day: 50, Measure: "confirmed", Class: SubtleError, Direction: core.TooLow, ExpectDetect: false},
		{ID: "3413", Title: "France missing reports", Dataset: "global", Region: "Europe", Location: "France", Day: 48, Measure: "confirmed", Class: MissingReports, Direction: core.TooLow, ExpectDetect: true},
		{ID: "3408", Title: "Kazakhstan confirmed over reported", Dataset: "global", Region: "MiddleEast", Location: "Kazakhstan", Day: 46, Measure: "confirmed", Class: OverReported, Direction: core.TooHigh, ExpectDetect: true},
	}
}

// Apply injects the issue into a copy of the dataset. The location dimension
// is "state" for US issues and "country" for global ones.
func (i Issue) Apply(ds *data.Dataset) *data.Dataset {
	out := ds.Clone()
	locAttr := "state"
	if i.Dataset == "global" {
		locAttr = "country"
	}
	loc := out.Dim(locAttr)
	day := out.Dim("day")
	ms := out.Measure(i.Measure)

	// Index the location's rows by day.
	dayRow := make(map[string]int, CovidDays)
	for r := 0; r < out.NumRows(); r++ {
		if loc[r] == i.Location {
			dayRow[day[r]] = r
		}
	}
	rowOf := func(d int) int {
		if r, ok := dayRow[dayName(d)]; ok {
			return r
		}
		return -1
	}
	r := rowOf(i.Day)
	if r < 0 {
		panic(fmt.Sprintf("datasets: issue %s: no row for %s %s", i.ID, i.Location, i.DayName()))
	}
	switch i.Class {
	case MissingReports:
		ms[r] *= 0.04
	case Backlog:
		var moved float64
		for d := i.Day - 3; d < i.Day; d++ {
			if pr := rowOf(d); pr >= 0 {
				moved += ms[pr] * 0.95
				ms[pr] *= 0.05
			}
		}
		ms[r] += moved
	case OverReported:
		ms[r] *= 2.5
	case DefinitionAltered:
		for d := i.Day; d < CovidDays; d++ {
			if dr := rowOf(d); dr >= 0 {
				ms[dr] *= 1.7
			}
		}
	case PrevalentSource:
		for d := 0; d < CovidDays; d++ {
			if dr := rowOf(d); dr >= 0 {
				ms[dr] *= 0.88
			}
		}
	case Typo:
		ms[r] *= 1.01
	case DayShift:
		if nr := rowOf(i.Day + 1); nr >= 0 {
			// Only one county's reports shift (Albany within New York), a
			// small fraction of the state total.
			shift := ms[r] * 0.015
			ms[r] -= shift
			ms[nr] += shift
		}
	case WronglyReported:
		ms[r] *= 3.2
	case SubtleError:
		ms[r] *= 0.995
	case Nullified:
		// Resetting a cumulative series makes the daily difference a large
		// negative value.
		total := 0.0
		for d := 0; d < i.Day; d++ {
			if dr := rowOf(d); dr >= 0 {
				total += ms[dr]
			}
		}
		ms[r] = -total
	}
	return out
}
