package datasets

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestGenerateCovidUSShape(t *testing.T) {
	ds := GenerateCovidUS(1)
	if ds.NumRows() != len(usStates)*CovidDays {
		t.Fatalf("rows = %d, want %d", ds.NumRows(), len(usStates)*CovidDays)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// 51 states/DC plus 4 barely-reporting territories.
	if got := len(ds.Distinct("state")); got != 55 {
		t.Errorf("states = %d", got)
	}
	for _, v := range ds.Measure("confirmed") {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bad confirmed value %v", v)
		}
	}
}

func TestGenerateCovidGlobalShape(t *testing.T) {
	ds := GenerateCovidGlobal(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	nc := 0
	for _, cs := range covidRegions {
		nc += len(cs)
	}
	if ds.NumRows() != nc*CovidDays {
		t.Fatalf("rows = %d, want %d", ds.NumRows(), nc*CovidDays)
	}
	if got := len(ds.Distinct("region")); got != 6 {
		t.Errorf("regions = %d", got)
	}
}

func TestIssueTablesMatchPaperCounts(t *testing.T) {
	us := USIssues()
	if len(us) != 16 {
		t.Fatalf("US issues = %d, want 16", len(us))
	}
	gl := GlobalIssues()
	if len(gl) != 14 {
		t.Fatalf("global issues = %d, want 14", len(gl))
	}
	detected := 0
	for _, i := range append(us, gl...) {
		if i.ExpectDetect {
			detected++
		}
	}
	if detected != 21 {
		t.Errorf("expected detections = %d, want 21 (Tables 1-2)", detected)
	}
	// Every issue must reference a real location/region.
	usSet := map[string]bool{}
	for _, s := range usStates {
		usSet[s] = true
	}
	for _, i := range us {
		if !usSet[i.Location] {
			t.Errorf("issue %s: unknown state %q", i.ID, i.Location)
		}
	}
	for _, i := range gl {
		countries, ok := covidRegions[i.Region]
		if !ok {
			t.Errorf("issue %s: unknown region %q", i.ID, i.Region)
			continue
		}
		found := false
		for _, c := range countries {
			if c == i.Location {
				found = true
			}
		}
		if !found {
			t.Errorf("issue %s: country %q not in region %q", i.ID, i.Location, i.Region)
		}
	}
}

func TestIssueApplyChangesTargetOnly(t *testing.T) {
	ds := GenerateCovidUS(2)
	issue := USIssues()[0] // Texas missing reports
	corrupted := issue.Apply(ds)
	states := ds.Dim("state")
	days := ds.Dim("day")
	before := ds.Measure("confirmed")
	after := corrupted.Measure("confirmed")
	for i := range before {
		isTarget := states[i] == issue.Location && days[i] == issue.DayName()
		if isTarget {
			if after[i] >= before[i]*0.5 {
				t.Errorf("missing reports should slash the value: %v → %v", before[i], after[i])
			}
		} else if after[i] != before[i] {
			t.Errorf("row %d (%s %s) changed unexpectedly", i, states[i], days[i])
		}
	}
}

func TestIssueApplyClasses(t *testing.T) {
	ds := GenerateCovidUS(3)
	get := func(dsv []float64, states, days []string, loc, d string) float64 {
		for i := range dsv {
			if states[i] == loc && days[i] == d {
				return dsv[i]
			}
		}
		t.Fatalf("missing row %s %s", loc, d)
		return 0
	}
	for _, issue := range USIssues() {
		c := issue.Apply(ds)
		before := get(ds.Measure(issue.Measure), ds.Dim("state"), ds.Dim("day"), issue.Location, issue.DayName())
		after := get(c.Measure(issue.Measure), c.Dim("state"), c.Dim("day"), issue.Location, issue.DayName())
		switch issue.Class {
		case MissingReports:
			if after >= before/2 {
				t.Errorf("issue %s: missing reports %v → %v", issue.ID, before, after)
			}
		case OverReported, WronglyReported, Backlog, DefinitionAltered:
			if after <= before {
				t.Errorf("issue %s: %v should increase %v → %v", issue.ID, issue.Class, before, after)
			}
		case Typo, SubtleError:
			if math.Abs(after-before) > before*0.05 {
				t.Errorf("issue %s: subtle error too large %v → %v", issue.ID, before, after)
			}
		case PrevalentSource:
			if after >= before {
				t.Errorf("issue %s: prevalent scale-down failed", issue.ID)
			}
		}
	}
}

func TestNullifiedIssueGoesNegative(t *testing.T) {
	ds := GenerateCovidGlobal(4)
	var nullified Issue
	for _, i := range GlobalIssues() {
		if i.Class == Nullified {
			nullified = i
		}
	}
	c := nullified.Apply(ds)
	countries := c.Dim("country")
	days := c.Dim("day")
	rec := c.Measure(nullified.Measure)
	for i := range rec {
		if countries[i] == nullified.Location && days[i] == nullified.DayName() {
			if rec[i] >= 0 {
				t.Errorf("nullified value = %v, want negative", rec[i])
			}
			return
		}
	}
	t.Fatal("nullified row not found")
}

func TestGenerateFIST(t *testing.T) {
	f := GenerateFIST(1)
	if err := f.DS.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Study) != 22 {
		t.Fatalf("study complaints = %d, want 22", len(f.Study))
	}
	resolvable := 0
	for _, s := range f.Study {
		if s.ExpectResolve {
			resolvable++
		}
		if len(s.Steps) == 0 {
			t.Errorf("scenario %d has no steps", s.ID)
		}
	}
	if resolvable != 20 {
		t.Errorf("resolvable = %d, want 20", resolvable)
	}
	// Severity stays in the 1–10 reporting scale.
	for _, v := range f.DS.Measure("severity") {
		if v < 1 || v > 10 {
			t.Fatalf("severity %v out of scale", v)
		}
	}
	// Rainfall rows exist for every (village, year).
	villages := f.DS.Distinct("village")
	years := f.DS.Distinct("year")
	nv := len(villages) * len(years)
	if f.Rainfall.NumRows() != nv {
		t.Errorf("rainfall rows = %d, want %d", f.Rainfall.NumRows(), nv)
	}
}

func TestGenerateVote(t *testing.T) {
	v := GenerateVote(1)
	if err := v.DS.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(v.GeorgiaCounties) != 159 {
		t.Errorf("Georgia counties = %d, want 159", len(v.GeorgiaCounties))
	}
	if len(v.States) != 50 {
		t.Errorf("states = %d", len(v.States))
	}
	// 2016 aux has one row per county.
	if v.Aux2016.NumRows() != v.DS.NumRows() {
		t.Errorf("aux rows = %d, dataset rows = %d", v.Aux2016.NumRows(), v.DS.NumRows())
	}
	// Shares are within the clamp.
	for _, p := range v.DS.Measure("pct2020") {
		if p < 2 || p > 98 {
			t.Fatalf("pct2020 = %v", p)
		}
	}
}

func TestInjectMissingVotes(t *testing.T) {
	v := GenerateVote(2)
	target := v.GeorgiaCounties[:5]
	v2 := v.InjectMissingVotes(target)
	cc := v.DS.Dim("county")
	before := v.DS.Measure("votes2020")
	after := v2.DS.Measure("votes2020")
	hit := 0
	for i := range before {
		inTarget := false
		for _, c := range target {
			if cc[i] == c {
				inTarget = true
			}
		}
		if inTarget {
			hit++
			if math.Abs(after[i]-before[i]/2) > 1e-9 {
				t.Errorf("votes not halved for %s", cc[i])
			}
		} else if after[i] != before[i] {
			t.Errorf("untouched county %s changed", cc[i])
		}
	}
	if hit != 5 {
		t.Errorf("hit %d target counties, want 5", hit)
	}
}

func TestGenerateAbsentee(t *testing.T) {
	ds := GenerateAbsentee(1, 5000)
	if ds.NumRows() != 5000 {
		t.Fatalf("rows = %d", ds.NumRows())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Distinct("party")); got != 6 {
		t.Errorf("parties = %d", got)
	}
	// Default row count matches the paper.
	full := GenerateAbsentee(1, 0)
	if full.NumRows() != 179_000 {
		t.Errorf("default rows = %d", full.NumRows())
	}
}

func TestGenerateCompas(t *testing.T) {
	ds := GenerateCompas(1, 8000)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	days := ds.Distinct("day")
	if len(days) > 704 {
		t.Errorf("days = %d, want ≤ 704", len(days))
	}
	if got := len(ds.Distinct("race")); got != 6 {
		t.Errorf("races = %d", got)
	}
	for _, s := range ds.Measure("score") {
		if s < 1 || s > 10 {
			t.Fatalf("score %v out of range", s)
		}
	}
}

func TestIssueDirectionsAreConsistent(t *testing.T) {
	for _, i := range append(USIssues(), GlobalIssues()...) {
		switch i.Class {
		case MissingReports, PrevalentSource, Nullified:
			if i.Direction != core.TooLow {
				t.Errorf("issue %s: %v should complain TooLow", i.ID, i.Class)
			}
		case OverReported, Backlog, DefinitionAltered, WronglyReported:
			if i.Direction != core.TooHigh {
				t.Errorf("issue %s: %v should complain TooHigh", i.ID, i.Class)
			}
		}
	}
}
