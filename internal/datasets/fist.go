package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
)

// FIST simulates the Columbia FIST drought-survey dataset of §5.4: farmer
// severity reports (1–10) over a geography hierarchy Region → District →
// Village and a Year hierarchy, plus a satellite rainfall auxiliary table
// per (village, year), and the 22 scripted complaints of the user study
// (20 resolvable, 2 designed failures mirroring Appendix M).
type FIST struct {
	DS       *data.Dataset
	Rainfall *data.Dataset
	Study    []FISTComplaint

	regions   []string
	districts map[string][]string // region → districts
	villages  map[string][]string // district → villages
	years     []string
}

// FISTStep is one drill-down step of a study scenario: the complaint to
// submit and the acceptable top-1 values of the newly added attribute.
// RequireAll (used by the two-district STD failure) demands every listed
// value simultaneously at rank 1, which a single recommendation cannot
// satisfy — reproducing the Appendix M failure mode.
type FISTStep struct {
	GroupBy    []string
	Complaint  core.Complaint
	Hierarchy  string
	Attr       string
	Want       []string
	RequireAll bool
}

// FISTComplaint is one user-study scenario.
type FISTComplaint struct {
	ID            int
	Desc          string
	Steps         []FISTStep
	ExpectResolve bool
}

// fistSeverity clamps a latent severity into the 1–10 reporting scale.
func fistSeverity(x float64) float64 {
	return math.Max(1, math.Min(10, math.Round(x)))
}

// GenerateFIST builds the simulated survey with all study errors injected.
func GenerateFIST(seed int64) *FIST {
	rng := rand.New(rand.NewSource(seed))
	f := &FIST{
		districts: map[string][]string{},
		villages:  map[string][]string{},
	}
	f.regions = []string{"Amhara", "Oromia", "Tigray"}
	for y := 2004; y <= 2015; y++ {
		f.years = append(f.years, fmt.Sprintf("y%d", y))
	}
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"region", "district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("fist", []string{"region", "district", "village", "year"}, []string{"severity"}, h)
	rain := data.New("rainfall", []string{"village", "year"}, []string{"rainfall"}, nil)

	regionEff := map[string]float64{"Amhara": -0.4, "Oromia": 0.2, "Tigray": 0.7}
	yearShock := map[string]float64{}
	for _, y := range f.years {
		yearShock[y] = rng.NormFloat64() * 1.2
	}
	// Latent drought per (village, year) drives both severity and rainfall.
	for _, r := range f.regions {
		for d := 0; d < 4; d++ {
			dist := fmt.Sprintf("%s_D%d", r, d)
			f.districts[r] = append(f.districts[r], dist)
			distEff := rng.NormFloat64() * 0.25
			for v := 0; v < 6; v++ {
				vil := fmt.Sprintf("%s_V%d", dist, v)
				f.villages[dist] = append(f.villages[dist], vil)
				vilEff := rng.NormFloat64() * 0.2
				for _, y := range f.years {
					drought := regionEff[r] + yearShock[y] + distEff + vilEff + rng.NormFloat64()*0.2
					rain.AppendRowVals([]string{vil, y}, []float64{120 - 18*drought + rng.NormFloat64()*6})
					for rep := 0; rep < 8; rep++ {
						ds.AppendRowVals([]string{r, dist, vil, y},
							[]float64{fistSeverity(5.5 + 1.6*drought + rng.NormFloat64()*0.9)})
					}
				}
			}
		}
	}
	f.DS = ds
	f.Rainfall = rain
	f.buildStudy(rng)
	return f
}

// shiftVillageYear drifts every severity report of (village, year), clamped
// to the reporting scale.
func (f *FIST) shiftVillageYear(village, year string, delta float64) {
	vcol := f.DS.Dim("village")
	ycol := f.DS.Dim("year")
	sev := f.DS.Measure("severity")
	for i := range sev {
		if vcol[i] == village && ycol[i] == year {
			sev[i] = fistSeverity(sev[i] + delta)
		}
	}
}

// meanVillageYear returns the current mean severity of (village, year).
func (f *FIST) meanVillageYear(village, year string) float64 {
	vcol := f.DS.Dim("village")
	ycol := f.DS.Dim("year")
	sev := f.DS.Measure("severity")
	var sum, n float64
	for i := range sev {
		if vcol[i] == village && ycol[i] == year {
			sum += sev[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// moveVillageYear relabels (village, year) reports into the next year — the
// "farmers confuse planting and harvesting years" error.
func (f *FIST) moveVillageYear(village, year, nextYear string) {
	vcol := f.DS.Dim("village")
	ycol := f.DS.Dim("year")
	for i := range ycol {
		if vcol[i] == village && ycol[i] == year {
			ycol[i] = nextYear
		}
	}
}

// buildStudy injects the 22 scenarios' errors and scripts their complaints.
func (f *FIST) buildStudy(rng *rand.Rand) {
	type target struct{ region, district, village, year string }
	// Scenario targets must not collide: stacking two corruptions on the
	// same (district, year) would change what a district complaint sees,
	// and a region-level STD complaint needs its whole (region, year) free.
	// Scenarios 21 and 22 reserve their (region, year) slices up front.
	usedDist := map[string]bool{}
	usedRegion := map[string]bool{}
	reservedRegion := map[string]bool{
		"Oromia/" + f.years[2]: true,
		"Tigray/" + f.years[9]: true,
	}
	// The cursor enumerates 3 regions × 4 districts × 12 years = 144
	// distinct slots (region fastest, then district, then year), far more
	// than the 20 scenarios need even after collisions.
	cursor := 0
	pick := func(exclusiveRegion bool) target {
		for {
			i := cursor
			cursor++
			if i >= 3*4*len(f.years) {
				panic("datasets: FIST study ran out of scenario slots")
			}
			r := f.regions[i%len(f.regions)]
			d := f.districts[r][(i/3)%4]
			v := f.villages[d][(i*7)%6]
			y := f.years[(i/12)%len(f.years)]
			regionKey := r + "/" + y
			distKey := d + "/" + y
			if reservedRegion[regionKey] || usedDist[distKey] {
				continue
			}
			if exclusiveRegion && usedRegion[regionKey] {
				continue
			}
			usedDist[distKey] = true
			usedRegion[regionKey] = true
			if exclusiveRegion {
				reservedRegion[regionKey] = true
			}
			return target{r, d, v, y}
		}
	}
	villageStep := func(tg target, a agg.Func, dir core.Direction) FISTStep {
		return FISTStep{
			GroupBy: []string{"region", "district", "year"},
			Complaint: core.Complaint{
				Agg: a, Measure: "severity",
				Tuple:     data.Predicate{"region": tg.region, "district": tg.district, "year": tg.year},
				Direction: dir,
			},
			Hierarchy: "geo", Attr: "village", Want: []string{tg.village},
		}
	}

	id := 0
	add := func(desc string, resolve bool, steps ...FISTStep) {
		id++
		f.Study = append(f.Study, FISTComplaint{ID: id, Desc: desc, Steps: steps, ExpectResolve: resolve})
	}

	// Scenarios 1–8: misremembered severities (village-year drift), caught
	// from a district-level MEAN complaint.
	for i := 0; i < 8; i++ {
		tg := pick(false)
		delta := 3.5
		dir := core.TooHigh
		if i%2 == 1 {
			delta, dir = -3.5, core.TooLow
		}
		f.shiftVillageYear(tg.village, tg.year, delta)
		add(fmt.Sprintf("%s mean %s in %s (misremembered reports in %s)", tg.district, dir, tg.year, tg.village),
			true, villageStep(tg, agg.Mean, dir))
	}

	// Scenarios 9–12: planting/harvest year confusion (reports shifted to
	// the next year), caught from a district-level COUNT complaint.
	for i := 8; i < 12; i++ {
		tg := pick(false)
		yi := indexOfString(f.years, tg.year)
		if yi == len(f.years)-1 {
			yi--
			tg.year = f.years[yi]
		}
		// The spill-over year carries the surplus reports; keep other
		// scenarios away from it.
		usedDist[tg.district+"/"+f.years[yi+1]] = true
		f.moveVillageYear(tg.village, tg.year, f.years[yi+1])
		add(fmt.Sprintf("%s count too low in %s (year confusion in %s)", tg.district, tg.year, tg.village),
			true, villageStep(tg, agg.Count, core.TooLow))
	}

	// Scenarios 13–16: non-drought years reported severe, caught from a
	// district MEAN complaint.
	for i := 12; i < 16; i++ {
		tg := pick(false)
		f.shiftVillageYear(tg.village, tg.year, 4)
		add(fmt.Sprintf("%s mean too high in %s (non-drought reported severe in %s)", tg.district, tg.year, tg.village),
			true, villageStep(tg, agg.Mean, core.TooHigh))
	}

	// Scenarios 17–20: region-level STD complaints: one village far off
	// inflates the region-year dispersion; the drill path goes district
	// then village. The drift direction moves away from the 1–10 clamp so
	// the outlier signal survives severe years.
	for i := 16; i < 20; i++ {
		tg := pick(true)
		delta, dir := 4.5, core.TooHigh
		if f.meanVillageYear(tg.village, tg.year) > 5.5 {
			delta, dir = -4.5, core.TooLow
		}
		f.shiftVillageYear(tg.village, tg.year, delta)
		add(fmt.Sprintf("%s std too high in %s (outlier village %s)", tg.region, tg.year, tg.village),
			true,
			FISTStep{
				GroupBy: []string{"region", "year"},
				Complaint: core.Complaint{
					Agg: agg.Std, Measure: "severity",
					Tuple:     data.Predicate{"region": tg.region, "year": tg.year},
					Direction: core.TooHigh,
				},
				Hierarchy: "geo", Attr: "district", Want: []string{tg.district},
			},
			villageStep(tg, agg.Mean, dir),
		)
	}

	// Scenario 21 (designed failure): an inherently ambiguous complaint —
	// every district of the region is mildly low, so no single drill-down
	// group explains the deviation and team members disagreed on the cause.
	{
		r := "Oromia"
		y := f.years[2]
		for _, d := range f.districts[r] {
			for _, v := range f.villages[d] {
				f.shiftVillageYear(v, y, -1.5)
			}
		}
		add(fmt.Sprintf("%s mean too low in %s (ambiguous: all districts low)", r, y), false,
			FISTStep{
				GroupBy: []string{"region", "year"},
				Complaint: core.Complaint{
					Agg: agg.Mean, Measure: "severity",
					Tuple:     data.Predicate{"region": r, "year": y},
					Direction: core.TooLow,
				},
				Hierarchy: "geo", Attr: "district", Want: nil, // no single true target
			})
	}

	// Scenario 22 (designed failure): the Appendix M STD parabola — two
	// districts drift in opposite directions; repairing either one alone
	// does not reduce the region-year standard deviation, and Reptile can
	// only return one of the two.
	{
		r := "Tigray"
		y := f.years[9]
		dA, dB := f.districts[r][0], f.districts[r][1]
		for _, v := range f.villages[dA] {
			f.shiftVillageYear(v, y, 2.5)
		}
		for _, v := range f.villages[dB] {
			f.shiftVillageYear(v, y, -2.5)
		}
		add(fmt.Sprintf("%s std too high in %s (two districts %s and %s must be fixed together)", r, y, dA, dB), false,
			FISTStep{
				GroupBy: []string{"region", "year"},
				Complaint: core.Complaint{
					Agg: agg.Std, Measure: "severity",
					Tuple:     data.Predicate{"region": r, "year": y},
					Direction: core.TooHigh,
				},
				Hierarchy: "geo", Attr: "district",
				Want: []string{dA, dB}, RequireAll: true,
			})
	}
	_ = rng
}

func indexOfString(list []string, v string) int {
	for i, x := range list {
		if x == v {
			return i
		}
	}
	return -1
}
