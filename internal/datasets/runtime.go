package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
)

// GenerateAbsentee simulates the North Carolina 2020 absentee dataset of
// §5.1.4: 179K records over four single-attribute hierarchies with the
// paper's cardinalities — county (100), party (6), week (53), gender (3).
// The synthetic measure "one" carries the COUNT complaints.
func GenerateAbsentee(seed int64, rows int) *data.Dataset {
	if rows <= 0 {
		rows = 179_000
	}
	rng := rand.New(rand.NewSource(seed))
	h := []data.Hierarchy{
		{Name: "county", Attrs: []string{"county"}},
		{Name: "party", Attrs: []string{"party"}},
		{Name: "week", Attrs: []string{"week"}},
		{Name: "gender", Attrs: []string{"gender"}},
	}
	ds := data.New("absentee", []string{"county", "party", "week", "gender"}, []string{"one"}, h)
	counties := make([]string, 100)
	for i := range counties {
		counties[i] = fmt.Sprintf("county%03d", i)
	}
	parties := []string{"DEM", "REP", "UNA", "LIB", "GRE", "CST"}
	weeks := make([]string, 53)
	for i := range weeks {
		weeks[i] = fmt.Sprintf("w%02d", i)
	}
	genders := []string{"F", "M", "U"}
	for r := 0; r < rows; r++ {
		ds.AppendRowVals([]string{
			counties[rng.Intn(len(counties))],
			parties[rng.Intn(len(parties))],
			weeks[rng.Intn(len(weeks))],
			genders[rng.Intn(len(genders))],
		}, []float64{1})
	}
	return ds
}

// AbsenteeDrillOrder is the paper's arbitrary drill sequence for Figure 10.
var AbsenteeDrillOrder = []string{"county", "party", "week", "gender"}

// GenerateCompas simulates the COMPAS recidivism dataset of §5.1.4: 60,843
// records over a three-attribute time hierarchy (year, month, day; 704
// distinct days) and single-attribute age / race / charge-degree
// hierarchies. The measure "score" is the decile risk score.
func GenerateCompas(seed int64, rows int) *data.Dataset {
	if rows <= 0 {
		rows = 60_843
	}
	rng := rand.New(rand.NewSource(seed))
	h := []data.Hierarchy{
		{Name: "time", Attrs: []string{"year", "month", "day"}},
		{Name: "age", Attrs: []string{"age"}},
		{Name: "race", Attrs: []string{"race"}},
		{Name: "charge", Attrs: []string{"charge"}},
	}
	ds := data.New("compas", []string{"year", "month", "day", "age", "race", "charge"}, []string{"score"}, h)
	// 704 days spanning 2013-01-01 .. 2014-12-05 (naive 31-day months keep
	// the day → month → year FDs intact).
	type day struct{ y, m, d string }
	var days []day
	for y := 2013; len(days) < 704; y++ {
		for m := 1; m <= 12 && len(days) < 704; m++ {
			for dd := 1; dd <= 31 && len(days) < 704; dd++ {
				days = append(days, day{
					y: fmt.Sprintf("%d", y),
					m: fmt.Sprintf("%d-%02d", y, m),
					d: fmt.Sprintf("%d-%02d-%02d", y, m, dd),
				})
			}
		}
	}
	ages := []string{"under25", "25to45", "over45"}
	races := []string{"AfricanAmerican", "Asian", "Caucasian", "Hispanic", "NativeAmerican", "Other"}
	charges := []string{"F", "M", "O"}
	for r := 0; r < rows; r++ {
		d := days[rng.Intn(len(days))]
		ds.AppendRowVals([]string{
			d.y, d.m, d.d,
			ages[rng.Intn(len(ages))],
			races[rng.Intn(len(races))],
			charges[rng.Intn(len(charges))],
		}, []float64{float64(1 + rng.Intn(10))})
	}
	return ds
}

// CompasDrillOrder is the paper's arbitrary drill sequence for Figure 10:
// three time levels, then age, race and charge degree.
var CompasDrillOrder = []string{"time", "time", "time", "age", "race", "charge"}
