package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// Vote simulates the 2016/2020 US presidential county-level vote data of
// Appendices K and N: one row per county with the 2020 Trump vote share and
// total votes, plus an auxiliary table carrying the 2016 share (the strong
// predictor that drives the Appendix K AIC comparison).
type Vote struct {
	DS      *data.Dataset // one row per county: pct2020, votes2020
	Aux2016 *data.Dataset // county → pct2016
	States  []string
	// GeorgiaCounties lists the counties of the Figure 18 case study.
	GeorgiaCounties []string
}

// GenerateVote builds the simulated election data: 50 states with 40–80
// counties each (Georgia gets 159, as in the real data). The 2016→2020
// swing has a state-level component, which is what makes the multi-level
// model with the 2016 auxiliary the best Appendix K fit.
func GenerateVote(seed int64) *Vote {
	rng := rand.New(rand.NewSource(seed))
	h := []data.Hierarchy{{Name: "location", Attrs: []string{"state", "county"}}}
	ds := data.New("vote", []string{"state", "county"}, []string{"pct2020", "votes2020"}, h)
	aux := data.New("vote2016", []string{"county"}, []string{"pct2016", "votes2016"}, nil)
	v := &Vote{DS: ds, Aux2016: aux}
	for s := 0; s < 50; s++ {
		state := fmt.Sprintf("S%02d", s)
		if s == 10 {
			state = "Georgia"
		}
		v.States = append(v.States, state)
		stateLean := 50 + rng.NormFloat64()*8
		stateSwing := -1.2 + rng.NormFloat64()*1.5
		nCounties := 40 + rng.Intn(41)
		if state == "Georgia" {
			nCounties = 159
		}
		for c := 0; c < nCounties; c++ {
			county := fmt.Sprintf("%s_C%03d", state, c)
			lean16 := clampPct(stateLean + rng.NormFloat64()*12)
			lean20 := clampPct(lean16 + stateSwing + rng.NormFloat64()*2.0)
			votes := math.Exp(rng.NormFloat64()*1.1 + 9.5)
			votes16 := votes * (1 + 0.05*rng.NormFloat64())
			ds.AppendRowVals([]string{state, county}, []float64{lean20, votes})
			aux.AppendRowVals([]string{county}, []float64{lean16, votes16})
			if state == "Georgia" {
				v.GeorgiaCounties = append(v.GeorgiaCounties, county)
			}
		}
	}
	return v
}

func clampPct(x float64) float64 { return math.Max(2, math.Min(98, x)) }

// InjectMissingVotes halves votes2020 in the given counties — the Figure 18h
// missing-records variant.
func (v *Vote) InjectMissingVotes(counties []string) *Vote {
	ds := v.DS.Clone()
	cc := ds.Dim("county")
	votes := ds.Measure("votes2020")
	target := make(map[string]bool, len(counties))
	for _, c := range counties {
		target[c] = true
	}
	for i := range votes {
		if target[cc[i]] {
			votes[i] /= 2
		}
	}
	return &Vote{DS: ds, Aux2016: v.Aux2016, States: v.States, GeorgiaCounties: v.GeorgiaCounties}
}
