package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/feature"
	"repro/internal/synth"
)

func newTrialRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ablationScenario is a two-hierarchy survey with a persistently low village
// (not an error) and one corrupted (village, year). Models trained only on
// the complaint's children cannot tell the two apart; parallel groups
// resolve the ambiguity via the village main effect.
type ablationScenario struct {
	ds                      *data.Dataset
	district, year, village string
	persistentlyLow         string
}

func newAblationScenario(seed int64) *ablationScenario {
	rng := newTrialRand(seed)
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("ablation", []string{"district", "village", "year"}, []string{"severity"}, h)
	sc := &ablationScenario{ds: ds, district: "d1", year: "y4"}
	sc.persistentlyLow = "d1_v0"
	sc.village = "d1_v1"
	for d := 0; d < 4; d++ {
		dist := fmt.Sprintf("d%d", d)
		for v := 0; v < 6; v++ {
			vil := fmt.Sprintf("%s_v%d", dist, v)
			effect := 0.0
			if vil == sc.persistentlyLow {
				effect = -4 // low every year: expected, not an error
			}
			for y := 0; y < 8; y++ {
				yr := fmt.Sprintf("y%d", y)
				base := 10 + effect
				if vil == sc.village && yr == sc.year {
					base -= 3 // the injected error
				}
				for r := 0; r < 8; r++ {
					ds.AppendRowVals([]string{dist, vil, yr}, []float64{base + rng.NormFloat64()*0.8})
				}
			}
		}
	}
	return sc
}

// AblationRow is one cell of the design-choice ablations.
type AblationRow struct {
	Study    string
	Variant  string
	Accuracy float64
}

// AblationZ quantifies the §3.3.4 random-effects choice on the COVID US
// issues: with the full Z = X design, a corrupted lag feature turns the
// erroneous group into a high-leverage point that the per-day random effects
// absorb, masking the anomaly; intercept-only random effects keep it
// visible.
func AblationZ(seed int64) ([]AblationRow, *Table) {
	base := datasets.GenerateCovidUS(seed)
	variants := []struct {
		name string
		re   core.RandomEffects
	}{
		{"ZIntercept", core.ZIntercept},
		{"ZFull", core.ZFull},
	}
	var rows []AblationRow
	for _, v := range variants {
		hits, total := 0, 0
		for _, issue := range datasets.USIssues() {
			if !issue.ExpectDetect {
				continue // prevalent/sub-noise issues fail regardless
			}
			total++
			ds := issue.Apply(base)
			eng, err := core.NewEngine(ds, core.Options{
				EMIterations:  10,
				Trainer:       core.TrainerNaive,
				Workers:       Workers,
				RandomEffects: v.re,
				GroupFeatures: []feature.GroupFeature{
					feature.LagFeature("day", 1),
					feature.LagFeature("day", 7),
				},
			})
			if err != nil {
				panic(err)
			}
			sess, err := eng.NewSession([]string{"day"})
			if err != nil {
				panic(err)
			}
			rec, err := sess.Recommend(core.Complaint{
				Agg: agg.Sum, Measure: issue.Measure,
				Tuple:     data.Predicate{"day": issue.DayName()},
				Direction: issue.Direction,
			})
			if err != nil {
				panic(err)
			}
			top := rec.Best.Ranked[0]
			got, _ := top.Group.Value([]string{"day", "state"}, "state")
			if got == issue.Location {
				hits++
			}
		}
		rows = append(rows, AblationRow{
			Study: "random-effects", Variant: v.name,
			Accuracy: float64(hits) / float64(total),
		})
	}
	t := &Table{
		Title:  "Ablation: random-effects design on detectable COVID US issues",
		Header: []string{"variant", "accuracy"},
	}
	for _, r := range rows {
		t.Add(r.Variant, fmt.Sprintf("%.2f", r.Accuracy))
	}
	return rows, t
}

// AblationLeakGuard quantifies the main-effect leakage guard on the §5.2
// synthetic workload: keeping a one-to-one main-effect feature lets the
// model predict each group's own (corrupted) statistic, so no repair shows a
// gain and accuracy collapses to chance.
func AblationLeakGuard(trials int, seed int64) ([]AblationRow, *Table) {
	if trials <= 0 {
		trials = 40
	}
	variants := []struct {
		name      string
		keepLeaky bool
	}{
		{"guard on (drop leaky main effects)", false},
		{"guard off (keep leaky main effects)", true},
	}
	var rows []AblationRow
	for _, v := range variants {
		hits := 0
		for trial := 0; trial < trials; trial++ {
			rng := newTrialRand(seed + int64(trial)*13241)
			clean := synth.Generate(synth.Config{}, rng)
			target := clean.Groups[rng.Intn(len(clean.Groups))]
			corrupted := clean.Inject(target, synth.DriftDown)
			aux := synth.CorrelatedAux(clean.Groups, clean.GroupStat(agg.Mean, clean.Groups), 0.9, rng)
			eng, err := core.NewEngine(corrupted.DS, core.Options{
				EMIterations: 10,
				Trainer:      core.TrainerNaive,
				Workers:      Workers,
				KeepLeaky:    v.keepLeaky,
				Aux:          []feature.Aux{{Name: "aux", Table: aux, JoinAttr: "grp", Measure: "auxval"}},
			})
			if err != nil {
				panic(err)
			}
			sess, _ := eng.NewSession(nil)
			rec, err := sess.Recommend(core.Complaint{
				Agg: agg.Mean, Measure: "val",
				Tuple: data.Predicate{}, Direction: core.TooLow,
			})
			if err != nil {
				panic(err)
			}
			if rec.Best.Ranked[0].Group.Vals[0] == target {
				hits++
			}
		}
		rows = append(rows, AblationRow{
			Study: "leak-guard", Variant: v.name,
			Accuracy: float64(hits) / float64(trials),
		})
	}
	t := &Table{
		Title:  "Ablation: main-effect leakage guard (Decrease error, rho = 0.9)",
		Header: []string{"variant", "accuracy"},
	}
	for _, r := range rows {
		t.Add(r.Variant, fmt.Sprintf("%.2f", r.Accuracy))
	}
	return rows, t
}

// AblationParallelGroups quantifies the §3.2 parallel-groups decision: the
// model trained only on the complaint's own children (one cluster of a few
// groups) versus the model trained on every parallel group in the dataset.
// Without parallel groups the expected statistics are poorly estimated and
// accuracy drops.
func AblationParallelGroups(seed int64) ([]AblationRow, *Table) {
	variants := []struct {
		name     string
		restrict bool
	}{
		{"parallel groups (whole dataset)", false},
		{"children only (complaint provenance)", true},
	}
	var rows []AblationRow
	for _, v := range variants {
		hits, total := 0, 0
		for trial := 0; trial < 25; trial++ {
			sc := newAblationScenario(seed + int64(trial)*7)
			ds := sc.ds
			if v.restrict {
				ds = ds.Where(data.Predicate{"district": sc.district, "year": sc.year})
			}
			eng, err := core.NewEngine(ds, core.Options{EMIterations: 10, Trainer: core.TrainerNaive, Workers: Workers})
			if err != nil {
				panic(err)
			}
			sess, err := eng.NewSession([]string{"district", "year"})
			if err != nil {
				panic(err)
			}
			rec, err := sess.Recommend(core.Complaint{
				Agg: agg.Mean, Measure: "severity",
				Tuple:     data.Predicate{"district": sc.district, "year": sc.year},
				Direction: core.TooLow,
			})
			if err != nil {
				panic(err)
			}
			total++
			top := rec.Best.Ranked[0]
			for _, val := range top.Group.Vals {
				if val == sc.village {
					hits++
					break
				}
			}
		}
		rows = append(rows, AblationRow{
			Study: "parallel-groups", Variant: v.name,
			Accuracy: float64(hits) / float64(total),
		})
	}
	t := &Table{
		Title:  "Ablation: training on parallel groups vs the complaint's children only",
		Header: []string{"variant", "accuracy"},
	}
	for _, r := range rows {
		t.Add(r.Variant, fmt.Sprintf("%.2f", r.Accuracy))
	}
	return rows, t
}
