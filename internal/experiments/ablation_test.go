package experiments

import "testing"

func TestAblations(t *testing.T) {
	zrows, zt := AblationZ(1)
	t.Log("\n" + zt.String())
	var zi, zf float64
	for _, r := range zrows {
		if r.Variant == "ZIntercept" {
			zi = r.Accuracy
		}
		if r.Variant == "ZFull" {
			zf = r.Accuracy
		}
	}
	if zi <= zf {
		t.Errorf("ZIntercept %.2f should beat ZFull %.2f", zi, zf)
	}
	lrows, lt := AblationLeakGuard(20, 1)
	t.Log("\n" + lt.String())
	if lrows[0].Accuracy <= lrows[1].Accuracy {
		t.Errorf("leak guard on %.2f should beat off %.2f", lrows[0].Accuracy, lrows[1].Accuracy)
	}
	prows, pt := AblationParallelGroups(1)
	t.Log("\n" + pt.String())
	if prows[0].Accuracy <= prows[1].Accuracy {
		t.Errorf("parallel groups %.2f should beat children-only %.2f", prows[0].Accuracy, prows[1].Accuracy)
	}
}
