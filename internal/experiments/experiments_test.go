package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/factor"
	"repro/internal/synth"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.Add("x", 1.5)
	tb.Add("longer", "cell")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer") {
		t.Errorf("rendering missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 { // title, blank, header, separator, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
}

func TestFig7SmallRunsAndVerifies(t *testing.T) {
	rows, tb := Fig7(3, 1)
	if len(rows) != 3*4 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	if tb.String() == "" {
		t.Error("empty table")
	}
	// Fig7 panics internally when factorised ops disagree with naive ones,
	// so reaching here already verifies correctness; check the ops are all
	// present per d.
	ops := map[string]int{}
	for _, r := range rows {
		ops[r.Op]++
	}
	for _, op := range []string{"materialize", "gram", "leftmul", "rightmul"} {
		if ops[op] != 3 {
			t.Errorf("op %s rows = %d", op, ops[op])
		}
	}
}

func TestFig8SharedIsFasterAtScale(t *testing.T) {
	rows, _ := Fig8([]int{400, 800}, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The serial plan materializes cross-hierarchy COF and must be slower
	// at the larger cardinality.
	last := rows[len(rows)-1]
	if last.Serial <= last.Shared {
		t.Errorf("serial %v should exceed shared %v at cardinality %d", last.Serial, last.Shared, last.Cardinality)
	}
}

func TestFig9ModesOrdering(t *testing.T) {
	// Wall-clock assertions are noisy under parallel bench runs; retry a
	// few times and only fail if the ordering never holds.
	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		rows, _ := Fig9(4000, 1)
		if len(rows) != 9 {
			t.Fatalf("rows = %d, want 9", len(rows))
		}
		// For each B depth, Cache+Dynamic must not be slower than Static by
		// more than noise; typically Static is the slowest.
		byN := map[int]map[factor.DrillMode]int64{}
		for _, r := range rows {
			if byN[r.PreDrilledB] == nil {
				byN[r.PreDrilledB] = map[factor.DrillMode]int64{}
			}
			byN[r.PreDrilledB][r.Mode] = r.Total.Nanoseconds()
		}
		lastErr = ""
		for n, m := range byN {
			if m[factor.CacheDynamic] > m[factor.Static]*2 {
				lastErr = fmt.Sprintf("n=%d: cache+dynamic %v much slower than static %v",
					n, m[factor.CacheDynamic], m[factor.Static])
			}
		}
		if lastErr == "" {
			return
		}
	}
	t.Error(lastErr)
}

func TestFig11SmallShape(t *testing.T) {
	rows, tb := Fig11(8, []float64{1.0}, 42)
	if len(rows) != 6*1*len(Fig11Methods) {
		t.Fatalf("rows = %d", len(rows))
	}
	if tb.String() == "" {
		t.Error("empty table")
	}
	// With perfect auxiliary correlation Reptile should dominate every
	// baseline on average.
	var rep, others float64
	var nOthers int
	for _, r := range rows {
		if r.Method == "Reptile" {
			rep += r.Accuracy
		} else {
			others += r.Accuracy
			nOthers++
		}
	}
	rep /= 6
	others /= float64(nOthers)
	if rep <= others {
		t.Errorf("Reptile avg %.2f should beat baselines avg %.2f at rho=1", rep, others)
	}
	if rep < 0.8 {
		t.Errorf("Reptile accuracy at rho=1 = %.2f, want ≥ 0.8", rep)
	}
}

func TestFig12OutlierBounded(t *testing.T) {
	rows, _ := Fig12(8, []float64{1.0}, 7)
	for _, r := range rows {
		if r.Method == "Reptile" && r.Accuracy < 0.7 {
			t.Errorf("%s rho %.1f: Reptile accuracy %.2f too low", r.Condition, r.Rho, r.Accuracy)
		}
	}
}

func TestFig11ComplaintMapping(t *testing.T) {
	for _, et := range []synth.ErrorType{synth.Missing, synth.Dup, synth.DriftUp, synth.DriftDown, synth.MissingDriftDown, synth.DupDriftUp} {
		c := fig11Complaint(et)
		if c.Measure != "val" {
			t.Errorf("%v: measure %q", et, c.Measure)
		}
	}
}

func TestFig16ShapesHold(t *testing.T) {
	rows, tb := Fig16(8, 3)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	if tb.String() == "" {
		t.Error("empty table")
	}
	aic := map[string]map[string]float64{}
	for _, r := range rows {
		if aic[r.Dataset] == nil {
			aic[r.Dataset] = map[string]float64{}
		}
		aic[r.Dataset][r.Model] = r.AIC
	}
	// FIST: the multi-level models substantially beat the linear ones
	// (ΔAIC > 10, the Appendix K rule of thumb).
	if aic["FIST"]["Multi-level"] >= aic["FIST"]["Linear"]-10 {
		t.Errorf("FIST: multi-level AIC %v should beat linear %v by >10",
			aic["FIST"]["Multi-level"], aic["FIST"]["Linear"])
	}
	// Vote: the 2016 auxiliary feature dominates (models with it beat
	// models without by >10).
	if aic["Vote"]["Linear-f"] >= aic["Vote"]["Linear"]-10 {
		t.Errorf("Vote: Linear-f %v should beat Linear %v", aic["Vote"]["Linear-f"], aic["Vote"]["Linear"])
	}
	if aic["Vote"]["Multi-level-f"] >= aic["Vote"]["Multi-level"]-10 {
		t.Errorf("Vote: Multi-level-f %v should beat Multi-level %v",
			aic["Vote"]["Multi-level-f"], aic["Vote"]["Multi-level"])
	}
}

func TestFig18CaseStudy(t *testing.T) {
	rows, summary, tb := Fig18(5)
	if len(rows) != 159 {
		t.Fatalf("rows = %d, want 159 Georgia counties", len(rows))
	}
	if tb.String() == "" {
		t.Error("empty table")
	}
	// Model 2 interprets the complaint through the 2016 share: gains should
	// be strongly anti-correlated with the 2016→2020 change (counties whose
	// share dropped most gain most from repair).
	if summary.CorrModel2ChangeGain > -0.5 {
		t.Errorf("model-2 gain correlation with share change = %.2f, want strongly negative", summary.CorrModel2ChangeGain)
	}
	// The missing-records counties should dominate the missing-variant
	// gains.
	if summary.MissingTopHits < 4 {
		t.Errorf("missing-record counties in top 10 = %d/5, want ≥ 4", summary.MissingTopHits)
	}
}

func TestFig15SmallRuns(t *testing.T) {
	rows, tb := Fig15(3, 1)
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	if tb.String() == "" {
		t.Error("empty table")
	}
}

func TestFig10ScaledDown(t *testing.T) {
	rows, tb := Fig10(0.02, 3, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if tb.String() == "" {
		t.Error("empty table")
	}
	for _, r := range rows {
		wantInv := 4
		if r.Dataset == "COMPAS" {
			wantInv = 6
		}
		if r.Invocations != wantInv {
			t.Errorf("%s: invocations = %d, want %d", r.Dataset, r.Invocations, wantInv)
		}
	}
}
