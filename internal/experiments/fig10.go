package experiments

import (
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
)

// Fig10Row is one end-to-end measurement: a dataset processed by one
// trainer backend across the full drill sequence.
type Fig10Row struct {
	Dataset     string
	Backend     string
	Invocations int
	Total       time.Duration
}

// runEndToEnd drives a full §5.1.4 session: starting from the overall COUNT
// complaint, it invokes Reptile once per drill step, always drilling the
// scripted hierarchy and extending the complaint tuple with the top group's
// value.
func runEndToEnd(ds *data.Dataset, measure string, drillOrder []string, trainer core.TrainerKind, emIters int) (int, time.Duration) {
	// This is a timing experiment: unless a pool size is requested
	// explicitly, pin the engine to the sequential path so the reported
	// end-to-end runtimes reproduce the paper's single-threaded regime and
	// don't vary with the host's core count.
	workers := Workers
	if workers == 0 {
		workers = 1
	}
	eng, err := core.NewEngine(ds, core.Options{
		EMIterations: emIters,
		Trainer:      trainer,
		TopK:         5,
		Workers:      workers,
	})
	if err != nil {
		panic(err)
	}
	sess, err := eng.NewSession(nil)
	if err != nil {
		panic(err)
	}
	tuple := data.Predicate{}
	start := time.Now()
	invocations := 0
	for _, hier := range drillOrder {
		rec, err := sess.Recommend(core.Complaint{
			Agg:       agg.Count,
			Measure:   measure,
			Tuple:     tuple,
			Direction: core.TooHigh,
		})
		if err != nil {
			panic(err)
		}
		invocations++
		// Follow the scripted hierarchy (the paper picks the sequence
		// arbitrarily since only runtime is studied) and filter to the top
		// group of that hierarchy.
		var hr *core.HierarchyResult
		for i := range rec.All {
			if rec.All[i].Hierarchy == hier {
				hr = &rec.All[i]
			}
		}
		if hr == nil {
			panic("experiments: scripted hierarchy " + hier + " not evaluated")
		}
		if err := sess.Drill(hier); err != nil {
			panic(err)
		}
		// Extend the complaint tuple with the top group's value for the new
		// attribute so the next invocation drills into it.
		top := hr.Ranked[0]
		idx := len(top.Group.Vals) - 1 // drilled attribute is last
		tuple[hr.Attr] = top.Group.Vals[idx]
	}
	return invocations, time.Since(start)
}

// Fig10 measures end-to-end runtimes on the Absentee and COMPAS datasets,
// comparing the factorised engine against the Matlab-style dense trainer.
// rowScale scales the dataset sizes (1.0 = the paper's row counts).
func Fig10(rowScale float64, emIters int, seed int64) ([]Fig10Row, *Table) {
	if rowScale <= 0 {
		rowScale = 1
	}
	if emIters <= 0 {
		emIters = 20
	}
	absRows := int(179_000 * rowScale)
	compasRows := int(60_843 * rowScale)

	type cfg struct {
		name    string
		ds      *data.Dataset
		measure string
		order   []string
	}
	cfgs := []cfg{
		{"Absentee", datasets.GenerateAbsentee(seed, absRows), "one", datasets.AbsenteeDrillOrder},
		{"COMPAS", datasets.GenerateCompas(seed, compasRows), "score", datasets.CompasDrillOrder},
	}
	var rows []Fig10Row
	for _, c := range cfgs {
		for _, backend := range []struct {
			name string
			kind core.TrainerKind
		}{
			{"Reptile (factorised)", core.TrainerFactorised},
			{"Matlab-style (full materialized matrix)", core.TrainerNaiveFull},
		} {
			inv, total := runEndToEnd(c.ds, c.measure, c.order, backend.kind, emIters)
			rows = append(rows, Fig10Row{Dataset: c.name, Backend: backend.name, Invocations: inv, Total: total})
		}
	}
	t := &Table{
		Title:  "Figure 10: end-to-end runtime on real-world-shaped datasets",
		Header: []string{"dataset", "backend", "invocations", "total"},
	}
	for _, r := range rows {
		t.Add(r.Dataset, r.Backend, r.Invocations, r.Total)
	}
	// Speedup rows.
	for i := 0; i+1 < len(rows); i += 2 {
		t.Add(rows[i].Dataset, "speedup", "", ratio(rows[i+1].Total, rows[i].Total))
	}
	return rows, t
}
