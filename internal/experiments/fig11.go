package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/feature"
	"repro/internal/synth"
)

// Fig11Row is one cell of the Figure 11 accuracy comparison: error type ×
// auxiliary correlation × method.
type Fig11Row struct {
	Error    synth.ErrorType
	Rho      float64
	Method   string
	Accuracy float64
}

// fig11Complaint maps an error type to its §5.2.1 complaint.
func fig11Complaint(et synth.ErrorType) core.Complaint {
	switch et {
	case synth.Missing:
		return core.Complaint{Agg: agg.Count, Measure: "val", Direction: core.TooLow}
	case synth.Dup:
		return core.Complaint{Agg: agg.Count, Measure: "val", Direction: core.TooHigh}
	case synth.DriftUp:
		return core.Complaint{Agg: agg.Mean, Measure: "val", Direction: core.TooHigh}
	case synth.DriftDown:
		return core.Complaint{Agg: agg.Mean, Measure: "val", Direction: core.TooLow}
	case synth.MissingDriftDown:
		return core.Complaint{Agg: agg.Sum, Measure: "val", Direction: core.TooLow}
	case synth.DupDriftUp:
		return core.Complaint{Agg: agg.Sum, Measure: "val", Direction: core.TooHigh}
	}
	panic(fmt.Sprintf("experiments: unknown error type %v", et))
}

// auxStatFor picks the aggregate statistic the auxiliary table correlates
// with (§5.2.1: one auxiliary table per statistic; the complaint's
// distributive components decide which is useful).
func auxStatFor(et synth.ErrorType) agg.Func {
	switch et {
	case synth.Missing, synth.Dup:
		return agg.Count
	case synth.DriftUp, synth.DriftDown:
		return agg.Mean
	default:
		return agg.Sum
	}
}

// Fig11Methods are the §5.2.2 comparison methods.
var Fig11Methods = []string{"Reptile", "Raw", "Sensitivity", "Support"}

// Fig11 runs the synthetic accuracy comparison. trials per cell (paper:
// 1000) and the rho sweep are configurable; zero values select defaults.
func Fig11(trials int, rhos []float64, seed int64) ([]Fig11Row, *Table) {
	if trials <= 0 {
		trials = 100
	}
	if len(rhos) == 0 {
		rhos = []float64{0.6, 0.7, 0.8, 0.9, 1.0}
	}
	errors := []synth.ErrorType{
		synth.Missing, synth.Dup, synth.DriftUp, synth.DriftDown,
		synth.MissingDriftDown, synth.DupDriftUp,
	}
	var rows []Fig11Row
	for _, et := range errors {
		for _, rho := range rhos {
			hits := map[string]int{}
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(seed + int64(trial)*7919))
				outcome := runFig11Trial(et, rho, rng)
				for m, ok := range outcome {
					if ok {
						hits[m]++
					}
				}
			}
			for _, m := range Fig11Methods {
				rows = append(rows, Fig11Row{
					Error: et, Rho: rho, Method: m,
					Accuracy: float64(hits[m]) / float64(trials),
				})
			}
		}
	}
	t := &Table{
		Title:  "Figure 11: explanation accuracy vs baselines (top-1 accuracy)",
		Header: append([]string{"error", "rho"}, Fig11Methods...),
	}
	for i := 0; i < len(rows); i += len(Fig11Methods) {
		r := rows[i]
		cells := []any{r.Error.String(), r.Rho}
		for j := 0; j < len(Fig11Methods); j++ {
			cells = append(cells, fmt.Sprintf("%.2f", rows[i+j].Accuracy))
		}
		t.Add(cells...)
	}
	return rows, t
}

// runFig11Trial generates one corrupted dataset and reports, per method,
// whether its top recommendation is the corrupted group.
func runFig11Trial(et synth.ErrorType, rho float64, rng *rand.Rand) map[string]bool {
	clean := synth.Generate(synth.Config{}, rng)
	target := clean.Groups[rng.Intn(len(clean.Groups))]
	corrupted := clean.Inject(target, et)
	complaint := fig11Complaint(et)
	complaint.Tuple = data.Predicate{}

	// Auxiliary tables correlate with the *clean* statistics — the external
	// signal reflects ground truth, which is what makes the corruption
	// stand out.
	auxStat := auxStatFor(et)
	var auxes []feature.Aux
	switch auxStat {
	case agg.Sum:
		// SUM decomposes into MEAN and COUNT models; provide both tables.
		for _, st := range []agg.Func{agg.Mean, agg.Count} {
			aux := synth.CorrelatedAux(clean.Groups, clean.GroupStat(st, clean.Groups), rho, rng)
			auxes = append(auxes, feature.Aux{Name: "aux-" + string(st), Table: aux, JoinAttr: "grp", Measure: "auxval"})
		}
	default:
		aux := synth.CorrelatedAux(clean.Groups, clean.GroupStat(auxStat, clean.Groups), rho, rng)
		auxes = append(auxes, feature.Aux{Name: "aux", Table: aux, JoinAttr: "grp", Measure: "auxval"})
	}

	out := map[string]bool{}

	eng, err := core.NewEngine(corrupted.DS, core.Options{
		EMIterations: 10,
		Trainer:      core.TrainerNaive,
		Aux:          auxes,
		Workers:      Workers,
	})
	if err != nil {
		panic(err)
	}
	sess, err := eng.NewSession(nil)
	if err != nil {
		panic(err)
	}
	rec, err := sess.Recommend(complaint)
	if err != nil {
		panic(err)
	}
	out["Reptile"] = rec.Best.Ranked[0].Group.Vals[0] == target

	// The baselines rank the same candidate groups.
	groups := agg.GroupBy(corrupted.DS, []string{"grp"}, "val")
	children := make([]agg.Group, len(groups.Groups))
	childIdx := make([]int, len(groups.Groups))
	for i, g := range groups.Groups {
		children[i] = g
		childIdx[i] = i
	}
	sens := baselines.Sensitivity(children, complaint)
	out["Sensitivity"] = children[sens[0]].Vals[0] == target
	sup := baselines.Support(children)
	out["Support"] = children[sup[0]].Vals[0] == target
	raw := baselines.Raw(corrupted.DS, groups, childIdx, "val", complaint)
	out["Raw"] = groups.Groups[childIdx[raw[0]]].Vals[0] == target
	return out
}
