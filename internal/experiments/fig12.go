package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/feature"
	"repro/internal/synth"
)

// Fig12Condition is one multi-error condition of §5.2.3: two groups carry
// the true error and one group carries an error in the opposite direction
// (the false positive only an outlier detector would flag).
type Fig12Condition struct {
	Name      string
	TrueErr   synth.ErrorType
	FalseErr  synth.ErrorType
	Complaint core.Complaint
}

// Fig12Conditions reproduces the three conditions of Figure 12.
func Fig12Conditions() []Fig12Condition {
	return []Fig12Condition{
		{
			Name: "Missing+Dup", TrueErr: synth.Missing, FalseErr: synth.Dup,
			Complaint: core.Complaint{Agg: agg.Count, Measure: "val", Direction: core.TooLow},
		},
		{
			Name: "Decrease+Increase", TrueErr: synth.DriftDown, FalseErr: synth.DriftUp,
			Complaint: core.Complaint{Agg: agg.Mean, Measure: "val", Direction: core.TooLow},
		},
		{
			Name: "All", TrueErr: synth.MissingDriftDown, FalseErr: synth.DupDriftUp,
			Complaint: core.Complaint{Agg: agg.Sum, Measure: "val", Direction: core.TooLow},
		},
	}
}

// Fig12Row is one cell of the complaint-ablation study.
type Fig12Row struct {
	Condition string
	Rho       float64
	Method    string
	Accuracy  float64
}

// Fig12 compares Reptile with the complaint-blind Outlier method on
// datasets containing two true errors and one false positive. Outlier
// cannot use the complaint direction, so its accuracy is bounded by 2/3.
func Fig12(trials int, rhos []float64, seed int64) ([]Fig12Row, *Table) {
	if trials <= 0 {
		trials = 100
	}
	if len(rhos) == 0 {
		rhos = []float64{0.6, 0.7, 0.8, 0.9, 1.0}
	}
	var rows []Fig12Row
	for _, cond := range Fig12Conditions() {
		for _, rho := range rhos {
			hitsReptile, hitsOutlier := 0, 0
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(seed + int64(trial)*104729))
				rep, out := runFig12Trial(cond, rho, rng)
				if rep {
					hitsReptile++
				}
				if out {
					hitsOutlier++
				}
			}
			rows = append(rows,
				Fig12Row{cond.Name, rho, "Reptile", float64(hitsReptile) / float64(trials)},
				Fig12Row{cond.Name, rho, "Outlier", float64(hitsOutlier) / float64(trials)},
			)
		}
	}
	t := &Table{
		Title:  "Figure 12: complaint ablation with multiple errors (top-1 accuracy)",
		Header: []string{"condition", "rho", "Reptile", "Outlier"},
	}
	for i := 0; i < len(rows); i += 2 {
		t.Add(rows[i].Condition, rows[i].Rho,
			fmt.Sprintf("%.2f", rows[i].Accuracy), fmt.Sprintf("%.2f", rows[i+1].Accuracy))
	}
	return rows, t
}

func runFig12Trial(cond Fig12Condition, rho float64, rng *rand.Rand) (reptileHit, outlierHit bool) {
	clean := synth.Generate(synth.Config{}, rng)
	perm := rng.Perm(len(clean.Groups))
	trueA, trueB := clean.Groups[perm[0]], clean.Groups[perm[1]]
	falseC := clean.Groups[perm[2]]
	corrupted := clean.Inject(trueA, cond.TrueErr).Inject(trueB, cond.TrueErr).Inject(falseC, cond.FalseErr)

	complaint := cond.Complaint
	complaint.Tuple = data.Predicate{}

	var auxes []feature.Aux
	stats := []agg.Func{auxStatFor(cond.TrueErr)}
	if stats[0] == agg.Sum {
		stats = []agg.Func{agg.Mean, agg.Count}
	}
	for _, st := range stats {
		aux := synth.CorrelatedAux(clean.Groups, clean.GroupStat(st, clean.Groups), rho, rng)
		auxes = append(auxes, feature.Aux{Name: "aux-" + string(st), Table: aux, JoinAttr: "grp", Measure: "auxval"})
	}

	eng, err := core.NewEngine(corrupted.DS, core.Options{
		EMIterations: 10,
		Trainer:      core.TrainerNaive,
		Aux:          auxes,
		Workers:      Workers,
	})
	if err != nil {
		panic(err)
	}
	sess, _ := eng.NewSession(nil)
	rec, err := sess.Recommend(complaint)
	if err != nil {
		panic(err)
	}
	top := rec.Best.Ranked[0].Group.Vals[0]
	reptileHit = top == trueA || top == trueB

	// Outlier: model prediction of the complained aggregate, no complaint.
	preds, groups, err := eng.PredictGroupStats([]string{"grp"}, "val", cond.Complaint.Agg)
	if err != nil {
		panic(err)
	}
	order := baselines.Outlier(groups.Groups, preds, cond.Complaint.Agg)
	otop := groups.Groups[order[0]].Vals[0]
	outlierHit = otop == trueA || otop == trueB
	return reptileHit, outlierHit
}
