package experiments

import (
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/feature"
)

// Fig13Result is the outcome of one COVID issue for every method.
type Fig13Result struct {
	Issue    datasets.Issue
	Reptile  bool
	Sens     bool
	Support  bool
	RepTime  time.Duration
	SensTime time.Duration
	SupTime  time.Duration
}

// covidEngine builds the engine configuration used throughout the case
// study: 1-day and 7-day lag features for trend and weekly seasonality
// (Appendix L).
func covidEngine(ds *data.Dataset) (*core.Engine, error) {
	return core.NewEngine(ds, core.Options{
		EMIterations: 10,
		Trainer:      core.TrainerNaive,
		Workers:      Workers,
		// Random intercepts only (§3.3.4): with full Z = X, a corrupted lag
		// feature makes the erroneous group a high-leverage point that the
		// per-day random effects would fit — masking the very anomaly.
		RandomEffects: core.ZIntercept,
		GroupFeatures: []feature.GroupFeature{
			feature.LagFeature("day", 1),
			feature.LagFeature("day", 7),
		},
	})
}

// covidComplaint is the §5.3 protocol: filter to the issue day and complain
// about the parent-level total.
func covidComplaint(issue datasets.Issue, tuple data.Predicate) core.Complaint {
	return core.Complaint{
		Agg:       agg.Sum,
		Measure:   issue.Measure,
		Tuple:     tuple,
		Direction: issue.Direction,
	}
}

// runCovidIssue applies the issue to the base dataset and runs every method
// through the drill-down protocol (one step for US, region → country for
// global). A method succeeds when its top recommendation is the erroneous
// location at every step.
func runCovidIssue(base *data.Dataset, issue datasets.Issue) Fig13Result {
	ds := issue.Apply(base)
	res := Fig13Result{Issue: issue}

	type step struct {
		groupBy []string
		tuple   data.Predicate
		attr    string
		want    string
	}
	var steps []step
	if issue.Dataset == "us" {
		steps = []step{{
			groupBy: []string{"day"},
			tuple:   data.Predicate{"day": issue.DayName()},
			attr:    "state",
			want:    issue.Location,
		}}
	} else {
		steps = []step{
			{
				groupBy: []string{"day"},
				tuple:   data.Predicate{"day": issue.DayName()},
				attr:    "region",
				want:    issue.Region,
			},
			{
				groupBy: []string{"region", "day"},
				tuple:   data.Predicate{"day": issue.DayName(), "region": issue.Region},
				attr:    "country",
				want:    issue.Location,
			},
		}
	}

	eng, err := covidEngine(ds)
	if err != nil {
		panic(err)
	}

	// Reptile.
	start := time.Now()
	repOK := true
	for _, st := range steps {
		sess, err := eng.NewSession(st.groupBy)
		if err != nil {
			panic(err)
		}
		rec, err := sess.Recommend(covidComplaint(issue, st.tuple))
		if err != nil {
			panic(err)
		}
		top := rec.Best.Ranked[0]
		got, _ := top.Group.Value(attrsOfRec(rec), st.attr)
		if rec.Best.Attr != st.attr || got != st.want {
			repOK = false
			break
		}
	}
	res.RepTime = time.Since(start)
	res.Reptile = repOK

	// Baselines walk the same steps over the raw group statistics.
	runBaseline := func(rank func(children []agg.Group, c core.Complaint) []int) (bool, time.Duration) {
		start := time.Now()
		for _, st := range steps {
			attrs := append(append([]string(nil), st.groupBy...), st.attr)
			// Canonicalize: groups keyed by attrs with the drill attr last.
			groups := agg.GroupBy(ds, attrs, issue.Measure)
			var children []agg.Group
			for _, g := range groups.Groups {
				ok := true
				for a, want := range st.tuple {
					if v, _ := g.Value(attrs, a); v != want {
						ok = false
						break
					}
				}
				if ok {
					children = append(children, g)
				}
			}
			order := rank(children, covidComplaint(issue, st.tuple))
			got, _ := children[order[0]].Value(attrs, st.attr)
			if got != st.want {
				return false, time.Since(start)
			}
		}
		return true, time.Since(start)
	}
	res.Sens, res.SensTime = runBaseline(baselines.Sensitivity)
	res.Support, res.SupTime = runBaseline(func(ch []agg.Group, _ core.Complaint) []int {
		return baselines.Support(ch)
	})
	return res
}

// attrsOfRec reconstructs the group-by attribute list of a recommendation's
// ranked groups (the drilled attribute is last).
func attrsOfRec(rec *core.Recommendation) []string {
	// GroupScore carries Vals aligned with the drill-down attrs; the engine
	// sorts the drilled hierarchy last, so the attr list is recoverable from
	// the best hierarchy evaluation. We reconstruct it from the ranked
	// group's arity via the session conventions in runCovidIssue.
	switch len(rec.Best.Ranked[0].Group.Vals) {
	case 2:
		return []string{"day", rec.Best.Attr}
	case 3:
		return []string{"day", "region", rec.Best.Attr}
	}
	panic("experiments: unexpected group arity")
}

// Fig13 runs all 30 issues of Tables 1–2 and aggregates accuracy and
// average runtime per method (Figure 13).
func Fig13(seed int64) ([]Fig13Result, *Table, *Table, *Table) {
	usBase := datasets.GenerateCovidUS(seed)
	glBase := datasets.GenerateCovidGlobal(seed)
	var results []Fig13Result
	for _, issue := range datasets.USIssues() {
		results = append(results, runCovidIssue(usBase, issue))
	}
	for _, issue := range datasets.GlobalIssues() {
		results = append(results, runCovidIssue(glBase, issue))
	}

	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return ""
	}
	t1 := &Table{Title: "Table 1: COVID-19 issues (US)", Header: []string{"ID", "Issue", "Reptile", "Sensitivity", "Support"}}
	t2 := &Table{Title: "Table 2: COVID-19 issues (global)", Header: []string{"ID", "Issue", "Reptile", "Sensitivity", "Support"}}
	var repHits, sensHits, supHits int
	var repTime, sensTime, supTime time.Duration
	for _, r := range results {
		target := t1
		if r.Issue.Dataset == "global" {
			target = t2
		}
		target.Add(r.Issue.ID, r.Issue.Title, mark(r.Reptile), mark(r.Sens), mark(r.Support))
		if r.Reptile {
			repHits++
		}
		if r.Sens {
			sensHits++
		}
		if r.Support {
			supHits++
		}
		repTime += r.RepTime
		sensTime += r.SensTime
		supTime += r.SupTime
	}
	n := len(results)
	t := &Table{
		Title:  "Figure 13: COVID-19 case study (accuracy of top result, avg runtime)",
		Header: []string{"method", "correct rate", "avg time"},
	}
	t.Add("Reptile", fmt.Sprintf("%d/%d (%.1f%%)", repHits, n, 100*float64(repHits)/float64(n)), repTime/time.Duration(n))
	t.Add("Sensitivity", fmt.Sprintf("%d/%d (%.1f%%)", sensHits, n, 100*float64(sensHits)/float64(n)), sensTime/time.Duration(n))
	t.Add("Support", fmt.Sprintf("%d/%d (%.1f%%)", supHits, n, 100*float64(supHits)/float64(n)), supTime/time.Duration(n))
	return results, t, t1, t2
}
