package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/factor"
	"repro/internal/fmatrix"
	"repro/internal/mat"
)

// Fig15Row is one measurement of the Appendix F per-cluster matrix
// operation comparison.
type Fig15Row struct {
	Hierarchies int
	Op          string
	Naive       time.Duration
	Factorised  time.Duration
}

// fig15Matrix builds the Appendix F configuration: d hierarchies, each a
// three-level chain whose leaf level has 10 values (so X is 10^d × 3d and
// each cluster Xᵢ is 10 × 3d, 10^{d-1} clusters in total).
func fig15Matrix(d int, rng *rand.Rand) *fmatrix.Matrix {
	srcs := make([]*factor.Source, d)
	for h := 0; h < d; h++ {
		paths := make([][]string, 10)
		for i := range paths {
			paths[i] = []string{
				fmt.Sprintf("h%d_top", h),
				fmt.Sprintf("h%d_mid", h),
				fmt.Sprintf("h%d_leaf%d", h, i),
			}
		}
		src, err := factor.NewSource(fmt.Sprintf("h%d", h), []string{
			fmt.Sprintf("h%d_a0", h), fmt.Sprintf("h%d_a1", h), fmt.Sprintf("h%d_a2", h),
		}, paths)
		if err != nil {
			panic(err)
		}
		srcs[h] = src
	}
	fz, err := factor.New(srcs, []int{3, 3, 3, 3, 3, 3, 3}[:d])
	if err != nil {
		panic(err)
	}
	var cols []fmatrix.Column
	for ai := 0; ai < fz.NumAttrs(); ai++ {
		vals, _ := fz.CountVals(ai)
		fv := make([]float64, len(vals))
		for i := range fv {
			fv[i] = rng.NormFloat64()
		}
		cols = append(cols, fmatrix.Column{Name: fmt.Sprintf("a%d", ai), Attr: ai, Vals: fv})
	}
	m, err := fmatrix.New(fz, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Fig15 measures per-cluster gram, left and right multiplication over every
// cluster, factorised vs naive slicing of the materialized matrix.
func Fig15(maxD int, seed int64) ([]Fig15Row, *Table) {
	if maxD <= 0 {
		maxD = 5
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []Fig15Row
	for d := 1; d <= maxD; d++ {
		m := fig15Matrix(d, rng)
		x, err := m.Materialize()
		if err != nil {
			panic(err)
		}
		cl, err := m.Clusters()
		if err != nil {
			panic(err)
		}
		G := cl.NumClusters()
		mcols := x.Cols

		// Pre-generate per-cluster random operands (excluded from timing).
		lvecs := make([][]float64, G)
		rvecs := make([][]float64, G)
		views := make([]*fmatrix.View, G)
		for c := 0; c < G; c++ {
			v, err := cl.View(c)
			if err != nil {
				panic(err)
			}
			views[c] = v
			lv := make([]float64, v.N)
			for i := range lv {
				lv[i] = rng.NormFloat64()
			}
			lvecs[c] = lv
			rv := make([]float64, mcols)
			for i := range rv {
				rv[i] = rng.NormFloat64()
			}
			rvecs[c] = rv
		}
		subs := make([]*mat.Matrix, G)
		for c, v := range views {
			sub := mat.New(v.N, mcols)
			copy(sub.Data, x.Data[v.Start*mcols:(v.Start+v.N)*mcols])
			subs[c] = sub
		}

		// Repeat the sweep over all clusters enough times to amortize timer
		// granularity and GC noise, then report the per-sweep time.
		reps := 1 + 50000/G
		timeReps := func(fn func()) time.Duration {
			total := timeIt(func() {
				for r := 0; r < reps; r++ {
					fn()
				}
			})
			return total / time.Duration(reps)
		}

		var sink float64
		tGramNaive := timeReps(func() {
			for c := range subs {
				sink += subs[c].Gram().At(0, 0)
			}
		})
		tGramFact := timeReps(func() {
			for _, v := range views {
				sink += v.Gram().At(0, 0)
			}
		})
		rows = append(rows, Fig15Row{d, "cluster-gram", tGramNaive, tGramFact})

		tLeftNaive := timeReps(func() {
			for c := range subs {
				sink += subs[c].TMulVec(lvecs[c])[0]
			}
		})
		tLeftFact := timeReps(func() {
			for c, v := range views {
				sink += v.TMulVec(lvecs[c])[0]
			}
		})
		rows = append(rows, Fig15Row{d, "cluster-leftmul", tLeftNaive, tLeftFact})

		tRightNaive := timeReps(func() {
			for c := range subs {
				sink += subs[c].MulVec(rvecs[c])[0]
			}
		})
		tRightFact := timeReps(func() {
			for c, v := range views {
				sink += v.MulVec(rvecs[c])[0]
			}
		})
		rows = append(rows, Fig15Row{d, "cluster-rightmul", tRightNaive, tRightFact})
		_ = sink
	}
	t := &Table{
		Title:  "Figure 15 (App. F): per-cluster matrix operations vs Lapack-style slicing",
		Header: []string{"d", "op", "naive", "factorised", "speedup"},
	}
	for _, r := range rows {
		t.Add(r.Hierarchies, r.Op, r.Naive, r.Factorised, ratio(r.Naive, r.Factorised))
	}
	return rows, t
}
