package experiments

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/datasets"
	"repro/internal/feature"
	"repro/internal/mlm"
)

// Fig16Row is one ΔAIC measurement of the Appendix K model-quality study.
type Fig16Row struct {
	Dataset string
	Model   string
	AIC     float64
	DeltaIC float64
}

// fitFig16Models fits the four Appendix K models on one dataset's group-by
// view and returns their AICs: Linear / Linear-f (with auxiliary features) /
// Multi-level / Multi-level-f.
func fitFig16Models(groups *agg.Result, spec feature.Spec, gfs []feature.GroupFeature, emIters int) (map[string]float64, error) {
	out := map[string]float64{}
	y := make([]float64, len(groups.Groups))
	for gi, g := range groups.Groups {
		y[gi] = g.Stats.Get(spec.Target)
	}
	starts := feature.ClusterStarts(groups)

	for _, withAux := range []bool{false, true} {
		s := spec
		var g []feature.GroupFeature
		if !withAux {
			s.Aux = nil
		} else {
			g = gfs
		}
		fs, err := feature.BuildWithGroupFeatures(groups, s, g)
		if err != nil {
			return nil, err
		}
		x := fs.DenseX(groups)
		suffix := ""
		if withAux {
			suffix = "-f"
		}
		lin, err := mlm.FitLinear(x, y)
		if err != nil {
			return nil, err
		}
		out["Linear"+suffix] = lin.AIC()
		backend, err := mlm.NewDense(x, starts)
		if err != nil {
			return nil, err
		}
		// Random intercepts: the classic multi-level design for comparing
		// against plain linear regression.
		zmask := make([]bool, x.Cols)
		zmask[0] = true
		bz, err := backend.SubsetCols(zmask)
		if err != nil {
			return nil, err
		}
		ml, err := mlm.FitEMZ(backend, bz, y, mlm.Options{Iterations: emIters})
		if err != nil {
			return nil, err
		}
		out["Multi-level"+suffix] = ml.AIC(backend, bz, y)
	}
	return out, nil
}

// Fig16Models lists the Appendix K models in presentation order.
var Fig16Models = []string{"Linear", "Linear-f", "Multi-level", "Multi-level-f"}

// Fig16 evaluates the four models on the FIST and Vote datasets and reports
// ΔAIC relative to the best model per dataset.
func Fig16(emIters int, seed int64) ([]Fig16Row, *Table) {
	if emIters <= 0 {
		emIters = 20
	}
	var rows []Fig16Row

	// FIST: mean severity per (year, region, district, village) with the
	// rainfall auxiliary joined on (village, year) — village-level mean as a
	// plain auxiliary feature, the per-year values as a group feature.
	fist := datasets.GenerateFIST(seed)
	fistGroups := agg.GroupBy(fist.DS, []string{"year", "region", "district", "village"}, "severity")
	fistSpec := feature.Spec{
		Target: agg.Mean,
		Aux:    []feature.Aux{{Name: "rainfall-village", Table: fist.Rainfall, JoinAttr: "village", Measure: "rainfall"}},
	}
	fistGF := []feature.GroupFeature{
		feature.AuxGroupFeature("rainfall", fist.Rainfall, []string{"village", "year"}, "rainfall"),
	}
	fistAIC, err := fitFig16Models(fistGroups, fistSpec, fistGF, emIters)
	if err != nil {
		panic(err)
	}
	rows = append(rows, deltaRows("FIST", fistAIC)...)

	// Vote: 2020 Trump share per (state, county) with the 2016 share as the
	// auxiliary feature.
	vote := datasets.GenerateVote(seed)
	voteGroups := agg.GroupBy(vote.DS, []string{"state", "county"}, "pct2020")
	voteSpec := feature.Spec{
		Target: agg.Mean,
		Aux:    []feature.Aux{{Name: "pct2016", Table: vote.Aux2016, JoinAttr: "county", Measure: "pct2016"}},
	}
	voteAIC, err := fitFig16Models(voteGroups, voteSpec, nil, emIters)
	if err != nil {
		panic(err)
	}
	rows = append(rows, deltaRows("Vote", voteAIC)...)

	t := &Table{
		Title:  "Figure 16 (App. K): model quality, ΔAIC per dataset (lower is better; >10 is substantial)",
		Header: []string{"dataset", "model", "AIC", "ΔAIC"},
	}
	for _, r := range rows {
		t.Add(r.Dataset, r.Model, fmt.Sprintf("%.1f", r.AIC), fmt.Sprintf("%.1f", r.DeltaIC))
	}
	return rows, t
}

func deltaRows(dataset string, aic map[string]float64) []Fig16Row {
	best := aic[Fig16Models[0]]
	for _, m := range Fig16Models {
		if aic[m] < best {
			best = aic[m]
		}
	}
	var rows []Fig16Row
	for _, m := range Fig16Models {
		rows = append(rows, Fig16Row{Dataset: dataset, Model: m, AIC: aic[m], DeltaIC: aic[m] - best})
	}
	return rows
}
