package experiments

import (
	"fmt"
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/feature"
	"repro/internal/mat"
)

// Fig18Row holds one county's margin gains under the two Appendix N models.
type Fig18Row struct {
	County      string
	Pct2016     float64
	Pct2020     float64
	GainModel1  float64 // default features only
	GainModel2  float64 // default + 2016 auxiliary
	GainMissing float64 // model 2 on the missing-records variant
}

// Fig18Summary aggregates the case-study diagnostics.
type Fig18Summary struct {
	// CorrModel2ChangeGain is the correlation between each county's
	// 2016→2020 share change and its model-2 margin gain; Appendix N
	// interprets model 2 as "calculating the change of percentage of vote"
	// so this should be strongly negative (big drops → big repair gains).
	CorrModel2ChangeGain float64
	// MissingTargets are the counties whose votes were halved.
	MissingTargets []string
	// MissingTopHits counts how many injected counties appear in the top 10
	// gains of the missing-records variant.
	MissingTopHits int
}

// georgiaGains runs a "Georgia share too low" complaint and returns each
// county's margin gain (the improvement in the complaint after repairing
// that county).
func georgiaGains(v *datasets.Vote, withAux bool, sum bool) map[string]float64 {
	opts := core.Options{EMIterations: 15, Trainer: core.TrainerNaive, Workers: Workers}
	if withAux {
		opts.Aux = []feature.Aux{{Name: "pct2016", Table: v.Aux2016, JoinAttr: "county", Measure: "pct2016"}}
		if sum {
			// The missing-records variant complains about total votes; the
			// 2016 turnout is the predictive signal for county vote counts.
			opts.Aux = append(opts.Aux, feature.Aux{Name: "votes2016", Table: v.Aux2016, JoinAttr: "county", Measure: "votes2016"})
		}
	}
	eng, err := core.NewEngine(v.DS, opts)
	if err != nil {
		panic(err)
	}
	sess, err := eng.NewSession([]string{"state"})
	if err != nil {
		panic(err)
	}
	c := core.Complaint{
		Agg:       agg.Mean,
		Measure:   "pct2020",
		Tuple:     data.Predicate{"state": "Georgia"},
		Direction: core.TooLow,
	}
	if sum {
		c = core.Complaint{
			Agg:       agg.Sum,
			Measure:   "votes2020",
			Tuple:     data.Predicate{"state": "Georgia"},
			Direction: core.TooLow,
		}
	}
	rec, err := sess.Recommend(c)
	if err != nil {
		panic(err)
	}
	gains := make(map[string]float64)
	for _, gs := range rec.Best.Ranked {
		county := gs.Group.Vals[len(gs.Group.Vals)-1]
		gains[county] = gs.Gain
	}
	return gains
}

// Fig18 reproduces the Appendix N Georgia case study: margin gains with the
// default model, with the 2016 auxiliary model, and with injected missing
// records.
func Fig18(seed int64) ([]Fig18Row, Fig18Summary, *Table) {
	v := datasets.GenerateVote(seed)
	g1 := georgiaGains(v, false, false)
	g2 := georgiaGains(v, true, false)

	// Missing-records variant (Figure 18h/18i): halve votes in five
	// counties, complain that total votes are too low, use model 2.
	targets := append([]string(nil), v.GeorgiaCounties[10:15]...)
	vMissing := v.InjectMissingVotes(targets)
	gm := georgiaGains(vMissing, true, true)

	// County-level shares for context.
	pct20 := map[string]float64{}
	cc := v.DS.Dim("county")
	p20 := v.DS.Measure("pct2020")
	for i := range cc {
		pct20[cc[i]] = p20[i]
	}
	pct16 := map[string]float64{}
	ac := v.Aux2016.Dim("county")
	p16 := v.Aux2016.Measure("pct2016")
	for i := range ac {
		pct16[ac[i]] = p16[i]
	}

	var rows []Fig18Row
	var changes, gains2 []float64
	for _, county := range v.GeorgiaCounties {
		r := Fig18Row{
			County:      county,
			Pct2016:     pct16[county],
			Pct2020:     pct20[county],
			GainModel1:  g1[county],
			GainModel2:  g2[county],
			GainMissing: gm[county],
		}
		rows = append(rows, r)
		changes = append(changes, r.Pct2020-r.Pct2016)
		gains2 = append(gains2, r.GainModel2)
	}
	summary := Fig18Summary{
		CorrModel2ChangeGain: mat.PearsonCorr(changes, gains2),
		MissingTargets:       targets,
	}
	// Top-10 gains in the missing variant.
	byMissing := append([]Fig18Row(nil), rows...)
	sort.Slice(byMissing, func(a, b int) bool { return byMissing[a].GainMissing > byMissing[b].GainMissing })
	top := map[string]bool{}
	for i := 0; i < 10 && i < len(byMissing); i++ {
		top[byMissing[i].County] = true
	}
	for _, c := range targets {
		if top[c] {
			summary.MissingTopHits++
		}
	}

	t := &Table{
		Title:  "Figure 18 (App. N): Georgia margin gains (top 10 by model-2 gain)",
		Header: []string{"county", "pct2016", "pct2020", "gain model1", "gain model2", "gain missing-variant"},
	}
	byG2 := append([]Fig18Row(nil), rows...)
	sort.Slice(byG2, func(a, b int) bool { return byG2[a].GainModel2 > byG2[b].GainModel2 })
	for i := 0; i < 10 && i < len(byG2); i++ {
		r := byG2[i]
		t.Add(r.County, fmt.Sprintf("%.1f", r.Pct2016), fmt.Sprintf("%.1f", r.Pct2020),
			fmt.Sprintf("%.3f", r.GainModel1), fmt.Sprintf("%.3f", r.GainModel2), fmt.Sprintf("%.3f", r.GainMissing))
	}
	t.Add("corr(2016→2020 change, model-2 gain)", "", "", "", fmt.Sprintf("%.3f", summary.CorrModel2ChangeGain), "")
	t.Add("missing-record counties in top-10", "", "", "", "", fmt.Sprintf("%d/%d", summary.MissingTopHits, len(targets)))
	return rows, summary, t
}
