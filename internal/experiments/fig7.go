package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/factor"
	"repro/internal/fmatrix"
	"repro/internal/mat"
)

// Fig7Row is one measurement of Figure 7: a matrix operation at d
// hierarchies, comparing the Lapack-style implementation over the
// materialized matrix with the factorised implementation.
type Fig7Row struct {
	Hierarchies int
	Op          string
	Naive       time.Duration
	Factorised  time.Duration
}

// flatSource builds a single-attribute hierarchy with w values.
func flatSource(name string, w int) *factor.Source {
	paths := make([][]string, w)
	for i := range paths {
		paths[i] = []string{fmt.Sprintf("%s_v%02d", name, i)}
	}
	src, err := factor.NewSource(name, []string{name}, paths)
	if err != nil {
		panic(err)
	}
	return src
}

// fig7Matrix builds the Figure 7 configuration: d single-attribute
// hierarchies of cardinality w, three feature columns per attribute, so X is
// w^d × 3d.
func fig7Matrix(d, w int, rng *rand.Rand) *fmatrix.Matrix {
	srcs := make([]*factor.Source, d)
	for h := 0; h < d; h++ {
		srcs[h] = flatSource(fmt.Sprintf("h%d", h), w)
	}
	fz, err := factor.New(srcs, nil)
	if err != nil {
		panic(err)
	}
	var cols []fmatrix.Column
	for ai := 0; ai < fz.NumAttrs(); ai++ {
		vals, _ := fz.CountVals(ai)
		for c := 0; c < 3; c++ {
			fv := make([]float64, len(vals))
			for i := range fv {
				fv[i] = rng.NormFloat64()
			}
			cols = append(cols, fmatrix.Column{Name: fmt.Sprintf("a%d_f%d", ai, c), Attr: ai, Vals: fv})
		}
	}
	m, err := fmatrix.New(fz, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Fig7 measures matrix materialization, gram matrix, left multiplication and
// right multiplication for d = 1..maxD hierarchies (paper: w = 10, d up to
// 7; the materialized matrix is w^d × 3d, so memory bounds maxD here).
func Fig7(maxD int, seed int64) ([]Fig7Row, *Table) {
	if maxD <= 0 {
		maxD = 6
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []Fig7Row
	for d := 1; d <= maxD; d++ {
		m := fig7Matrix(d, 10, rng)
		var x *mat.Matrix
		tMatNaive := timeIt(func() {
			var err error
			x, err = m.Materialize()
			if err != nil {
				panic(err)
			}
		})
		// Factorised "materialization" is the construction of the
		// f-representation itself, which the factorizer already holds; we
		// measure rebuilding the per-column aggregates.
		tMatFact := timeIt(func() {
			for ai := 0; ai < m.F.NumAttrs(); ai++ {
				m.F.CountVals(ai)
			}
		})
		rows = append(rows, Fig7Row{d, "materialize", tMatNaive, tMatFact})

		var g1, g2 *mat.Matrix
		tGramNaive := timeIt(func() { g1 = x.Gram() })
		tGramFact := timeIt(func() { g2 = m.Gram() })
		if !g1.EqualApprox(g2, 1e-6*(1+m.N())) {
			panic("fig7: gram mismatch")
		}
		rows = append(rows, Fig7Row{d, "gram", tGramNaive, tGramFact})

		// Left multiplication with a random 1 × w^d matrix.
		b := mat.New(1, x.Rows)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		var l1, l2 *mat.Matrix
		tLeftNaive := timeIt(func() { l1 = b.Mul(x) })
		tLeftFact := timeIt(func() {
			var err error
			l2, err = m.LeftMul(b)
			if err != nil {
				panic(err)
			}
		})
		if !l1.EqualApprox(l2, 1e-5*(1+m.N())) {
			panic("fig7: left multiplication mismatch")
		}
		rows = append(rows, Fig7Row{d, "leftmul", tLeftNaive, tLeftFact})

		// Right multiplication with a random 3d × 1 matrix.
		a := mat.New(x.Cols, 1)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		var r1, r2 *mat.Matrix
		tRightNaive := timeIt(func() { r1 = x.Mul(a) })
		tRightFact := timeIt(func() {
			var err error
			r2, err = m.RightMul(a)
			if err != nil {
				panic(err)
			}
		})
		if !r1.EqualApprox(r2, 1e-6*float64(x.Cols)) {
			panic("fig7: right multiplication mismatch")
		}
		rows = append(rows, Fig7Row{d, "rightmul", tRightNaive, tRightFact})
	}
	t := &Table{
		Title:  "Figure 7: matrix operation runtimes vs Lapack-style implementation (w=10)",
		Header: []string{"d", "op", "naive", "factorised", "speedup"},
	}
	for _, r := range rows {
		t.Add(r.Hierarchies, r.Op, r.Naive, r.Factorised, ratio(r.Naive, r.Factorised))
	}
	return rows, t
}
