package experiments

import (
	"fmt"
	"time"

	"repro/internal/factor"
)

// Fig8Row is one measurement of the Figure 8 multi-query execution
// comparison: the work-shared plan vs the serial (LMFAO-style) plan that
// materializes cross-hierarchy COF products.
type Fig8Row struct {
	Cardinality int
	Shared      time.Duration
	Serial      time.Duration
}

// chainSource builds a t-level hierarchy with roughly w leaves arranged as a
// balanced tree.
func chainSource(name string, t, w int) *factor.Source {
	attrs := make([]string, t)
	for l := range attrs {
		attrs[l] = fmt.Sprintf("%s_a%d", name, l)
	}
	// Fanout per level so that fanout^t ≈ w.
	fan := 1
	for pow(fan+1, t) <= w {
		fan++
	}
	var paths [][]string
	var build func(prefix []string, level, id int)
	next := 0
	build = func(prefix []string, level, id int) {
		if level == t {
			paths = append(paths, append([]string(nil), prefix...))
			return
		}
		k := fan
		if level == t-1 {
			// Stretch the leaf level toward the requested cardinality.
			k = fan + (w-pow(fan, t))/max(1, pow(fan, t-1))
			if k < 1 {
				k = 1
			}
		}
		for c := 0; c < k; c++ {
			next++
			build(append(prefix, fmt.Sprintf("%s_l%d_%d", name, level, next)), level+1, next)
		}
	}
	build(nil, 0, 0)
	src, err := factor.NewSource(name, attrs, paths)
	if err != nil {
		panic(err)
	}
	return src
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig8 sweeps the attribute cardinality and measures computing the full set
// of decomposed aggregates (COUNT, TOTAL and every COF pair): the
// work-shared plan reuses the chains' extension counts and keeps
// cross-hierarchy COF factorised; the serial baseline rescans per query and
// materializes the cross products.
func Fig8(cards []int, seed int64) ([]Fig8Row, *Table) {
	if len(cards) == 0 {
		cards = []int{200, 400, 800, 1600}
	}
	_ = seed
	var rows []Fig8Row
	for _, w := range cards {
		srcs := []*factor.Source{
			chainSource("h0", 3, w),
			chainSource("h1", 3, w),
			chainSource("h2", 3, w),
		}
		fz, err := factor.New(srcs, []int{3, 3, 3})
		if err != nil {
			panic(err)
		}
		var shared, serial *factor.Aggregates
		tShared := timeIt(func() { shared = fz.ComputeAggregates() })
		tSerial := timeIt(func() { serial = fz.ComputeAggregatesSerial() })
		// Cross-check the two plans.
		for k, v := range shared.CofChecksums {
			s := serial.CofChecksums[k]
			if s < v*(1-1e-9)-1e-9 || s > v*(1+1e-9)+1e-9 {
				panic(fmt.Sprintf("fig8: checksum mismatch at %v: %v vs %v", k, v, s))
			}
		}
		rows = append(rows, Fig8Row{Cardinality: w, Shared: tShared, Serial: tSerial})
	}
	t := &Table{
		Title:  "Figure 8: multi-query execution, work-shared vs serial (LMFAO-style)",
		Header: []string{"cardinality", "serial", "shared", "speedup"},
	}
	for _, r := range rows {
		t.Add(r.Cardinality, r.Serial, r.Shared, ratio(r.Serial, r.Shared))
	}
	return rows, t
}
