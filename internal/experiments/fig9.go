package experiments

import (
	"time"

	"repro/internal/factor"
)

// Fig9Row is one measurement of the §5.1.3 drill-down optimization
// comparison: the total cost of three successive Reptile invocations (each
// evaluating both candidate hierarchies) under one recomputation mode.
type Fig9Row struct {
	PreDrilledB int
	Mode        factor.DrillMode
	Total       time.Duration
}

// Fig9 reproduces the drill-down optimization experiment: two hierarchies
// A and B with six attributes each; A starts at depth 3 and is drilled three
// times; B is pre-drilled to n attributes. Each invocation evaluates
// drilling every hierarchy (clone + drill + compute decomposed aggregates),
// then commits the drill on A. Static recomputes everything, Dynamic reuses
// the untouched hierarchies, Cache+Dynamic additionally reuses chains built
// by earlier invocations.
func Fig9(leafCount int, seed int64) ([]Fig9Row, *Table) {
	if leafCount <= 0 {
		leafCount = 30000
	}
	_ = seed
	var rows []Fig9Row
	for _, n := range []int{3, 4, 5} {
		for _, mode := range []factor.DrillMode{factor.Static, factor.Dynamic, factor.CacheDynamic} {
			srcA := chainSource("A", 6, leafCount)
			srcB := chainSource("B", 6, leafCount)
			fz, err := factor.New([]*factor.Source{srcA, srcB}, []int{3, n})
			if err != nil {
				panic(err)
			}
			fz.SetMode(mode)
			total := timeIt(func() {
				for invocation := 0; invocation < 3; invocation++ {
					// Evaluate each candidate drill-down.
					for _, name := range []string{"A", "B"} {
						pos, ok := fz.OrderPos(name)
						if !ok || !fz.CanDrill(pos) {
							continue
						}
						cand := fz.Clone()
						if err := cand.DrillDown(pos); err != nil {
							panic(err)
						}
						cand.ComputeAggregates()
					}
					// Commit the drill on A.
					pos, _ := fz.OrderPos("A")
					if err := fz.DrillDown(pos); err != nil {
						panic(err)
					}
					fz.ComputeAggregates()
				}
			})
			rows = append(rows, Fig9Row{PreDrilledB: n, Mode: mode, Total: total})
		}
	}
	t := &Table{
		Title:  "Figure 9: drill-down optimization (3 invocations drilling A, B pre-drilled to n)",
		Header: []string{"n (B depth)", "mode", "total"},
	}
	for _, r := range rows {
		t.Add(r.PreDrilledB, r.Mode.String(), r.Total)
	}
	return rows, t
}
