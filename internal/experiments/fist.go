package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/feature"
)

// FISTResult is the outcome of one user-study scenario.
type FISTResult struct {
	Scenario datasets.FISTComplaint
	Resolved bool
	Detail   string
}

// FISTStudy replays the 22 scripted complaints of the §5.4 user study
// against the simulated survey data (all errors present simultaneously, as
// in the real deployment) and reports how many are resolved. The paper's
// outcome is 20/22 with the two designed failures of Appendix M.
func FISTStudy(emIters int, seed int64) ([]FISTResult, *Table) {
	if emIters <= 0 {
		emIters = 15
	}
	f := datasets.GenerateFIST(seed)
	eng, err := core.NewEngine(f.DS, core.Options{
		EMIterations: emIters,
		Trainer:      core.TrainerNaive,
		Workers:      Workers,
		GroupFeatures: []feature.GroupFeature{
			feature.AuxGroupFeature("rainfall", f.Rainfall, []string{"village", "year"}, "rainfall"),
		},
	})
	if err != nil {
		panic(err)
	}

	var results []FISTResult
	for _, sc := range f.Study {
		res := FISTResult{Scenario: sc, Resolved: true}
		for si, step := range sc.Steps {
			sess, err := eng.NewSession(step.GroupBy)
			if err != nil {
				panic(err)
			}
			rec, err := sess.Recommend(step.Complaint)
			if err != nil {
				res.Resolved = false
				res.Detail = fmt.Sprintf("step %d: %v", si+1, err)
				break
			}
			var hr *core.HierarchyResult
			for i := range rec.All {
				if rec.All[i].Hierarchy == step.Hierarchy && rec.All[i].Attr == step.Attr {
					hr = &rec.All[i]
				}
			}
			if hr == nil {
				res.Resolved = false
				res.Detail = fmt.Sprintf("step %d: hierarchy %s/%s not evaluated", si+1, step.Hierarchy, step.Attr)
				break
			}
			top := hr.Ranked[0]
			topVal := top.Group.Vals[len(top.Group.Vals)-1]
			ok := false
			if step.RequireAll {
				// A single top-1 recommendation cannot name every required
				// group — the Appendix M joint-repair failure.
				ok = len(step.Want) == 1 && topVal == step.Want[0]
				res.Detail = fmt.Sprintf("needs %v fixed together; top-1 = %s", step.Want, topVal)
			} else if len(step.Want) == 0 {
				// Ambiguous scenario: no single correct answer exists.
				ok = false
				res.Detail = fmt.Sprintf("ambiguous; top-1 = %s", topVal)
			} else {
				for _, w := range step.Want {
					if topVal == w {
						ok = true
					}
				}
				if !ok {
					res.Detail = fmt.Sprintf("step %d: top-1 = %s, want %v", si+1, topVal, step.Want)
				}
			}
			if !ok {
				res.Resolved = false
				break
			}
		}
		results = append(results, res)
	}

	resolved := 0
	t := &Table{
		Title:  "FIST user study (§5.4): 22 complaints",
		Header: []string{"#", "complaint", "resolved", "note"},
	}
	for _, r := range results {
		mark := ""
		if r.Resolved {
			mark = "yes"
			resolved++
		}
		t.Add(r.Scenario.ID, r.Scenario.Desc, mark, r.Detail)
	}
	t.Add("", fmt.Sprintf("TOTAL resolved: %d/%d", resolved, len(results)), "", "")
	return results, t
}
