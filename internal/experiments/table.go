// Package experiments contains one runner per table and figure of the
// paper's evaluation (§5, Appendices F, K–N). Each runner returns typed rows
// plus a rendered text table, so the same code backs the unit tests, the
// bench harness in bench_test.go and cmd/experiments.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row, stringifying the cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// timeIt measures one function call.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// ratio renders a speedup factor.
func ratio(naive, fact time.Duration) string {
	if fact <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(naive)/float64(fact))
}
