package experiments

// Workers is the engine worker-pool size every experiment runner passes to
// core.Options.Workers: 0 (the default) lets the engine pick
// runtime.NumCPU(), 1 forces the sequential evaluation path (useful when an
// experiment's timing column should reflect single-threaded work). Set it
// before invoking a runner (cmd/experiments wires its -workers flag here).
// Parallel evaluation is deterministic, so only timing columns can differ.
var Workers int
