package factor

// This file implements the multi-query execution of §4.3 / Appendix I for
// the decomposed aggregates, plus the serial baseline used by the Figure 8
// comparison against LMFAO.
//
// The work-shared plan exploits two structures:
//   - within a hierarchy, COUNT at level l is the child-sum of COUNT at
//     level l+1 (computed once as Ext during chain construction and shared
//     by every query), and
//   - across hierarchies, COF factorises as Count_i · Count_j / SufTotal_j
//     and is never materialized.
//
// The serial baseline recomputes each aggregate from the source paths
// without sharing, and materializes COF for every attribute pair including
// cross-hierarchy pairs — the quadratic blowup the independence optimization
// avoids.

// Aggregates holds materialized decomposed-aggregate results. CofChecksums
// exists so benchmarks consume every COF cell (preventing dead-code
// elimination) while keeping the result compact.
type Aggregates struct {
	SufTotal     []float64
	Counts       [][]float64
	CofChecksums map[[2]int]float64
	// CofMaps is only populated by the serial baseline, which materializes
	// every pair. Keys are (value-index-of-i, value-index-of-j).
	CofMaps map[[2]int]map[[2]int]float64
}

// ComputeAggregates evaluates TOTAL and COUNT for every attribute and COF
// for every attribute pair with the work-shared plan. Same-hierarchy COF is
// traversed through the chain; cross-hierarchy COF is consumed in its
// factorised form (an O(w) pair of sums rather than an O(w²) product).
func (f *Factorizer) ComputeAggregates() *Aggregates {
	d := f.NumAttrs()
	out := &Aggregates{
		SufTotal:     make([]float64, d),
		Counts:       make([][]float64, d),
		CofChecksums: make(map[[2]int]float64),
	}
	// COUNT via the shared Ext values.
	colSums := make([]float64, d)
	for i := 0; i < d; i++ {
		out.SufTotal[i] = f.SufTotal(i)
		_, counts := f.CountVals(i)
		out.Counts[i] = counts
		var s float64
		for _, c := range counts {
			s += c
		}
		colSums[i] = s
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if f.SameHierarchy(i, j) {
				var s float64
				f.Cof(i, j, func(vi, vj int, count float64) { s += count })
				out.CofChecksums[[2]int{i, j}] = s
			} else {
				// Factorised: the checksum of COF(i,j) is
				// Σ_a Σ_b Count_i[a]·Count_j[b]/SufTotal_j
				// = colSums[i] · colSums[j] / SufTotal_j.
				out.CofChecksums[[2]int{i, j}] = colSums[i] * colSums[j] / out.SufTotal[j]
			}
		}
	}
	return out
}

// ComputeAggregatesSerial is the Figure 8 baseline: each COUNT is recomputed
// from the source paths without reusing the chains' Ext, and COF is
// materialized for every pair, including cross-hierarchy pairs.
func (f *Factorizer) ComputeAggregatesSerial() *Aggregates {
	d := f.NumAttrs()
	out := &Aggregates{
		SufTotal:     make([]float64, d),
		Counts:       make([][]float64, d),
		CofChecksums: make(map[[2]int]float64),
		CofMaps:      make(map[[2]int]map[[2]int]float64),
	}
	// Recompute COUNT per attribute by rescanning the hierarchy's paths
	// (no sharing of Ext across levels).
	for i := 0; i < d; i++ {
		a := f.attrs[i]
		ch := f.Chain(a.Hier)
		counts := make([]float64, len(ch.Levels[a.Level].Vals))
		pa := f.prodAfter[a.Hier]
		leaves := ch.Leaves()
		for leaf := 0; leaf < leaves; leaf++ {
			counts[ch.AncestorIdx(a.Level, leaf)] += pa
		}
		out.Counts[i] = counts
		var s float64
		for _, c := range counts {
			s += c
		}
		out.SufTotal[i] = f.leaves[a.Hier] * pa
		_ = s
	}
	// Materialize COF for every pair. Same-hierarchy pairs stay sparse
	// (linear in the level size); cross-hierarchy pairs are materialized as
	// the dense |dom(i)|×|dom(j)| product the independence optimization
	// avoids.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			var s float64
			if f.SameHierarchy(i, j) {
				m := make(map[[2]int]float64)
				f.Cof(i, j, func(vi, vj int, count float64) {
					m[[2]int{vi, vj}] += count
				})
				for _, v := range m {
					s += v
				}
				out.CofMaps[[2]int{i, j}] = m
			} else {
				ci, cj := out.Counts[i], out.Counts[j]
				st := out.SufTotal[j]
				dense := make([]float64, len(ci)*len(cj))
				for vi := range ci {
					row := dense[vi*len(cj) : (vi+1)*len(cj)]
					for vj := range cj {
						v := ci[vi] * cj[vj] / st
						row[vj] = v
						s += v
					}
				}
				// The dense product is the baseline's materialized result;
				// only its checksum is retained to bound memory across the
				// cardinality sweep.
			}
			out.CofChecksums[[2]int{i, j}] = s
		}
	}
	return out
}
