package factor

import (
	"testing"
)

func benchSources(b *testing.B, w int) []*Source {
	b.Helper()
	var srcs []*Source
	for h := 0; h < 3; h++ {
		srcs = append(srcs, benchChainSource(b, h, w))
	}
	return srcs
}

func benchChainSource(b *testing.B, h, w int) *Source {
	b.Helper()
	attrs := []string{name(h, 0), name(h, 1), name(h, 2)}
	var paths [][]string
	id := 0
	for p := 0; p < w/10; p++ {
		for m := 0; m < 2; m++ {
			for c := 0; c < 5; c++ {
				id++
				paths = append(paths, []string{
					valName(h, 0, p), valName(h, 1, p*2+m), valName(h, 2, id),
				})
			}
		}
	}
	src, err := NewSource(name(h, 99), attrs, paths)
	if err != nil {
		b.Fatal(err)
	}
	return src
}

func name(h, l int) string { return "h" + string(rune('a'+h)) + "_a" + string(rune('0'+l)) }
func valName(h, l, i int) string {
	return name(h, l) + "_" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func BenchmarkBuildChain(b *testing.B) {
	srcs := benchSources(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildChain(srcs[0], 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeAggregatesShared(b *testing.B) {
	srcs := benchSources(b, 2000)
	f, err := New(srcs, []int{3, 3, 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ComputeAggregates()
	}
}

func BenchmarkComputeAggregatesSerial(b *testing.B) {
	srcs := benchSources(b, 2000)
	f, err := New(srcs, []int{3, 3, 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ComputeAggregatesSerial()
	}
}

func BenchmarkDrillDownDynamic(b *testing.B) {
	srcs := benchSources(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(srcs, []int{2, 2, 2})
		if err != nil {
			b.Fatal(err)
		}
		f.SetMode(Dynamic)
		if err := f.DrillDown(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowIterator(b *testing.B) {
	srcs := []*Source{benchChainSource(b, 0, 100), benchChainSource(b, 1, 100)}
	f, err := New(srcs, []int{3, 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := f.Rows()
		for it.Next() != nil {
		}
	}
}

func BenchmarkBuildPlan(b *testing.B) {
	srcs := benchSources(b, 1000)
	f, err := New(srcs, []int{3, 3, 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.BuildPlan()
	}
}
