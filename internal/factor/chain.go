// Package factor implements Reptile's factorised representation of the
// attribute matrix (§2.2, §3.4, Appendix C): per-hierarchy chain relations in
// BCNF, the decomposed count aggregates TOTAL / COUNT / COF (§4.2.1) computed
// with the multi-query plan of Appendix I, a row iterator over the implicit
// cross-product matrix (Algorithm 1), and the drill-down update strategies
// Static / Dynamic / Cache+Dynamic of §4.4 and Appendix J.
//
// Attributes are indexed 0..d-1 left to right, hierarchy by hierarchy (in
// hierarchy order, the drill-down hierarchy last) and least to most specific
// within a hierarchy. With that convention the paper's suffix aggregates
// translate to:
//
//	SufTotal(i) = TOTAL_{A_i}: size of the join of every relation at or
//	              right of attribute i.
//	Count(i)[v] = COUNT_{A_i}[v]: multiplicity of value v in that join.
//	COF(i,j)    = per-(a_i, a_j) counts; cross-hierarchy COF factorises as
//	              Count(i)[a]·Count(j)[b]/SufTotal(j) and is never
//	              materialized.
package factor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
)

// Source is the full, immutable definition of one hierarchy: its attribute
// chain (least → most specific) and the set of distinct full-depth paths.
// Paths are kept sorted lexicographically; all derived chains are prefixes.
type Source struct {
	Name  string
	Attrs []string
	Paths [][]string // sorted, deduplicated; each has len == len(Attrs)
}

// NewGeneralSource builds a source without enforcing functional dependencies
// inside the hierarchy — the general factorised representation of Appendix
// G. The chain then stores one node per (parent, value) occurrence, so the
// same value string may appear as several nodes on a level; aggregation
// results become ordered per-occurrence lists (Example 9's ordered COUNT)
// rather than per-value maps, and ValueIndex/LeafIndex resolve to the first
// occurrence only. Every matrix operation works unchanged because the
// operators address nodes by index, never by value.
func NewGeneralSource(name string, attrs []string, paths [][]string) (*Source, error) {
	return newSource(name, attrs, paths, false)
}

// NewSource builds a source from raw paths, sorting and deduplicating them.
func NewSource(name string, attrs []string, paths [][]string) (*Source, error) {
	return newSource(name, attrs, paths, true)
}

func newSource(name string, attrs []string, paths [][]string, enforceFD bool) (*Source, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("factor: hierarchy %q has no attributes", name)
	}
	for _, p := range paths {
		if len(p) != len(attrs) {
			return nil, fmt.Errorf("factor: hierarchy %q: path %v has %d values, want %d", name, p, len(p), len(attrs))
		}
	}
	sorted := make([][]string, len(paths))
	copy(sorted, paths)
	sort.Slice(sorted, func(a, b int) bool { return lessPath(sorted[a], sorted[b]) })
	var dedup [][]string
	for i, p := range sorted {
		if i > 0 && equalPath(p, sorted[i-1]) {
			continue
		}
		dedup = append(dedup, p)
	}
	if enforceFD {
		// Enforce the FD: the most specific value determines the whole
		// path, so no leaf value may appear on two distinct paths.
		leafSeen := make(map[string]int, len(dedup))
		for i, p := range dedup {
			leaf := p[len(p)-1]
			if j, ok := leafSeen[leaf]; ok {
				return nil, fmt.Errorf("factor: hierarchy %q: FD violation: leaf %q on paths %v and %v", name, leaf, dedup[j], p)
			}
			leafSeen[leaf] = i
		}
		// The FD must hold at every level, not just at the leaves.
		for lvl := 1; lvl < len(attrs); lvl++ {
			parent := make(map[string]string)
			for _, p := range dedup {
				if prev, ok := parent[p[lvl]]; ok && prev != p[lvl-1] {
					return nil, fmt.Errorf("factor: hierarchy %q: FD violation: %s=%q under both %q and %q",
						name, attrs[lvl], p[lvl], prev, p[lvl-1])
				}
				parent[p[lvl]] = p[lvl-1]
			}
		}
	}
	return &Source{Name: name, Attrs: attrs, Paths: dedup}, nil
}

// PathProvider is implemented by precomputed-aggregate attachments
// (data.Dataset.SetRollup, e.g. internal/cube's Cube) that can enumerate a
// hierarchy's distinct full-depth paths without scanning rows. ok=false
// means the provider does not cover the hierarchy; callers fall back to a
// row scan.
type PathProvider interface {
	HierarchyPaths(h data.Hierarchy) ([][]string, bool)
}

// SourceFromDataset extracts the distinct hierarchy paths present in d.
// When the dataset carries a materialized cube covering the hierarchy, the
// paths come from its cells in O(paths) instead of a row scan; the derived
// source is identical either way (NewSource sorts and deduplicates).
func SourceFromDataset(d *data.Dataset, h data.Hierarchy) (*Source, error) {
	return NewSource(h.Name, h.Attrs, DistinctPaths(d, h))
}

// DistinctPaths returns the distinct full-depth paths of hierarchy h present
// in d, in no particular order. Sharded engines union the per-shard path sets
// before building the source; NewSource's sort+dedup makes the union
// identical to the whole-dataset extraction.
func DistinctPaths(d *data.Dataset, h data.Hierarchy) [][]string {
	if pp, ok := d.Rollup().(PathProvider); ok {
		if paths, ok := pp.HierarchyPaths(h); ok {
			return paths
		}
	}
	if paths, ok := distinctPathsCoded(d, h); ok {
		return paths
	}
	if paths, ok := distinctPathsStreamed(d, h); ok {
		return paths
	}
	cols := make([][]string, len(h.Attrs))
	for i, a := range h.Attrs {
		cols[i] = d.Dim(a)
	}
	seen := make(map[string][]string)
	for row := 0; row < d.NumRows(); row++ {
		vals := make([]string, len(h.Attrs))
		for i := range h.Attrs {
			vals[i] = cols[i][row]
		}
		seen[data.EncodeKey(vals)] = vals
	}
	paths := make([][]string, 0, len(seen))
	for _, p := range seen {
		paths = append(paths, p)
	}
	return paths
}

// distinctPathsCoded extracts the hierarchy's distinct paths over dictionary
// codes when every attribute carries an encoding (datasets loaded through
// internal/store): rows dedupe on a mixed-radix composite of their codes
// instead of an encoded string key, and path strings are decoded once per
// distinct path. Reports ok=false (use the string path) when any attribute
// lacks codes or the radix product overflows uint64.
func distinctPathsCoded(d *data.Dataset, h data.Hierarchy) ([][]string, bool) {
	dicts := make([][]string, len(h.Attrs))
	codes := make([][]uint32, len(h.Attrs))
	radix := uint64(1)
	for i, a := range h.Attrs {
		dict, cs, ok := d.DimCodes(a)
		if !ok || len(dict) == 0 {
			if d.NumRows() > 0 {
				return nil, false
			}
			dict = []string{}
		}
		if len(dict) > 0 {
			if radix > math.MaxUint64/uint64(len(dict)) {
				return nil, false
			}
			radix *= uint64(len(dict))
		}
		dicts[i], codes[i] = dict, cs
	}
	seen := make(map[uint64]struct{})
	var paths [][]string
	for row := 0; row < d.NumRows(); row++ {
		k := uint64(0)
		for i := range h.Attrs {
			k = k*uint64(len(dicts[i])) + uint64(codes[i][row])
		}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		vals := make([]string, len(h.Attrs))
		for i := range h.Attrs {
			vals[i] = dicts[i][codes[i][row]]
		}
		paths = append(paths, vals)
	}
	return paths, true
}

// distinctPathsStreamed is the cursor variant of distinctPathsCoded: one
// streaming pass over the dataset's column cursors, for cursor-backed
// (memory-mapped) datasets whose columns exist only as lazily-decoded
// readers. The dedupe key is the identical mixed-radix composite over the
// identical dictionaries, so the extracted path set matches the slice paths
// exactly. Reports ok=false (use the string path) when any attribute lacks a
// dictionary or the radix product overflows uint64.
func distinctPathsStreamed(d *data.Dataset, h data.Hierarchy) ([][]string, bool) {
	dicts := make([][]string, len(h.Attrs))
	curs := make([]data.DimCursor, len(h.Attrs))
	radix := uint64(1)
	for i, a := range h.Attrs {
		dict, ok := d.DimDict(a)
		if !ok || len(dict) == 0 {
			if d.NumRows() > 0 {
				return nil, false
			}
			dict = []string{}
		}
		if len(dict) > 0 {
			if radix > math.MaxUint64/uint64(len(dict)) {
				return nil, false
			}
			radix *= uint64(len(dict))
			curs[i] = d.DimCursor(a)
		}
		dicts[i] = dict
	}
	seen := make(map[uint64]struct{})
	var paths [][]string
	for row := 0; row < d.NumRows(); row++ {
		k := uint64(0)
		for i := range h.Attrs {
			k = k*uint64(len(dicts[i])) + uint64(curs[i].Code(row))
		}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		vals := make([]string, len(h.Attrs))
		for i := range h.Attrs {
			vals[i] = dicts[i][curs[i].Code(row)]
		}
		paths = append(paths, vals)
	}
	return paths, true
}

func lessPath(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func equalPath(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Level is one attribute's node layer in a chain: the distinct values at
// this depth in path-sorted order, the parent linkage, child offsets into
// the next level, and the within-hierarchy leaf-extension counts Ext.
type Level struct {
	Attr     string
	Vals     []string
	Parent   []int // index into previous level's Vals; nil at level 0
	ChildOff []int // len(Vals)+1 offsets into next level; nil at the last level
	Ext      []int // leaf paths below each value (1 at the deepest level)
}

// Chain is a hierarchy truncated to its current drill-down depth: the BCNF
// chain relations of Appendix C, stored level by level in path-sorted order.
type Chain struct {
	Name   string
	Attrs  []string
	Levels []Level
	// ancIdx[l][leaf] is the index into Levels[l].Vals of the level-l
	// ancestor of the leaf'th deepest-level value.
	ancIdx [][]int
	// valIdx[l] maps a value at level l to its index in Levels[l].Vals.
	valIdx []map[string]int
}

// Depth returns the number of attributes in the chain.
func (c *Chain) Depth() int { return len(c.Levels) }

// Leaves returns the number of distinct paths (deepest-level values).
func (c *Chain) Leaves() int { return len(c.Levels[len(c.Levels)-1].Vals) }

// AncestorIdx returns the index (into Levels[level].Vals) of the level-l
// ancestor of leaf leafIdx.
func (c *Chain) AncestorIdx(level, leafIdx int) int { return c.ancIdx[level][leafIdx] }

// BuildChain derives the chain at the given depth (1-based attribute count)
// from a source. The cost is O(paths × depth), which models the paper's
// "recompute the drill-down hierarchy's aggregates" step.
func BuildChain(src *Source, depth int) (*Chain, error) {
	if depth < 1 || depth > len(src.Attrs) {
		return nil, fmt.Errorf("factor: hierarchy %q: depth %d out of range 1..%d", src.Name, depth, len(src.Attrs))
	}
	if len(src.Paths) == 0 {
		return nil, fmt.Errorf("factor: hierarchy %q has no paths", src.Name)
	}
	c := &Chain{Name: src.Name, Attrs: src.Attrs[:depth]}
	c.Levels = make([]Level, depth)
	for l := 0; l < depth; l++ {
		c.Levels[l].Attr = src.Attrs[l]
	}
	// Because paths are sorted, distinct prefixes appear as contiguous runs.
	// prevIdx[l] is the index of the current value at level l.
	prevIdx := make([]int, depth)
	for l := range prevIdx {
		prevIdx[l] = -1
	}
	var prevPath []string
	for _, p := range src.Paths {
		// Find the first level where this path diverges from the previous.
		div := 0
		if prevPath != nil {
			for div < depth && p[div] == prevPath[div] {
				div++
			}
		}
		if prevPath != nil && div == depth {
			continue // same prefix (deeper attrs differ only beyond depth)
		}
		for l := div; l < depth; l++ {
			lv := &c.Levels[l]
			lv.Vals = append(lv.Vals, p[l])
			if l > 0 {
				lv.Parent = append(lv.Parent, prevIdx[l-1])
			}
			prevIdx[l] = len(lv.Vals) - 1
		}
		prevPath = p
	}
	// Child offsets per level from parent linkage.
	for l := 0; l+1 < depth; l++ {
		lv := &c.Levels[l]
		next := &c.Levels[l+1]
		lv.ChildOff = make([]int, len(lv.Vals)+1)
		for _, parent := range next.Parent {
			lv.ChildOff[parent+1]++
		}
		for i := 1; i <= len(lv.Vals); i++ {
			lv.ChildOff[i] += lv.ChildOff[i-1]
		}
	}
	// Ext bottom-up.
	last := &c.Levels[depth-1]
	last.Ext = make([]int, len(last.Vals))
	for i := range last.Ext {
		last.Ext[i] = 1
	}
	for l := depth - 2; l >= 0; l-- {
		lv := &c.Levels[l]
		child := c.Levels[l+1]
		lv.Ext = make([]int, len(lv.Vals))
		for i := range lv.Vals {
			for j := lv.ChildOff[i]; j < lv.ChildOff[i+1]; j++ {
				lv.Ext[i] += child.Ext[j]
			}
		}
	}
	// Leaf ancestor index per level.
	leaves := c.Leaves()
	c.ancIdx = make([][]int, depth)
	c.ancIdx[depth-1] = make([]int, leaves)
	for j := 0; j < leaves; j++ {
		c.ancIdx[depth-1][j] = j
	}
	for l := depth - 2; l >= 0; l-- {
		c.ancIdx[l] = make([]int, leaves)
		childLevel := c.Levels[l+1]
		for j := 0; j < leaves; j++ {
			c.ancIdx[l][j] = childLevel.Parent[c.ancIdx[l+1][j]]
		}
	}
	c.valIdx = make([]map[string]int, depth)
	for l := 0; l < depth; l++ {
		m := make(map[string]int, len(c.Levels[l].Vals))
		for i, v := range c.Levels[l].Vals {
			// General (non-FD) chains may repeat a value across nodes; the
			// lookup resolves to the first occurrence.
			if _, ok := m[v]; !ok {
				m[v] = i
			}
		}
		c.valIdx[l] = m
	}
	return c, nil
}

// ValueIndex returns the index of value v at the given level, or -1.
func (c *Chain) ValueIndex(level int, v string) int {
	if i, ok := c.valIdx[level][v]; ok {
		return i
	}
	return -1
}
