package factor

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/data"
)

// TestSourceFromDatasetCodedMatchesStringPath verifies the dictionary-code
// fast path of SourceFromDataset produces the same Source as the string path.
func TestSourceFromDatasetCodedMatchesStringPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := data.Hierarchy{Name: "geo", Attrs: []string{"region", "district", "village"}}
	ds := data.New("t", h.Attrs, []string{"m"}, []data.Hierarchy{h})
	// Build FD-respecting paths: village determines district determines region.
	for i := 0; i < 800; i++ {
		r := rng.Intn(4)
		d := r*3 + rng.Intn(3)
		v := d*5 + rng.Intn(5)
		ds.AppendRowVals([]string{
			fmt.Sprintf("r%d", r), fmt.Sprintf("d%02d", d), fmt.Sprintf("v%03d", v),
		}, []float64{1})
	}
	want, err := SourceFromDataset(ds, h)
	if err != nil {
		t.Fatal(err)
	}

	coded := data.New("t", ds.DimNames(), ds.MeasureNames(), ds.Hierarchies)
	for _, name := range ds.DimNames() {
		col := ds.Dim(name)
		idx := make(map[string]uint32)
		var dict []string
		codes := make([]uint32, len(col))
		for i, v := range col {
			c, ok := idx[v]
			if !ok {
				c = uint32(len(dict))
				idx[v] = c
				dict = append(dict, v)
			}
			codes[i] = c
		}
		if err := coded.SetEncodedDim(name, dict, codes); err != nil {
			t.Fatal(err)
		}
	}
	if err := coded.SetMeasure("m", append([]float64(nil), ds.Measure("m")...)); err != nil {
		t.Fatal(err)
	}
	got, err := SourceFromDataset(coded, h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("coded source != string source:\n got %+v\nwant %+v", got, want)
	}
}
