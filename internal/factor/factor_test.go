package factor

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/data"
)

// paperSources builds the running example from Figure 3: a Time hierarchy
// with attribute T = {t1, t2} and a Geo hierarchy District → Village with
// d1 → {v1, v2} and d2 → {v3}.
func paperSources(t *testing.T) []*Source {
	t.Helper()
	timeSrc, err := NewSource("time", []string{"T"}, [][]string{{"t1"}, {"t2"}})
	if err != nil {
		t.Fatal(err)
	}
	geoSrc, err := NewSource("geo", []string{"D", "V"}, [][]string{
		{"d1", "v1"}, {"d1", "v2"}, {"d2", "v3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []*Source{timeSrc, geoSrc}
}

func paperFactorizer(t *testing.T) *Factorizer {
	t.Helper()
	f, err := New(paperSources(t), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewSourceValidation(t *testing.T) {
	if _, err := NewSource("h", nil, nil); err == nil {
		t.Error("expected error for empty attrs")
	}
	if _, err := NewSource("h", []string{"a", "b"}, [][]string{{"x"}}); err == nil {
		t.Error("expected error for arity mismatch")
	}
	// Same leaf under two parents violates the FD.
	if _, err := NewSource("h", []string{"a", "b"}, [][]string{{"p1", "c"}, {"p2", "c"}}); err == nil {
		t.Error("expected FD violation error")
	}
	// Mid-level FD violation with distinct leaves.
	if _, err := NewSource("h", []string{"a", "b", "c"}, [][]string{
		{"p1", "m", "l1"}, {"p2", "m", "l2"},
	}); err == nil {
		t.Error("expected mid-level FD violation error")
	}
	// Duplicate paths are deduplicated, not an error.
	src, err := NewSource("h", []string{"a"}, [][]string{{"x"}, {"x"}, {"y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Paths) != 2 {
		t.Errorf("dedup paths = %d, want 2", len(src.Paths))
	}
}

func TestBuildChainStructure(t *testing.T) {
	srcs := paperSources(t)
	ch, err := BuildChain(srcs[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Depth() != 2 || ch.Leaves() != 3 {
		t.Fatalf("depth %d leaves %d", ch.Depth(), ch.Leaves())
	}
	if got := ch.Levels[0].Vals; len(got) != 2 || got[0] != "d1" || got[1] != "d2" {
		t.Errorf("district level = %v", got)
	}
	if got := ch.Levels[1].Vals; len(got) != 3 || got[0] != "v1" || got[2] != "v3" {
		t.Errorf("village level = %v", got)
	}
	// Ext: d1 has 2 villages, d2 has 1.
	if ch.Levels[0].Ext[0] != 2 || ch.Levels[0].Ext[1] != 1 {
		t.Errorf("Ext = %v", ch.Levels[0].Ext)
	}
	// ChildOff: d1 children [0,2), d2 children [2,3).
	if off := ch.Levels[0].ChildOff; off[0] != 0 || off[1] != 2 || off[2] != 3 {
		t.Errorf("ChildOff = %v", off)
	}
	// Ancestors: leaf v3 (idx 2) at level 0 is d2 (idx 1).
	if ch.AncestorIdx(0, 2) != 1 {
		t.Errorf("AncestorIdx(0, v3) = %d", ch.AncestorIdx(0, 2))
	}
	if ch.ValueIndex(1, "v2") != 1 || ch.ValueIndex(1, "nope") != -1 {
		t.Error("ValueIndex wrong")
	}
	// Truncated chain: depth 1 keeps only districts.
	ch1, err := BuildChain(srcs[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if ch1.Leaves() != 2 {
		t.Errorf("depth-1 leaves = %d, want 2", ch1.Leaves())
	}
	if _, err := BuildChain(srcs[1], 3); err == nil {
		t.Error("expected depth out of range error")
	}
}

func TestSourceFromDataset(t *testing.T) {
	d := data.New("x", []string{"D", "V"}, nil, nil)
	d.AppendRowVals([]string{"d1", "v1"}, nil)
	d.AppendRowVals([]string{"d1", "v1"}, nil)
	d.AppendRowVals([]string{"d2", "v3"}, nil)
	src, err := SourceFromDataset(d, data.Hierarchy{Name: "geo", Attrs: []string{"D", "V"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Paths) != 2 {
		t.Errorf("paths = %v", src.Paths)
	}
}

func TestFactorizerScalars(t *testing.T) {
	f := paperFactorizer(t)
	if f.N() != 6 { // 2 times × 3 villages
		t.Fatalf("N = %v, want 6", f.N())
	}
	if f.NumAttrs() != 3 {
		t.Fatalf("attrs = %v", f.Attrs())
	}
	// Paper Figure 4: TOTAL_T = 6, TOTAL_D = TOTAL_V = 3.
	if f.SufTotal(0) != 6 || f.SufTotal(1) != 3 || f.SufTotal(2) != 3 {
		t.Errorf("SufTotal = %v %v %v", f.SufTotal(0), f.SufTotal(1), f.SufTotal(2))
	}
	// COUNT_T = {t1: 3, t2: 3}; COUNT_D = {d1: 2, d2: 1}; COUNT_V = 1 each.
	_, ct := f.CountVals(0)
	if ct[0] != 3 || ct[1] != 3 {
		t.Errorf("COUNT_T = %v", ct)
	}
	_, cd := f.CountVals(1)
	if cd[0] != 2 || cd[1] != 1 {
		t.Errorf("COUNT_D = %v", cd)
	}
	_, cv := f.CountVals(2)
	if cv[0] != 1 || cv[1] != 1 || cv[2] != 1 {
		t.Errorf("COUNT_V = %v", cv)
	}
}

func TestCofSameHierarchy(t *testing.T) {
	f := paperFactorizer(t)
	// COF_{D,V}: each (district, village) pair has count 1 (nothing right of
	// the geo hierarchy).
	got := map[[2]int]float64{}
	f.Cof(1, 2, func(vi, vj int, c float64) { got[[2]int{vi, vj}] = c })
	want := map[[2]int]float64{{0, 0}: 1, {0, 1}: 1, {1, 2}: 1}
	if len(got) != len(want) {
		t.Fatalf("COF_{D,V} = %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("COF_{D,V}[%v] = %v, want %v", k, got[k], v)
		}
	}
}

func TestCofCrossHierarchy(t *testing.T) {
	f := paperFactorizer(t)
	// COF_{T,D}[t,d] = #villages(d): 2 for d1, 1 for d2.
	got := map[[2]int]float64{}
	f.Cof(0, 1, func(vi, vj int, c float64) { got[[2]int{vi, vj}] = c })
	for ti := 0; ti < 2; ti++ {
		if got[[2]int{ti, 0}] != 2 || got[[2]int{ti, 1}] != 1 {
			t.Errorf("COF_{T,D} for t%d = %v, %v", ti+1, got[[2]int{ti, 0}], got[[2]int{ti, 1}])
		}
	}
}

func TestRowIterMaterialize(t *testing.T) {
	f := paperFactorizer(t)
	rows, err := f.MaterializeValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// Expected order (T, D, V) with Geo varying fastest:
	want := [][]int{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 2},
		{1, 0, 0}, {1, 0, 1}, {1, 1, 2},
	}
	for i, w := range want {
		for j := range w {
			if rows[i][j] != w[j] {
				t.Fatalf("row %d = %v, want %v", i, rows[i], w)
			}
		}
	}
}

func TestRowIterChangesAreMinimal(t *testing.T) {
	f := paperFactorizer(t)
	it := f.Rows()
	first := it.Next()
	if len(first) != 3 {
		t.Fatalf("first emit = %v", first)
	}
	// Second row: only V changes (v1 → v2 under the same district).
	second := it.Next()
	if len(second) != 1 || second[0].Attr != 2 || second[0].Val != 1 {
		t.Fatalf("second emit = %v", second)
	}
	// Third row: D and V change.
	third := it.Next()
	if len(third) != 2 {
		t.Fatalf("third emit = %v", third)
	}
	// Fourth row: T changes and Geo wraps to the first village (D and V).
	fourth := it.Next()
	if len(fourth) != 3 {
		t.Fatalf("fourth emit = %v", fourth)
	}
}

// Brute-force reference: enumerate the cross product of paths and count.
func bruteCounts(f *Factorizer) (sufTotals []float64, counts []map[int]float64, cofs map[[2]int]map[[2]int]float64) {
	rows, err := f.MaterializeValues()
	if err != nil {
		panic(err)
	}
	d := f.NumAttrs()
	sufTotals = make([]float64, d)
	counts = make([]map[int]float64, d)
	cofs = map[[2]int]map[[2]int]float64{}
	for i := 0; i < d; i++ {
		counts[i] = map[int]float64{}
	}
	// Multiplicity in the suffix join equals the full-matrix multiplicity
	// divided by the prefix duplication factor n/SufTotal(i).
	for i := 0; i < d; i++ {
		for _, r := range rows {
			counts[i][r[i]]++
		}
		dup := f.N() / f.SufTotal(i)
		for k := range counts[i] {
			counts[i][k] /= dup
		}
		sufTotals[i] = f.SufTotal(i)
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			m := map[[2]int]float64{}
			for _, r := range rows {
				m[[2]int{r[i], r[j]}]++
			}
			dup := f.N() / f.SufTotal(i)
			for k := range m {
				m[k] /= dup
			}
			cofs[[2]int{i, j}] = m
		}
	}
	return sufTotals, counts, cofs
}

func randomFactorizer(r *rand.Rand) *Factorizer {
	nh := 1 + r.Intn(3)
	srcs := make([]*Source, nh)
	for h := 0; h < nh; h++ {
		depth := 1 + r.Intn(3)
		attrs := make([]string, depth)
		for l := range attrs {
			attrs[l] = fmt.Sprintf("h%d_a%d", h, l)
		}
		// Random tree: level 0 has 1..3 values; each value has 1..3 children.
		var paths [][]string
		var build func(prefix []string, level int)
		id := 0
		build = func(prefix []string, level int) {
			if level == depth {
				paths = append(paths, append([]string(nil), prefix...))
				return
			}
			kids := 1 + r.Intn(3)
			for k := 0; k < kids; k++ {
				id++
				build(append(prefix, fmt.Sprintf("h%d_l%d_%d", h, level, id)), level+1)
			}
		}
		build(nil, 0)
		src, err := NewSource(fmt.Sprintf("h%d", h), attrs, paths)
		if err != nil {
			panic(err)
		}
		srcs[h] = src
	}
	depths := make([]int, nh)
	for h := range depths {
		depths[h] = 1 + r.Intn(len(srcs[h].Attrs))
	}
	f, err := New(srcs, depths)
	if err != nil {
		panic(err)
	}
	return f
}

// Property: decomposed aggregates match brute-force enumeration of the
// materialized cross product for random hierarchy forests.
func TestAggregatesMatchBruteForceProperty(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		f := randomFactorizer(r)
		if f.N() > 5000 {
			continue
		}
		_, wantCounts, wantCofs := bruteCounts(f)
		for i := 0; i < f.NumAttrs(); i++ {
			_, got := f.CountVals(i)
			for v, c := range got {
				if wantCounts[i][v] != c {
					t.Fatalf("trial %d: COUNT[%d][%d] = %v, want %v", trial, i, v, c, wantCounts[i][v])
				}
			}
		}
		for i := 0; i < f.NumAttrs(); i++ {
			for j := i + 1; j < f.NumAttrs(); j++ {
				got := map[[2]int]float64{}
				f.Cof(i, j, func(vi, vj int, c float64) { got[[2]int{vi, vj}] += c })
				want := wantCofs[[2]int{i, j}]
				if len(got) != len(want) {
					t.Fatalf("trial %d: COF(%d,%d) size %d, want %d", trial, i, j, len(got), len(want))
				}
				for k, v := range want {
					if g := got[k]; g < v-1e-9 || g > v+1e-9 {
						t.Fatalf("trial %d: COF(%d,%d)[%v] = %v, want %v", trial, i, j, k, g, v)
					}
				}
			}
		}
	}
}

func TestDrillDownMovesHierarchyLast(t *testing.T) {
	f := paperFactorizer(t)
	// Start over at depth 1 for geo.
	f2, err := New(paperSources(t), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if f2.N() != 4 { // 2 times × 2 districts
		t.Fatalf("N = %v, want 4", f2.N())
	}
	pos, ok := f2.OrderPos("geo")
	if !ok {
		t.Fatal("geo not found")
	}
	if !f2.CanDrill(pos) {
		t.Fatal("geo should be drillable")
	}
	if err := f2.DrillDown(pos); err != nil {
		t.Fatal(err)
	}
	if f2.N() != 6 {
		t.Errorf("after drill N = %v, want 6", f2.N())
	}
	// Geo must now be last in order.
	if f2.HierarchyName(f2.NumHierarchies()-1) != "geo" {
		t.Error("drilled hierarchy not last")
	}
	// Aggregates must equal the fully rebuilt factorizer's.
	for i := 0; i < f2.NumAttrs(); i++ {
		// f (built fresh at same depths with same order) serves as reference.
		if f2.SufTotal(i) != f.SufTotal(i) {
			t.Errorf("SufTotal(%d) = %v, want %v", i, f2.SufTotal(i), f.SufTotal(i))
		}
	}
	// Fully drilled → CanDrill false, DrillDown errors.
	if f2.CanDrill(f2.NumHierarchies() - 1) {
		t.Error("geo should be fully drilled")
	}
	if err := f2.DrillDown(f2.NumHierarchies() - 1); err == nil {
		t.Error("expected error drilling a fully drilled hierarchy")
	}
}

// Property: Dynamic and CacheDynamic drill-downs produce identical aggregates
// to a Static rebuild.
func TestDrillModesAgreeProperty(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		base := randomFactorizer(r)
		// Only exercise drillable configurations.
		var drillable []int
		for pos := 0; pos < base.NumHierarchies(); pos++ {
			if base.CanDrill(pos) {
				drillable = append(drillable, pos)
			}
		}
		if len(drillable) == 0 {
			continue
		}
		pos := drillable[r.Intn(len(drillable))]
		variants := make([]*Factorizer, 3)
		for mi, mode := range []DrillMode{Static, Dynamic, CacheDynamic} {
			v := base.Clone()
			v.SetMode(mode)
			if err := v.DrillDown(pos); err != nil {
				t.Fatal(err)
			}
			variants[mi] = v
		}
		for _, v := range variants[1:] {
			if v.N() != variants[0].N() || v.NumAttrs() != variants[0].NumAttrs() {
				t.Fatalf("trial %d: shape mismatch across modes", trial)
			}
			for i := 0; i < v.NumAttrs(); i++ {
				if v.SufTotal(i) != variants[0].SufTotal(i) {
					t.Fatalf("trial %d: SufTotal(%d) differs across modes", trial, i)
				}
				_, a := v.CountVals(i)
				_, b := variants[0].CountVals(i)
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("trial %d: COUNT(%d) differs across modes", trial, i)
					}
				}
			}
		}
	}
}

func TestComputeAggregatesSharedVsSerial(t *testing.T) {
	f := paperFactorizer(t)
	shared := f.ComputeAggregates()
	serial := f.ComputeAggregatesSerial()
	for i := range shared.SufTotal {
		if shared.SufTotal[i] != serial.SufTotal[i] {
			t.Errorf("SufTotal[%d]: shared %v serial %v", i, shared.SufTotal[i], serial.SufTotal[i])
		}
		for v := range shared.Counts[i] {
			if shared.Counts[i][v] != serial.Counts[i][v] {
				t.Errorf("Counts[%d][%d] differ", i, v)
			}
		}
	}
	for k, v := range shared.CofChecksums {
		if s := serial.CofChecksums[k]; s < v-1e-9 || s > v+1e-9 {
			t.Errorf("CofChecksum[%v]: shared %v serial %v", k, v, s)
		}
	}
}

func TestRowIndexOfAndLeafIndex(t *testing.T) {
	f := paperFactorizer(t)
	if got := f.RowIndexOf([]int{1, 2}); got != 5 {
		t.Errorf("RowIndexOf = %d, want 5", got)
	}
	if got := f.LeafIndex(1, "v3"); got != 2 {
		t.Errorf("LeafIndex = %d, want 2", got)
	}
	if got := f.LeafIndex(1, "nope"); got != -1 {
		t.Errorf("LeafIndex missing = %d, want -1", got)
	}
}

func TestMoveLast(t *testing.T) {
	f := paperFactorizer(t)
	pos, _ := f.OrderPos("time")
	f.MoveLast(pos)
	if f.HierarchyName(f.NumHierarchies()-1) != "time" {
		t.Error("MoveLast failed")
	}
	// Attribute order now Geo first: D, V, T.
	if f.Attrs()[0].Name != "D" || f.Attrs()[2].Name != "T" {
		t.Errorf("attr order = %v", f.Attrs())
	}
	// Moving the already-last hierarchy is a no-op.
	f.MoveLast(f.NumHierarchies() - 1)
	if f.HierarchyName(f.NumHierarchies()-1) != "time" {
		t.Error("MoveLast no-op failed")
	}
}

func TestDrillModeString(t *testing.T) {
	if Static.String() != "Static" || Dynamic.String() != "Dynamic" || CacheDynamic.String() != "Cache+Dynamic" {
		t.Error("DrillMode strings wrong")
	}
	if DrillMode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}
