package factor

import (
	"fmt"
)

// Attr identifies one attribute (column) of the implicit attribute matrix.
type Attr struct {
	Name  string
	Hier  int // position in the current hierarchy order
	Level int // depth within the hierarchy chain
}

// DrillMode selects the §4.4 recomputation strategy benchmarked in Figure 9.
type DrillMode int

const (
	// Static recomputes every hierarchy's aggregates from scratch.
	Static DrillMode = iota
	// Dynamic recomputes only the drilled hierarchy and updates the rest in
	// O(1) via the independence between hierarchies.
	Dynamic
	// CacheDynamic additionally reuses chains cached by earlier evaluations.
	CacheDynamic
)

func (m DrillMode) String() string {
	switch m {
	case Static:
		return "Static"
	case Dynamic:
		return "Dynamic"
	case CacheDynamic:
		return "Cache+Dynamic"
	}
	return fmt.Sprintf("DrillMode(%d)", int(m))
}

// Factorizer stores the factorised attribute matrix: one chain per hierarchy
// at its current drill-down depth, in hierarchy order (the hierarchy to drill
// down is last), plus the cross-hierarchy scalars that make the decomposed
// aggregates O(1) to combine.
type Factorizer struct {
	sources []*Source
	order   []int    // hierarchy order: positions into sources
	depth   []int    // current depth per source
	chains  []*Chain // per source (indexed like sources)
	cache   map[string]*Chain
	mode    DrillMode

	// Derived, recomputed by refresh().
	attrs      []Attr    // flattened attribute order
	attrOfHier [][]int   // attr indices per hierarchy-order position
	leaves     []float64 // per hierarchy-order position
	prodBefore []float64 // product of leaves of hierarchies before position
	prodAfter  []float64 // product of leaves of hierarchies after position
	n          float64   // total implicit row count
}

// New builds a factorizer over the given hierarchies at the given initial
// depths (attribute counts; 0 selects depth 1). The hierarchy order is the
// source order.
func New(sources []*Source, depths []int) (*Factorizer, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("factor: no hierarchies")
	}
	f := &Factorizer{
		sources: sources,
		order:   make([]int, len(sources)),
		depth:   make([]int, len(sources)),
		chains:  make([]*Chain, len(sources)),
		cache:   map[string]*Chain{},
		mode:    CacheDynamic,
	}
	for i := range sources {
		f.order[i] = i
		d := 1
		if depths != nil && depths[i] > 0 {
			d = depths[i]
		}
		f.depth[i] = d
		ch, err := f.buildChain(i, d)
		if err != nil {
			return nil, err
		}
		f.chains[i] = ch
	}
	f.refresh()
	return f, nil
}

// SetMode selects the drill-down recomputation strategy.
func (f *Factorizer) SetMode(m DrillMode) { f.mode = m }

// Mode returns the current recomputation strategy.
func (f *Factorizer) Mode() DrillMode { return f.mode }

func (f *Factorizer) cacheKey(src, depth int) string {
	return fmt.Sprintf("%s/%d", f.sources[src].Name, depth)
}

func (f *Factorizer) buildChain(src, depth int) (*Chain, error) {
	if f.mode == CacheDynamic {
		if ch, ok := f.cache[f.cacheKey(src, depth)]; ok {
			return ch, nil
		}
	}
	ch, err := BuildChain(f.sources[src], depth)
	if err != nil {
		return nil, err
	}
	if f.mode == CacheDynamic {
		f.cache[f.cacheKey(src, depth)] = ch
	}
	return ch, nil
}

// refresh recomputes the flattened attribute order and cross-hierarchy
// scalars. With Dynamic or CacheDynamic mode this is the only work performed
// for non-drilled hierarchies (O(|H|), the paper's O(1)-per-aggregate
// update); with Static mode callers additionally rebuild every chain.
func (f *Factorizer) refresh() {
	f.attrs = f.attrs[:0]
	f.attrOfHier = make([][]int, len(f.order))
	f.leaves = make([]float64, len(f.order))
	for pos, src := range f.order {
		ch := f.chains[src]
		f.leaves[pos] = float64(ch.Leaves())
		for l := 0; l < ch.Depth(); l++ {
			f.attrOfHier[pos] = append(f.attrOfHier[pos], len(f.attrs))
			f.attrs = append(f.attrs, Attr{Name: ch.Levels[l].Attr, Hier: pos, Level: l})
		}
	}
	f.prodBefore = make([]float64, len(f.order))
	f.prodAfter = make([]float64, len(f.order))
	p := 1.0
	for pos := range f.order {
		f.prodBefore[pos] = p
		p *= f.leaves[pos]
	}
	f.n = p
	p = 1.0
	for pos := len(f.order) - 1; pos >= 0; pos-- {
		f.prodAfter[pos] = p
		p *= f.leaves[pos]
	}
}

// Attrs returns the flattened attribute order.
func (f *Factorizer) Attrs() []Attr { return f.attrs }

// NumAttrs returns the number of attributes (matrix columns).
func (f *Factorizer) NumAttrs() int { return len(f.attrs) }

// N returns the implicit row count of the attribute matrix: the product of
// the hierarchies' path counts. It is returned as float64 because the count
// is exponential in the number of hierarchies and can exceed int range.
func (f *Factorizer) N() float64 { return f.n }

// NumHierarchies returns the number of hierarchies.
func (f *Factorizer) NumHierarchies() int { return len(f.order) }

// Chain returns the chain at hierarchy-order position pos.
func (f *Factorizer) Chain(pos int) *Chain { return f.chains[f.order[pos]] }

// HierarchyName returns the name of the hierarchy at order position pos.
func (f *Factorizer) HierarchyName(pos int) string { return f.sources[f.order[pos]].Name }

// OrderPos returns the hierarchy-order position of the named hierarchy.
func (f *Factorizer) OrderPos(name string) (int, bool) {
	for pos, src := range f.order {
		if f.sources[src].Name == name {
			return pos, true
		}
	}
	return 0, false
}

// AttrIndex returns the flattened index of the named attribute.
func (f *Factorizer) AttrIndex(name string) (int, bool) {
	for i, a := range f.attrs {
		if a.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Leaves returns the path count of the hierarchy at order position pos.
func (f *Factorizer) Leaves(pos int) float64 { return f.leaves[pos] }

// ProdBefore returns the product of leaf counts of hierarchies before pos.
func (f *Factorizer) ProdBefore(pos int) float64 { return f.prodBefore[pos] }

// ProdAfter returns the product of leaf counts of hierarchies after pos.
func (f *Factorizer) ProdAfter(pos int) float64 { return f.prodAfter[pos] }

// SufTotal returns TOTAL_{A_i}: the size of the suffix join starting at
// attribute i. Within a hierarchy it is independent of the level (every
// value expands to its leaf paths), so it equals leaves × prodAfter.
func (f *Factorizer) SufTotal(attr int) float64 {
	a := f.attrs[attr]
	return f.leaves[a.Hier] * f.prodAfter[a.Hier]
}

// CountVals returns COUNT_{A_i}: for each distinct value of attribute i (in
// path-sorted order), its multiplicity in the suffix join. The returned
// slices alias internal state and must not be modified.
func (f *Factorizer) CountVals(attr int) (vals []string, counts []float64) {
	a := f.attrs[attr]
	lv := f.Chain(a.Hier).Levels[a.Level]
	counts = make([]float64, len(lv.Vals))
	pa := f.prodAfter[a.Hier]
	for i, e := range lv.Ext {
		counts[i] = float64(e) * pa
	}
	return lv.Vals, counts
}

// Cof returns COF_{A_i,A_j}[(a,b)] for i < j as a dense traversal callback:
// fn is invoked once per (value-of-i, value-of-j) pair with a nonzero count.
// For same-hierarchy pairs this walks the chain (ancestor linkage); for
// cross-hierarchy pairs the count factorises as Count_i[a]·Count_j[b] /
// SufTotal(j) — the "never materialize the cartesian product" optimization —
// and the traversal is the full cross product of distinct values (use
// CofCrossTerms to stay factorised).
func (f *Factorizer) Cof(i, j int, fn func(vi, vj int, count float64)) {
	if i >= j {
		panic(fmt.Sprintf("factor: Cof requires i < j, got %d, %d", i, j))
	}
	ai, aj := f.attrs[i], f.attrs[j]
	if ai.Hier == aj.Hier {
		ch := f.Chain(ai.Hier)
		lv := ch.Levels[aj.Level]
		pa := f.prodAfter[ai.Hier]
		// Walk level-j values; the level-i ancestor is reached via Parent
		// linkage in (aj.Level - ai.Level) steps.
		for vj := range lv.Vals {
			vi := vj
			for l := aj.Level; l > ai.Level; l-- {
				vi = ch.Levels[l].Parent[vi]
			}
			fn(vi, vj, float64(lv.Ext[vj])*pa)
		}
		return
	}
	_, ci := f.CountVals(i)
	_, cj := f.CountVals(j)
	st := f.SufTotal(j)
	for vi := range ci {
		for vj := range cj {
			fn(vi, vj, ci[vi]*cj[vj]/st)
		}
	}
}

// SameHierarchy reports whether attributes i and j are in the same hierarchy.
func (f *Factorizer) SameHierarchy(i, j int) bool {
	return f.attrs[i].Hier == f.attrs[j].Hier
}

// CanDrill reports whether the hierarchy at order position pos has a deeper
// attribute to drill into.
func (f *Factorizer) CanDrill(pos int) bool {
	src := f.order[pos]
	return f.depth[src] < len(f.sources[src].Attrs)
}

// DrillDown extends the hierarchy at order position pos by one attribute and
// moves it to the end of the hierarchy order (the paper requires the
// drill-down hierarchy to be ordered last). Recomputation follows the
// configured DrillMode: the drilled chain is always (re)built; with Static
// every other chain is rebuilt too; with Dynamic/CacheDynamic the other
// hierarchies' aggregates are reused and only the O(|H|) scalars refresh.
func (f *Factorizer) DrillDown(pos int) error {
	if pos < 0 || pos >= len(f.order) {
		return fmt.Errorf("factor: hierarchy position %d out of range", pos)
	}
	src := f.order[pos]
	if !f.CanDrill(pos) {
		return fmt.Errorf("factor: hierarchy %q is fully drilled", f.sources[src].Name)
	}
	f.depth[src]++
	ch, err := f.buildChain(src, f.depth[src])
	if err != nil {
		f.depth[src]--
		return err
	}
	f.chains[src] = ch
	if f.mode == Static {
		for s := range f.sources {
			if s == src {
				continue
			}
			rebuilt, err := BuildChain(f.sources[s], f.depth[s])
			if err != nil {
				return err
			}
			f.chains[s] = rebuilt
		}
	}
	// Move the drilled hierarchy to the end of the order.
	f.order = append(append(f.order[:pos:pos], f.order[pos+1:]...), src)
	f.refresh()
	return nil
}

// MoveLast moves the hierarchy at order position pos to the end of the
// order without drilling (used when evaluating which hierarchy to recommend:
// the candidate must be ordered last).
func (f *Factorizer) MoveLast(pos int) {
	if pos == len(f.order)-1 {
		return
	}
	src := f.order[pos]
	f.order = append(append(f.order[:pos:pos], f.order[pos+1:]...), src)
	f.refresh()
}

// Depth returns the current depth of the hierarchy at order position pos.
func (f *Factorizer) Depth(pos int) int { return f.depth[f.order[pos]] }

// Clone returns an independent copy sharing the immutable sources and chain
// cache (chains themselves are immutable once built).
func (f *Factorizer) Clone() *Factorizer {
	c := &Factorizer{
		sources: f.sources,
		order:   append([]int(nil), f.order...),
		depth:   append([]int(nil), f.depth...),
		chains:  append([]*Chain(nil), f.chains...),
		cache:   f.cache,
		mode:    f.mode,
	}
	c.refresh()
	return c
}
