package factor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Example 9 from Appendix G: R = [(a1,b1), (a1,b2), (a2,b1)] with no
// functional dependency. Marginalizing A must preserve the order of B's
// occurrences: the ordered COUNT list is [b1:1, b2:1, b1:1], with b1
// appearing as two distinct nodes.
func TestGeneralSourceExample9(t *testing.T) {
	src, err := NewGeneralSource("g", []string{"A", "B"}, [][]string{
		{"a1", "b1"}, {"a1", "b2"}, {"a2", "b1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The strict NewSource rejects the same input.
	if _, err := NewSource("g", []string{"A", "B"}, [][]string{
		{"a1", "b1"}, {"a1", "b2"}, {"a2", "b1"},
	}); err == nil {
		t.Fatal("NewSource should reject the FD violation")
	}
	ch, err := BuildChain(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Level B has three nodes in order: b1 (under a1), b2 (under a1),
	// b1 (under a2).
	bVals := ch.Levels[1].Vals
	if len(bVals) != 3 || bVals[0] != "b1" || bVals[1] != "b2" || bVals[2] != "b1" {
		t.Fatalf("B nodes = %v, want [b1 b2 b1]", bVals)
	}
	if ch.Levels[1].Parent[0] != 0 || ch.Levels[1].Parent[1] != 0 || ch.Levels[1].Parent[2] != 1 {
		t.Fatalf("B parents = %v", ch.Levels[1].Parent)
	}
	// Per-occurrence counts are all 1 — the ordered list of Example 9.
	f, err := New([]*Source{src}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	_, counts := f.CountVals(1)
	for i, c := range counts {
		if c != 1 {
			t.Errorf("occurrence %d count = %v, want 1", i, c)
		}
	}
	// ValueIndex resolves to the first occurrence.
	if ch.ValueIndex(1, "b1") != 0 {
		t.Errorf("ValueIndex(b1) = %d, want 0", ch.ValueIndex(1, "b1"))
	}
}

// randomGeneralFactorizer builds hierarchies WITHOUT the FD: child values
// are drawn from a small shared pool so the same value recurs under many
// parents.
func randomGeneralFactorizer(r *rand.Rand) *Factorizer {
	nh := 1 + r.Intn(2)
	srcs := make([]*Source, nh)
	for h := 0; h < nh; h++ {
		depth := 1 + r.Intn(3)
		attrs := make([]string, depth)
		for l := range attrs {
			attrs[l] = fmt.Sprintf("g%d_a%d", h, l)
		}
		pool := make([]string, 3)
		for i := range pool {
			pool[i] = fmt.Sprintf("v%d", i)
		}
		var paths [][]string
		var build func(prefix []string, level int)
		build = func(prefix []string, level int) {
			if level == depth {
				paths = append(paths, append([]string(nil), prefix...))
				return
			}
			kids := 1 + r.Intn(3)
			for k := 0; k < kids; k++ {
				build(append(prefix, pool[r.Intn(len(pool))]), level+1)
			}
		}
		build(nil, 0)
		src, err := NewGeneralSource(fmt.Sprintf("g%d", h), attrs, paths)
		if err != nil {
			panic(err)
		}
		srcs[h] = src
	}
	depths := make([]int, nh)
	for h := range depths {
		depths[h] = 1 + r.Intn(len(srcs[h].Attrs))
	}
	f, err := New(srcs, depths)
	if err != nil {
		panic(err)
	}
	return f
}

// Property: the decomposed aggregates over general (non-FD) hierarchies
// still match brute-force enumeration, counting per occurrence.
func TestGeneralAggregatesMatchBruteForce(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(int64(5000 + trial)))
		f := randomGeneralFactorizer(r)
		if f.N() > 3000 {
			continue
		}
		rows, err := f.MaterializeValues()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < f.NumAttrs(); i++ {
			_, counts := f.CountVals(i)
			brute := make([]float64, len(counts))
			dup := f.N() / f.SufTotal(i)
			for _, row := range rows {
				brute[row[i]]++
			}
			for v := range counts {
				if brute[v]/dup != counts[v] {
					t.Fatalf("trial %d: COUNT[%d][node %d] = %v, want %v",
						trial, i, v, counts[v], brute[v]/dup)
				}
			}
		}
	}
}

// Property: the row iterator enumerates general chains consistently (every
// emitted change matches the materialized rows).
func TestGeneralRowIterConsistency(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(7000 + trial)))
		f := randomGeneralFactorizer(r)
		if f.N() > 2000 {
			continue
		}
		rows, err := f.MaterializeValues()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != int(f.N()) {
			t.Fatalf("trial %d: %d rows, want %v", trial, len(rows), f.N())
		}
		// Adjacent rows must differ (node indices make every path distinct
		// even when value strings repeat).
		for i := 1; i < len(rows); i++ {
			same := true
			for a := range rows[i] {
				if rows[i][a] != rows[i-1][a] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("trial %d: rows %d and %d identical", trial, i-1, i)
			}
		}
	}
}

func TestGeneralSourceDedupsIdenticalPaths(t *testing.T) {
	src, err := NewGeneralSource("g", []string{"A", "B"}, [][]string{
		{"a1", "b1"}, {"a1", "b1"}, {"a1", "b2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Paths) != 2 {
		t.Errorf("paths = %d, want 2 (identical tuples deduplicate)", len(src.Paths))
	}
}
