package factor

import (
	"fmt"
	"sort"
	"strings"
)

// This file materializes the multi-query execution plan of §4.3 / Appendix I
// (Figure 4) as an explicit dependency DAG over the decomposed aggregates.
// The factorizer computes the same results directly from its chains; the
// plan exists to expose the work-sharing structure — which aggregate is
// derived from which — for inspection, testing and the Figure 8 narrative.

// PlanNodeKind labels a plan node's aggregate class.
type PlanNodeKind int

const (
	// PlanCount is COUNT_{A_i}: per-value counts of attribute i.
	PlanCount PlanNodeKind = iota
	// PlanTotal is TOTAL_{A_i}: the scalar suffix-join size.
	PlanTotal
	// PlanCof is COF_{A_i,A_j}: pairwise counts.
	PlanCof
)

func (k PlanNodeKind) String() string {
	switch k {
	case PlanCount:
		return "COUNT"
	case PlanTotal:
		return "TOTAL"
	case PlanCof:
		return "COF"
	}
	return fmt.Sprintf("PlanNodeKind(%d)", int(k))
}

// PlanNode is one aggregate in the multi-query plan.
type PlanNode struct {
	Kind PlanNodeKind
	I, J int // attribute indices (J used by COF only)
	// Deps are the node IDs this aggregate is derived from (the Figure 4
	// edges). Roots (COUNT of a hierarchy's most specific attribute) have
	// none.
	Deps []string
	// Factorised marks cross-hierarchy COF nodes that are never
	// materialized: the independence optimization derives them in O(1) from
	// their COUNT inputs.
	Factorised bool
}

// ID returns the node's stable identifier.
func (n PlanNode) ID() string {
	if n.Kind == PlanCof {
		return fmt.Sprintf("COF(%d,%d)", n.I, n.J)
	}
	return fmt.Sprintf("%s(%d)", n.Kind, n.I)
}

// Plan is the dependency DAG over all decomposed aggregates of the current
// attribute order.
type Plan struct {
	Nodes map[string]PlanNode
	// Order is a topological execution order.
	Order []string
}

// BuildPlan derives the multi-query plan for the factorizer's current
// attribute order, mirroring Algorithm 10's reuse structure:
//
//   - COUNT of a hierarchy's deepest attribute is a base relation scan;
//   - COUNT of an upper attribute marginalizes the COF linking it to the
//     level below (equivalently, the child level's COUNT);
//   - TOTAL marginalizes the attribute's COUNT;
//   - same-hierarchy COF(i,j) extends COF(i, j-1) by one chain relation;
//   - cross-hierarchy COF(i,j) is factorised from COUNT(i) and COUNT(j).
func (f *Factorizer) BuildPlan() *Plan {
	p := &Plan{Nodes: map[string]PlanNode{}}
	d := f.NumAttrs()
	attrs := f.Attrs()

	add := func(n PlanNode) {
		p.Nodes[n.ID()] = n
	}
	countID := func(i int) string { return fmt.Sprintf("COUNT(%d)", i) }
	cofID := func(i, j int) string { return fmt.Sprintf("COF(%d,%d)", i, j) }

	for i := 0; i < d; i++ {
		a := attrs[i]
		ch := f.Chain(a.Hier)
		n := PlanNode{Kind: PlanCount, I: i}
		if a.Level < ch.Depth()-1 {
			// Derived from the child level's COUNT within the hierarchy
			// (the shared Ext computation).
			n.Deps = []string{countID(i + 1)}
		}
		add(n)
		add(PlanNode{Kind: PlanTotal, I: i, Deps: []string{countID(i)}})
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			n := PlanNode{Kind: PlanCof, I: i, J: j}
			if f.SameHierarchy(i, j) {
				if j-i > 1 {
					n.Deps = []string{cofID(i, j-1)}
				} else {
					n.Deps = []string{countID(j)}
				}
			} else {
				n.Factorised = true
				n.Deps = []string{countID(i), countID(j), fmt.Sprintf("TOTAL(%d)", j)}
			}
			add(n)
		}
	}
	p.Order = p.topoSort()
	return p
}

// topoSort orders the nodes so every dependency precedes its dependents.
func (p *Plan) topoSort() []string {
	ids := make([]string, 0, len(p.Nodes))
	for id := range p.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var order []string
	var visit func(id string)
	visit = func(id string) {
		switch state[id] {
		case 1:
			panic("factor: plan dependency cycle at " + id)
		case 2:
			return
		}
		state[id] = 1
		deps := append([]string(nil), p.Nodes[id].Deps...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := p.Nodes[dep]; !ok {
				panic("factor: plan references unknown node " + dep)
			}
			visit(dep)
		}
		state[id] = 2
		order = append(order, id)
	}
	for _, id := range ids {
		visit(id)
	}
	return order
}

// MaterializedNodes counts the nodes that must be materialized (everything
// except the factorised cross-hierarchy COF nodes). The Figure 8 gap is the
// growth of the factorised node count with the number of hierarchy pairs.
func (p *Plan) MaterializedNodes() (materialized, factorised int) {
	for _, n := range p.Nodes {
		if n.Factorised {
			factorised++
		} else {
			materialized++
		}
	}
	return materialized, factorised
}

// String renders the plan in topological order.
func (p *Plan) String() string {
	var b strings.Builder
	for _, id := range p.Order {
		n := p.Nodes[id]
		fmt.Fprintf(&b, "%-12s", id)
		if n.Factorised {
			b.WriteString(" [factorised]")
		}
		if len(n.Deps) > 0 {
			fmt.Fprintf(&b, " <- %s", strings.Join(n.Deps, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
