package factor

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuildPlanPaperExample(t *testing.T) {
	// Time [T] × Geo [D, V]: attributes T=0, D=1, V=2.
	timeSrc, err := NewSource("time", []string{"T"}, [][]string{{"t1"}, {"t2"}})
	if err != nil {
		t.Fatal(err)
	}
	geoSrc, err := NewSource("geo", []string{"D", "V"}, [][]string{
		{"d1", "v1"}, {"d1", "v2"}, {"d2", "v3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New([]*Source{timeSrc, geoSrc}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p := f.BuildPlan()

	// 3 COUNT + 3 TOTAL + 3 COF nodes.
	if len(p.Nodes) != 9 {
		t.Fatalf("nodes = %d, want 9", len(p.Nodes))
	}
	// COUNT(1) (District) derives from COUNT(2) (Village) — the Figure 4
	// within-hierarchy edge.
	n := p.Nodes["COUNT(1)"]
	if len(n.Deps) != 1 || n.Deps[0] != "COUNT(2)" {
		t.Errorf("COUNT(1) deps = %v", n.Deps)
	}
	// COUNT(2) is a root.
	if len(p.Nodes["COUNT(2)"].Deps) != 0 {
		t.Errorf("COUNT(2) deps = %v", p.Nodes["COUNT(2)"].Deps)
	}
	// COF(1,2) is the same-hierarchy pair, materialized from COUNT(2).
	c := p.Nodes["COF(1,2)"]
	if c.Factorised || len(c.Deps) != 1 || c.Deps[0] != "COUNT(2)" {
		t.Errorf("COF(1,2) = %+v", c)
	}
	// COF(0,1) and COF(0,2) cross hierarchies: factorised, never
	// materialized.
	for _, id := range []string{"COF(0,1)", "COF(0,2)"} {
		if !p.Nodes[id].Factorised {
			t.Errorf("%s should be factorised", id)
		}
	}
	mat, fact := p.MaterializedNodes()
	if mat != 7 || fact != 2 {
		t.Errorf("materialized %d factorised %d, want 7 and 2", mat, fact)
	}
	if !strings.Contains(p.String(), "[factorised]") {
		t.Error("String should mark factorised nodes")
	}
}

// Property: the topological order always places dependencies first.
func TestPlanTopologicalOrder(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		f := randomFactorizer(r)
		p := f.BuildPlan()
		seen := map[string]bool{}
		for _, id := range p.Order {
			for _, dep := range p.Nodes[id].Deps {
				if !seen[dep] {
					t.Fatalf("trial %d: %s executed before dependency %s", trial, id, dep)
				}
			}
			seen[id] = true
		}
		if len(p.Order) != len(p.Nodes) {
			t.Fatalf("trial %d: order covers %d of %d nodes", trial, len(p.Order), len(p.Nodes))
		}
		// Node accounting: d COUNTs, d TOTALs, d(d-1)/2 COFs — the paper's
		// 2d + d(d-1)/2 queries.
		d := f.NumAttrs()
		if want := 2*d + d*(d-1)/2; len(p.Nodes) != want {
			t.Fatalf("trial %d: nodes = %d, want %d", trial, len(p.Nodes), want)
		}
	}
}
