package factor

import (
	"fmt"
	"math"
)

// Change is one attribute-value update emitted by the row iterator: attribute
// Attr now holds the value at index Val of its level.
type Change struct {
	Attr int
	Val  int
}

// RowIter enumerates the rows of the implicit attribute matrix (the cross
// product of hierarchy paths) in sorted order, yielding only the difference
// from the previous row — Algorithm 1. The rightmost hierarchy advances
// fastest; within a hierarchy, advancing the leaf propagates to exactly the
// ancestor levels whose value changed.
type RowIter struct {
	f       *Factorizer
	leaf    []int // current leaf index per hierarchy-order position
	cur     []int // current value index per attribute
	buf     []Change
	started bool
	done    bool
}

// RowCount returns the implicit row count as an int, or an error when it
// exceeds the addressable range (the factorised operators never need to
// enumerate rows in that regime).
func (f *Factorizer) RowCount() (int, error) {
	if f.n > math.MaxInt32 {
		return 0, fmt.Errorf("factor: row count %g too large to enumerate", f.n)
	}
	return int(f.n), nil
}

// Rows returns a fresh row iterator.
func (f *Factorizer) Rows() *RowIter {
	return &RowIter{
		f:    f,
		leaf: make([]int, f.NumHierarchies()),
		cur:  make([]int, f.NumAttrs()),
	}
}

// Cur returns the current value index for every attribute. The slice aliases
// iterator state and is valid until the next call to Next.
func (it *RowIter) Cur() []int { return it.cur }

// Next advances to the next row and returns the changes relative to the
// previous row. The first call returns every attribute. It returns nil when
// the iteration is exhausted.
func (it *RowIter) Next() []Change {
	f := it.f
	it.buf = it.buf[:0]
	if it.done {
		return nil
	}
	if !it.started {
		it.started = true
		for pos := 0; pos < f.NumHierarchies(); pos++ {
			it.emitHierarchy(pos, -1, 0)
		}
		return it.buf
	}
	// Odometer: advance the last hierarchy; carry left on overflow.
	pos := f.NumHierarchies() - 1
	for pos >= 0 {
		ch := f.Chain(pos)
		if it.leaf[pos]+1 < ch.Leaves() {
			old := it.leaf[pos]
			it.leaf[pos]++
			it.emitHierarchy(pos, old, it.leaf[pos])
			// Hierarchies to the right wrapped to leaf 0.
			for p := pos + 1; p < f.NumHierarchies(); p++ {
				old := it.leaf[p]
				it.leaf[p] = 0
				it.emitHierarchy(p, old, 0)
			}
			return it.buf
		}
		pos--
	}
	it.done = true
	return nil
}

// emitHierarchy records the attribute changes of hierarchy pos when its leaf
// moves from oldLeaf to newLeaf. oldLeaf = -1 emits every level.
func (it *RowIter) emitHierarchy(pos, oldLeaf, newLeaf int) {
	ch := it.f.Chain(pos)
	attrIdx := it.f.attrOfHier[pos]
	for l := 0; l < ch.Depth(); l++ {
		nv := ch.AncestorIdx(l, newLeaf)
		if oldLeaf >= 0 && ch.AncestorIdx(l, oldLeaf) == nv {
			continue
		}
		a := attrIdx[l]
		it.cur[a] = nv
		it.buf = append(it.buf, Change{Attr: a, Val: nv})
	}
}

// MaterializeValues enumerates every row's attribute value indices. It is
// exponential in the number of hierarchies and exists for tests and for the
// naive (Lapack-style) baseline.
func (f *Factorizer) MaterializeValues() ([][]int, error) {
	n, err := f.RowCount()
	if err != nil {
		return nil, err
	}
	out := make([][]int, 0, n)
	it := f.Rows()
	for {
		chg := it.Next()
		if chg == nil {
			break
		}
		row := make([]int, f.NumAttrs())
		copy(row, it.Cur())
		out = append(out, row)
	}
	return out, nil
}

// RowIndexOf returns the row index of the given per-attribute value indices
// in iteration order. Used to align dense y vectors with the matrix rows.
func (f *Factorizer) RowIndexOf(leafPerHier []int) int {
	idx := 0
	for pos := 0; pos < f.NumHierarchies(); pos++ {
		idx = idx*int(f.leaves[pos]) + leafPerHier[pos]
	}
	return idx
}

// LeafIndex returns the leaf (deepest-level) value index of value v in the
// hierarchy at order position pos, or -1 when absent.
func (f *Factorizer) LeafIndex(pos int, v string) int {
	ch := f.Chain(pos)
	return ch.ValueIndex(ch.Depth()-1, v)
}
