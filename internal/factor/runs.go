package factor

// ForEachRun enumerates, in row order, the maximal contiguous row runs of
// the implicit matrix over which the given attribute set's joint assignment
// is constant. It is the traversal primitive behind the multi-attribute
// feature operations of Appendix H: a multi-attribute feature's column is
// piecewise constant exactly on these runs.
//
// attrs must be ascending flattened attribute indices. fn receives the run's
// start row, its length, and the value indices of the attributes (aligned
// with attrs); the slice is reused across calls.
//
// The run count is the product of the involved hierarchies' value counts
// and every earlier hierarchy's leaf count — as Appendix H notes, features
// over many attributes progressively lose the factorised redundancy until
// the worst case degenerates to the naive row count.
func (f *Factorizer) ForEachRun(attrs []int, fn func(start, length int, vals []int)) error {
	n, err := f.RowCount()
	if err != nil {
		return err
	}
	if len(attrs) == 0 {
		fn(0, n, nil)
		return nil
	}
	// Group the involved attributes by hierarchy-order position; record the
	// deepest involved level per position.
	type involvement struct {
		levels  []int // involved levels, ascending
		attrPos []int // index into attrs for each involved level
		deepest int
	}
	inv := make(map[int]*involvement)
	lastInv := 0
	for ai, a := range attrs {
		at := f.attrs[a]
		iv := inv[at.Hier]
		if iv == nil {
			iv = &involvement{}
			inv[at.Hier] = iv
		}
		iv.levels = append(iv.levels, at.Level)
		iv.attrPos = append(iv.attrPos, ai)
		if at.Level > iv.deepest {
			iv.deepest = at.Level
		}
		if at.Hier > lastInv {
			lastInv = at.Hier
		}
	}
	// Suffix block lengths: suffixLen[pos] = rows spanned by one leaf
	// combination of hierarchies 0..pos-1.
	H := f.NumHierarchies()
	suffixLen := make([]int, H+1)
	suffixLen[H] = 1
	for pos := H - 1; pos >= 0; pos-- {
		suffixLen[pos] = suffixLen[pos+1] * int(f.leaves[pos])
	}

	vals := make([]int, len(attrs))
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos > lastInv {
			// Everything deeper leaves the assignment unchanged: one run.
			fn(start, suffixLen[pos], vals)
			return
		}
		iv := inv[pos]
		if iv == nil {
			// Uninvolved hierarchy before the last involved one: the deeper
			// pattern repeats once per leaf.
			for r := 0; r < int(f.leaves[pos]); r++ {
				rec(pos+1, start+r*suffixLen[pos+1])
			}
			return
		}
		ch := f.Chain(pos)
		deep := ch.Levels[iv.deepest]
		offset := start
		for vi := range deep.Vals {
			// Resolve every involved level's value from the deepest one.
			for li, lvl := range iv.levels {
				idx := vi
				for l := iv.deepest; l > lvl; l-- {
					idx = ch.Levels[l].Parent[idx]
				}
				vals[iv.attrPos[li]] = idx
			}
			ext := deep.Ext[vi]
			if pos == lastInv {
				// No deeper involvement: the whole span is one run.
				fn(offset, ext*suffixLen[pos+1], vals)
			} else {
				for r := 0; r < ext; r++ {
					rec(pos+1, offset+r*suffixLen[pos+1])
				}
			}
			offset += ext * suffixLen[pos+1]
		}
	}
	rec(0, 0)
	return nil
}
