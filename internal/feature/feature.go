// Package feature builds Reptile's feature matrix content (§3.3, Appendix
// B): main-effect featurization of categorical attributes, auxiliary-dataset
// join features, custom per-attribute features, and the random-effects (Z)
// column selection. The output is a set of per-attribute value→feature maps
// that can be rendered either as a dense design matrix over observed groups
// or as factorised columns over a factorizer's attribute values.
package feature

import (
	"fmt"
	"sort"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/factor"
	"repro/internal/fmatrix"
	"repro/internal/mat"
)

// Aux references an auxiliary dataset joined into the feature matrix
// (§3.3.2): rows of Table are joined on JoinAttr and contribute Measure as a
// numeric feature (centered and normalized).
type Aux struct {
	Name     string
	Table    *data.Dataset
	JoinAttr string
	Measure  string
}

// Custom is a user-defined per-attribute featurization (§3.3.3): Fn receives
// the attribute's distinct values and the per-group statistics and returns a
// value→feature mapping.
type Custom struct {
	Name string
	Attr string
	Fn   func(vals []string, groups *agg.Result) map[string]float64
}

// Spec configures feature construction.
type Spec struct {
	// Target is the aggregate being modeled (the complaint's statistic).
	Target agg.Func
	// Aux lists auxiliary datasets to join when their attribute is present.
	Aux []Aux
	// Custom lists user featurizations to apply when applicable.
	Custom []Custom
	// ExcludeFromZ names features whose derived columns are excluded from
	// the random-effects design Z (§3.3.4).
	ExcludeFromZ []string
	// KeepLeaky disables the guard that drops a main-effect feature whose
	// attribute values map one-to-one to training groups (which would leak
	// the group's own statistic and mask every error).
	KeepLeaky bool
}

// Col is one feature column: a value→feature map over one attribute.
// A nil Map means the column is constant (the intercept).
type Col struct {
	Name    string
	Attr    string
	Map     map[string]float64
	Default float64 // value for attribute values missing from Map
	InZ     bool
}

// Value returns the feature value for attribute value v.
func (c Col) Value(v string) float64 {
	if c.Map == nil {
		return c.Default
	}
	if f, ok := c.Map[v]; ok {
		return f
	}
	return c.Default
}

// Set is the constructed feature set for one drill-down's group-by result.
// Extra holds materialized multi-attribute (per-group) feature columns; they
// render only densely (see BuildWithGroupFeatures).
type Set struct {
	Attrs []string // the group-by attributes, in attribute order
	Cols  []Col
	Extra []extraCol
}

// NumCols returns the total column count including group features.
func (s *Set) NumCols() int { return len(s.Cols) + len(s.Extra) }

// Build constructs the feature set for the given group-by result.
//
// Default features follow §3.3.1: every attribute is treated as categorical
// and featurized by its main effect — each value is replaced by the median
// of the target statistic over the groups carrying that value. A main-effect
// column is dropped when its values map one-to-one to groups (see
// Spec.KeepLeaky). Auxiliary features are z-scored; the intercept is always
// the first column.
func Build(groups *agg.Result, spec Spec) (*Set, error) {
	if len(groups.Groups) == 0 {
		return nil, fmt.Errorf("feature: no groups to featurize")
	}
	s := &Set{Attrs: append([]string(nil), groups.Attrs...)}
	s.Cols = append(s.Cols, Col{Name: "intercept", Attr: groups.Attrs[0], Default: 1, InZ: true})

	y := make([]float64, len(groups.Groups))
	for i, g := range groups.Groups {
		y[i] = g.Stats.Get(spec.Target)
	}

	// Main effects per attribute.
	for ai, attr := range groups.Attrs {
		perVal := make(map[string][]float64)
		for gi, g := range groups.Groups {
			perVal[g.Vals[ai]] = append(perVal[g.Vals[ai]], y[gi])
		}
		if !spec.KeepLeaky {
			oneToOne := true
			for _, ys := range perVal {
				if len(ys) > 1 {
					oneToOne = false
					break
				}
			}
			if oneToOne {
				continue // the median would equal the group's own statistic
			}
		}
		m := make(map[string]float64, len(perVal))
		for v, ys := range perVal {
			m[v] = mat.Median(ys)
		}
		name := "main:" + attr
		s.Cols = append(s.Cols, Col{
			Name:    name,
			Attr:    attr,
			Map:     m,
			Default: mat.Median(y),
			InZ:     !contains(spec.ExcludeFromZ, name),
		})
	}

	// Auxiliary join features (applicable once their attribute is in the
	// group-by).
	for _, aux := range spec.Aux {
		if !contains(groups.Attrs, aux.JoinAttr) {
			continue
		}
		col, err := buildAuxCol(aux)
		if err != nil {
			return nil, err
		}
		col.InZ = !contains(spec.ExcludeFromZ, col.Name)
		s.Cols = append(s.Cols, col)
	}

	// Custom features.
	for _, c := range spec.Custom {
		if !contains(groups.Attrs, c.Attr) {
			continue
		}
		ai := indexOf(groups.Attrs, c.Attr)
		valSet := make(map[string]struct{})
		for _, g := range groups.Groups {
			valSet[g.Vals[ai]] = struct{}{}
		}
		vals := make([]string, 0, len(valSet))
		for v := range valSet {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		m := c.Fn(vals, groups)
		if m == nil {
			return nil, fmt.Errorf("feature: custom feature %q returned nil", c.Name)
		}
		name := "custom:" + c.Name
		s.Cols = append(s.Cols, Col{
			Name: name,
			Attr: c.Attr,
			Map:  m,
			InZ:  !contains(spec.ExcludeFromZ, name),
		})
	}
	return s, nil
}

// buildAuxCol aggregates the auxiliary measure per join value (mean when
// several rows share a value), then z-scores across values.
func buildAuxCol(aux Aux) (Col, error) {
	if !aux.Table.HasDim(aux.JoinAttr) {
		return Col{}, fmt.Errorf("feature: auxiliary %q lacks join attribute %q", aux.Name, aux.JoinAttr)
	}
	if !aux.Table.HasMeasure(aux.Measure) {
		return Col{}, fmt.Errorf("feature: auxiliary %q lacks measure %q", aux.Name, aux.Measure)
	}
	keys := aux.Table.Dim(aux.JoinAttr)
	ms := aux.Table.Measure(aux.Measure)
	sums := make(map[string]float64)
	counts := make(map[string]float64)
	for i, k := range keys {
		sums[k] += ms[i]
		counts[k]++
	}
	vals := make([]string, 0, len(sums))
	for k := range sums {
		vals = append(vals, k)
	}
	sort.Strings(vals)
	raw := make([]float64, len(vals))
	for i, v := range vals {
		raw[i] = sums[v] / counts[v]
	}
	z := mat.Standardize(raw)
	m := make(map[string]float64, len(vals))
	for i, v := range vals {
		m[v] = z[i]
	}
	return Col{Name: "aux:" + aux.Name, Attr: aux.JoinAttr, Map: m}, nil
}

// DenseX renders the feature set as a dense design matrix with one row per
// group (in group order), group-feature columns last.
func (s *Set) DenseX(groups *agg.Result) *mat.Matrix {
	k := s.NumCols()
	x := mat.New(len(groups.Groups), k)
	attrIdx := make([]int, len(s.Cols))
	for ci, c := range s.Cols {
		attrIdx[ci] = indexOf(groups.Attrs, c.Attr)
	}
	for gi, g := range groups.Groups {
		for ci, c := range s.Cols {
			x.Set(gi, ci, c.Value(g.Vals[attrIdx[ci]]))
		}
		for ei, e := range s.Extra {
			x.Set(gi, len(s.Cols)+ei, e.Vals[gi])
		}
	}
	return x
}

// Row builds a feature row for an arbitrary assignment of the group-by
// attributes — used to score empty drill-down groups, which have no observed
// row. Group-feature columns default to 0 (their post-standardization mean).
func (s *Set) Row(vals map[string]string) []float64 {
	row := make([]float64, s.NumCols())
	for ci, c := range s.Cols {
		row[ci] = c.Value(vals[c.Attr])
	}
	return row
}

// GroupRow renders one group's feature row.
func (s *Set) GroupRow(groups *agg.Result, gi int) []float64 {
	row := make([]float64, s.NumCols())
	g := groups.Groups[gi]
	for ci, c := range s.Cols {
		row[ci] = c.Value(g.Vals[indexOf(groups.Attrs, c.Attr)])
	}
	for ei, e := range s.Extra {
		row[len(s.Cols)+ei] = e.Vals[gi]
	}
	return row
}

// FactorColumns renders the feature set as factorised columns over the
// factorizer's attribute value tables. Sets containing multi-attribute group
// features have no factorisation and return an error.
func (s *Set) FactorColumns(f *factor.Factorizer) ([]fmatrix.Column, error) {
	if len(s.Extra) > 0 {
		return nil, fmt.Errorf("feature: %d group features have no factorised form", len(s.Extra))
	}
	out := make([]fmatrix.Column, len(s.Cols))
	for ci, c := range s.Cols {
		ai, ok := f.AttrIndex(c.Attr)
		if !ok {
			return nil, fmt.Errorf("feature: attribute %q not in factorizer", c.Attr)
		}
		vals, _ := f.CountVals(ai)
		fv := make([]float64, len(vals))
		for i, v := range vals {
			fv[i] = c.Value(v)
		}
		out[ci] = fmatrix.Column{Name: c.Name, Attr: ai, Vals: fv}
	}
	return out, nil
}

// ZMask returns, per column, whether it participates in the random-effects
// design Z (group-feature columns included, in dense column order).
func (s *Set) ZMask() []bool {
	mask := make([]bool, s.NumCols())
	for i, c := range s.Cols {
		mask[i] = c.InZ
	}
	for i, e := range s.Extra {
		mask[len(s.Cols)+i] = e.InZ
	}
	return mask
}

// ClusterStarts returns the start indices of the parent clusters in a sorted
// group-by result: groups sharing every attribute value except the last form
// one cluster. The result is suitable for mlm.NewDense.
func ClusterStarts(groups *agg.Result) []int {
	if len(groups.Groups) == 0 {
		return nil
	}
	var starts []int
	prev := ""
	for gi, g := range groups.Groups {
		prefix := data.EncodeKey(g.Vals[:len(g.Vals)-1])
		if gi == 0 || prefix != prev {
			starts = append(starts, gi)
			prev = prefix
		}
	}
	return starts
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func indexOf(list []string, v string) int {
	for i, x := range list {
		if x == v {
			return i
		}
	}
	return -1
}
