package feature

import (
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/factor"
)

// demo dataset: two districts × two years, severity measure.
func demo() *data.Dataset {
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	d := data.New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	rows := []struct {
		dist, vil, yr string
		sev           float64
	}{
		{"Ofla", "Adishim", "1986", 8},
		{"Ofla", "Adishim", "1987", 6},
		{"Ofla", "Darube", "1986", 2},
		{"Ofla", "Darube", "1987", 3},
		{"Raya", "Kukufto", "1986", 7},
		{"Raya", "Kukufto", "1987", 5},
	}
	for _, r := range rows {
		d.AppendRowVals([]string{r.dist, r.vil, r.yr}, []float64{r.sev})
	}
	return d
}

func TestBuildMainEffects(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"district", "village", "year"}, "severity")
	set, err := Build(groups, Spec{Target: agg.Mean})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: intercept + main:district + main:year. main:village is
	// dropped as leaky (each village+year group is unique per village? no —
	// villages appear in two years, so village is kept).
	names := map[string]bool{}
	for _, c := range set.Cols {
		names[c.Name] = true
	}
	if !names["intercept"] || !names["main:district"] || !names["main:year"] || !names["main:village"] {
		t.Fatalf("columns = %v", names)
	}
	// main:year for 1986: median of means {8, 2, 7} = 7.
	var yearCol Col
	for _, c := range set.Cols {
		if c.Name == "main:year" {
			yearCol = c
		}
	}
	if got := yearCol.Value("1986"); got != 7 {
		t.Errorf("main:year(1986) = %v, want 7", got)
	}
	// Unknown value falls back to the global median.
	if got := yearCol.Value("2999"); got != yearCol.Default {
		t.Errorf("unknown value = %v, want default", got)
	}
}

func TestLeakGuardDropsOneToOneAttr(t *testing.T) {
	d := demo()
	// Group by village only: each village value is its own group → leaky.
	groups := agg.GroupBy(d, []string{"village"}, "severity")
	set, err := Build(groups, Spec{Target: agg.Mean})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range set.Cols {
		if c.Name == "main:village" {
			t.Error("leaky main:village should be dropped")
		}
	}
	// KeepLeaky retains it.
	set2, err := Build(groups, Spec{Target: agg.Mean, KeepLeaky: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range set2.Cols {
		if c.Name == "main:village" {
			found = true
		}
	}
	if !found {
		t.Error("KeepLeaky should retain main:village")
	}
}

func auxRainfall() *data.Dataset {
	aux := data.New("sensing", []string{"village"}, []string{"rainfall"}, nil)
	aux.AppendRowVals([]string{"Adishim"}, []float64{150})
	aux.AppendRowVals([]string{"Darube"}, []float64{600})
	aux.AppendRowVals([]string{"Kukufto"}, []float64{200})
	return aux
}

func TestAuxFeature(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"district", "village", "year"}, "severity")
	set, err := Build(groups, Spec{
		Target: agg.Mean,
		Aux:    []Aux{{Name: "rain", Table: auxRainfall(), JoinAttr: "village", Measure: "rainfall"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rainCol *Col
	for i := range set.Cols {
		if set.Cols[i].Name == "aux:rain" {
			rainCol = &set.Cols[i]
		}
	}
	if rainCol == nil {
		t.Fatal("aux:rain missing")
	}
	// Z-scored: Darube has the largest rainfall → the largest feature.
	if rainCol.Value("Darube") <= rainCol.Value("Adishim") {
		t.Error("z-scored rainfall ordering wrong")
	}
	// Mean of the z-scores is 0.
	sum := rainCol.Value("Adishim") + rainCol.Value("Darube") + rainCol.Value("Kukufto")
	if math.Abs(sum) > 1e-9 {
		t.Errorf("z-scores sum to %v", sum)
	}
}

func TestAuxNotApplicableWithoutAttr(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"district", "year"}, "severity")
	set, err := Build(groups, Spec{
		Target: agg.Mean,
		Aux:    []Aux{{Name: "rain", Table: auxRainfall(), JoinAttr: "village", Measure: "rainfall"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range set.Cols {
		if c.Name == "aux:rain" {
			t.Error("aux feature should not apply before drilling to village")
		}
	}
}

func TestAuxErrors(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"village"}, "severity")
	if _, err := Build(groups, Spec{Target: agg.Mean, Aux: []Aux{{Name: "bad", Table: auxRainfall(), JoinAttr: "nope", Measure: "rainfall"}}}); err == nil {
		// JoinAttr not in groups.Attrs → silently skipped, not an error.
		t.Log("aux with unknown join attr skipped")
	}
	bad := data.New("aux", []string{"village"}, []string{"x"}, nil)
	if _, err := Build(groups, Spec{Target: agg.Mean, Aux: []Aux{{Name: "bad", Table: bad, JoinAttr: "village", Measure: "rainfall"}}}); err == nil {
		t.Error("expected missing-measure error")
	}
}

func TestCustomFeature(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"district", "year"}, "severity")
	set, err := Build(groups, Spec{
		Target: agg.Mean,
		Custom: []Custom{{
			Name: "yearnum",
			Attr: "year",
			Fn: func(vals []string, _ *agg.Result) map[string]float64 {
				m := map[string]float64{}
				for i, v := range vals {
					m[v] = float64(i)
				}
				return m
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var c *Col
	for i := range set.Cols {
		if set.Cols[i].Name == "custom:yearnum" {
			c = &set.Cols[i]
		}
	}
	if c == nil {
		t.Fatal("custom feature missing")
	}
	if c.Value("1986") != 0 || c.Value("1987") != 1 {
		t.Errorf("custom values wrong: %v %v", c.Value("1986"), c.Value("1987"))
	}
}

func TestCustomFeatureNilResult(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"year"}, "severity")
	_, err := Build(groups, Spec{
		Target: agg.Mean,
		Custom: []Custom{{Name: "nil", Attr: "year", Fn: func([]string, *agg.Result) map[string]float64 { return nil }}},
	})
	if err == nil {
		t.Error("expected error for nil custom feature result")
	}
}

func TestDenseXShapeAndValues(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"district", "year"}, "severity")
	set, err := Build(groups, Spec{Target: agg.Mean})
	if err != nil {
		t.Fatal(err)
	}
	x := set.DenseX(groups)
	if x.Rows != len(groups.Groups) || x.Cols != len(set.Cols) {
		t.Fatalf("DenseX shape %dx%d", x.Rows, x.Cols)
	}
	// Intercept column is all ones.
	for i := 0; i < x.Rows; i++ {
		if x.At(i, 0) != 1 {
			t.Errorf("intercept row %d = %v", i, x.At(i, 0))
		}
	}
	// GroupRow agrees with DenseX.
	row := set.GroupRow(groups, 2)
	for j := range row {
		if row[j] != x.At(2, j) {
			t.Errorf("GroupRow[%d] = %v, want %v", j, row[j], x.At(2, j))
		}
	}
}

func TestFactorColumnsMatchDense(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"year", "district"}, "severity")
	set, err := Build(groups, Spec{Target: agg.Mean})
	if err != nil {
		t.Fatal(err)
	}
	timeSrc, err := factor.SourceFromDataset(d, data.Hierarchy{Name: "time", Attrs: []string{"year"}})
	if err != nil {
		t.Fatal(err)
	}
	geoSrc, err := factor.SourceFromDataset(d, data.Hierarchy{Name: "geo", Attrs: []string{"district", "village"}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := factor.New([]*factor.Source{timeSrc, geoSrc}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := set.FactorColumns(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != len(set.Cols) {
		t.Fatalf("FactorColumns count = %d, want %d", len(cols), len(set.Cols))
	}
	// The year main-effect column values must match the Col map.
	for ci, c := range set.Cols {
		vals, _ := f.CountVals(cols[ci].Attr)
		for vi, v := range vals {
			if got := cols[ci].Vals[vi]; got != c.Value(v) {
				t.Errorf("col %q value %q = %v, want %v", c.Name, v, got, c.Value(v))
			}
		}
	}
	// Unknown attribute errors.
	set.Cols[0].Attr = "bogus"
	if _, err := set.FactorColumns(f); err == nil {
		t.Error("expected unknown-attribute error")
	}
}

func TestZMaskAndExclude(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"district", "year"}, "severity")
	set, err := Build(groups, Spec{Target: agg.Mean, ExcludeFromZ: []string{"main:year"}})
	if err != nil {
		t.Fatal(err)
	}
	mask := set.ZMask()
	for i, c := range set.Cols {
		want := c.Name != "main:year"
		if mask[i] != want {
			t.Errorf("ZMask[%s] = %v, want %v", c.Name, mask[i], want)
		}
	}
}

func TestClusterStarts(t *testing.T) {
	d := demo()
	groups := agg.GroupBy(d, []string{"district", "village"}, "severity")
	starts := ClusterStarts(groups)
	// Groups sorted: (Ofla,Adishim), (Ofla,Darube), (Raya,Kukufto) →
	// clusters at 0 (Ofla) and 2 (Raya).
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 2 {
		t.Errorf("ClusterStarts = %v", starts)
	}
	// Single attribute → single cluster.
	g1 := agg.GroupBy(d, []string{"year"}, "severity")
	if s := ClusterStarts(g1); len(s) != 1 || s[0] != 0 {
		t.Errorf("single-attr ClusterStarts = %v", s)
	}
	if s := ClusterStarts(&agg.Result{}); s != nil {
		t.Errorf("empty ClusterStarts = %v", s)
	}
}

func TestBuildEmptyGroups(t *testing.T) {
	if _, err := Build(&agg.Result{}, Spec{Target: agg.Mean}); err == nil {
		t.Error("expected error for empty groups")
	}
}
