package feature

import (
	"fmt"
	"sort"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/mat"
)

// GroupFeature is a multi-attribute feature (Appendix H): a feature whose
// value depends on the whole group key rather than a single attribute —
// e.g. a temporal lag ("this location's statistic on the previous day").
// Fn returns one value per group, aligned with groups.Groups.
//
// Because a multi-attribute feature has no single-attribute factorisation,
// its columns exist only in the dense rendering; building factorised columns
// for a set containing group features returns an error, and the engine falls
// back to the naive trainer (exactly the regime Appendix H describes: with
// features over all attributes the factorised matrix has no redundancy left
// to exploit).
type GroupFeature struct {
	Name string
	// Fn receives the group-by result and the statistic being modeled (so
	// e.g. a lag feature lags the count when the count model is trained and
	// the mean when the mean model is trained).
	Fn func(groups *agg.Result, target agg.Func) []float64
}

// extraCol is a materialized per-group feature column.
type extraCol struct {
	Name string
	Vals []float64
	InZ  bool
}

// BuildWithGroupFeatures constructs the feature set and appends the
// materialized multi-attribute features.
func BuildWithGroupFeatures(groups *agg.Result, spec Spec, gfs []GroupFeature) (*Set, error) {
	s, err := Build(groups, spec)
	if err != nil {
		return nil, err
	}
	for _, gf := range gfs {
		vals := gf.Fn(groups, spec.Target)
		if len(vals) != len(groups.Groups) {
			return nil, fmt.Errorf("feature: group feature %q returned %d values for %d groups",
				gf.Name, len(vals), len(groups.Groups))
		}
		name := "group:" + gf.Name
		s.Extra = append(s.Extra, extraCol{
			Name: name,
			Vals: vals,
			InZ:  !contains(spec.ExcludeFromZ, name),
		})
	}
	return s, nil
}

// LagFeature builds a temporal lag group feature: each group's feature is
// the modeled statistic of the group whose timeAttr value precedes it by lag
// positions (in the sorted order of timeAttr values), with every other
// attribute equal. Groups without a lagged counterpart receive their own
// statistic (no signal).
func LagFeature(timeAttr string, lag int) GroupFeature {
	return GroupFeature{
		Name: fmt.Sprintf("lag%d:%s", lag, timeAttr),
		Fn: func(groups *agg.Result, target agg.Func) []float64 {
			ti := indexOf(groups.Attrs, timeAttr)
			out := make([]float64, len(groups.Groups))
			if ti < 0 {
				for gi, g := range groups.Groups {
					out[gi] = g.Stats.Get(target)
				}
				return out
			}
			// Sorted distinct time values → position index.
			pos := map[string]int{}
			var order []string
			for _, g := range groups.Groups {
				if _, ok := pos[g.Vals[ti]]; !ok {
					pos[g.Vals[ti]] = 0
					order = append(order, g.Vals[ti])
				}
			}
			sortStrings(order)
			for i, v := range order {
				pos[v] = i
			}
			// Look up the group with the time value replaced by the value
			// lag positions earlier.
			for gi, g := range groups.Groups {
				p := pos[g.Vals[ti]] - lag
				out[gi] = g.Stats.Get(target)
				if p < 0 {
					continue
				}
				vals := append([]string(nil), g.Vals...)
				vals[ti] = order[p]
				if prev, ok := groups.Get(vals); ok {
					out[gi] = prev.Stats.Get(target)
				}
			}
			return out
		},
	}
}

func sortStrings(s []string) { sort.Strings(s) }

// AuxGroupFeature joins an auxiliary table on multiple attributes (the
// multi-attribute external feature of Appendix H): each group's feature is
// the mean of the auxiliary measure over rows matching the group's values of
// joinAttrs, z-scored across groups. Groups without a match receive 0 (the
// post-standardization mean).
func AuxGroupFeature(name string, table *data.Dataset, joinAttrs []string, measure string) GroupFeature {
	return GroupFeature{
		Name: "aux:" + name,
		Fn: func(groups *agg.Result, _ agg.Func) []float64 {
			sums := make(map[string]float64)
			counts := make(map[string]float64)
			cols := make([][]string, len(joinAttrs))
			for i, a := range joinAttrs {
				cols[i] = table.Dim(a)
			}
			ms := table.Measure(measure)
			key := make([]string, len(joinAttrs))
			for r := 0; r < table.NumRows(); r++ {
				for i := range joinAttrs {
					key[i] = cols[i][r]
				}
				k := data.EncodeKey(key)
				sums[k] += ms[r]
				counts[k]++
			}
			idx := make([]int, len(joinAttrs))
			for i, a := range joinAttrs {
				idx[i] = indexOf(groups.Attrs, a)
			}
			out := make([]float64, len(groups.Groups))
			seen := make([]bool, len(groups.Groups))
			var obs []float64
			for gi, g := range groups.Groups {
				for i := range joinAttrs {
					if idx[i] < 0 {
						return out // join attribute absent: feature inert
					}
					key[i] = g.Vals[idx[i]]
				}
				k := data.EncodeKey(key)
				if c, ok := counts[k]; ok {
					out[gi] = sums[k] / c
					seen[gi] = true
					obs = append(obs, out[gi])
				}
			}
			m, s := mat.Mean(obs), mat.Std(obs)
			for gi := range out {
				if !seen[gi] || s == 0 {
					out[gi] = 0
					continue
				}
				out[gi] = (out[gi] - m) / s
			}
			return out
		},
	}
}
