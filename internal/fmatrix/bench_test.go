package fmatrix

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/factor"
	"repro/internal/mat"
)

// benchMatrix builds a 4-hierarchy, w=10 matrix (10^4 rows, 12 columns).
func benchMatrix(b *testing.B) *Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	srcs := make([]*factor.Source, 4)
	for h := 0; h < 4; h++ {
		paths := make([][]string, 10)
		for i := range paths {
			paths[i] = []string{fmt.Sprintf("h%d_v%d", h, i)}
		}
		src, err := factor.NewSource(fmt.Sprintf("h%d", h), []string{fmt.Sprintf("a%d", h)}, paths)
		if err != nil {
			b.Fatal(err)
		}
		srcs[h] = src
	}
	f, err := factor.New(srcs, nil)
	if err != nil {
		b.Fatal(err)
	}
	var cols []Column
	for ai := 0; ai < f.NumAttrs(); ai++ {
		for c := 0; c < 3; c++ {
			fv := make([]float64, 10)
			for i := range fv {
				fv[i] = rng.NormFloat64()
			}
			cols = append(cols, Column{Name: fmt.Sprintf("a%d_f%d", ai, c), Attr: ai, Vals: fv})
		}
	}
	m, err := New(f, cols)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkGramFactorised(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Gram()
	}
}

func BenchmarkGramNaive(b *testing.B) {
	m := benchMatrix(b)
	x, err := m.Materialize()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Gram()
	}
}

func BenchmarkMaterialize(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Materialize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTMulVecFactorised(b *testing.B) {
	m := benchMatrix(b)
	n, _ := m.F.RowCount()
	v := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TMulVec(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTMulVecNaive(b *testing.B) {
	m := benchMatrix(b)
	x, _ := m.Materialize()
	v := make([]float64, x.Rows)
	rng := rand.New(rand.NewSource(2))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.TMulVec(v)
	}
}

func BenchmarkMulVecFactorised(b *testing.B) {
	m := benchMatrix(b)
	w := make([]float64, m.NumCols())
	rng := rand.New(rand.NewSource(3))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVec(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVecNaive(b *testing.B) {
	m := benchMatrix(b)
	x, _ := m.Materialize()
	w := make([]float64, x.Cols)
	rng := rand.New(rand.NewSource(3))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulVec(w)
	}
}

func BenchmarkClusterViews(b *testing.B) {
	m := benchMatrix(b)
	cl, err := m.Clusters()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		if err := cl.ForEach(func(v *View) error {
			sink += v.Gram().At(0, 0)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		_ = sink
	}
}

var benchSink *mat.Matrix

func BenchmarkMultiGram(b *testing.B) {
	m := benchMatrix(b)
	mc := MultiColumn{Name: "m", Attrs: []int{0, 3}, Vals: map[string]float64{}}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			mc.Vals[MultiKey(i, j)] = rng.NormFloat64()
		}
	}
	mm, err := NewMulti(m.F, m.Cols, []MultiColumn{mc})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := mm.Gram()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = g
	}
}
