package fmatrix

import (
	"fmt"

	"repro/internal/mat"
)

// Clusters partitions the implicit matrix rows into the multi-level model's
// clusters: rows sharing the values of every attribute except the last (the
// intra-cluster / drill-down attribute, §3.2, Appendix F). Because the
// drill-down hierarchy is ordered last, each cluster is a contiguous row
// range: one combination of the other hierarchies' paths × one parent value
// in the last hierarchy.
type Clusters struct {
	m         *Matrix
	numPrefix int      // combinations of the non-last hierarchies' leaves
	ranges    [][2]int // child (lo, hi) ranges per parent value in the last hierarchy
	rowsPer   int      // leaves of the last hierarchy (rows per prefix combination)
	lastAttr  int
}

// Clusters returns the cluster partition of the matrix, or an error when the
// implicit row count is too large to address.
func (m *Matrix) Clusters() (*Clusters, error) {
	if _, err := m.F.RowCount(); err != nil {
		return nil, err
	}
	f := m.F
	h := f.NumHierarchies() - 1
	ch := f.Chain(h)
	c := &Clusters{
		m:        m,
		rowsPer:  ch.Leaves(),
		lastAttr: f.NumAttrs() - 1,
	}
	np := 1.0
	for pos := 0; pos < h; pos++ {
		np *= f.Leaves(pos)
	}
	c.numPrefix = int(np)
	if ch.Depth() == 1 {
		c.ranges = [][2]int{{0, ch.Leaves()}}
	} else {
		parent := ch.Levels[ch.Depth()-2]
		c.ranges = make([][2]int, len(parent.Vals))
		for i := range parent.Vals {
			c.ranges[i] = [2]int{parent.ChildOff[i], parent.ChildOff[i+1]}
		}
	}
	return c, nil
}

// NumClusters returns G, the number of clusters.
func (c *Clusters) NumClusters() int { return c.numPrefix * len(c.ranges) }

// View describes one cluster and provides its factorised matrix operations.
// The inter-cluster columns are constant across the cluster's rows; the
// intra-cluster columns (those bound to the last attribute) vary.
type View struct {
	Index int // cluster index
	Start int // first row of the cluster in matrix row order
	N     int // number of rows

	cols      []Column
	isIntra   []bool
	interF    []float64   // per column: its constant value (inter only)
	intraVals [][]float64 // per column: its per-row values (intra only)
	intraCols []int       // indices of the intra columns
	intraSums []float64   // per intra column (aligned with intraCols): Σ values
}

// View materializes the cluster descriptor for cluster index ci.
func (c *Clusters) View(ci int) (*View, error) {
	if ci < 0 || ci >= c.NumClusters() {
		return nil, fmt.Errorf("fmatrix: cluster %d out of range 0..%d", ci, c.NumClusters()-1)
	}
	f := c.m.F
	prefixIdx := ci / len(c.ranges)
	parentIdx := ci % len(c.ranges)
	lo, hi := c.ranges[parentIdx][0], c.ranges[parentIdx][1]

	v := &View{
		Index:     ci,
		Start:     prefixIdx*c.rowsPer + lo,
		N:         hi - lo,
		cols:      c.m.Cols,
		isIntra:   make([]bool, len(c.m.Cols)),
		interF:    make([]float64, len(c.m.Cols)),
		intraVals: make([][]float64, len(c.m.Cols)),
	}

	// Decode the prefix combination into per-hierarchy leaf indices
	// (mixed-radix, first hierarchy slowest).
	nh := f.NumHierarchies()
	leaf := make([]int, nh-1)
	rem := prefixIdx
	for pos := nh - 2; pos >= 0; pos-- {
		l := int(f.Leaves(pos))
		leaf[pos] = rem % l
		rem /= l
	}
	// Per-attribute value indices for the inter attributes.
	attrVal := make([]int, f.NumAttrs())
	ai := 0
	for pos := 0; pos < nh-1; pos++ {
		ch := f.Chain(pos)
		for l := 0; l < ch.Depth(); l++ {
			attrVal[ai] = ch.AncestorIdx(l, leaf[pos])
			ai++
		}
	}
	// Parent value of the last hierarchy and its ancestors: walk bottom-up
	// from the parent level through the Parent linkage.
	lastCh := f.Chain(nh - 1)
	if lastCh.Depth() > 1 {
		idx := parentIdx
		for l := lastCh.Depth() - 2; l >= 0; l-- {
			attrVal[ai+l] = idx
			if l > 0 {
				idx = lastCh.Levels[l].Parent[idx]
			}
		}
	}

	for colIdx, col := range c.m.Cols {
		if col.Attr == c.lastAttr {
			v.isIntra[colIdx] = true
			vals := col.Vals[lo:hi]
			v.intraVals[colIdx] = vals
			v.intraCols = append(v.intraCols, colIdx)
			v.intraSums = append(v.intraSums, mat.Sum(vals))
		} else {
			v.interF[colIdx] = col.Vals[attrVal[col.Attr]]
		}
	}
	return v, nil
}

// Gram computes XᵢᵀXᵢ for the cluster (Algorithm 5): inter×inter cells are
// n·fᵢ·fⱼ, inter×intra cells reuse the intra column's sum, and intra×intra
// cells are direct dot products over the cluster's rows.
func (v *View) Gram() *mat.Matrix {
	k := len(v.cols)
	out := mat.New(k, k)
	// Per-intra-column sums, precomputed at view construction.
	sums := make([]float64, k)
	for j, ci := range v.intraCols {
		sums[ci] = v.intraSums[j]
	}
	nf := float64(v.N)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			var cell float64
			switch {
			case !v.isIntra[i] && !v.isIntra[j]:
				cell = nf * v.interF[i] * v.interF[j]
			case v.isIntra[i] && !v.isIntra[j]:
				cell = v.interF[j] * sums[i]
			case !v.isIntra[i] && v.isIntra[j]:
				cell = v.interF[i] * sums[j]
			default:
				cell = mat.Dot(v.intraVals[i], v.intraVals[j])
			}
			out.Set(i, j, cell)
			out.Set(j, i, cell)
		}
	}
	return out
}

// TMulVec computes Xᵢᵀ·r for the cluster (Algorithm 6 with one input row):
// inter columns multiply the row sum; intra columns take a direct dot
// product. r must have length v.N.
func (v *View) TMulVec(r []float64) []float64 {
	if len(r) != v.N {
		panic(fmt.Sprintf("fmatrix: cluster TMulVec length %d, want %d", len(r), v.N))
	}
	rowSum := mat.Sum(r)
	out := make([]float64, len(v.cols))
	for i, f := range v.interF {
		out[i] = f * rowSum
	}
	for _, ci := range v.intraCols {
		out[ci] = mat.Dot(v.intraVals[ci], r)
	}
	return out
}

// MulVec computes Xᵢ·w for the cluster (Algorithm 7 with one input column):
// the inter columns contribute a shared base value; the intra columns add
// the per-row variation.
func (v *View) MulVec(w []float64) []float64 {
	if len(w) != len(v.cols) {
		panic(fmt.Sprintf("fmatrix: cluster MulVec length %d, want %d", len(w), len(v.cols)))
	}
	var base float64
	for i, f := range v.interF {
		base += f * w[i] // interF is 0 for intra columns
	}
	out := make([]float64, v.N)
	for r := range out {
		out[r] = base
	}
	for _, ci := range v.intraCols {
		wi := w[ci]
		if wi == 0 {
			continue
		}
		vals := v.intraVals[ci]
		for r := range out {
			out[r] += vals[r] * wi
		}
	}
	return out
}

// ForEach visits every cluster in row order.
func (c *Clusters) ForEach(fn func(v *View) error) error {
	for ci := 0; ci < c.NumClusters(); ci++ {
		v, err := c.View(ci)
		if err != nil {
			return err
		}
		if err := fn(v); err != nil {
			return err
		}
	}
	return nil
}
