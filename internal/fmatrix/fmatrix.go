// Package fmatrix implements Reptile's factorised feature matrix and the
// matrix operations the EM trainer is bottlenecked by (§4.1–§4.2, Appendix
// E–F): the gram matrix XᵀX, left multiplication B·X, right multiplication
// X·A, and their per-cluster counterparts, all computed directly over the
// factorised representation without materializing X.
//
// A feature matrix is a factorizer plus a set of columns; each column is
// bound to one attribute and maps that attribute's values to feature values
// (the one-to-one attribute/feature isolation of Appendix B). Multiple
// columns may be bound to the same attribute — e.g. the attribute's own
// main-effect feature plus auxiliary-dataset features — and the intercept is
// a constant-1 column bound to the first attribute.
package fmatrix

import (
	"fmt"

	"repro/internal/factor"
	"repro/internal/mat"
)

// Column is one feature column bound to an attribute of the factorizer.
// Vals[k] is the feature value of the attribute's k'th distinct value (in
// path-sorted order).
type Column struct {
	Name string
	Attr int
	Vals []float64
}

// Matrix is the factorised feature matrix: the implicit row set is the cross
// product of the factorizer's hierarchy paths; the columns are feature maps
// over attribute values.
type Matrix struct {
	F    *factor.Factorizer
	Cols []Column

	colsOfAttr [][]int // per attribute index: column indices bound to it
}

// New assembles a feature matrix and validates that every column's value
// table matches its attribute's cardinality.
func New(f *factor.Factorizer, cols []Column) (*Matrix, error) {
	m := &Matrix{F: f, Cols: cols, colsOfAttr: make([][]int, f.NumAttrs())}
	for ci, c := range cols {
		if c.Attr < 0 || c.Attr >= f.NumAttrs() {
			return nil, fmt.Errorf("fmatrix: column %q bound to attribute %d of %d", c.Name, c.Attr, f.NumAttrs())
		}
		vals, _ := f.CountVals(c.Attr)
		if len(c.Vals) != len(vals) {
			return nil, fmt.Errorf("fmatrix: column %q has %d values, attribute %q has %d",
				c.Name, len(c.Vals), f.Attrs()[c.Attr].Name, len(vals))
		}
		m.colsOfAttr[c.Attr] = append(m.colsOfAttr[c.Attr], ci)
	}
	return m, nil
}

// NumCols returns the number of feature columns.
func (m *Matrix) NumCols() int { return len(m.Cols) }

// N returns the implicit number of rows.
func (m *Matrix) N() float64 { return m.F.N() }

// Materialize expands the factorised matrix into a dense one. It is
// exponential in the number of hierarchies and exists for the naive baseline
// and for tests.
func (m *Matrix) Materialize() (*mat.Matrix, error) {
	n, err := m.F.RowCount()
	if err != nil {
		return nil, err
	}
	out := mat.New(n, len(m.Cols))
	it := m.F.Rows()
	row := 0
	cur := make([]float64, len(m.Cols))
	for {
		chg := it.Next()
		if chg == nil {
			break
		}
		for _, c := range chg {
			for _, ci := range m.colsOfAttr[c.Attr] {
				cur[ci] = m.Cols[ci].Vals[c.Val]
			}
		}
		copy(out.Data[row*len(m.Cols):(row+1)*len(m.Cols)], cur)
		row++
	}
	return out, nil
}

// Gram computes XᵀX directly over the factorised representation
// (Algorithm 2). Each cell is a weighted sum over decomposed aggregates:
// COUNT for same-attribute pairs, chain-walked COF for same-hierarchy pairs,
// and the factorised product-of-sums for cross-hierarchy pairs.
func (m *Matrix) Gram() *mat.Matrix {
	k := len(m.Cols)
	out := mat.New(k, k)
	n := m.F.N()
	// Per-column weighted sums S_c = Σ_v COUNT[v]·f(v), shared by every
	// cross-hierarchy pair the column participates in.
	sums := make([]float64, k)
	for ci, c := range m.Cols {
		_, counts := m.F.CountVals(c.Attr)
		var s float64
		for v, cnt := range counts {
			s += cnt * c.Vals[v]
		}
		sums[ci] = s
	}
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			ci, cj := m.Cols[i], m.Cols[j]
			p, q := ci.Attr, cj.Attr
			fi, fj := ci.Vals, cj.Vals
			if p > q {
				p, q = q, p
				fi, fj = fj, fi
			}
			var cell float64
			switch {
			case p == q:
				_, counts := m.F.CountVals(p)
				for v, cnt := range counts {
					cell += cnt * fi[v] * fj[v]
				}
				cell *= n / m.F.SufTotal(p)
			case m.F.SameHierarchy(p, q):
				var s float64
				m.F.Cof(p, q, func(vp, vq int, cnt float64) {
					s += cnt * fi[vp] * fj[vq]
				})
				cell = s * n / m.F.SufTotal(p)
			default:
				// (n/SufTotal(p)) · S_p · S_q / SufTotal(q): the COF of two
				// independent hierarchies factorises into a product of the
				// columns' weighted sums.
				cell = n * sums[i] * sums[j] / (m.F.SufTotal(p) * m.F.SufTotal(q))
			}
			out.Set(i, j, cell)
			out.Set(j, i, cell)
		}
	}
	return out
}

// LeftMul computes B·X (Algorithm 3) where B is q×n. Each row of B is
// preprocessed into a prefix sum so every feature value's contiguous run is
// accumulated with one range sum.
func (m *Matrix) LeftMul(b *mat.Matrix) (*mat.Matrix, error) {
	n, err := m.F.RowCount()
	if err != nil {
		return nil, err
	}
	if b.Cols != n {
		return nil, fmt.Errorf("fmatrix: LeftMul shape mismatch: B is %dx%d, X has %d rows", b.Rows, b.Cols, n)
	}
	out := mat.New(b.Rows, len(m.Cols))
	for r := 0; r < b.Rows; r++ {
		prefix := mat.PrefixSum(b.Data[r*n : (r+1)*n])
		for ci, c := range m.Cols {
			out.Set(r, ci, m.leftMulColumn(prefix, c))
		}
	}
	return out, nil
}

// TMulVec computes Xᵀ·v (an m-vector) — the q=1 left multiplication used in
// every EM iteration.
func (m *Matrix) TMulVec(v []float64) ([]float64, error) {
	n, err := m.F.RowCount()
	if err != nil {
		return nil, err
	}
	if len(v) != n {
		return nil, fmt.Errorf("fmatrix: TMulVec length %d, want %d", len(v), n)
	}
	prefix := mat.PrefixSum(v)
	out := make([]float64, len(m.Cols))
	for ci, c := range m.Cols {
		out[ci] = m.leftMulColumn(prefix, c)
	}
	return out, nil
}

// leftMulColumn evaluates row·col for one column given the row's prefix
// sums. The column of an attribute at hierarchy-order position h consists of
// ProdBefore(h) repetitions of its suffix pattern; within one repetition each
// value v occupies Count[v] consecutive rows in path-sorted order.
func (m *Matrix) leftMulColumn(prefix []float64, c Column) float64 {
	f := m.F
	a := f.Attrs()[c.Attr]
	_, counts := f.CountVals(c.Attr)
	reps := int(f.ProdBefore(a.Hier))
	period := int(f.SufTotal(c.Attr))
	var result float64
	start := 0
	for k := 0; k < reps; k++ {
		pos := start
		for v, cnt := range counts {
			w := int(cnt)
			result += c.Vals[v] * mat.RangeSum(prefix, pos, pos+w)
			pos += w
		}
		start += period
	}
	return result
}

// RightMul computes X·A (Algorithm 4) where A is m×p, using the row iterator
// to update each output row incrementally from its predecessor.
func (m *Matrix) RightMul(a *mat.Matrix) (*mat.Matrix, error) {
	n, err := m.F.RowCount()
	if err != nil {
		return nil, err
	}
	if a.Rows != len(m.Cols) {
		return nil, fmt.Errorf("fmatrix: RightMul shape mismatch: A is %dx%d, X has %d cols", a.Rows, a.Cols, len(m.Cols))
	}
	p := a.Cols
	out := mat.New(n, p)
	acc := make([]float64, p)
	curF := make([]float64, len(m.Cols))
	it := m.F.Rows()
	row := 0
	for {
		chg := it.Next()
		if chg == nil {
			break
		}
		for _, c := range chg {
			for _, ci := range m.colsOfAttr[c.Attr] {
				nv := m.Cols[ci].Vals[c.Val]
				d := nv - curF[ci]
				if d != 0 {
					arow := a.Data[ci*p : (ci+1)*p]
					for j := 0; j < p; j++ {
						acc[j] += d * arow[j]
					}
					curF[ci] = nv
				}
			}
		}
		copy(out.Data[row*p:(row+1)*p], acc)
		row++
	}
	return out, nil
}

// MulVec computes X·w (an n-vector) — the p=1 right multiplication used in
// every EM iteration.
func (m *Matrix) MulVec(w []float64) ([]float64, error) {
	if len(w) != len(m.Cols) {
		return nil, fmt.Errorf("fmatrix: MulVec length %d, want %d", len(w), len(m.Cols))
	}
	out, err := m.RightMul(mat.ColVec(w))
	if err != nil {
		return nil, err
	}
	return out.Data, nil
}
