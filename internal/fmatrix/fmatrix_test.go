package fmatrix

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/factor"
	"repro/internal/mat"
)

// paperMatrix builds the Figure 3 example: Time = {t1, t2}, Geo with
// d1 → {v1, v2}, d2 → {v3}, with one feature column per attribute plus an
// intercept bound to the first attribute.
func paperMatrix(t testing.TB) *Matrix {
	t.Helper()
	timeSrc, err := factor.NewSource("time", []string{"T"}, [][]string{{"t1"}, {"t2"}})
	if err != nil {
		t.Fatal(err)
	}
	geoSrc, err := factor.NewSource("geo", []string{"D", "V"}, [][]string{
		{"d1", "v1"}, {"d1", "v2"}, {"d2", "v3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := factor.New([]*factor.Source{timeSrc, geoSrc}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cols := []Column{
		{Name: "intercept", Attr: 0, Vals: []float64{1, 1}},
		{Name: "fT", Attr: 0, Vals: []float64{10, 20}},
		{Name: "fD", Attr: 1, Vals: []float64{1, 2}},
		{Name: "fV", Attr: 2, Vals: []float64{0.5, 1.5, 2.5}},
	}
	m, err := New(f, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	m := paperMatrix(t)
	if _, err := New(m.F, []Column{{Name: "bad", Attr: 99, Vals: nil}}); err == nil {
		t.Error("expected error for out-of-range attribute")
	}
	if _, err := New(m.F, []Column{{Name: "bad", Attr: 0, Vals: []float64{1}}}); err == nil {
		t.Error("expected error for cardinality mismatch")
	}
}

func TestMaterializePaperExample(t *testing.T) {
	m := paperMatrix(t)
	x, err := m.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := mat.FromRows([][]float64{
		{1, 10, 1, 0.5},
		{1, 10, 1, 1.5},
		{1, 10, 2, 2.5},
		{1, 20, 1, 0.5},
		{1, 20, 1, 1.5},
		{1, 20, 2, 2.5},
	})
	if !x.EqualApprox(want, 1e-12) {
		t.Errorf("Materialize =\n%v\nwant\n%v", x, want)
	}
}

func TestGramMatchesNaive(t *testing.T) {
	m := paperMatrix(t)
	x, err := m.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Gram().EqualApprox(x.Gram(), 1e-9) {
		t.Errorf("factorised Gram =\n%v\nnaive =\n%v", m.Gram(), x.Gram())
	}
}

func TestLeftMulMatchesNaive(t *testing.T) {
	m := paperMatrix(t)
	x, _ := m.Materialize()
	rng := rand.New(rand.NewSource(7))
	b := mat.New(3, x.Rows)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got, err := m.LeftMul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := b.Mul(x)
	if !got.EqualApprox(want, 1e-9) {
		t.Errorf("LeftMul =\n%v\nwant\n%v", got, want)
	}
}

func TestRightMulMatchesNaive(t *testing.T) {
	m := paperMatrix(t)
	x, _ := m.Materialize()
	rng := rand.New(rand.NewSource(8))
	a := mat.New(x.Cols, 2)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	got, err := m.RightMul(a)
	if err != nil {
		t.Fatal(err)
	}
	want := x.Mul(a)
	if !got.EqualApprox(want, 1e-9) {
		t.Errorf("RightMul =\n%v\nwant\n%v", got, want)
	}
}

func TestVecHelpers(t *testing.T) {
	m := paperMatrix(t)
	x, _ := m.Materialize()
	w := []float64{1, 0.5, -1, 2}
	got, err := m.MulVec(w)
	if err != nil {
		t.Fatal(err)
	}
	want := x.MulVec(w)
	for i := range want {
		if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	v := []float64{1, -1, 2, 0, 3, -2}
	gotT, err := m.TMulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	wantT := x.TMulVec(v)
	for i := range wantT {
		if d := gotT[i] - wantT[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("TMulVec[%d] = %v, want %v", i, gotT[i], wantT[i])
		}
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("expected MulVec length error")
	}
	if _, err := m.TMulVec([]float64{1}); err == nil {
		t.Error("expected TMulVec length error")
	}
}

// randomMatrix builds a random forest of hierarchies with random feature
// columns (possibly several per attribute).
func randomMatrix(r *rand.Rand) *Matrix {
	nh := 1 + r.Intn(3)
	srcs := make([]*factor.Source, nh)
	for h := 0; h < nh; h++ {
		depth := 1 + r.Intn(3)
		attrs := make([]string, depth)
		for l := range attrs {
			attrs[l] = fmt.Sprintf("h%d_a%d", h, l)
		}
		var paths [][]string
		id := 0
		var build func(prefix []string, level int)
		build = func(prefix []string, level int) {
			if level == depth {
				paths = append(paths, append([]string(nil), prefix...))
				return
			}
			kids := 1 + r.Intn(3)
			for k := 0; k < kids; k++ {
				id++
				build(append(prefix, fmt.Sprintf("h%d_l%d_%d", h, level, id)), level+1)
			}
		}
		build(nil, 0)
		src, err := factor.NewSource(fmt.Sprintf("h%d", h), attrs, paths)
		if err != nil {
			panic(err)
		}
		srcs[h] = src
	}
	depths := make([]int, nh)
	for h := range depths {
		depths[h] = 1 + r.Intn(len(srcs[h].Attrs))
	}
	f, err := factor.New(srcs, depths)
	if err != nil {
		panic(err)
	}
	var cols []Column
	for ai := 0; ai < f.NumAttrs(); ai++ {
		vals, _ := f.CountVals(ai)
		ncols := 1 + r.Intn(2)
		for c := 0; c < ncols; c++ {
			fv := make([]float64, len(vals))
			for i := range fv {
				fv[i] = r.NormFloat64()
			}
			cols = append(cols, Column{Name: fmt.Sprintf("a%d_c%d", ai, c), Attr: ai, Vals: fv})
		}
	}
	m, err := New(f, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// The central invariant of the paper's §4.2: every factorised operation
// agrees with the naive operation over the materialized matrix.
func TestFactorisedOpsMatchNaiveProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		m := randomMatrix(r)
		if m.N() > 3000 {
			continue
		}
		x, err := m.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if !m.Gram().EqualApprox(x.Gram(), 1e-6) {
			t.Fatalf("trial %d: Gram mismatch", trial)
		}
		b := mat.New(2, x.Rows)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		left, err := m.LeftMul(b)
		if err != nil {
			t.Fatal(err)
		}
		if !left.EqualApprox(b.Mul(x), 1e-6) {
			t.Fatalf("trial %d: LeftMul mismatch", trial)
		}
		a := mat.New(x.Cols, 2)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		right, err := m.RightMul(a)
		if err != nil {
			t.Fatal(err)
		}
		if !right.EqualApprox(x.Mul(a), 1e-6) {
			t.Fatalf("trial %d: RightMul mismatch", trial)
		}
	}
}

func TestClustersPartitionRows(t *testing.T) {
	m := paperMatrix(t)
	cl, err := m.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	// Last hierarchy is Geo at depth 2 → parents are districts (2) ×
	// prefix combinations = 2 times → 4 clusters.
	if cl.NumClusters() != 4 {
		t.Fatalf("NumClusters = %d, want 4", cl.NumClusters())
	}
	total := 0
	prevEnd := 0
	err = cl.ForEach(func(v *View) error {
		if v.Start != prevEnd {
			t.Errorf("cluster %d starts at %d, want %d", v.Index, v.Start, prevEnd)
		}
		prevEnd = v.Start + v.N
		total += v.N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Errorf("clusters cover %d rows, want 6", total)
	}
}

func TestClusterViewOutOfRange(t *testing.T) {
	m := paperMatrix(t)
	cl, _ := m.Clusters()
	if _, err := cl.View(99); err == nil {
		t.Error("expected out-of-range error")
	}
}

// Property: per-cluster factorised ops agree with naive ops over the
// materialized sub-matrices.
func TestClusterOpsMatchNaiveProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := rand.New(rand.NewSource(int64(500 + trial)))
		m := randomMatrix(r)
		if m.N() > 2000 {
			continue
		}
		x, err := m.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		cl, err := m.Clusters()
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		err = cl.ForEach(func(v *View) error {
			// Slice the materialized matrix to this cluster.
			sub := mat.New(v.N, x.Cols)
			copy(sub.Data, x.Data[v.Start*x.Cols:(v.Start+v.N)*x.Cols])
			covered += v.N
			if !v.Gram().EqualApprox(sub.Gram(), 1e-6) {
				t.Fatalf("trial %d cluster %d: Gram mismatch\nfact=\n%v\nnaive=\n%v", trial, v.Index, v.Gram(), sub.Gram())
			}
			rvec := make([]float64, v.N)
			for i := range rvec {
				rvec[i] = r.NormFloat64()
			}
			gotT := v.TMulVec(rvec)
			wantT := sub.TMulVec(rvec)
			for i := range wantT {
				if d := gotT[i] - wantT[i]; d > 1e-6 || d < -1e-6 {
					t.Fatalf("trial %d cluster %d: TMulVec mismatch", trial, v.Index)
				}
			}
			w := make([]float64, x.Cols)
			for i := range w {
				w[i] = r.NormFloat64()
			}
			gotM := v.MulVec(w)
			wantM := sub.MulVec(w)
			for i := range wantM {
				if d := gotM[i] - wantM[i]; d > 1e-6 || d < -1e-6 {
					t.Fatalf("trial %d cluster %d: MulVec mismatch", trial, v.Index)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if covered != int(m.N()) {
			t.Fatalf("trial %d: clusters cover %d of %v rows", trial, covered, m.N())
		}
	}
}

func TestClusterVecLengthPanics(t *testing.T) {
	m := paperMatrix(t)
	cl, _ := m.Clusters()
	v, _ := cl.View(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected TMulVec panic")
			}
		}()
		v.TMulVec([]float64{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected MulVec panic")
			}
		}()
		v.MulVec([]float64{1})
	}()
}
