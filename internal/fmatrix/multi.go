package fmatrix

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/factor"
	"repro/internal/mat"
)

// MultiColumn is a multi-attribute feature column (Appendix H): its value
// depends on the joint assignment of several attributes. Vals maps the
// MultiKey of the attributes' value indices to the feature value; missing
// assignments default to Default.
type MultiColumn struct {
	Name    string
	Attrs   []int // ascending flattened attribute indices
	Vals    map[string]float64
	Default float64
}

// MultiKey encodes a joint value-index assignment.
func MultiKey(idx ...int) string {
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// Value returns the feature value of one joint assignment.
func (c MultiColumn) Value(idx []int) float64 {
	if v, ok := c.Vals[MultiKey(idx...)]; ok {
		return v
	}
	return c.Default
}

// MultiMatrix augments a factorised feature matrix with multi-attribute
// columns. Dense column order is the single-attribute columns followed by
// the multi-attribute columns.
type MultiMatrix struct {
	*Matrix
	Multi []MultiColumn
}

// NewMulti assembles a multi-attribute feature matrix.
func NewMulti(f *factor.Factorizer, cols []Column, multi []MultiColumn) (*MultiMatrix, error) {
	base, err := New(f, cols)
	if err != nil {
		return nil, err
	}
	for _, mc := range multi {
		if len(mc.Attrs) == 0 {
			return nil, fmt.Errorf("fmatrix: multi column %q has no attributes", mc.Name)
		}
		for i, a := range mc.Attrs {
			if a < 0 || a >= f.NumAttrs() {
				return nil, fmt.Errorf("fmatrix: multi column %q attribute %d out of range", mc.Name, a)
			}
			if i > 0 && mc.Attrs[i] <= mc.Attrs[i-1] {
				return nil, fmt.Errorf("fmatrix: multi column %q attributes not ascending", mc.Name)
			}
		}
	}
	return &MultiMatrix{Matrix: base, Multi: multi}, nil
}

// NumCols returns the total column count.
func (m *MultiMatrix) NumCols() int { return len(m.Cols) + len(m.Multi) }

// Materialize expands the full matrix including multi-attribute columns.
func (m *MultiMatrix) Materialize() (*mat.Matrix, error) {
	base, err := m.Matrix.Materialize()
	if err != nil {
		return nil, err
	}
	out := mat.New(base.Rows, m.NumCols())
	for r := 0; r < base.Rows; r++ {
		copy(out.Data[r*out.Cols:], base.Data[r*base.Cols:(r+1)*base.Cols])
	}
	for mi, mc := range m.Multi {
		col := len(m.Cols) + mi
		idx := make([]int, len(mc.Attrs))
		err := m.F.ForEachRun(mc.Attrs, func(start, length int, vals []int) {
			copy(idx, vals)
			v := mc.Value(idx)
			for r := start; r < start+length; r++ {
				out.Data[r*out.Cols+col] = v
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Gram computes the full gram matrix. Single×single cells reuse the
// decomposed-aggregate formulas; any cell involving a multi column is
// evaluated by the Algorithm 8 traversal over the union attribute set's
// runs (each run contributes length × fᵢ × fⱼ).
func (m *MultiMatrix) Gram() (*mat.Matrix, error) {
	k := m.NumCols()
	out := mat.New(k, k)
	base := m.Matrix.Gram()
	for i := 0; i < len(m.Cols); i++ {
		for j := 0; j < len(m.Cols); j++ {
			out.Set(i, j, base.At(i, j))
		}
	}
	for mi := range m.Multi {
		for j := 0; j <= len(m.Cols)+mi; j++ {
			cell, err := m.gramCellMulti(len(m.Cols)+mi, j)
			if err != nil {
				return nil, err
			}
			out.Set(len(m.Cols)+mi, j, cell)
			out.Set(j, len(m.Cols)+mi, cell)
		}
	}
	return out, nil
}

// colEval captures how to evaluate a column's value from the union
// assignment: single columns read one position, multi columns a subset.
type colEval struct {
	single  bool
	sp      int   // union position for a single column
	mp      []int // union positions for a multi column
	col     Column
	mcol    MultiColumn
	scratch []int
}

func (e *colEval) value(vals []int) float64 {
	if e.single {
		return e.col.Vals[vals[e.sp]]
	}
	for i, p := range e.mp {
		e.scratch[i] = vals[p]
	}
	return e.mcol.Value(e.scratch)
}

// gramCellMulti computes one gram cell where column index i refers to a
// multi column (dense indexing: singles first).
func (m *MultiMatrix) gramCellMulti(i, j int) (float64, error) {
	evals := make([]*colEval, 2)
	var union []int
	pos := map[int]int{}
	addAttr := func(a int) int {
		if p, ok := pos[a]; ok {
			return p
		}
		pos[a] = len(union)
		union = append(union, a)
		return pos[a]
	}
	build := func(ci int) *colEval {
		if ci < len(m.Cols) {
			return &colEval{single: true, sp: addAttr(m.Cols[ci].Attr), col: m.Cols[ci]}
		}
		mc := m.Multi[ci-len(m.Cols)]
		e := &colEval{mcol: mc, scratch: make([]int, len(mc.Attrs))}
		for _, a := range mc.Attrs {
			e.mp = append(e.mp, addAttr(a))
		}
		return e
	}
	evals[0] = build(i)
	evals[1] = build(j)
	// ForEachRun needs ascending attrs; remap.
	order := make([]int, len(union))
	for i := range order {
		order[i] = i
	}
	sortByAttr(order, union)
	sorted := make([]int, len(union))
	remap := make([]int, len(union)) // old union position → sorted position
	for newPos, oldPos := range order {
		sorted[newPos] = union[oldPos]
		remap[oldPos] = newPos
	}
	for _, e := range evals {
		if e.single {
			e.sp = remap[e.sp]
		} else {
			for i := range e.mp {
				e.mp[i] = remap[e.mp[i]]
			}
		}
	}
	var cell float64
	err := m.F.ForEachRun(sorted, func(start, length int, vals []int) {
		cell += float64(length) * evals[0].value(vals) * evals[1].value(vals)
	})
	return cell, err
}

func sortByAttr(order, union []int) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && union[order[j]] < union[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// TMulVec computes Xᵀ·v including the multi columns: each multi column is a
// sum of range sums over its runs (Algorithm 9).
func (m *MultiMatrix) TMulVec(v []float64) ([]float64, error) {
	base, err := m.Matrix.TMulVec(v)
	if err != nil {
		return nil, err
	}
	out := make([]float64, m.NumCols())
	copy(out, base)
	prefix := mat.PrefixSum(v)
	for mi, mc := range m.Multi {
		var s float64
		idx := make([]int, len(mc.Attrs))
		err := m.F.ForEachRun(mc.Attrs, func(start, length int, vals []int) {
			copy(idx, vals)
			s += mc.Value(idx) * mat.RangeSum(prefix, start, start+length)
		})
		if err != nil {
			return nil, err
		}
		out[len(m.Cols)+mi] = s
	}
	return out, nil
}

// MulVec computes X·w including the multi columns.
func (m *MultiMatrix) MulVec(w []float64) ([]float64, error) {
	if len(w) != m.NumCols() {
		return nil, fmt.Errorf("fmatrix: MulVec length %d, want %d", len(w), m.NumCols())
	}
	out, err := m.Matrix.MulVec(w[:len(m.Cols)])
	if err != nil {
		return nil, err
	}
	for mi, mc := range m.Multi {
		wi := w[len(m.Cols)+mi]
		if wi == 0 {
			continue
		}
		idx := make([]int, len(mc.Attrs))
		err := m.F.ForEachRun(mc.Attrs, func(start, length int, vals []int) {
			copy(idx, vals)
			v := mc.Value(idx) * wi
			for r := start; r < start+length; r++ {
				out[r] += v
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
