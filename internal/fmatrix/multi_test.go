package fmatrix

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomMultiMatrix extends a random matrix with 1–2 multi-attribute
// columns over random attribute subsets.
func randomMultiMatrix(r *rand.Rand) *MultiMatrix {
	base := randomMatrix(r)
	f := base.F
	var multi []MultiColumn
	nm := 1 + r.Intn(2)
	for k := 0; k < nm; k++ {
		// Random ascending attribute subset of size 2..min(3, numAttrs).
		na := f.NumAttrs()
		size := 2
		if na < 2 {
			size = 1
		} else if na > 2 && r.Intn(2) == 0 {
			size = 3
		}
		perm := r.Perm(na)[:size]
		sortInts(perm)
		// Dedup (perm is already unique).
		mc := MultiColumn{
			Name:    fmt.Sprintf("multi%d", k),
			Attrs:   perm,
			Vals:    map[string]float64{},
			Default: r.NormFloat64(),
		}
		// Fill values for every joint assignment via run enumeration.
		_ = f.ForEachRun(perm, func(start, length int, vals []int) {
			key := MultiKey(vals...)
			if _, ok := mc.Vals[key]; !ok {
				mc.Vals[key] = r.NormFloat64()
			}
		})
		multi = append(multi, mc)
	}
	mm, err := NewMulti(f, base.Cols, multi)
	if err != nil {
		panic(err)
	}
	return mm
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Runs must partition the rows and agree with the materialized assignments.
func TestForEachRunPartitionsRows(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		m := randomMatrix(r)
		f := m.F
		if f.N() > 2000 {
			continue
		}
		rows, err := f.MaterializeValues()
		if err != nil {
			t.Fatal(err)
		}
		na := f.NumAttrs()
		size := 1 + r.Intn(na)
		attrs := r.Perm(na)[:size]
		sortInts(attrs)
		covered := 0
		err = f.ForEachRun(attrs, func(start, length int, vals []int) {
			if start != covered {
				t.Fatalf("trial %d: run starts at %d, want %d", trial, start, covered)
			}
			covered += length
			for rr := start; rr < start+length; rr++ {
				for ai, a := range attrs {
					if rows[rr][a] != vals[ai] {
						t.Fatalf("trial %d: row %d attr %d = %d, run says %d",
							trial, rr, a, rows[rr][a], vals[ai])
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if covered != len(rows) {
			t.Fatalf("trial %d: runs cover %d of %d rows", trial, covered, len(rows))
		}
	}
}

// Runs must be maximal relative to preceding rows (the previous row differs
// in at least one involved attribute at each run boundary).
func TestForEachRunMaximal(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	m := randomMatrix(r)
	f := m.F
	rows, err := f.MaterializeValues()
	if err != nil {
		t.Fatal(err)
	}
	attrs := []int{0}
	if f.NumAttrs() > 1 {
		attrs = []int{0, f.NumAttrs() - 1}
	}
	err = f.ForEachRun(attrs, func(start, length int, vals []int) {
		if start == 0 {
			return
		}
		same := true
		for ai, a := range attrs {
			if rows[start-1][a] != vals[ai] {
				same = false
			}
		}
		if same {
			t.Fatalf("run at %d is not maximal", start)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Multi-attribute operations must agree with the naive materialized matrix.
func TestMultiOpsMatchNaiveProperty(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		mm := randomMultiMatrix(r)
		if mm.F.N() > 2000 {
			continue
		}
		x, err := mm.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if x.Cols != mm.NumCols() {
			t.Fatalf("trial %d: materialized cols %d, want %d", trial, x.Cols, mm.NumCols())
		}
		g, err := mm.Gram()
		if err != nil {
			t.Fatal(err)
		}
		if !g.EqualApprox(x.Gram(), 1e-6) {
			t.Fatalf("trial %d: Gram mismatch", trial)
		}
		v := make([]float64, x.Rows)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		got, err := mm.TMulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		want := x.TMulVec(v)
		for i := range want {
			if d := got[i] - want[i]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("trial %d: TMulVec[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
		w := make([]float64, x.Cols)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		gotM, err := mm.MulVec(w)
		if err != nil {
			t.Fatal(err)
		}
		wantM := x.MulVec(w)
		for i := range wantM {
			if d := gotM[i] - wantM[i]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, gotM[i], wantM[i])
			}
		}
	}
}

func TestNewMultiValidation(t *testing.T) {
	m := paperMatrix(t)
	if _, err := NewMulti(m.F, m.Cols, []MultiColumn{{Name: "bad"}}); err == nil {
		t.Error("expected error for empty attrs")
	}
	if _, err := NewMulti(m.F, m.Cols, []MultiColumn{{Name: "bad", Attrs: []int{2, 1}}}); err == nil {
		t.Error("expected error for non-ascending attrs")
	}
	if _, err := NewMulti(m.F, m.Cols, []MultiColumn{{Name: "bad", Attrs: []int{99}}}); err == nil {
		t.Error("expected error for out-of-range attr")
	}
}

func TestMultiKeyAndValue(t *testing.T) {
	mc := MultiColumn{
		Attrs:   []int{0, 2},
		Vals:    map[string]float64{MultiKey(1, 2): 7},
		Default: -1,
	}
	if got := mc.Value([]int{1, 2}); got != 7 {
		t.Errorf("Value = %v, want 7", got)
	}
	if got := mc.Value([]int{0, 0}); got != -1 {
		t.Errorf("default Value = %v, want -1", got)
	}
}

func TestMulVecLengthError(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	mm := randomMultiMatrix(r)
	if _, err := mm.MulVec(make([]float64, 1)); err == nil {
		t.Error("expected length error")
	}
}

// The Appendix H worst case: a multi column over every attribute leaves no
// redundancy, and the run count equals the row count.
func TestMultiAllAttrsDegeneratesToRows(t *testing.T) {
	m := paperMatrix(t)
	f := m.F
	attrs := make([]int, f.NumAttrs())
	for i := range attrs {
		attrs[i] = i
	}
	runs := 0
	if err := f.ForEachRun(attrs, func(start, length int, vals []int) {
		runs++
		if length != 1 {
			t.Errorf("run length = %d, want 1", length)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.RowCount(); runs != n {
		t.Errorf("runs = %d, want %d", runs, n)
	}
}

func TestForEachRunEmptyAttrs(t *testing.T) {
	m := paperMatrix(t)
	calls := 0
	if err := m.F.ForEachRun(nil, func(start, length int, vals []int) {
		calls++
		if start != 0 || length != int(m.N()) {
			t.Errorf("empty-attrs run = (%d, %d)", start, length)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestMultiGramAgainstHandComputed(t *testing.T) {
	// Paper example with a multi column over (T, V): value = tIdx*10 + vIdx.
	m := paperMatrix(t)
	mc := MultiColumn{Name: "tv", Attrs: []int{0, 2}, Vals: map[string]float64{}}
	for ti := 0; ti < 2; ti++ {
		for vi := 0; vi < 3; vi++ {
			mc.Vals[MultiKey(ti, vi)] = float64(ti*10 + vi)
		}
	}
	mm, err := NewMulti(m.F, m.Cols, []MultiColumn{mc})
	if err != nil {
		t.Fatal(err)
	}
	x, err := mm.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// The multi column in row order: t1: (0,1,2), t2: (10,11,12).
	want := []float64{0, 1, 2, 10, 11, 12}
	col := x.Col(x.Cols - 1)
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("multi column = %v, want %v", col, want)
		}
	}
	g, err := mm.Gram()
	if err != nil {
		t.Fatal(err)
	}
	if !g.EqualApprox(x.Gram(), 1e-9) {
		t.Error("Gram mismatch on hand example")
	}
}
