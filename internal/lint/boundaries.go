package lint

// importRule is one declarative import constraint over a subtree of the
// repository. Rules bind production code only; _test.go files are exempt
// everywhere (the client's round-trip tests deliberately host the internal
// server in-process).
type importRule struct {
	// Tree is the module-relative directory subtree the rule governs.
	Tree string
	// ForbidTrees lists module-relative package subtrees (the package and
	// everything under it) the governed code must not import.
	ForbidTrees []string
	// ForbidExact lists single packages the governed code must not import;
	// their subpackages stay importable unless listed themselves.
	ForbidExact []string
	// StdlibOnly restricts imports to the standard library plus AllowTrees.
	StdlibOnly bool
	// AllowTrees lists module-relative subtrees exempt from StdlibOnly.
	AllowTrees []string
	// Why is the one-line rationale quoted in findings.
	Why string
}

// Boundaries enforces the public-API dependency arrows that
// scripts/check_boundaries.sh used to grep for, as typed import-graph rules:
//
//   - examples/ may only use the public SDK: no internal/ imports.
//   - reptile/api is the shared wire protocol: stdlib-only, vendorable.
//   - reptile/client must compile into processes that never link the
//     engine: stdlib plus reptile/api only.
//   - internal/ must not import the facade, the client, or sampledata —
//     the dependency arrow points one way (facade wraps engine).
//     reptile/api is exempt: internal/server marshals it by design.
//   - internal/core stays observability-free: it must not import
//     internal/obs (the SpanRecorder seam exists precisely so it never
//     has to).
type Boundaries struct {
	// Rules defaults to the repository's contract; tests may substitute.
	Rules []importRule
}

// NewBoundaries returns the analyzer with the repository's standard rules.
func NewBoundaries() *Boundaries {
	return &Boundaries{Rules: []importRule{
		{
			Tree:        "examples",
			ForbidTrees: []string{"internal"},
			Why:         "examples must use only the public SDK",
		},
		{
			Tree:       "reptile/api",
			StdlibOnly: true,
			Why:        "the wire protocol must stay vendorable by out-of-tree clients",
		},
		{
			Tree:       "reptile/client",
			StdlibOnly: true,
			AllowTrees: []string{"reptile/api"},
			Why:        "the client must compile without linking the engine",
		},
		{
			Tree:        "internal",
			ForbidExact: []string{"reptile"},
			ForbidTrees: []string{"reptile/client", "reptile/sampledata"},
			Why:         "the dependency arrow points one way: the facade wraps the engine",
		},
		{
			Tree:        "internal/core",
			ForbidTrees: []string{"internal/obs"},
			Why:         "the engine reports spans through the core-owned SpanRecorder seam",
		},
	}}
}

// Name implements Analyzer.
func (*Boundaries) Name() string { return "boundaries" }

// Doc implements Analyzer.
func (*Boundaries) Doc() string {
	return "enforce the public-API import boundaries (examples/ and reptile/{api,client} vs internal/)"
}

// forbidden reports whether a module-relative import path violates the rule.
func (rule *importRule) forbidden(rel string) bool {
	for _, t := range rule.ForbidExact {
		if rel == t {
			return true
		}
	}
	for _, t := range rule.ForbidTrees {
		if inTree(rel, t) {
			return true
		}
	}
	return false
}

// Run implements Analyzer.
func (b *Boundaries) Run(r *Repo) []Finding {
	var out []Finding
	for _, pkg := range r.Pkgs {
		for ri := range b.Rules {
			rule := &b.Rules[ri]
			if !inTree(pkg.Dir, rule.Tree) {
				continue
			}
			for _, f := range pkg.Files {
				if f.Test {
					continue
				}
				out = append(out, b.checkFile(r, rule, f)...)
			}
		}
	}
	return out
}

func (b *Boundaries) checkFile(r *Repo, rule *importRule, f *File) []Finding {
	var out []Finding
	for _, spec := range f.Ast.Imports {
		path := importPathOf(spec)
		if path == "" {
			continue
		}
		rel, inMod := r.InModule(path)
		if inMod && rule.forbidden(rel) {
			out = append(out, r.finding(b.Name(), f, spec.Pos(),
				"%s must not import %q: %s", rule.Tree, path, rule.Why))
			continue
		}
		if !rule.StdlibOnly || r.Stdlib(path) {
			continue
		}
		if inMod && allowed(rel, rule.AllowTrees) {
			continue
		}
		out = append(out, r.finding(b.Name(), f, spec.Pos(),
			"%s must stay stdlib-only but imports %q: %s", rule.Tree, path, rule.Why))
	}
	return out
}

func allowed(rel string, trees []string) bool {
	for _, t := range trees {
		if inTree(rel, t) {
			return true
		}
	}
	return false
}
