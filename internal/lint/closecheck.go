package lint

import (
	"go/ast"
)

// CloseCheck flags resource constructors whose result is neither closed nor
// handed off. The engine holds three kinds of OS-backed handles — *os.File,
// the WAL, and mmap-backed snapshots — and a leaked one is invisible in tests
// (the process exits) but fatal in the long-lived server: file descriptors
// and mappings accumulate until the kernel says no.
//
// The analysis is a deliberately simple per-function AST heuristic. A call to
// a known constructor binds its closeable result to an identifier; within the
// same function that identifier must either
//
//   - receive a .Close() (or unexported .close()) call, deferred or not, or
//   - escape: be returned, stored into a struct field, slice, map, or
//     composite literal, passed to another function, aliased, sent on a
//     channel, or have its address taken — ownership moved somewhere this
//     function cannot see.
//
// Anything else is a leak at function exit on at least one path. False
// positives (an exotic ownership transfer the walker cannot classify) carry a
// `//lint:ignore closecheck <reason>` directive. Test files are exempt:
// t.TempDir and process exit bound their leaks.
type CloseCheck struct {
	// Constructors maps "pkg.Func" (module-relative or stdlib package path)
	// to the index of the closeable value in the call's result list.
	Constructors map[string]int
}

// NewCloseCheck returns the analyzer bound to the repository's resource
// constructors.
func NewCloseCheck() *CloseCheck {
	return &CloseCheck{Constructors: map[string]int{
		"os.Open":       0,
		"os.Create":     0,
		"os.OpenFile":   0,
		"os.CreateTemp": 0,

		"internal/wal.Open": 0,

		"internal/store.OpenMappedFile":        0,
		"internal/store.OpenMapped":            0,
		"internal/store.OpenShardedMappedFile": 1,
		"internal/store.OpenShardedMapped":     1,

		"internal/shard.OpenMapped": 0,
	}}
}

// Name implements Analyzer.
func (*CloseCheck) Name() string { return "closecheck" }

// Doc implements Analyzer.
func (*CloseCheck) Doc() string {
	return "require a reachable Close (or ownership hand-off) for file/WAL/mmap constructor results"
}

// Run implements Analyzer.
func (c *CloseCheck) Run(r *Repo) []Finding {
	var out []Finding
	for _, pkg := range r.Pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			out = append(out, c.checkFile(r, f)...)
		}
	}
	return out
}

// importLocals maps each import's local identifier to its path, skipping dot
// and blank imports.
func importLocals(f *ast.File) map[string]string {
	m := make(map[string]string)
	for _, spec := range f.Imports {
		path := importPathOf(spec)
		if path == "" {
			continue
		}
		name := ""
		if spec.Name != nil {
			if spec.Name.Name == "." || spec.Name.Name == "_" {
				continue
			}
			name = spec.Name.Name
		} else if i := lastSlash(path); i >= 0 {
			name = path[i+1:]
		} else {
			name = path
		}
		m[name] = path
	}
	return m
}

// constructorOf resolves a call expression against the constructor table,
// returning the closeable result index.
func (c *CloseCheck) constructorOf(r *Repo, imports map[string]string, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return 0, false
	}
	path, ok := imports[x.Name]
	if !ok {
		return 0, false
	}
	if rel, inMod := r.InModule(path); inMod {
		path = rel
	}
	idx, ok := c.Constructors[path+"."+sel.Sel.Name]
	return idx, ok
}

func (c *CloseCheck) checkFile(r *Repo, f *File) []Finding {
	var out []Finding
	imports := importLocals(f.Ast)
	for _, decl := range f.Ast.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			idx, ok := c.constructorOf(r, imports, call)
			if !ok || idx >= len(as.Lhs) {
				return true
			}
			id, ok := as.Lhs[idx].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			if !closedOrEscapes(fn.Body, id.Name, call) {
				out = append(out, r.finding(c.Name(), f, as.Pos(),
					"%q is opened here but never closed and never leaves the function; close it (defer %s.Close()) or hand ownership off", id.Name, id.Name))
			}
			return true
		})
	}
	return out
}

// closedOrEscapes reports whether the named identifier is closed or escapes
// the function, scanning the whole body (flow-insensitively) and skipping the
// constructor call itself.
func closedOrEscapes(body *ast.BlockStmt, name string, ctor *ast.CallExpr) bool {
	uses := func(e ast.Expr) bool { return exprUses(e, name) }
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == ctor {
				return false // don't treat the constructor's own args as an escape
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == name &&
					(sel.Sel.Name == "Close" || sel.Sel.Name == "close") {
					found = true
					return false
				}
			}
			for _, arg := range n.Args {
				if uses(arg) {
					found = true // ownership handed to the callee
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if uses(res) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			blankOnly := true
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					blankOnly = false
				}
			}
			if blankOnly {
				return true // `_ = f` discards; it moves ownership nowhere
			}
			rhsUses := false
			for _, rhs := range n.Rhs {
				if uses(rhs) {
					rhsUses = true
				}
			}
			if rhsUses {
				// Stored into a field/element, or aliased to another name:
				// either way this function no longer solely owns it.
				found = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if uses(elt) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if uses(n.Value) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" && uses(n.X) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprUses reports whether the expression mentions the named identifier,
// excluding selector fields (x.name does not use "name").
func exprUses(e ast.Expr, name string) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if used {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Only the operand side can reference the identifier.
			if exprUses(n.X, name) {
				used = true
			}
			return false
		case *ast.Ident:
			if n.Name == name {
				used = true
			}
		}
		return !used
	})
	return used
}
