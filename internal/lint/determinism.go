package lint

import (
	"go/ast"
	"go/token"
)

// Determinism enforces the byte-identical-output contract the engine's scale
// claims rest on: recommendations and every serialized surface (wire JSON,
// .rst snapshots, Prometheus exposition) must not depend on Go's randomized
// map iteration order or on wall-clock state.
//
// Two checks run over the wire-output-producing packages:
//
//  1. A `range` over a map-typed expression whose body feeds an ordered sink
//     (append to a slice, writes to an io.Writer or strings.Builder, an
//     encode/marshal call) is flagged — unless every appended-to slice is
//     passed to a sort call later in the same function (the canonical
//     collect-keys-then-sort idiom), or the loop carries a
//     `//lint:ignore determinism <reason>` directive.
//
//  2. In the core evaluation packages, `time.Now` / `time.Since` calls and
//     any import of math/rand are flagged outright: the engine's outputs
//     must be pure functions of its inputs (event-time retention, for
//     example, derives its horizon from the data, never the clock).
//
// Map-typedness is resolved syntactically (the toolchain here is go/parser +
// go/ast only, no type checker): named map types, map-typed struct fields,
// map-returning functions, and map-typed locals/params declared in the
// analyzed source are recognized. The heuristic is deliberately
// conservative — an unrecognized map simply goes unflagged, while a flagged
// non-map is suppressible.
type Determinism struct {
	// WireTrees are the module-relative subtrees whose output must be
	// byte-deterministic (map-range check).
	WireTrees []string
	// PureTrees are the subtrees where wall-clock and randomness are
	// forbidden outright.
	PureTrees []string
}

// NewDeterminism returns the analyzer bound to the repository's
// wire-output-producing and pure-evaluation package sets.
func NewDeterminism() *Determinism {
	return &Determinism{
		WireTrees: []string{
			"internal/core", "internal/agg", "internal/cube", "internal/shard",
			"internal/obs", "internal/server", "reptile/api",
		},
		PureTrees: []string{
			"internal/core", "internal/agg", "internal/cube", "internal/shard",
		},
	}
}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (*Determinism) Doc() string {
	return "flag unsorted map iteration feeding encoded output, and wall-clock/rand use in the engine core"
}

// mapEnv is the repository-wide syntactic map-type index.
type mapEnv struct {
	namedTypes map[string]bool // type X map[...]Y declarations, by name
	fields     map[string]bool // struct field names with map-ish declared type
	funcs      map[string]bool // func/method names whose first result is map-ish
	pkgVars    map[string]bool // package-level var names with map-ish type
}

// isMapTypeExpr reports whether a type expression denotes a map, directly or
// through a named map type ("data.Predicate").
func (e *mapEnv) isMapTypeExpr(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.MapType:
		return true
	case *ast.Ident:
		return e.namedTypes[t.Name]
	case *ast.SelectorExpr:
		return e.namedTypes[t.Sel.Name]
	case *ast.ParenExpr:
		return e.isMapTypeExpr(t.X)
	}
	return false
}

// buildMapEnv indexes every map-ish declaration in the repository. Names are
// tracked unqualified; a cross-package collision between a map and a non-map
// name would over-flag, which suppression covers, and never under-flags maps.
func buildMapEnv(r *Repo) *mapEnv {
	e := &mapEnv{
		namedTypes: make(map[string]bool),
		fields:     make(map[string]bool),
		funcs:      make(map[string]bool),
		pkgVars:    make(map[string]bool),
	}
	// Pass 1: named map types, so passes 2–3 resolve fields and results
	// declared through them.
	forEachFile(r, func(_ *Package, f *File) {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			if ts, ok := n.(*ast.TypeSpec); ok {
				if _, isMap := ts.Type.(*ast.MapType); isMap {
					e.namedTypes[ts.Name.Name] = true
				}
			}
			return true
		})
	})
	// Pass 2: fields, function results, package vars.
	forEachFile(r, func(_ *Package, f *File) {
		for _, decl := range f.Ast.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Type.Results != nil && len(d.Type.Results.List) > 0 {
					if e.isMapTypeExpr(d.Type.Results.List[0].Type) {
						e.funcs[d.Name.Name] = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, fl := range st.Fields.List {
								if e.isMapTypeExpr(fl.Type) {
									for _, name := range fl.Names {
										e.fields[name.Name] = true
									}
								}
							}
						}
					case *ast.ValueSpec:
						if d.Tok == token.VAR && s.Type != nil && e.isMapTypeExpr(s.Type) {
							for _, name := range s.Names {
								e.pkgVars[name.Name] = true
							}
						}
					}
				}
			}
		}
	})
	return e
}

func forEachFile(r *Repo, fn func(p *Package, f *File)) {
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			fn(p, f)
		}
	}
}

func inAnyTree(dir string, trees []string) bool {
	for _, t := range trees {
		if inTree(dir, t) {
			return true
		}
	}
	return false
}

// Run implements Analyzer.
func (d *Determinism) Run(r *Repo) []Finding {
	env := buildMapEnv(r)
	var out []Finding
	for _, pkg := range r.Pkgs {
		wire := inAnyTree(pkg.Dir, d.WireTrees)
		pure := inAnyTree(pkg.Dir, d.PureTrees)
		if !wire && !pure {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			if pure {
				out = append(out, d.checkPurity(r, f)...)
			}
			if wire {
				out = append(out, d.checkMapRanges(r, env, f)...)
			}
		}
	}
	return out
}

// checkPurity flags wall-clock reads and math/rand imports.
func (d *Determinism) checkPurity(r *Repo, f *File) []Finding {
	var out []Finding
	timeName := localImportName(f.Ast, "time")
	for _, spec := range f.Ast.Imports {
		switch importPathOf(spec) {
		case "math/rand", "math/rand/v2":
			out = append(out, r.finding(d.Name(), f, spec.Pos(),
				"the engine core must not import math/rand: outputs must be pure functions of the inputs"))
		}
	}
	if timeName == "" {
		return out
	}
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok || x.Name != timeName {
			return true
		}
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			out = append(out, r.finding(d.Name(), f, sel.Pos(),
				"the engine core must not read the wall clock (time.%s): outputs must be pure functions of the inputs", sel.Sel.Name))
		}
		return true
	})
	return out
}

// localImportName returns the identifier a file refers to an import by, or
// "" when the path is not imported. Dot and blank imports return "".
func localImportName(f *ast.File, path string) string {
	for _, spec := range f.Imports {
		if importPathOf(spec) != path {
			continue
		}
		if spec.Name != nil {
			if spec.Name.Name == "." || spec.Name.Name == "_" {
				return ""
			}
			return spec.Name.Name
		}
		if i := lastSlash(path); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// checkMapRanges flags order-sensitive loops over maps in one file.
func (d *Determinism) checkMapRanges(r *Repo, env *mapEnv, f *File) []Finding {
	var out []Finding
	for _, decl := range f.Ast.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		locals := localMapIdents(env, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapValue(env, locals, rs.X) {
				return true
			}
			sinks := orderedSinks(rs.Body)
			if len(sinks.targets) == 0 && !sinks.direct {
				return true
			}
			if sinks.direct {
				out = append(out, r.finding(d.Name(), f, rs.Pos(),
					"map iteration order feeds encoded output directly; iterate sorted keys instead"))
				return true
			}
			for _, tgt := range sinks.targets {
				if !sortedAfter(fn.Body, rs, tgt) {
					out = append(out, r.finding(d.Name(), f, rs.Pos(),
						"map iteration order leaks into %q, which is never sorted; sort it before use or iterate sorted keys", tgt))
				}
			}
			return true
		})
	}
	return out
}

// localMapIdents scans a function for identifiers that hold map values:
// map-typed parameters and receivers, `var x map[...]`, `x := make(map...)`,
// map composite literals, and assignments from known map-returning calls or
// map fields.
func localMapIdents(env *mapEnv, fn *ast.FuncDecl) map[string]bool {
	locals := make(map[string]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if env.isMapTypeExpr(field.Type) {
				for _, name := range field.Names {
					locals[name.Name] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Parallel assignment (x, ok := m[k]) never produces a map from
			// a non-map, so only the aligned single-RHS form is tracked.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if valueIsMap(env, locals, n.Rhs[0]) {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil && env.isMapTypeExpr(vs.Type) {
						for _, name := range vs.Names {
							locals[name.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return locals
}

// valueIsMap reports whether an expression evaluates to a map under the
// syntactic environment.
func valueIsMap(env *mapEnv, locals map[string]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "make" && len(e.Args) > 0 {
				return env.isMapTypeExpr(e.Args[0])
			}
			return env.funcs[fun.Name]
		case *ast.SelectorExpr:
			return env.funcs[fun.Sel.Name]
		}
	case *ast.CompositeLit:
		return e.Type != nil && env.isMapTypeExpr(e.Type)
	case *ast.Ident:
		return locals[e.Name] || env.pkgVars[e.Name]
	case *ast.SelectorExpr:
		return env.fields[e.Sel.Name]
	case *ast.ParenExpr:
		return valueIsMap(env, locals, e.X)
	}
	return false
}

// isMapValue decides whether a range expression iterates a map.
func isMapValue(env *mapEnv, locals map[string]bool, e ast.Expr) bool {
	return valueIsMap(env, locals, e)
}

// sinkScan is the result of scanning a loop body for order-sensitive output.
type sinkScan struct {
	// targets are slice identifiers appended to inside the loop; their
	// element order inherits the map's iteration order.
	targets []string
	// direct marks writes that emit bytes immediately (Fprintf, Write,
	// Encode, WriteString, ...) — unsortable after the fact.
	direct bool
}

// directSinkNames are method/function names that emit ordered output the
// moment they run.
var directSinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "Marshal": true, "MarshalJSON": true,
	"AppendBinary": true, "WriteTo": true,
}

// orderedSinks scans a loop body for order-sensitive output operations.
func orderedSinks(body *ast.BlockStmt) sinkScan {
	var scan sinkScan
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && len(call.Args) > 0 {
				if id, ok := call.Args[0].(*ast.Ident); ok && !seen[id.Name] {
					seen[id.Name] = true
					scan.targets = append(scan.targets, id.Name)
				} else if !ok {
					// Appending to a field or element: not locally sortable.
					scan.direct = true
				}
			}
		case *ast.SelectorExpr:
			if directSinkNames[fun.Sel.Name] {
				scan.direct = true
			}
		}
		return true
	})
	return scan
}

// sortNames are the recognized sorting calls (package sort and slices).
var sortNames = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "SortFunc": true,
	"SortStableFunc": true, "Stable": true,
}

// sortedAfter reports whether the identifier is passed to a recognized sort
// call positioned after the range statement inside the function body — the
// collect-then-sort idiom that makes map iteration order immaterial.
func sortedAfter(body *ast.BlockStmt, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortNames[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && id.Name == target {
			found = true
			return false
		}
		return true
	})
	return found
}
