// Package lint is the repository's self-hosted static-analysis suite: the
// invariants every scale claim rests on, turned into machine-checked rules.
//
// The engine's headline guarantee — byte-identical recommendations across
// sequential/parallel, cube-on/off, sharded/unsharded, eager/mapped, and
// crash-recovered execution — survives only if the code keeps certain
// disciplines: map iteration never orders wire output, the core never reads
// the clock, the wire packages stay vendorable, the error-code contract
// stays closed, and OS-backed handles get closed. Tests catch violations
// only when they happen to randomize the right way; this package catches
// them at the syntax level, on every run.
//
// The framework is standard-library only (go/parser, go/ast, go/token — the
// module has no dependencies and this tool is not the reason to grow one).
// Load parses every Go file under the repository root into a Repo; Run
// executes a set of Analyzer values over it and returns position-sorted
// Findings. There is no type checker: analyzers resolve types syntactically
// and are written to fail open (an unrecognized construct goes unflagged)
// with suppression for the rare false positive:
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above. The reason is mandatory, and a
// malformed directive is itself a finding — a typoed suppression can never
// silently mask nothing.
//
// The shipped analyzers:
//
//   - boundaries: the public-API import rules (examples/ and
//     reptile/{api,client} vs internal/, stdlib-only wire packages,
//     internal/core free of internal/obs).
//   - determinism: unsorted map iteration feeding appends or encoders in
//     wire-output packages; wall-clock and math/rand use in the engine core.
//   - errorcodes: the closed api.ErrorCode set vs its status-mapping tables
//     and the internal/obs error buckets.
//   - closecheck: file/WAL/mmap constructor results must be closed or
//     escape.
//
// cmd/reptile-lint is the CLI; `make lint` and CI run it with all analyzers.
// To add an analyzer: implement the three-method Analyzer interface in a new
// file here, register it in All(), and add a deliberately-broken fixture
// tree under testdata/src/ with a golden-findings test.
package lint
