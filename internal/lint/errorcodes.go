package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ErrorCodes verifies the closed api.ErrorCode contract end to end. The wire
// protocol promises clients a stable, machine-readable error class on every
// non-2xx response; that promise has three enforcement points that must agree
// with the const block that declares the codes:
//
//   - ErrorCode.HTTPStatus must map every declared code (one code may ride
//     the default arm, and it must be the same code CodeForStatus falls back
//     to, so the two tables stay inverses).
//   - CodeForStatus must return every declared code — a status with no
//     reverse mapping would decode into the wrong class client-side.
//   - internal/obs buckets errors per code in a fixed array; its errorCodes
//     render table must list every declared code exactly once, and the
//     backing array must be sized to the set.
//
// Adding a code and forgetting any of the three is exactly the drift this
// analyzer exists to catch.
type ErrorCodes struct {
	// APIDir is the module-relative directory declaring ErrorCode.
	APIDir string
	// ObsDir is the module-relative directory bucketing errors by code.
	ObsDir string
}

// NewErrorCodes returns the analyzer bound to the repository layout.
func NewErrorCodes() *ErrorCodes {
	return &ErrorCodes{APIDir: "reptile/api", ObsDir: "internal/obs"}
}

// Name implements Analyzer.
func (*ErrorCodes) Name() string { return "errorcodes" }

// Doc implements Analyzer.
func (*ErrorCodes) Doc() string {
	return "verify the closed api.ErrorCode set is covered by the status tables and obs error bucketing"
}

func pkgByDir(r *Repo, dir string) *Package {
	for _, p := range r.Pkgs {
		if p.Dir == dir {
			return p
		}
	}
	return nil
}

// Run implements Analyzer.
func (e *ErrorCodes) Run(r *Repo) []Finding {
	apiPkg := pkgByDir(r, e.APIDir)
	if apiPkg == nil {
		return nil
	}
	codes := declaredCodes(apiPkg)
	if len(codes) == 0 {
		return nil
	}
	declared := make(map[string]bool, len(codes))
	for _, c := range codes {
		declared[c] = true
	}
	var out []Finding
	out = append(out, e.checkHTTPStatus(r, apiPkg, codes, declared)...)
	out = append(out, e.checkCodeForStatus(r, apiPkg, codes, declared, statusGroups(apiPkg))...)
	if obsPkg := pkgByDir(r, e.ObsDir); obsPkg != nil {
		out = append(out, e.checkObs(r, obsPkg, codes, declared)...)
	}
	return out
}

// declaredCodes collects the ErrorCode-typed const names from the api
// package, in declaration order.
func declaredCodes(pkg *Package) (codes []string) {
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				id, ok := vs.Type.(*ast.Ident)
				if !ok || id.Name != "ErrorCode" {
					continue
				}
				for _, name := range vs.Names {
					codes = append(codes, name.Name)
				}
			}
		}
	}
	return codes
}

// findFunc locates a function declaration by name in a package's non-test
// files.
func findFunc(pkg *Package, name string) (*File, *ast.FuncDecl) {
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name {
				return f, fn
			}
		}
	}
	return nil, nil
}

// checkHTTPStatus verifies the code→status switch covers the declared set,
// with at most the fallback code (CodeForStatus's final return) riding the
// default arm.
func (e *ErrorCodes) checkHTTPStatus(r *Repo, pkg *Package, codes []string, declared map[string]bool) []Finding {
	f, fn := findFunc(pkg, "HTTPStatus")
	if fn == nil {
		return nil
	}
	var out []Finding
	covered := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			id, ok := expr.(*ast.Ident)
			if !ok {
				continue
			}
			if !declared[id.Name] {
				out = append(out, r.finding(e.Name(), f, id.Pos(),
					"HTTPStatus switches on %s, which is not a declared ErrorCode", id.Name))
				continue
			}
			covered[id.Name] = true
		}
		return true
	})
	fallback := fallbackCode(pkg)
	for _, c := range codes {
		if covered[c] || c == fallback {
			continue
		}
		out = append(out, r.finding(e.Name(), f, fn.Pos(),
			"HTTPStatus does not map %s: every ErrorCode needs an HTTP status (only the CodeForStatus fallback %q may use the default arm)", c, fallback))
	}
	return out
}

// fallbackCode extracts the code CodeForStatus returns for unmapped statuses:
// the ident in its final return statement.
func fallbackCode(pkg *Package) string {
	_, fn := findFunc(pkg, "CodeForStatus")
	if fn == nil || fn.Body == nil || len(fn.Body.List) == 0 {
		return ""
	}
	ret, ok := fn.Body.List[len(fn.Body.List)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	if id, ok := ret.Results[0].(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// statusGroups partitions the declared codes into HTTP-status equivalence
// classes: codes listed in the same HTTPStatus case clause travel under the
// same status, so the reverse (status-keyed) table can only ever return one
// of them.
func statusGroups(pkg *Package) map[string]int {
	groups := make(map[string]int)
	_, fn := findFunc(pkg, "HTTPStatus")
	if fn == nil {
		return groups
	}
	clause := 0
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		clause++
		for _, expr := range cc.List {
			if id, ok := expr.(*ast.Ident); ok {
				groups[id.Name] = clause
			}
		}
		return true
	})
	return groups
}

// checkCodeForStatus verifies the status→code table can produce every
// declared error class: each code must be returned itself or share an HTTP
// status (per statusGroups) with a returned code.
func (e *ErrorCodes) checkCodeForStatus(r *Repo, pkg *Package, codes []string, declared map[string]bool, groups map[string]int) []Finding {
	f, fn := findFunc(pkg, "CodeForStatus")
	if fn == nil {
		return nil
	}
	var out []Finding
	returned := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := res.(*ast.Ident)
			if !ok || !strings.HasPrefix(id.Name, "Code") {
				continue
			}
			if !declared[id.Name] {
				out = append(out, r.finding(e.Name(), f, id.Pos(),
					"CodeForStatus returns %s, which is not a declared ErrorCode", id.Name))
				continue
			}
			returned[id.Name] = true
		}
		return true
	})
	for _, c := range codes {
		if returned[c] {
			continue
		}
		// A status-sibling being returned covers the class: the table is
		// keyed by status and can only pick one code per status.
		if g, ok := groups[c]; ok {
			covered := false
			for rc := range returned {
				if groups[rc] == g {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
		}
		out = append(out, r.finding(e.Name(), f, fn.Pos(),
			"CodeForStatus cannot produce %s (nor any code sharing its HTTP status): clients could not recover the class from a bare status", c))
	}
	return out
}

// checkObs verifies the obs error-bucketing table and its backing array track
// the declared set exactly.
func (e *ErrorCodes) checkObs(r *Repo, pkg *Package, codes []string, declared map[string]bool) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "errorCodes" || i >= len(vs.Values) {
							continue
						}
						cl, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						out = append(out, e.checkObsTable(r, f, name.Pos(), cl, codes, declared)...)
					}
				}
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					out = append(out, e.checkErrorArray(r, f, st, len(codes))...)
				}
			}
		}
	}
	return out
}

// checkObsTable compares the errorCodes composite literal against the
// declared set: every code exactly once, nothing else.
func (e *ErrorCodes) checkObsTable(r *Repo, f *File, varPos token.Pos, cl *ast.CompositeLit, codes []string, declared map[string]bool) []Finding {
	var out []Finding
	seen := make(map[string]int)
	for _, elt := range cl.Elts {
		name := ""
		switch elt := elt.(type) {
		case *ast.SelectorExpr:
			name = elt.Sel.Name
		case *ast.Ident:
			name = elt.Name
		default:
			continue
		}
		if !declared[name] {
			out = append(out, r.finding(e.Name(), f, elt.Pos(),
				"obs errorCodes lists %s, which is not a declared api.ErrorCode", name))
			continue
		}
		seen[name]++
		if seen[name] == 2 {
			out = append(out, r.finding(e.Name(), f, elt.Pos(),
				"obs errorCodes lists %s more than once: each code gets exactly one bucket", name))
		}
	}
	for _, c := range codes {
		if seen[c] == 0 {
			out = append(out, r.finding(e.Name(), f, varPos,
				"obs errorCodes omits %s: errors of that class would be bucketed as internal", c))
		}
	}
	return out
}

// checkErrorArray verifies any fixed array field named "errors" in an obs
// struct is sized to the declared code set.
func (e *ErrorCodes) checkErrorArray(r *Repo, f *File, st *ast.StructType, want int) []Finding {
	var out []Finding
	for _, field := range st.Fields.List {
		named := false
		for _, name := range field.Names {
			if name.Name == "errors" {
				named = true
			}
		}
		if !named {
			continue
		}
		at, ok := field.Type.(*ast.ArrayType)
		if !ok || at.Len == nil {
			continue
		}
		lit, ok := at.Len.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			continue
		}
		n, err := strconv.Atoi(lit.Value)
		if err != nil {
			continue
		}
		if n != want {
			out = append(out, r.finding(e.Name(), f, at.Pos(),
				"error-bucket array is sized %d but %d ErrorCodes are declared; counts would alias", n, want))
		}
	}
	return out
}
