package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one analyzer hit, positioned at a file:line the developer can
// jump to. File paths are slash-separated and relative to the repository
// root, so findings are stable across machines and diffable in CI logs.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one check over the loaded repository. Analyzers are pure: they
// read the syntax trees and return findings, never mutate them.
type Analyzer interface {
	// Name is the analyzer's stable identifier — the token used in
	// `-only` selections and `//lint:ignore <name> <reason>` directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run analyzes the repository.
	Run(r *Repo) []Finding
}

// File is one parsed Go source file.
type File struct {
	// Rel is the file's slash-separated path relative to the repo root.
	Rel string
	// Ast is the parsed file, comments included.
	Ast *ast.File
	// Test reports whether the file is a _test.go file. Most invariants
	// bind only production code; tests deliberately cross boundaries.
	Test bool

	// ignores maps source line → analyzer names suppressed on that line by
	// a well-formed `//lint:ignore <analyzer> <reason>` directive.
	ignores map[int][]string
}

// Package groups the files of one directory (one Go package, tests
// included).
type Package struct {
	// Dir is the package directory relative to the repo root, slash
	// separated; "" for the root package.
	Dir   string
	Files []*File
}

// Repo is the loaded repository: every Go file under the root, grouped by
// package directory, plus the module path from go.mod.
type Repo struct {
	Root   string
	Module string
	Fset   *token.FileSet
	Pkgs   []*Package

	// directiveFindings are malformed //lint:ignore comments discovered at
	// load time; Run reports them alongside analyzer findings so a typoed
	// suppression can never silently mask nothing.
	directiveFindings []Finding
}

// skipDir reports directories the loader never descends into: VCS state,
// fixture trees (the go tool ignores "testdata" too), and hidden or
// underscore-prefixed directories.
func skipDir(name string) bool {
	return name == "testdata" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Load parses every Go file under root into a Repo. Files that fail to parse
// are an error: the analyzers' guarantees are only as good as their coverage,
// so an unparsable file must fail the run, not shrink it.
func Load(root string) (*Repo, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	r := &Repo{Root: root, Module: modPath, Fset: token.NewFileSet()}
	byDir := make(map[string]*Package)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		af, err := parser.ParseFile(r.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parsing %s: %w", rel, err)
		}
		dir := ""
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		f := &File{Rel: rel, Ast: af, Test: strings.HasSuffix(d.Name(), "_test.go")}
		r.loadDirectives(f)
		pkg, ok := byDir[dir]
		if !ok {
			pkg = &Package{Dir: dir}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range byDir {
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Rel < p.Files[j].Rel })
		r.Pkgs = append(r.Pkgs, p)
	}
	sort.Slice(r.Pkgs, func(i, j int) bool { return r.Pkgs[i].Dir < r.Pkgs[j].Dir })
	return r, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", path)
}

// ignorePrefix introduces a suppression directive. The full form is
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory: a suppression documents a decision, and "because" is not one.
const ignorePrefix = "//lint:ignore"

// loadDirectives scans a file's comments for suppression directives,
// recording well-formed ones on the file and malformed ones as findings.
func (r *Repo) loadDirectives(f *File) {
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			pos := r.Fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				r.directiveFindings = append(r.directiveFindings, Finding{
					Analyzer: "directive",
					File:     f.Rel,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  fmt.Sprintf("malformed directive %q: want %s <analyzer> <reason>", c.Text, ignorePrefix),
				})
				continue
			}
			if f.ignores == nil {
				f.ignores = make(map[int][]string)
			}
			f.ignores[pos.Line] = append(f.ignores[pos.Line], fields[0])
		}
	}
}

// suppressed reports whether a finding by the named analyzer at the given
// line is covered by a directive on that line or the line above.
func (f *File) suppressed(analyzer string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, a := range f.ignores[l] {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// finding builds a Finding at a node's position.
func (r *Repo) finding(analyzer string, f *File, pos token.Pos, format string, args ...any) Finding {
	p := r.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     f.Rel,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Stdlib reports whether an import path names a standard-library package: no
// module qualifier (the first path element carries no dot) and not a package
// of this module. The module's own path may be dot-free (this repo's is), so
// the module check runs first.
func (r *Repo) Stdlib(path string) bool {
	if path == r.Module || strings.HasPrefix(path, r.Module+"/") {
		return false
	}
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

// InModule returns the module-relative form of an import path ("" when the
// path is not part of this module): "repro/internal/core" → "internal/core".
func (r *Repo) InModule(path string) (string, bool) {
	if path == r.Module {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, r.Module+"/"); ok {
		return rest, true
	}
	return "", false
}

// inTree reports whether a package directory sits at or under the given
// module-relative tree.
func inTree(dir, tree string) bool {
	return dir == tree || strings.HasPrefix(dir, tree+"/")
}

// importPathOf unquotes an import spec's path.
func importPathOf(spec *ast.ImportSpec) string {
	p, err := strconv.Unquote(spec.Path.Value)
	if err != nil {
		return ""
	}
	return p
}

// Run executes the analyzers over the repository, drops suppressed findings,
// and returns the rest sorted by file, line, and analyzer. Malformed
// suppression directives are always reported, whichever analyzers run.
func Run(r *Repo, analyzers []Analyzer) []Finding {
	fileOf := make(map[string]*File)
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			fileOf[f.Rel] = f
		}
	}
	out := append([]Finding(nil), r.directiveFindings...)
	for _, a := range analyzers {
		for _, fd := range a.Run(r) {
			if f := fileOf[fd.File]; f != nil && f.suppressed(fd.Analyzer, fd.Line) {
				continue
			}
			out = append(out, fd)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns the full analyzer suite in its canonical order.
func All() []Analyzer {
	return []Analyzer{
		NewBoundaries(),
		NewDeterminism(),
		NewErrorCodes(),
		NewCloseCheck(),
	}
}

// Select resolves a comma-separated analyzer selection ("boundaries,closecheck")
// against the full suite.
func Select(only string) ([]Analyzer, error) {
	if only == "" {
		return All(), nil
	}
	byName := make(map[string]Analyzer)
	for _, a := range All() {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer selection %q", only)
	}
	return out, nil
}

// WriteJSON renders findings as a JSON array (machine-readable output for
// CI annotations and editors). An empty run renders as [] rather than null.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
