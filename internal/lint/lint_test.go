package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// loadFixture parses one testdata tree.
func loadFixture(t *testing.T, name string) *lint.Repo {
	t.Helper()
	repo, err := lint.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return repo
}

// findingStrings renders findings in their canonical form for golden
// comparison.
func findingStrings(fs []lint.Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

// assertGolden compares rendered findings against the expected list.
func assertGolden(t *testing.T, got []lint.Finding, want []string) {
	t.Helper()
	gs := findingStrings(got)
	if len(gs) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(gs), len(want), strings.Join(gs, "\n"))
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("finding %d:\n got %s\nwant %s", i, gs[i], want[i])
		}
	}
}

func TestBoundariesGolden(t *testing.T) {
	repo := loadFixture(t, "boundaries")
	got := lint.Run(repo, []lint.Analyzer{lint.NewBoundaries()})
	assertGolden(t, got, []string{
		`examples/demo/main.go:7:2: [boundaries] examples must not import "repro/internal/core": examples must use only the public SDK`,
		`internal/core/core.go:4:8: [boundaries] internal/core must not import "repro/internal/obs": the engine reports spans through the core-owned SpanRecorder seam`,
		`internal/foo/foo.go:5:2: [boundaries] internal must not import "repro/reptile": the dependency arrow points one way: the facade wraps the engine`,
		`internal/foo/foo.go:7:2: [boundaries] internal must not import "repro/reptile/client": the dependency arrow points one way: the facade wraps the engine`,
		`reptile/api/api.go:5:2: [boundaries] reptile/api must stay stdlib-only but imports "repro/internal/core": the wire protocol must stay vendorable by out-of-tree clients`,
		`reptile/client/client.go:5:2: [boundaries] reptile/client must stay stdlib-only but imports "repro/internal/server": the client must compile without linking the engine`,
	})
}

func TestDeterminismGolden(t *testing.T) {
	repo := loadFixture(t, "determinism")
	got := lint.Run(repo, []lint.Analyzer{lint.NewDeterminism()})
	assertGolden(t, got, []string{
		`internal/core/clock.go:5:2: [determinism] the engine core must not import math/rand: outputs must be pure functions of the inputs`,
		`internal/core/clock.go:9:28: [determinism] the engine core must not read the wall clock (time.Now): outputs must be pure functions of the inputs`,
		`internal/core/ignored.go:14:1: [directive] malformed directive "//lint:ignore determinism": want //lint:ignore <analyzer> <reason>`,
		`internal/core/maps.go:13:2: [determinism] map iteration order leaks into "out", which is never sorted; sort it before use or iterate sorted keys`,
		`internal/core/maps.go:31:2: [determinism] map iteration order feeds encoded output directly; iterate sorted keys instead`,
	})
}

// TestDeterminismSuppression asserts the directive is what hides the Legacy
// finding: the raw analyzer still reports it; Run filters it.
func TestDeterminismSuppression(t *testing.T) {
	repo := loadFixture(t, "determinism")
	raw := lint.NewDeterminism().Run(repo)
	suppressedSeen := false
	for _, f := range raw {
		if f.File == "internal/core/ignored.go" {
			suppressedSeen = true
		}
	}
	if !suppressedSeen {
		t.Fatalf("raw analyzer run should flag ignored.go; the directive, not the analyzer, must be doing the hiding")
	}
	for _, f := range lint.Run(repo, []lint.Analyzer{lint.NewDeterminism()}) {
		if f.File == "internal/core/ignored.go" && f.Analyzer == "determinism" {
			t.Errorf("suppressed finding leaked through Run: %s", f)
		}
	}
}

func TestErrorCodesGolden(t *testing.T) {
	repo := loadFixture(t, "errorcodes")
	got := lint.Run(repo, []lint.Analyzer{lint.NewErrorCodes()})
	assertGolden(t, got, []string{
		`internal/obs/registry.go:10:5: [errorcodes] obs errorCodes omits CodeGone: errors of that class would be bucketed as internal`,
		`internal/obs/registry.go:10:5: [errorcodes] obs errorCodes omits CodeInternal: errors of that class would be bucketed as internal`,
		`internal/obs/registry.go:13:2: [errorcodes] obs errorCodes lists CodeBadRequest more than once: each code gets exactly one bucket`,
		`internal/obs/registry.go:14:2: [errorcodes] obs errorCodes lists CodeMystery, which is not a declared api.ErrorCode`,
		`internal/obs/registry.go:18:9: [errorcodes] error-bucket array is sized 3 but 4 ErrorCodes are declared; counts would alias`,
		`reptile/api/api.go:17:1: [errorcodes] HTTPStatus does not map CodeGone: every ErrorCode needs an HTTP status (only the CodeForStatus fallback "CodeInternal" may use the default arm)`,
		`reptile/api/api.go:27:1: [errorcodes] CodeForStatus cannot produce CodeGone (nor any code sharing its HTTP status): clients could not recover the class from a bare status`,
		`reptile/api/api.go:34:10: [errorcodes] CodeForStatus returns CodeBogus, which is not a declared ErrorCode`,
	})
}

func TestCloseCheckGolden(t *testing.T) {
	repo := loadFixture(t, "closecheck")
	got := lint.Run(repo, []lint.Analyzer{lint.NewCloseCheck()})
	assertGolden(t, got, []string{
		`internal/files/files.go:14:2: [closecheck] "f" is opened here but never closed and never leaves the function; close it (defer f.Close()) or hand ownership off`,
		`internal/files/files.go:24:2: [closecheck] "log" is opened here but never closed and never leaves the function; close it (defer log.Close()) or hand ownership off`,
	})
}

// TestRepoHeadClean asserts the full suite passes on the repository itself —
// the invariant CI enforces, checked here so `go test ./...` catches a
// regression before CI does.
func TestRepoHeadClean(t *testing.T) {
	repo, err := lint.Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repo head: %v", err)
	}
	if fs := lint.Run(repo, lint.All()); len(fs) != 0 {
		t.Errorf("reptile-lint is not clean on the repo head:\n%s", strings.Join(findingStrings(fs), "\n"))
	}
}

func TestSelect(t *testing.T) {
	as, err := lint.Select("boundaries,closecheck")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(as) != 2 || as[0].Name() != "boundaries" || as[1].Name() != "closecheck" {
		t.Errorf("Select picked the wrong analyzers: %v", as)
	}
	if _, err := lint.Select("nonesuch"); err == nil {
		t.Error("Select accepted an unknown analyzer name")
	}
	if all, err := lint.Select(""); err != nil || len(all) != 4 {
		t.Errorf("empty selection should yield the full suite, got %d (%v)", len(all), err)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := lint.WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("empty findings should render as [], got %q", sb.String())
	}
}
