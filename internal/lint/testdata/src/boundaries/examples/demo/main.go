// Fixture: examples must use only the public SDK.
package main

import (
	"fmt"

	"repro/internal/core" // want: examples must not import internal/
)

func main() { fmt.Println(core.Value) }
