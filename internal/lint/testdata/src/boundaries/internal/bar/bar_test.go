// Fixture: _test.go files are exempt from every boundary rule.
package bar

import (
	"testing"

	"repro/reptile"
)

func TestUsesFacade(t *testing.T) { _ = reptile.New() }
