// Fixture: the engine core must stay observability-free.
package core

import "repro/internal/obs" // want: core must not import obs

var O = obs.NewRegistry()
