// Fixture: internal code must not import the facade or the client.
package foo

import (
	"repro/reptile"        // want: facade import
	"repro/reptile/api"    // allowed: the server marshals the wire structs
	"repro/reptile/client" // want: client import
)

var F = reptile.New(client.New(api.Version))
