// Fixture: the wire protocol must stay stdlib-only.
package api

import (
	"repro/internal/core" // want: stdlib-only violation
)

var X = core.Value
