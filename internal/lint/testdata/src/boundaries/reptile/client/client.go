// Fixture: the client may use reptile/api but never the engine.
package client

import (
	"repro/internal/server" // want: stdlib-only violation
	"repro/reptile/api"     // allowed
)

var C = server.New(api.Version)
