// Fixture: resource constructors must close or hand off their results.
package files

import (
	"os"

	"repro/internal/wal"
)

type holder struct{ f *os.File }

// LeakFile never closes the handle and never lets it escape. want: finding.
func LeakFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Name()
	return nil
}

// LeakLog drops the recovered log on the floor. want: finding.
func LeakLog(path string) error {
	log, batches, err := wal.Open(path)
	if err != nil {
		return err
	}
	_ = batches
	_ = log
	return nil
}

// DeferClose is the canonical shape. No finding.
func DeferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// Handoff moves ownership into the struct. No finding.
func Handoff(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// Passed hands the file to a callee. No finding.
func Passed(path string, sink func(*os.File)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sink(f)
	return nil
}

// Suppressed documents an out-of-band owner. No finding through Run.
func Suppressed(path string) error {
	//lint:ignore closecheck the pool janitor closes idle handles
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Name()
	return nil
}
