// Fixture: the engine core must be a pure function of its inputs.
package core

import (
	"math/rand" // want: no randomness in core
	"time"
)

func Seed() int64 { return time.Now().UnixNano() + int64(rand.Int()) } // want: time.Now
