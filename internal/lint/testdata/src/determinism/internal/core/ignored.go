// Fixture: a well-formed directive suppresses; a malformed one is reported.
package core

// Legacy keeps historical order semantics; the suppression below covers it.
func Legacy(m map[string]int) []string {
	var out []string
	//lint:ignore determinism order is stitched downstream by the caller
	for k := range m {
		out = append(out, k)
	}
	return out
}

//lint:ignore determinism
func Placeholder() {}
