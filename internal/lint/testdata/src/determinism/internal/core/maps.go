// Fixture: map iteration order must never reach wire output unsorted.
package core

import (
	"fmt"
	"io"
	"sort"
)

// Keys leaks map order into the returned slice. want: finding.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned collect-then-sort idiom. No finding.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump emits bytes mid-iteration: unsortable after the fact. want: finding.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Quiet reduces order-free. No finding.
func Quiet(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
