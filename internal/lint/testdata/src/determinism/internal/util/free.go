// Fixture: packages outside the wire/pure sets are unconstrained.
package util

import "time"

func Now() time.Time { return time.Now() }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
