// Fixture: error bucketing that drifted from the declared code set.
package obs

import (
	"sync/atomic"

	"repro/reptile/api"
)

var errorCodes = []api.ErrorCode{
	api.CodeBadRequest,
	api.CodeNotFound,
	api.CodeBadRequest,
	api.CodeMystery,
}

type EndpointMetrics struct {
	errors [3]atomic.Uint64
}
