// Fixture: a drifted error-code contract. CodeGone is unmapped in both
// tables, CodeForStatus returns an undeclared code, and the obs fixture
// mismatches the set.
package api

import "net/http"

type ErrorCode string

const (
	CodeBadRequest ErrorCode = "bad_request"
	CodeNotFound   ErrorCode = "not_found"
	CodeGone       ErrorCode = "gone"
	CodeInternal   ErrorCode = "internal"
)

func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func CodeForStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusTeapot:
		return CodeBogus
	}
	return CodeInternal
}
