// Package mat provides a small dense linear-algebra substrate: matrices,
// vectors, multiplication, inversion and the helpers the EM trainer needs.
//
// It deliberately mirrors the role LAPACK plays for the paper's Matlab
// baseline: a straightforward, materialized implementation that the
// factorised operators in package fmatrix are compared against.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with v along the main diagonal.
func Diag(v []float64) *Matrix {
	m := New(len(v), len(v))
	for i, x := range v {
		m.Data[i*len(v)+i] = x
	}
	return m
}

// ColVec returns an n x 1 matrix holding v.
func ColVec(v []float64) *Matrix {
	m := New(len(v), 1)
	copy(m.Data, v)
	return m
}

// RowVec returns a 1 x n matrix holding v.
func RowVec(v []float64) *Matrix {
	m := New(1, len(v))
	copy(m.Data, v)
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := New(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*other.Cols : (i+1)*other.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns m * v as a vector of length m.Rows.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns mᵀ * v (length m.Cols) without materializing the transpose.
func (m *Matrix) TMulVec(v []float64) []float64 {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("mat: TMulVec shape mismatch %dx%d ᵀ * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			out[j] += vi * x
		}
	}
	return out
}

// Gram returns mᵀ * m computed directly (symmetric, m.Cols x m.Cols).
func (m *Matrix) Gram() *Matrix {
	out := New(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for i, xi := range row {
			if xi == 0 {
				continue
			}
			orow := out.Data[i*m.Cols : (i+1)*m.Cols]
			for j := i; j < m.Cols; j++ {
				orow[j] += xi * row[j]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < m.Cols; i++ {
		for j := i + 1; j < m.Cols; j++ {
			out.Data[j*m.Cols+i] = out.Data[i*m.Cols+j]
		}
	}
	return out
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.checkSameShape(other, "Add")
	out := m.Clone()
	for i, v := range other.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.checkSameShape(other, "Sub")
	out := m.Clone()
	for i, v := range other.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns m * s.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddInPlace accumulates other into m.
func (m *Matrix) AddInPlace(other *Matrix) {
	m.checkSameShape(other, "AddInPlace")
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// Trace returns the sum of the main-diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("mat: Trace of non-square %dx%d", m.Rows, m.Cols))
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

func (m *Matrix) checkSameShape(other *Matrix, op string) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// Inverse returns m⁻¹ via Gauss-Jordan elimination with partial pivoting.
// It returns an error when the matrix is singular (or numerically so).
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mat: inverse of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.Data[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("mat: singular matrix (pivot %d)", col)
		}
		if pivot != col {
			swapRows(a, col, pivot)
			swapRows(inv, col, pivot)
		}
		p := a.Data[col*n+col]
		for j := 0; j < n; j++ {
			a.Data[col*n+j] /= p
			inv.Data[col*n+j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.Data[r*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Data[r*n+j] -= f * a.Data[col*n+j]
				inv.Data[r*n+j] -= f * inv.Data[col*n+j]
			}
		}
	}
	return inv, nil
}

// Solve returns x with m*x = b for square m, using the inverse. b is a
// column-major stack of right-hand sides.
func (m *Matrix) Solve(b *Matrix) (*Matrix, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.Mul(b), nil
}

// SolveVec returns x with m*x = b for a single right-hand side.
func (m *Matrix) SolveVec(b []float64) ([]float64, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}

// RidgeInverse returns (m + eps*I)⁻¹, retrying with growing eps until the
// matrix is invertible. It is the numerical guard used for Σ⁻¹ and XᵀX in EM
// when clusters are degenerate.
func (m *Matrix) RidgeInverse(eps float64) *Matrix {
	if eps <= 0 {
		eps = 1e-9
	}
	cur := m
	for i := 0; i < 40; i++ {
		inv, err := cur.Inverse()
		if err == nil {
			return inv
		}
		bump := Identity(m.Rows).Scale(eps)
		cur = m.Add(bump)
		eps *= 10
	}
	// Unreachable for any finite matrix: eps eventually dominates.
	panic("mat: RidgeInverse failed to regularize")
}

// Det returns the determinant of a square matrix via LU decomposition with
// partial pivoting.
func (m *Matrix) Det() float64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("mat: Det of non-square %dx%d", m.Rows, m.Cols))
	}
	n := m.Rows
	a := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.Data[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return 0
		}
		if pivot != col {
			swapRows(a, col, pivot)
			det = -det
		}
		p := a.Data[col*n+col]
		det *= p
		for r := col + 1; r < n; r++ {
			f := a.Data[r*n+col] / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Data[r*n+j] -= f * a.Data[col*n+j]
			}
		}
	}
	return det
}

// EqualApprox reports whether two matrices have the same shape and all
// elements within tol of each other.
func (m *Matrix) EqualApprox(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func swapRows(m *Matrix, i, j int) {
	n := m.Cols
	for c := 0; c < n; c++ {
		m.Data[i*n+c], m.Data[j*n+c] = m.Data[j*n+c], m.Data[i*n+c]
	}
}
