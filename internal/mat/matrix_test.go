package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Errorf("Set/At round trip failed")
	}
	if r := m.Row(1); r[0] != 4 || r[1] != 5 || r[2] != 6 {
		t.Errorf("Row(1) = %v", r)
	}
	if c := m.Col(2); c[0] != 3 || c[1] != 6 {
		t.Errorf("Col(2) = %v", c)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.EqualApprox(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("T() = %v", tr)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(7, 4)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	if !m.Gram().EqualApprox(m.T().Mul(m), 1e-10) {
		t.Error("Gram() != T()*Mul()")
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
	got = m.TMulVec([]float64{1, 0, -1})
	want = []float64{-4, -4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("TMulVec = %v, want %v", got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	m := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mul(inv).EqualApprox(Identity(2), 1e-10) {
		t.Errorf("m*inv != I: %v", m.Mul(inv))
	}
}

func TestInverseSingular(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := m.Inverse(); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestInverseRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := New(n, n)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			m.Data[i*n+i] += float64(n) + 1
		}
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		return m.Mul(inv).EqualApprox(Identity(n), 1e-8)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSolveVec(t *testing.T) {
	m := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := m.SolveVec([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	got := m.MulVec(x)
	if math.Abs(got[0]-5) > 1e-10 || math.Abs(got[1]-10) > 1e-10 {
		t.Errorf("solve residual %v", got)
	}
}

func TestRidgeInverseSingular(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {2, 4}})
	inv := m.RidgeInverse(1e-9)
	if inv == nil || inv.Rows != 2 {
		t.Fatal("RidgeInverse returned bad matrix")
	}
	// The ridge inverse of a singular matrix is finite.
	for _, v := range inv.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite entry %v", v)
		}
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := m.Trace(); got != 5 {
		t.Errorf("Trace = %v, want 5", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	if got := a.Add(b); got.At(0, 0) != 4 || got.At(0, 1) != 6 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got.At(0, 0) != 2 || got.At(0, 1) != 2 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(3); got.At(0, 0) != 3 || got.At(0, 1) != 6 {
		t.Errorf("Scale = %v", got)
	}
	c := a.Clone()
	c.AddInPlace(b)
	if c.At(0, 1) != 6 {
		t.Errorf("AddInPlace = %v", c)
	}
	if a.At(0, 1) != 2 {
		t.Errorf("Clone aliased the source")
	}
}

func TestDiagIdentityColRow(t *testing.T) {
	d := Diag([]float64{2, 3})
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Errorf("Diag = %v", d)
	}
	cv := ColVec([]float64{1, 2})
	if cv.Rows != 2 || cv.Cols != 1 {
		t.Errorf("ColVec shape %dx%d", cv.Rows, cv.Cols)
	}
	rv := RowVec([]float64{1, 2})
	if rv.Rows != 1 || rv.Cols != 2 {
		t.Errorf("RowVec shape %dx%d", rv.Rows, rv.Cols)
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.0000001}})
	if !a.EqualApprox(b, 1e-3) {
		t.Error("EqualApprox should pass within tol")
	}
	if a.EqualApprox(b, 1e-9) {
		t.Error("EqualApprox should fail outside tol")
	}
	if a.EqualApprox(New(2, 1), 1) {
		t.Error("EqualApprox should fail on shape mismatch")
	}
}

func TestStringRendering(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Error("String() empty")
	}
}
