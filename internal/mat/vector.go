package mat

import (
	"fmt"
	"math"
	"sort"
)

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// AddVec returns a + b element-wise.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a - b element-wise.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: SubVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns a * s element-wise.
func ScaleVec(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the sample variance of v (n-1 denominator), or 0 when v
// has fewer than two elements.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v)-1)
}

// Std returns the sample standard deviation of v.
func Std(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Median returns the median of v, or 0 for an empty slice. v is not modified.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	c := make([]float64, len(v))
	copy(c, v)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// PrefixSum returns p with p[0] = 0 and p[i] = v[0] + ... + v[i-1], so a
// range sum over v[lo:hi] is p[hi] - p[lo]. This is the preprocessing step
// for the factorised left-multiplication operator (Algorithm 3).
func PrefixSum(v []float64) []float64 {
	p := make([]float64, len(v)+1)
	for i, x := range v {
		p[i+1] = p[i] + x
	}
	return p
}

// RangeSum returns the sum of v[lo:hi] given the prefix sums p = PrefixSum(v).
func RangeSum(p []float64, lo, hi int) float64 { return p[hi] - p[lo] }

// Standardize returns (v - mean) / std element-wise. A zero-variance vector
// standardizes to all zeros.
func Standardize(v []float64) []float64 {
	m, s := Mean(v), Std(v)
	out := make([]float64, len(v))
	if s == 0 {
		return out
	}
	for i, x := range v {
		out[i] = (x - m) / s
	}
	return out
}

// PearsonCorr returns the Pearson correlation coefficient of a and b, or 0
// when either vector has zero variance.
func PearsonCorr(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("mat: PearsonCorr length mismatch")
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// Ranks returns the fractional ranks of v (ties averaged), 1-based.
func Ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// SpearmanCorr returns the Spearman rank correlation of a and b.
func SpearmanCorr(a, b []float64) float64 {
	return PearsonCorr(Ranks(a), Ranks(b))
}
