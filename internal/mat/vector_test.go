package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVecArith(t *testing.T) {
	a, b := []float64{1, 2}, []float64{3, 5}
	if got := AddVec(a, b); got[0] != 4 || got[1] != 7 {
		t.Errorf("AddVec = %v", got)
	}
	if got := SubVec(b, a); got[0] != 2 || got[1] != 3 {
		t.Errorf("SubVec = %v", got)
	}
	if got := ScaleVec(a, 2); got[0] != 2 || got[1] != 4 {
		t.Errorf("ScaleVec = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestSummaryStats(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1 = 32/7.
	if got := Variance(v); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := Std(v); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("Std = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance(singleton) = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	// Input must not be modified.
	v := []float64{3, 1, 2}
	Median(v)
	if v[0] != 3 {
		t.Error("Median modified its input")
	}
}

func TestPrefixAndRangeSum(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	p := PrefixSum(v)
	if got := RangeSum(p, 1, 3); got != 5 {
		t.Errorf("RangeSum(1,3) = %v, want 5", got)
	}
	if got := RangeSum(p, 0, 4); got != 10 {
		t.Errorf("RangeSum(0,4) = %v, want 10", got)
	}
	if got := RangeSum(p, 2, 2); got != 0 {
		t.Errorf("empty RangeSum = %v", got)
	}
}

func TestPrefixSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		p := PrefixSum(v)
		lo := r.Intn(n)
		hi := lo + r.Intn(n-lo+1)
		var want float64
		for i := lo; i < hi; i++ {
			want += v[i]
		}
		return almostEq(RangeSum(p, lo, hi), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStandardize(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	s := Standardize(v)
	if !almostEq(Mean(s), 0, 1e-12) || !almostEq(Std(s), 1, 1e-12) {
		t.Errorf("Standardize mean=%v std=%v", Mean(s), Std(s))
	}
	z := Standardize([]float64{7, 7, 7})
	for _, x := range z {
		if x != 0 {
			t.Errorf("zero-variance Standardize = %v", z)
		}
	}
}

func TestPearsonCorr(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := PearsonCorr(a, b); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect corr = %v", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := PearsonCorr(a, c); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect anticorr = %v", got)
	}
	if got := PearsonCorr(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero-variance corr = %v", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanCorrMonotone(t *testing.T) {
	// A monotone nonlinear map preserves Spearman correlation exactly.
	a := []float64{1, 2, 3, 4, 5}
	b := make([]float64, len(a))
	for i, x := range a {
		b[i] = math.Exp(x)
	}
	if got := SpearmanCorr(a, b); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", got)
	}
}
