// Package mlm implements Reptile's model layer: ordinary least squares as
// the linear baseline, and the multi-level linear model of §3.2 fit by the
// expectation-maximization algorithm of Appendix D. The EM core is
// backend-agnostic — it consumes the six bottleneck matrix operations
// (gram, left and right multiplication, and their per-cluster variants)
// through an interface with a naive dense implementation (the paper's
// Matlab/Lapack comparator) and a factorised implementation over package
// fmatrix.
package mlm

import (
	"fmt"

	"repro/internal/fmatrix"
	"repro/internal/mat"
)

// Backend provides the matrix operations EM is bottlenecked by (Appendix D):
// XᵀX, Xᵀv, X·w and their per-cluster counterparts. Rows are partitioned
// into contiguous clusters.
type Backend interface {
	NumRows() int
	NumCols() int
	// Gram returns XᵀX.
	Gram() *mat.Matrix
	// TMulVec returns Xᵀ·v for an n-vector v.
	TMulVec(v []float64) []float64
	// MulVec returns X·w for an m-vector w.
	MulVec(w []float64) []float64
	// NumClusters returns the number of row clusters G.
	NumClusters() int
	// Cluster returns the operations for cluster i.
	Cluster(i int) ClusterOps
}

// ClusterOps provides the per-cluster operations for one cluster's
// sub-matrix Xᵢ.
type ClusterOps interface {
	// Rows returns the cluster's row range [start, start+n).
	Rows() (start, n int)
	// Gram returns XᵢᵀXᵢ.
	Gram() *mat.Matrix
	// TMulVec returns Xᵢᵀ·r for a cluster-local vector r of length n.
	TMulVec(r []float64) []float64
	// MulVec returns Xᵢ·w.
	MulVec(w []float64) []float64
}

// Dense is the naive backend over a fully materialized design matrix — the
// paper's "Matlab over Lapack" comparator. Cluster boundaries are provided
// as start offsets (clusters must be contiguous row ranges).
type Dense struct {
	X      *mat.Matrix
	starts []int // cluster start rows; an implicit sentinel ends at NumRows
}

// NewDense wraps a materialized matrix with cluster start offsets. starts
// must begin at 0 and be strictly increasing.
func NewDense(x *mat.Matrix, starts []int) (*Dense, error) {
	if len(starts) == 0 || starts[0] != 0 {
		return nil, fmt.Errorf("mlm: cluster starts must begin at 0, got %v", starts)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			return nil, fmt.Errorf("mlm: cluster starts not increasing at %d", i)
		}
	}
	if starts[len(starts)-1] >= x.Rows && x.Rows > 0 {
		return nil, fmt.Errorf("mlm: cluster start %d beyond %d rows", starts[len(starts)-1], x.Rows)
	}
	return &Dense{X: x, starts: starts}, nil
}

// NumRows implements Backend.
func (d *Dense) NumRows() int { return d.X.Rows }

// NumCols implements Backend.
func (d *Dense) NumCols() int { return d.X.Cols }

// Gram implements Backend.
func (d *Dense) Gram() *mat.Matrix { return d.X.Gram() }

// TMulVec implements Backend.
func (d *Dense) TMulVec(v []float64) []float64 { return d.X.TMulVec(v) }

// MulVec implements Backend.
func (d *Dense) MulVec(w []float64) []float64 { return d.X.MulVec(w) }

// NumClusters implements Backend.
func (d *Dense) NumClusters() int { return len(d.starts) }

// Cluster implements Backend.
func (d *Dense) Cluster(i int) ClusterOps {
	start := d.starts[i]
	end := d.X.Rows
	if i+1 < len(d.starts) {
		end = d.starts[i+1]
	}
	sub := mat.New(end-start, d.X.Cols)
	copy(sub.Data, d.X.Data[start*d.X.Cols:end*d.X.Cols])
	return denseCluster{start: start, sub: sub}
}

type denseCluster struct {
	start int
	sub   *mat.Matrix
}

func (c denseCluster) Rows() (int, int)              { return c.start, c.sub.Rows }
func (c denseCluster) Gram() *mat.Matrix             { return c.sub.Gram() }
func (c denseCluster) TMulVec(r []float64) []float64 { return c.sub.TMulVec(r) }
func (c denseCluster) MulVec(w []float64) []float64  { return c.sub.MulVec(w) }

// SubsetCols returns a Dense backend over the selected columns (the §3.3.4
// random-effects tuning: Z keeps a subset of X's features). The cluster
// partition is preserved.
func (d *Dense) SubsetCols(mask []bool) (*Dense, error) {
	if len(mask) != d.X.Cols {
		return nil, fmt.Errorf("mlm: SubsetCols mask has %d entries for %d columns", len(mask), d.X.Cols)
	}
	var keep []int
	for j, m := range mask {
		if m {
			keep = append(keep, j)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("mlm: SubsetCols keeps no columns")
	}
	sub := mat.New(d.X.Rows, len(keep))
	for i := 0; i < d.X.Rows; i++ {
		for jj, j := range keep {
			sub.Data[i*len(keep)+jj] = d.X.Data[i*d.X.Cols+j]
		}
	}
	return NewDense(sub, d.starts)
}

// Factorised is the backend over the factorised feature matrix: every
// operation runs on the f-representation without materializing X.
type Factorised struct {
	M  *fmatrix.Matrix
	cl *fmatrix.Clusters
	n  int
}

// NewFactorised wraps a factorised feature matrix.
func NewFactorised(m *fmatrix.Matrix) (*Factorised, error) {
	n, err := m.F.RowCount()
	if err != nil {
		return nil, err
	}
	cl, err := m.Clusters()
	if err != nil {
		return nil, err
	}
	return &Factorised{M: m, cl: cl, n: n}, nil
}

// NumRows implements Backend.
func (f *Factorised) NumRows() int { return f.n }

// NumCols implements Backend.
func (f *Factorised) NumCols() int { return f.M.NumCols() }

// Gram implements Backend.
func (f *Factorised) Gram() *mat.Matrix { return f.M.Gram() }

// TMulVec implements Backend.
func (f *Factorised) TMulVec(v []float64) []float64 {
	out, err := f.M.TMulVec(v)
	if err != nil {
		panic(err) // length was validated at construction
	}
	return out
}

// MulVec implements Backend.
func (f *Factorised) MulVec(w []float64) []float64 {
	out, err := f.M.MulVec(w)
	if err != nil {
		panic(err)
	}
	return out
}

// NumClusters implements Backend.
func (f *Factorised) NumClusters() int { return f.cl.NumClusters() }

// Cluster implements Backend.
func (f *Factorised) Cluster(i int) ClusterOps {
	v, err := f.cl.View(i)
	if err != nil {
		panic(err)
	}
	return factorCluster{v}
}

// SubsetCols returns a Factorised backend over the selected columns; the
// underlying factorizer (and therefore the cluster partition) is shared.
func (f *Factorised) SubsetCols(mask []bool) (*Factorised, error) {
	if len(mask) != f.M.NumCols() {
		return nil, fmt.Errorf("mlm: SubsetCols mask has %d entries for %d columns", len(mask), f.M.NumCols())
	}
	var cols []fmatrix.Column
	for j, m := range mask {
		if m {
			cols = append(cols, f.M.Cols[j])
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("mlm: SubsetCols keeps no columns")
	}
	sub, err := fmatrix.New(f.M.F, cols)
	if err != nil {
		return nil, err
	}
	return NewFactorised(sub)
}

// InterceptZ is the random-intercepts design: a constant-1 single column
// sharing another backend's cluster partition. Every operation is closed
// form, so no per-cluster views or copies are materialized.
type InterceptZ struct {
	rows     int
	starts   []int
	clusterN []int
}

// NewInterceptZ derives the intercept-only Z design from a backend's
// cluster structure.
func NewInterceptZ(b Backend) *InterceptZ {
	g := b.NumClusters()
	z := &InterceptZ{rows: b.NumRows(), starts: make([]int, g), clusterN: make([]int, g)}
	for i := 0; i < g; i++ {
		s, n := b.Cluster(i).Rows()
		z.starts[i] = s
		z.clusterN[i] = n
	}
	return z
}

// NumRows implements Backend.
func (z *InterceptZ) NumRows() int { return z.rows }

// NumCols implements Backend.
func (z *InterceptZ) NumCols() int { return 1 }

// Gram implements Backend: 1ᵀ1 = n.
func (z *InterceptZ) Gram() *mat.Matrix { return mat.FromRows([][]float64{{float64(z.rows)}}) }

// TMulVec implements Backend: 1ᵀv = Σv.
func (z *InterceptZ) TMulVec(v []float64) []float64 { return []float64{mat.Sum(v)} }

// MulVec implements Backend: 1·w = w₀ repeated.
func (z *InterceptZ) MulVec(w []float64) []float64 {
	out := make([]float64, z.rows)
	for i := range out {
		out[i] = w[0]
	}
	return out
}

// NumClusters implements Backend.
func (z *InterceptZ) NumClusters() int { return len(z.starts) }

// Cluster implements Backend.
func (z *InterceptZ) Cluster(i int) ClusterOps {
	return interceptCluster{start: z.starts[i], n: z.clusterN[i]}
}

type interceptCluster struct{ start, n int }

func (c interceptCluster) Rows() (int, int) { return c.start, c.n }
func (c interceptCluster) Gram() *mat.Matrix {
	return mat.FromRows([][]float64{{float64(c.n)}})
}
func (c interceptCluster) TMulVec(r []float64) []float64 { return []float64{mat.Sum(r)} }
func (c interceptCluster) MulVec(w []float64) []float64 {
	out := make([]float64, c.n)
	for i := range out {
		out[i] = w[0]
	}
	return out
}

type factorCluster struct{ v *fmatrix.View }

func (c factorCluster) Rows() (int, int)              { return c.v.Start, c.v.N }
func (c factorCluster) Gram() *mat.Matrix             { return c.v.Gram() }
func (c factorCluster) TMulVec(r []float64) []float64 { return c.v.TMulVec(r) }
func (c factorCluster) MulVec(w []float64) []float64  { return c.v.MulVec(w) }
