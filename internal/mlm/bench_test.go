package mlm

import (
	"math/rand"
	"testing"
)

func benchData(b *testing.B, G, size int) (*Dense, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	x, y, starts, _ := clusteredData(rng, G, size)
	d, err := NewDense(x, starts)
	if err != nil {
		b.Fatal(err)
	}
	return d, y
}

func BenchmarkFitEMScalarZ(b *testing.B) {
	d, y := benchData(b, 200, 20)
	iz := NewInterceptZ(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitEMZ(d, iz, y, Options{Iterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitEMFullZ(b *testing.B) {
	d, y := benchData(b, 200, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitEM(d, y, Options{Iterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitIGLS(b *testing.B) {
	d, y := benchData(b, 200, 20)
	iz := NewInterceptZ(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitIGLS(d, iz, y, Options{Iterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitLinear(b *testing.B) {
	d, y := benchData(b, 200, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLinear(d.X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogLik(b *testing.B) {
	d, y := benchData(b, 100, 20)
	iz := NewInterceptZ(d)
	m, err := FitEMZ(d, iz, y, Options{Iterations: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LogLik(d, iz, y)
	}
}
