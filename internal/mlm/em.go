package mlm

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Options configures EM training.
type Options struct {
	// Iterations is the number of EM iterations (the paper's experiments
	// use 20).
	Iterations int
	// Ridge is the regularization added to gram matrices before inversion
	// to guard against singular designs.
	Ridge float64
}

// disableScalarFastPath forces the general matrix EM path even for q = 1
// designs; tests flip it to assert the two paths agree.
var disableScalarFastPath = false

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	if o.Ridge <= 0 {
		o.Ridge = 1e-8
	}
	return o
}

// MultiLevel is a fitted multi-level linear model (Equation 6):
// yᵢ = Xᵢβ + Zᵢbᵢ + εᵢ with bᵢ ~ N(0, Σ) and εᵢ ~ N(0, σ²I). By default the
// random-effects design is Z = X; FitEMZ accepts a separate (typically
// column-subset) Z backend, the §3.3.4 tuning.
type MultiLevel struct {
	Beta   []float64   // global (fixed-effect) coefficients
	B      [][]float64 // per-cluster random-effect coefficients (Z columns)
	Sigma  *mat.Matrix // random-effect covariance Σ
	Sigma2 float64     // residual variance σ²
	Starts []int       // cluster start rows (cluster i covers Starts[i]..)
	N      int         // number of rows
}

// ClusterOf returns the cluster index containing row r.
func (m *MultiLevel) ClusterOf(r int) int {
	lo, hi := 0, len(m.Starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.Starts[mid] <= r {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// PredictRow returns x·(β + b_cluster): the conditional prediction for a row
// with features x belonging to the given cluster.
func (m *MultiLevel) PredictRow(x []float64, cluster int) float64 {
	return mat.Dot(x, m.Beta) + mat.Dot(x, m.B[cluster])
}

// FitEM trains the multi-level model with the default random-effects design
// Z = X.
func FitEM(b Backend, y []float64, opts Options) (*MultiLevel, error) {
	return FitEMZ(b, b, y, opts)
}

// FitEMZ trains the multi-level model by maximum likelihood using the EM
// updates of Appendix D. bx supplies the fixed-effects design X and bz the
// random-effects design Z (usually a column subset of X, §3.3.4); both must
// partition rows into the same clusters. The backends supply every matrix
// operation, so the same code path runs over dense or factorised
// representations.
func FitEMZ(bx, bz Backend, y []float64, opts Options) (*MultiLevel, error) {
	opts = opts.withDefaults()
	n, m := bx.NumRows(), bx.NumCols()
	q := bz.NumCols()
	if len(y) != n {
		return nil, fmt.Errorf("mlm: y has %d values, X has %d rows", len(y), n)
	}
	if n == 0 || m == 0 || q == 0 {
		return nil, fmt.Errorf("mlm: empty design (X %dx%d, Z cols %d)", n, m, q)
	}
	if bz.NumRows() != n || bz.NumClusters() != bx.NumClusters() {
		return nil, fmt.Errorf("mlm: Z backend shape mismatch (%d rows, %d clusters; want %d, %d)",
			bz.NumRows(), bz.NumClusters(), n, bx.NumClusters())
	}
	G := bx.NumClusters()

	// Precompute the gram matrices: XᵀX once, ZᵢᵀZᵢ per cluster. Only the
	// Z-side cluster operators are needed by the EM updates (the X-side
	// appears through the whole-matrix operations).
	gram := bx.Gram()
	gramInv := gram.RidgeInverse(opts.Ridge)
	zClusters := make([]ClusterOps, G)
	zClusterGram := make([]*mat.Matrix, G)
	starts := make([]int, G)
	covered := 0
	for i := 0; i < G; i++ {
		zClusters[i] = bz.Cluster(i)
		zClusterGram[i] = zClusters[i].Gram()
		var cn int
		starts[i], cn = zClusters[i].Rows()
		covered += cn
	}
	if covered != n {
		return nil, fmt.Errorf("mlm: Z clusters cover %d of %d rows", covered, n)
	}

	// Initialize β by (ridge) OLS, σ² by the residual variance and Σ by a
	// scaled identity.
	beta := gramInv.MulVec(bx.TMulVec(y))
	xb := bx.MulVec(beta)
	r := mat.SubVec(y, xb)
	sigma2 := mat.Dot(r, r) / float64(n)
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	sigma := mat.Identity(q).Scale(sigma2)

	bi := make([][]float64, G)
	ebb := make([]*mat.Matrix, G) // E[bᵢbᵢᵀ] = Vᵢ + μᵢμᵢᵀ
	for i := range bi {
		bi[i] = make([]float64, q)
	}

	if q == 1 && !disableScalarFastPath {
		// Scalar fast path: with a single random-effect column (e.g. random
		// intercepts) every per-cluster matrix op degenerates to scalar
		// arithmetic, avoiding millions of 1×1 matrix allocations.
		return fitEMScalarZ(bx, bz, y, opts, gramInv, zClusterGram, zClusters, starts, beta, sigma2, n, G)
	}

	for iter := 0; iter < opts.Iterations; iter++ {
		// E-step (Equations 8–11).
		sigmaInv := sigma.RidgeInverse(opts.Ridge)
		xb = bx.MulVec(beta)
		r = mat.SubVec(y, xb)
		for i := 0; i < G; i++ {
			start, cn := zClusters[i].Rows()
			vi := zClusterGram[i].Scale(1 / sigma2).Add(sigmaInv).RidgeInverse(opts.Ridge)
			ztr := zClusters[i].TMulVec(r[start : start+cn])
			mu := mat.ScaleVec(vi.MulVec(ztr), 1/sigma2)
			bi[i] = mu
			muMat := mat.ColVec(mu)
			ebb[i] = vi.Add(muMat.Mul(muMat.T()))
		}

		// M-step (Equations 12–14).
		// Z·b̂ by vertical concatenation (the Appendix D sparsity trick).
		zb := make([]float64, n)
		for i := 0; i < G; i++ {
			start, cn := zClusters[i].Rows()
			copy(zb[start:start+cn], zClusters[i].MulVec(bi[i]))
		}
		// β = (XᵀX)⁻¹ · (Xᵀ(y - Zb̂)), multiplied in the Appendix D order to
		// avoid the m×n intermediate.
		beta = gramInv.MulVec(bx.TMulVec(mat.SubVec(y, zb)))
		// Σ = (1/G) Σᵢ E[bᵢbᵢᵀ].
		sigma = mat.New(q, q)
		for i := 0; i < G; i++ {
			sigma.AddInPlace(ebb[i])
		}
		sigma = sigma.Scale(1 / float64(G))
		// σ² per Equation 14.
		xb = bx.MulVec(beta)
		r = mat.SubVec(y, xb)
		s := mat.Dot(r, r)
		for i := 0; i < G; i++ {
			s += zClusterGram[i].Mul(ebb[i]).Trace()
		}
		s -= 2 * mat.Dot(r, zb)
		sigma2 = s / float64(n)
		if sigma2 < 1e-12 || math.IsNaN(sigma2) {
			sigma2 = 1e-12
		}
	}

	return &MultiLevel{
		Beta:   beta,
		B:      bi,
		Sigma:  sigma,
		Sigma2: sigma2,
		Starts: starts,
		N:      n,
	}, nil
}

// fitEMScalarZ runs the EM iterations for the q = 1 random-effects design
// with scalar per-cluster arithmetic. It mirrors FitEMZ exactly (the tests
// assert the two paths agree on q = 1 inputs).
func fitEMScalarZ(bx, bz Backend, y []float64, opts Options,
	gramInv *mat.Matrix, zClusterGram []*mat.Matrix, zClusters []ClusterOps,
	starts []int, beta []float64, sigma2 float64, n, G int) (*MultiLevel, error) {

	zg := make([]float64, G) // ZᵢᵀZᵢ scalars
	for i := 0; i < G; i++ {
		zg[i] = zClusterGram[i].At(0, 0)
	}
	sigma := sigma2 // Σ is a scalar variance
	bi := make([]float64, G)
	ebb := make([]float64, G)
	zb := make([]float64, n)
	wvec := make([]float64, 1)

	for iter := 0; iter < opts.Iterations; iter++ {
		// E-step.
		xb := bx.MulVec(beta)
		r := mat.SubVec(y, xb)
		sigmaInv := 1 / math.Max(sigma, 1e-12)
		for i := 0; i < G; i++ {
			start, cn := zClusters[i].Rows()
			vi := 1 / (zg[i]/sigma2 + sigmaInv)
			ztr := zClusters[i].TMulVec(r[start : start+cn])[0]
			mu := vi * ztr / sigma2
			bi[i] = mu
			ebb[i] = vi + mu*mu
		}
		// M-step.
		for i := 0; i < G; i++ {
			start, cn := zClusters[i].Rows()
			wvec[0] = bi[i]
			copy(zb[start:start+cn], zClusters[i].MulVec(wvec))
		}
		beta = gramInv.MulVec(bx.TMulVec(mat.SubVec(y, zb)))
		var sAcc float64
		for i := 0; i < G; i++ {
			sAcc += ebb[i]
		}
		sigma = sAcc / float64(G)
		xb = bx.MulVec(beta)
		r = mat.SubVec(y, xb)
		s := mat.Dot(r, r)
		for i := 0; i < G; i++ {
			s += zg[i] * ebb[i]
		}
		s -= 2 * mat.Dot(r, zb)
		sigma2 = s / float64(n)
		if sigma2 < 1e-12 || math.IsNaN(sigma2) {
			sigma2 = 1e-12
		}
	}

	b := make([][]float64, G)
	for i := range b {
		b[i] = []float64{bi[i]}
	}
	return &MultiLevel{
		Beta:   beta,
		B:      b,
		Sigma:  mat.FromRows([][]float64{{sigma}}),
		Sigma2: sigma2,
		Starts: starts,
		N:      n,
	}, nil
}

// Fitted returns the conditional fitted values Xβ + Zb̂ for every row. With
// the default Z = X design pass the same backend twice (or use FittedX).
func (m *MultiLevel) Fitted(bx, bz Backend) []float64 {
	out := bx.MulVec(m.Beta)
	for i := 0; i < bz.NumClusters(); i++ {
		c := bz.Cluster(i)
		start, cn := c.Rows()
		zb := c.MulVec(m.B[i])
		for j := 0; j < cn; j++ {
			out[start+j] += zb[j]
		}
	}
	return out
}

// FittedX returns the fitted values for the default Z = X design.
func (m *MultiLevel) FittedX(b Backend) []float64 { return m.Fitted(b, b) }

// LogLik returns the marginal log-likelihood of y under the fitted model:
// yᵢ ~ N(Xᵢβ, ZᵢΣZᵢᵀ + σ²I), evaluated per cluster with the Woodbury
// identity and the matrix determinant lemma so only q×q inverses are needed.
func (m *MultiLevel) LogLik(bx, bz Backend, y []float64) float64 {
	xb := bx.MulVec(m.Beta)
	r := mat.SubVec(y, xb)
	var ll float64
	q := bz.NumCols()
	for i := 0; i < bz.NumClusters(); i++ {
		c := bz.Cluster(i)
		start, cn := c.Rows()
		ri := r[start : start+cn]
		gramI := c.Gram()
		// ln det(σ²I + ZΣZᵀ) = cn·ln σ² + ln det(I_q + (ZᵀZ)Σ/σ²).
		inner := mat.Identity(q).Add(gramI.Mul(m.Sigma).Scale(1 / m.Sigma2))
		det := inner.Det()
		if det <= 0 {
			det = 1e-300
		}
		logDet := float64(cn)*math.Log(m.Sigma2) + math.Log(det)
		// Quadratic form via Woodbury:
		// rᵀ(σ²I + ZΣZᵀ)⁻¹r = (rᵀr − rᵀZ(σ²Σ⁻¹ + ZᵀZ)⁻¹Zᵀr)/σ².
		ztr := c.TMulVec(ri)
		mid := m.Sigma.RidgeInverse(1e-10).Scale(m.Sigma2).Add(gramI).RidgeInverse(1e-10)
		quad := (mat.Dot(ri, ri) - mat.Dot(ztr, mid.MulVec(ztr))) / m.Sigma2
		ll += -0.5 * (float64(cn)*math.Log(2*math.Pi) + logDet + quad)
	}
	return ll
}

// NumParams returns the parameter count for information criteria:
// m fixed effects + q(q+1)/2 covariance terms + 1 residual variance.
func (m *MultiLevel) NumParams() int {
	k := len(m.Beta)
	q := 0
	if len(m.B) > 0 {
		q = len(m.B[0])
	}
	return k + q*(q+1)/2 + 1
}

// AIC returns the Akaike information criterion 2k − 2·loglik.
func (m *MultiLevel) AIC(bx, bz Backend, y []float64) float64 {
	return 2*float64(m.NumParams()) - 2*m.LogLik(bx, bz, y)
}
