package mlm

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// FitIGLS fits the multi-level model by iterative generalized least squares
// (Goldstein [19]) — the §4.1 alternative to EM that Reptile's factorised
// operations equally support. Each iteration solves the GLS normal equations
// for β under the current variance components (σ²_b for the random-effect
// scale, σ² for the residual), then re-estimates the components from the
// residuals. It uses the same Backend operations as EM (gram, cluster gram,
// TMulVec, MulVec), so it runs over dense or factorised representations.
//
// The implementation targets the random-intercept design (bz must have one
// column, e.g. mlm.NewInterceptZ); the per-cluster covariance is then
// V_i = σ²I + σ²_b··Z_iZ_iᵀ and the Woodbury identity keeps every solve at
// scalar cost per cluster.
func FitIGLS(bx, bz Backend, y []float64, opts Options) (*MultiLevel, error) {
	opts = opts.withDefaults()
	n, m := bx.NumRows(), bx.NumCols()
	if len(y) != n {
		return nil, fmt.Errorf("mlm: y has %d values, X has %d rows", len(y), n)
	}
	if bz.NumCols() != 1 {
		return nil, fmt.Errorf("mlm: FitIGLS requires a single random-effect column, got %d", bz.NumCols())
	}
	if bz.NumRows() != n || bz.NumClusters() != bx.NumClusters() {
		return nil, fmt.Errorf("mlm: Z backend shape mismatch")
	}
	G := bx.NumClusters()

	gram := bx.Gram()
	gramInv := gram.RidgeInverse(opts.Ridge)
	zClusters := make([]ClusterOps, G)
	zg := make([]float64, G)
	starts := make([]int, G)
	for i := 0; i < G; i++ {
		zClusters[i] = bz.Cluster(i)
		zg[i] = zClusters[i].Gram().At(0, 0)
		starts[i], _ = zClusters[i].Rows()
	}

	// Start from OLS.
	beta := gramInv.MulVec(bx.TMulVec(y))
	r := mat.SubVec(y, bx.MulVec(beta))
	sigma2 := mat.Dot(r, r) / float64(n)
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	sigmaB := sigma2 / 2

	for iter := 0; iter < opts.Iterations; iter++ {
		// GLS normal equations: (XᵀV⁻¹X)β = XᵀV⁻¹y with
		// V⁻¹ = (1/σ²)(I − Σ_i w_i Z_iZ_iᵀ restricted per cluster), where
		// w_i = σ²_b / (σ² + σ²_b·g_i) by Woodbury for the intercept design.
		// Rather than materialize V⁻¹, build XᵀV⁻¹X and XᵀV⁻¹y from the
		// whole-matrix gram plus per-cluster rank-one corrections.
		xtvx := gram.Scale(1 / sigma2)
		xtvy := mat.ScaleVec(bx.TMulVec(y), 1/sigma2)
		for i := 0; i < G; i++ {
			start, cn := zClusters[i].Rows()
			w := sigmaB / (sigma2 * (sigma2 + sigmaB*zg[i]))
			// Xᵢᵀzᵢ via the cluster op of the X backend is not available
			// without materializing; use the identity zᵢ = 1 (intercept
			// design): Xᵢᵀzᵢ = column sums over the cluster rows, obtained
			// through TMulVec with an indicator vector.
			ind := make([]float64, n)
			for j := start; j < start+cn; j++ {
				ind[j] = 1
			}
			xz := bx.TMulVec(ind)
			yz := 0.0
			for j := start; j < start+cn; j++ {
				yz += y[j]
			}
			for a := 0; a < m; a++ {
				for b := 0; b < m; b++ {
					xtvx.Data[a*m+b] -= w * xz[a] * xz[b]
				}
				xtvy[a] -= w * xz[a] * yz
			}
		}
		var err error
		beta, err = xtvx.SolveVec(xtvy)
		if err != nil {
			beta = xtvx.RidgeInverse(opts.Ridge).MulVec(xtvy)
		}

		// Variance components from the residuals: method-of-moments split
		// between the between-cluster and within-cluster variation.
		r = mat.SubVec(y, bx.MulVec(beta))
		var between, within float64
		for i := 0; i < G; i++ {
			start, cn := zClusters[i].Rows()
			var s float64
			for j := start; j < start+cn; j++ {
				s += r[j]
			}
			meanR := s / float64(cn)
			between += meanR * meanR
			for j := start; j < start+cn; j++ {
				d := r[j] - meanR
				within += d * d
			}
		}
		denWithin := float64(n - G)
		if denWithin < 1 {
			denWithin = 1
		}
		sigma2 = within / denWithin
		if sigma2 < 1e-12 || math.IsNaN(sigma2) {
			sigma2 = 1e-12
		}
		// E[mean residual²] = σ²_b + σ²/n_i; subtract the residual share.
		var avgInv float64
		for i := 0; i < G; i++ {
			_, cn := zClusters[i].Rows()
			avgInv += 1 / float64(cn)
		}
		sigmaB = between/float64(G) - sigma2*avgInv/float64(G)
		if sigmaB < 1e-12 || math.IsNaN(sigmaB) {
			sigmaB = 1e-12
		}
	}

	// BLUP random intercepts under the final variance components.
	r = mat.SubVec(y, bx.MulVec(beta))
	b := make([][]float64, G)
	for i := 0; i < G; i++ {
		start, cn := zClusters[i].Rows()
		ztr := zClusters[i].TMulVec(r[start : start+cn])[0]
		b[i] = []float64{sigmaB * ztr / (sigma2 + sigmaB*zg[i])}
	}
	return &MultiLevel{
		Beta:   beta,
		B:      b,
		Sigma:  mat.FromRows([][]float64{{sigmaB}}),
		Sigma2: sigma2,
		Starts: starts,
		N:      n,
	}, nil
}
