package mlm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestIGLSRecoversClusterStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y, starts, shifts := clusteredData(rng, 15, 20)
	d, err := NewDense(x, starts)
	if err != nil {
		t.Fatal(err)
	}
	model, err := FitIGLS(d, NewInterceptZ(d), y, Options{Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed effects near the truth (3 and 2 with cluster noise on the
	// intercept).
	if math.Abs(model.Beta[1]-2) > 0.1 {
		t.Errorf("slope = %v, want ≈2", model.Beta[1])
	}
	// Random intercepts track the true shifts.
	b0 := make([]float64, len(model.B))
	for g := range model.B {
		b0[g] = model.B[g][0]
	}
	if corr := mat.PearsonCorr(b0, shifts); corr < 0.95 {
		t.Errorf("intercept corr = %v, want > 0.95", corr)
	}
	// Variance components: residual σ ≈ 0.3, intercept σ_b ≈ 5.
	if model.Sigma2 < 0.05 || model.Sigma2 > 0.2 {
		t.Errorf("sigma2 = %v, want ≈0.09", model.Sigma2)
	}
	if sb := model.Sigma.At(0, 0); sb < 5 || sb > 60 {
		t.Errorf("sigma_b = %v, want ≈25", sb)
	}
}

// IGLS and EM are different estimators of the same model; on well-separated
// data their fixed effects and predictions must agree closely.
func TestIGLSAgreesWithEM(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y, starts, _ := clusteredData(rng, 12, 25)
	d, _ := NewDense(x, starts)
	iz := NewInterceptZ(d)
	em, err := FitEMZ(d, iz, y, Options{Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	igls, err := FitIGLS(d, iz, y, Options{Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	for j := range em.Beta {
		if math.Abs(em.Beta[j]-igls.Beta[j]) > 0.05*(1+math.Abs(em.Beta[j])) {
			t.Errorf("beta[%d]: EM %v IGLS %v", j, em.Beta[j], igls.Beta[j])
		}
	}
	fe := em.Fitted(d, iz)
	fi := igls.Fitted(d, iz)
	var mse float64
	for i := range fe {
		dlt := fe[i] - fi[i]
		mse += dlt * dlt
	}
	mse /= float64(len(fe))
	if mse > 0.05 {
		t.Errorf("EM vs IGLS fitted mse = %v", mse)
	}
}

func TestIGLSErrors(t *testing.T) {
	d, _ := NewDense(mat.FromRows([][]float64{{1, 0}, {1, 1}}), []int{0})
	if _, err := FitIGLS(d, d, []float64{1, 2}, Options{}); err == nil {
		t.Error("expected error for multi-column Z")
	}
	iz := NewInterceptZ(d)
	if _, err := FitIGLS(d, iz, []float64{1}, Options{}); err == nil {
		t.Error("expected length error")
	}
}

// IGLS must run identically over the factorised backend.
func TestIGLSOverFactorised(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	fm, y := buildFactorMatrix(rng)
	fb, err := NewFactorised(fm)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := FitIGLS(fb, NewInterceptZ(fb), y, Options{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := fm.Materialize()
	starts := make([]int, fb.NumClusters())
	for i := range starts {
		starts[i], _ = fb.Cluster(i).Rows()
	}
	db, _ := NewDense(x, starts)
	m2, err := FitIGLS(db, NewInterceptZ(db), y, Options{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for j := range m1.Beta {
		if math.Abs(m1.Beta[j]-m2.Beta[j]) > 1e-6*(1+math.Abs(m2.Beta[j])) {
			t.Fatalf("beta[%d] factorised %v dense %v", j, m1.Beta[j], m2.Beta[j])
		}
	}
}
