package mlm

import (
	"math"
	"math/rand"
	"testing"
)

// The closed-form InterceptZ backend must behave exactly like subsetting the
// design matrix to its (constant-1) intercept column.
func TestInterceptZMatchesSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y, starts, _ := clusteredData(rng, 8, 12)
	d, err := NewDense(x, starts)
	if err != nil {
		t.Fatal(err)
	}
	zmask := make([]bool, x.Cols)
	zmask[0] = true
	sub, err := d.SubsetCols(zmask)
	if err != nil {
		t.Fatal(err)
	}
	iz := NewInterceptZ(d)

	if iz.NumRows() != sub.NumRows() || iz.NumCols() != 1 || iz.NumClusters() != sub.NumClusters() {
		t.Fatal("InterceptZ shape mismatch")
	}
	if g1, g2 := iz.Gram().At(0, 0), sub.Gram().At(0, 0); math.Abs(g1-g2) > 1e-9 {
		t.Errorf("Gram %v vs %v", g1, g2)
	}
	v := make([]float64, iz.NumRows())
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if a, b := iz.TMulVec(v)[0], sub.TMulVec(v)[0]; math.Abs(a-b) > 1e-9 {
		t.Errorf("TMulVec %v vs %v", a, b)
	}
	mv1, mv2 := iz.MulVec([]float64{2.5}), sub.MulVec([]float64{2.5})
	for i := range mv1 {
		if math.Abs(mv1[i]-mv2[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] %v vs %v", i, mv1[i], mv2[i])
		}
	}
	for c := 0; c < iz.NumClusters(); c++ {
		c1, c2 := iz.Cluster(c), sub.Cluster(c)
		s1, n1 := c1.Rows()
		s2, n2 := c2.Rows()
		if s1 != s2 || n1 != n2 {
			t.Fatalf("cluster %d rows (%d,%d) vs (%d,%d)", c, s1, n1, s2, n2)
		}
		if a, b := c1.Gram().At(0, 0), c2.Gram().At(0, 0); math.Abs(a-b) > 1e-9 {
			t.Fatalf("cluster %d gram %v vs %v", c, a, b)
		}
		r := make([]float64, n1)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		if a, b := c1.TMulVec(r)[0], c2.TMulVec(r)[0]; math.Abs(a-b) > 1e-9 {
			t.Fatalf("cluster %d TMulVec %v vs %v", c, a, b)
		}
	}

	// End to end: EM with InterceptZ equals EM with the subset backend.
	m1, err := FitEMZ(d, iz, y, Options{Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitEMZ(d, sub, y, Options{Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	for j := range m1.Beta {
		if math.Abs(m1.Beta[j]-m2.Beta[j]) > 1e-9*(1+math.Abs(m2.Beta[j])) {
			t.Fatalf("beta[%d] %v vs %v", j, m1.Beta[j], m2.Beta[j])
		}
	}
	if math.Abs(m1.Sigma2-m2.Sigma2) > 1e-9*(1+m2.Sigma2) {
		t.Fatalf("sigma2 %v vs %v", m1.Sigma2, m2.Sigma2)
	}
}

// The factorised backend also supports the intercept design.
func TestInterceptZOverFactorised(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fm, y := buildFactorMatrix(rng)
	fb, err := NewFactorised(fm)
	if err != nil {
		t.Fatal(err)
	}
	iz := NewInterceptZ(fb)
	m1, err := FitEMZ(fb, iz, y, Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: dense over the materialized matrix with the same clusters.
	x, err := fm.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]int, fb.NumClusters())
	for i := range starts {
		starts[i], _ = fb.Cluster(i).Rows()
	}
	db, err := NewDense(x, starts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitEMZ(db, NewInterceptZ(db), y, Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	for j := range m1.Beta {
		if math.Abs(m1.Beta[j]-m2.Beta[j]) > 1e-6*(1+math.Abs(m2.Beta[j])) {
			t.Fatalf("beta[%d] factorised %v dense %v", j, m1.Beta[j], m2.Beta[j])
		}
	}
}
