package mlm

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Linear is an ordinary-least-squares linear regression model — the baseline
// the multi-level model is compared against in Appendix K.
type Linear struct {
	Beta   []float64
	Sigma2 float64 // maximum-likelihood residual variance (RSS/n)
	N      int
}

// FitLinear fits y = Xβ + ε by least squares with a small ridge guard.
func FitLinear(x *mat.Matrix, y []float64) (*Linear, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("mlm: X has %d rows, y has %d", x.Rows, len(y))
	}
	if x.Rows == 0 || x.Cols == 0 {
		return nil, fmt.Errorf("mlm: empty design (%dx%d)", x.Rows, x.Cols)
	}
	gramInv := x.Gram().RidgeInverse(1e-8)
	beta := gramInv.MulVec(x.TMulVec(y))
	r := mat.SubVec(y, x.MulVec(beta))
	sigma2 := mat.Dot(r, r) / float64(len(y))
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	return &Linear{Beta: beta, Sigma2: sigma2, N: len(y)}, nil
}

// Predict returns x·β for one feature row.
func (l *Linear) Predict(x []float64) float64 { return mat.Dot(x, l.Beta) }

// Fitted returns Xβ for every row of x.
func (l *Linear) Fitted(x *mat.Matrix) []float64 { return x.MulVec(l.Beta) }

// LogLik returns the Gaussian log-likelihood at the ML variance estimate.
func (l *Linear) LogLik() float64 {
	n := float64(l.N)
	return -0.5 * n * (math.Log(2*math.Pi*l.Sigma2) + 1)
}

// NumParams returns the parameter count (coefficients + variance).
func (l *Linear) NumParams() int { return len(l.Beta) + 1 }

// AIC returns the Akaike information criterion 2k − 2·loglik.
func (l *Linear) AIC() float64 { return 2*float64(l.NumParams()) - 2*l.LogLik() }
