package mlm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/factor"
	"repro/internal/fmatrix"
	"repro/internal/mat"
)

func TestFitLinearRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := mat.New(n, 3)
	y := make([]float64, n)
	want := []float64{2, -1, 0.5}
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, rng.NormFloat64())
		x.Set(i, 2, rng.NormFloat64())
		y[i] = want[0]*x.At(i, 0) + want[1]*x.At(i, 1) + want[2]*x.At(i, 2) + rng.NormFloat64()*0.01
	}
	l, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(l.Beta[j]-want[j]) > 0.01 {
			t.Errorf("beta[%d] = %v, want %v", j, l.Beta[j], want[j])
		}
	}
	if l.AIC() >= 0 {
		// Tiny noise → strongly negative AIC; just sanity-check finiteness.
		t.Logf("AIC = %v", l.AIC())
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(mat.New(2, 1), []float64{1}); err == nil {
		t.Error("expected shape error")
	}
	if _, err := FitLinear(mat.New(0, 0), nil); err == nil {
		t.Error("expected empty design error")
	}
}

// clusteredData generates G clusters of size each, with cluster-specific
// intercept shifts — the regime multi-level models are designed for.
func clusteredData(rng *rand.Rand, G, size int) (*mat.Matrix, []float64, []int, []float64) {
	n := G * size
	x := mat.New(n, 2)
	y := make([]float64, n)
	starts := make([]int, G)
	shifts := make([]float64, G)
	for g := 0; g < G; g++ {
		starts[g] = g * size
		shifts[g] = rng.NormFloat64() * 5
		for j := 0; j < size; j++ {
			i := g*size + j
			f := rng.NormFloat64()
			x.Set(i, 0, 1)
			x.Set(i, 1, f)
			y[i] = 3 + 2*f + shifts[g] + rng.NormFloat64()*0.3
		}
	}
	return x, y, starts, shifts
}

func TestFitEMCapturesClusterEffects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y, starts, shifts := clusteredData(rng, 12, 25)
	d, err := NewDense(x, starts)
	if err != nil {
		t.Fatal(err)
	}
	model, err := FitEM(d, y, Options{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	// The fitted values should track y much better than OLS.
	fitted := model.FittedX(d)
	var mseEM float64
	for i := range y {
		dlt := fitted[i] - y[i]
		mseEM += dlt * dlt
	}
	mseEM /= float64(len(y))
	l, _ := FitLinear(x, y)
	lf := l.Fitted(x)
	var mseOLS float64
	for i := range y {
		dlt := lf[i] - y[i]
		mseOLS += dlt * dlt
	}
	mseOLS /= float64(len(y))
	if mseEM > mseOLS/4 {
		t.Errorf("EM mse %v not much better than OLS mse %v", mseEM, mseOLS)
	}
	// Random intercepts should correlate strongly with the true shifts.
	b0 := make([]float64, len(model.B))
	for g := range model.B {
		b0[g] = model.B[g][0]
	}
	if corr := mat.PearsonCorr(b0, shifts); corr < 0.95 {
		t.Errorf("random intercept corr = %v, want > 0.95", corr)
	}
}

func TestFitEMErrors(t *testing.T) {
	d, _ := NewDense(mat.New(4, 1), []int{0, 2})
	if _, err := FitEM(d, []float64{1}, Options{}); err == nil {
		t.Error("expected length error")
	}
	if _, err := NewDense(mat.New(4, 1), []int{1}); err == nil {
		t.Error("expected starts-begin-at-0 error")
	}
	if _, err := NewDense(mat.New(4, 1), []int{0, 2, 2}); err == nil {
		t.Error("expected non-increasing starts error")
	}
	if _, err := NewDense(mat.New(4, 1), []int{0, 9}); err == nil {
		t.Error("expected out-of-range start error")
	}
}

// buildFactorMatrix builds a small random factorised matrix and y.
func buildFactorMatrix(r *rand.Rand) (*fmatrix.Matrix, []float64) {
	// Two hierarchies: one flat (4 values), one 2-level (3 parents, 2-3
	// children each).
	var paths [][]string
	for i := 0; i < 4; i++ {
		paths = append(paths, []string{fmt.Sprintf("t%d", i)})
	}
	src1, err := factor.NewSource("time", []string{"T"}, paths)
	if err != nil {
		panic(err)
	}
	var geo [][]string
	leaf := 0
	for p := 0; p < 3; p++ {
		kids := 2 + r.Intn(2)
		for k := 0; k < kids; k++ {
			geo = append(geo, []string{fmt.Sprintf("d%d", p), fmt.Sprintf("v%d", leaf)})
			leaf++
		}
	}
	src2, err := factor.NewSource("geo", []string{"D", "V"}, geo)
	if err != nil {
		panic(err)
	}
	f, err := factor.New([]*factor.Source{src1, src2}, []int{1, 2})
	if err != nil {
		panic(err)
	}
	var cols []fmatrix.Column
	for ai := 0; ai < f.NumAttrs(); ai++ {
		vals, _ := f.CountVals(ai)
		fv := make([]float64, len(vals))
		for i := range fv {
			fv[i] = r.NormFloat64()
		}
		cols = append(cols, fmatrix.Column{Name: fmt.Sprintf("c%d", ai), Attr: ai, Vals: fv})
	}
	// Intercept.
	ivals, _ := f.CountVals(0)
	ones := make([]float64, len(ivals))
	for i := range ones {
		ones[i] = 1
	}
	cols = append([]fmatrix.Column{{Name: "intercept", Attr: 0, Vals: ones}}, cols...)
	m, err := fmatrix.New(f, cols)
	if err != nil {
		panic(err)
	}
	n, _ := f.RowCount()
	y := make([]float64, n)
	for i := range y {
		y[i] = r.NormFloat64() * 3
	}
	return m, y
}

// The factorised and dense backends must produce identical EM trajectories.
func TestEMFactorisedMatchesDense(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		fm, y := buildFactorMatrix(r)
		fb, err := NewFactorised(fm)
		if err != nil {
			t.Fatal(err)
		}
		x, err := fm.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		// Dense cluster starts from the factorised partition.
		starts := make([]int, fb.NumClusters())
		for i := range starts {
			s, _ := fb.Cluster(i).Rows()
			starts[i] = s
		}
		db, err := NewDense(x, starts)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Iterations: 8}
		mf, err := FitEM(fb, y, opts)
		if err != nil {
			t.Fatal(err)
		}
		md, err := FitEM(db, y, opts)
		if err != nil {
			t.Fatal(err)
		}
		for j := range mf.Beta {
			if math.Abs(mf.Beta[j]-md.Beta[j]) > 1e-6 {
				t.Fatalf("trial %d: beta[%d] factorised %v dense %v", trial, j, mf.Beta[j], md.Beta[j])
			}
		}
		if math.Abs(mf.Sigma2-md.Sigma2) > 1e-6*(1+md.Sigma2) {
			t.Fatalf("trial %d: sigma2 factorised %v dense %v", trial, mf.Sigma2, md.Sigma2)
		}
		for g := range mf.B {
			for j := range mf.B[g] {
				if math.Abs(mf.B[g][j]-md.B[g][j]) > 1e-6 {
					t.Fatalf("trial %d: b[%d][%d] mismatch", trial, g, j)
				}
			}
		}
		// Log-likelihoods agree too.
		if math.Abs(mf.LogLik(fb, fb, y)-md.LogLik(db, db, y)) > 1e-4 {
			t.Fatalf("trial %d: loglik mismatch %v vs %v", trial, mf.LogLik(fb, fb, y), md.LogLik(db, db, y))
		}
	}
}

// LogLik via Woodbury must match the direct dense-covariance computation.
func TestLogLikMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y, starts, _ := clusteredData(rng, 4, 6)
	d, _ := NewDense(x, starts)
	model, err := FitEM(d, y, Options{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := model.LogLik(d, d, y)
	// Direct: per cluster build V = XΣXᵀ + σ²I and evaluate the Gaussian.
	xb := d.MulVec(model.Beta)
	var want float64
	for i := 0; i < d.NumClusters(); i++ {
		c := d.Cluster(i)
		start, cn := c.Rows()
		sub := mat.New(cn, x.Cols)
		copy(sub.Data, x.Data[start*x.Cols:(start+cn)*x.Cols])
		v := sub.Mul(model.Sigma).Mul(sub.T()).Add(mat.Identity(cn).Scale(model.Sigma2))
		vinv, err := v.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		r := make([]float64, cn)
		for j := 0; j < cn; j++ {
			r[j] = y[start+j] - xb[start+j]
		}
		quad := mat.Dot(r, vinv.MulVec(r))
		want += -0.5 * (float64(cn)*math.Log(2*math.Pi) + math.Log(v.Det()) + quad)
	}
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("LogLik = %v, direct = %v", got, want)
	}
}

func TestAICPrefersMultiLevelOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y, starts, _ := clusteredData(rng, 15, 20)
	d, _ := NewDense(x, starts)
	model, err := FitEM(d, y, Options{Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	l, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if model.AIC(d, d, y) >= l.AIC() {
		t.Errorf("multi-level AIC %v should beat linear AIC %v on clustered data", model.AIC(d, d, y), l.AIC())
	}
}

func TestClusterOf(t *testing.T) {
	m := &MultiLevel{Starts: []int{0, 5, 9}}
	cases := map[int]int{0: 0, 4: 0, 5: 1, 8: 1, 9: 2, 20: 2}
	for row, want := range cases {
		if got := m.ClusterOf(row); got != want {
			t.Errorf("ClusterOf(%d) = %d, want %d", row, got, want)
		}
	}
}

func TestPredictRow(t *testing.T) {
	m := &MultiLevel{
		Beta: []float64{1, 2},
		B:    [][]float64{{0.5, -1}},
	}
	got := m.PredictRow([]float64{1, 3}, 0)
	want := 1.0*1 + 2*3 + 0.5*1 + (-1)*3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictRow = %v, want %v", got, want)
	}
}

func TestDenseClusterOps(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	d, err := NewDense(x, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClusters() != 2 {
		t.Fatal("NumClusters wrong")
	}
	c0 := d.Cluster(0)
	s, n := c0.Rows()
	if s != 0 || n != 2 {
		t.Errorf("cluster 0 rows = %d,%d", s, n)
	}
	c1 := d.Cluster(1)
	s, n = c1.Rows()
	if s != 2 || n != 1 {
		t.Errorf("cluster 1 rows = %d,%d", s, n)
	}
	got := c1.MulVec([]float64{1, 1})
	if len(got) != 1 || got[0] != 11 {
		t.Errorf("cluster MulVec = %v", got)
	}
}
