package mlm

import (
	"math"
	"math/rand"
	"testing"
)

// The scalar q = 1 fast path must agree with the general matrix EM path.
func TestScalarFastPathMatchesGeneral(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		x, y, starts, _ := clusteredData(rng, 10, 8)
		d, err := NewDense(x, starts)
		if err != nil {
			t.Fatal(err)
		}
		zmask := make([]bool, x.Cols)
		zmask[0] = true
		bz, err := d.SubsetCols(zmask)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Iterations: 10}

		fast, err := FitEMZ(d, bz, y, opts)
		if err != nil {
			t.Fatal(err)
		}
		disableScalarFastPath = true
		slow, err := FitEMZ(d, bz, y, opts)
		disableScalarFastPath = false
		if err != nil {
			t.Fatal(err)
		}

		for j := range fast.Beta {
			if math.Abs(fast.Beta[j]-slow.Beta[j]) > 1e-8*(1+math.Abs(slow.Beta[j])) {
				t.Fatalf("trial %d: beta[%d] fast %v slow %v", trial, j, fast.Beta[j], slow.Beta[j])
			}
		}
		if math.Abs(fast.Sigma2-slow.Sigma2) > 1e-8*(1+slow.Sigma2) {
			t.Fatalf("trial %d: sigma2 fast %v slow %v", trial, fast.Sigma2, slow.Sigma2)
		}
		if math.Abs(fast.Sigma.At(0, 0)-slow.Sigma.At(0, 0)) > 1e-8*(1+slow.Sigma.At(0, 0)) {
			t.Fatalf("trial %d: Sigma fast %v slow %v", trial, fast.Sigma.At(0, 0), slow.Sigma.At(0, 0))
		}
		for g := range fast.B {
			if math.Abs(fast.B[g][0]-slow.B[g][0]) > 1e-8*(1+math.Abs(slow.B[g][0])) {
				t.Fatalf("trial %d: b[%d] fast %v slow %v", trial, g, fast.B[g][0], slow.B[g][0])
			}
		}
	}
}
