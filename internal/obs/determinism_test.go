package obs

import (
	"strings"
	"testing"
	"time"

	"repro/reptile/api"
)

// stripVolatile drops the uptime sample — the one line whose value is
// allowed to change between two back-to-back renders of an idle registry.
func stripVolatile(prom string) string {
	var keep []string
	for _, line := range strings.Split(prom, "\n") {
		if strings.HasPrefix(line, "reptile_uptime_seconds ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestWritePromRepeatedRenderIdentical locks the exposition's determinism:
// with no traffic in between, two renders of a populated registry are
// byte-identical (modulo uptime). Error-code labels and stage lines come out
// of maps internally; this pins the sorted/first-seen orderings that keep
// scrape diffs meaningful.
func TestWritePromRepeatedRenderIdentical(t *testing.T) {
	r := NewRegistry()
	m := r.Endpoint(EndpointRecommend)
	m.Requests.Add(7)
	for _, c := range []api.ErrorCode{
		api.CodeOverloaded, api.CodeBadRequest, api.CodeInternal,
		api.CodeSessionExpired, api.CodeUnprocessable,
	} {
		m.RecordError(c)
	}
	m.Latency.Observe(3 * time.Millisecond)
	m.CacheHits.Add(2)
	r.ObserveStages([]Stage{
		{Name: "groupby", Dur: time.Millisecond},
		{Name: "fit", Dur: 2 * time.Millisecond},
		{Name: "rank", Dur: time.Microsecond},
	})
	extra := []Gauge{
		{Name: "reptile_sessions", Help: "Live sessions.", Value: 3},
		{Name: "reptile_build_info", Help: "Build identity.", Labels: `version="test"`, Value: 1},
	}

	var a, b strings.Builder
	r.WriteProm(&a, extra)
	r.WriteProm(&b, extra)
	if stripVolatile(a.String()) != stripVolatile(b.String()) {
		t.Errorf("two renders of an idle registry differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `reptile_request_errors_total{endpoint="recommend",code="bad_request"} 1`) {
		t.Errorf("exposition missing recorded error sample:\n%s", a.String())
	}
}
