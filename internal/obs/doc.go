// Package obs is the serving layer's observability toolkit: lock-free
// per-endpoint counters, fixed-bucket latency histograms, per-request stage
// traces, and a Prometheus text-format renderer — all stdlib-only.
//
// # Counters and histograms
//
// Registry holds one EndpointMetrics per served route (the Endpoint enum is
// closed, so the counters live in fixed arrays): total requests, errors by
// reptile/api error code, an in-flight gauge, recommendation-cache hit/miss
// counters, and a latency Histogram. Recording is a handful of atomic adds;
// no locks are taken on the request path.
//
// Histogram uses a fixed power-of-two-microsecond bucket layout shared by
// every instance, so any two histograms (server-side endpoint latencies,
// per-worker client-side measurements in cmd/reptile-bench) merge exactly by
// adding counts bucket-wise. Quantiles (p50/p95/p99) interpolate linearly
// inside the selected bucket, bounding the estimation error by the bucket
// width, and are clamped to the recorded maximum.
//
// # Stage traces
//
// Trace records one request's pipeline spans — cache lookup, session bind,
// group-by/cube, shard scatter-gather, model fit, encode — from any number
// of goroutines. Stages() flattens overlapping and nested spans into an
// exclusive decomposition (each time slice attributed to the innermost
// active span), so per-stage durations sum to the union of instrumented
// time, never more than the request's wall clock. The serving layer carries
// the trace in the request context (ContextWithTrace/TraceFrom); the engine
// records into it through its own tiny core.SpanRecorder seam, so
// internal/core never imports this package.
//
// # Exposition
//
// Registry.WriteProm renders everything in the Prometheus text exposition
// format (served as GET /v1/metrics by internal/server), and the same
// counters feed the JSON per-endpoint and per-stage blocks of GET /v1/stats.
package obs
