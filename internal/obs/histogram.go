package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i covers
// latencies in (UpperBound(i-1), UpperBound(i)]; the last bucket is
// unbounded above. The layout is identical for every histogram, so any two
// histograms merge by adding counts bucket-wise.
const NumBuckets = 36

// UpperBound returns bucket i's inclusive upper bound: 2^i microseconds
// (bucket 0 holds everything at or below 1µs, bucket 34 reaches ~17s). The
// last bucket has no upper bound and reports a negative duration here.
func UpperBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return -1 // +Inf
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	// bits.Len64(us-1) is the smallest i with 2^i >= us, i.e. the first
	// bucket whose upper bound covers the value.
	i := bits.Len64(uint64(us - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Histogram is a fixed-bucket latency histogram safe for concurrent,
// lock-free recording: Observe is a few atomic adds, and readers take a
// point-in-time Snapshot without stopping writers. All histograms share one
// bucket layout (power-of-two microsecond bounds), so snapshots merge
// exactly; quantiles interpolate linearly inside a bucket, bounding the
// error by the bucket's width.
//
// The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total observed nanoseconds
	max     atomic.Int64 // largest observed nanoseconds
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Snapshot captures the histogram's current counts. Concurrent Observes may
// land between bucket reads, so a snapshot is only guaranteed consistent
// with itself up to in-flight observations — fine for monitoring, which is
// the only consumer.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, the form quantiles
// and merges operate on.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
}

// Merge adds o's counts into s, returning the combined snapshot. Every
// histogram shares the same bucket layout, so the merge is exact: merging
// two snapshots is indistinguishable from having observed both series into
// one histogram.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	return s
}

// Quantile estimates the q-th latency quantile (0 < q <= 1) by linear
// interpolation within the bucket holding the q-th observation. The estimate
// is clamped to the recorded maximum, so p99 of a uniform series never
// exceeds the largest value actually seen. Returns 0 on an empty histogram.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = UpperBound(i - 1)
			}
			hi := UpperBound(i)
			if hi < 0 { // unbounded last bucket: report its floor or the max
				hi = s.Max
				if hi < lo {
					hi = lo
				}
			}
			frac := (rank - cum) / float64(c)
			est := lo + time.Duration(frac*float64(hi-lo))
			if s.Max > 0 && est > s.Max {
				est = s.Max
			}
			return est
		}
		cum = next
	}
	return s.Max
}

// Mean returns the average observed latency, 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
