package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundsCoverValues(t *testing.T) {
	cases := []time.Duration{
		0, time.Nanosecond, time.Microsecond, 2 * time.Microsecond,
		3 * time.Microsecond, time.Millisecond, 20 * time.Millisecond,
		time.Second, 30 * time.Second, time.Hour,
	}
	for _, d := range cases {
		i := bucketOf(d)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketOf(%v) = %d out of range", d, i)
		}
		if ub := UpperBound(i); ub >= 0 && d > ub {
			t.Errorf("bucketOf(%v) = %d but upper bound %v is below the value", d, i, ub)
		}
		if i > 0 {
			if lb := UpperBound(i - 1); d <= lb && i != NumBuckets-1 {
				t.Errorf("bucketOf(%v) = %d but lower bound %v already covers it", d, i, lb)
			}
		}
	}
}

// TestQuantileWithinBucketBounds checks the estimator's contract: for a known
// sample the estimated quantile must land inside the bucket holding the true
// quantile, i.e. within a factor of two (the bucket width), and never above
// the recorded maximum.
func TestQuantileWithinBucketBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]time.Duration, 10_000)
	for i := range samples {
		// Log-uniform over ~50µs..500ms, the realistic serving range.
		d := time.Duration(float64(50*time.Microsecond) * float64(uint(1)<<uint(rng.Intn(14))))
		d += time.Duration(rng.Int63n(int64(d)))
		samples[i] = d
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", s.Count, len(samples))
	}
	if s.Max != samples[len(samples)-1] {
		t.Fatalf("max = %v, want %v", s.Max, samples[len(samples)-1])
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		truth := samples[int(q*float64(len(samples)))-1]
		est := s.Quantile(q)
		lo, hi := truth/2, 2*truth
		if est < lo || est > hi {
			t.Errorf("q=%v: estimate %v outside bucket-bounded range [%v, %v] around true %v", q, est, lo, hi, truth)
		}
		if est > s.Max {
			t.Errorf("q=%v: estimate %v exceeds recorded max %v", q, est, s.Max)
		}
	}
	if got := s.Quantile(1); got > s.Max {
		t.Errorf("p100 = %v exceeds max %v", got, s.Max)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got <= 0 || got > 3*time.Millisecond {
			t.Errorf("single-sample q=%v = %v, want in (0, 3ms]", q, got)
		}
	}
}

// TestMergeMatchesCombinedObservation is the mergeability contract: merging
// two snapshots is indistinguishable from observing both series into one
// histogram.
func TestMergeMatchesCombinedObservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		both.Observe(d)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := both.Snapshot()
	if merged != want {
		t.Fatalf("merged snapshot differs from combined observation:\n merged: %+v\n   want: %+v", merged, want)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q=%v differs after merge: %v vs %v", q, merged.Quantile(q), want.Quantile(q))
		}
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many goroutines
// while a reader snapshots — primarily a -race canary for the lock-free
// recording path.
func TestHistogramConcurrentWriters(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.95)
				_ = s.Mean()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*perWriter+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
}
