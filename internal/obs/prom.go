package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` preambles followed by
// `name{label="value"} number` sample lines. Only the stdlib is used; the
// format is simple enough that a hand-rolled writer beats a dependency.

// secs renders a duration as seconds with full float precision, the unit
// Prometheus conventions expect.
func secs(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// Gauge is one extra single-value metric the serving layer contributes to
// the exposition (session counts, cache size, build info) beyond what the
// registry itself tracks.
type Gauge struct {
	Name   string
	Help   string
	Labels string // rendered verbatim inside {}, may be empty
	Value  float64
}

// WriteProm renders every endpoint's counters and histogram, the aggregated
// stage totals, and the caller's extra gauges. Every endpoint appears in the
// output even before its first request, so scrapes enumerate the full route
// surface from the start.
func (r *Registry) WriteProm(w io.Writer, extra []Gauge) {
	fmt.Fprint(w, "# HELP reptile_requests_total Requests served, by endpoint.\n")
	fmt.Fprint(w, "# TYPE reptile_requests_total counter\n")
	for e := Endpoint(0); e < NumEndpoints; e++ {
		fmt.Fprintf(w, "reptile_requests_total{endpoint=%q} %d\n", e, r.endpoints[e].Requests.Load())
	}

	fmt.Fprint(w, "# HELP reptile_request_errors_total Error responses, by endpoint and api error code.\n")
	fmt.Fprint(w, "# TYPE reptile_request_errors_total counter\n")
	for e := Endpoint(0); e < NumEndpoints; e++ {
		errs := r.endpoints[e].Errors()
		codes := make([]string, 0, len(errs))
		for c := range errs {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "reptile_request_errors_total{endpoint=%q,code=%q} %d\n", e, c, errs[c])
		}
	}

	fmt.Fprint(w, "# HELP reptile_requests_in_flight Requests currently being served, by endpoint.\n")
	fmt.Fprint(w, "# TYPE reptile_requests_in_flight gauge\n")
	for e := Endpoint(0); e < NumEndpoints; e++ {
		fmt.Fprintf(w, "reptile_requests_in_flight{endpoint=%q} %d\n", e, r.endpoints[e].InFlight.Load())
	}

	fmt.Fprint(w, "# HELP reptile_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprint(w, "# TYPE reptile_request_duration_seconds histogram\n")
	for e := Endpoint(0); e < NumEndpoints; e++ {
		s := r.endpoints[e].Latency.Snapshot()
		cum := uint64(0)
		for i := 0; i < NumBuckets; i++ {
			cum += s.Buckets[i]
			le := "+Inf"
			if ub := UpperBound(i); ub >= 0 {
				le = secs(ub)
			}
			fmt.Fprintf(w, "reptile_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", e, le, cum)
		}
		fmt.Fprintf(w, "reptile_request_duration_seconds_sum{endpoint=%q} %s\n", e, secs(s.Sum))
		fmt.Fprintf(w, "reptile_request_duration_seconds_count{endpoint=%q} %d\n", e, s.Count)
	}

	fmt.Fprint(w, "# HELP reptile_cache_requests_total Recommendation cache lookups, by endpoint and outcome.\n")
	fmt.Fprint(w, "# TYPE reptile_cache_requests_total counter\n")
	for e := Endpoint(0); e < NumEndpoints; e++ {
		m := &r.endpoints[e]
		hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
		if hits == 0 && misses == 0 {
			continue
		}
		fmt.Fprintf(w, "reptile_cache_requests_total{endpoint=%q,outcome=\"hit\"} %d\n", e, hits)
		fmt.Fprintf(w, "reptile_cache_requests_total{endpoint=%q,outcome=\"miss\"} %d\n", e, misses)
	}

	fmt.Fprint(w, "# HELP reptile_stage_duration_seconds_total Cumulative exclusive time in each recommend pipeline stage.\n")
	fmt.Fprint(w, "# TYPE reptile_stage_duration_seconds_total counter\n")
	stages := r.StageTotals()
	for _, st := range stages {
		fmt.Fprintf(w, "reptile_stage_duration_seconds_total{stage=%q} %s\n", st.Name, secs(st.Total))
	}
	fmt.Fprint(w, "# HELP reptile_stage_requests_total Requests that recorded each recommend pipeline stage.\n")
	fmt.Fprint(w, "# TYPE reptile_stage_requests_total counter\n")
	for _, st := range stages {
		fmt.Fprintf(w, "reptile_stage_requests_total{stage=%q} %d\n", st.Name, st.Count)
	}

	fmt.Fprint(w, "# HELP reptile_uptime_seconds Seconds since the server started.\n")
	fmt.Fprint(w, "# TYPE reptile_uptime_seconds gauge\n")
	fmt.Fprintf(w, "reptile_uptime_seconds %s\n", secs(time.Since(r.Start)))

	for _, g := range extra {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.Name, g.Help, g.Name)
		if g.Labels != "" {
			fmt.Fprintf(w, "%s{%s} %s\n", g.Name, g.Labels, strconv.FormatFloat(g.Value, 'g', -1, 64))
		} else {
			fmt.Fprintf(w, "%s %s\n", g.Name, strconv.FormatFloat(g.Value, 'g', -1, 64))
		}
	}
}
