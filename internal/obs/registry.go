package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/reptile/api"
)

// Endpoint identifies one served route. The set is closed so per-endpoint
// counters live in fixed arrays and the hot path touches no maps or locks.
type Endpoint int

// The instrumented endpoints, in the order they render.
const (
	EndpointRegister Endpoint = iota
	EndpointListDatasets
	EndpointAppend
	EndpointCreateSession
	EndpointReleaseSession
	EndpointRecommend
	EndpointDrill
	EndpointStats
	EndpointMetricsScrape
	EndpointHealthz
	NumEndpoints
)

var endpointNames = [NumEndpoints]string{
	"register", "list_datasets", "append", "create_session",
	"release_session", "recommend", "drill", "stats", "metrics", "healthz",
}

// String returns the endpoint's stable label (used in metrics and stats).
func (e Endpoint) String() string {
	if e < 0 || e >= NumEndpoints {
		return "unknown"
	}
	return endpointNames[e]
}

// errorCodes is the closed set of api error classes counted per endpoint,
// in render order.
var errorCodes = []api.ErrorCode{
	api.CodeBadRequest, api.CodeDatasetNotFound, api.CodeDatasetExists,
	api.CodeSessionNotFound, api.CodeSessionExpired, api.CodeUnprocessable,
	api.CodeOverloaded, api.CodeInternal,
}

func codeIndex(c api.ErrorCode) int {
	for i, ec := range errorCodes {
		if ec == c {
			return i
		}
	}
	return len(errorCodes) - 1 // unknown classes count as internal
}

// EndpointMetrics is one endpoint's counters: total requests, errors by api
// error code, requests currently in flight, the latency histogram, and — for
// endpoints backed by the recommendation cache — hit/miss counters. Every
// field is atomic; recording takes no locks.
type EndpointMetrics struct {
	Requests atomic.Uint64
	InFlight atomic.Int64
	Latency  Histogram
	errors   [8]atomic.Uint64 // indexed by codeIndex

	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64
}

// RecordError counts one error response of the given class.
func (m *EndpointMetrics) RecordError(c api.ErrorCode) { m.errors[codeIndex(c)].Add(1) }

// Errors returns the per-code error counts as a map keyed by code string,
// omitting zero entries.
func (m *EndpointMetrics) Errors() map[string]uint64 {
	out := make(map[string]uint64)
	for i, ec := range errorCodes {
		if n := m.errors[i].Load(); n > 0 {
			out[string(ec)] = n
		}
	}
	return out
}

// stageAgg accumulates one stage's total duration across requests.
type stageAgg struct {
	count atomic.Uint64
	ns    atomic.Int64
}

// Registry is the server's observability root: per-endpoint counters and
// histograms plus the aggregated per-stage timing totals of the recommend
// pipeline. One registry lives for the server's lifetime; the zero value of
// every counter is the starting state.
type Registry struct {
	Start     time.Time
	endpoints [NumEndpoints]EndpointMetrics

	// stages maps stage name → aggregate. Stage names form a small closed
	// set in practice, so the map stabilizes after the first requests; the
	// read lock is only contended with the insertion of a brand-new name.
	mu     sync.RWMutex
	stages map[string]*stageAgg
	order  []string // stage names in first-seen order
}

// NewRegistry builds a registry whose uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{Start: time.Now(), stages: make(map[string]*stageAgg)}
}

// Endpoint returns the counters of one endpoint.
func (r *Registry) Endpoint(e Endpoint) *EndpointMetrics { return &r.endpoints[e] }

// ObserveStages folds one request's exclusive stage decomposition into the
// aggregated per-stage totals.
func (r *Registry) ObserveStages(stages []Stage) {
	for _, st := range stages {
		r.mu.RLock()
		agg, ok := r.stages[st.Name]
		r.mu.RUnlock()
		if !ok {
			r.mu.Lock()
			if agg, ok = r.stages[st.Name]; !ok {
				agg = &stageAgg{}
				r.stages[st.Name] = agg
				r.order = append(r.order, st.Name)
			}
			r.mu.Unlock()
		}
		agg.count.Add(1)
		agg.ns.Add(int64(st.Dur))
	}
}

// StageTotal is one stage's aggregate across requests.
type StageTotal struct {
	Name  string
	Count uint64
	Total time.Duration
}

// StageTotals snapshots the aggregated stage timings in first-seen order.
func (r *Registry) StageTotals() []StageTotal {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]StageTotal, 0, len(r.order))
	for _, name := range r.order {
		agg := r.stages[name]
		out = append(out, StageTotal{
			Name:  name,
			Count: agg.count.Load(),
			Total: time.Duration(agg.ns.Load()),
		})
	}
	return out
}
