package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/reptile/api"
)

func TestEndpointNamesStable(t *testing.T) {
	seen := make(map[string]bool)
	for e := Endpoint(0); e < NumEndpoints; e++ {
		n := e.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("endpoint %d renders %q", e, n)
		}
		seen[n] = true
	}
}

func TestRegistryCountersAndErrors(t *testing.T) {
	r := NewRegistry()
	m := r.Endpoint(EndpointRecommend)
	m.Requests.Add(3)
	m.RecordError(api.CodeOverloaded)
	m.RecordError(api.CodeOverloaded)
	m.RecordError(api.CodeBadRequest)
	m.RecordError("never-seen-before") // unknown classes fold into internal
	errs := m.Errors()
	if errs["overloaded"] != 2 || errs["bad_request"] != 1 || errs["internal"] != 1 {
		t.Fatalf("errors = %v", errs)
	}
	if _, ok := errs["dataset_not_found"]; ok {
		t.Fatal("zero-count codes must be omitted")
	}
}

func TestObserveStagesAggregates(t *testing.T) {
	r := NewRegistry()
	r.ObserveStages([]Stage{{Name: "groupby", Dur: ms(2)}, {Name: "fit", Dur: ms(5)}})
	r.ObserveStages([]Stage{{Name: "fit", Dur: ms(7)}})
	totals := r.StageTotals()
	if len(totals) != 2 || totals[0].Name != "groupby" || totals[1].Name != "fit" {
		t.Fatalf("totals = %+v, want groupby then fit in first-seen order", totals)
	}
	if totals[0].Count != 1 || totals[0].Total != ms(2) {
		t.Errorf("groupby = %+v", totals[0])
	}
	if totals[1].Count != 2 || totals[1].Total != ms(12) {
		t.Errorf("fit = %+v", totals[1])
	}
}

// TestRegistryConcurrent is a -race canary for mixed recording and reading.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := r.Endpoint(Endpoint(g % int(NumEndpoints)))
			for i := 0; i < 500; i++ {
				m.InFlight.Add(1)
				m.Requests.Add(1)
				m.Latency.Observe(time.Duration(i) * time.Microsecond)
				m.RecordError(api.CodeOverloaded)
				m.InFlight.Add(-1)
				r.ObserveStages([]Stage{{Name: "fit", Dur: time.Microsecond}})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			var sb strings.Builder
			r.WriteProm(&sb, nil)
			_ = r.StageTotals()
		}
	}()
	wg.Wait()
	<-done
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	m := r.Endpoint(EndpointRecommend)
	m.Requests.Add(2)
	m.Latency.Observe(3 * time.Millisecond)
	m.Latency.Observe(40 * time.Millisecond)
	m.RecordError(api.CodeOverloaded)
	m.CacheHits.Add(1)
	m.CacheMisses.Add(4)
	r.ObserveStages([]Stage{{Name: "fit", Dur: 10 * time.Millisecond}})

	var sb strings.Builder
	r.WriteProm(&sb, []Gauge{{Name: "reptile_sessions", Help: "Live sessions.", Value: 7}})
	out := sb.String()

	for _, want := range []string{
		`reptile_requests_total{endpoint="recommend"} 2`,
		`reptile_request_errors_total{endpoint="recommend",code="overloaded"} 1`,
		`reptile_requests_in_flight{endpoint="recommend"} 0`,
		`reptile_request_duration_seconds_count{endpoint="recommend"} 2`,
		`reptile_request_duration_seconds_bucket{endpoint="recommend",le="+Inf"} 2`,
		`reptile_cache_requests_total{endpoint="recommend",outcome="hit"} 1`,
		`reptile_cache_requests_total{endpoint="recommend",outcome="miss"} 4`,
		`reptile_stage_requests_total{stage="fit"} 1`,
		`reptile_stage_duration_seconds_total{stage="fit"} 0.01`,
		"reptile_sessions 7",
		"# TYPE reptile_request_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every endpoint must appear even before its first request.
	for e := Endpoint(0); e < NumEndpoints; e++ {
		if !strings.Contains(out, `reptile_requests_total{endpoint="`+e.String()+`"}`) {
			t.Errorf("exposition missing endpoint %q", e)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals _count.
	if !strings.Contains(out, `reptile_request_duration_seconds_sum{endpoint="recommend"} 0.043`) {
		t.Errorf("exposition sum line wrong:\n%s", out)
	}
	// Basic line shape: no naked newlines inside sample lines, HELP/TYPE pairs.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			t.Error("blank line in exposition")
		}
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, " ") {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
