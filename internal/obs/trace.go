package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace records one request's stage spans. Spans may open and close from any
// goroutine (the recommend pipeline fans hierarchies out over a worker pool),
// and may nest or overlap freely; Stages() flattens them into an exclusive
// per-stage decomposition of the request's busy time, so the stage durations
// sum to (at most) the wall-clock time the request actually spent inside
// instrumented code — the property the per-request timing breakdown and the
// aggregated stage statistics both rely on.
//
// All methods are nil-receiver-safe: an uninstrumented call path can thread
// a nil *Trace and every recording becomes a no-op.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	spans []span
}

type span struct {
	name       string
	start, end time.Duration // offsets from trace start
}

// NewTrace starts a trace clock.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// StartSpan opens a named span and returns the closure that ends it. The
// same name may be recorded many times (once per parallel hierarchy, say);
// Stages sums them.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	s0 := time.Since(t.start)
	return func() {
		end := time.Since(t.start)
		t.mu.Lock()
		t.spans = append(t.spans, span{name: name, start: s0, end: end})
		t.mu.Unlock()
	}
}

// Elapsed returns the wall-clock time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Stage is one entry of a trace's exclusive decomposition: the total wall
// time attributed to the named stage.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Stages decomposes the recorded spans into exclusive per-stage durations.
// The timeline is cut at every span boundary; each elementary slice where at
// least one span is active is attributed to the innermost active span (the
// one that started latest), so nested spans carve their time out of their
// parents and the returned durations sum exactly to the union of covered
// time — never more than the request's wall clock. Stages are returned in
// order of first attribution.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]span(nil), t.spans...)
	t.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	cuts := make([]time.Duration, 0, 2*len(spans))
	for _, s := range spans {
		cuts = append(cuts, s.start, s.end)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	totals := make(map[string]time.Duration)
	var order []string
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b <= a {
			continue
		}
		// Innermost active span: the latest-started one covering [a, b).
		// Ties (spans opened at the same instant) resolve to the one that
		// ends soonest — the tighter, and therefore deeper, of the two.
		best := -1
		for j, s := range spans {
			if s.start <= a && s.end >= b {
				if best < 0 || s.start > spans[best].start ||
					(s.start == spans[best].start && s.end < spans[best].end) {
					best = j
				}
			}
		}
		if best < 0 {
			continue
		}
		name := spans[best].name
		if _, seen := totals[name]; !seen {
			order = append(order, name)
		}
		totals[name] += b - a
	}
	out := make([]Stage, len(order))
	for i, name := range order {
		out[i] = Stage{Name: name, Dur: totals[name]}
	}
	return out
}

// Header renders stages in the Server-Timing-style syntax carried by the
// X-Reptile-Trace response header: `name;dur=ms, ...` with a trailing
// `total;dur=ms` entry for the wall time the stages decompose.
func Header(stages []Stage, total time.Duration) string {
	var b strings.Builder
	for _, st := range stages {
		fmt.Fprintf(&b, "%s;dur=%.3f, ", st.Name, float64(st.Dur)/float64(time.Millisecond))
	}
	fmt.Fprintf(&b, "total;dur=%.3f", float64(total)/float64(time.Millisecond))
	return b.String()
}

type traceKey struct{}

// ContextWithTrace attaches a trace to a request context. The serving layer
// installs it once per request; pipeline stages below pull it back out with
// TraceFrom (or receive it through a recorder seam like
// core.WithSpanRecorder, which keeps the engine free of this package).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the request is not
// traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
