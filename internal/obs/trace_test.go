package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// stagesOf builds a trace directly from span offsets (bypassing the wall
// clock) so decomposition tests are deterministic.
func stagesOf(spans ...span) []Stage {
	t := &Trace{start: time.Now()}
	t.spans = spans
	return t.Stages()
}

func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

func stageMap(stages []Stage) map[string]time.Duration {
	m := make(map[string]time.Duration)
	for _, s := range stages {
		m[s.Name] = s.Dur
	}
	return m
}

func sumStages(stages []Stage) time.Duration {
	var t time.Duration
	for _, s := range stages {
		t += s.Dur
	}
	return t
}

// TestStagesSequential: disjoint spans decompose to their own lengths.
func TestStagesSequential(t *testing.T) {
	got := stageMap(stagesOf(
		span{"bind", ms(0), ms(2)},
		span{"groupby", ms(2), ms(5)},
		span{"fit", ms(5), ms(11)},
	))
	want := map[string]time.Duration{"bind": ms(2), "groupby": ms(3), "fit": ms(6)}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

// TestStagesNested: a child span carves its time out of the parent, so the
// sum equals the parent's wall span, not parent + child.
func TestStagesNested(t *testing.T) {
	stages := stagesOf(
		span{"evaluate", ms(0), ms(10)},
		span{"fit", ms(2), ms(8)},
	)
	got := stageMap(stages)
	if got["evaluate"] != ms(4) || got["fit"] != ms(6) {
		t.Errorf("decomposition = %v, want evaluate=4ms fit=6ms", got)
	}
	if sum := sumStages(stages); sum != ms(10) {
		t.Errorf("sum = %v, want exactly the covered 10ms", sum)
	}
}

// TestStagesOverlappingParallel: spans from parallel goroutines overlap; the
// decomposition attributes each slice once, so the sum stays bounded by the
// union of covered time even though raw span lengths sum to more.
func TestStagesOverlappingParallel(t *testing.T) {
	stages := stagesOf(
		span{"groupby", ms(0), ms(6)},
		span{"groupby", ms(1), ms(4)}, // second hierarchy, overlapping
		span{"fit", ms(3), ms(9)},     // first hierarchy's fit overlaps both
	)
	if sum := sumStages(stages); sum != ms(9) {
		t.Errorf("sum = %v, want the 9ms union of covered time", sum)
	}
	got := stageMap(stages)
	if got["groupby"]+got["fit"] != ms(9) {
		t.Errorf("decomposition = %v, want groupby+fit = 9ms", got)
	}
}

// TestStagesSumWithinWallClock is the serving contract: recorded against the
// real clock from concurrent goroutines, the exclusive stage sum never
// exceeds the trace's wall time, and with contiguous instrumentation it
// lands well within 10% of it.
func TestStagesSumWithinWallClock(t *testing.T) {
	tr := NewTrace()
	endBind := tr.StartSpan("bind")
	time.Sleep(5 * time.Millisecond)
	endBind()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			endG := tr.StartSpan("groupby")
			time.Sleep(10 * time.Millisecond)
			endG()
			endF := tr.StartSpan("fit")
			time.Sleep(15 * time.Millisecond)
			endF()
		}()
	}
	wg.Wait()
	total := tr.Elapsed()
	sum := sumStages(tr.Stages())
	if sum > total {
		t.Fatalf("stage sum %v exceeds wall clock %v", sum, total)
	}
	if float64(sum) < 0.9*float64(total) {
		t.Fatalf("stage sum %v below 90%% of wall clock %v", sum, total)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	end := tr.StartSpan("x")
	end()
	if tr.Stages() != nil || tr.Elapsed() != 0 {
		t.Fatal("nil trace must be inert")
	}
}

func TestHeaderFormat(t *testing.T) {
	h := Header([]Stage{{Name: "bind", Dur: ms(1.5)}, {Name: "fit", Dur: ms(20)}}, ms(25))
	want := "bind;dur=1.500, fit;dur=20.000, total;dur=25.000"
	if h != want {
		t.Fatalf("header = %q, want %q", h, want)
	}
	if !strings.HasSuffix(h, "total;dur=25.000") {
		t.Fatalf("header must end with the total entry: %q", h)
	}
}

// TestTraceConcurrentRecording is a -race canary: spans recorded from many
// goroutines while another computes decompositions.
func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := tr.StartSpan("stage")
				end()
				_ = tr.Stages()
			}
		}()
	}
	wg.Wait()
	if len(tr.Stages()) != 1 {
		t.Fatalf("stages = %v, want the single recorded name", tr.Stages())
	}
}
