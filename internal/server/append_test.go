package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/reptile/api"
)

// appendCSV adds two 1986/1987 reports for a brand-new Raya village; the
// header deliberately reorders columns to exercise the schema mapping.
const appendCSV = "severity,year,village,district\n4,1986,Bala,Raya\n5,1987,Bala,Raya\n"

func TestAppendHotSwapsEngineAndInvalidatesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := registerTestDataset(t, ts.URL)
	recommendURL := ts.URL + "/v1/sessions/" + id + "/recommend"

	// Warm the cache.
	code, b := post(t, recommendURL, api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("recommend: %d %s", code, b)
	}
	code, b = post(t, recommendURL, api.RecommendRequest{Complaint: testComplaint})
	var warm api.RecommendResponse
	if code != http.StatusOK || json.Unmarshal(b, &warm) != nil || warm.Cache != "hit" {
		t.Fatalf("warm recommend: %d cache=%q %s", code, warm.Cache, b)
	}

	code, b = post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV})
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	var ar api.AppendResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 2 || ar.Version != 2 || ar.Rows != 10 {
		t.Fatalf("append response = %+v", ar)
	}

	// The same complaint now misses (the swap invalidated the cache) and is
	// answered by the new engine version — byte-identical to an in-process
	// engine over the combined dataset.
	code, b = post(t, recommendURL, api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("post-append recommend: %d %s", code, b)
	}
	var after api.RecommendResponse
	if err := json.Unmarshal(b, &after); err != nil {
		t.Fatal(err)
	}
	if after.Cache != "miss" {
		t.Errorf("post-append cache = %q, want miss", after.Cache)
	}
	if after.State != "geo:1|time:1" {
		t.Errorf("post-append state = %q: session lost its drill state", after.State)
	}
	if bytes.Equal(after.Recommendation, warm.Recommendation) {
		t.Error("post-append recommendation identical to pre-append: hot swap did not take")
	}

	combined := testCSV + "Raya,Bala,1986,4\nRaya,Bala,1987,5\n"
	hs, err := data.ParseHierarchySpec(testHierarchies)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.ReadCSV(strings.NewReader(combined), "drought", []string{"severity"}, hs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.ParseComplaint(testComplaint)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Recommend(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after.Recommendation, want) {
		t.Errorf("post-append recommendation differs from direct engine over combined data:\nserved: %s\ndirect: %s",
			after.Recommendation, want)
	}
}

func TestAppendErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestDataset(t, ts.URL)

	cases := []struct {
		name string
		url  string
		body any
		code int
		want string
	}{
		{"unknown dataset", "/v1/datasets/nope/append", api.AppendRequest{CSV: appendCSV}, http.StatusNotFound, "unknown dataset"},
		{"empty body", "/v1/datasets/drought/append", api.AppendRequest{}, http.StatusBadRequest, "needs csv"},
		{"missing column", "/v1/datasets/drought/append",
			api.AppendRequest{CSV: "district,village,severity\nRaya,Bala,4\n"}, http.StatusBadRequest, `missing dimension column`},
		{"extra column", "/v1/datasets/drought/append",
			api.AppendRequest{CSV: "district,village,year,severity,bogus\nRaya,Bala,1986,4,x\n"}, http.StatusBadRequest, "columns"},
		{"bad measure", "/v1/datasets/drought/append",
			api.AppendRequest{CSV: "district,village,year,severity\nRaya,Bala,1986,NaN\n"}, http.StatusBadRequest, "non-finite"},
		// Adishim already belongs to Ofla: the batch violates village →
		// district and must be rejected without changing the dataset.
		{"fd violation", "/v1/datasets/drought/append",
			api.AppendRequest{CSV: "district,village,year,severity\nRaya,Adishim,1986,4\n"}, http.StatusUnprocessableEntity, "FD violation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, b := post(t, ts.URL+tc.url, tc.body)
			if code != tc.code {
				t.Fatalf("status = %d, want %d (%s)", code, tc.code, b)
			}
			if !strings.Contains(string(b), tc.want) {
				t.Errorf("body %s does not mention %q", b, tc.want)
			}
		})
	}

	// After the failures the dataset still serves and is unchanged.
	code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV})
	var ar api.AppendResponse
	if code != http.StatusOK || json.Unmarshal(b, &ar) != nil || ar.Version != 2 {
		t.Fatalf("append after failures: %d %s", code, b)
	}
}

// TestConcurrentRecommendsDuringAppend drives recommends, drills and appends
// against one dataset at once; run with -race it proves the hot-swap path is
// data-race free and never serves an error other than the 429 back-pressure.
func TestConcurrentRecommendsDuringAppend(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestDataset(t, ts.URL)

	// Several sessions share the engine; one is drilled mid-flight.
	ids := make([]string, 3)
	for i := range ids {
		code, b := post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{
			Dataset: "drought",
			GroupBy: []string{"district", "year"},
		})
		if code != http.StatusCreated {
			t.Fatalf("create session: %d %s", code, b)
		}
		var sr api.Session
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatal(err)
		}
		ids[i] = sr.ID
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for si, id := range ids {
		wg.Add(1)
		go func(si int, id string) {
			defer wg.Done()
			url := ts.URL + "/v1/sessions/" + id + "/recommend"
			for i := 0; i < 8; i++ {
				code, b := post(t, url, api.RecommendRequest{Complaint: testComplaint})
				// Session 0 races a drill that exhausts its hierarchies, after
				// which "fully drilled" is the correct answer.
				if si == 0 && code == http.StatusUnprocessableEntity && bytes.Contains(b, []byte("fully drilled")) {
					continue
				}
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					errc <- fmt.Errorf("recommend: %d %s", code, b)
					return
				}
			}
		}(si, id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			csv := fmt.Sprintf("district,village,year,severity\nRaya,New%02d,1986,%d\n", i, 3+i)
			code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: csv})
			if code != http.StatusOK {
				errc <- fmt.Errorf("append %d: %d %s", i, code, b)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, b := post(t, ts.URL+"/v1/sessions/"+ids[0]+"/drill", api.DrillRequest{Hierarchy: "geo"})
		if code != http.StatusOK {
			errc <- fmt.Errorf("drill: %d %s", code, b)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every session settles on the final version and sees the appended rows:
	// a complaint about Raya 1986 must rank the appended villages.
	code, b := post(t, ts.URL+"/v1/sessions/"+ids[1]+"/recommend",
		api.RecommendRequest{Complaint: "agg=mean measure=severity dir=low district=Raya year=1986"})
	if code != http.StatusOK {
		t.Fatalf("final recommend: %d %s", code, b)
	}
	var rr api.RecommendResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rr.Recommendation, []byte("New03")) {
		t.Errorf("final recommendation does not reflect the last appended village:\n%s", rr.Recommendation)
	}
}
