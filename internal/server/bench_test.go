package server

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/store"
)

// appendBenchBaseRows sizes the registered dataset the appends rebuild on:
// large enough that the per-rebuild cost (snapshot, cube merge, engine) is
// what coalescing amortizes.
const appendBenchBaseRows = 20_000

// appendBenchRows generates n single-row append payloads over the absentee
// schema, deterministic and FD-clean (every hierarchy is single-attribute).
func appendBenchRows(n int) []store.Row {
	rows := make([]store.Row, n)
	for i := range rows {
		rows[i] = store.Row{
			Dims: []string{
				fmt.Sprintf("county%03d", i%100),
				[]string{"DEM", "REP", "UNA"}[i%3],
				fmt.Sprintf("w%02d", i%53),
				[]string{"F", "M"}[i%2],
			},
			Measures: []float64{1},
		}
	}
	return rows
}

// BenchmarkAppendMicroBatch compares the two ingestion paths one appended row
// at a time: the synchronous path rebuilds the snapshot, cube and engine on
// every call, while the WAL-backed path commits each row to the log (fsync)
// and lets the flusher coalesce 100 rows per rebuild. Custom metrics report
// ingest throughput (rows/s) and amortization (rebuilds/krow); the coalesced
// variant's drain is inside the timed region, so its throughput includes
// folding every row into the serving state, not just logging it.
func BenchmarkAppendMicroBatch(b *testing.B) {
	base := datasets.GenerateAbsentee(1, appendBenchBaseRows)

	b.Run("per-row-rebuild", func(b *testing.B) {
		s := New(Config{})
		if err := s.RegisterDataset("absentee", base, core.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
		rows := appendBenchRows(b.N)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append("absentee", rows[i:i+1]); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "rows/s")
		b.ReportMetric(1000, "rebuilds/krow")
	})

	b.Run("coalesced-batch100", func(b *testing.B) {
		s := New(Config{
			WAL: true, WALDir: b.TempDir(),
			FlushRows: 100, FlushBytes: 1 << 30, FlushInterval: time.Hour,
			CheckpointBytes: -1,
		})
		if err := s.RegisterDataset("absentee", base, core.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
		s.mu.Lock()
		ing := s.engines["absentee"].ing
		s.mu.Unlock()
		rows := appendBenchRows(b.N)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append("absentee", rows[i:i+1]); err != nil {
				b.Fatal(err)
			}
		}
		// Drain the tail batch so every appended row is folded before the
		// clock stops.
		if err := ing.close(true); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		ing.mu.Lock()
		flushes := ing.flushes
		ing.mu.Unlock()
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "rows/s")
		b.ReportMetric(float64(flushes)*1000/float64(b.N), "rebuilds/krow")
	})
}
