package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/reptile/api"
)

// TestListDatasetsRepeatedCallsByteIdentical locks the wire determinism of
// GET /v1/datasets: the listing is assembled from the server's dataset map,
// so without the collect-then-sort step its order would flap run to run.
// Three back-to-back calls must produce byte-identical bodies, sorted by
// name.
func TestListDatasetsRepeatedCallsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, name := range []string{"zebra", "drought", "alpha", "middle"} {
		code, b := post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{
			Name:         name,
			CSV:          testCSV,
			Measures:     []string{"severity"},
			Hierarchies:  testHierarchies,
			EMIterations: 2,
		})
		if code != http.StatusCreated {
			t.Fatalf("register %s: %d %s", name, code, b)
		}
	}

	var first []byte
	for i := 0; i < 3; i++ {
		code, b := get(t, ts.URL+"/v1/datasets")
		if code != http.StatusOK {
			t.Fatalf("list datasets: %d %s", code, b)
		}
		if i == 0 {
			first = b
			continue
		}
		if !bytes.Equal(b, first) {
			t.Fatalf("call %d differs from call 0:\n%s\nvs\n%s", i, b, first)
		}
	}

	var resp api.ListDatasetsResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(resp.Datasets))
	for i, d := range resp.Datasets {
		names[i] = d.Name
	}
	want := []string{"alpha", "drought", "middle", "zebra"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("listing order = %v, want %v", names, want)
	}
}

// TestStatsRepeatedScrapesStructurallyEqual locks /v1/stats: two scrapes of
// an idle server must agree on every non-clock field — the dataset map and
// the stage totals in particular, both assembled from internal maps.
func TestStatsRepeatedScrapesStructurallyEqual(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestDataset(t, ts.URL)

	fetch := func() api.StatsResponse {
		t.Helper()
		code, b := get(t, ts.URL+"/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats: %d %s", code, b)
		}
		var resp api.StatsResponse
		if err := json.Unmarshal(b, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	a, b := fetch(), fetch()
	if !reflect.DeepEqual(a.Datasets, b.Datasets) {
		t.Errorf("dataset stats differ between idle scrapes:\n%+v\nvs\n%+v", a.Datasets, b.Datasets)
	}
	aNames := stageNames(a.Stages)
	bNames := stageNames(b.Stages)
	if !reflect.DeepEqual(aNames, bNames) {
		t.Errorf("stage ordering differs between idle scrapes: %v vs %v", aNames, bNames)
	}
}

func stageNames(stages []api.StageStats) []string {
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = s.Name
	}
	return out
}
