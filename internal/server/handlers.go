package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
)

// maxBodyBytes bounds request bodies; inline CSV datasets are the largest
// legitimate payload.
const maxBodyBytes = 64 << 20

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone; nothing useful remains to send.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// datasetRequest registers a CSV dataset. Exactly one of Path (a file the
// server can read) and CSV (inline content) must be set.
type datasetRequest struct {
	Name     string   `json:"name"`
	Path     string   `json:"path,omitempty"`
	CSV      string   `json:"csv,omitempty"`
	Measures []string `json:"measures"`
	// Hierarchies uses the CLI's compact notation, e.g.
	// "geo:region,district,village;time:year".
	Hierarchies string `json:"hierarchies"`
	// Engine options; zero values select the core defaults.
	EMIterations int `json:"em_iterations,omitempty"`
	TopK         int `json:"topk,omitempty"`
	Workers      int `json:"workers,omitempty"`
}

type datasetResponse struct {
	Name        string   `json:"name"`
	Rows        int      `json:"rows"`
	Hierarchies []string `json:"hierarchies"`
	Measures    []string `json:"measures"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req datasetRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset needs a name"))
		return
	}
	if (req.Path == "") == (req.CSV == "") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset needs exactly one of path and csv"))
		return
	}
	if len(req.Measures) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset needs at least one measure column"))
		return
	}
	// Answer retries of an already-registered name before loading the CSV.
	s.mu.Lock()
	_, dup := s.engines[req.Name]
	s.mu.Unlock()
	if dup {
		writeError(w, http.StatusConflict, fmt.Errorf("server: %v: %q", ErrDuplicateDataset, req.Name))
		return
	}
	hierarchies, err := data.ParseHierarchySpec(req.Hierarchies)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var ds *data.Dataset
	if req.Path != "" {
		ds, err = data.ReadCSVFile(req.Path, req.Name, req.Measures, hierarchies)
	} else {
		ds, err = data.ReadCSV(strings.NewReader(req.CSV), req.Name, req.Measures, hierarchies)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := core.Options{EMIterations: req.EMIterations, TopK: req.TopK, Workers: req.Workers}
	if err := s.RegisterDataset(req.Name, ds, opts); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicateDataset) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	names := make([]string, len(ds.Hierarchies))
	for i, h := range ds.Hierarchies {
		names[i] = h.Name
	}
	writeJSON(w, http.StatusCreated, datasetResponse{
		Name:        req.Name,
		Rows:        ds.NumRows(),
		Hierarchies: names,
		Measures:    ds.MeasureNames(),
	})
}

type sessionRequest struct {
	Dataset string   `json:"dataset"`
	GroupBy []string `json:"group_by"`
	// TTLSeconds overrides the server's session TTL for this session.
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

type sessionResponse struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	GroupBy   []string `json:"group_by"`
	State     string   `json:"state"`
	ExpiresAt string   `json:"expires_at"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	ent, ok := s.engines[req.Dataset]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	cs, err := ent.eng.NewSession(req.GroupBy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ttl := s.cfg.SessionTTL
	if req.TTLSeconds > 0 {
		// Clamp before multiplying: a huge ttl_seconds would overflow
		// time.Duration into the past and create an already-expired session.
		const maxTTLSeconds = int(maxSessionTTL / time.Second)
		secs := req.TTLSeconds
		if secs > maxTTLSeconds {
			secs = maxTTLSeconds
		}
		ttl = time.Duration(secs) * time.Second
	}
	sess := &session{id: newSessionID(), engine: ent, sess: cs, ttl: ttl}
	s.mu.Lock()
	now := s.now()
	s.sweepExpiredLocked(now)
	sess.deadline = now.Add(ttl)
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sessionResponse{
		ID:        sess.id,
		Dataset:   ent.name,
		GroupBy:   nonNil(cs.GroupBy()),
		State:     cs.StateKey(),
		ExpiresAt: sess.deadline.UTC().Format(time.RFC3339),
	})
}

type recommendRequest struct {
	// Complaint uses the CLI's notation, quoted values included, e.g.
	// `agg=mean measure=severity dir=low district="New York" year=1986`.
	Complaint string `json:"complaint"`
}

type recommendResponse struct {
	State string `json:"state"`
	// Cache is "hit", "miss", or "bypass" (caching disabled).
	Cache string `json:"cache"`
	// Recommendation carries core's deterministic Recommendation encoding
	// verbatim: the bytes equal json.Marshal of an in-process
	// Session.Recommend result.
	Recommendation json.RawMessage `json:"recommendation"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	sess, status, err := s.lookupSession(r.PathValue("id"))
	if err != nil {
		writeError(w, status, err)
		return
	}
	var req recommendRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := core.ParseComplaint(req.Complaint)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	state := sess.sess.StateKey()
	cacheKey := ""
	if ck, cacheable := c.Key(); cacheable && s.cache != nil {
		cacheKey = sess.id + "\x00" + state + "\x00" + ck
		if raw, ok := s.cache.Get(cacheKey); ok {
			s.cacheHits.Add(1)
			s.respondRecommend(w, state, "hit", raw)
			return
		}
		s.cacheMiss.Add(1)
	}

	if !sess.engine.acquire(r.Context(), s.cfg.QueueWait) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("dataset %q is at its concurrent recommendation limit", sess.engine.name))
		return
	}
	defer sess.engine.release()

	rec, err := sess.sess.Recommend(c)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	verdict := "bypass"
	if cacheKey != "" {
		verdict = "miss"
		// A Drill racing this call may have advanced the session after the
		// state key was read: the engine then evaluated at the deeper state
		// (its contract allows either), and caching that result under the
		// pre-drill key would resurrect an entry the drill just invalidated.
		// Drilling is monotonic, so an unchanged state key proves no drill
		// landed in between and the entry is safe to insert.
		if sess.sess.StateKey() == state {
			s.cache.Add(cacheKey, raw)
		}
	}
	s.respondRecommend(w, state, verdict, raw)
}

func (s *Server) respondRecommend(w http.ResponseWriter, state, verdict string, raw json.RawMessage) {
	w.Header().Set("X-Reptile-Cache", verdict)
	writeJSON(w, http.StatusOK, recommendResponse{State: state, Cache: verdict, Recommendation: raw})
}

type drillRequest struct {
	Hierarchy string `json:"hierarchy"`
}

type drillResponse struct {
	GroupBy []string `json:"group_by"`
	State   string   `json:"state"`
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	sess, status, err := s.lookupSession(r.PathValue("id"))
	if err != nil {
		writeError(w, status, err)
		return
	}
	var req drillRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := sess.sess.Drill(req.Hierarchy); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Drilling changes the session's state key, so cached entries for the
	// old state can never be requested again — drop them eagerly.
	if s.cache != nil {
		s.cache.RemovePrefix(sess.id + "\x00")
	}
	writeJSON(w, http.StatusOK, drillResponse{
		GroupBy: nonNil(sess.sess.GroupBy()),
		State:   sess.sess.StateKey(),
	})
}

type healthResponse struct {
	Status   string `json:"status"`
	Datasets int    `json:"datasets"`
	Sessions int    `json:"sessions"`
	Cache    struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
		Size   int    `json:"size"`
	} `json:"cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweepExpiredLocked(s.now())
	nd, ns := len(s.engines), len(s.sessions)
	s.mu.Unlock()
	resp := healthResponse{Status: "ok", Datasets: nd, Sessions: ns}
	resp.Cache.Hits = s.cacheHits.Load()
	resp.Cache.Misses = s.cacheMiss.Load()
	if s.cache != nil {
		resp.Cache.Size = s.cache.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// nonNil maps a nil slice to an empty one so JSON renders [] instead of null.
func nonNil(ss []string) []string {
	if ss == nil {
		return []string{}
	}
	return ss
}
