package server

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/store"
)

// maxBodyBytes bounds request bodies; inline CSV datasets are the largest
// legitimate payload.
const maxBodyBytes = 64 << 20

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone; nothing useful remains to send.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// datasetRequest registers a dataset. Exactly one of Path (a CSV or .rst
// file the server can read) and CSV (inline content) must be set. When Path
// names a .rst snapshot, measures and hierarchies come from the file and the
// request fields must be empty.
type datasetRequest struct {
	Name     string   `json:"name"`
	Path     string   `json:"path,omitempty"`
	CSV      string   `json:"csv,omitempty"`
	Measures []string `json:"measures,omitempty"`
	// Hierarchies uses the CLI's compact notation, e.g.
	// "geo:region,district,village;time:year".
	Hierarchies string `json:"hierarchies,omitempty"`
	// Engine options; zero values select the core defaults.
	EMIterations int `json:"em_iterations,omitempty"`
	TopK         int `json:"topk,omitempty"`
	Workers      int `json:"workers,omitempty"`
}

type datasetResponse struct {
	Name        string   `json:"name"`
	Rows        int      `json:"rows"`
	Version     uint64   `json:"version"`
	Hierarchies []string `json:"hierarchies"`
	Measures    []string `json:"measures"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req datasetRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset needs a name"))
		return
	}
	if (req.Path == "") == (req.CSV == "") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset needs exactly one of path and csv"))
		return
	}
	// Answer retries of an already-registered name before loading the data.
	s.mu.Lock()
	_, dup := s.engines[req.Name]
	s.mu.Unlock()
	if dup {
		writeError(w, http.StatusConflict, fmt.Errorf("server: %v: %q", ErrDuplicateDataset, req.Name))
		return
	}
	opts := core.Options{EMIterations: req.EMIterations, TopK: req.TopK, Workers: req.Workers}
	var snap *store.Snapshot
	if strings.HasSuffix(req.Path, ".rst") {
		// Snapshot files carry their own schema.
		if len(req.Measures) > 0 || req.Hierarchies != "" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("a .rst snapshot carries its own measures and hierarchies; leave both fields empty"))
			return
		}
		var err error
		snap, err = store.OpenFile(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		if len(req.Measures) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("dataset needs at least one measure column"))
			return
		}
		hierarchies, err := data.ParseHierarchySpec(req.Hierarchies)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var ds *data.Dataset
		if req.Path != "" {
			ds, err = data.ReadCSVFile(req.Path, req.Name, req.Measures, hierarchies)
		} else {
			ds, err = data.ReadCSV(strings.NewReader(req.CSV), req.Name, req.Measures, hierarchies)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		snap = store.FromDataset(ds)
	}
	if err := s.RegisterSnapshot(req.Name, snap, opts); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicateDataset) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, datasetSummary(req.Name, snap))
}

// datasetSummary describes one snapshot version for dataset responses.
func datasetSummary(name string, snap *store.Snapshot) datasetResponse {
	names := make([]string, len(snap.Hierarchies))
	for i, h := range snap.Hierarchies {
		names[i] = h.Name
	}
	measures := make([]string, len(snap.Measures))
	for i, m := range snap.Measures {
		measures[i] = m.Name
	}
	return datasetResponse{
		Name:        name,
		Rows:        snap.NumRows(),
		Version:     snap.Version,
		Hierarchies: names,
		Measures:    measures,
	}
}

// appendRequest ingests rows into a registered dataset: CSV content whose
// header names every dimension and measure column of the dataset (in any
// order).
type appendRequest struct {
	CSV string `json:"csv"`
}

type appendResponse struct {
	datasetResponse
	Appended int `json:"appended"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	ent, ok := s.engines[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	var req appendRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.CSV == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("append needs csv content"))
		return
	}
	rows, err := parseAppendCSV(ent.state.Load().snap, req.CSV)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	next, err := s.Append(name, rows)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{
		datasetResponse: datasetSummary(name, next),
		Appended:        len(rows),
	})
}

// parseAppendCSV decodes appended rows against the snapshot's schema. The
// header must name every column exactly once; column order is free.
func parseAppendCSV(snap *store.Snapshot, content string) ([]store.Row, error) {
	cr := csv.NewReader(strings.NewReader(content))
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading append CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, c := range header {
		if _, dup := col[c]; dup {
			return nil, fmt.Errorf("duplicate column %q in append CSV header", c)
		}
		col[c] = i
	}
	dimIdx := make([]int, len(snap.Dims))
	for i, c := range snap.Dims {
		j, ok := col[c.Name]
		if !ok {
			return nil, fmt.Errorf("append CSV is missing dimension column %q", c.Name)
		}
		dimIdx[i] = j
	}
	msIdx := make([]int, len(snap.Measures))
	for i, m := range snap.Measures {
		j, ok := col[m.Name]
		if !ok {
			return nil, fmt.Errorf("append CSV is missing measure column %q", m.Name)
		}
		msIdx[i] = j
	}
	if len(col) != len(snap.Dims)+len(snap.Measures) {
		return nil, fmt.Errorf("append CSV has %d columns, dataset has %d", len(col), len(snap.Dims)+len(snap.Measures))
	}
	var rows []store.Row
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("reading append CSV line %d: %w", line, err)
		}
		row := store.Row{Dims: make([]string, len(dimIdx)), Measures: make([]float64, len(msIdx))}
		for i, j := range dimIdx {
			row.Dims[i] = rec[j]
		}
		for i, j := range msIdx {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("append CSV line %d column %q: %w", line, snap.Measures[i].Name, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("append CSV line %d column %q: non-finite measure value %q",
					line, snap.Measures[i].Name, rec[j])
			}
			row.Measures[i] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type sessionRequest struct {
	Dataset string   `json:"dataset"`
	GroupBy []string `json:"group_by"`
	// TTLSeconds overrides the server's session TTL for this session.
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

type sessionResponse struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	GroupBy   []string `json:"group_by"`
	State     string   `json:"state"`
	ExpiresAt string   `json:"expires_at"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	ent, ok := s.engines[req.Dataset]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	st := ent.state.Load()
	cs, err := st.eng.NewSession(req.GroupBy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ttl := s.cfg.SessionTTL
	if req.TTLSeconds > 0 {
		// Clamp before multiplying: a huge ttl_seconds would overflow
		// time.Duration into the past and create an already-expired session.
		const maxTTLSeconds = int(maxSessionTTL / time.Second)
		secs := req.TTLSeconds
		if secs > maxTTLSeconds {
			secs = maxTTLSeconds
		}
		ttl = time.Duration(secs) * time.Second
	}
	sess := &session{id: newSessionID(), engine: ent, sess: cs, version: st.snap.Version, ttl: ttl}
	s.mu.Lock()
	now := s.now()
	s.sweepExpiredLocked(now)
	sess.deadline = now.Add(ttl)
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sessionResponse{
		ID:        sess.id,
		Dataset:   ent.name,
		GroupBy:   nonNil(cs.GroupBy()),
		State:     cs.StateKey(),
		ExpiresAt: sess.deadline.UTC().Format(time.RFC3339),
	})
}

type recommendRequest struct {
	// Complaint uses the CLI's notation, quoted values included, e.g.
	// `agg=mean measure=severity dir=low district="New York" year=1986`.
	Complaint string `json:"complaint"`
}

type recommendResponse struct {
	State string `json:"state"`
	// Cache is "hit", "miss", or "bypass" (caching disabled).
	Cache string `json:"cache"`
	// Recommendation carries core's deterministic Recommendation encoding
	// verbatim: the bytes equal json.Marshal of an in-process
	// Session.Recommend result.
	Recommendation json.RawMessage `json:"recommendation"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	view, status, err := s.lookupSession(r.PathValue("id"))
	if err != nil {
		writeError(w, status, err)
		return
	}
	var req recommendRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := core.ParseComplaint(req.Complaint)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	state := view.cs.StateKey()
	cacheKey := ""
	if ck, cacheable := c.Key(); cacheable && s.cache != nil {
		// The dataset version is part of the key: a request still evaluating
		// the swapped-out version can only insert under the old version's
		// key, which no rebound session will ever look up again.
		cacheKey = fmt.Sprintf("%s\x00v%d\x00%s\x00%s", view.id, view.version, state, ck)
		if raw, ok := s.cache.Get(cacheKey); ok {
			s.cacheHits.Add(1)
			s.respondRecommend(w, state, "hit", raw)
			return
		}
		s.cacheMiss.Add(1)
	}

	if !view.engine.acquire(r.Context(), s.cfg.QueueWait) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("dataset %q is at its concurrent recommendation limit", view.engine.name))
		return
	}
	defer view.engine.release()

	rec, err := view.cs.Recommend(c)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	verdict := "bypass"
	if cacheKey != "" {
		verdict = "miss"
		// A Drill racing this call may have advanced the session after the
		// state key was read: the engine then evaluated at the deeper state
		// (its contract allows either), and caching that result under the
		// pre-drill key would resurrect an entry the drill just invalidated.
		// Drilling is monotonic, so an unchanged state key proves no drill
		// landed in between and the entry is safe to insert.
		if view.cs.StateKey() == state {
			s.cache.Add(cacheKey, raw)
		}
	}
	s.respondRecommend(w, state, verdict, raw)
}

func (s *Server) respondRecommend(w http.ResponseWriter, state, verdict string, raw json.RawMessage) {
	w.Header().Set("X-Reptile-Cache", verdict)
	writeJSON(w, http.StatusOK, recommendResponse{State: state, Cache: verdict, Recommendation: raw})
}

type drillRequest struct {
	Hierarchy string `json:"hierarchy"`
}

type drillResponse struct {
	GroupBy []string `json:"group_by"`
	State   string   `json:"state"`
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	view, status, err := s.lookupSession(r.PathValue("id"))
	if err != nil {
		writeError(w, status, err)
		return
	}
	var req drillRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Drill the session's *current* core.Session, holding the registry lock
	// so a hot-swap cannot rebind the session mid-drill and silently lose
	// the step. Drill only flips depth counters, so the critical section is
	// short.
	s.mu.Lock()
	cs := view.cs
	if sess, ok := s.sessions[view.id]; ok {
		cs = sess.sess
	}
	err = cs.Drill(req.Hierarchy)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Drilling changes the session's state key, so cached entries for the
	// old state can never be requested again — drop them eagerly.
	if s.cache != nil {
		s.cache.RemovePrefix(view.id + "\x00")
	}
	writeJSON(w, http.StatusOK, drillResponse{
		GroupBy: nonNil(cs.GroupBy()),
		State:   cs.StateKey(),
	})
}

// cubeStatus describes a dataset version's materialized rollup cube.
type cubeStatus struct {
	Present bool `json:"present"`
	// Levels is the number of materialized lattice groupings, Cells the
	// total precomputed group count across them (0 when absent).
	Levels int `json:"levels,omitempty"`
	Cells  int `json:"cells,omitempty"`
}

// datasetStats is one registered dataset's serving state: the snapshot
// version currently answering queries, its row count, the sessions bound to
// it, and whether a materialized cube backs its group-bys.
type datasetStats struct {
	Version  uint64     `json:"version"`
	Rows     int        `json:"rows"`
	Sessions int        `json:"sessions"`
	Cube     cubeStatus `json:"cube"`
}

// statsResponse is the GET /v1/stats payload.
type statsResponse struct {
	Status   string                  `json:"status"`
	Datasets map[string]datasetStats `json:"datasets"`
	Sessions int                     `json:"sessions"`
	Cache    struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
		Size   int    `json:"size"`
	} `json:"cache"`
}

// handleStats reports per-dataset serving counters: the live snapshot
// version, row count, bound sessions, and cube status (presence plus
// materialized level/cell counts), alongside the recommendation-cache
// hit/miss statistics that /healthz already exposes.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweepExpiredLocked(s.now())
	perDataset := make(map[string]int, len(s.engines))
	for _, sess := range s.sessions {
		perDataset[sess.engine.name]++
	}
	resp := statsResponse{Status: "ok", Datasets: make(map[string]datasetStats, len(s.engines)), Sessions: len(s.sessions)}
	for name, ent := range s.engines {
		st := ent.state.Load()
		d := datasetStats{Version: st.snap.Version, Rows: st.snap.NumRows(), Sessions: perDataset[name]}
		if c := st.snap.Cube(); c != nil {
			d.Cube = cubeStatus{Present: true, Levels: c.NumLevels(), Cells: c.NumCells()}
		}
		resp.Datasets[name] = d
	}
	s.mu.Unlock()
	resp.Cache.Hits = s.cacheHits.Load()
	resp.Cache.Misses = s.cacheMiss.Load()
	if s.cache != nil {
		resp.Cache.Size = s.cache.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthResponse struct {
	Status   string `json:"status"`
	Datasets int    `json:"datasets"`
	Sessions int    `json:"sessions"`
	Cache    struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
		Size   int    `json:"size"`
	} `json:"cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweepExpiredLocked(s.now())
	nd, ns := len(s.engines), len(s.sessions)
	s.mu.Unlock()
	resp := healthResponse{Status: "ok", Datasets: nd, Sessions: ns}
	resp.Cache.Hits = s.cacheHits.Load()
	resp.Cache.Misses = s.cacheMiss.Load()
	if s.cache != nil {
		resp.Cache.Size = s.cache.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// nonNil maps a nil slice to an empty one so JSON renders [] instead of null.
func nonNil(ss []string) []string {
	if ss == nil {
		return []string{}
	}
	return ss
}
