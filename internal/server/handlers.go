package server

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/reptile/api"
)

// Every request and response body on this file's handlers is a reptile/api
// type: the server declares no wire structs of its own, so the protocol the
// Go client (reptile/client) compiles against is by construction the one
// served here.

// maxBodyBytes bounds request bodies; inline CSV datasets are the largest
// legitimate payload.
const maxBodyBytes = 64 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone; nothing useful remains to send.
		_ = err
	}
}

// writeError sends the v1 error envelope. The HTTP status derives from the
// code, and overload responses carry Retry-After both as a header and in the
// envelope.
func writeError(w http.ResponseWriter, code api.ErrorCode, err error) {
	if sw, ok := w.(*statusWriter); ok {
		// Surface the true error class to the instrumentation middleware, so
		// error counters key on api codes rather than bare HTTP statuses.
		sw.code = code
	}
	e := &api.Error{Message: err.Error(), Code: code}
	if code == api.CodeOverloaded {
		e.RetryAfter = 1
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, code.HTTPStatus(), e)
}

func decodeJSON(r *http.Request, v any) error {
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterDatasetRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	if req.Name == "" {
		writeError(w, api.CodeBadRequest, fmt.Errorf("dataset needs a name"))
		return
	}
	if (req.Path == "") == (req.CSV == "") {
		writeError(w, api.CodeBadRequest, fmt.Errorf("dataset needs exactly one of path and csv"))
		return
	}
	// Answer retries of an already-registered name before loading the data.
	s.mu.Lock()
	_, dup := s.engines[req.Name]
	s.mu.Unlock()
	if dup {
		writeError(w, api.CodeDatasetExists, fmt.Errorf("server: %v: %q", ErrDuplicateDataset, req.Name))
		return
	}
	if req.Shards < 0 {
		writeError(w, api.CodeBadRequest, fmt.Errorf("shards must be non-negative, got %d", req.Shards))
		return
	}
	// Per-request tuning falls back to the server's defaults.
	rc := s.regDefaults(core.Options{EMIterations: req.EMIterations, TopK: req.TopK, Workers: req.Workers})
	if req.Shards != 0 {
		rc.shards = req.Shards
	}
	if req.ShardKey != "" {
		rc.shardKey = req.ShardKey
	}
	if req.Retention != "" {
		window, err := time.ParseDuration(req.Retention)
		if err != nil || window <= 0 {
			writeError(w, api.CodeBadRequest, fmt.Errorf("retention must be a positive Go duration (e.g. %q), got %q", "17520h", req.Retention))
			return
		}
		rc.retention = window
	}
	if req.RetentionDim != "" {
		rc.retDim = req.RetentionDim
	}
	var snap *store.Snapshot
	if strings.HasSuffix(req.Path, ".rst") {
		// Snapshot files carry their own schema.
		if len(req.Measures) > 0 || req.Hierarchies != "" {
			writeError(w, api.CodeBadRequest,
				fmt.Errorf("a .rst snapshot carries its own measures and hierarchies; leave both fields empty"))
			return
		}
		sharded, err := store.IsShardedFile(req.Path)
		if err != nil {
			writeError(w, api.CodeBadRequest, err)
			return
		}
		if sharded {
			// A partitioned file carries its own shard topology too.
			if req.Shards != 0 || req.ShardKey != "" {
				writeError(w, api.CodeBadRequest,
					fmt.Errorf("a partitioned .rst snapshot carries its own shard topology; leave shards and shard_key empty"))
				return
			}
			open := shard.Open
			if s.cfg.MappedIO {
				open = shard.OpenMapped
			}
			set, err := open(req.Path)
			if err != nil {
				writeError(w, api.CodeBadRequest, err)
				return
			}
			if err := s.registerShardedRC(req.Name, set, rc); err != nil {
				code := api.CodeBadRequest
				if errors.Is(err, ErrDuplicateDataset) {
					code = api.CodeDatasetExists
				}
				writeError(w, code, err)
				return
			}
			s.writeRegistered(w, req.Name)
			return
		}
		openFile := store.OpenFile
		if s.cfg.MappedIO {
			openFile = store.OpenMappedFile
		}
		snap, err = openFile(req.Path)
		if err != nil {
			writeError(w, api.CodeBadRequest, err)
			return
		}
	} else {
		if len(req.Measures) == 0 {
			writeError(w, api.CodeBadRequest, fmt.Errorf("dataset needs at least one measure column"))
			return
		}
		hierarchies, err := data.ParseHierarchySpec(req.Hierarchies)
		if err != nil {
			writeError(w, api.CodeBadRequest, err)
			return
		}
		var ds *data.Dataset
		if req.Path != "" {
			ds, err = data.ReadCSVFile(req.Path, req.Name, req.Measures, hierarchies)
		} else {
			ds, err = data.ReadCSV(strings.NewReader(req.CSV), req.Name, req.Measures, hierarchies)
		}
		if err != nil {
			writeError(w, api.CodeBadRequest, err)
			return
		}
		snap = store.FromDataset(ds)
	}
	if err := s.registerSnapshot(req.Name, snap, rc); err != nil {
		code := api.CodeBadRequest
		if errors.Is(err, ErrDuplicateDataset) {
			code = api.CodeDatasetExists
		}
		writeError(w, code, err)
		return
	}
	s.writeRegistered(w, req.Name)
}

// writeRegistered answers a successful registration with the dataset's
// freshly inserted serving state.
func (s *Server) writeRegistered(w http.ResponseWriter, name string) {
	s.mu.Lock()
	ent := s.engines[name]
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, datasetInfo(name, ent.state.Load()))
}

// datasetInfo describes one serving state for dataset responses.
func datasetInfo(name string, st *engineState) api.DatasetInfo {
	schema := st.schema()
	names := make([]string, len(schema.Hierarchies))
	for i, h := range schema.Hierarchies {
		names[i] = h.Name
	}
	measures := make([]string, len(schema.Measures))
	for i, m := range schema.Measures {
		measures[i] = m.Name
	}
	info := api.DatasetInfo{
		Name:        name,
		Rows:        st.rows(),
		Version:     st.version(),
		Hierarchies: names,
		Measures:    measures,
	}
	if st.set != nil {
		info.Shards = st.set.N()
	}
	return info
}

// handleListDatasets reports every registered dataset's currently-served
// version, sorted by name for deterministic output.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*engineEntry, 0, len(s.engines))
	for _, ent := range s.engines {
		entries = append(entries, ent)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	resp := api.ListDatasetsResponse{Datasets: make([]api.DatasetInfo, len(entries))}
	for i, ent := range entries {
		resp.Datasets[i] = datasetInfo(ent.name, ent.state.Load())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	ent, ok := s.engines[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, api.CodeDatasetNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	var req api.AppendRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	if req.CSV == "" {
		writeError(w, api.CodeBadRequest, fmt.Errorf("append needs csv content"))
		return
	}
	rows, err := parseAppendCSV(ent.state.Load().schema(), req.CSV)
	if err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	resp := api.AppendResponse{Appended: len(rows)}
	if ent.ing != nil {
		// WAL-backed: the rows are durable once logged; the flusher folds
		// them into the serving state asynchronously. The response reports
		// the version still serving plus the client's replay position.
		seq, pending, err := ent.ing.enqueue(rows)
		if err != nil {
			writeError(w, api.CodeUnprocessable, err)
			return
		}
		resp.WALSeq, resp.PendingRows = seq, pending
		resp.DatasetInfo = datasetInfo(name, ent.state.Load())
	} else {
		next, err := s.applySync(ent, rows)
		if err != nil {
			writeError(w, api.CodeUnprocessable, err)
			return
		}
		resp.DatasetInfo = datasetInfo(name, next)
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseAppendCSV decodes appended rows against the snapshot's schema. The
// header must name every column exactly once; column order is free.
func parseAppendCSV(snap *store.Snapshot, content string) ([]store.Row, error) {
	cr := csv.NewReader(strings.NewReader(content))
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading append CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, c := range header {
		if _, dup := col[c]; dup {
			return nil, fmt.Errorf("duplicate column %q in append CSV header", c)
		}
		col[c] = i
	}
	dimIdx := make([]int, len(snap.Dims))
	for i, c := range snap.Dims {
		j, ok := col[c.Name]
		if !ok {
			return nil, fmt.Errorf("append CSV is missing dimension column %q", c.Name)
		}
		dimIdx[i] = j
	}
	msIdx := make([]int, len(snap.Measures))
	for i, m := range snap.Measures {
		j, ok := col[m.Name]
		if !ok {
			return nil, fmt.Errorf("append CSV is missing measure column %q", m.Name)
		}
		msIdx[i] = j
	}
	if len(col) != len(snap.Dims)+len(snap.Measures) {
		return nil, fmt.Errorf("append CSV has %d columns, dataset has %d", len(col), len(snap.Dims)+len(snap.Measures))
	}
	var rows []store.Row
	// row is 1-based over data rows; the header is CSV line 1, so data row r
	// sits on line r+1 — errors cite both so they are findable in either
	// numbering.
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("reading append CSV row %d (line %d): %w", row, row+1, err)
		}
		r := store.Row{Dims: make([]string, len(dimIdx)), Measures: make([]float64, len(msIdx))}
		for i, j := range dimIdx {
			r.Dims[i] = rec[j]
		}
		for i, j := range msIdx {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("append CSV row %d (line %d) column %q: %w",
					row, row+1, snap.Measures[i].Name, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("append CSV row %d (line %d) column %q: non-finite measure value %q",
					row, row+1, snap.Measures[i].Name, rec[j])
			}
			r.Measures[i] = v
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	s.mu.Lock()
	ent, ok := s.engines[req.Dataset]
	s.mu.Unlock()
	if !ok {
		writeError(w, api.CodeDatasetNotFound, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	st := ent.state.Load()
	cs, err := st.eng.NewSession(req.GroupBy)
	if err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	ttl := s.cfg.SessionTTL
	if req.TTLSeconds > 0 {
		// Clamp before multiplying: a huge ttl_seconds would overflow
		// time.Duration into the past and create an already-expired session.
		const maxTTLSeconds = int(maxSessionTTL / time.Second)
		secs := req.TTLSeconds
		if secs > maxTTLSeconds {
			secs = maxTTLSeconds
		}
		ttl = time.Duration(secs) * time.Second
	}
	sess := &session{id: newSessionID(), engine: ent, sess: cs, version: st.version(), ttl: ttl}
	s.mu.Lock()
	now := s.now()
	s.sweepExpiredLocked(now)
	sess.deadline = now.Add(ttl)
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, api.Session{
		ID:        sess.id,
		Dataset:   ent.name,
		GroupBy:   nonNil(cs.GroupBy()),
		State:     cs.StateKey(),
		ExpiresAt: sess.deadline.UTC().Format(time.RFC3339),
	})
}

// handleReleaseSession explicitly releases a session, freeing its TTL-table
// entry and cached recommendations without waiting for expiry. Releasing an
// unknown (or already released) id is 404: release is not idempotent, so a
// client retrying over a flaky link learns the first attempt landed.
func (s *Server) handleReleaseSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		// An expired-but-unswept session still releases cleanly: the client
		// asked for it to be gone, and gone it is either way.
		s.dropSessionLocked(sess)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, api.CodeSessionNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	// The middleware's trace threads through the whole pipeline: the serving
	// stages recorded here and the engine stages (groupby, scatter, fit)
	// recorded through the core.SpanRecorder seam nest into one exclusive
	// per-stage decomposition. A nil trace (direct handler calls in tests)
	// records nothing.
	tr := obs.TraceFrom(r.Context())
	endBind := tr.StartSpan("bind")
	view, code, err := s.lookupSession(r.PathValue("id"))
	endBind()
	if err != nil {
		writeError(w, code, err)
		return
	}
	endDecode := tr.StartSpan("decode")
	var req api.RecommendRequest
	if err := decodeJSON(r, &req); err != nil {
		endDecode()
		writeError(w, api.CodeBadRequest, err)
		return
	}
	c, err := core.ParseComplaint(req.Complaint)
	endDecode()
	if err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	state := view.cs.StateKey()
	cacheKey := ""
	if ck, cacheable := c.Key(); cacheable && s.cache != nil {
		// The dataset version is part of the key: a request still evaluating
		// the swapped-out version can only insert under the old version's
		// key, which no rebound session will ever look up again.
		endCache := tr.StartSpan("cache")
		cacheKey = fmt.Sprintf("%s\x00v%d\x00%s\x00%s", view.id, view.version, state, ck)
		raw, ok := s.cache.Get(cacheKey)
		endCache()
		if ok {
			s.countCache(view.engine, true)
			s.respondRecommend(w, r, tr, state, "hit", raw)
			return
		}
		s.countCache(view.engine, false)
	}

	endAdmit := tr.StartSpan("admit")
	admitted := view.engine.acquire(r.Context(), s.cfg.QueueWait)
	endAdmit()
	if !admitted {
		writeError(w, api.CodeOverloaded,
			fmt.Errorf("dataset %q is at its concurrent recommendation limit", view.engine.name))
		return
	}
	defer view.engine.release()

	endEval := tr.StartSpan("evaluate")
	rec, err := view.cs.RecommendContext(r.Context(), c)
	endEval()
	if err != nil {
		writeError(w, api.CodeUnprocessable, err)
		return
	}
	endEncode := tr.StartSpan("encode")
	raw, err := json.Marshal(rec)
	endEncode()
	if err != nil {
		writeError(w, api.CodeInternal, err)
		return
	}
	verdict := "bypass"
	if cacheKey != "" {
		verdict = "miss"
		// A Drill racing this call may have advanced the session after the
		// state key was read: the engine then evaluated at the deeper state
		// (its contract allows either), and caching that result under the
		// pre-drill key would resurrect an entry the drill just invalidated.
		// Drilling is monotonic, so an unchanged state key proves no drill
		// landed in between and the entry is safe to insert.
		if view.cs.StateKey() == state {
			s.cache.Add(cacheKey, raw)
		}
	}
	s.respondRecommend(w, r, tr, state, verdict, raw)
}

// countCache records one recommendation-cache outcome at every granularity:
// server-wide, per dataset, and per endpoint.
func (s *Server) countCache(ent *engineEntry, hit bool) {
	m := s.obs.Endpoint(obs.EndpointRecommend)
	if hit {
		s.cacheHits.Add(1)
		ent.cacheHits.Add(1)
		m.CacheHits.Add(1)
	} else {
		s.cacheMiss.Add(1)
		ent.cacheMiss.Add(1)
		m.CacheMisses.Add(1)
	}
}

// respondRecommend writes the recommendation. When the client asked for
// tracing (any non-empty X-Reptile-Trace request header), the response
// carries the request's per-stage timing breakdown both as an
// X-Reptile-Trace header ("bind;dur=0.4, ..., total;dur=12.3", milliseconds)
// and as the stages field of the body.
func (s *Server) respondRecommend(w http.ResponseWriter, r *http.Request, tr *obs.Trace, state, verdict string, raw json.RawMessage) {
	w.Header().Set("X-Reptile-Cache", verdict)
	resp := api.RecommendResponse{State: state, Cache: verdict, Recommendation: raw}
	if tr != nil && r.Header.Get("X-Reptile-Trace") != "" {
		stages := tr.Stages()
		w.Header().Set("X-Reptile-Trace", obs.Header(stages, tr.Elapsed()))
		resp.Stages = make([]api.StageTiming, len(stages))
		for i, st := range stages {
			resp.Stages[i] = api.StageTiming{Name: st.Name, DurationMS: float64(st.Dur) / float64(time.Millisecond)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	view, code, err := s.lookupSession(r.PathValue("id"))
	if err != nil {
		writeError(w, code, err)
		return
	}
	var req api.DrillRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	// Drill the session's *current* core.Session, holding the registry lock
	// so a hot-swap cannot rebind the session mid-drill and silently lose
	// the step. Drill only flips depth counters, so the critical section is
	// short.
	s.mu.Lock()
	cs := view.cs
	if sess, ok := s.sessions[view.id]; ok {
		cs = sess.sess
	}
	err = cs.Drill(req.Hierarchy)
	s.mu.Unlock()
	if err != nil {
		writeError(w, api.CodeBadRequest, err)
		return
	}
	// Drilling changes the session's state key, so cached entries for the
	// old state can never be requested again — drop them eagerly.
	if s.cache != nil {
		s.cache.RemovePrefix(view.id + "\x00")
	}
	writeJSON(w, http.StatusOK, api.DrillResponse{
		GroupBy: nonNil(cs.GroupBy()),
		State:   cs.StateKey(),
	})
}

// handleStats reports per-dataset serving counters: the live snapshot
// version, row count, bound sessions, shard topology (shard count plus
// per-shard row counts), open mode ("eager" or "mapped") with the resident
// column-payload bytes that mode costs, and cube status (presence plus
// materialized level/cell counts; on a sharded dataset, present only when
// every shard has one, with cells summed across shards), alongside the
// recommendation-cache hit/miss statistics that /healthz already exposes.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweepExpiredLocked(s.now())
	perDataset := make(map[string]int, len(s.engines))
	for _, sess := range s.sessions {
		perDataset[sess.engine.name]++
	}
	resp := api.StatsResponse{Status: "ok", Datasets: make(map[string]api.DatasetStats, len(s.engines)), Sessions: len(s.sessions)}
	for name, ent := range s.engines {
		st := ent.state.Load()
		d := api.DatasetStats{
			Version:             st.version(),
			Rows:                st.rows(),
			Sessions:            perDataset[name],
			OpenMode:            st.openMode(),
			ResidentColumnBytes: st.residentColumnBytes(),
		}
		if st.set != nil {
			d.Shards = st.set.N()
			d.ShardRows = st.set.Rows()
			d.Cube = shardedCubeStatus(st.set)
		} else if c := st.snap.Cube(); c != nil {
			d.Cube = api.CubeStatus{Present: true, Levels: c.NumLevels(), Cells: c.NumCells()}
		}
		if ent.ing != nil {
			d.WAL = ent.ing.status()
		}
		d.Retention = ent.retentionStatus()
		if hits, misses := ent.cacheHits.Load(), ent.cacheMiss.Load(); hits+misses > 0 {
			d.Cache = &api.CacheStats{Hits: hits, Misses: misses}
		}
		resp.Datasets[name] = d
	}
	s.mu.Unlock()
	resp.Cache = s.cacheStats()
	resp.Server = s.serverInfo()
	resp.Endpoints = s.endpointStats()
	resp.Stages = s.stageStats()
	writeJSON(w, http.StatusOK, resp)
}

// shardedCubeStatus aggregates per-shard cubes into one status: present only
// when every shard serves from one, levels from the first shard (all shards
// share the lattice), cells summed across shards.
func shardedCubeStatus(set *shard.Set) api.CubeStatus {
	status := api.CubeStatus{Present: true}
	for _, sn := range set.Snaps {
		c := sn.Cube()
		if c == nil {
			return api.CubeStatus{}
		}
		if status.Levels == 0 {
			status.Levels = c.NumLevels()
		}
		status.Cells += c.NumCells()
	}
	return status
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweepExpiredLocked(s.now())
	nd, ns := len(s.engines), len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, api.HealthResponse{
		Status: "ok", Datasets: nd, Sessions: ns, Cache: s.cacheStats(),
	})
}

// cacheStats snapshots the recommendation LRU's counters.
func (s *Server) cacheStats() api.CacheStats {
	cs := api.CacheStats{Hits: s.cacheHits.Load(), Misses: s.cacheMiss.Load()}
	if s.cache != nil {
		cs.Size = s.cache.Len()
	}
	return cs
}

// nonNil maps a nil slice to an empty one so JSON renders [] instead of null.
func nonNil(ss []string) []string {
	if ss == nil {
		return []string{}
	}
	return ss
}
