package server

// Real-time ingestion: per-dataset write-ahead logging, micro-batch
// coalescing, checkpointing and time-window retention.
//
// With Config.WAL set, an append commits its rows to the dataset's log
// (fsynced) and is acknowledged immediately with the log sequence number; a
// per-dataset flusher goroutine coalesces everything pending into a single
// snapshot rebuild once a size threshold (FlushRows/FlushBytes) is crossed or
// FlushInterval has passed. One rebuild per micro-batch instead of one per
// append is what makes high-rate feeds affordable: the rebuild cost amortizes
// over the whole batch while durability stays per-request.
//
// Recovery hinges on one invariant: a checkpoint file's name carries the last
// log sequence folded into it (<dataset>.ckpt.<seq>.rst), so the atomic
// rename that publishes the checkpoint commits the data and the replay
// position together — there is no window where one is durable without the
// other. Re-registering a dataset loads the newest checkpoint (superseding
// the request's base data), replays every log batch with a higher sequence,
// and only then builds cubes and engines. Truncating the log after a
// checkpoint is a pure optimization; skipping it never loses or duplicates
// rows.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/reptile/api"
)

// ingester is one dataset's ingestion pipeline: the write-ahead log, the
// pending micro-batch, and the flusher goroutine folding it into the serving
// state.
type ingester struct {
	srv  *Server
	ent  *engineEntry // set by start
	name string
	dir  string

	mu           sync.Mutex
	log          *wal.WAL
	pending      []store.Row
	pendingBytes int
	lastSeq      uint64 // newest sequence committed to the log
	flushedSeq   uint64 // newest sequence folded into the serving state
	flushes      uint64
	dropped      uint64 // logged rows the flusher could not fold
	lastFlush    time.Time
	lastErr      error
	closed       bool

	kick    chan struct{}
	quit    chan struct{}
	stopped chan struct{}
}

func newIngester(s *Server, name string, log *wal.WAL) *ingester {
	return &ingester{
		srv: s, name: name, dir: s.cfg.WALDir, log: log,
		lastSeq: log.LastSeq(), flushedSeq: log.LastSeq(),
		kick: make(chan struct{}, 1), quit: make(chan struct{}), stopped: make(chan struct{}),
	}
}

// start binds the ingester to its registered entry and launches the flusher.
func (ing *ingester) start(ent *engineEntry) {
	ing.ent = ent
	go ing.run()
}

// enqueue commits rows to the log and queues them for the next flush. It
// returns the batch's sequence number — the rows are durable — and the
// pending row count, this batch included.
func (ing *ingester) enqueue(rows []store.Row) (seq uint64, pendingRows int, err error) {
	if len(rows) == 0 {
		return 0, 0, fmt.Errorf("server: empty append batch")
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closed {
		return 0, 0, fmt.Errorf("server: dataset %q: ingestion is shut down", ing.name)
	}
	seq, err = ing.log.Append(rows)
	if err != nil {
		return 0, 0, err
	}
	ing.lastSeq = seq
	ing.pending = append(ing.pending, rows...)
	ing.pendingBytes += rowsBytes(rows)
	if len(ing.pending) >= ing.srv.cfg.FlushRows || ing.pendingBytes >= ing.srv.cfg.FlushBytes {
		select {
		case ing.kick <- struct{}{}:
		default:
		}
	}
	return seq, len(ing.pending), nil
}

// run is the flusher loop: it folds the pending micro-batch on every kick
// (size threshold) and at least every FlushInterval, until close.
func (ing *ingester) run() {
	defer close(ing.stopped)
	t := time.NewTicker(ing.srv.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-ing.kick:
		case <-t.C:
		case <-ing.quit:
			return
		}
		ing.flush()
	}
}

// flush steals the pending micro-batch and folds it into the serving state
// with a single rebuild. The ingester mutex is NOT held across the rebuild,
// so appends keep landing in the log while the successor version builds. A
// batch the builder rejects wholesale (e.g. one poisoned row tripping an FD
// check) is retried row by row so one bad row cannot sink its neighbours;
// rejected rows are counted, recorded, and skipped the same way on replay.
func (ing *ingester) flush() {
	ing.mu.Lock()
	rows := ing.pending
	seq := ing.lastSeq
	ing.pending = nil
	ing.pendingBytes = 0
	ing.mu.Unlock()

	if len(rows) > 0 {
		var bad uint64
		if _, err := ing.srv.applySync(ing.ent, rows); err != nil {
			for _, row := range rows {
				if _, rerr := ing.srv.applySync(ing.ent, []store.Row{row}); rerr != nil {
					bad++
				}
			}
			ing.mu.Lock()
			ing.lastErr = err
			ing.dropped += bad
			ing.mu.Unlock()
		}
		ing.mu.Lock()
		ing.flushedSeq = seq
		ing.flushes++
		ing.lastFlush = time.Now()
		ing.mu.Unlock()
	}
	ing.maybeCheckpoint()
}

// maybeCheckpoint serializes the serving state to a sequence-stamped .rst
// and truncates the log, once the log outgrows Config.CheckpointBytes. It
// only runs quiescent — every logged batch folded — so the truncation cannot
// discard unflushed frames; a busy dataset simply checkpoints on a later
// pass.
func (ing *ingester) maybeCheckpoint() {
	limit := ing.srv.cfg.CheckpointBytes
	ing.mu.Lock()
	if limit <= 0 || ing.log.Size() < limit || len(ing.pending) > 0 || ing.lastSeq != ing.flushedSeq {
		ing.mu.Unlock()
		return
	}
	seq := ing.flushedSeq
	ing.mu.Unlock()

	// Serialize without the mutex: the state at seq is immutable, and new
	// enqueues only add frames past seq.
	st := ing.ent.state.Load()
	path := checkpointPath(ing.dir, ing.name, seq)
	if err := writeStateFile(st, path); err != nil {
		ing.mu.Lock()
		ing.lastErr = err
		ing.mu.Unlock()
		return
	}

	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.lastSeq != seq {
		// New frames landed while the checkpoint serialized. It is still
		// valid — recovery replays frames past seq — but the log must keep
		// them, so skip the truncation and only sweep older checkpoints.
		removeOtherCheckpoints(ing.dir, ing.name, seq)
		return
	}
	if err := ing.log.Reset(); err != nil {
		ing.lastErr = err
		return
	}
	removeOtherCheckpoints(ing.dir, ing.name, seq)
}

// status snapshots the pipeline state for /v1/stats.
func (ing *ingester) status() *api.WALStatus {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	ws := &api.WALStatus{
		LastSeq:      ing.lastSeq,
		FlushedSeq:   ing.flushedSeq,
		PendingRows:  len(ing.pending),
		PendingBytes: ing.pendingBytes,
		SizeBytes:    ing.log.Size(),
		Flushes:      ing.flushes,
		DroppedRows:  ing.dropped,
	}
	if !ing.lastFlush.IsZero() {
		ws.LastFlush = ing.lastFlush.UTC().Format(time.RFC3339)
	}
	if ing.lastErr != nil {
		ws.LastError = ing.lastErr.Error()
	}
	return ws
}

// close stops the flusher and releases the log. With drain set, the pending
// micro-batch folds into the serving state and the log fsyncs first — the
// graceful-shutdown path. Without it, pending rows stay only in the log (they
// are already durable) and replay on the next registration — the crash path,
// exercised directly by the recovery tests.
func (ing *ingester) close(drain bool) error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return nil
	}
	ing.closed = true
	ing.mu.Unlock()
	close(ing.quit)
	<-ing.stopped
	var err error
	if drain {
		ing.flush()
		err = ing.log.Sync()
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if cerr := ing.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close shuts ingestion down for process exit: every WAL-backed dataset's
// flusher drains its pending micro-batch into the serving state, the logs
// fsync and close, and further appends fail. Read traffic (sessions,
// recommendations) is unaffected.
func (s *Server) Close() error {
	s.mu.Lock()
	ents := make([]*engineEntry, 0, len(s.engines))
	for _, ent := range s.engines {
		ents = append(ents, ent)
	}
	s.mu.Unlock()
	// Drain in name order so shutdown (flush ordering, first-error
	// reporting) is reproducible run to run.
	sort.Slice(ents, func(i, j int) bool { return ents[i].name < ents[j].name })
	var first error
	for _, ent := range ents {
		if ent.ing == nil {
			continue
		}
		if err := ent.ing.close(true); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// abandonIngest releases a recovered-but-unregistered pipeline's log on a
// registration failure, passing the failure through.
func abandonIngest(ing *ingester, err error) error {
	if ing != nil {
		ing.log.Close()
	}
	return err
}

// retainLocked enforces the entry's retention window on the serving state:
// rows whose event time on the retention dimension falls behind the newest
// event minus the window are dropped into a successor version. Callers hold
// ent.appendMu. A pass that drops nothing costs one column scan and swaps
// nothing.
func (s *Server) retainLocked(ent *engineEntry) error {
	if ent.retWindow <= 0 {
		return nil
	}
	st := ent.state.Load()
	var dropped int
	var horizon time.Time
	if st.set != nil {
		next, d, h, err := st.set.Retain(ent.retDim, ent.retWindow)
		if err != nil {
			return err
		}
		dropped, horizon = d, h
		if dropped > 0 {
			eng, err := next.Engine(ent.opts)
			if err != nil {
				return err
			}
			ent.state.Store(&engineState{eng: eng, set: next})
		}
	} else {
		next, d, h, err := store.Retain(st.snap, ent.retDim, ent.retWindow)
		if err != nil {
			return err
		}
		dropped, horizon = d, h
		if dropped > 0 {
			ds, err := next.Dataset()
			if err != nil {
				return err
			}
			eng, err := core.NewEngine(ds, ent.opts)
			if err != nil {
				return err
			}
			ent.state.Store(&engineState{eng: eng, snap: next})
			// The builder's base no longer matches the served rows; rebase it.
			ent.builder = store.NewBuilder(next)
		}
	}
	ent.retMu.Lock()
	if !horizon.IsZero() {
		ent.retHorizon = horizon
	}
	ent.retDropped += uint64(dropped)
	ent.retMu.Unlock()
	if dropped > 0 {
		s.invalidateDataset(ent)
	}
	return nil
}

// recordRetainError surfaces a retention failure in the dataset's stats
// without failing the append that triggered the pass.
func (ent *engineEntry) recordRetainError(err error) {
	if ent.ing == nil {
		return
	}
	ent.ing.mu.Lock()
	ent.ing.lastErr = err
	ent.ing.mu.Unlock()
}

// retentionStatus snapshots the entry's retention counters for /v1/stats;
// nil when no window is configured.
func (ent *engineEntry) retentionStatus() *api.RetentionStatus {
	if ent.retWindow <= 0 {
		return nil
	}
	ent.retMu.Lock()
	defer ent.retMu.Unlock()
	rs := &api.RetentionStatus{
		Window:      ent.retWindow.String(),
		Dim:         ent.retDim,
		DroppedRows: ent.retDropped,
	}
	if !ent.retHorizon.IsZero() {
		rs.Horizon = ent.retHorizon.UTC().Format(time.RFC3339)
	}
	return rs
}

// --- recovery -----------------------------------------------------------

// recoverDataset restores a dataset's durable ingestion state during
// registration: the newest checkpoint (superseding base when present) with
// every surviving log batch folded in, plus the open log ready for new
// appends. The returned set is non-nil when the checkpoint was written by a
// sharded serving state, whose topology then wins.
func (s *Server) recoverDataset(name string, base *store.Snapshot) (*ingester, *store.Snapshot, *shard.Set, error) {
	if err := checkWALName(name); err != nil {
		return nil, nil, nil, err
	}
	ckptPath, ckptSeq, err := newestCheckpoint(s.cfg.WALDir, name)
	if err != nil {
		return nil, nil, nil, err
	}
	var set *shard.Set
	if ckptPath != "" {
		sharded, err := store.IsShardedFile(ckptPath)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("server: dataset %q: reading checkpoint: %w", name, err)
		}
		if sharded {
			if set, err = shard.Open(ckptPath); err != nil {
				return nil, nil, nil, fmt.Errorf("server: dataset %q: loading checkpoint: %w", name, err)
			}
		} else if base, err = store.OpenFile(ckptPath); err != nil {
			return nil, nil, nil, fmt.Errorf("server: dataset %q: loading checkpoint: %w", name, err)
		}
	}
	ing, batches, err := s.openLog(name, ckptSeq)
	if err != nil {
		return nil, nil, nil, err
	}
	if set != nil {
		set, skipped := foldSet(set, batches)
		ing.dropped += skipped
		return ing, nil, set, nil
	}
	snap, skipped := foldSnapshot(base, batches)
	ing.dropped += skipped
	return ing, snap, nil, nil
}

// recoverSet is recoverDataset for a pre-partitioned registration: the
// checkpoint (sharded or not, topology may have changed across restarts)
// supersedes the provided set, and surviving log batches fold in shard-wise.
func (s *Server) recoverSet(name string, base *shard.Set) (*ingester, *shard.Set, error) {
	if err := checkWALName(name); err != nil {
		return nil, nil, err
	}
	ckptPath, ckptSeq, err := newestCheckpoint(s.cfg.WALDir, name)
	if err != nil {
		return nil, nil, err
	}
	if ckptPath != "" {
		sharded, err := store.IsShardedFile(ckptPath)
		if err != nil {
			return nil, nil, fmt.Errorf("server: dataset %q: reading checkpoint: %w", name, err)
		}
		if !sharded {
			return nil, nil, fmt.Errorf("server: dataset %q: checkpoint %s is unsharded but the registration is sharded; remove it or re-register unsharded", name, ckptPath)
		}
		if base, err = shard.Open(ckptPath); err != nil {
			return nil, nil, fmt.Errorf("server: dataset %q: loading checkpoint: %w", name, err)
		}
	}
	ing, batches, err := s.openLog(name, ckptSeq)
	if err != nil {
		return nil, nil, err
	}
	set, skipped := foldSet(base, batches)
	ing.dropped += skipped
	return ing, set, nil
}

// openLog opens the dataset's log and returns the batches still needing
// replay — those the newest checkpoint (at ckptSeq) has not folded.
func (s *Server) openLog(name string, ckptSeq uint64) (*ingester, []wal.Batch, error) {
	log, batches, err := wal.Open(walPath(s.cfg.WALDir, name))
	if err != nil {
		return nil, nil, err
	}
	// A checkpoint can outlive its log (manual cleanup, disk recovery from a
	// backup that skipped the .wal): make sure fresh appends never reuse
	// sequence numbers the checkpoint already covers.
	if err := log.AdvanceTo(ckptSeq); err != nil {
		log.Close()
		return nil, nil, err
	}
	live := batches[:0]
	for _, b := range batches {
		if b.Seq > ckptSeq {
			live = append(live, b)
		}
	}
	return newIngester(s, name, log), live, nil
}

// foldSnapshot replays recovered batches onto a snapshot. The whole backlog
// is coalesced into one rebuild first; if that fails (a poisoned batch), it
// falls back batch by batch, skipping the bad ones, so damaged history can
// never make a dataset unregisterable. Returns the folded snapshot and the
// number of skipped rows.
func foldSnapshot(snap *store.Snapshot, batches []wal.Batch) (*store.Snapshot, uint64) {
	if len(batches) == 0 {
		return snap, 0
	}
	var all []store.Row
	for _, b := range batches {
		all = append(all, b.Rows...)
	}
	if next, err := store.NewBuilder(snap).Append(all); err == nil {
		return next, 0
	}
	var skipped uint64
	cur := snap
	for _, b := range batches {
		next, err := store.NewBuilder(cur).Append(b.Rows)
		if err != nil {
			skipped += uint64(len(b.Rows))
			continue
		}
		cur = next
	}
	return cur, skipped
}

// foldSet is foldSnapshot for a shard set.
func foldSet(set *shard.Set, batches []wal.Batch) (*shard.Set, uint64) {
	if len(batches) == 0 {
		return set, 0
	}
	var all []store.Row
	for _, b := range batches {
		all = append(all, b.Rows...)
	}
	if next, err := set.Append(all); err == nil {
		return next, 0
	}
	var skipped uint64
	cur := set
	for _, b := range batches {
		next, err := cur.Append(b.Rows)
		if err != nil {
			skipped += uint64(len(b.Rows))
			continue
		}
		cur = next
	}
	return cur, skipped
}

// --- files --------------------------------------------------------------

// checkWALName rejects dataset names that cannot serve as file names: the
// log lives at <WALDir>/<name>.wal, so the name must stay inside the
// directory.
func checkWALName(name string) error {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("server: dataset name %q: write-ahead logging needs a file-safe name (letters, digits, '.', '_', '-')", name)
		}
	}
	if name == "" || strings.Trim(name, ".") == "" {
		return fmt.Errorf("server: dataset name %q is not a usable log file name", name)
	}
	return nil
}

func walPath(dir, name string) string { return filepath.Join(dir, name+".wal") }

// checkpointPath stamps the last folded sequence into the checkpoint's file
// name, zero-padded so lexical order is sequence order.
func checkpointPath(dir, name string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s.ckpt.%020d.rst", name, seq))
}

// newestCheckpoint finds the dataset's highest-sequence checkpoint file.
// Returns "" and 0 when none exists.
func newestCheckpoint(dir, name string) (string, uint64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, name+".ckpt.*.rst"))
	if err != nil {
		return "", 0, fmt.Errorf("server: scanning checkpoints for %q: %w", name, err)
	}
	best, bestSeq, found := "", uint64(0), false
	for _, m := range matches {
		seq, ok := checkpointSeq(name, filepath.Base(m))
		if !ok {
			continue
		}
		if !found || seq > bestSeq {
			best, bestSeq, found = m, seq, true
		}
	}
	return best, bestSeq, nil
}

// checkpointSeq parses the sequence number out of a checkpoint file name.
func checkpointSeq(name, base string) (uint64, bool) {
	rest, ok := strings.CutPrefix(base, name+".ckpt.")
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ".rst")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// removeOtherCheckpoints sweeps every checkpoint except the one at keep —
// older ones are superseded, and a stray newer one (from a removed log)
// would desynchronize replay.
func removeOtherCheckpoints(dir, name string, keep uint64) {
	matches, _ := filepath.Glob(filepath.Join(dir, name+".ckpt.*.rst"))
	for _, m := range matches {
		if seq, ok := checkpointSeq(name, filepath.Base(m)); ok && seq != keep {
			os.Remove(m)
		}
	}
}

// writeStateFile serializes a serving state to path atomically: temp file,
// fsync, rename, directory sync — a crash leaves either the old checkpoint
// set or the new file, never a torn one.
func writeStateFile(st *engineState, path string) error {
	tmp := path + ".tmp"
	var err error
	if st.set != nil {
		err = st.set.WriteFile(tmp)
	} else {
		err = st.snap.WriteFile(tmp)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: publishing checkpoint %s: %w", path, err)
	}
	return syncFile(filepath.Dir(path))
}

// syncFile fsyncs a file or directory by path.
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("server: opening %s for sync: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("server: syncing %s: %w", path, err)
	}
	return nil
}

// rowsBytes estimates a batch's in-memory payload for the FlushBytes
// threshold.
func rowsBytes(rows []store.Row) int {
	n := 0
	for _, r := range rows {
		for _, d := range r.Dims {
			n += len(d)
		}
		n += 8 * len(r.Measures)
	}
	return n
}
