package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/reptile/api"
)

// droughtRequest is the standard test registration, reused by WAL tests that
// need to re-register the same dataset against a fresh server.
func droughtRequest() api.RegisterDatasetRequest {
	return api.RegisterDatasetRequest{
		Name:         "drought",
		CSV:          testCSV,
		Measures:     []string{"severity"},
		Hierarchies:  testHierarchies,
		EMIterations: 4,
	}
}

func register(t *testing.T, base string, req api.RegisterDatasetRequest) {
	t.Helper()
	code, b := post(t, base+"/v1/datasets", req)
	if code != http.StatusCreated {
		t.Fatalf("register dataset: %d %s", code, b)
	}
}

func createSession(t *testing.T, base string) string {
	t.Helper()
	code, b := post(t, base+"/v1/sessions", api.CreateSessionRequest{
		Dataset: "drought",
		GroupBy: []string{"district", "year"},
	})
	if code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, b)
	}
	var sr api.Session
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.ID
}

func entry(t *testing.T, s *Server, name string) *engineEntry {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.engines[name]
	if ent == nil {
		t.Fatalf("dataset %q not registered", name)
	}
	return ent
}

// waitWAL polls the ingester until cond holds; flushing is asynchronous, so
// tests that assert post-flush state wait here first.
func waitWAL(t *testing.T, ing *ingester, what string, cond func(*api.WALStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(ing.status()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; status %+v", what, ing.status())
}

func quiescent(ws *api.WALStatus) bool {
	return ws.PendingRows == 0 && ws.LastSeq == ws.FlushedSeq
}

func datasetStats(t *testing.T, base, name string) api.DatasetStats {
	t.Helper()
	code, b := get(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var sr api.StatsResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	ds, ok := sr.Datasets[name]
	if !ok {
		t.Fatalf("stats has no dataset %q: %s", name, b)
	}
	return ds
}

func recommendBytes(t *testing.T, base, id, complaint string) []byte {
	t.Helper()
	code, b := post(t, base+"/v1/sessions/"+id+"/recommend", api.RecommendRequest{Complaint: complaint})
	if code != http.StatusOK {
		t.Fatalf("recommend: %d %s", code, b)
	}
	var rr api.RecommendResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	return rr.Recommendation
}

// TestWALAppendAcksThenFlushes exercises the happy path: a WAL-backed append
// is acknowledged with its log sequence before the serving state changes, and
// the flusher folds it in shortly after, surfacing its progress in /v1/stats.
func TestWALAppendAcksThenFlushes(t *testing.T) {
	s, ts := newTestServer(t, Config{
		WAL: true, WALDir: t.TempDir(),
		FlushRows: 1 << 30, FlushBytes: 1 << 30, FlushInterval: 20 * time.Millisecond,
		CheckpointBytes: -1,
	})
	register(t, ts.URL, droughtRequest())

	code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV})
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	var ar api.AppendResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	// The ack carries the durable log position and the still-serving version:
	// the rebuild has not happened yet.
	if ar.Appended != 2 || ar.WALSeq != 1 || ar.PendingRows != 2 {
		t.Fatalf("append ack = %+v, want appended 2, wal_seq 1, pending 2", ar)
	}
	if ar.Version != 1 || ar.Rows != 8 {
		t.Fatalf("append ack version/rows = %d/%d, want the pre-flush 1/8", ar.Version, ar.Rows)
	}

	ing := entry(t, s, "drought").ing
	waitWAL(t, ing, "first flush", quiescent)

	ds := datasetStats(t, ts.URL, "drought")
	if ds.Version != 2 || ds.Rows != 10 {
		t.Errorf("post-flush version/rows = %d/%d, want 2/10", ds.Version, ds.Rows)
	}
	if ds.WAL == nil {
		t.Fatal("stats has no WAL block for a WAL-backed dataset")
	}
	if ds.WAL.LastSeq != 1 || ds.WAL.FlushedSeq != 1 || ds.WAL.Flushes == 0 || ds.WAL.LastFlush == "" {
		t.Errorf("WAL status = %+v, want last_seq 1 flushed_seq 1 with a recorded flush", ds.WAL)
	}

	// The flushed rows serve: a complaint about Raya 1986 ranks the appended
	// village.
	id := createSession(t, ts.URL)
	rec := recommendBytes(t, ts.URL, id, "agg=mean measure=severity dir=low district=Raya year=1986")
	if !bytes.Contains(rec, []byte("Bala")) {
		t.Errorf("recommendation does not reflect the flushed append:\n%s", rec)
	}
}

// TestWALFlushRowsThresholdKicks proves the size threshold flushes without
// waiting for the interval: the ticker is an hour out, so only the row
// threshold can fold the batch.
func TestWALFlushRowsThresholdKicks(t *testing.T) {
	s, ts := newTestServer(t, Config{
		WAL: true, WALDir: t.TempDir(),
		FlushRows: 2, FlushBytes: 1 << 30, FlushInterval: time.Hour,
		CheckpointBytes: -1,
	})
	register(t, ts.URL, droughtRequest())

	code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV})
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	waitWAL(t, entry(t, s, "drought").ing, "threshold flush", quiescent)
	if ds := datasetStats(t, ts.URL, "drought"); ds.Version != 2 || ds.Rows != 10 {
		t.Errorf("post-flush version/rows = %d/%d, want 2/10", ds.Version, ds.Rows)
	}
}

// TestWALCrashRecoveryByteIdentical is the core durability contract: rows
// acknowledged into the log but never flushed (the process "crashes" between
// WAL commit and snapshot swap) replay on re-registration, and the recovered
// dataset answers recommendations byte-identically to a server that ingested
// the same rows synchronously.
func TestWALCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		WAL: true, WALDir: dir,
		// Nothing may flush on its own: the rows must survive in the log alone.
		FlushRows: 1 << 30, FlushBytes: 1 << 30, FlushInterval: time.Hour,
		CheckpointBytes: -1,
	}
	s1, ts1 := newTestServer(t, cfg)
	register(t, ts1.URL, droughtRequest())

	code, b := post(t, ts1.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV})
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	var ar api.AppendResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.WALSeq != 1 {
		t.Fatalf("append ack = %+v, want wal_seq 1", ar)
	}

	// Crash: stop the flusher without draining. The pending rows now exist
	// only in the fsynced log; the serving state never saw them.
	ent1 := entry(t, s1, "drought")
	if st := ent1.state.Load(); st.version() != 1 || st.rows() != 8 {
		t.Fatalf("pre-crash state = v%d/%d rows, the flusher ran early", st.version(), st.rows())
	}
	if err := ent1.ing.close(false); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Restart: re-registering the same name replays the log over the base.
	_, ts2 := newTestServer(t, cfg)
	register(t, ts2.URL, droughtRequest())
	if ds := datasetStats(t, ts2.URL, "drought"); ds.Rows != 10 || ds.WAL == nil || ds.WAL.LastSeq != 1 {
		t.Fatalf("recovered stats = %+v, want 10 rows with WAL at seq 1", ds)
	}

	// Reference: the same rows ingested synchronously, no WAL involved.
	_, ref := newTestServer(t, Config{})
	register(t, ref.URL, droughtRequest())
	if code, b := post(t, ref.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV}); code != http.StatusOK {
		t.Fatalf("reference append: %d %s", code, b)
	}

	complaint := "agg=mean measure=severity dir=low district=Raya year=1986"
	got := recommendBytes(t, ts2.URL, createSession(t, ts2.URL), complaint)
	want := recommendBytes(t, ref.URL, createSession(t, ref.URL), complaint)
	if !bytes.Equal(got, want) {
		t.Errorf("recovered recommendation differs from synchronous ingestion:\nrecovered: %s\nreference: %s", got, want)
	}

	// New appends continue the sequence past the replayed frames.
	code, b = post(t, ts2.URL+"/v1/datasets/drought/append",
		api.AppendRequest{CSV: "district,village,year,severity\nRaya,Bora,1986,3\n"})
	if code != http.StatusOK {
		t.Fatalf("post-recovery append: %d %s", code, b)
	}
	var ar2 api.AppendResponse
	if err := json.Unmarshal(b, &ar2); err != nil {
		t.Fatal(err)
	}
	if ar2.WALSeq != 2 {
		t.Errorf("post-recovery wal_seq = %d, want 2", ar2.WALSeq)
	}
}

// TestWALCheckpointTruncatesAndRecovers drives the log over CheckpointBytes,
// asserts the serving state checkpoints to a sequence-stamped .rst and the
// log truncates, then crashes and recovers from checkpoint + empty log —
// including the guarantee that fresh appends never reuse checkpointed
// sequence numbers.
func TestWALCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		WAL: true, WALDir: dir,
		FlushRows: 1, FlushBytes: 1 << 30, FlushInterval: time.Hour,
		CheckpointBytes: 1, // every quiescent flush checkpoints
	}
	s1, ts1 := newTestServer(t, cfg)
	register(t, ts1.URL, droughtRequest())
	ing := entry(t, s1, "drought").ing

	for i, csv := range []string{
		appendCSV,
		"district,village,year,severity\nRaya,Bora,1986,3\nRaya,Bora,1987,2\n",
	} {
		if code, b := post(t, ts1.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: csv}); code != http.StatusOK {
			t.Fatalf("append %d: %d %s", i, code, b)
		}
		want := uint64(i + 1)
		waitWAL(t, ing, fmt.Sprintf("checkpoint %d", want), func(ws *api.WALStatus) bool {
			// 13 is the wal header size: a truncated log holds nothing else.
			return quiescent(ws) && ws.FlushedSeq == want && ws.SizeBytes == 13
		})
	}

	// Exactly one checkpoint survives, stamped with the last folded sequence.
	cks, err := filepath.Glob(filepath.Join(dir, "drought.ckpt.*.rst"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 || !strings.HasSuffix(cks[0], "drought.ckpt.00000000000000000002.rst") {
		t.Fatalf("checkpoints on disk = %v, want exactly the seq-2 one", cks)
	}

	if err := entry(t, s1, "drought").ing.close(false); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, cfg)
	register(t, ts2.URL, droughtRequest())
	if ds := datasetStats(t, ts2.URL, "drought"); ds.Rows != 12 {
		t.Fatalf("recovered rows = %d, want 12 (checkpoint superseded the base CSV)", ds.Rows)
	}

	// The recovered log is empty, but its sequence numbering starts past the
	// checkpoint — a fresh append at seq ≤ 2 would be skipped on replay.
	code, b := post(t, ts2.URL+"/v1/datasets/drought/append",
		api.AppendRequest{CSV: "district,village,year,severity\nOfla,Dela,1986,5\n"})
	if code != http.StatusOK {
		t.Fatalf("post-recovery append: %d %s", code, b)
	}
	var ar api.AppendResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.WALSeq != 3 {
		t.Errorf("post-checkpoint wal_seq = %d, want 3", ar.WALSeq)
	}
}

// TestWALShardedCheckpointRecovers runs the same checkpoint-crash-recover
// cycle on a sharded dataset: the checkpoint is a partitioned .rst whose
// topology survives the restart.
func TestWALShardedCheckpointRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		WAL: true, WALDir: dir,
		FlushRows: 1, FlushBytes: 1 << 30, FlushInterval: time.Hour,
		CheckpointBytes: 1,
	}
	req := droughtRequest()
	req.Shards = 2

	s1, ts1 := newTestServer(t, cfg)
	register(t, ts1.URL, req)
	if code, b := post(t, ts1.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV}); code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	ing := entry(t, s1, "drought").ing
	waitWAL(t, ing, "sharded checkpoint", func(ws *api.WALStatus) bool {
		return quiescent(ws) && ws.FlushedSeq == 1 && ws.SizeBytes == 13
	})
	if err := ing.close(false); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, cfg)
	register(t, ts2.URL, req)
	ds := datasetStats(t, ts2.URL, "drought")
	if ds.Rows != 10 || ds.Shards != 2 {
		t.Fatalf("recovered stats = %d rows / %d shards, want 10 / 2", ds.Rows, ds.Shards)
	}
	id := createSession(t, ts2.URL)
	rec := recommendBytes(t, ts2.URL, id, "agg=mean measure=severity dir=low district=Raya year=1986")
	if !bytes.Contains(rec, []byte("Bala")) {
		t.Errorf("recovered sharded recommendation misses the appended village:\n%s", rec)
	}
}

// TestRetentionOverHTTP registers with a per-request retention window and
// asserts the initial pass, append-triggered passes and /v1/stats reporting.
func TestRetentionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := droughtRequest()
	req.Retention = "720h" // 30 days on a year-granularity dimension
	req.RetentionDim = "year"
	register(t, ts.URL, req)

	// Registration already enforced the window: the newest event is 1987, so
	// every 1986 row (4 of 8) fell behind the horizon.
	ds := datasetStats(t, ts.URL, "drought")
	if ds.Rows != 4 {
		t.Fatalf("rows after registration = %d, want 4 (1986 dropped)", ds.Rows)
	}
	if ds.Retention == nil {
		t.Fatal("stats has no retention block")
	}
	if ds.Retention.Dim != "year" || ds.Retention.DroppedRows != 4 || !strings.HasPrefix(ds.Retention.Horizon, "1986-12-02") {
		t.Errorf("retention status = %+v, want dim year, 4 dropped, horizon 1986-12-02", ds.Retention)
	}

	// A newer event advances the horizon: appending 1988 drops the 1987 rows.
	code, b := post(t, ts.URL+"/v1/datasets/drought/append",
		api.AppendRequest{CSV: "district,village,year,severity\nRaya,Bora,1988,3\n"})
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	ds = datasetStats(t, ts.URL, "drought")
	if ds.Rows != 1 || ds.Retention.DroppedRows != 8 {
		t.Errorf("after 1988 append: rows = %d dropped = %d, want 1 / 8", ds.Rows, ds.Retention.DroppedRows)
	}
	if !strings.HasPrefix(ds.Retention.Horizon, "1987-12-02") {
		t.Errorf("horizon = %q, want 1987-12-02…", ds.Retention.Horizon)
	}
}

func TestRetentionRegistrationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name            string
		window, dim     string
		wantInErrorBody string
	}{
		{"unparsable window", "soon", "year", "retention"},
		{"negative window", "-24h", "year", "retention"},
		{"missing dim", "720h", "", "retention dimension"},
		{"unknown dim", "720h", "epoch", "epoch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := droughtRequest()
			req.Name = "drought-" + strings.ReplaceAll(tc.name, " ", "-")
			req.Retention = tc.window
			req.RetentionDim = tc.dim
			code, b := post(t, ts.URL+"/v1/datasets", req)
			if code < 400 {
				t.Fatalf("registration succeeded (%d), want an error", code)
			}
			if !strings.Contains(string(b), tc.wantInErrorBody) {
				t.Errorf("error %s does not mention %q", b, tc.wantInErrorBody)
			}
		})
	}
}

// TestAppendCSVRowErrors pins the row/column context on append parse errors:
// a bad value is reported with its 1-based data row, its CSV line, and the
// offending column.
func TestAppendCSVRowErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, droughtRequest())

	cases := []struct {
		name string
		csv  string
		want []string
	}{
		{"bad measure on row 2",
			"district,village,year,severity\nRaya,Bala,1986,4\nRaya,Bala,1987,oops\n",
			[]string{`row 2 (line 3) column "severity"`}},
		{"non-finite on row 1",
			"district,village,year,severity\nRaya,Bala,1986,+Inf\n",
			[]string{`row 1 (line 2) column "severity"`, "non-finite"}},
		{"malformed quoting on row 2",
			"district,village,year,severity\nRaya,Bala,1986,4\n\"torn,Bala,1987,5\n",
			[]string{"reading append CSV row 2 (line 3)"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: tc.csv})
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", code, b)
			}
			var env struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(b, &env); err != nil {
				t.Fatal(err)
			}
			for _, want := range tc.want {
				if !strings.Contains(env.Error, want) {
					t.Errorf("error %q does not mention %q", env.Error, want)
				}
			}
		})
	}
}

// TestServerCloseDrainsPending is the graceful-shutdown contract: Close folds
// the pending micro-batch into the serving state before releasing the logs,
// and later appends fail instead of silently losing rows.
func TestServerCloseDrainsPending(t *testing.T) {
	s, ts := newTestServer(t, Config{
		WAL: true, WALDir: t.TempDir(),
		FlushRows: 1 << 30, FlushBytes: 1 << 30, FlushInterval: time.Hour,
		CheckpointBytes: -1,
	})
	register(t, ts.URL, droughtRequest())
	if code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV}); code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}

	ent := entry(t, s, "drought")
	if st := ent.state.Load(); st.rows() != 8 {
		t.Fatalf("rows folded before Close: %d", st.rows())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ent.state.Load(); st.rows() != 10 {
		t.Errorf("rows after Close = %d, want 10 (pending batch drained)", st.rows())
	}
	if _, err := s.Append("drought", []store.Row{{Dims: []string{"Raya", "Bora", "1986"}, Measures: []float64{1}}}); err == nil {
		t.Error("append after Close succeeded, want shutdown error")
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestConcurrentIngestRetentionSharded is the -race canary for the ingestion
// subsystem: concurrent recommends, micro-batched WAL appends, stats polls
// and event-time retention on a sharded, cube-enabled dataset. The appended
// 1988 rows advance the horizon mid-run, dropping the 1986 rows while
// recommends keep reading.
func TestConcurrentIngestRetentionSharded(t *testing.T) {
	s, ts := newTestServer(t, Config{
		WAL: true, WALDir: t.TempDir(),
		Shards:    2,
		FlushRows: 4, FlushBytes: 1 << 30, FlushInterval: 2 * time.Millisecond,
		CheckpointBytes: -1,
		Retention:       500 * 24 * time.Hour,
		RetentionDim:    "year",
	})
	register(t, ts.URL, droughtRequest())

	ids := []string{createSession(t, ts.URL), createSession(t, ts.URL)}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			url := ts.URL + "/v1/sessions/" + id + "/recommend"
			for i := 0; i < 8; i++ {
				// 1987 stays inside the window for the whole run, so this
				// complaint is always answerable.
				code, b := post(t, url, api.RecommendRequest{Complaint: "agg=mean measure=severity dir=low district=Ofla year=1987"})
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					errc <- fmt.Errorf("recommend: %d %s", code, b)
					return
				}
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			csv := fmt.Sprintf("district,village,year,severity\nRaya,New%02d,1988,%d\n", i, 3+i)
			code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: csv})
			if code != http.StatusOK {
				errc <- fmt.Errorf("append %d: %d %s", i, code, b)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if code, b := get(t, ts.URL+"/v1/stats"); code != http.StatusOK {
				errc <- fmt.Errorf("stats: %d %s", code, b)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	waitWAL(t, entry(t, s, "drought").ing, "final flush", quiescent)
	ds := datasetStats(t, ts.URL, "drought")
	// 8 base + 6 appended − 4 dropped (1986 fell 730 days behind 1988).
	if ds.Rows != 10 || ds.Shards != 2 {
		t.Errorf("final stats = %d rows / %d shards, want 10 / 2", ds.Rows, ds.Shards)
	}
	if ds.Retention == nil || ds.Retention.DroppedRows != 4 {
		t.Errorf("retention status = %+v, want 4 dropped rows", ds.Retention)
	}
	if ds.WAL == nil || ds.WAL.LastSeq != 6 || ds.WAL.DroppedRows != 0 {
		t.Errorf("WAL status = %+v, want last_seq 6 with nothing dropped", ds.WAL)
	}

	rec := recommendBytes(t, ts.URL, createSession(t, ts.URL), "agg=mean measure=severity dir=low district=Raya year=1988")
	if !bytes.Contains(rec, []byte("New05")) {
		t.Errorf("final recommendation misses the last appended village:\n%s", rec)
	}
}
