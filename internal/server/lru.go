package server

import (
	"container/list"
	"encoding/json"
	"strings"
	"sync"
)

// lruCache is a bounded, concurrency-safe LRU of encoded recommendations.
// Keys are session\x00state\x00complaint composites, so a whole session's
// entries share a prefix and can be dropped together when it drills or
// expires.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val json.RawMessage
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes a value, evicting the least recently used entry
// when over capacity.
func (c *lruCache) Add(key string, val json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// RemovePrefix drops every entry whose key starts with prefix (one session's
// entries, on drill or expiry).
func (c *lruCache) RemovePrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*lruEntry)
		if strings.HasPrefix(ent.key, prefix) {
			c.ll.Remove(el)
			delete(c.m, ent.key)
		}
		el = next
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
