package server

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU(2)
	c.Add("a", json.RawMessage(`1`))
	c.Add("b", json.RawMessage(`2`))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes the eviction victim
		t.Fatal("a missing")
	}
	c.Add("c", json.RawMessage(`3`))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUAddRefreshesValue(t *testing.T) {
	c := newLRU(2)
	c.Add("a", json.RawMessage(`1`))
	c.Add("a", json.RawMessage(`2`))
	v, ok := c.Get("a")
	if !ok || string(v) != `2` {
		t.Errorf("Get(a) = %q %v, want 2", v, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestLRURemovePrefix(t *testing.T) {
	c := newLRU(10)
	for i := 0; i < 3; i++ {
		c.Add(fmt.Sprintf("s1\x00k%d", i), json.RawMessage(`1`))
		c.Add(fmt.Sprintf("s2\x00k%d", i), json.RawMessage(`2`))
	}
	c.RemovePrefix("s1\x00")
	if c.Len() != 3 {
		t.Errorf("Len after RemovePrefix = %d, want 3", c.Len())
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(fmt.Sprintf("s1\x00k%d", i)); ok {
			t.Errorf("s1 entry %d survived", i)
		}
		if _, ok := c.Get(fmt.Sprintf("s2\x00k%d", i)); !ok {
			t.Errorf("s2 entry %d dropped", i)
		}
	}
}
