package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/reptile/api"
)

// writeSnapshotFiles persists the drought fixture as a plain and a 2-way
// partitioned .rst and returns both paths.
func writeSnapshotFiles(t *testing.T) (single, sharded string) {
	t.Helper()
	ds, err := data.ReadCSV(strings.NewReader(testCSV), "drought", []string{"severity"}, mustHierarchies(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	single = filepath.Join(dir, "single.rst")
	if err := store.FromDataset(ds).WriteFile(single); err != nil {
		t.Fatal(err)
	}
	set, err := shard.Partition(store.FromDataset(ds), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	sharded = filepath.Join(dir, "sharded.rst")
	if err := set.WriteFile(sharded); err != nil {
		t.Fatal(err)
	}
	return single, sharded
}

// TestMappedIOServing registers plain and partitioned snapshots on a
// MappedIO server, asserting stats report the open mode and zero resident
// column bytes, recommendations match an eager server byte for byte, and
// appends are rejected with 422 (mapped snapshots cannot grow).
func TestMappedIOServing(t *testing.T) {
	single, sharded := writeSnapshotFiles(t)
	for _, tc := range []struct {
		name string
		path string
	}{{"single", single}, {"sharded", sharded}} {
		t.Run(tc.name, func(t *testing.T) {
			var recs []json.RawMessage
			for _, mapped := range []bool{false, true} {
				_, ts := newTestServer(t, Config{MappedIO: mapped})
				code, b := post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{Name: "drought", Path: tc.path, EMIterations: 4})
				if code != http.StatusCreated {
					t.Fatalf("register (mapped=%v): %d %s", mapped, code, b)
				}

				code, b = get(t, ts.URL+"/v1/stats")
				if code != http.StatusOK {
					t.Fatalf("stats: %d %s", code, b)
				}
				var st api.StatsResponse
				if err := json.Unmarshal(b, &st); err != nil {
					t.Fatal(err)
				}
				d := st.Datasets["drought"]
				wantMode, wantResident := "eager", d.Rows > 0
				if mapped {
					wantMode, wantResident = "mapped", false
				}
				if d.OpenMode != wantMode {
					t.Errorf("open_mode = %q, want %q", d.OpenMode, wantMode)
				}
				if (d.ResidentColumnBytes > 0) != wantResident {
					t.Errorf("resident_column_bytes = %d (mapped=%v)", d.ResidentColumnBytes, mapped)
				}

				code, b = post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Dataset: "drought", GroupBy: []string{"district", "year"}})
				if code != http.StatusCreated {
					t.Fatalf("session: %d %s", code, b)
				}
				var sess api.Session
				if err := json.Unmarshal(b, &sess); err != nil {
					t.Fatal(err)
				}
				code, b = post(t, ts.URL+"/v1/sessions/"+sess.ID+"/recommend", api.RecommendRequest{Complaint: testComplaint})
				if code != http.StatusOK {
					t.Fatalf("recommend (mapped=%v): %d %s", mapped, code, b)
				}
				var rr api.RecommendResponse
				if err := json.Unmarshal(b, &rr); err != nil {
					t.Fatal(err)
				}
				recs = append(recs, rr.Recommendation)

				appendCSV := "district,village,year,severity\nOfla,Adishim,1988,5\n"
				code, b = post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV})
				if mapped {
					if code != http.StatusUnprocessableEntity {
						t.Fatalf("append to mapped dataset: %d %s, want 422", code, b)
					}
					var e api.Error
					if err := json.Unmarshal(b, &e); err != nil || !strings.Contains(e.Message, "re-open it eagerly") {
						t.Errorf("append error envelope = %s, want re-open hint", b)
					}
				} else if code != http.StatusOK {
					t.Fatalf("append to eager dataset: %d %s", code, b)
				}
			}
			if !bytes.Equal(recs[0], recs[1]) {
				t.Errorf("mapped and eager servers served different bytes:\neager:  %.300s\nmapped: %.300s", recs[0], recs[1])
			}
		})
	}
}

// TestMappedIOCSVRegistrationStaysEager checks -mmap leaves CSV
// registrations untouched: they parse into memory and report eager.
func TestMappedIOCSVRegistrationStaysEager(t *testing.T) {
	_, ts := newTestServer(t, Config{MappedIO: true})
	registerTestDataset(t, ts.URL)
	code, b := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	d := st.Datasets["drought"]
	if d.OpenMode != "eager" || d.ResidentColumnBytes == 0 {
		t.Errorf("CSV dataset on a MappedIO server: open_mode=%q resident=%d, want eager with resident bytes", d.OpenMode, d.ResidentColumnBytes)
	}
}
