package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/reptile/api"
)

// statusWriter captures the response status (and, through writeError, the api
// error code) of one request so the instrumentation middleware can count
// errors by class rather than by bare HTTP status.
type statusWriter struct {
	http.ResponseWriter
	status int
	code   api.ErrorCode
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// newRequestID returns a fresh request correlation id (echoed in the
// X-Reptile-Request-Id header and the request log).
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r_unavailable"
	}
	return "r_" + hex.EncodeToString(b[:])
}

// instrument wraps one route with the observability middleware: request and
// in-flight counters, the latency histogram, per-error-code counters, a
// request id header, optional structured request logging, and — on the
// recommend endpoint — a stage trace carried in the request context for both
// the handler's serving-layer spans and the engine's SpanRecorder seam.
func (s *Server) instrument(ep obs.Endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := s.obs.Endpoint(ep)
		m.Requests.Add(1)
		m.InFlight.Add(1)
		defer m.InFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		reqID := newRequestID()
		sw.Header().Set("X-Reptile-Request-Id", reqID)
		var tr *obs.Trace
		if ep == obs.EndpointRecommend {
			tr = obs.NewTrace()
			// The trace rides the context twice: once for the serving-layer
			// spans (TraceFrom), once as the engine's SpanRecorder so
			// internal/core records its pipeline phases without importing obs.
			ctx := obs.ContextWithTrace(r.Context(), tr)
			ctx = core.WithSpanRecorder(ctx, tr)
			r = r.WithContext(ctx)
		}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		m.Latency.Observe(d)
		if tr != nil {
			s.obs.ObserveStages(tr.Stages())
		}
		if sw.status >= 400 {
			code := sw.code
			if code == "" {
				code = api.CodeForStatus(sw.status)
			}
			m.RecordError(code)
		}
		if lg := s.cfg.RequestLog; lg != nil {
			lg.Info("request",
				"id", reqID,
				"endpoint", ep.String(),
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_ms", float64(d)/float64(time.Millisecond),
			)
		}
	}
}

// handleMetrics serves the Prometheus text exposition: every endpoint's
// request/error/in-flight counters and latency histogram, the recommend
// pipeline's per-stage totals, and registry-level gauges. The handler takes
// no recommendation slot, so metrics stay scrapable while every dataset is at
// its concurrency limit.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweepExpiredLocked(s.now())
	nd, ns := len(s.engines), len(s.sessions)
	s.mu.Unlock()
	cs := s.cacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WriteProm(w, []obs.Gauge{
		{Name: "reptile_datasets", Help: "Registered datasets.", Value: float64(nd)},
		{Name: "reptile_sessions", Help: "Live drill-down sessions.", Value: float64(ns)},
		{Name: "reptile_recommend_cache_entries", Help: "Recommendation cache size in entries.", Value: float64(cs.Size)},
	})
}

// serverInfo identifies the process for GET /v1/stats.
func (s *Server) serverInfo() api.ServerInfo {
	return api.ServerInfo{
		Version:       s.cfg.Version,
		GoVersion:     runtime.Version(),
		StartTime:     s.obs.Start.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(s.obs.Start).Seconds(),
	}
}

// latencySummary derives the stats-payload quantile summary from a histogram
// snapshot.
func latencySummary(snap obs.HistSnapshot) api.LatencySummary {
	toMS := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return api.LatencySummary{
		Count:  snap.Count,
		MeanMS: toMS(snap.Mean()),
		P50MS:  toMS(snap.Quantile(0.5)),
		P95MS:  toMS(snap.Quantile(0.95)),
		P99MS:  toMS(snap.Quantile(0.99)),
		MaxMS:  toMS(snap.Max),
	}
}

// endpointStats snapshots every endpoint that has seen traffic for the stats
// payload.
func (s *Server) endpointStats() map[string]api.EndpointStats {
	out := make(map[string]api.EndpointStats)
	for e := obs.Endpoint(0); e < obs.NumEndpoints; e++ {
		m := s.obs.Endpoint(e)
		if m.Requests.Load() == 0 {
			continue
		}
		es := api.EndpointStats{
			Requests: m.Requests.Load(),
			InFlight: m.InFlight.Load(),
			Latency:  latencySummary(m.Latency.Snapshot()),
		}
		if errs := m.Errors(); len(errs) > 0 {
			es.Errors = errs
		}
		if hits, misses := m.CacheHits.Load(), m.CacheMisses.Load(); hits+misses > 0 {
			es.Cache = &api.CacheStats{Hits: hits, Misses: misses}
		}
		out[e.String()] = es
	}
	return out
}

// stageStats snapshots the recommend pipeline's aggregated per-stage timings.
func (s *Server) stageStats() []api.StageStats {
	totals := s.obs.StageTotals()
	out := make([]api.StageStats, len(totals))
	for i, st := range totals {
		totalMS := float64(st.Total) / float64(time.Millisecond)
		mean := 0.0
		if st.Count > 0 {
			mean = totalMS / float64(st.Count)
		}
		out[i] = api.StageStats{Name: st.Name, Count: st.Count, TotalMS: totalMS, MeanMS: mean}
	}
	return out
}
