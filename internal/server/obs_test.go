package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/reptile/api"
)

// promLine matches one Prometheus text-format sample:
// name{labels} value  or  name value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.eE+-]+(Inf)?$`)

// TestMetricsExposition scrapes /v1/metrics after real traffic and checks
// the exposition is well-formed Prometheus text covering every endpoint.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := registerTestDataset(t, ts.URL)
	if code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint}); code != http.StatusOK {
		t.Fatalf("recommend: %d %s", code, b)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every line is a comment or a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	// Every endpoint label appears in the request counter, even untouched
	// ones (pre-rendered at zero so dashboards see the full set).
	for e := obs.Endpoint(0); e < obs.NumEndpoints; e++ {
		want := fmt.Sprintf("reptile_requests_total{endpoint=%q}", e)
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %s", want)
		}
	}

	// The recommend that ran shows up in the counter, the histogram and the
	// stage totals.
	for _, want := range []string{
		`reptile_requests_total{endpoint="recommend"} 1`,
		`reptile_request_duration_seconds_count{endpoint="recommend"} 1`,
		`reptile_request_duration_seconds_bucket{endpoint="recommend",le="+Inf"} 1`,
		`reptile_cache_requests_total{endpoint="recommend",outcome="miss"} 1`,
		`reptile_stage_requests_total{stage="evaluate"} 1`,
		`reptile_uptime_seconds `,
		`reptile_datasets 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

// TestStatsServerInfoAndEndpointCounters checks the JSON twin of the metrics
// data: server identity, per-endpoint counters and latency summaries, and
// the recommendation-cache hit/miss counters at both endpoint and dataset
// granularity.
func TestStatsServerInfoAndEndpointCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "v-test"})
	id := registerTestDataset(t, ts.URL)
	for i := 0; i < 2; i++ { // second request is a cache hit
		if code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
			api.RecommendRequest{Complaint: testComplaint}); code != http.StatusOK {
			t.Fatalf("recommend %d: %d %s", i, code, b)
		}
	}

	code, b := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var sr api.StatsResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}

	if sr.Server.Version != "v-test" {
		t.Errorf("server.version = %q, want v-test", sr.Server.Version)
	}
	if sr.Server.GoVersion != runtime.Version() {
		t.Errorf("server.go_version = %q, want %q", sr.Server.GoVersion, runtime.Version())
	}
	if _, err := time.Parse(time.RFC3339, sr.Server.StartTime); err != nil {
		t.Errorf("server.start_time %q: %v", sr.Server.StartTime, err)
	}
	if sr.Server.UptimeSeconds <= 0 {
		t.Errorf("server.uptime_seconds = %v, want > 0", sr.Server.UptimeSeconds)
	}

	rec, ok := sr.Endpoints["recommend"]
	if !ok {
		t.Fatalf("stats endpoints = %v, missing recommend", sr.Endpoints)
	}
	if rec.Requests != 2 {
		t.Errorf("recommend requests = %d, want 2", rec.Requests)
	}
	if rec.Latency.Count != 2 || rec.Latency.P50MS <= 0 || rec.Latency.MaxMS < rec.Latency.P50MS {
		t.Errorf("recommend latency summary = %+v", rec.Latency)
	}
	if rec.Cache == nil || rec.Cache.Hits != 1 || rec.Cache.Misses != 1 {
		t.Errorf("recommend cache = %+v, want 1 hit / 1 miss", rec.Cache)
	}
	if len(sr.Stages) == 0 {
		t.Error("stats has no stage totals")
	}

	ds, ok := sr.Datasets["drought"]
	if !ok {
		t.Fatalf("stats datasets = %+v, missing drought", sr.Datasets)
	}
	if ds.Cache == nil || ds.Cache.Hits != 1 || ds.Cache.Misses != 1 {
		t.Errorf("dataset cache = %+v, want 1 hit / 1 miss", ds.Cache)
	}
}

// TestStatsExemptFromRecommendLimiter locks in that observability endpoints
// never ride the recommend admission limiter: with the dataset's only slot
// occupied, recommends answer 429 while /v1/stats and /v1/metrics stay 200 —
// saturation must be observable, not self-concealing.
func TestStatsExemptFromRecommendLimiter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, QueueWait: -1})
	id := registerTestDataset(t, ts.URL)

	s.mu.Lock()
	ent := s.engines["drought"]
	s.mu.Unlock()
	ent.slots <- struct{}{}
	defer func() { <-ent.slots }()

	if code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint}); code != http.StatusTooManyRequests {
		t.Fatalf("saturated recommend: %d %s, want 429", code, b)
	}
	if code, b := get(t, ts.URL+"/v1/stats"); code != http.StatusOK {
		t.Errorf("stats under saturation: %d %s, want 200", code, b)
	}
	if code, b := get(t, ts.URL+"/v1/metrics"); code != http.StatusOK {
		t.Errorf("metrics under saturation: %d %s, want 200", code, b)
	}

	// The 429s are visible in the exposition.
	_, b := get(t, ts.URL+"/v1/metrics")
	if want := `reptile_request_errors_total{endpoint="recommend",code="overloaded"} 1`; !strings.Contains(string(b), want) {
		t.Errorf("exposition is missing %q", want)
	}
}

// TestTracedRecommendStages requests per-stage timings and checks both
// transports (response body and X-Reptile-Trace header) and the exclusive
// decomposition's accounting: stage durations must cover at least 90% of the
// request's wall time and never exceed it.
func TestTracedRecommendStages(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A heavier EM budget keeps evaluate comfortably above the fixed
	// per-request overhead, so the 90% coverage bound is not timing noise.
	register(t, ts.URL, api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 256,
	})
	id := createSession(t, ts.URL)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+id+"/recommend",
		strings.NewReader(`{"complaint":"`+testComplaint+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Reptile-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced recommend: %d", resp.StatusCode)
	}

	var rr api.RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Stages) == 0 {
		t.Fatal("traced response has no stages")
	}
	var sum float64
	stages := make(map[string]bool)
	for _, st := range rr.Stages {
		sum += st.DurationMS
		stages[st.Name] = true
	}
	for _, want := range []string{"bind", "decode", "cache", "evaluate", "encode"} {
		if !stages[want] {
			t.Errorf("stages %v are missing %q", rr.Stages, want)
		}
	}

	hdr := resp.Header.Get("X-Reptile-Trace")
	if hdr == "" {
		t.Fatal("response has no X-Reptile-Trace header")
	}
	last := hdr[strings.LastIndex(hdr, "total;dur=")+len("total;dur="):]
	total, err := strconv.ParseFloat(last, 64)
	if err != nil {
		t.Fatalf("parsing total from header %q: %v", hdr, err)
	}
	if sum > total*1.001 {
		t.Errorf("stage sum %.3fms exceeds wall time %.3fms", sum, total)
	}
	if sum < total*0.9 {
		t.Errorf("stage sum %.3fms covers under 90%% of wall time %.3fms", sum, total)
	}

	// An untraced request carries neither stages nor the header.
	code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("untraced recommend: %d %s", code, b)
	}
	var plain api.RecommendResponse
	if err := json.Unmarshal(b, &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Stages) != 0 {
		t.Errorf("untraced response carries stages: %+v", plain.Stages)
	}
}

// TestMetricsScrapeDuringShardedIngest is a data-race canary (run under
// -race in CI): /v1/metrics and /v1/stats are scraped continuously while a
// sharded WAL-backed dataset serves concurrent recommends and micro-batched
// appends.
func TestMetricsScrapeDuringShardedIngest(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Shards: 2, CacheSize: -1,
		WAL: true, WALDir: t.TempDir(),
		FlushRows: 2, FlushInterval: 5 * time.Millisecond,
	})
	code, b := post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 2, Workers: 2,
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, b)
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, b := post(t, ts.URL+"/v1/sessions",
				api.CreateSessionRequest{Dataset: "drought", GroupBy: []string{"district", "year"}})
			if code != http.StatusCreated {
				t.Errorf("session: %d %s", code, b)
				return
			}
			var sess api.Session
			if err := json.Unmarshal(b, &sess); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 5; i++ {
				code, b := post(t, ts.URL+"/v1/sessions/"+sess.ID+"/recommend",
					api.RecommendRequest{Complaint: testComplaint})
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("recommend: %d %s", code, b)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			csv := fmt.Sprintf("district,village,year,severity\nOfla,Adishim,19%d,5\n", 90+i)
			code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: csv})
			if code != http.StatusOK {
				t.Errorf("append: %d %s", code, b)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if code, b := get(t, ts.URL+"/v1/metrics"); code != http.StatusOK {
				t.Errorf("metrics scrape: %d %s", code, b)
				return
			}
			if code, b := get(t, ts.URL+"/v1/stats"); code != http.StatusOK {
				t.Errorf("stats scrape: %d %s", code, b)
				return
			}
		}
	}()
	wg.Wait()
}
