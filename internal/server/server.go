// Package server exposes Reptile's explanation engine as a long-lived HTTP
// JSON service. A resident server amortizes state that one-shot CLI runs pay
// for on every query: datasets load once into a registry of shared
// core.Engines, drill-down sessions persist across requests with TTL-based
// expiry, repeated complaints are answered from an LRU cache keyed by
// (session drill state, complaint), and a per-engine limiter bounds
// concurrent Recommend calls so floods degrade to 429s instead of
// oversubscribing the worker pool.
//
// Datasets live in the registry as immutable store.Snapshot versions with a
// shared engine per version. POST /v1/datasets/{name}/append ingests rows:
// the successor snapshot and engine build while traffic continues on the
// current version, then swap in atomically; the dataset's cached
// recommendations are invalidated, sessions rebind to the new version on
// their next request, and evaluations already in flight finish on the old
// one.
//
// Every request and response body is a type of the public wire-protocol
// package reptile/api, and every non-2xx response carries its structured
// error envelope, so the native Go client (reptile/client) and any
// third-party client share one protocol definition with the server.
//
// Endpoints:
//
//	POST   /v1/datasets                  register a CSV or .rst dataset
//	GET    /v1/datasets                  list registered datasets
//	POST   /v1/datasets/{name}/append    append rows, hot-swapping the engine
//	POST   /v1/sessions                  start a drill-down session
//	DELETE /v1/sessions/{id}             release a session explicitly
//	POST   /v1/sessions/{id}/recommend   evaluate a complaint
//	POST   /v1/sessions/{id}/drill       accept a recommendation
//	GET    /v1/stats                     per-dataset versions, cube status,
//	                                     session, cache, endpoint and stage
//	                                     counters
//	GET    /v1/metrics                   Prometheus text exposition
//	GET    /healthz                      liveness + registry/cache statistics
//
// Every route runs behind the observability middleware (internal/obs):
// per-endpoint request/error/in-flight counters and latency histograms, plus
// a per-request stage trace on the recommend pipeline.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/reptile/api"
)

// Config tunes the server. The zero value selects sensible defaults.
type Config struct {
	// SessionTTL is how long an idle session survives; every request against
	// a session renews it. Default 15 minutes.
	SessionTTL time.Duration
	// CacheSize bounds the recommendation LRU in entries. 0 selects the
	// default (256); negative disables caching.
	CacheSize int
	// MaxInflight caps concurrent Recommend evaluations per engine; excess
	// requests wait QueueWait and then answer 429. Each admitted request
	// fans out onto its own pool of the engine's Workers goroutines, so
	// MaxInflight × Workers bounds a dataset's evaluation goroutines. 0
	// defaults to the engine's worker-pool size.
	MaxInflight int
	// QueueWait is how long an over-limit Recommend waits for a slot before
	// answering 429. Default 100ms; negative means fail immediately.
	QueueWait time.Duration
	// DisableCube skips materializing rollup cubes for registered datasets.
	// By default every snapshot version gets one immutable cube, shared by
	// all sessions, that answers hierarchy-prefix group-bys from precomputed
	// cells; snapshots the cube subsystem declines (or .rst files without a
	// stored cube when disabled) serve from row scans instead.
	DisableCube bool
	// Shards ≥ 2 partitions every registered dataset into that many shards
	// and serves it through the sharded scatter-gather engine. Individual
	// registrations can override it per request. 0 or 1 serves unsharded.
	Shards int
	// ShardKey names the default partition dimension; it must be the root
	// attribute of one of the dataset's hierarchies. Empty selects the first
	// hierarchy's root.
	ShardKey string
	// MappedIO serves registered .rst files (partitioned or not) out of
	// memory-mapped column payloads instead of decoding them onto the heap:
	// per-dataset residency stays O(dictionaries + cube) rather than O(rows),
	// so snapshots larger than RAM serve with flat RSS. Version-1 files fall
	// back to an eager load; CSV registrations are unaffected (they are
	// encoded in memory and have no file to map). Mapped datasets reject
	// appends — re-register eagerly to ingest.
	MappedIO bool
	// WAL enables per-dataset write-ahead logging with micro-batched ingestion:
	// every append commits its rows to <WALDir>/<dataset>.wal (fsynced before
	// the request is acknowledged) and returns immediately; a background
	// flusher coalesces pending rows into one snapshot rebuild per micro-batch.
	// On restart, re-registering a dataset under the same name replays the log
	// (on top of the newest checkpoint, when one exists), so every acknowledged
	// row survives a crash. Mapped datasets, which reject appends, are served
	// without a log.
	WAL bool
	// WALDir is the directory holding logs and checkpoint snapshots.
	// Default ".".
	WALDir string
	// FlushRows, FlushBytes and FlushInterval bound a micro-batch: the flusher
	// folds pending rows into the serving state as soon as either size
	// threshold is crossed, and no later than FlushInterval after they were
	// logged. Defaults: 256 rows, 1 MiB, 200ms.
	FlushRows     int
	FlushBytes    int
	FlushInterval time.Duration
	// CheckpointBytes triggers a checkpoint once a dataset's log outgrows this
	// many bytes: the serving state is serialized to <dataset>.ckpt.<seq>.rst
	// (the filename carries the last folded sequence number, so one rename
	// commits data and position together) and the log is truncated. Default
	// 8 MiB; negative disables checkpointing, the log then grows unbounded.
	CheckpointBytes int64
	// Retention bounds every registered dataset's history: rows whose event
	// time on RetentionDim falls more than the window behind the dataset's
	// newest event are dropped at the next flush, producing a new snapshot
	// version. Individual registrations can override both fields. 0 keeps
	// all rows. The horizon is event-time based, never wall-clock, so a
	// paused feed loses nothing.
	Retention    time.Duration
	RetentionDim string
	// Version is the build identifier reported by /v1/stats (and printed by
	// reptiled -version); empty when unset.
	Version string
	// RequestLog, when non-nil, receives one structured entry per request:
	// request id, endpoint, method, path, status, and latency.
	RequestLog *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.QueueWait == 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.WALDir == "" {
		c.WALDir = "."
	}
	if c.FlushRows <= 0 {
		c.FlushRows = 256
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 1 << 20
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 8 << 20
	}
	return c
}

// ErrDuplicateDataset reports a name collision in the dataset registry.
var ErrDuplicateDataset = errors.New("dataset already registered")

// maxSessionTTL caps client-requested session lifetimes.
const maxSessionTTL = 24 * time.Hour

// engineState is one immutable version of a registered dataset: the snapshot
// (or partitioned shard set) it was built from and the engine serving it.
// Exactly one of snap and set is non-nil. Appends build a new state and swap
// the pointer; readers that loaded the old state keep using it until they
// finish.
type engineState struct {
	eng  *core.Engine
	snap *store.Snapshot // unsharded serving
	set  *shard.Set      // sharded serving
}

// version returns the state's snapshot version (shared by every shard).
func (st *engineState) version() uint64 {
	if st.set != nil {
		return st.set.Version()
	}
	return st.snap.Version
}

// rows returns the total row count across all shards.
func (st *engineState) rows() int {
	if st.set != nil {
		return st.set.TotalRows()
	}
	return st.snap.NumRows()
}

// schema returns a snapshot describing the dataset's columns and hierarchies
// (the first shard's, by convention, when sharded).
func (st *engineState) schema() *store.Snapshot {
	if st.set != nil {
		return st.set.Snaps[0]
	}
	return st.snap
}

// openMode reports how the state's snapshots hold their columns: "mapped"
// (memory-mapped .rst payloads, decoded lazily) or "eager" (heap slices).
// Sharded sets share one mapping, so the first shard speaks for all.
func (st *engineState) openMode() string {
	if st.schema().Mapped() {
		return "mapped"
	}
	return "eager"
}

// residentColumnBytes sums the heap bytes of materialized column payloads
// across the state's snapshots — 0 when mapped, the payloads stay on disk.
func (st *engineState) residentColumnBytes() int64 {
	if st.set != nil {
		var n int64
		for _, sn := range st.set.Snaps {
			n += sn.ResidentColumnBytes()
		}
		return n
	}
	return st.snap.ResidentColumnBytes()
}

// engineEntry is one registered dataset: its atomically swappable engine
// state plus the recommendation limiter.
type engineEntry struct {
	name string
	opts core.Options
	// state is the current engine version. Load it once per request; a
	// concurrent append swaps in a successor without disturbing loads.
	state atomic.Pointer[engineState]
	// appendMu serializes appends so concurrent batches cannot both build on
	// the same base version and lose one of the two. It also guards builder,
	// whose per-dimension value indexes stay warm across appends.
	appendMu sync.Mutex
	builder  *store.Builder
	// slots is the per-engine Recommend limiter: acquire before evaluating,
	// release after. Capacity is Config.MaxInflight (default: the engine's
	// worker count).
	slots chan struct{}
	// ing is the dataset's WAL-backed ingestion pipeline (log + micro-batch
	// flusher); nil when the dataset takes synchronous appends.
	ing *ingester
	// retWindow and retDim configure time-window retention, fixed at
	// registration (0 window = keep everything). retMu guards the running
	// enforcement counters below, which appends update and stats read.
	retWindow  time.Duration
	retDim     string
	retMu      sync.Mutex
	retDropped uint64
	retHorizon time.Time
	// cacheHits and cacheMiss count recommendation-cache outcomes for this
	// dataset alone (the server-wide counters live on Server).
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64
}

// acquire claims a recommendation slot, waiting up to wait. It returns false
// when the engine stays saturated (the caller answers 429) or the request is
// canceled.
func (e *engineEntry) acquire(ctx context.Context, wait time.Duration) bool {
	select {
	case e.slots <- struct{}{}:
		return true
	default:
	}
	if wait <= 0 {
		return false
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case e.slots <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (e *engineEntry) release() { <-e.slots }

// session is one client's drill-down state bound to a registered engine.
// A session pins the engine version it last evaluated against: when an
// append hot-swaps the dataset, the next lookup rebinds the session to the
// new version (preserving its drill state) while any in-flight Recommend
// finishes on the old one.
type session struct {
	id     string
	engine *engineEntry
	sess   *core.Session
	// version is the snapshot version sess was built against; guarded by
	// Server.mu like deadline.
	version uint64
	ttl     time.Duration
	// deadline is guarded by Server.mu; every successful lookup renews it.
	deadline time.Time
}

// Server is the HTTP serving layer. Create with New; it is safe for
// concurrent use.
type Server struct {
	cfg Config
	now func() time.Time // swapped by expiry tests

	mu       sync.Mutex
	engines  map[string]*engineEntry
	sessions map[string]*session

	cache     *lruCache // nil when caching is disabled
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64

	// obs holds the per-endpoint counters, latency histograms and stage
	// aggregates behind GET /v1/metrics and the stats endpoint blocks.
	obs *obs.Registry
}

// New builds a server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		now:      time.Now,
		engines:  make(map[string]*engineEntry),
		sessions: make(map[string]*session),
		obs:      obs.NewRegistry(),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRU(cfg.CacheSize)
	}
	return s
}

// regConfig is one registration's effective tuning: shard topology, engine
// options and retention window, each defaulted from the server Config and
// overridable per request.
type regConfig struct {
	shards    int
	shardKey  string
	retention time.Duration
	retDim    string
	opts      core.Options
}

// regDefaults seeds a registration's tuning from the server configuration.
func (s *Server) regDefaults(opts core.Options) regConfig {
	return regConfig{
		shards:    s.cfg.Shards,
		shardKey:  s.cfg.ShardKey,
		retention: s.cfg.Retention,
		retDim:    s.cfg.RetentionDim,
		opts:      opts,
	}
}

// RegisterDataset adds a named dataset to the registry. The dataset is
// dictionary-encoded into a store.Snapshot first, so the shared engine runs
// over code-backed columns and the dataset can later take appends. It is the
// programmatic twin of POST /v1/datasets (preloading, tests).
func (s *Server) RegisterDataset(name string, ds *data.Dataset, opts core.Options) error {
	return s.RegisterSnapshot(name, store.FromDataset(ds), opts)
}

// RegisterSnapshot adds a named columnar snapshot to the registry, building
// its shared engine. Unless Config.DisableCube is set, the snapshot's rollup
// cube is materialized first (or adopted from the .rst file it was loaded
// from), so every session over this version shares one immutable cube and
// hierarchy-prefix group-bys never rescan rows. When Config.Shards asks for
// sharded serving, the snapshot is partitioned first.
func (s *Server) RegisterSnapshot(name string, snap *store.Snapshot, opts core.Options) error {
	return s.registerSnapshot(name, snap, s.regDefaults(opts))
}

// registerSnapshot registers a snapshot under rc's topology: shards ≥ 2
// partitions on shardKey (defaulted to the first hierarchy's root when
// empty), anything less serves unsharded. With Config.WAL set, the dataset's
// durable state recovers first — the newest checkpoint supersedes snap, the
// log's surviving batches fold in — so a re-registration after a crash
// serves every acknowledged row.
func (s *Server) registerSnapshot(name string, snap *store.Snapshot, rc regConfig) error {
	// Fail duplicate names before paying for recovery, partitioning, cube or
	// engine construction; finishRegister rechecks under the same lock.
	if err := s.checkName(name); err != nil {
		return err
	}
	var ing *ingester
	if s.cfg.WAL && !snap.Mapped() {
		var set *shard.Set
		var err error
		ing, snap, set, err = s.recoverDataset(name, snap)
		if err != nil {
			return err
		}
		if set != nil {
			// The checkpoint was written by a sharded serving state; its
			// topology wins over the requested one.
			return s.registerSet(name, set, rc, ing)
		}
	}
	if rc.shards >= 2 {
		set, err := shard.Partition(snap, rc.shards, rc.shardKey)
		if err != nil {
			return abandonIngest(ing, err)
		}
		return s.registerSet(name, set, rc, ing)
	}
	if !s.cfg.DisableCube {
		if err := snap.BuildCube(); err != nil {
			return abandonIngest(ing, err)
		}
	}
	ds, err := snap.Dataset()
	if err != nil {
		return abandonIngest(ing, err)
	}
	eng, err := core.NewEngine(ds, rc.opts)
	if err != nil {
		return abandonIngest(ing, err)
	}
	return s.finishRegister(name, rc, &engineState{eng: eng, snap: snap}, store.NewBuilder(snap), ing)
}

// RegisterSharded adds a pre-partitioned dataset to the registry, building
// one engine that scatters aggregations across the set's shards. Unless
// Config.DisableCube is set, every shard gets its own rollup cube. With
// Config.WAL set, durable state recovers first, exactly as for unsharded
// registrations.
func (s *Server) RegisterSharded(name string, set *shard.Set, opts core.Options) error {
	return s.registerShardedRC(name, set, s.regDefaults(opts))
}

// registerShardedRC is RegisterSharded with explicit per-registration tuning.
func (s *Server) registerShardedRC(name string, set *shard.Set, rc regConfig) error {
	if err := s.checkName(name); err != nil {
		return err
	}
	var ing *ingester
	if s.cfg.WAL && !set.Snaps[0].Mapped() {
		var err error
		ing, set, err = s.recoverSet(name, set)
		if err != nil {
			return err
		}
	}
	return s.registerSet(name, set, rc, ing)
}

// registerSet builds the scatter-gather engine over a recovered (or fresh)
// shard set and inserts it.
func (s *Server) registerSet(name string, set *shard.Set, rc regConfig, ing *ingester) error {
	if !s.cfg.DisableCube {
		if err := set.BuildCubes(); err != nil {
			return abandonIngest(ing, err)
		}
	}
	eng, err := set.Engine(rc.opts)
	if err != nil {
		return abandonIngest(ing, err)
	}
	return s.finishRegister(name, rc, &engineState{eng: eng, set: set}, nil, ing)
}

// checkName rejects empty and already-registered dataset names.
func (s *Server) checkName(name string) error {
	if name == "" {
		return fmt.Errorf("server: dataset needs a name")
	}
	s.mu.Lock()
	_, dup := s.engines[name]
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("server: %w: %q", ErrDuplicateDataset, name)
	}
	return nil
}

// finishRegister validates retention against the built state, wires it into
// the registry under name, attaches the ingestion pipeline, and runs the
// first retention pass. Duplicate names are rechecked under the lock, so a
// racing twin still gets the conflict, just after doing the work. builder is
// nil for sharded datasets — their appends route through shard.Set.Append
// instead.
func (s *Server) finishRegister(name string, rc regConfig, st *engineState, builder *store.Builder, ing *ingester) error {
	if rc.retention > 0 {
		if rc.retDim == "" {
			return abandonIngest(ing, fmt.Errorf("server: dataset %q: a retention window needs a retention dimension", name))
		}
		if _, _, err := store.MaxEventTime(st.schema(), rc.retDim); err != nil {
			return abandonIngest(ing, err)
		}
	}
	max := s.cfg.MaxInflight
	if max <= 0 {
		// Default to the engine's resolved pool size, so admission matches
		// the workers a Recommend actually fans out onto.
		max = st.eng.Workers()
	}
	ent := &engineEntry{
		name: name, opts: rc.opts, slots: make(chan struct{}, max), builder: builder,
		ing: ing, retWindow: rc.retention, retDim: rc.retDim,
	}
	ent.state.Store(st)
	s.mu.Lock()
	if _, dup := s.engines[name]; dup {
		s.mu.Unlock()
		return abandonIngest(ing, fmt.Errorf("server: %w: %q", ErrDuplicateDataset, name))
	}
	s.engines[name] = ent
	s.mu.Unlock()
	if ing != nil {
		ing.start(ent)
	}
	// Enforce retention on the freshly registered (possibly just-recovered)
	// state, so a window configured while the server was down applies before
	// the first query, not after the first append.
	ent.appendMu.Lock()
	err := s.retainLocked(ent)
	ent.appendMu.Unlock()
	return err
}

// Append ingests rows into a registered dataset: it builds the successor
// snapshot (or shard set) and engine off to the side (no registry or entry
// lock held while serving traffic continues on the current version),
// atomically swaps the new state in, and invalidates the dataset's cached
// recommendations. On a sharded dataset, each row routes to the shard its
// key value owns, untouched shards are shared wholesale, and per-shard cubes
// are delta-merged rather than rebuilt. Sessions rebind to the new version
// on their next request; a Recommend already in flight finishes on the
// version it loaded. Concurrent Appends to the same dataset serialize.
// When the dataset is WAL-backed, Append instead commits the rows to the log
// and returns the state still serving — the flusher folds them in moments
// later (use the HTTP layer's wal_seq/pending_rows to observe the lag).
func (s *Server) Append(name string, rows []store.Row) (*engineState, error) {
	s.mu.Lock()
	ent, ok := s.engines[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: unknown dataset %q", name)
	}
	if ent.ing != nil {
		if _, _, err := ent.ing.enqueue(rows); err != nil {
			return nil, err
		}
		return ent.state.Load(), nil
	}
	return s.applySync(ent, rows)
}

// applySync folds rows into ent's serving state synchronously: append,
// retention pass, atomic swap, cache invalidation. It is the terminal apply
// path for both synchronous appends and the micro-batch flusher. Concurrent
// applies to the same dataset serialize on appendMu.
func (s *Server) applySync(ent *engineEntry, rows []store.Row) (*engineState, error) {
	ent.appendMu.Lock()
	defer ent.appendMu.Unlock()
	if _, err := s.applyRowsLocked(ent, rows); err != nil {
		return nil, err
	}
	if err := s.retainLocked(ent); err != nil {
		// The rows landed; a failing retention pass (validated away at
		// registration, so effectively a bug) must not fail the append.
		ent.recordRetainError(err)
	}
	s.invalidateDataset(ent)
	return ent.state.Load(), nil
}

// applyRowsLocked builds the successor state from rows and swaps it in.
// Callers hold ent.appendMu. Zero rows is a no-op returning the current
// state.
func (s *Server) applyRowsLocked(ent *engineEntry, rows []store.Row) (*engineState, error) {
	if len(rows) == 0 {
		return ent.state.Load(), nil
	}
	var swapped *engineState
	if st := ent.state.Load(); st.set != nil {
		// Sharded: Set.Append never mutates its receiver, so a failed build
		// leaves the served state exactly as it was — no rewind needed.
		nextSet, err := st.set.Append(rows)
		if err != nil {
			return nil, err
		}
		eng, err := nextSet.Engine(ent.opts)
		if err != nil {
			return nil, err
		}
		swapped = &engineState{eng: eng, set: nextSet}
		ent.state.Store(swapped)
	} else {
		next, err := ent.builder.Append(rows)
		if err != nil {
			return nil, err
		}
		ds, err := next.Dataset()
		if err == nil {
			var eng *core.Engine
			if eng, err = core.NewEngine(ds, ent.opts); err == nil {
				swapped = &engineState{eng: eng, snap: next}
				ent.state.Store(swapped)
			}
		}
		if err != nil {
			// The builder advanced past the served state; rewind it so the
			// next append builds on what clients actually see.
			ent.builder = store.NewBuilder(ent.state.Load().snap)
			return nil, err
		}
	}
	return swapped, nil
}

// invalidateDataset drops every cached recommendation belonging to the
// dataset's sessions after a hot swap. In-flight evaluations of the old
// version guard their own inserts with a state re-check, and a rebound
// session's state key rests on the new engine, so nothing stale can be
// re-inserted under a live key.
func (s *Server) invalidateDataset(ent *engineEntry) {
	s.mu.Lock()
	if s.cache != nil {
		for _, sess := range s.sessions {
			if sess.engine == ent {
				s.cache.RemovePrefix(sess.id + "\x00")
			}
		}
	}
	s.mu.Unlock()
}

// Handler returns the server's HTTP routes, each wrapped in the
// observability middleware (see instrument). Neither stats nor metrics ever
// takes a recommendation slot, so both stay readable while every dataset is
// answering 429s.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument(obs.EndpointHealthz, s.handleHealthz))
	mux.HandleFunc("GET /v1/stats", s.instrument(obs.EndpointStats, s.handleStats))
	mux.HandleFunc("GET /v1/metrics", s.instrument(obs.EndpointMetricsScrape, s.handleMetrics))
	mux.HandleFunc("POST /v1/datasets", s.instrument(obs.EndpointRegister, s.handleRegisterDataset))
	mux.HandleFunc("GET /v1/datasets", s.instrument(obs.EndpointListDatasets, s.handleListDatasets))
	mux.HandleFunc("POST /v1/datasets/{name}/append", s.instrument(obs.EndpointAppend, s.handleAppend))
	mux.HandleFunc("POST /v1/sessions", s.instrument(obs.EndpointCreateSession, s.handleCreateSession))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument(obs.EndpointReleaseSession, s.handleReleaseSession))
	mux.HandleFunc("POST /v1/sessions/{id}/recommend", s.instrument(obs.EndpointRecommend, s.handleRecommend))
	mux.HandleFunc("POST /v1/sessions/{id}/drill", s.instrument(obs.EndpointDrill, s.handleDrill))
	return mux
}

// sessionView is one request's consistent snapshot of a session: the
// core.Session and engine version captured under the registry lock, so a
// concurrent hot-swap rebinding the session cannot tear the request's view.
type sessionView struct {
	id      string
	engine  *engineEntry
	cs      *core.Session
	version uint64
}

// lookupSession resolves a live session, renewing its TTL. Expired sessions
// are removed (with their cache entries) and reported as session_expired
// (410 Gone). If the dataset was hot-swapped since the session's last
// request, the session is rebound to the current engine version, preserving
// its drill state; any request already evaluating keeps the old version's
// view.
func (s *Server) lookupSession(id string) (sessionView, api.ErrorCode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return sessionView{}, api.CodeSessionNotFound, fmt.Errorf("unknown session %q", id)
	}
	now := s.now()
	if now.After(sess.deadline) {
		s.dropSessionLocked(sess)
		return sessionView{}, api.CodeSessionExpired, fmt.Errorf("session %q expired", id)
	}
	sess.deadline = now.Add(sess.ttl)
	if st := sess.engine.state.Load(); st.version() != sess.version {
		cs, err := st.eng.NewSession(sess.sess.GroupBy())
		if err != nil {
			// Appends never change the schema, so the old drill state always
			// transfers; failure here means a bug, not bad client input.
			return sessionView{}, api.CodeInternal,
				fmt.Errorf("rebinding session %q to dataset version %d: %w", id, st.version(), err)
		}
		sess.sess = cs
		sess.version = st.version()
	}
	return sessionView{id: sess.id, engine: sess.engine, cs: sess.sess, version: sess.version}, "", nil
}

// dropSessionLocked removes a session and invalidates its cached
// recommendations. Callers hold s.mu.
func (s *Server) dropSessionLocked(sess *session) {
	delete(s.sessions, sess.id)
	if s.cache != nil {
		s.cache.RemovePrefix(sess.id + "\x00")
	}
}

// sweepExpiredLocked reaps every expired session. Callers hold s.mu. Expiry
// is lazy: the sweep runs on session creation and health checks, and
// individual lookups reap their own session, so no janitor goroutine is
// needed to bound the table.
func (s *Server) sweepExpiredLocked(now time.Time) {
	for _, sess := range s.sessions {
		if now.After(sess.deadline) {
			s.dropSessionLocked(sess)
		}
	}
}

// newSessionID returns a fresh unguessable session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random session id: %v", err))
	}
	return "s_" + hex.EncodeToString(b[:])
}
