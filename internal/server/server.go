// Package server exposes Reptile's explanation engine as a long-lived HTTP
// JSON service. A resident server amortizes state that one-shot CLI runs pay
// for on every query: datasets load once into a registry of shared
// core.Engines, drill-down sessions persist across requests with TTL-based
// expiry, repeated complaints are answered from an LRU cache keyed by
// (session drill state, complaint), and a per-engine limiter bounds
// concurrent Recommend calls so floods degrade to 429s instead of
// oversubscribing the worker pool.
//
// Endpoints:
//
//	POST /v1/datasets                   register a CSV dataset
//	POST /v1/sessions                   start a drill-down session
//	POST /v1/sessions/{id}/recommend    evaluate a complaint
//	POST /v1/sessions/{id}/drill        accept a recommendation
//	GET  /healthz                       liveness + registry/cache statistics
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
)

// Config tunes the server. The zero value selects sensible defaults.
type Config struct {
	// SessionTTL is how long an idle session survives; every request against
	// a session renews it. Default 15 minutes.
	SessionTTL time.Duration
	// CacheSize bounds the recommendation LRU in entries. 0 selects the
	// default (256); negative disables caching.
	CacheSize int
	// MaxInflight caps concurrent Recommend evaluations per engine; excess
	// requests wait QueueWait and then answer 429. Each admitted request
	// fans out onto its own pool of the engine's Workers goroutines, so
	// MaxInflight × Workers bounds a dataset's evaluation goroutines. 0
	// defaults to the engine's worker-pool size.
	MaxInflight int
	// QueueWait is how long an over-limit Recommend waits for a slot before
	// answering 429. Default 100ms; negative means fail immediately.
	QueueWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.QueueWait == 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	return c
}

// ErrDuplicateDataset reports a name collision in the dataset registry.
var ErrDuplicateDataset = errors.New("dataset already registered")

// maxSessionTTL caps client-requested session lifetimes.
const maxSessionTTL = 24 * time.Hour

// engineEntry is one registered dataset: a shared engine plus its
// recommendation limiter.
type engineEntry struct {
	name string
	eng  *core.Engine
	// slots is the per-engine Recommend limiter: acquire before evaluating,
	// release after. Capacity is Config.MaxInflight (default: the engine's
	// worker count).
	slots chan struct{}
}

// acquire claims a recommendation slot, waiting up to wait. It returns false
// when the engine stays saturated (the caller answers 429) or the request is
// canceled.
func (e *engineEntry) acquire(ctx context.Context, wait time.Duration) bool {
	select {
	case e.slots <- struct{}{}:
		return true
	default:
	}
	if wait <= 0 {
		return false
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case e.slots <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (e *engineEntry) release() { <-e.slots }

// session is one client's drill-down state bound to a registered engine.
type session struct {
	id     string
	engine *engineEntry
	sess   *core.Session
	ttl    time.Duration
	// deadline is guarded by Server.mu; every successful lookup renews it.
	deadline time.Time
}

// Server is the HTTP serving layer. Create with New; it is safe for
// concurrent use.
type Server struct {
	cfg Config
	now func() time.Time // swapped by expiry tests

	mu       sync.Mutex
	engines  map[string]*engineEntry
	sessions map[string]*session

	cache     *lruCache // nil when caching is disabled
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64
}

// New builds a server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		now:      time.Now,
		engines:  make(map[string]*engineEntry),
		sessions: make(map[string]*session),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRU(cfg.CacheSize)
	}
	return s
}

// RegisterDataset adds a named dataset to the registry, building its shared
// engine. It is the programmatic twin of POST /v1/datasets (preloading,
// tests).
func (s *Server) RegisterDataset(name string, ds *data.Dataset, opts core.Options) error {
	if name == "" {
		return fmt.Errorf("server: dataset needs a name")
	}
	// Fail duplicate names before paying for engine construction; the insert
	// below rechecks under the same lock, so a racing twin still gets the
	// conflict, just after doing the work.
	s.mu.Lock()
	_, dup := s.engines[name]
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("server: %w: %q", ErrDuplicateDataset, name)
	}
	eng, err := core.NewEngine(ds, opts)
	if err != nil {
		return err
	}
	max := s.cfg.MaxInflight
	if max <= 0 {
		// Default to the engine's resolved pool size, so admission matches
		// the workers a Recommend actually fans out onto.
		max = eng.Workers()
	}
	ent := &engineEntry{name: name, eng: eng, slots: make(chan struct{}, max)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.engines[name]; dup {
		return fmt.Errorf("server: %w: %q", ErrDuplicateDataset, name)
	}
	s.engines[name] = ent
	return nil
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("POST /v1/sessions/{id}/recommend", s.handleRecommend)
	mux.HandleFunc("POST /v1/sessions/{id}/drill", s.handleDrill)
	return mux
}

// lookupSession resolves a live session, renewing its TTL. Expired sessions
// are removed (with their cache entries) and reported as 410 Gone.
func (s *Server) lookupSession(id string) (*session, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown session %q", id)
	}
	now := s.now()
	if now.After(sess.deadline) {
		s.dropSessionLocked(sess)
		return nil, http.StatusGone, fmt.Errorf("session %q expired", id)
	}
	sess.deadline = now.Add(sess.ttl)
	return sess, 0, nil
}

// dropSessionLocked removes a session and invalidates its cached
// recommendations. Callers hold s.mu.
func (s *Server) dropSessionLocked(sess *session) {
	delete(s.sessions, sess.id)
	if s.cache != nil {
		s.cache.RemovePrefix(sess.id + "\x00")
	}
}

// sweepExpiredLocked reaps every expired session. Callers hold s.mu. Expiry
// is lazy: the sweep runs on session creation and health checks, and
// individual lookups reap their own session, so no janitor goroutine is
// needed to bound the table.
func (s *Server) sweepExpiredLocked(now time.Time) {
	for _, sess := range s.sessions {
		if now.After(sess.deadline) {
			s.dropSessionLocked(sess)
		}
	}
}

// newSessionID returns a fresh unguessable session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random session id: %v", err))
	}
	return "s_" + hex.EncodeToString(b[:])
}
