package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/reptile/api"
)

const testCSV = "district,village,year,severity\n" +
	"Ofla,Adishim,1986,8\nOfla,Adishim,1987,7\nOfla,Zata,1986,2\nOfla,Zata,1987,7\n" +
	"Raya,Kukufto,1986,8\nRaya,Kukufto,1987,6\nRaya,Mehoni,1986,7\nRaya,Mehoni,1987,6\n"

const testHierarchies = "geo:district,village;time:year"

const testComplaint = "agg=mean measure=severity dir=low district=Ofla year=1986"

// newTestServer starts an HTTP test server around a fresh Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the status code and response bytes.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// registerTestDataset registers the drought CSV and returns a session id.
func registerTestDataset(t *testing.T, base string) string {
	t.Helper()
	code, b := post(t, base+"/v1/datasets", api.RegisterDatasetRequest{
		Name:         "drought",
		CSV:          testCSV,
		Measures:     []string{"severity"},
		Hierarchies:  testHierarchies,
		EMIterations: 4,
	})
	if code != http.StatusCreated {
		t.Fatalf("register dataset: %d %s", code, b)
	}
	code, b = post(t, base+"/v1/sessions", api.CreateSessionRequest{
		Dataset: "drought",
		GroupBy: []string{"district", "year"},
	})
	if code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, b)
	}
	var sr api.Session
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID == "" || sr.State != "geo:1|time:1" {
		t.Fatalf("session response = %+v", sr)
	}
	return sr.ID
}

func TestEndToEndRecommendMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := registerTestDataset(t, ts.URL)

	code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("recommend: %d %s", code, b)
	}
	var rr api.RecommendResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Cache != "miss" || rr.State != "geo:1|time:1" {
		t.Errorf("envelope = cache %q state %q", rr.Cache, rr.State)
	}

	// The served recommendation must be byte-identical to an in-process
	// Session.Recommend over the same dataset and options.
	hs, err := data.ParseHierarchySpec(testHierarchies)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.ReadCSV(strings.NewReader(testCSV), "drought", []string{"severity"}, hs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds, core.Options{EMIterations: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession([]string{"district", "year"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.ParseComplaint(testComplaint)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Recommend(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rr.Recommendation, want) {
		t.Errorf("served recommendation differs from direct result:\nserved: %s\ndirect: %s",
			rr.Recommendation, want)
	}
}

func TestRecommendCacheHitAndDrillInvalidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := registerTestDataset(t, ts.URL)
	url := ts.URL + "/v1/sessions/" + id + "/recommend"

	code, first := post(t, url, api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("first recommend: %d %s", code, first)
	}
	var r1 api.RecommendResponse
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cache != "miss" {
		t.Errorf("first call cache = %q, want miss", r1.Cache)
	}

	// The identical complaint is served from the cache, byte-identically.
	code, second := post(t, url, api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("second recommend: %d %s", code, second)
	}
	var r2 api.RecommendResponse
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Cache != "hit" {
		t.Errorf("second call cache = %q, want hit", r2.Cache)
	}
	if !bytes.Equal(r1.Recommendation, r2.Recommendation) {
		t.Error("cached recommendation differs from computed one")
	}

	// Equivalent complaint spelled differently (tuple order) also hits.
	code, b := post(t, url, api.RecommendRequest{
		Complaint: "year=1986 district=Ofla agg=mean measure=severity dir=low"})
	if code != http.StatusOK {
		t.Fatalf("reordered recommend: %d %s", code, b)
	}
	var r3 api.RecommendResponse
	if err := json.Unmarshal(b, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cache != "hit" {
		t.Errorf("reordered complaint cache = %q, want hit", r3.Cache)
	}

	// The hit counter is observable via /healthz.
	code, b = get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, b)
	}
	var h api.HealthResponse
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Cache.Hits != 2 || h.Cache.Misses != 1 || h.Cache.Size != 1 {
		t.Errorf("cache stats = %+v, want 2 hits / 1 miss / size 1", h.Cache)
	}

	// Drilling invalidates the session's cached recommendations — and only
	// that session's: start a shallower second session, cache one result,
	// drill it, and check the first session's entry survives.
	code, b = post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Dataset: "drought", GroupBy: []string{"year"}})
	if code != http.StatusCreated {
		t.Fatalf("second session: %d %s", code, b)
	}
	var sr2 api.Session
	if err := json.Unmarshal(b, &sr2); err != nil {
		t.Fatal(err)
	}
	url2 := ts.URL + "/v1/sessions/" + sr2.ID + "/recommend"
	shallow := "agg=mean measure=severity dir=low year=1986"
	if code, b = post(t, url2, api.RecommendRequest{Complaint: shallow}); code != http.StatusOK {
		t.Fatalf("shallow recommend: %d %s", code, b)
	}
	if got := s.cache.Len(); got != 2 {
		t.Fatalf("cache entries before drill = %d, want 2", got)
	}
	code, b = post(t, ts.URL+"/v1/sessions/"+sr2.ID+"/drill", api.DrillRequest{Hierarchy: "geo"})
	if code != http.StatusOK {
		t.Fatalf("drill: %d %s", code, b)
	}
	var dr api.DrillResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.State != "geo:1|time:1" {
		t.Errorf("state after drill = %q", dr.State)
	}
	if got := s.cache.Len(); got != 1 {
		t.Errorf("cache entries after drill = %d, want 1 (other session's entry must survive)", got)
	}
	code, b = post(t, url2, api.RecommendRequest{Complaint: shallow})
	if code != http.StatusOK {
		t.Fatalf("post-drill recommend: %d %s", code, b)
	}
	var r4 api.RecommendResponse
	if err := json.Unmarshal(b, &r4); err != nil {
		t.Fatal(err)
	}
	if r4.Cache != "miss" || r4.State != "geo:1|time:1" {
		t.Errorf("post-drill envelope = cache %q state %q", r4.Cache, r4.State)
	}
}

func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := registerTestDataset(t, ts.URL)

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"bad JSON dataset", ts.URL + "/v1/datasets", "{not json", http.StatusBadRequest},
		{"bad JSON session", ts.URL + "/v1/sessions", "{not json", http.StatusBadRequest},
		{"bad JSON recommend", ts.URL + "/v1/sessions/" + id + "/recommend", "{not json", http.StatusBadRequest},
		{"bad JSON drill", ts.URL + "/v1/sessions/" + id + "/drill", "{not json", http.StatusBadRequest},
		{"dataset without source", ts.URL + "/v1/datasets",
			api.RegisterDatasetRequest{Name: "x", Measures: []string{"m"}, Hierarchies: "h:a"}, http.StatusBadRequest},
		{"dataset with two sources", ts.URL + "/v1/datasets",
			api.RegisterDatasetRequest{Name: "x", Path: "p", CSV: "c", Measures: []string{"m"}, Hierarchies: "h:a"}, http.StatusBadRequest},
		{"dataset without measures", ts.URL + "/v1/datasets",
			api.RegisterDatasetRequest{Name: "x", CSV: testCSV, Hierarchies: testHierarchies}, http.StatusBadRequest},
		{"dataset with bad hierarchy spec", ts.URL + "/v1/datasets",
			api.RegisterDatasetRequest{Name: "x", CSV: testCSV, Measures: []string{"severity"}, Hierarchies: "nocolon"}, http.StatusBadRequest},
		{"dataset with non-finite measure", ts.URL + "/v1/datasets",
			api.RegisterDatasetRequest{Name: "x", CSV: "a,m\nv,NaN\n", Measures: []string{"m"}, Hierarchies: "h:a"}, http.StatusBadRequest},
		{"duplicate dataset", ts.URL + "/v1/datasets",
			api.RegisterDatasetRequest{Name: "drought", CSV: testCSV, Measures: []string{"severity"}, Hierarchies: testHierarchies}, http.StatusConflict},
		{"unknown dataset", ts.URL + "/v1/sessions",
			api.CreateSessionRequest{Dataset: "nope"}, http.StatusNotFound},
		{"bad group-by", ts.URL + "/v1/sessions",
			api.CreateSessionRequest{Dataset: "drought", GroupBy: []string{"bogus"}}, http.StatusBadRequest},
		{"unknown session recommend", ts.URL + "/v1/sessions/s_nope/recommend",
			api.RecommendRequest{Complaint: testComplaint}, http.StatusNotFound},
		{"unknown session drill", ts.URL + "/v1/sessions/s_nope/drill",
			api.DrillRequest{Hierarchy: "geo"}, http.StatusNotFound},
		{"bad complaint", ts.URL + "/v1/sessions/" + id + "/recommend",
			api.RecommendRequest{Complaint: "agg=mean"}, http.StatusBadRequest},
		{"unknown measure", ts.URL + "/v1/sessions/" + id + "/recommend",
			api.RecommendRequest{Complaint: "agg=mean measure=bogus dir=low district=Ofla year=1986"}, http.StatusUnprocessableEntity},
		{"no provenance", ts.URL + "/v1/sessions/" + id + "/recommend",
			api.RecommendRequest{Complaint: "agg=mean measure=severity dir=low district=Nowhere year=1986"}, http.StatusUnprocessableEntity},
		{"unknown hierarchy drill", ts.URL + "/v1/sessions/" + id + "/drill",
			api.DrillRequest{Hierarchy: "nope"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, b := post(t, tc.url, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, b)
			continue
		}
		var er api.Error
		if err := json.Unmarshal(b, &er); err != nil || er.Message == "" {
			t.Errorf("%s: error body %q not a JSON error envelope", tc.name, b)
			continue
		}
		if er.Code == "" || er.Code.HTTPStatus() != tc.want {
			t.Errorf("%s: error code %q does not map to status %d", tc.name, er.Code, tc.want)
		}
	}
}

func TestSessionExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	id := registerTestDataset(t, ts.URL)

	// Jump the server clock past the deadline.
	s.mu.Lock()
	s.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	s.mu.Unlock()

	code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusGone {
		t.Fatalf("expired session: %d %s, want 410", code, b)
	}
	// The session is reaped: a second request sees 404, and healthz counts 0.
	code, _ = post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusNotFound {
		t.Fatalf("reaped session: %d, want 404", code)
	}
	code, hb := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	var h api.HealthResponse
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 0 {
		t.Errorf("healthz sessions = %d, want 0", h.Sessions)
	}
}

func TestSessionTTLRenewedByRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	id := registerTestDataset(t, ts.URL)

	base := time.Now()
	var cmu sync.Mutex
	clock := base
	s.mu.Lock()
	s.now = func() time.Time { cmu.Lock(); defer cmu.Unlock(); return clock }
	s.mu.Unlock()

	// Touch the session every 40s; it must survive well past one TTL.
	url := ts.URL + "/v1/sessions/" + id + "/recommend"
	for i := 0; i < 4; i++ {
		cmu.Lock()
		clock = base.Add(time.Duration(i) * 40 * time.Second)
		cmu.Unlock()
		if code, b := post(t, url, api.RecommendRequest{Complaint: testComplaint}); code != http.StatusOK {
			t.Fatalf("touch %d: %d %s", i, code, b)
		}
	}
}

func TestSessionTTLClamped(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerTestDataset(t, ts.URL)

	// A huge ttl_seconds must clamp instead of overflowing time.Duration
	// into the past (which created sessions that were born expired).
	code, b := post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{
		Dataset:    "drought",
		GroupBy:    []string{"district", "year"},
		TTLSeconds: int(^uint(0) >> 1), // max int
	})
	if code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, b)
	}
	var sr api.Session
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	sess := s.sessions[sr.ID]
	s.mu.Unlock()
	if sess == nil {
		t.Fatal("session not in table")
	}
	if sess.ttl != maxSessionTTL {
		t.Errorf("ttl = %v, want clamp to %v", sess.ttl, maxSessionTTL)
	}
	if !sess.deadline.After(time.Now()) {
		t.Errorf("deadline %v is in the past", sess.deadline)
	}
}

func TestRecommendLimiter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, QueueWait: -1})
	id := registerTestDataset(t, ts.URL)

	// Occupy the dataset's only slot, then flood: every request must answer
	// 429 immediately instead of queueing onto the engine.
	s.mu.Lock()
	ent := s.engines["drought"]
	s.mu.Unlock()
	ent.slots <- struct{}{}
	defer func() { <-ent.slots }()

	for i := 0; i < 3; i++ {
		code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
			api.RecommendRequest{Complaint: testComplaint})
		if code != http.StatusTooManyRequests {
			t.Fatalf("saturated recommend %d: %d %s, want 429", i, code, b)
		}
	}

	// Cache hits bypass the limiter: release the slot, compute once to fill
	// the cache, re-occupy, and the repeat must still be served.
	<-ent.slots
	if code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint}); code != http.StatusOK {
		t.Fatalf("warm-up recommend: %d %s", code, b)
	}
	ent.slots <- struct{}{}
	code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend",
		api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("cached recommend under saturation: %d %s, want 200", code, b)
	}
	var rr api.RecommendResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Cache != "hit" {
		t.Errorf("cache = %q, want hit", rr.Cache)
	}
}

// TestConcurrentRecommends hammers one engine from many goroutines (run
// under -race in CI): every response must be a valid 200 with the same
// recommendation bytes, interleaved with healthz polls.
func TestConcurrentRecommends(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueWait: 30 * time.Second})
	id := registerTestDataset(t, ts.URL)
	url := ts.URL + "/v1/sessions/" + id + "/recommend"

	// One serial request to pin the expected bytes.
	code, b := post(t, url, api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("seed recommend: %d %s", code, b)
	}
	var seed api.RecommendResponse
	if err := json.Unmarshal(b, &seed); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	complaints := []string{
		testComplaint,
		"agg=mean measure=severity dir=low district=Raya year=1987",
		"agg=count measure=severity dir=low district=Ofla year=1986",
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				spec := complaints[(g+i)%len(complaints)]
				code, b := postNoFatal(url, api.RecommendRequest{Complaint: spec})
				if code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d req %d: status %d: %s", g, i, code, b)
					continue
				}
				var rr api.RecommendResponse
				if err := json.Unmarshal(b, &rr); err != nil {
					errs <- fmt.Errorf("goroutine %d req %d: %v", g, i, err)
					continue
				}
				if spec == testComplaint && !bytes.Equal(rr.Recommendation, seed.Recommendation) {
					errs <- fmt.Errorf("goroutine %d req %d: recommendation bytes diverged", g, i)
				}
				if i%2 == 0 {
					if hc, hb := getNoFatal(ts.URL + "/healthz"); hc != http.StatusOK {
						errs <- fmt.Errorf("healthz: %d %s", hc, hb)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func postNoFatal(url string, body any) (int, []byte) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return 0, []byte(err.Error())
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func getNoFatal(url string) (int, []byte) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func TestRegisterDatasetValidatesEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// An FD violation inside a hierarchy must be rejected at registration.
	code, b := post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{
		Name:        "broken",
		CSV:         "district,village,m\nA,v1,1\nB,v1,2\n",
		Measures:    []string{"m"},
		Hierarchies: "geo:district,village",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("FD-violating dataset: %d %s, want 400", code, b)
	}
}

func TestCachingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	id := registerTestDataset(t, ts.URL)
	url := ts.URL + "/v1/sessions/" + id + "/recommend"
	for i := 0; i < 2; i++ {
		code, b := post(t, url, api.RecommendRequest{Complaint: testComplaint})
		if code != http.StatusOK {
			t.Fatalf("recommend %d: %d %s", i, code, b)
		}
		var rr api.RecommendResponse
		if err := json.Unmarshal(b, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Cache != "bypass" {
			t.Errorf("recommend %d cache = %q, want bypass", i, rr.Cache)
		}
	}
}

// del sends a DELETE and returns the status code and response bytes.
func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestListDatasets(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Empty registry lists as [], not null.
	code, b := get(t, ts.URL+"/v1/datasets")
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, b)
	}
	var lr api.ListDatasetsResponse
	if err := json.Unmarshal(b, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Datasets == nil || len(lr.Datasets) != 0 {
		t.Errorf("empty list = %q, want datasets: []", b)
	}

	registerTestDataset(t, ts.URL)
	// A second dataset sorting before "drought" proves name ordering.
	code, b = post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{
		Name: "aaa", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 4,
	})
	if code != http.StatusCreated {
		t.Fatalf("register aaa: %d %s", code, b)
	}

	code, b = get(t, ts.URL+"/v1/datasets")
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, b)
	}
	lr = api.ListDatasetsResponse{}
	if err := json.Unmarshal(b, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Datasets) != 2 || lr.Datasets[0].Name != "aaa" || lr.Datasets[1].Name != "drought" {
		t.Fatalf("list = %+v, want [aaa drought]", lr.Datasets)
	}
	d := lr.Datasets[1]
	if d.Rows != 8 || d.Version != 1 {
		t.Errorf("drought info = %+v, want 8 rows at version 1", d)
	}
	if len(d.Hierarchies) != 2 || d.Hierarchies[0] != "geo" || len(d.Measures) != 1 || d.Measures[0] != "severity" {
		t.Errorf("drought schema = %+v", d)
	}

	// An append is reflected in the listed version and row count.
	if code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV}); code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	_, b = get(t, ts.URL+"/v1/datasets")
	lr = api.ListDatasetsResponse{}
	if err := json.Unmarshal(b, &lr); err != nil {
		t.Fatal(err)
	}
	if d := lr.Datasets[1]; d.Version != 2 || d.Rows != 10 {
		t.Errorf("post-append drought info = %+v, want version 2 with 10 rows", d)
	}
}

func TestReleaseSession(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := registerTestDataset(t, ts.URL)

	// Warm the cache so release has entries to invalidate.
	if code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend", api.RecommendRequest{Complaint: testComplaint}); code != http.StatusOK {
		t.Fatalf("recommend: %d %s", code, b)
	}
	if n := s.cache.Len(); n != 1 {
		t.Fatalf("cache size before release = %d, want 1", n)
	}

	code, b := del(t, ts.URL+"/v1/sessions/"+id)
	if code != http.StatusNoContent {
		t.Fatalf("release: %d %s, want 204", code, b)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("cache size after release = %d, want 0", n)
	}

	// The TTL-table entry is freed: further use is 404, and so is a repeat
	// release.
	code, b = post(t, ts.URL+"/v1/sessions/"+id+"/recommend", api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusNotFound {
		t.Fatalf("recommend after release: %d %s, want 404", code, b)
	}
	var er api.Error
	if err := json.Unmarshal(b, &er); err != nil || er.Code != api.CodeSessionNotFound {
		t.Errorf("error envelope = %s, want code session_not_found", b)
	}
	if code, _ = del(t, ts.URL+"/v1/sessions/"+id); code != http.StatusNotFound {
		t.Errorf("double release: %d, want 404", code)
	}

	var h api.HealthResponse
	if _, hb := get(t, ts.URL+"/healthz"); json.Unmarshal(hb, &h) == nil && h.Sessions != 0 {
		t.Errorf("healthz sessions after release = %d, want 0", h.Sessions)
	}
}
