package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/reptile/api"
)

// recommendRaw drives one register → session → recommend flow and returns
// the recommendation's raw bytes plus the registration info.
func recommendRaw(t *testing.T, base string, reg api.RegisterDatasetRequest, groupBy []string, complaint string) ([]byte, api.DatasetInfo) {
	t.Helper()
	code, b := post(t, base+"/v1/datasets", reg)
	if code != http.StatusCreated {
		t.Fatalf("register dataset: %d %s", code, b)
	}
	var info api.DatasetInfo
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatal(err)
	}
	code, b = post(t, base+"/v1/sessions", api.CreateSessionRequest{Dataset: reg.Name, GroupBy: groupBy})
	if code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, b)
	}
	var sess api.Session
	if err := json.Unmarshal(b, &sess); err != nil {
		t.Fatal(err)
	}
	code, b = post(t, base+"/v1/sessions/"+sess.ID+"/recommend", api.RecommendRequest{Complaint: complaint})
	if code != http.StatusOK {
		t.Fatalf("recommend: %d %s", code, b)
	}
	var rr api.RecommendResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	return rr.Recommendation, info
}

// TestShardedServerMatchesUnsharded registers the same dataset on an
// unsharded server and on servers sharding at 2 and 4 (via the config
// default and via the per-request field) and asserts the recommendation
// bytes agree everywhere.
func TestShardedServerMatchesUnsharded(t *testing.T) {
	reg := api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 4,
	}
	groupBy := []string{"district", "year"}
	_, plain := newTestServer(t, Config{})
	want, info := recommendRaw(t, plain.URL, reg, groupBy, testComplaint)
	if info.Shards != 0 {
		t.Fatalf("unsharded registration reports %d shards", info.Shards)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
		req  api.RegisterDatasetRequest
		want int
	}{
		{"config-default", Config{Shards: 2}, reg, 2},
		{"request-override", Config{}, withShards(reg, 4, ""), 4},
		{"request-key", Config{}, withShards(reg, 2, "district"), 2},
		{"request-forces-unsharded", Config{Shards: 4}, withShards(reg, 1, ""), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.cfg)
			got, info := recommendRaw(t, ts.URL, tc.req, groupBy, testComplaint)
			if info.Shards != tc.want {
				t.Fatalf("registration reports %d shards, want %d", info.Shards, tc.want)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("sharded recommendation differs from unsharded:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

func withShards(reg api.RegisterDatasetRequest, n int, key string) api.RegisterDatasetRequest {
	reg.Shards, reg.ShardKey = n, key
	return reg
}

func TestShardedRegisterRejectsBadTopology(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reg := api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"}, Hierarchies: testHierarchies,
	}
	for name, req := range map[string]api.RegisterDatasetRequest{
		"negative-shards": withShards(reg, -1, ""),
		"non-root-key":    withShards(reg, 2, "village"),
		"unknown-key":     withShards(reg, 2, "nosuch"),
	} {
		if code, b := post(t, ts.URL+"/v1/datasets", req); code != http.StatusBadRequest {
			t.Errorf("%s: got %d %s, want 400", name, code, b)
		}
	}
}

// TestShardedStats pins the shard topology reported by GET /v1/stats: shard
// count, per-shard row counts summing to the total, and cube status
// aggregated across shards.
func TestShardedStats(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 2})
	ds, err := data.ReadCSV(strings.NewReader(testCSV), "drought", []string{"severity"}, mustHierarchies(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterDataset("drought", ds, core.Options{EMIterations: 4}); err != nil {
		t.Fatal(err)
	}
	code, b := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var stats api.StatsResponse
	if err := json.Unmarshal(b, &stats); err != nil {
		t.Fatal(err)
	}
	d, ok := stats.Datasets["drought"]
	if !ok {
		t.Fatalf("stats missing dataset: %s", b)
	}
	if d.Shards != 2 || len(d.ShardRows) != 2 {
		t.Fatalf("stats shards = %d, shard_rows = %v, want 2 shards", d.Shards, d.ShardRows)
	}
	if d.ShardRows[0]+d.ShardRows[1] != d.Rows || d.Rows != 8 {
		t.Fatalf("shard_rows %v do not sum to rows %d", d.ShardRows, d.Rows)
	}
	if !d.Cube.Present || d.Cube.Cells == 0 {
		t.Fatalf("sharded cube status = %+v, want present with cells", d.Cube)
	}
}

// TestShardedAppend exercises the sharded append path end to end: rows route
// to their owning shards, the version bumps, stats reflect the new per-shard
// row counts, and recommendations after the append still match an unsharded
// server fed the same sequence.
func TestShardedAppend(t *testing.T) {
	reg := api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 4,
	}
	appendCSV := "district,village,year,severity\n" +
		"Ofla,Fala,1986,4\nRaya,Wajirat,1987,5\nKola,Kewet,1986,6\n"
	run := func(cfg Config) ([]byte, api.AppendResponse) {
		_, ts := newTestServer(t, cfg)
		code, b := post(t, ts.URL+"/v1/datasets", reg)
		if code != http.StatusCreated {
			t.Fatalf("register: %d %s", code, b)
		}
		code, b = post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV})
		if code != http.StatusOK {
			t.Fatalf("append: %d %s", code, b)
		}
		var ar api.AppendResponse
		if err := json.Unmarshal(b, &ar); err != nil {
			t.Fatal(err)
		}
		code, b = post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Dataset: "drought", GroupBy: []string{"district", "year"}})
		if code != http.StatusCreated {
			t.Fatalf("session: %d %s", code, b)
		}
		var sess api.Session
		if err := json.Unmarshal(b, &sess); err != nil {
			t.Fatal(err)
		}
		code, b = post(t, ts.URL+"/v1/sessions/"+sess.ID+"/recommend", api.RecommendRequest{Complaint: testComplaint})
		if code != http.StatusOK {
			t.Fatalf("recommend: %d %s", code, b)
		}
		var rr api.RecommendResponse
		if err := json.Unmarshal(b, &rr); err != nil {
			t.Fatal(err)
		}
		return rr.Recommendation, ar
	}
	want, plainInfo := run(Config{})
	got, shardedInfo := run(Config{Shards: 3})
	if shardedInfo.Appended != 3 || shardedInfo.Rows != 11 || shardedInfo.Version != plainInfo.Version {
		t.Fatalf("sharded append response = %+v, want 3 appended, 11 rows, version %d",
			shardedInfo, plainInfo.Version)
	}
	if shardedInfo.Shards != 3 {
		t.Fatalf("append response reports %d shards, want 3", shardedInfo.Shards)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-append sharded recommendation differs from unsharded:\n%s\nvs\n%s", got, want)
	}
}

// TestShardedAppendRejectsCrossShardFD forces a hierarchy FD violation whose
// two witnesses land on different shards and expects 422.
func TestShardedAppendRejectsCrossShardFD(t *testing.T) {
	da := fmt.Sprintf("d%d", 0)
	db := ""
	for i := 1; i < 256; i++ {
		v := fmt.Sprintf("d%d", i)
		if shard.Owner(v, 2) != shard.Owner(da, 2) {
			db = v
			break
		}
	}
	if db == "" {
		t.Fatal("no owner split found")
	}
	csv := fmt.Sprintf("district,village,year,severity\n%s,V1,1986,1\n%s,V2,1986,2\n", da, db)
	_, ts := newTestServer(t, Config{Shards: 2})
	code, b := post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{
		Name: "fd", CSV: csv, Measures: []string{"severity"}, Hierarchies: testHierarchies,
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, b)
	}
	bad := fmt.Sprintf("district,village,year,severity\n%s,V1,1987,3\n", db)
	code, b = post(t, ts.URL+"/v1/datasets/fd/append", api.AppendRequest{CSV: bad})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("cross-shard FD append: %d %s, want 422", code, b)
	}
	var e api.Error
	if err := json.Unmarshal(b, &e); err != nil || e.Code != api.CodeUnprocessable {
		t.Fatalf("error envelope = %s", b)
	}
}

// TestRegisterPartitionedSnapshotFile registers a partitioned .rst file and
// expects sharded serving with the file's own topology.
func TestRegisterPartitionedSnapshotFile(t *testing.T) {
	ds, err := data.ReadCSV(strings.NewReader(testCSV), "drought", []string{"severity"}, mustHierarchies(t))
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Partition(store.FromDataset(ds), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "drought.rst")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	// A partitioned file carries its own topology: overriding it is a 400.
	code, b := post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{Name: "drought", Path: path, Shards: 4})
	if code != http.StatusBadRequest {
		t.Fatalf("topology override: %d %s, want 400", code, b)
	}
	code, b = post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{Name: "drought", Path: path, EMIterations: 4})
	if code != http.StatusCreated {
		t.Fatalf("register partitioned file: %d %s", code, b)
	}
	var info api.DatasetInfo
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 || info.Rows != 8 {
		t.Fatalf("partitioned registration = %+v, want 2 shards, 8 rows", info)
	}
	// And the engine behind it answers like the unsharded one.
	_, plain := newTestServer(t, Config{})
	want, _ := recommendRaw(t, plain.URL, api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 4,
	}, []string{"district", "year"}, testComplaint)
	code, b = post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Dataset: "drought", GroupBy: []string{"district", "year"}})
	if code != http.StatusCreated {
		t.Fatalf("session: %d %s", code, b)
	}
	var sess api.Session
	if err := json.Unmarshal(b, &sess); err != nil {
		t.Fatal(err)
	}
	code, b = post(t, ts.URL+"/v1/sessions/"+sess.ID+"/recommend", api.RecommendRequest{Complaint: testComplaint})
	if code != http.StatusOK {
		t.Fatalf("recommend: %d %s", code, b)
	}
	var rr api.RecommendResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rr.Recommendation, want) {
		t.Errorf("partitioned-file recommendation differs from unsharded:\n%s\nvs\n%s", rr.Recommendation, want)
	}
}

// TestShardedConcurrentRecommendAndAppend hammers a sharded dataset with
// concurrent recommends, drills and appends — primarily a data-race canary
// for the scatter-gather path under -race.
func TestShardedConcurrentRecommendAndAppend(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, CacheSize: -1})
	code, b := post(t, ts.URL+"/v1/datasets", api.RegisterDatasetRequest{
		Name: "drought", CSV: testCSV, Measures: []string{"severity"},
		Hierarchies: testHierarchies, EMIterations: 2, Workers: 2,
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, b)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			code, b := post(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{Dataset: "drought", GroupBy: []string{"district", "year"}})
			if code != http.StatusCreated {
				t.Errorf("session: %d %s", code, b)
				return
			}
			var sess api.Session
			if err := json.Unmarshal(b, &sess); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 5; i++ {
				code, b := post(t, ts.URL+"/v1/sessions/"+sess.ID+"/recommend", api.RecommendRequest{Complaint: testComplaint})
				// 429 is an acceptable answer under load; anything else
				// non-200 is a bug.
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("recommend: %d %s", code, b)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			csv := fmt.Sprintf("district,village,year,severity\nOfla,Adishim,19%d,5\n", 90+i)
			code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: csv})
			if code != http.StatusOK {
				t.Errorf("append: %d %s", code, b)
			}
		}(i)
	}
	wg.Wait()
}

func mustHierarchies(t *testing.T) []data.Hierarchy {
	t.Helper()
	hs, err := data.ParseHierarchySpec(testHierarchies)
	if err != nil {
		t.Fatal(err)
	}
	return hs
}
