package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/reptile/api"
)

// TestStatsEndpoint drives the full dataset lifecycle — register, recommend
// (miss then hit), append — and checks GET /v1/stats reports the snapshot
// version, cube status and cache counters at each step.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := registerTestDataset(t, ts.URL)

	fetch := func() api.StatsResponse {
		t.Helper()
		code, b := get(t, ts.URL+"/v1/stats")
		if code != http.StatusOK {
			t.Fatalf("stats: %d %s", code, b)
		}
		var resp api.StatsResponse
		if err := json.Unmarshal(b, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	st := fetch()
	d, ok := st.Datasets["drought"]
	if !ok {
		t.Fatalf("stats missing the registered dataset: %+v", st)
	}
	if d.Version != 1 || d.Rows != 8 || d.Sessions != 1 {
		t.Errorf("dataset stats = %+v, want version 1, 8 rows, 1 session", d)
	}
	// Registration materializes the shared cube: demo schema is a 3×2
	// lattice (geo: district,village × time: year).
	if !d.Cube.Present || d.Cube.Levels != 6 || d.Cube.Cells == 0 {
		t.Errorf("cube status = %+v, want present with 6 levels", d.Cube)
	}
	if st.Sessions != 1 {
		t.Errorf("sessions = %d, want 1", st.Sessions)
	}

	// One miss, one hit.
	url := ts.URL + "/v1/sessions/" + id + "/recommend"
	for i := 0; i < 2; i++ {
		if code, b := post(t, url, api.RecommendRequest{Complaint: testComplaint}); code != http.StatusOK {
			t.Fatalf("recommend: %d %s", code, b)
		}
	}
	st = fetch()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Size != 1 {
		t.Errorf("cache stats = %+v, want 1 hit, 1 miss, size 1", st.Cache)
	}

	// An append hot-swaps to version 2 and maintains the cube incrementally.
	if code, b := post(t, ts.URL+"/v1/datasets/drought/append", api.AppendRequest{CSV: appendCSV}); code != http.StatusOK {
		t.Fatalf("append: %d %s", code, b)
	}
	d = fetch().Datasets["drought"]
	if d.Version != 2 || d.Rows != 10 {
		t.Errorf("post-append stats = %+v, want version 2, 10 rows", d)
	}
	if !d.Cube.Present {
		t.Error("append dropped the cube")
	}
}

// TestStatsCubeDisabled checks DisableCube registrations report an absent
// cube and still serve.
func TestStatsCubeDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableCube: true})
	id := registerTestDataset(t, ts.URL)
	code, b := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var resp api.StatsResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if d := resp.Datasets["drought"]; d.Cube.Present || d.Cube.Levels != 0 {
		t.Errorf("cube status = %+v, want absent", d.Cube)
	}
	if code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend", api.RecommendRequest{Complaint: testComplaint}); code != http.StatusOK {
		t.Fatalf("recommend without cube: %d %s", code, b)
	}
}

// TestCubeAndScanServeIdenticalBytes registers the same dataset on a
// cube-enabled and a cube-disabled server and asserts the served
// recommendation bytes are identical — the serving-layer twin of the
// internal/cube fidelity sweep.
func TestCubeAndScanServeIdenticalBytes(t *testing.T) {
	var recs []json.RawMessage
	for _, disable := range []bool{false, true} {
		_, ts := newTestServer(t, Config{DisableCube: disable})
		id := registerTestDataset(t, ts.URL)
		code, b := post(t, ts.URL+"/v1/sessions/"+id+"/recommend", api.RecommendRequest{Complaint: testComplaint})
		if code != http.StatusOK {
			t.Fatalf("recommend (disable=%v): %d %s", disable, code, b)
		}
		var resp api.RecommendResponse
		if err := json.Unmarshal(b, &resp); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, resp.Recommendation)
	}
	if string(recs[0]) != string(recs[1]) {
		t.Errorf("cube-enabled and cube-disabled servers served different bytes:\ncube: %.300s\nscan: %.300s", recs[0], recs[1])
	}
}
