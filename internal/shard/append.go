package shard

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cube"
	"repro/internal/store"
)

// Append routes each row to its owning shard and returns the successor Set
// at Version+1, leaving the receiver untouched (callers that fail mid-swap
// keep serving the old Set unchanged). Dictionary growth happens once, in
// batch row order, and the grown dictionaries are shared by every shard of
// the successor; untouched shards share their code and measure slices with
// the predecessor and keep their cubes, touched shards merge a delta cube
// built over just their appended rows. A batch that violates a hierarchy
// functional dependency — within one shard or across shards — is rejected
// whole.
func (s *Set) Append(rows []store.Row) (*Set, error) {
	first := s.Snaps[0]
	if len(rows) == 0 {
		return s, nil
	}
	if first.Mapped() {
		// Extending mapped shards would materialize every column they share
		// with the successor, defeating the open mode's purpose.
		return nil, fmt.Errorf("shard: cannot append to memory-mapped set %q; re-open it eagerly to ingest", first.Name)
	}
	for i, r := range rows {
		if len(r.Dims) != len(first.Dims) || len(r.Measures) != len(first.Measures) {
			return nil, fmt.Errorf("shard: append row %d: arity mismatch: %d/%d dims, %d/%d measures",
				i, len(r.Dims), len(first.Dims), len(r.Measures), len(first.Measures))
		}
		for j, v := range r.Measures {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("shard: append row %d measure %q: non-finite value %v",
					i, first.Measures[j].Name, v)
			}
		}
	}
	keyIdx := -1
	for i, c := range first.Dims {
		if c.Name == s.Key {
			keyIdx = i
			break
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("shard: partition key %q is not a dimension of %q", s.Key, first.Name)
	}

	// Grow the shared dictionaries once, encoding the batch against them.
	// Full slice expressions pin capacity to length, so growth copies instead
	// of scribbling over the predecessor's backing arrays.
	dicts := make([][]string, len(first.Dims))
	batchCodes := make([][]uint32, len(first.Dims))
	for ci, c := range first.Dims {
		idx := make(map[string]uint32, len(c.Dict))
		for code, v := range c.Dict {
			idx[v] = uint32(code)
		}
		dict := c.Dict[:len(c.Dict):len(c.Dict)]
		codes := make([]uint32, len(rows))
		for ri, r := range rows {
			v := r.Dims[ci]
			code, ok := idx[v]
			if !ok {
				code = uint32(len(dict))
				dict = append(dict, v)
				idx[v] = code
			}
			codes[ri] = code
		}
		dicts[ci] = dict
		batchCodes[ci] = codes
	}

	// Route each batch row to its owning shard.
	n := len(s.Snaps)
	owners := make([]int, len(rows))
	perShard := make([][]int, n)
	for ri, r := range rows {
		si := Owner(r.Dims[keyIdx], n)
		owners[ri] = si
		perShard[si] = append(perShard[si], ri)
	}

	next := &Set{Key: s.Key, Snaps: make([]*store.Snapshot, n)}
	for si, base := range s.Snaps {
		newRows := perShard[si]
		dims := make([]store.Column, len(base.Dims))
		measures := make([]store.MeasureColumn, len(base.Measures))
		for ci, c := range base.Dims {
			codes := c.Codes
			if len(newRows) > 0 {
				codes = c.Codes[:len(c.Codes):len(c.Codes)]
				for _, ri := range newRows {
					codes = append(codes, batchCodes[ci][ri])
				}
			}
			dims[ci] = store.Column{Name: c.Name, Dict: dicts[ci], Codes: codes}
		}
		for mi, m := range base.Measures {
			vals := m.Values
			if len(newRows) > 0 {
				vals = m.Values[:len(m.Values):len(m.Values)]
				for _, ri := range newRows {
					vals = append(vals, rows[ri].Measures[mi])
				}
			}
			measures[mi] = store.MeasureColumn{Name: m.Name, Values: vals}
		}
		snap, err := store.NewSnapshot(base.Name, base.Version+1, base.Hierarchies, dims, measures, base.NumRows()+len(newRows))
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", si, err)
		}
		if err := carryCube(base, snap, len(newRows)); err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", si, err)
		}
		next.Snaps[si] = snap
	}
	if err := next.validateFDs(); err != nil {
		return nil, err
	}
	return next, nil
}

// carryCube maintains a shard's materialized cube across an append without
// rebuilding it: untouched shards keep the predecessor's cube as-is (it
// still aggregates exactly their rows), touched shards build a delta cube
// over just the appended rows and merge it (Stats.Add per shared cell,
// re-keying where grown dictionaries changed the radix space). When the
// successor falls outside what the cube subsystem materializes, it simply
// carries no cube and serving falls back to row scans on that shard.
func carryCube(base, next *store.Snapshot, appended int) error {
	bc := base.Cube()
	if bc == nil {
		return nil
	}
	if appended == 0 {
		next.AttachCube(bc)
		return nil
	}
	nds, err := next.Dataset()
	if err != nil {
		return err
	}
	delta, err := cube.BuildRows(nds, base.NumRows(), next.NumRows())
	if err == nil {
		var merged *cube.Cube
		if merged, err = bc.Merge(delta); err == nil {
			next.AttachCube(merged)
			return nil
		}
	}
	if errors.Is(err, cube.ErrNotCubable) {
		return nil
	}
	return err
}

// validateFDs checks every hierarchy functional dependency across the whole
// Set. Per-shard validation (store.NewSnapshot) sees only one shard's rows,
// so a violation whose two witnesses land on different shards — the child
// value lives in one shard, its conflicting re-parenting in another — slips
// through it; dictionaries are shared, so the cross-shard check runs over
// global codes without touching a string.
func (s *Set) validateFDs() error {
	first := s.Snaps[0]
	dimIdx := make(map[string]int, len(first.Dims))
	for i, c := range first.Dims {
		dimIdx[c.Name] = i
	}
	for _, h := range first.Hierarchies {
		for lvl := 1; lvl < len(h.Attrs); lvl++ {
			child, parent := h.Attrs[lvl], h.Attrs[lvl-1]
			ci, ok := dimIdx[child]
			if !ok {
				return fmt.Errorf("shard: hierarchy %q references unknown attribute %q", h.Name, child)
			}
			pi, ok := dimIdx[parent]
			if !ok {
				return fmt.Errorf("shard: hierarchy %q references unknown attribute %q", h.Name, parent)
			}
			const unset = -1
			parentOf := make([]int64, len(first.Dims[ci].Dict))
			for i := range parentOf {
				parentOf[i] = unset
			}
			for _, sn := range s.Snaps {
				cc, pc := sn.Dims[ci].Codes, sn.Dims[pi].Codes
				for row := range cc {
					c, p := cc[row], int64(pc[row])
					if prev := parentOf[c]; prev == unset {
						parentOf[c] = p
					} else if prev != p {
						return fmt.Errorf("shard: hierarchy %q: FD violation across shards: %s=%q maps to %s=%q and %q",
							h.Name, child, sn.Dims[ci].Dict[c], parent, sn.Dims[pi].Dict[prev], sn.Dims[pi].Dict[p])
					}
				}
			}
		}
	}
	return nil
}
