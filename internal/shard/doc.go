// Package shard partitions a dataset into N shards and assembles the sharded
// engine over them: each shard is its own store.Snapshot (and, optionally,
// its own cube.Cube) holding the rows whose shard-key value hashes to it, and
// the engine scatters every aggregation to per-shard workers and merges their
// partial (count, sum, sum-of-squares) statistics with agg.Stats.Add — the
// Appendix A merge function G — before any model fits. This is the
// decomposition-then-combine structure that makes Reptile's aggregates
// distributive, applied across process-internal partitions; the
// core.ShardWorker seam the engine talks through is the point a later change
// swaps local workers for remote shard servers speaking the wire protocol.
//
// # Partitioning
//
// Rows are routed by an FNV-1a hash of their shard-key value modulo the
// shard count. The key must be the root attribute of one of the dataset's
// hierarchies (the default is the first hierarchy's root), and dictionaries
// are shared across shards: a shard's columns hold codes into the same
// dictionary slices as its siblings, so partitioning costs one pass over the
// codes and no string is stored twice. Within a shard, rows keep their
// original relative order, which makes partitioning deterministic and
// per-shard scans reproducible.
//
// # Byte-identity
//
// Merging per-shard partials reassociates floating-point additions, so the
// sharded engine is byte-identical to the unsharded one exactly when no
// group's statistics are actually split across shards, or when splitting
// cannot lose bits:
//
//   - A grouping that includes the shard-key attribute is shard-pure: all
//     rows of a group share the key value and therefore hash to one shard,
//     so each group's partial is already the whole and the merge adds zeros.
//     Because the key is a hierarchy root, every drill-down grouping that
//     touches the key's hierarchy at depth ≥ 1 is pure.
//   - Integer-valued measures add exactly in float64 (below 2^53), so even
//     impure groupings merge bit-identically.
//
// Every examples/ dataset falls under one of the two conditions with the
// default key, which is what the equivalence tests in this package pin down.
// Groupings outside both conditions still merge exactly in the distributive
// sense — counts are always exact — but the low-order float bits of sums may
// differ from a single scan's.
//
// # Appends
//
// Set.Append routes each appended row to its owning shard, extends the
// shared dictionaries once (in batch row order, so codes are deterministic),
// and produces a successor Set with every shard at Version+1: untouched
// shards share their columns and keep their cubes, touched shards get a
// delta cube built over just their new rows and merged in (cube.Merge), and
// a cross-shard functional-dependency check rejects batches whose violations
// span shards — a per-shard validation alone cannot see those.
package shard
