package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/shard"
	"repro/internal/store"
)

// quickstartDataset rebuilds the examples/quickstart survey (same generator,
// same seed as examples/quickstart and store's round-trip test).
func quickstartDataset() *data.Dataset {
	rng := rand.New(rand.NewSource(7))
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"district", "village"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("drought", []string{"district", "village", "year"}, []string{"severity"}, h)
	villages := map[string][]string{
		"Ofla": {"Adishim", "Darube", "Dinka", "Fala", "Zata"},
		"Raya": {"Kukufto", "Mehoni", "Wajirat", "Chercher", "Bala"},
	}
	for _, year := range []string{"1984", "1985", "1986", "1987", "1988"} {
		for _, district := range []string{"Ofla", "Raya"} {
			for _, v := range villages[district] {
				base := 6.0
				if year == "1986" {
					base = 8
				}
				for i := 0; i < 6; i++ {
					sev := base + rng.NormFloat64()
					if v == "Zata" && year == "1986" {
						sev -= 5
					}
					ds.AppendRowVals([]string{district, v, year}, []float64{sev})
				}
			}
		}
	}
	return ds
}

// TestShardedRecommendByteIdentity asserts, for each dataset the examples/
// programs run on, that the sharded engine at 1, 2 and 4 shards produces
// byte-identical Recommendation JSON to the unsharded engine — for a fresh
// session and, where the hierarchies leave a second candidate, after a drill.
// The default shard key (the first hierarchy's root) keeps every candidate
// grouping either shard-pure or over an integer measure, the two conditions
// the byte-identity guarantee rests on (see the package documentation).
func TestShardedRecommendByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence sweep is not short")
	}
	cases := []struct {
		name    string
		ds      *data.Dataset
		groupBy []string
		// fresh is evaluated first; drill ("" = skip) then advances the
		// session and drilled is evaluated at the deeper state.
		fresh   core.Complaint
		drill   string
		drilled core.Complaint
	}{
		{
			name:    "quickstart",
			ds:      quickstartDataset(),
			groupBy: []string{"district"},
			fresh:   core.Complaint{Agg: agg.Std, Measure: "severity", Tuple: data.Predicate{"district": "Ofla"}, Direction: core.TooHigh},
			drill:   "time",
			drilled: core.Complaint{Agg: agg.Std, Measure: "severity", Tuple: data.Predicate{"district": "Ofla", "year": "1986"}, Direction: core.TooHigh},
		},
		{
			name:    "drought",
			ds:      datasets.GenerateFIST(11).DS,
			groupBy: []string{"region"},
			fresh:   core.Complaint{Agg: agg.Mean, Measure: "severity", Tuple: data.Predicate{"region": "Tigray"}, Direction: core.TooLow},
			drill:   "time",
			drilled: core.Complaint{Agg: agg.Mean, Measure: "severity", Tuple: data.Predicate{"region": "Tigray", "year": "y2010"}, Direction: core.TooLow},
		},
		{
			name:    "covid",
			ds:      datasets.GenerateCovidUS(3),
			groupBy: []string{"day"},
			fresh:   core.Complaint{Agg: agg.Sum, Measure: "confirmed", Tuple: data.Predicate{"day": "d070"}, Direction: core.TooLow},
			// Drilling location exhausts both hierarchies, so no drilled rec.
		},
		{
			name:    "vote",
			ds:      datasets.GenerateVote(9).DS,
			groupBy: nil,
			fresh:   core.Complaint{Agg: agg.Mean, Measure: "pct2020", Tuple: data.Predicate{}, Direction: core.TooLow},
			drill:   "location",
			drilled: core.Complaint{Agg: agg.Mean, Measure: "pct2020", Tuple: data.Predicate{"state": "Georgia"}, Direction: core.TooLow},
		},
		{
			name:    "absentee",
			ds:      datasets.GenerateAbsentee(5, 3000),
			groupBy: nil,
			fresh:   core.Complaint{Agg: agg.Count, Measure: "one", Tuple: data.Predicate{}, Direction: core.TooHigh},
			drill:   "party",
			drilled: core.Complaint{Agg: agg.Count, Measure: "one", Tuple: data.Predicate{}, Direction: core.TooHigh},
		},
	}
	opts := core.Options{EMIterations: 4, Workers: 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := store.FromDataset(tc.ds)
			ds, err := snap.Dataset()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.NewEngine(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantFresh, wantDrilled := recommendPair(t, ref, tc.groupBy, tc.fresh, tc.drill, tc.drilled)
			for _, n := range []int{1, 2, 4} {
				for _, cubes := range []bool{false, true} {
					if cubes && n != 2 {
						continue // one cube-backed configuration is enough
					}
					name := fmt.Sprintf("shards=%d", n)
					if cubes {
						name += "+cubes"
					}
					t.Run(name, func(t *testing.T) {
						set, err := shard.Partition(snap, n, "")
						if err != nil {
							t.Fatal(err)
						}
						if cubes {
							if err := set.BuildCubes(); err != nil {
								t.Fatal(err)
							}
						}
						eng, err := set.Engine(opts)
						if err != nil {
							t.Fatal(err)
						}
						gotFresh, gotDrilled := recommendPair(t, eng, tc.groupBy, tc.fresh, tc.drill, tc.drilled)
						if !bytes.Equal(gotFresh, wantFresh) {
							t.Errorf("fresh recommendation differs from unsharded:\nsharded:   %.400s\nunsharded: %.400s", gotFresh, wantFresh)
						}
						if !bytes.Equal(gotDrilled, wantDrilled) {
							t.Errorf("drilled recommendation differs from unsharded:\nsharded:   %.400s\nunsharded: %.400s", gotDrilled, wantDrilled)
						}
					})
				}
			}
		})
	}
}

// recommendPair evaluates the fresh complaint, optionally drills, and
// evaluates the drilled complaint, returning both recommendations' canonical
// JSON (nil for a skipped drill).
func recommendPair(t *testing.T, eng *core.Engine, groupBy []string, fresh core.Complaint, drill string, drilled core.Complaint) ([]byte, []byte) {
	t.Helper()
	sess, err := eng.NewSession(groupBy)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Recommend(fresh)
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if drill == "" {
		return freshJSON, nil
	}
	if err := sess.Drill(drill); err != nil {
		t.Fatal(err)
	}
	rec, err = sess.Recommend(drilled)
	if err != nil {
		t.Fatal(err)
	}
	drilledJSON, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return freshJSON, drilledJSON
}
