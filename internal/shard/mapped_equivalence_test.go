package shard_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/shard"
	"repro/internal/store"
)

// TestMappedRecommendByteIdentity asserts, for each dataset the examples/
// programs run on, that serving a persisted snapshot out of a memory-mapped
// file produces byte-identical Recommendation JSON to the eager open of the
// same file — unsharded with and without a stored cube, and partitioned at
// 1, 2 and 4 shards (with runtime cubes at 2) — for a fresh session and,
// where the hierarchies leave a second candidate, after a drill. This is the
// acceptance gate for the streaming execution paths: every aggregation a
// mapped engine runs (streamed group-bys, cursor-fed cubes, distinct-path
// extraction) must reproduce the slice-backed results bit for bit.
func TestMappedRecommendByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("mapped equivalence sweep is not short")
	}
	cases := []struct {
		name    string
		ds      *data.Dataset
		groupBy []string
		fresh   core.Complaint
		drill   string
		drilled core.Complaint
	}{
		{
			name:    "quickstart",
			ds:      quickstartDataset(),
			groupBy: []string{"district"},
			fresh:   core.Complaint{Agg: agg.Std, Measure: "severity", Tuple: data.Predicate{"district": "Ofla"}, Direction: core.TooHigh},
			drill:   "time",
			drilled: core.Complaint{Agg: agg.Std, Measure: "severity", Tuple: data.Predicate{"district": "Ofla", "year": "1986"}, Direction: core.TooHigh},
		},
		{
			name:    "drought",
			ds:      datasets.GenerateFIST(11).DS,
			groupBy: []string{"region"},
			fresh:   core.Complaint{Agg: agg.Mean, Measure: "severity", Tuple: data.Predicate{"region": "Tigray"}, Direction: core.TooLow},
			drill:   "time",
			drilled: core.Complaint{Agg: agg.Mean, Measure: "severity", Tuple: data.Predicate{"region": "Tigray", "year": "y2010"}, Direction: core.TooLow},
		},
		{
			name:    "covid",
			ds:      datasets.GenerateCovidUS(3),
			groupBy: []string{"day"},
			fresh:   core.Complaint{Agg: agg.Sum, Measure: "confirmed", Tuple: data.Predicate{"day": "d070"}, Direction: core.TooLow},
		},
		{
			name:    "vote",
			ds:      datasets.GenerateVote(9).DS,
			groupBy: nil,
			fresh:   core.Complaint{Agg: agg.Mean, Measure: "pct2020", Tuple: data.Predicate{}, Direction: core.TooLow},
			drill:   "location",
			drilled: core.Complaint{Agg: agg.Mean, Measure: "pct2020", Tuple: data.Predicate{"state": "Georgia"}, Direction: core.TooLow},
		},
		{
			name:    "absentee",
			ds:      datasets.GenerateAbsentee(5, 3000),
			groupBy: nil,
			fresh:   core.Complaint{Agg: agg.Count, Measure: "one", Tuple: data.Predicate{}, Direction: core.TooHigh},
			drill:   "party",
			drilled: core.Complaint{Agg: agg.Count, Measure: "one", Tuple: data.Predicate{}, Direction: core.TooHigh},
		},
	}
	opts := core.Options{EMIterations: 4, Workers: 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for _, withCube := range []bool{false, true} {
				name := "single"
				if withCube {
					name += "+cube"
				}
				t.Run(name, func(t *testing.T) {
					snap := store.FromDataset(tc.ds)
					if withCube {
						if err := snap.BuildCube(); err != nil {
							t.Fatal(err)
						}
					}
					path := filepath.Join(dir, name+".rst")
					if err := snap.WriteFile(path); err != nil {
						t.Fatal(err)
					}
					eager, err := store.OpenFile(path)
					if err != nil {
						t.Fatal(err)
					}
					mapped, err := store.OpenMappedFile(path)
					if err != nil {
						t.Fatal(err)
					}
					defer mapped.Close()
					if !mapped.Mapped() {
						t.Fatal("snapshot did not open mapped")
					}
					if withCube && mapped.Cube() == nil {
						t.Fatal("mapped open dropped the stored cube")
					}
					comparePairs(t, snapshotEngine(t, eager, opts), snapshotEngine(t, mapped, opts), tc.groupBy, tc.fresh, tc.drill, tc.drilled)
				})
			}
			for _, n := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
					set, err := shard.Partition(store.FromDataset(tc.ds), n, "")
					if err != nil {
						t.Fatal(err)
					}
					path := filepath.Join(dir, fmt.Sprintf("shards%d.rst", n))
					if err := set.WriteFile(path); err != nil {
						t.Fatal(err)
					}
					eager, err := shard.Open(path)
					if err != nil {
						t.Fatal(err)
					}
					mapped, err := shard.OpenMapped(path)
					if err != nil {
						t.Fatal(err)
					}
					defer mapped.Close()
					if n == 2 {
						// Runtime cubes over cursor-backed shards: one
						// configuration is enough to pin the cube build path.
						if err := eager.BuildCubes(); err != nil {
							t.Fatal(err)
						}
						if err := mapped.BuildCubes(); err != nil {
							t.Fatal(err)
						}
					}
					eagerEng, err := eager.Engine(opts)
					if err != nil {
						t.Fatal(err)
					}
					mappedEng, err := mapped.Engine(opts)
					if err != nil {
						t.Fatal(err)
					}
					comparePairs(t, eagerEng, mappedEng, tc.groupBy, tc.fresh, tc.drill, tc.drilled)
				})
			}
		})
	}
}

// snapshotEngine builds a core engine over a snapshot's dataset.
func snapshotEngine(t *testing.T, snap *store.Snapshot, opts core.Options) *core.Engine {
	t.Helper()
	ds, err := snap.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// comparePairs evaluates the fresh/drilled complaints on both engines and
// asserts byte-identical recommendation JSON.
func comparePairs(t *testing.T, eager, mapped *core.Engine, groupBy []string, fresh core.Complaint, drill string, drilled core.Complaint) {
	t.Helper()
	wantFresh, wantDrilled := recommendPair(t, eager, groupBy, fresh, drill, drilled)
	gotFresh, gotDrilled := recommendPair(t, mapped, groupBy, fresh, drill, drilled)
	if !bytes.Equal(gotFresh, wantFresh) {
		t.Errorf("fresh recommendation differs from eager open:\nmapped: %.400s\neager:  %.400s", gotFresh, wantFresh)
	}
	if !bytes.Equal(gotDrilled, wantDrilled) {
		t.Errorf("drilled recommendation differs from eager open:\nmapped: %.400s\neager:  %.400s", gotDrilled, wantDrilled)
	}
}
