package shard

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestOpenMappedSetMatchesEager writes a partitioned snapshot and reopens it
// both ways, asserting the mapped set serves the same topology and the same
// per-shard rows as the eager one.
func TestOpenMappedSetMatchesEager(t *testing.T) {
	set := mustPartition(t, testDataset(), 4, "")
	path := filepath.Join(t.TempDir(), "cities.rst")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	eager, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Key != eager.Key || mapped.N() != eager.N() || mapped.Version() != eager.Version() {
		t.Fatalf("mapped set (%q, %d shards, v%d), eager (%q, %d, v%d)",
			mapped.Key, mapped.N(), mapped.Version(), eager.Key, eager.N(), eager.Version())
	}
	if !reflect.DeepEqual(mapped.Rows(), eager.Rows()) {
		t.Fatalf("mapped rows %v, eager %v", mapped.Rows(), eager.Rows())
	}
	for si := range mapped.Snaps {
		if !mapped.Snaps[si].Mapped() {
			t.Fatalf("shard %d did not open mapped", si)
		}
		mds, err := mapped.Snaps[si].Dataset()
		if err != nil {
			t.Fatal(err)
		}
		eds, err := eager.Snaps[si].Dataset()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range eds.DimNames() {
			if !reflect.DeepEqual(mds.Dim(c), eds.Dim(c)) {
				t.Fatalf("shard %d dimension %q differs between open modes", si, c)
			}
		}
		for _, c := range eds.MeasureNames() {
			if !reflect.DeepEqual(mds.Measure(c), eds.Measure(c)) {
				t.Fatalf("shard %d measure %q differs between open modes", si, c)
			}
		}
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMappedSetRejectsMutation pins the guards that keep the flat-residency
// promise honest: a mapped set cannot absorb appends, and a mapped snapshot
// cannot be re-partitioned.
func TestMappedSetRejectsMutation(t *testing.T) {
	set := mustPartition(t, testDataset(), 2, "")
	path := filepath.Join(t.TempDir(), "cities.rst")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	_, err = mapped.Append([]store.Row{{Dims: []string{"north", "oslo", "2022"}, Measures: []float64{1, 1}}})
	if err == nil || !strings.Contains(err.Error(), "re-open it eagerly") {
		t.Errorf("append to mapped set: err = %v, want re-open hint", err)
	}
	if _, err := Partition(mapped.Snaps[0], 2, ""); err == nil || !strings.Contains(err.Error(), "re-open it eagerly") {
		t.Errorf("partition of mapped snapshot: err = %v, want re-open hint", err)
	}
}
