package shard

import (
	"fmt"
	"time"

	"repro/internal/store"
)

// Retain enforces a time-windowed retention across the whole set: the
// horizon is the newest parseable event time on dim over ALL shards minus
// window, so every shard drops against the same cut-off regardless of where
// the newest rows landed. Shards that lose rows are filtered (cube rebuilt),
// untouched shards are re-stamped to the successor version sharing their
// columns and cube, and the receiver is never mutated — callers that fail
// mid-swap keep serving the old Set. When no shard drops a row, the receiver
// itself is returned with dropped 0.
func (s *Set) Retain(dim string, window time.Duration) (*Set, int, time.Time, error) {
	var max time.Time
	var ok bool
	for _, sn := range s.Snaps {
		m, mok, err := store.MaxEventTime(sn, dim)
		if err != nil {
			return nil, 0, time.Time{}, fmt.Errorf("shard: %w", err)
		}
		if mok && (!ok || m.After(max)) {
			max, ok = m, true
		}
	}
	if !ok {
		return s, 0, time.Time{}, nil
	}
	horizon := max.Add(-window)

	version := s.Version() + 1
	next := &Set{Key: s.Key, Snaps: make([]*store.Snapshot, len(s.Snaps))}
	total := 0
	for si, sn := range s.Snaps {
		filtered, dropped, err := store.RetainAfter(sn, dim, horizon)
		if err != nil {
			return nil, 0, time.Time{}, fmt.Errorf("shard: shard %d: %w", si, err)
		}
		total += dropped
		if dropped == 0 {
			// Unchanged rows, but the version must move with the siblings.
			next.Snaps[si] = store.WithVersion(sn, version)
			continue
		}
		next.Snaps[si] = filtered // RetainAfter already stamped Version+1
	}
	if total == 0 {
		return s, 0, horizon, nil
	}
	return next, total, horizon, nil
}
