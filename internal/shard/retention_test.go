package shard

import (
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/store"
)

func TestSetRetainGlobalHorizon(t *testing.T) {
	// Partition by region so years are spread across every shard; the horizon
	// must still be global (anchored on the newest year anywhere).
	set := mustPartition(t, testDataset(), 3, "region")
	if err := set.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	before := set.TotalRows()
	baseVersion := set.Version()

	// A wide window keeps everything and returns the receiver.
	same, dropped, _, err := set.Retain("year", 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || same != set {
		t.Fatalf("wide window: dropped=%d same=%v", dropped, same == set)
	}

	// Keep 2020 and 2021, drop 2019 (one row per city).
	next, dropped, horizon, err := set.Retain("year", 500*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	wantDropped := before / 3 // one year of three, uniformly populated
	if dropped != wantDropped {
		t.Fatalf("dropped = %d, want %d", dropped, wantDropped)
	}
	if next.TotalRows() != before-wantDropped {
		t.Errorf("rows = %d, want %d", next.TotalRows(), before-wantDropped)
	}
	if want, _ := store.ParseEventTime("2021"); !horizon.Before(want) {
		t.Errorf("horizon = %v", horizon)
	}
	// Every shard — touched or not — moved to the same successor version.
	if next.Version() != baseVersion+1 {
		t.Errorf("version = %d, want %d", next.Version(), baseVersion+1)
	}
	for si, sn := range next.Snaps {
		if sn.Version != baseVersion+1 {
			t.Errorf("shard %d version = %d, want %d", si, sn.Version, baseVersion+1)
		}
		if sn.Cube() == nil {
			t.Errorf("shard %d lost its cube", si)
		}
		dsView, err := sn.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		for _, y := range dsView.Dim("year") {
			if y == "2019" {
				t.Errorf("shard %d still serves a 2019 row", si)
			}
		}
	}
	// The receiver is untouched.
	if set.TotalRows() != before || set.Version() != baseVersion {
		t.Errorf("receiver mutated: rows=%d version=%d", set.TotalRows(), set.Version())
	}
}

func TestSetRetainUnevenShards(t *testing.T) {
	// Shard by region; only one region carries the newest year, so the other
	// shards anchor on a horizon they never observed locally.
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"region"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("skewed", []string{"region", "year"}, []string{"v"}, h)
	ds.AppendRowVals([]string{"north", "2018"}, []float64{1})
	ds.AppendRowVals([]string{"north", "2019"}, []float64{2})
	ds.AppendRowVals([]string{"south", "2024"}, []float64{3})
	set := mustPartition(t, ds, 2, "region")

	next, dropped, _, err := set.Retain("year", 400*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Horizon anchors on 2024: both north rows fall behind it even though the
	// north shard's local maximum is 2019.
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if next.TotalRows() != 1 {
		t.Errorf("rows = %d, want 1", next.TotalRows())
	}
}
