package shard

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/store"
)

// Set is one version of a partitioned dataset: the partition key and one
// snapshot per shard, all at the same version, sharing one set of dictionary
// slices. Like snapshots, a Set is immutable once published; Append returns
// a successor Set.
type Set struct {
	// Key is the dimension rows are partitioned on — the root attribute of
	// one of the hierarchies.
	Key string
	// Snaps holds the per-shard snapshots, in shard order.
	Snaps []*store.Snapshot
}

// Owner returns the shard that owns a key value: FNV-1a of the value modulo
// the shard count. The hash is part of the on-disk contract — appends to a
// reopened partitioned snapshot must route rows exactly as the original
// partitioning did.
func Owner(value string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(value))
	return int(h.Sum32() % uint32(shards))
}

// DefaultKey returns the default partition key — the first hierarchy's root
// attribute — or "" when there are no hierarchies.
func DefaultKey(hierarchies []data.Hierarchy) string {
	if len(hierarchies) == 0 || len(hierarchies[0].Attrs) == 0 {
		return ""
	}
	return hierarchies[0].Attrs[0]
}

// Partition splits a snapshot into n shards on key (defaulted with
// DefaultKey when empty). Dictionaries are shared — each shard's columns
// point at the source snapshot's dictionary slices — and rows keep their
// original relative order within a shard, so partitioning is deterministic.
// Shards carry no cubes; call BuildCubes to materialize them.
func Partition(snap *store.Snapshot, n int, key string) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", n)
	}
	if key == "" {
		key = DefaultKey(snap.Hierarchies)
	}
	if err := validateKey(key, snap.Hierarchies); err != nil {
		return nil, err
	}
	if snap.Mapped() {
		// Routing rows would materialize every column into per-shard slices,
		// defeating the open mode's purpose; partition eagerly, then serve the
		// partitioned file mapped.
		return nil, fmt.Errorf("shard: cannot partition memory-mapped snapshot %q; re-open it eagerly to partition", snap.Name)
	}
	keyIdx := -1
	for i, c := range snap.Dims {
		if c.Name == key {
			keyIdx = i
			break
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("shard: partition key %q is not a dimension of %q", key, snap.Name)
	}

	// Hash each distinct key value once, then route rows by code.
	keyCol := snap.Dims[keyIdx]
	ownerOf := make([]int, len(keyCol.Dict))
	for code, v := range keyCol.Dict {
		ownerOf[code] = Owner(v, n)
	}
	counts := make([]int, n)
	for _, code := range keyCol.Codes {
		counts[ownerOf[code]]++
	}

	dims := make([][]store.Column, n)
	measures := make([][]store.MeasureColumn, n)
	for si := 0; si < n; si++ {
		dims[si] = make([]store.Column, len(snap.Dims))
		for ci, c := range snap.Dims {
			dims[si][ci] = store.Column{Name: c.Name, Dict: c.Dict, Codes: make([]uint32, 0, counts[si])}
		}
		measures[si] = make([]store.MeasureColumn, len(snap.Measures))
		for mi, m := range snap.Measures {
			measures[si][mi] = store.MeasureColumn{Name: m.Name, Values: make([]float64, 0, counts[si])}
		}
	}
	for row := 0; row < snap.NumRows(); row++ {
		si := ownerOf[keyCol.Codes[row]]
		for ci, c := range snap.Dims {
			dims[si][ci].Codes = append(dims[si][ci].Codes, c.Codes[row])
		}
		for mi, m := range snap.Measures {
			measures[si][mi].Values = append(measures[si][mi].Values, m.Values[row])
		}
	}

	set := &Set{Key: key, Snaps: make([]*store.Snapshot, n)}
	for si := 0; si < n; si++ {
		s, err := store.NewSnapshot(snap.Name, snap.Version, snap.Hierarchies, dims[si], measures[si], counts[si])
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", si, err)
		}
		set.Snaps[si] = s
	}
	return set, nil
}

// Open loads a partitioned .rst file into a Set.
func Open(path string) (*Set, error) {
	key, snaps, err := store.OpenShardedFile(path)
	if err != nil {
		return nil, err
	}
	return &Set{Key: key, Snaps: snaps}, nil
}

// OpenMapped memory-maps a partitioned .rst file into a Set: every shard
// serves its columns from one shared file mapping (see store.
// OpenShardedMappedFile), released when the last shard is Closed. Version-1
// files fall back to an eager load.
func OpenMapped(path string) (*Set, error) {
	key, snaps, err := store.OpenShardedMappedFile(path)
	if err != nil {
		return nil, err
	}
	return &Set{Key: key, Snaps: snaps}, nil
}

// Close releases the Set's file mapping, if any (a no-op for eager Sets).
func (s *Set) Close() error {
	var first error
	for _, sn := range s.Snaps {
		if err := sn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteFile persists the Set as a partitioned .rst file (atomically).
func (s *Set) WriteFile(path string) error {
	return store.WriteShardedFile(path, s.Key, s.Snaps)
}

// N returns the shard count.
func (s *Set) N() int { return len(s.Snaps) }

// Version returns the Set's snapshot version (shared by every shard).
func (s *Set) Version() uint64 { return s.Snaps[0].Version }

// Rows returns the per-shard row counts, in shard order.
func (s *Set) Rows() []int {
	out := make([]int, len(s.Snaps))
	for i, sn := range s.Snaps {
		out[i] = sn.NumRows()
	}
	return out
}

// TotalRows returns the row count across all shards.
func (s *Set) TotalRows() int {
	total := 0
	for _, sn := range s.Snaps {
		total += sn.NumRows()
	}
	return total
}

// BuildCubes materializes each shard's rollup cube (no-op per shard when one
// is already attached, silently skipped for shards the cube subsystem
// declines — serving then falls back to per-shard row scans).
func (s *Set) BuildCubes() error {
	for si, sn := range s.Snaps {
		if err := sn.BuildCube(); err != nil {
			return fmt.Errorf("shard: building cube of shard %d: %w", si, err)
		}
	}
	return nil
}

// Engine assembles the sharded core engine: one in-process worker per shard,
// the first shard's dataset as the schema plane.
func (s *Set) Engine(opts core.Options) (*core.Engine, error) {
	workers := make([]core.ShardWorker, len(s.Snaps))
	var schema *data.Dataset
	for i, sn := range s.Snaps {
		ds, err := sn.Dataset()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			schema = ds
		}
		workers[i] = core.LocalShard(ds)
	}
	return core.NewShardedEngine(schema, workers, s.Key, opts)
}

// validateKey checks the partition key is the root attribute of one of the
// hierarchies — the invariant the byte-identity guarantee rests on (see the
// package documentation).
func validateKey(key string, hierarchies []data.Hierarchy) error {
	if key == "" {
		return fmt.Errorf("shard: dataset has no hierarchies to derive a partition key from")
	}
	for _, h := range hierarchies {
		if len(h.Attrs) > 0 && h.Attrs[0] == key {
			return nil
		}
	}
	return fmt.Errorf("shard: partition key %q is not the root attribute of any hierarchy", key)
}
