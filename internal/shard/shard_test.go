package shard

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/store"
)

// testDataset builds a small two-hierarchy dataset with integer measures
// (integer sums add exactly in float64, so cube-vs-scan comparisons below can
// demand bit equality).
func testDataset() *data.Dataset {
	h := []data.Hierarchy{
		{Name: "geo", Attrs: []string{"region", "city"}},
		{Name: "time", Attrs: []string{"year"}},
	}
	ds := data.New("cities", []string{"region", "city", "year"}, []string{"pop", "one"}, h)
	cities := map[string][]string{
		"north": {"oslo", "bergen", "trondheim"},
		"south": {"rome", "naples"},
		"east":  {"kyiv", "lviv", "odesa"},
		"west":  {"porto"},
	}
	i := 0
	for _, region := range []string{"north", "south", "east", "west"} {
		for _, city := range cities[region] {
			for _, year := range []string{"2019", "2020", "2021"} {
				i++
				ds.AppendRowVals([]string{region, city, year}, []float64{float64(100 + i*7%43), 1})
			}
		}
	}
	return ds
}

func mustPartition(t *testing.T, ds *data.Dataset, n int, key string) *Set {
	t.Helper()
	set, err := Partition(store.FromDataset(ds), n, key)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestPartitionRouting(t *testing.T) {
	ds := testDataset()
	snap := store.FromDataset(ds)
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			set, err := Partition(snap, n, "")
			if err != nil {
				t.Fatal(err)
			}
			if set.Key != "region" {
				t.Fatalf("default key = %q, want region", set.Key)
			}
			if set.N() != n || len(set.Rows()) != n {
				t.Fatalf("N() = %d, len(Rows()) = %d, want %d", set.N(), len(set.Rows()), n)
			}
			if set.TotalRows() != snap.NumRows() {
				t.Fatalf("TotalRows() = %d, want %d", set.TotalRows(), snap.NumRows())
			}
			// Every row must sit on the shard its key value hashes to, and
			// shards must preserve the original relative row order: routing
			// the source rows one by one reproduces each shard exactly.
			want := make([][]store.Row, n)
			for r := 0; r < snap.NumRows(); r++ {
				row := rowAt(snap, r)
				si := Owner(row.Dims[0], n)
				want[si] = append(want[si], row)
			}
			for si, sn := range set.Snaps {
				if sn.NumRows() != len(want[si]) {
					t.Fatalf("shard %d has %d rows, want %d", si, sn.NumRows(), len(want[si]))
				}
				for r := 0; r < sn.NumRows(); r++ {
					if got := rowAt(sn, r); !reflect.DeepEqual(got, want[si][r]) {
						t.Fatalf("shard %d row %d = %v, want %v", si, r, got, want[si][r])
					}
				}
				// Dictionaries are shared, not copied.
				for ci := range sn.Dims {
					if &sn.Dims[ci].Dict[0] != &snap.Dims[ci].Dict[0] {
						t.Fatalf("shard %d dim %q does not share the source dictionary", si, sn.Dims[ci].Name)
					}
				}
			}
		})
	}
}

// rowAt decodes one row of a snapshot back to strings and values.
func rowAt(sn *store.Snapshot, r int) store.Row {
	row := store.Row{Dims: make([]string, len(sn.Dims)), Measures: make([]float64, len(sn.Measures))}
	for ci, c := range sn.Dims {
		row.Dims[ci] = c.Dict[c.Codes[r]]
	}
	for mi, m := range sn.Measures {
		row.Measures[mi] = m.Values[r]
	}
	return row
}

func TestPartitionErrors(t *testing.T) {
	snap := store.FromDataset(testDataset())
	if _, err := Partition(snap, 0, ""); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Partition(snap, -3, ""); err == nil {
		t.Error("n=-3 accepted")
	}
	if _, err := Partition(snap, 2, "city"); err == nil {
		t.Error("non-root partition key accepted")
	}
	if _, err := Partition(snap, 2, "nosuch"); err == nil {
		t.Error("unknown partition key accepted")
	}
	flat := data.New("flat", []string{"a"}, []string{"m"}, nil)
	flat.AppendRowVals([]string{"x"}, []float64{1})
	if _, err := Partition(store.FromDataset(flat), 2, ""); err == nil {
		t.Error("hierarchy-less dataset accepted without explicit key")
	}
}

// ownerSplit returns two key values that hash to different shards at the
// given shard count, so tests can force cross-shard situations without
// hard-coding hash outputs.
func ownerSplit(t *testing.T, n int) (a, b string) {
	t.Helper()
	first := fmt.Sprintf("r%d", 0)
	for i := 1; i < 256; i++ {
		v := fmt.Sprintf("r%d", i)
		if Owner(v, n) != Owner(first, n) {
			return first, v
		}
	}
	t.Fatal("no owner split found")
	return "", ""
}

func TestAppendRoutingAndSharing(t *testing.T) {
	ds := testDataset()
	base := mustPartition(t, ds, 3, "")
	rows := []store.Row{
		{Dims: []string{"north", "oslo", "2022"}, Measures: []float64{120, 1}},   // existing values
		{Dims: []string{"north", "hamar", "2019"}, Measures: []float64{30, 1}},   // new city
		{Dims: []string{"centre", "prague", "2020"}, Measures: []float64{90, 1}}, // new region
	}
	next, err := base.Append(rows)
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() != base.Version()+1 {
		t.Fatalf("version = %d, want %d", next.Version(), base.Version()+1)
	}
	if next.TotalRows() != base.TotalRows()+len(rows) {
		t.Fatalf("total rows = %d, want %d", next.TotalRows(), base.TotalRows()+len(rows))
	}
	// The receiver is untouched.
	if base.TotalRows() != store.FromDataset(ds).NumRows() {
		t.Fatal("append mutated the base set")
	}
	// Each appended row landed on its owner, after all the base rows.
	touched := make(map[int]int)
	for _, r := range rows {
		si := Owner(r.Dims[0], 3)
		sn := next.Snaps[si]
		at := base.Snaps[si].NumRows() + touched[si]
		touched[si]++
		if got := rowAt(sn, at); !reflect.DeepEqual(got, r) {
			t.Fatalf("shard %d row %d = %v, want appended %v", si, at, got, r)
		}
	}
	for si, sn := range next.Snaps {
		if sn.NumRows() != base.Snaps[si].NumRows()+touched[si] {
			t.Fatalf("shard %d rows = %d, want %d", si, sn.NumRows(), base.Snaps[si].NumRows()+touched[si])
		}
		// Grown dictionaries are shared by every shard of the successor…
		for ci := range sn.Dims {
			if &sn.Dims[ci].Dict[0] != &next.Snaps[0].Dims[ci].Dict[0] {
				t.Fatalf("shard %d dim %q does not share the successor dictionary", si, sn.Dims[ci].Name)
			}
		}
		// …and untouched shards share their code columns with the base.
		if touched[si] == 0 && sn.NumRows() > 0 {
			if &sn.Dims[0].Codes[0] != &base.Snaps[si].Dims[0].Codes[0] {
				t.Fatalf("untouched shard %d copied its code column", si)
			}
		}
	}
	// New dictionary values were appended in batch row order.
	regionDict := next.Snaps[0].Dims[0].Dict
	if regionDict[len(regionDict)-1] != "centre" {
		t.Fatalf("region dict tail = %q, want centre", regionDict[len(regionDict)-1])
	}
	cityDict := next.Snaps[0].Dims[1].Dict
	if got := cityDict[len(cityDict)-2:]; got[0] != "hamar" || got[1] != "prague" {
		t.Fatalf("city dict tail = %v, want [hamar prague]", got)
	}
	// The base dictionaries did not grow.
	if len(store.FromDataset(ds).Dims[0].Dict) != len(base.Snaps[0].Dims[0].Dict) {
		t.Fatal("append grew the base dictionaries")
	}
}

func TestAppendRejectsBadRows(t *testing.T) {
	set := mustPartition(t, testDataset(), 2, "")
	if _, err := set.Append([]store.Row{{Dims: []string{"north", "oslo"}, Measures: []float64{1, 1}}}); err == nil {
		t.Error("short dim row accepted")
	}
	if _, err := set.Append([]store.Row{{Dims: []string{"north", "oslo", "2022"}, Measures: []float64{math.NaN(), 1}}}); err == nil {
		t.Error("NaN measure accepted")
	}
	if got, err := set.Append(nil); err != nil || got != set {
		t.Errorf("empty append = (%v, %v), want the receiver unchanged", got, err)
	}
}

func TestAppendRejectsCrossShardFDViolation(t *testing.T) {
	ra, rb := ownerSplit(t, 2)
	h := []data.Hierarchy{{Name: "geo", Attrs: []string{"region", "city"}}}
	ds := data.New("fd", []string{"region", "city"}, []string{"m"}, h)
	ds.AppendRowVals([]string{ra, "springfield"}, []float64{1})
	ds.AppendRowVals([]string{rb, "shelbyville"}, []float64{1})
	set := mustPartition(t, ds, 2, "")
	// springfield already belongs to ra on one shard; re-parenting it under
	// rb routes the witness to the *other* shard, where per-shard validation
	// cannot see the conflict.
	_, err := set.Append([]store.Row{{Dims: []string{rb, "springfield"}, Measures: []float64{1}}})
	if err == nil || !strings.Contains(err.Error(), "FD violation") {
		t.Fatalf("cross-shard FD violation not rejected: %v", err)
	}
	// The same city under its original region is fine.
	if _, err := set.Append([]store.Row{{Dims: []string{ra, "springfield"}, Measures: []float64{2}}}); err != nil {
		t.Fatalf("valid append rejected: %v", err)
	}
}

func TestAppendMaintainsCubes(t *testing.T) {
	set := mustPartition(t, testDataset(), 3, "")
	if err := set.BuildCubes(); err != nil {
		t.Fatal(err)
	}
	next, err := set.Append([]store.Row{
		{Dims: []string{"north", "oslo", "2022"}, Measures: []float64{7, 1}},
		{Dims: []string{"centre", "prague", "2020"}, Measures: []float64{9, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for si, sn := range next.Snaps {
		merged := sn.Cube()
		if merged == nil {
			t.Fatalf("shard %d lost its cube across the append", si)
		}
		nds, err := sn.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := cube.Build(nds)
		if err != nil {
			t.Fatal(err)
		}
		// The delta-merged cube must answer every lattice grouping exactly
		// like a from-scratch rebuild (integer measures make this bit-exact).
		for _, attrs := range [][]string{nil, {"region"}, {"year"}, {"region", "city"}, {"region", "city", "year"}} {
			for _, measure := range []string{"pop", "one"} {
				got, ok1 := merged.GroupBy(attrs, measure)
				want, ok2 := fresh.GroupBy(attrs, measure)
				if ok1 != ok2 {
					t.Fatalf("shard %d %v/%s: merged ok=%v, fresh ok=%v", si, attrs, measure, ok1, ok2)
				}
				if !ok1 {
					continue
				}
				if !reflect.DeepEqual(got.Groups, want.Groups) {
					t.Fatalf("shard %d %v/%s: merged cube diverges from rebuild", si, attrs, measure)
				}
			}
		}
	}
}

// TestMergedStatsMatchWholeCube is the satellite DeepEqual check: for every
// grouping in the rollup lattice, merging per-shard scan partials with
// Stats.Add must reproduce the whole-dataset cube's cells exactly. The
// absentee generator's "one" measure is integral, so equality is bit-exact
// even for groupings split across shards.
func TestMergedStatsMatchWholeCube(t *testing.T) {
	snap := store.FromDataset(datasets.GenerateAbsentee(7, 2000))
	coded, err := snap.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	whole, err := cube.Build(coded)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Partition(snap, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	shardDS := make([]*data.Dataset, set.N())
	for i, sn := range set.Snaps {
		if shardDS[i], err = sn.Dataset(); err != nil {
			t.Fatal(err)
		}
	}
	for _, attrs := range latticeGroupings(coded.Hierarchies) {
		cells, ok := whole.GroupBy(attrs, "one")
		if !ok {
			// The cube does not materialize the empty grouping; a whole
			// scan is the same ground truth for it.
			cells = agg.GroupBy(coded, attrs, "one")
		}
		merged := make(map[string]agg.Stats)
		var order []string
		for _, sds := range shardDS {
			part := agg.GroupBy(sds, attrs, "one")
			for _, g := range part.Groups {
				if _, seen := merged[g.Key]; !seen {
					order = append(order, g.Key)
				}
				merged[g.Key] = merged[g.Key].Add(g.Stats)
			}
		}
		if len(order) != len(cells.Groups) {
			t.Fatalf("%v: merged %d groups, cube has %d", attrs, len(order), len(cells.Groups))
		}
		for _, g := range cells.Groups {
			ms, ok := merged[g.Key]
			if !ok {
				t.Fatalf("%v: cube group %q missing from merged partials", attrs, g.Key)
			}
			if !reflect.DeepEqual(ms, g.Stats) {
				t.Fatalf("%v group %q: merged stats %+v != cube cell %+v", attrs, g.Key, ms, g.Stats)
			}
		}
	}
}

// latticeGroupings enumerates every hierarchy-prefix depth combination.
func latticeGroupings(hs []data.Hierarchy) [][]string {
	out := [][]string{nil}
	for _, h := range hs {
		var next [][]string
		for _, base := range out {
			for depth := 0; depth <= len(h.Attrs); depth++ {
				g := append(append([]string(nil), base...), h.Attrs[:depth]...)
				next = append(next, g)
			}
		}
		out = next
	}
	return out
}

func TestPartitionedFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cities.rst")
	set := mustPartition(t, testDataset(), 4, "")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	sharded, err := store.IsShardedFile(path)
	if err != nil || !sharded {
		t.Fatalf("IsShardedFile = (%v, %v), want (true, nil)", sharded, err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != set.Key || got.N() != set.N() || got.Version() != set.Version() {
		t.Fatalf("reopened (%q, %d shards, v%d), want (%q, %d, v%d)",
			got.Key, got.N(), got.Version(), set.Key, set.N(), set.Version())
	}
	for si := range set.Snaps {
		a, b := set.Snaps[si], got.Snaps[si]
		if !reflect.DeepEqual(a.Dims, b.Dims) || !reflect.DeepEqual(a.Measures, b.Measures) ||
			!reflect.DeepEqual(a.Hierarchies, b.Hierarchies) || a.NumRows() != b.NumRows() {
			t.Fatalf("shard %d does not survive the round trip", si)
		}
	}
	// Reopened shards share one dictionary slice set, like freshly
	// partitioned ones.
	if got.N() > 1 && &got.Snaps[0].Dims[0].Dict[0] != &got.Snaps[1].Dims[0].Dict[0] {
		t.Fatal("reopened shards do not share dictionaries")
	}
	// A plain snapshot opened as sharded — and vice versa — both fail with a
	// pointer at the right entry point.
	plain := filepath.Join(dir, "plain.rst")
	if err := store.FromDataset(testDataset()).WriteFile(plain); err != nil {
		t.Fatal(err)
	}
	if s, err := store.IsShardedFile(plain); err != nil || s {
		t.Fatalf("IsShardedFile(plain) = (%v, %v), want (false, nil)", s, err)
	}
	if _, _, err := store.OpenShardedFile(plain); err == nil || !strings.Contains(err.Error(), "single snapshot") {
		t.Fatalf("OpenShardedFile on a plain snapshot: %v", err)
	}
	if _, err := store.OpenFile(path); err == nil || !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("OpenFile on a partitioned snapshot: %v", err)
	}
}

func TestPartitionedFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cities.rst")
	set := mustPartition(t, testDataset(), 2, "")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, "flip.rst"), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(dir, "flip.rst")); err == nil {
		t.Error("byte flip not detected")
	}
	if err := os.WriteFile(filepath.Join(dir, "trunc.rst"), raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(dir, "trunc.rst")); err == nil {
		t.Error("truncation not detected")
	}
}
