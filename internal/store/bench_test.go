package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/data"
	"repro/internal/datasets"
)

// loadBench holds the on-disk fixtures for the load benchmarks: the gendata
// absentee benchmark dataset persisted once as CSV and once as .rst.
var loadBench struct {
	once     sync.Once
	err      error
	csvPath  string
	rstPath  string
	rows     int
	csvBytes int64
	rstBytes int64
}

const loadBenchRows = 50_000

// absenteeHierarchySpec mirrors datasets.GenerateAbsentee's metadata in the
// CLI notation, for reloading the CSV.
var absenteeHierarchies = []data.Hierarchy{
	{Name: "county", Attrs: []string{"county"}},
	{Name: "party", Attrs: []string{"party"}},
	{Name: "week", Attrs: []string{"week"}},
	{Name: "gender", Attrs: []string{"gender"}},
}

func loadBenchFixtures(b *testing.B) (csvPath, rstPath string) {
	lb := &loadBench
	lb.once.Do(func() {
		dir, err := os.MkdirTemp("", "reptile-loadbench")
		if err != nil {
			lb.err = err
			return
		}
		ds := datasets.GenerateAbsentee(1, loadBenchRows)
		lb.rows = ds.NumRows()
		lb.csvPath = filepath.Join(dir, "absentee.csv")
		f, err := os.Create(lb.csvPath)
		if err != nil {
			lb.err = err
			return
		}
		if err := ds.WriteCSV(f); err != nil {
			lb.err = err
			return
		}
		if err := f.Close(); err != nil {
			lb.err = err
			return
		}
		lb.rstPath = filepath.Join(dir, "absentee.rst")
		if err := FromDataset(ds).WriteFile(lb.rstPath); err != nil {
			lb.err = err
			return
		}
		ci, err := os.Stat(lb.csvPath)
		if err != nil {
			lb.err = err
			return
		}
		ri, err := os.Stat(lb.rstPath)
		if err != nil {
			lb.err = err
			return
		}
		lb.csvBytes, lb.rstBytes = ci.Size(), ri.Size()
	})
	if lb.err != nil {
		b.Fatal(lb.err)
	}
	return lb.csvPath, lb.rstPath
}

// BenchmarkLoadCSV measures the full CSV (re)load path a dataset
// registration pays today: parse, column materialization, and hierarchy
// validation.
func BenchmarkLoadCSV(b *testing.B) {
	csvPath, _ := loadBenchFixtures(b)
	b.SetBytes(loadBench.csvBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := data.ReadCSVFile(csvPath, "absentee", []string{"one"}, absenteeHierarchies)
		if err != nil {
			b.Fatal(err)
		}
		if ds.NumRows() != loadBench.rows {
			b.Fatalf("rows = %d", ds.NumRows())
		}
	}
}

// BenchmarkLoadSnapshot measures the equivalent .rst path: checksum, decode,
// dataset materialization, and (coded) hierarchy validation.
func BenchmarkLoadSnapshot(b *testing.B) {
	_, rstPath := loadBenchFixtures(b)
	b.SetBytes(loadBench.rstBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := OpenFile(rstPath)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := snap.Dataset()
		if err != nil {
			b.Fatal(err)
		}
		if ds.NumRows() != loadBench.rows {
			b.Fatalf("rows = %d", ds.NumRows())
		}
	}
}

// BenchmarkOpenMapped measures the mmap-backed open: header parse and
// validation streamed over the mapping, no column materialization. The
// interesting column in BENCH_load.json is bytes_per_op — residency is
// O(dictionaries), not O(rows).
func BenchmarkOpenMapped(b *testing.B) {
	_, rstPath := loadBenchFixtures(b)
	b.SetBytes(loadBench.rstBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := OpenMappedFile(rstPath)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := snap.Dataset()
		if err != nil {
			b.Fatal(err)
		}
		if ds.NumRows() != loadBench.rows {
			b.Fatalf("rows = %d", ds.NumRows())
		}
		if err := snap.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByStreamed measures the single-pass streaming group-by over
// a mapped dataset's column cursors — the aggregation path every mapped
// engine rides — against the same grouping the coded fast path answers from
// heap slices (BenchmarkGroupByCoded in internal/cube).
func BenchmarkGroupByStreamed(b *testing.B) {
	_, rstPath := loadBenchFixtures(b)
	snap, err := OpenMappedFile(rstPath)
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Close()
	ds, err := snap.Dataset()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(loadBench.rows) * (4*2 + 8)) // two dim columns + one measure per pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := agg.GroupBy(ds, []string{"county", "party"}, "one")
		if len(res.Groups) == 0 {
			b.Fatal("empty group-by result")
		}
	}
}
