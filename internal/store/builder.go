package store

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cube"
)

// Row is one ingested record: dimension values in Snapshot.Dims order and
// measure values in Snapshot.Measures order.
type Row struct {
	Dims     []string
	Measures []float64
}

// Builder appends rows to a snapshot lineage. Each Append produces a new
// immutable Snapshot with Version+1 — the base snapshot, and every dataset or
// engine derived from it, is never mutated (dictionaries are extended
// copy-on-write, so unchanged prefixes are shared). A Builder is not safe for
// concurrent use; callers serialize Appends per dataset.
type Builder struct {
	base *Snapshot
	// valIdx maps each dimension's value → code for the builder's current
	// base, built lazily on first Append and extended as dictionaries grow.
	valIdx []map[string]uint32
}

// NewBuilder starts an append lineage on top of base.
func NewBuilder(base *Snapshot) *Builder {
	return &Builder{base: base}
}

// Snapshot returns the builder's current (latest) snapshot.
func (b *Builder) Snapshot() *Snapshot { return b.base }

// Append encodes rows against the current snapshot and returns the new
// version. New dimension values extend the dictionaries; the result is
// validated (hierarchy functional dependencies included) before it becomes
// the builder's new base, so a bad batch leaves the lineage unchanged.
func (b *Builder) Append(rows []Row) (*Snapshot, error) {
	base := b.base
	if len(rows) == 0 {
		return base, nil
	}
	if base.Mapped() {
		// Extending a mapped snapshot would have to materialize every column
		// it shares with the successor, defeating the open mode's purpose.
		return nil, fmt.Errorf("store: cannot append to memory-mapped snapshot %q; re-open it eagerly to ingest", base.Name)
	}
	for i, r := range rows {
		if len(r.Dims) != len(base.Dims) || len(r.Measures) != len(base.Measures) {
			return nil, fmt.Errorf("store: append row %d: arity mismatch: %d/%d dims, %d/%d measures",
				i, len(r.Dims), len(base.Dims), len(r.Measures), len(base.Measures))
		}
		for j, v := range r.Measures {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("store: append row %d measure %q: non-finite value %v",
					i, base.Measures[j].Name, v)
			}
		}
	}
	if b.valIdx == nil {
		b.valIdx = make([]map[string]uint32, len(base.Dims))
		for ci, c := range base.Dims {
			idx := make(map[string]uint32, len(c.Dict))
			for code, v := range c.Dict {
				idx[v] = uint32(code)
			}
			b.valIdx[ci] = idx
		}
	}

	next := &Snapshot{
		Name:        base.Name,
		Version:     base.Version + 1,
		Hierarchies: base.Hierarchies,
		Dims:        make([]Column, len(base.Dims)),
		Measures:    make([]MeasureColumn, len(base.Measures)),
		rows:        base.rows + len(rows),
	}
	for ci, c := range base.Dims {
		// Full slice expressions pin capacity to length, so appending always
		// copies instead of scribbling over a sibling version's backing array.
		dict := c.Dict[:len(c.Dict):len(c.Dict)]
		codes := append(c.Codes[:len(c.Codes):len(c.Codes)], make([]uint32, len(rows))...)
		idx := b.valIdx[ci]
		for ri, r := range rows {
			v := r.Dims[ci]
			code, ok := idx[v]
			if !ok {
				code = uint32(len(dict))
				dict = append(dict, v)
				idx[v] = code
			}
			codes[base.rows+ri] = code
		}
		next.Dims[ci] = Column{Name: c.Name, Dict: dict, Codes: codes}
	}
	for mi, m := range base.Measures {
		vals := append(m.Values[:len(m.Values):len(m.Values)], make([]float64, len(rows))...)
		for ri, r := range rows {
			vals[base.rows+ri] = r.Measures[mi]
		}
		next.Measures[mi] = MeasureColumn{Name: m.Name, Values: vals}
	}
	if err := next.validate(); err != nil {
		// The batch introduced an inconsistency (typically an FD violation
		// against existing rows). Drop the cached value indexes: they may
		// hold entries for the rejected batch's new values.
		b.valIdx = nil
		return nil, err
	}
	if err := b.extendCube(next); err != nil {
		b.valIdx = nil
		return nil, err
	}
	b.base = next
	return next, nil
}

// extendCube maintains the base snapshot's materialized cube across an
// append without rebuilding it: a delta cube is built over just the appended
// batch and merged into the successor version (Stats.Add per shared cell,
// re-keying the base cells where new values grew the dictionaries). When the
// grown dictionaries push the successor outside what the cube subsystem
// materializes (e.g. the composite key space overflows), the successor
// simply carries no cube and serving falls back to row scans.
func (b *Builder) extendCube(next *Snapshot) error {
	base := b.base
	if base.cube == nil {
		return nil
	}
	nds, err := next.Dataset()
	if err != nil {
		return err
	}
	delta, err := cube.BuildRows(nds, base.rows, next.rows)
	if err == nil {
		var merged *cube.Cube
		if merged, err = base.cube.Merge(delta); err == nil {
			next.attachCube(merged)
			return nil
		}
	}
	if errors.Is(err, cube.ErrNotCubable) {
		return nil
	}
	return err
}
