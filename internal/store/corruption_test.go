package store

import (
	"bytes"
	"strings"
	"testing"
)

// cubeSnapshotBytes serializes the demo dataset with a materialized cube.
func cubeSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	snap := FromDataset(demoDataset())
	if err := snap.BuildCube(); err != nil {
		t.Fatal(err)
	}
	if snap.Cube() == nil {
		t.Fatal("demo dataset did not materialize a cube")
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// noCubeLen returns the byte length of the same snapshot without its cube
// section — the one truncation point that yields a valid (pre-cube) file.
func noCubeLen(t *testing.T) int {
	t.Helper()
	var buf bytes.Buffer
	if err := FromDataset(demoDataset()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Len() - 4 // minus the file checksum, which truncation removes too
}

func TestCubeSectionRoundTrip(t *testing.T) {
	b := cubeSnapshotBytes(t)
	snap, err := Open(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	c := snap.Cube()
	if c == nil {
		t.Fatal("cube section did not survive the round trip")
	}
	// demo dataset: geo (district, village) × time (year) → 3×2 lattice.
	if c.NumLevels() != 6 {
		t.Errorf("levels = %d, want 6", c.NumLevels())
	}
	if c.NumRows() != 6 {
		t.Errorf("cube rows = %d, want 6", c.NumRows())
	}
	// The loaded dataset carries the cube as its rollup attachment.
	ds, err := snap.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rollup() == nil {
		t.Error("loaded dataset has no rollup attachment")
	}
	// Re-serializing the loaded snapshot reproduces the file bit for bit.
	var again bytes.Buffer
	if err := snap.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), b) {
		t.Error("re-serialized snapshot differs from the original bytes")
	}
}

func TestOpenWithoutCubeSectionStillWorks(t *testing.T) {
	// Pre-cube writers produce files without the section; they must load
	// exactly as before, just with no cube attached.
	var buf bytes.Buffer
	if err := FromDataset(demoDataset()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cube() != nil {
		t.Fatal("cube appeared out of nowhere")
	}
	ds, err := snap.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rollup() != nil {
		t.Error("rollup attached without a cube")
	}
}

// TestOpenRejectsTruncationEverywhere cuts a cube-carrying .rst at every
// byte offset — which covers every section boundary: inside the magic,
// header varints, dictionary strings, code and measure arrays, and the cube
// tag, version, length, payload and checksums — and asserts Open fails with
// a clean error (never a panic) on each.
func TestOpenRejectsTruncationEverywhere(t *testing.T) {
	good := cubeSnapshotBytes(t)
	for cut := 0; cut < len(good); cut++ {
		if _, err := Open(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at offset %d/%d opened successfully", cut, len(good))
		}
	}
}

// TestOpenRejectsResealedTruncation re-seals the file checksum after each
// truncation, so the damage reaches the section decoders instead of being
// caught by the whole-file CRC — the hardening the header CRC, the offset
// directory bounds checks, and the length checks inside the dictionary and
// cube sections provide. Unlike format v1 (where cutting exactly the cube
// section yielded a valid pre-cube file), v2 records the cube's offset in
// the CRC-protected header, so EVERY resealed truncation must fail cleanly.
func TestOpenRejectsResealedTruncation(t *testing.T) {
	good := cubeSnapshotBytes(t)
	for cut := 0; cut < len(good)-4; cut++ {
		b := append(append([]byte(nil), good[:cut]...), 0, 0, 0, 0)
		reseal(b)
		if _, err := Open(bytes.NewReader(b)); err == nil {
			t.Fatalf("resealed truncation at offset %d/%d opened successfully", cut, len(good))
		}
	}
}

// TestOpenRejectsCubeSectionDamage corrupts the cube section in targeted
// ways — with the outer file checksum re-sealed each time, so the section's
// own defenses (tag, version, length, inner CRC, structural validation) are
// what reject the file.
func TestOpenRejectsCubeSectionDamage(t *testing.T) {
	good := cubeSnapshotBytes(t)
	plain := noCubeLen(t) // offset where the cube section begins
	cases := []struct {
		name   string
		mutate func(b []byte)
		want   string
	}{
		{"bad tag", func(b []byte) { b[plain] = 'X' }, "unknown trailing section"},
		{"future section version", func(b []byte) { b[plain+4] = CubeFormatVersion + 1 }, "cube section version"},
		{"payload bit flip", func(b []byte) { b[plain+8] ^= 0x20 }, "checksum mismatch"},
		// Zeroing the payload length leaves the payload bytes dangling after
		// the (now empty, wrong-checksum) section.
		{"zero payload length", func(b []byte) { b[plain+5] = 0 }, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			tc.mutate(b)
			reseal(b)
			_, err := Open(bytes.NewReader(b))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestWriteFileOpenFilePreservesCube(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/demo.rst"
	snap := FromDataset(demoDataset())
	if err := snap.BuildCube(); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cube() == nil {
		t.Fatal("cube lost through WriteFile/OpenFile")
	}
	back, err := got.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, back, demoDataset())
}
