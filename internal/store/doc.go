// Package store is Reptile's persistent storage layer: an immutable,
// dictionary-encoded columnar snapshot of a data.Dataset, a versioned binary
// file format (.rst) that round-trips snapshots without reparsing CSV, and an
// append path that produces new snapshot versions for live ingestion.
//
// A Snapshot keeps each dimension as a dictionary of distinct strings plus
// one uint32 code per row, and each measure as a raw []float64. Converting a
// snapshot back to a data.Dataset installs the dictionary encoding on the
// dataset (data.SetEncodedDim), which lets agg.GroupBy and the factorizer
// consume precomputed codes instead of re-hashing strings on the query path.
//
// Snapshots open in two modes. Open/OpenFile decode every column into heap
// slices (eager). OpenMapped/OpenMappedFile memory-map the file instead:
// only the header — schema, dictionaries, offset directory — is parsed, and
// columns are served through lazily-decoding readers (DimReader,
// MeasureReader) straight out of the mapping, so residency stays
// O(dictionaries + cube) regardless of the row count. Both modes produce
// byte-identical query results; mapped snapshots reject mutation (appending,
// partitioning) and must be released with Close.
//
// # Single-snapshot file format
//
// All integers are little-endian; "uv" is an unsigned varint; "str" is a
// uv length followed by that many UTF-8 bytes; every CRC is CRC-32C
// (Castagnoli). The whole file minus its last 4 bytes is covered by a tail
// CRC in both versions.
//
// Version 2 (current writer output) separates a self-describing header from
// fixed-width, 8-byte-aligned column payloads located by a byte-offset
// directory, which is what makes the mapped open possible:
//
//	magic "RSTSNAP" | version byte = 2
//	name str | dataset version uv | rows uv
//	#hierarchies uv { name str | #attrs uv { attr str } }
//	#dims uv { name str | #dict uv { value str } }
//	#measures uv { name str }
//	directory: one u64 absolute offset per dim, then per measure,
//	           then cubeOff (0 = no cube section)
//	header CRC u32 (covers everything above)
//	zero padding to an 8-byte boundary
//	per dim:     rows × u32 codes, zero-padded to an 8-byte boundary
//	per measure: rows × u64 float64 bits, zero-padded likewise
//	optional cube section at cubeOff (see below)
//	tail CRC u32
//
// The decoder trusts nothing: after the header CRC verifies, every directory
// offset must be exactly where the contiguous-packing rule puts it, every
// alignment gap must be zero, and cubeOff must either be 0 (and the payloads
// must end the file) or equal the payload end. A v2 file therefore has no
// valid truncations, even re-sealed ones.
//
// Version 1 (legacy, still readable — eagerly even through OpenMapped)
// interleaves dictionaries and payloads, so there is nothing to map lazily:
//
//	magic "RSTSNAP" | version byte = 1
//	name str | dataset version uv | rows uv
//	#hierarchies uv { name str | #attrs uv { attr str } }
//	#dims uv { name str | #dict uv { value str } | rows × u32 codes }
//	#measures uv { name str | rows × u64 float64 bits }
//	optional cube section
//	tail CRC u32
//
// The optional cube section is identical in both versions:
//
//	tag "CUBE" | cube format version byte | payload length uv
//	payload (internal/cube encoding) | cube CRC u32
//
// # Partitioned file format
//
// A partitioned snapshot holds one dataset hashed into N shards on a
// hierarchy-root dimension; dictionaries are shared across shards and
// written once. Cubes are not persisted (they are cheap to rebuild per
// shard at registration time).
//
// Version 2 mirrors the single-snapshot design — one CRC-checked header
// with a shard-major offset directory, then aligned per-shard payloads — so
// OpenShardedMapped serves every shard out of one refcounted file mapping:
//
//	magic "RSTSHARD" | version byte = 2
//	name str | dataset version uv | partition key str
//	#hierarchies uv { name str | #attrs uv { attr str } }
//	#dims uv { name str | #dict uv { value str } }
//	#measures uv { name str }
//	#shards uv { shard rows uv }
//	directory, shard-major: per shard, one u64 offset per dim then
//	                        per measure
//	header CRC u32 | zero padding to an 8-byte boundary
//	per shard: per dim rows × u32 codes (8-aligned, zero-padded),
//	           then per measure rows × u64 float64 bits (likewise)
//	tail CRC u32
//
// Version 1 (legacy) writes inline per-shard sections, each carrying its own
// section CRC:
//
//	magic "RSTSHARD" | version byte = 1
//	name str | dataset version uv | partition key str
//	#hierarchies uv { ... } | #dims uv { name str | dict } | #measures uv { name str }
//	#shards uv { rows uv | per dim rows × u32 | per measure rows × u64 | section CRC u32 }
//	tail CRC u32
package store
