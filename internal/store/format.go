package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/cube"
	"repro/internal/data"
)

// The .rst binary layouts are documented in doc.go. Version 2 (the current
// writer output) separates a self-describing header — schema, dictionaries,
// and a CRC-checked byte-offset directory — from fixed-width, 8-byte-aligned
// column payloads, so OpenMapped can expose columns straight out of a
// memory-mapped file without decoding them into heap slices. Version 1
// (inline payloads) still opens via the eager path.
var magic = [7]byte{'R', 'S', 'T', 'S', 'N', 'A', 'P'}

// FormatVersion is the current .rst format version.
const FormatVersion = 2

// legacyFormatVersion is the previous inline-payload format, still readable.
const legacyFormatVersion = 1

// cubeTag introduces the optional materialized-cube section.
var cubeTag = [4]byte{'C', 'U', 'B', 'E'}

// CubeFormatVersion is the current cube section format version.
const CubeFormatVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxSaneCount bounds decoded element counts so a corrupt or hostile header
// cannot trigger a huge allocation before the length checks run.
const maxSaneCount = 1 << 31

// align8 rounds n up to the next multiple of 8 — column payloads start on
// 8-byte boundaries so a mapped reader can decode fixed-width elements at
// aligned addresses.
func align8(n int) int { return (n + 7) &^ 7 }

// Write serializes the snapshot in .rst format version 2, checksum included.
// Mapped snapshots write through their lazily-decoded column readers, so
// Save works without materializing columns on the heap.
func (s *Snapshot) Write(w io.Writer) error {
	// Stage the header in memory: the byte-offset directory holds absolute
	// payload offsets, so the header's size must be known before the first
	// payload byte is placed. The header is small — schema plus
	// dictionaries — while payloads, the part proportional to row count,
	// stream straight to w.
	var hb bytes.Buffer
	hw := bufio.NewWriterSize(&hb, 1<<12)
	e := &encoder{w: hw}
	e.bytes(magic[:])
	e.byte(FormatVersion)
	e.string(s.Name)
	e.uvarint(s.Version)
	e.uvarint(uint64(s.rows))
	e.uvarint(uint64(len(s.Hierarchies)))
	for _, hr := range s.Hierarchies {
		e.string(hr.Name)
		e.uvarint(uint64(len(hr.Attrs)))
		for _, a := range hr.Attrs {
			e.string(a)
		}
	}
	e.uvarint(uint64(len(s.Dims)))
	for _, c := range s.Dims {
		e.string(c.Name)
		e.uvarint(uint64(len(c.Dict)))
		for _, v := range c.Dict {
			e.string(v)
		}
	}
	e.uvarint(uint64(len(s.Measures)))
	for _, m := range s.Measures {
		e.string(m.Name)
	}
	if e.err == nil {
		e.err = hw.Flush()
	}
	if e.err != nil {
		return fmt.Errorf("store: writing snapshot: %w", e.err)
	}

	// Directory: one u64 offset per dimension, per measure, plus the cube
	// section offset (0 = no cube), then the header CRC.
	headerLen := hb.Len() + 8*(len(s.Dims)+len(s.Measures)+1) + 4
	off := align8(headerLen)
	dimOff := make([]uint64, len(s.Dims))
	for i := range s.Dims {
		dimOff[i] = uint64(off)
		off = align8(off + 4*s.rows)
	}
	msOff := make([]uint64, len(s.Measures))
	for i := range s.Measures {
		msOff[i] = uint64(off)
		off = align8(off + 8*s.rows)
	}
	cubeOff := uint64(0)
	if s.cube != nil {
		cubeOff = uint64(off)
	}
	var u8 [8]byte
	for _, o := range dimOff {
		binary.LittleEndian.PutUint64(u8[:], o)
		hb.Write(u8[:])
	}
	for _, o := range msOff {
		binary.LittleEndian.PutUint64(u8[:], o)
		hb.Write(u8[:])
	}
	binary.LittleEndian.PutUint64(u8[:], cubeOff)
	hb.Write(u8[:])
	binary.LittleEndian.PutUint32(u8[:4], crc32.Checksum(hb.Bytes(), castagnoli))
	hb.Write(u8[:4])

	h := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16)
	we := &encoder{w: bw}
	we.bytes(hb.Bytes())
	we.pad(align8(headerLen) - headerLen)
	for i := range s.Dims {
		c := &s.Dims[i]
		if c.Codes != nil {
			we.codes(c.Codes)
		} else {
			we.codesFrom(s.DimReader(i))
		}
		we.pad(align8(4*s.rows) - 4*s.rows)
	}
	for i := range s.Measures {
		m := &s.Measures[i]
		if m.Values != nil {
			we.floats(m.Values)
		} else {
			we.floatsFrom(s.MeasureReader(i))
		}
		we.pad(align8(8*s.rows) - 8*s.rows)
	}
	if s.cube != nil {
		payload := s.cube.AppendBinary(nil)
		we.bytes(cubeTag[:])
		we.byte(CubeFormatVersion)
		we.uvarint(uint64(len(payload)))
		we.bytes(payload)
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
		we.bytes(sum[:])
	}
	if we.err != nil {
		return fmt.Errorf("store: writing snapshot: %w", we.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	// The checksum covers everything flushed so far and is written to the
	// destination only (hashing it too would make verification impossible).
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("store: writing snapshot checksum: %w", err)
	}
	return nil
}

// writeLegacy serializes the snapshot in format version 1 (inline payloads,
// no offset directory). It is kept so tests can produce v1 fixtures and
// prove old files keep opening byte-identically.
func (s *Snapshot) writeLegacy(w io.Writer) error {
	h := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16)
	e := &encoder{w: bw}
	e.bytes(magic[:])
	e.byte(legacyFormatVersion)
	e.string(s.Name)
	e.uvarint(s.Version)
	e.uvarint(uint64(s.rows))
	e.uvarint(uint64(len(s.Hierarchies)))
	for _, hr := range s.Hierarchies {
		e.string(hr.Name)
		e.uvarint(uint64(len(hr.Attrs)))
		for _, a := range hr.Attrs {
			e.string(a)
		}
	}
	e.uvarint(uint64(len(s.Dims)))
	for _, c := range s.Dims {
		e.string(c.Name)
		e.uvarint(uint64(len(c.Dict)))
		for _, v := range c.Dict {
			e.string(v)
		}
		e.codes(c.Codes)
	}
	e.uvarint(uint64(len(s.Measures)))
	for _, m := range s.Measures {
		e.string(m.Name)
		e.floats(m.Values)
	}
	if s.cube != nil {
		payload := s.cube.AppendBinary(nil)
		e.bytes(cubeTag[:])
		e.byte(CubeFormatVersion)
		e.uvarint(uint64(len(payload)))
		e.bytes(payload)
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
		e.bytes(sum[:])
	}
	if e.err != nil {
		return fmt.Errorf("store: writing snapshot: %w", e.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("store: writing snapshot checksum: %w", err)
	}
	return nil
}

// WriteFile writes the snapshot to path atomically (temp file + rename).
func (s *Snapshot) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Open decodes and validates a snapshot from r (checksum, structural
// invariants, hierarchy functional dependencies).
func Open(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	return decode(b)
}

// OpenFile loads a .rst snapshot from disk.
func OpenFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := decode(b)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return s, nil
}

func decode(b []byte) (*Snapshot, error) {
	d, version, err := checkEnvelope(b)
	if err != nil {
		return nil, err
	}
	switch version {
	case legacyFormatVersion:
		return decodeV1(d)
	case FormatVersion:
		return decodeV2(d)
	default:
		return nil, fmt.Errorf("store: unsupported format version %d (want 1–%d)", version, FormatVersion)
	}
}

// checkEnvelope verifies the parts common to every format version — minimum
// length, whole-file tail CRC, magic — and returns a decoder positioned after
// the version byte.
func checkEnvelope(b []byte) (*decoder, byte, error) {
	if len(b) < len(magic)+1+4 {
		return nil, 0, fmt.Errorf("store: snapshot truncated (%d bytes)", len(b))
	}
	payload, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, 0, fmt.Errorf("store: snapshot checksum mismatch (file %08x, computed %08x)", want, got)
	}
	d := &decoder{b: payload}
	var m [7]byte
	copy(m[:], d.bytes(len(magic)))
	if d.err == nil && m != magic {
		if bytes.Equal(m[:], shardMagic[:len(m)]) {
			return nil, 0, fmt.Errorf("store: file is a partitioned snapshot; open it with OpenSharded")
		}
		return nil, 0, fmt.Errorf("store: bad magic %q: not a .rst snapshot", m[:])
	}
	v := d.byte()
	if d.err != nil {
		return nil, 0, fmt.Errorf("store: decoding snapshot: %w", d.err)
	}
	return d, v, nil
}

// decodeV1 decodes the legacy inline-payload format.
func decodeV1(d *decoder) (*Snapshot, error) {
	s := &Snapshot{}
	s.Name = d.string()
	s.Version = d.uvarint()
	rows := d.uvarint()
	if rows > maxSaneCount {
		return nil, fmt.Errorf("store: implausible row count %d", rows)
	}
	s.rows = int(rows)
	for i, nh := 0, d.count(); i < nh && d.err == nil; i++ {
		h := data.Hierarchy{Name: d.string()}
		for j, na := 0, d.count(); j < na && d.err == nil; j++ {
			h.Attrs = append(h.Attrs, d.string())
		}
		s.Hierarchies = append(s.Hierarchies, h)
	}
	for i, nd := 0, d.count(); i < nd && d.err == nil; i++ {
		c := Column{Name: d.string()}
		ndict := d.count()
		c.Dict = make([]string, 0, min(ndict, 1<<16))
		for j := 0; j < ndict && d.err == nil; j++ {
			c.Dict = append(c.Dict, d.string())
		}
		c.Codes = d.codes(s.rows)
		s.Dims = append(s.Dims, c)
	}
	for i, nm := 0, d.count(); i < nm && d.err == nil; i++ {
		mc := MeasureColumn{Name: d.string()}
		mc.Values = d.floats(s.rows)
		s.Measures = append(s.Measures, mc)
	}
	var cubePayload []byte
	if d.err == nil && d.off < len(d.b) {
		cubePayload = d.cubeSection()
	}
	if d.err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", d.err)
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", len(d.b)-d.off)
	}
	return finishSnapshot(s, cubePayload)
}

// decodeV2 decodes the directory format eagerly: every column payload is
// materialized into heap slices, exactly like a v1 open.
func decodeV2(d *decoder) (*Snapshot, error) {
	h, err := parseHeaderV2(d)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Name: h.name, Version: h.version, Hierarchies: h.hierarchies, rows: h.rows}
	for i, dim := range h.dims {
		d.off = h.dimOff[i]
		s.Dims = append(s.Dims, Column{Name: dim.name, Dict: dim.dict, Codes: d.codes(h.rows)})
	}
	for i, name := range h.measureNames {
		d.off = h.msOff[i]
		s.Measures = append(s.Measures, MeasureColumn{Name: name, Values: d.floats(h.rows)})
	}
	var cubePayload []byte
	if d.err == nil && h.cubeOff != 0 {
		d.off = h.cubeOff
		cubePayload = d.cubeSection()
		if d.err == nil && d.off != len(d.b) {
			return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", len(d.b)-d.off)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", d.err)
	}
	return finishSnapshot(s, cubePayload)
}

// finishSnapshot runs post-decode validation and cube attachment, shared by
// both format versions.
func finishSnapshot(s *Snapshot, cubePayload []byte) (*Snapshot, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if cubePayload != nil {
		// The snapshot's own invariants hold, so the derived dataset exists;
		// decode the cube against it and attach (validate-on-open included).
		ds, err := s.Dataset()
		if err != nil {
			return nil, err
		}
		c, err := cube.Decode(cubePayload, ds)
		if err != nil {
			return nil, fmt.Errorf("store: decoding cube section: %w", err)
		}
		s.attachCube(c)
	}
	return s, nil
}

// dimSchema is a dimension's header entry: its name and dictionary.
type dimSchema struct {
	name string
	dict []string
}

// headerV2 is the parsed v2 header: schema plus the validated byte-offset
// directory. Offsets are absolute file offsets into the payload (the file
// minus its tail CRC).
type headerV2 struct {
	name         string
	version      uint64
	rows         int
	hierarchies  []data.Hierarchy
	dims         []dimSchema
	measureNames []string
	dimOff       []int
	msOff        []int
	cubeOff      int // 0 = no cube section
	payloadEnd   int // end of the last column payload, padding included
}

// parseHeaderV2 parses and fully validates a v2 header from a decoder
// positioned after the version byte: field structure, the header's own CRC,
// and the offset directory (in-bounds, contiguous, 8-aligned, zero padding).
// After it returns, every column payload's location is trusted.
func parseHeaderV2(d *decoder) (*headerV2, error) {
	h := &headerV2{}
	h.name = d.string()
	h.version = d.uvarint()
	rows := d.uvarint()
	if rows > maxSaneCount {
		return nil, fmt.Errorf("store: implausible row count %d", rows)
	}
	h.rows = int(rows)
	for i, nh := 0, d.count(); i < nh && d.err == nil; i++ {
		hr := data.Hierarchy{Name: d.string()}
		for j, na := 0, d.count(); j < na && d.err == nil; j++ {
			hr.Attrs = append(hr.Attrs, d.string())
		}
		h.hierarchies = append(h.hierarchies, hr)
	}
	for i, nd := 0, d.count(); i < nd && d.err == nil; i++ {
		ds := dimSchema{name: d.string()}
		ndict := d.count()
		ds.dict = make([]string, 0, min(ndict, 1<<16))
		for j := 0; j < ndict && d.err == nil; j++ {
			ds.dict = append(ds.dict, d.string())
		}
		h.dims = append(h.dims, ds)
	}
	for i, nm := 0, d.count(); i < nm && d.err == nil; i++ {
		h.measureNames = append(h.measureNames, d.string())
	}
	h.dimOff = make([]int, len(h.dims))
	for i := range h.dimOff {
		h.dimOff[i] = d.offset()
	}
	h.msOff = make([]int, len(h.measureNames))
	for i := range h.msOff {
		h.msOff[i] = d.offset()
	}
	h.cubeOff = d.offset()
	hdrEnd := d.off
	sum := d.bytes(4)
	if d.err != nil {
		return nil, fmt.Errorf("store: decoding snapshot header: %w", d.err)
	}
	if got, want := crc32.Checksum(d.b[:hdrEnd], castagnoli), binary.LittleEndian.Uint32(sum); got != want {
		return nil, fmt.Errorf("store: header checksum mismatch (file %08x, computed %08x)", want, got)
	}
	// The directory is now CRC-trusted; verify it describes this file: the
	// writer packs payloads contiguously on 8-byte boundaries straight after
	// the header, padding with zero bytes.
	expected := align8(d.off)
	if err := checkPadding(d.b, d.off, expected); err != nil {
		return nil, err
	}
	for i, off := range h.dimOff {
		if off != expected {
			return nil, fmt.Errorf("store: dimension %q payload offset %d, expected %d", h.dims[i].name, off, expected)
		}
		end := off + 4*h.rows
		expected = align8(end)
		if expected > len(d.b) {
			return nil, fmt.Errorf("store: dimension %q payload exceeds file (ends %d, payload %d bytes)", h.dims[i].name, expected, len(d.b))
		}
		if err := checkPadding(d.b, end, expected); err != nil {
			return nil, err
		}
	}
	for i, off := range h.msOff {
		if off != expected {
			return nil, fmt.Errorf("store: measure %q payload offset %d, expected %d", h.measureNames[i], off, expected)
		}
		end := off + 8*h.rows
		expected = align8(end)
		if expected > len(d.b) {
			return nil, fmt.Errorf("store: measure %q payload exceeds file (ends %d, payload %d bytes)", h.measureNames[i], expected, len(d.b))
		}
		if err := checkPadding(d.b, end, expected); err != nil {
			return nil, err
		}
	}
	h.payloadEnd = expected
	switch {
	case h.cubeOff == 0:
		if expected != len(d.b) {
			return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", len(d.b)-expected)
		}
	case h.cubeOff != expected:
		return nil, fmt.Errorf("store: cube section offset %d, expected %d", h.cubeOff, expected)
	}
	return h, nil
}

// checkPadding verifies the alignment gap [from, to) holds only zero bytes.
func checkPadding(b []byte, from, to int) error {
	if to > len(b) {
		return fmt.Errorf("store: snapshot truncated inside alignment padding (need %d bytes, have %d)", to, len(b))
	}
	for i := from; i < to; i++ {
		if b[i] != 0 {
			return fmt.Errorf("store: nonzero alignment padding at offset %d", i)
		}
	}
	return nil
}

// cubeSection parses the optional trailing cube section and returns its
// checksum-verified payload.
func (d *decoder) cubeSection() []byte {
	var tag [4]byte
	copy(tag[:], d.bytes(len(tag)))
	if d.err == nil && tag != cubeTag {
		d.fail("unknown trailing section %q", tag[:])
		return nil
	}
	if v := d.byte(); d.err == nil && v != CubeFormatVersion {
		d.fail("unsupported cube section version %d (want %d)", v, CubeFormatVersion)
		return nil
	}
	payload := d.bytes(d.count())
	sum := d.bytes(4)
	if d.err != nil {
		return nil
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(sum); got != want {
		d.fail("cube section checksum mismatch (file %08x, computed %08x)", want, got)
		return nil
	}
	return payload
}

// encoder writes the primitive field types, latching the first error.
type encoder struct {
	w       *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func (e *encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.bytes(e.scratch[:n])
}

func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) codes(cs []uint32) {
	var buf [4]byte
	for _, c := range cs {
		binary.LittleEndian.PutUint32(buf[:], c)
		e.bytes(buf[:])
	}
}

func (e *encoder) floats(vs []float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		e.bytes(buf[:])
	}
}

// pad writes n zero bytes (n < 8), aligning the next payload.
func (e *encoder) pad(n int) {
	var z [8]byte
	e.bytes(z[:n])
}

// codesFrom streams a dimension column through its reader — the write path
// for mapped snapshots, which have no code slices to copy from.
func (e *encoder) codesFrom(r data.DimCursor) {
	var buf [4]byte
	for i, n := 0, r.Len(); i < n; i++ {
		binary.LittleEndian.PutUint32(buf[:], r.Code(i))
		e.bytes(buf[:])
	}
}

// floatsFrom streams a measure column through its reader.
func (e *encoder) floatsFrom(r data.MeasureCursor) {
	var buf [8]byte
	for i, n := 0, r.Len(); i < n; i++ {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.At(i)))
		e.bytes(buf[:])
	}
}

// decoder reads the primitive field types from an in-memory payload,
// latching the first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.fail("truncated: need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) byte() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// offset decodes one u64 directory entry, bounding it to the payload size.
func (d *decoder) offset() int {
	raw := d.bytes(8)
	if raw == nil {
		return 0
	}
	v := binary.LittleEndian.Uint64(raw)
	if v > uint64(len(d.b)) {
		d.fail("directory offset %d beyond payload (%d bytes)", v, len(d.b))
		return 0
	}
	return int(v)
}

// count decodes an element count, bounding it to sane sizes.
func (d *decoder) count() int {
	v := d.uvarint()
	if v > maxSaneCount {
		d.fail("implausible element count %d", v)
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	n := d.count()
	return string(d.bytes(n))
}

func (d *decoder) codes(rows int) []uint32 {
	raw := d.bytes(4 * rows)
	if raw == nil {
		return nil
	}
	out := make([]uint32, rows)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return out
}

func (d *decoder) floats(rows int) []float64 {
	raw := d.bytes(8 * rows)
	if raw == nil {
		return nil
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}
