package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/cube"
	"repro/internal/data"
)

// The .rst binary layout, format version 1. All integers are little-endian;
// varints use the unsigned encoding/binary format; strings are a uvarint
// byte length followed by UTF-8 bytes.
//
//	[0:7)   magic "RSTSNAP"
//	[7]     format version (1)
//	        name            string
//	        version         uvarint   snapshot version (Builder.Append bumps it)
//	        rows            uvarint
//	        #hierarchies    uvarint   then per hierarchy: name, #attrs, attrs
//	        #dims           uvarint   then per dim: name, #dict, dict values,
//	                                  rows×4 bytes of uint32 codes
//	        #measures       uvarint   then per measure: name,
//	                                  rows×8 bytes of float64 bits
//	[opt]   materialized cube section (absent in files written without one):
//	          "CUBE"        4-byte section tag
//	          version       byte      cube section format version (1)
//	          length        uvarint   payload byte count
//	          payload       the cube wire format (see internal/cube)
//	          uint32        CRC-32C of the payload alone, so the section
//	                        validates independently of the file checksum
//	[tail]  uint32 CRC-32C (Castagnoli) of every preceding byte
//
// Files without the cube section decode exactly as before the section
// existed, and a snapshot written without a cube is byte-identical to the
// pre-cube format — old readers and writers interoperate with new files as
// long as no cube is materialized.
var magic = [7]byte{'R', 'S', 'T', 'S', 'N', 'A', 'P'}

// FormatVersion is the current .rst format version.
const FormatVersion = 1

// cubeTag introduces the optional materialized-cube section.
var cubeTag = [4]byte{'C', 'U', 'B', 'E'}

// CubeFormatVersion is the current cube section format version.
const CubeFormatVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxSaneCount bounds decoded element counts so a corrupt or hostile header
// cannot trigger a huge allocation before the length checks run.
const maxSaneCount = 1 << 31

// Write serializes the snapshot in .rst format, checksum included.
func (s *Snapshot) Write(w io.Writer) error {
	h := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16)
	e := &encoder{w: bw}
	e.bytes(magic[:])
	e.byte(FormatVersion)
	e.string(s.Name)
	e.uvarint(s.Version)
	e.uvarint(uint64(s.rows))
	e.uvarint(uint64(len(s.Hierarchies)))
	for _, hr := range s.Hierarchies {
		e.string(hr.Name)
		e.uvarint(uint64(len(hr.Attrs)))
		for _, a := range hr.Attrs {
			e.string(a)
		}
	}
	e.uvarint(uint64(len(s.Dims)))
	for _, c := range s.Dims {
		e.string(c.Name)
		e.uvarint(uint64(len(c.Dict)))
		for _, v := range c.Dict {
			e.string(v)
		}
		e.codes(c.Codes)
	}
	e.uvarint(uint64(len(s.Measures)))
	for _, m := range s.Measures {
		e.string(m.Name)
		e.floats(m.Values)
	}
	if s.cube != nil {
		payload := s.cube.AppendBinary(nil)
		e.bytes(cubeTag[:])
		e.byte(CubeFormatVersion)
		e.uvarint(uint64(len(payload)))
		e.bytes(payload)
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
		e.bytes(sum[:])
	}
	if e.err != nil {
		return fmt.Errorf("store: writing snapshot: %w", e.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	// The checksum covers everything flushed so far and is written to the
	// destination only (hashing it too would make verification impossible).
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("store: writing snapshot checksum: %w", err)
	}
	return nil
}

// WriteFile writes the snapshot to path atomically (temp file + rename).
func (s *Snapshot) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Open decodes and validates a snapshot from r (checksum, structural
// invariants, hierarchy functional dependencies).
func Open(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	return decode(b)
}

// OpenFile loads a .rst snapshot from disk.
func OpenFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := decode(b)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return s, nil
}

func decode(b []byte) (*Snapshot, error) {
	if len(b) < len(magic)+1+4 {
		return nil, fmt.Errorf("store: snapshot truncated (%d bytes)", len(b))
	}
	payload, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (file %08x, computed %08x)", want, got)
	}
	d := &decoder{b: payload}
	var m [7]byte
	copy(m[:], d.bytes(len(magic)))
	if d.err == nil && m != magic {
		if bytes.Equal(m[:], shardMagic[:len(m)]) {
			return nil, fmt.Errorf("store: file is a partitioned snapshot; open it with OpenSharded")
		}
		return nil, fmt.Errorf("store: bad magic %q: not a .rst snapshot", m[:])
	}
	if v := d.byte(); d.err == nil && v != FormatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d)", v, FormatVersion)
	}
	s := &Snapshot{}
	s.Name = d.string()
	s.Version = d.uvarint()
	rows := d.uvarint()
	if rows > maxSaneCount {
		return nil, fmt.Errorf("store: implausible row count %d", rows)
	}
	s.rows = int(rows)
	for i, nh := 0, d.count(); i < nh && d.err == nil; i++ {
		h := data.Hierarchy{Name: d.string()}
		for j, na := 0, d.count(); j < na && d.err == nil; j++ {
			h.Attrs = append(h.Attrs, d.string())
		}
		s.Hierarchies = append(s.Hierarchies, h)
	}
	for i, nd := 0, d.count(); i < nd && d.err == nil; i++ {
		c := Column{Name: d.string()}
		ndict := d.count()
		c.Dict = make([]string, 0, min(ndict, 1<<16))
		for j := 0; j < ndict && d.err == nil; j++ {
			c.Dict = append(c.Dict, d.string())
		}
		c.Codes = d.codes(s.rows)
		s.Dims = append(s.Dims, c)
	}
	for i, nm := 0, d.count(); i < nm && d.err == nil; i++ {
		mc := MeasureColumn{Name: d.string()}
		mc.Values = d.floats(s.rows)
		s.Measures = append(s.Measures, mc)
	}
	var cubePayload []byte
	if d.err == nil && d.off < len(d.b) {
		cubePayload = d.cubeSection()
	}
	if d.err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", d.err)
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", len(d.b)-d.off)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	if cubePayload != nil {
		// The snapshot's own invariants hold, so the derived dataset exists;
		// decode the cube against it and attach (validate-on-open included).
		ds, err := s.Dataset()
		if err != nil {
			return nil, err
		}
		c, err := cube.Decode(cubePayload, ds)
		if err != nil {
			return nil, fmt.Errorf("store: decoding cube section: %w", err)
		}
		s.attachCube(c)
	}
	return s, nil
}

// cubeSection parses the optional trailing cube section and returns its
// checksum-verified payload.
func (d *decoder) cubeSection() []byte {
	var tag [4]byte
	copy(tag[:], d.bytes(len(tag)))
	if d.err == nil && tag != cubeTag {
		d.fail("unknown trailing section %q", tag[:])
		return nil
	}
	if v := d.byte(); d.err == nil && v != CubeFormatVersion {
		d.fail("unsupported cube section version %d (want %d)", v, CubeFormatVersion)
		return nil
	}
	payload := d.bytes(d.count())
	sum := d.bytes(4)
	if d.err != nil {
		return nil
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(sum); got != want {
		d.fail("cube section checksum mismatch (file %08x, computed %08x)", want, got)
		return nil
	}
	return payload
}

// encoder writes the primitive field types, latching the first error.
type encoder struct {
	w       *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func (e *encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.bytes(e.scratch[:n])
}

func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) codes(cs []uint32) {
	var buf [4]byte
	for _, c := range cs {
		binary.LittleEndian.PutUint32(buf[:], c)
		e.bytes(buf[:])
	}
}

func (e *encoder) floats(vs []float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		e.bytes(buf[:])
	}
}

// decoder reads the primitive field types from an in-memory payload,
// latching the first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.fail("truncated: need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) byte() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count decodes an element count, bounding it to sane sizes.
func (d *decoder) count() int {
	v := d.uvarint()
	if v > maxSaneCount {
		d.fail("implausible element count %d", v)
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	n := d.count()
	return string(d.bytes(n))
}

func (d *decoder) codes(rows int) []uint32 {
	raw := d.bytes(4 * rows)
	if raw == nil {
		return nil
	}
	out := make([]uint32, rows)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return out
}

func (d *decoder) floats(rows int) []float64 {
	raw := d.bytes(8 * rows)
	if raw == nil {
		return nil
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}
