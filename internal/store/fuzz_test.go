package store

import (
	"bytes"
	"testing"
)

// FuzzOpenSnapshot throws arbitrary bytes at both snapshot decoders. The
// contract under test: Open and OpenSharded return an error on any input
// they dislike — they never panic, and anything they do accept must also
// re-materialize into a Dataset without panicking. Seeds cover every on-disk
// shape the writers produce: v1 legacy, v2, v2 with a cube section, and a
// sharded container, plus a truncation of a valid file (the likeliest
// real-world corruption).
func FuzzOpenSnapshot(f *testing.F) {
	snap := FromDataset(demoDataset())
	var v2 bytes.Buffer
	if err := snap.Write(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())

	var v1 bytes.Buffer
	if err := snap.writeLegacy(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())

	cubed := FromDataset(demoDataset())
	if err := cubed.BuildCube(); err != nil {
		f.Fatal(err)
	}
	var v2c bytes.Buffer
	if err := cubed.Write(&v2c); err != nil {
		f.Fatal(err)
	}
	f.Add(v2c.Bytes())

	var sh bytes.Buffer
	if err := WriteSharded(&sh, "district", splitShards(f, demoDataset7(), 2)); err != nil {
		f.Fatal(err)
	}
	f.Add(sh.Bytes())

	f.Add(v2.Bytes()[:v2.Len()/2])
	f.Add([]byte("RSTSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		if s, err := Open(bytes.NewReader(b)); err == nil && s != nil {
			if _, err := s.Dataset(); err != nil {
				t.Fatalf("accepted snapshot failed to materialize: %v", err)
			}
		}
		if _, shards, err := OpenSharded(bytes.NewReader(b)); err == nil {
			for _, s := range shards {
				if _, err := s.Dataset(); err != nil {
					t.Fatalf("accepted shard failed to materialize: %v", err)
				}
			}
		}
	})
}
